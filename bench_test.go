// Benchmark harness: one bench per paper artifact, plus the ablations
// called out in DESIGN.md.
//
//	BenchmarkTable2Extract/*   — per-figure ViewCL extraction (Table 2 set)
//	BenchmarkTable4GDB/*       — Table 4, "GDB (QEMU)" column (wall time)
//	BenchmarkTable4KGDB/*      — Table 4, "KGDB (rpi-400)" column; the
//	                             modeled latency is reported as the custom
//	                             metric kgdb-ms/op (virtual clock)
//	BenchmarkTable3Synthesis   — vchat NL -> ViewQL synthesis
//	BenchmarkFig2Focus         — cross-pane focus search
//	BenchmarkFig4Customize     — maple-tree ViewQL customization
//	BenchmarkFig7DirtyPipe     — REACHABLE-set customization
//	BenchmarkAblation*         — prune/flatten/distill design choices
//	BenchmarkExprShare         — the §5.4 bottleneck claim: ${...} eval cost
package visualinux_test

import (
	"fmt"
	"testing"

	"visualinux/internal/core"
	"visualinux/internal/expr"
	"visualinux/internal/kernelsim"
	"visualinux/internal/perf"
	"visualinux/internal/target"
	"visualinux/internal/vchat"
	"visualinux/internal/vclstdlib"
)

var benchKernel *kernelsim.Kernel

func kernel() *kernelsim.Kernel {
	if benchKernel == nil {
		benchKernel = kernelsim.Build(kernelsim.Options{})
	}
	return benchKernel
}

func BenchmarkKernelBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		kernelsim.Build(kernelsim.Options{})
	}
}

// BenchmarkTable2Extract measures pure extraction per ULK figure, plus the
// whole figure set extracted by the parallel worker pool in one op.
func BenchmarkTable2Extract(b *testing.B) {
	k := kernel()
	for _, fig := range vclstdlib.Figures() {
		fig := fig
		b.Run(fig.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := core.SessionOver(k, k.Target())
				if _, err := s.VPlot(fig.ID, fig.Program); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("all-parallel", func(b *testing.B) {
		figs := vclstdlib.Figures()
		for i := 0; i < b.N; i++ {
			if _, err := core.ExtractFigures(k, figs, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable4GDB is the Table 4 fast column.
func BenchmarkTable4GDB(b *testing.B) {
	k := kernel()
	for _, fig := range vclstdlib.Figures() {
		fig := fig
		b.Run(fig.ID, func(b *testing.B) {
			var objs int
			var bytes uint64
			for i := 0; i < b.N; i++ {
				row, err := perf.MeasureFigure(k, fig)
				if err != nil {
					b.Fatal(err)
				}
				objs, bytes = row.Objects, uint64(row.KBytes*1024)
			}
			b.ReportMetric(float64(objs), "objects")
			b.ReportMetric(float64(bytes), "bytes-read")
		})
	}
}

// BenchmarkTable4KGDB is the Table 4 slow column; kgdb-ms/op carries the
// modeled serial latency (virtual clock — wall ns/op stays small).
func BenchmarkTable4KGDB(b *testing.B) {
	k := kernel()
	for _, fig := range vclstdlib.Figures() {
		fig := fig
		b.Run(fig.ID, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				row, err := perf.MeasureFigureKGDB(k, fig, target.DefaultKGDB)
				if err != nil {
					b.Fatal(err)
				}
				total += row.TotalMS
			}
			b.ReportMetric(total/float64(b.N), "kgdb-ms/op")
		})
	}
}

// BenchmarkTable4KGDBUncached is the pre-snapshot-cache baseline: every
// field read is its own modeled round trip. Compare kgdb-ms/op against
// BenchmarkTable4KGDB to see what the page cache + coalescing buy.
func BenchmarkTable4KGDBUncached(b *testing.B) {
	k := kernel()
	for _, fig := range vclstdlib.Figures() {
		fig := fig
		b.Run(fig.ID, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				row, err := perf.MeasureFigureKGDBUncached(k, fig, target.DefaultKGDB)
				if err != nil {
					b.Fatal(err)
				}
				total += row.TotalMS
			}
			b.ReportMetric(total/float64(b.N), "kgdb-ms/op")
		})
	}
}

// BenchmarkTable4RSP measures extraction through a real GDB-RSP loopback
// socket — the third target personality, with genuine per-read round trips.
func BenchmarkTable4RSP(b *testing.B) {
	sess, err := perf.NewRSPSession(kernel())
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Close()
	for _, id := range []string{"7-1", "3-6", "9-2"} {
		fig, _ := vclstdlib.FigureByID(id)
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sess.MeasureFigureRSP(fig); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3Synthesis measures NL -> ViewQL synthesis across all 10
// Table 3 objectives.
func BenchmarkTable3Synthesis(b *testing.B) {
	k := kernel()
	// Pre-extract each objective's graph once.
	var descs []string
	var graphs []*core.Session
	for _, fig := range vclstdlib.Figures() {
		if fig.Objective == nil {
			continue
		}
		s := core.SessionOver(k, k.Target())
		if _, err := s.VPlot(fig.ID, fig.Program); err != nil {
			b.Fatal(err)
		}
		descs = append(descs, fig.Objective.Description)
		graphs = append(graphs, s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(descs)
		p, _ := graphs[j].Tree.Pane(1)
		if _, err := vchat.Synthesize(p.Graph, descs[j]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Focus measures the cross-pane focus search over two panes.
func BenchmarkFig2Focus(b *testing.B) {
	s := core.SessionOver(kernel(), kernel().Target())
	if _, err := s.VPlotFigure("3-4"); err != nil {
		b.Fatal(err)
	}
	if _, err := s.VPlotFigure("7-1"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.VCtrl("focus pid=101"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Customize measures the maple-tree ViewQL customization.
func BenchmarkFig4Customize(b *testing.B) {
	k := kernel()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := core.SessionOver(k, k.Target())
		p, err := s.VPlot("maple", vclstdlib.MapleTreeProgram)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := s.ApplyViewQL(p.ID, vclstdlib.MapleTreeCustomization); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7DirtyPipe measures the REACHABLE set-difference ViewQL.
func BenchmarkFig7DirtyPipe(b *testing.B) {
	k := kernel()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := core.SessionOver(k, k.Target())
		p, err := s.VPlot("dirtypipe", vclstdlib.DirtyPipeProgram)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := s.ApplyViewQL(p.ID, vclstdlib.DirtyPipeCustomization); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations -----------------------------------------------------------------

// BenchmarkAblationPrune contrasts extracting a heavily pruned task view
// against a "wide" view with many more fields — quantifying what prune buys.
func BenchmarkAblationPrune(b *testing.B) {
	k := kernel()
	pruned := `
define Task as Box<task_struct> [
    Text pid
    Container children: List(${@this->children}).forEach |n| {
        yield Task<task_struct.sibling>(@n)
    }
]
root = Task(${&init_task})
plot @root
`
	wide := `
define Task as Box<task_struct> [
    Text pid, tgid, comm, prio, static_prio, normal_prio
    Text utime, stime, start_time, exit_state, exit_code
    Text<u64:x> flags
    Text<string> state: ${task_state(@this)}
    Text se.vruntime
    Text weight: ${@this->se.load.weight}
    Text sum_exec: ${@this->se.sum_exec_runtime}
    Container children: List(${@this->children}).forEach |n| {
        yield Task<task_struct.sibling>(@n)
    }
]
root = Task(${&init_task})
plot @root
`
	for _, c := range []struct{ name, prog string }{{"pruned", pruned}, {"wide", wide}} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := core.SessionOver(k, k.Target())
				if _, err := s.VPlot(c.name, c.prog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationFlatten contrasts a flattened dot-path (one text item)
// against materializing every intermediate object as its own box.
func BenchmarkAblationFlatten(b *testing.B) {
	k := kernel()
	flat := `
define Task as Box<task_struct> [
    Text pid
    Text sb: ${@this->files->fdt->fd[3]->f_path.dentry->d_inode->i_sb->s_id}
]
root = Task(${find_task(100)})
plot @root
`
	deep := `
define SB as Box<super_block> [ Text s_id ]
define Inode as Box<inode> [ Text i_ino
    Link i_sb -> SB(${@this->i_sb}) ]
define Dentry as Box<dentry> [ Text name: d_iname
    Link d_inode -> Inode(${@this->d_inode}) ]
define File as Box<file> [ Text f_pos
    Link dentry -> Dentry(${@this->f_path.dentry}) ]
define Fdt as Box<fdtable> [ Text max_fds
    Link fd3 -> File(${@this->fd[3]}) ]
define Files as Box<files_struct> [ Text count
    Link fdt -> Fdt(${@this->fdt}) ]
define Task as Box<task_struct> [
    Text pid
    Link files -> Files(${@this->files})
]
root = Task(${find_task(100)})
plot @root
`
	for _, c := range []struct{ name, prog string }{{"flattened", flat}, {"materialized", deep}} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := core.SessionOver(k, k.Target())
				if _, err := s.VPlot(c.name, c.prog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDistill contrasts reading the maple tree as a raw node
// graph against the Array.selectFrom distilled list (which piggybacks on
// the same extraction, so the delta is the distill pass itself).
func BenchmarkAblationDistill(b *testing.B) {
	k := kernel()
	raw := vclstdlib.Fig9_2 // includes the distilled view
	noDistill := `
define VMArea as Box<vm_area_struct> [
    Text<u64:x> vm_start, vm_end
]
define MapleLeaf as Box<maple_node> [
    Container slots: Array(${@this->mr64.slot}).forEach |s| {
        yield switch ${@s == 0} {
            case ${true}: NULL
            otherwise: VMArea(@s)
        }
    }
]
define MapleARange as Box<maple_node> [
    Container slots: Array(${@this->ma64.slot}).forEach |s| {
        yield switch ${xa_is_node(@s)} {
            case ${false}: NULL
            otherwise: switch ${mte_is_leaf(@s)} {
                case ${true}: MapleLeaf(${mte_to_node(@s)})
                otherwise: MapleARange(${mte_to_node(@s)})
            }
        }
    }
]
define MM as Box<mm_struct> [
    Link mt -> switch ${mte_is_leaf(@this->mm_mt.ma_root)} {
        case ${true}: MapleLeaf(${mte_to_node(@this->mm_mt.ma_root)})
        otherwise: MapleARange(${mte_to_node(@this->mm_mt.ma_root)})
    }
]
root = MM(${find_task(100)->mm})
plot @root
`
	for _, c := range []struct{ name, prog string }{{"with-distill", raw}, {"tree-only", noDistill}} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := core.SessionOver(k, k.Target())
				if _, err := s.VPlot(c.name, c.prog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExprShare isolates the §5.4 bottleneck claim: the dominant cost
// of extraction is C-expression evaluation. It measures the raw expression
// evaluator on the hottest expression shape (pointer-chasing member reads).
func BenchmarkExprShare(b *testing.B) {
	k := kernel()
	env := expr.NewEnv(k.Target())
	kernelsim.RegisterHelpers(env)
	task := k.ByPID[100]
	env.Vars["this"] = expr.MakePointer(k.Reg.MustLookup("task_struct"), task.Addr)
	ex := expr.MustParse("@this->files->fdt->fd[3]->f_path.dentry->d_inode->i_size", env.Types())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Eval(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRenderText measures the rendering path (claimed negligible).
func BenchmarkRenderText(b *testing.B) {
	s := core.SessionOver(kernel(), kernel().Target())
	if _, err := s.VPlotFigure("9-2"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.VCtrl("show 1 text"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadScaling sweeps the workload size for the fastest and the
// heaviest figure, showing extraction cost scales with state size.
func BenchmarkWorkloadScaling(b *testing.B) {
	for _, procs := range []int{2, 5, 10, 20} {
		procs := procs
		b.Run(fmt.Sprintf("procs-%d", procs), func(b *testing.B) {
			k := kernelsim.Build(kernelsim.Options{Processes: procs})
			fig, _ := vclstdlib.FigureByID("3-4")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := perf.MeasureFigure(k, fig); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLatencyModelOverhead verifies the virtual clock adds negligible
// wall cost versus the raw target (so KGDB numbers are purely modeled).
func BenchmarkLatencyModelOverhead(b *testing.B) {
	k := kernel()
	lt := target.WithLatency(k.Target(), target.DefaultKGDB)
	buf := make([]byte, 8)
	b.Run("raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = k.Target().ReadMemory(k.InitTask.Addr, buf)
		}
	})
	b.Run("latency-virtual", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = lt.ReadMemory(k.InitTask.Addr, buf)
		}
	})
}
