// Live debugging: the paper's iterative "guess-and-check" loop (§3) with a
// kernel that moves between plots. We replay CVE-2022-0847 as a staged
// attack — pause, plot, step, re-plot — watching the figure evolve exactly
// as §5.3 describes ("This figure evolves as the debugging process
// proceeds"), then do the same for the StackRot deferred-free window using
// mmap-triggered maple rebuilds.
package main

import (
	"fmt"
	"log"
	"strings"

	"visualinux/internal/core"
	"visualinux/internal/graph"
	"visualinux/internal/kernelsim"
	"visualinux/internal/vclstdlib"
)

const pipeProgram = `
define PageBox as Box<page> [
    Text index
    Text<flag:page_flags> flags: flags
]
define PipeBuffer as Box<pipe_buffer> [
    Text len
    Text<flag:pipe_buf_flags> flags: flags
    Link page -> PageBox(${@this->page})
]
define Pipe as Box<pipe_inode_info> [
    Text head, tail
    Container bufs: PipeRing(@this).forEach |b| {
        yield PipeBuffer(@b)
    }
]
define AddressSpace as Box<address_space> [
    Text nrpages
    Container pages: XArray(${@this->i_pages}).forEach |e| {
        yield PageBox(@e)
    }
]
define FileBox as Box<file> [
    Text name: ${@this->f_path.dentry->d_iname}
    Link pagecache -> AddressSpace(${@this->f_mapping})
]
f = FileBox(${find_task(100)->files->fdt->fd[3]})
p = Pipe(${&live_pipe})
plot @f
plot @p
`

func main() {
	fmt.Println("== Live debugging: stepping the kernel between plots ==")
	k := kernelsim.Build(kernelsim.Options{DisableDirtyPipe: true})
	pipe := k.MakePipe()
	k.Symbol("live_pipe", k.At("pipe_inode_info", pipe.Addr))

	plot := func(label string) *graph.Graph {
		session := core.SessionOver(k, k.Target())
		p, err := session.VPlot(label, pipeProgram)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		g := p.Graph
		fromFile := g.Reachable([]string{g.Roots[0]})
		fromPipe := g.Reachable([]string{g.Roots[1]})
		shared, dirty := 0, 0
		for _, b := range g.ByType("page") {
			if fromFile[b.ID] && fromPipe[b.ID] {
				shared++
			}
			if fl, ok := b.Member("flags"); ok && strings.Contains(fl.Value, "PG_dirty") {
				dirty++
			}
		}
		fmt.Printf("[%-22s] boxes=%-3d shared file<->pipe pages=%d dirty pages=%d\n",
			label, len(g.Boxes), shared, dirty)
		return g
	}

	fmt.Println("\n-- Dirty Pipe, step by step --")
	plot("0: fresh pipe")

	must(k.PipeWrite(pipe, 128))
	plot("1: normal pipe write")

	// Splice the file the plot is watching: pid 100's fd 3.
	files := k.At("files_struct", k.ByPID[100].Get("files"))
	fd3, _ := k.Mem.ReadU64(files.FieldAddr("fd_array") + 3*8)
	file := k.At("file", fd3)
	must(k.SpliceToPipe(file, 0, pipe, 512, true /* the CVE: flags not cleared */))
	plot("2: buggy splice()")

	must(k.PipeWrite(pipe, 64))
	g := plot("3: attacker write")
	for _, b := range g.ByType("pipe_buffer") {
		fl, _ := b.Member("flags")
		pg, _ := b.Member("page")
		if pg.TargetID != "" && strings.Contains(fl.Value, "CAN_MERGE") {
			if pb, ok := g.Get(pg.TargetID); ok {
				if pfl, ok := pb.Member("flags"); ok && strings.Contains(pfl.Value, "PG_dirty") {
					fmt.Printf("    => %s merged into %s: the file's cache page is now DIRTY\n", b.ID, pg.TargetID)
				}
			}
		}
	}

	fmt.Println("\n-- StackRot window, step by step --")
	victim := k.ByPID[100]
	k.Symbol("stackrot_mm", k.At("mm_struct", victim.Get("mm")))
	plotSR := func(label string) {
		session := core.SessionOver(k, k.Target())
		p, err := session.VPlot(label, vclstdlib.StackRotProgram)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		g := p.Graph
		fmt.Printf("[%-22s] rcu callbacks=%d dead maple nodes linked=%d\n",
			label, len(g.ByType("rcu_head")), countDead(g))
	}
	plotSR("0: quiescent")
	if _, err := k.MapRegion(100, 0x7200_0000_0000, 0x7200_0002_0000,
		kernelsim.VMRead|kernelsim.VMWrite, kernelsim.Obj{}); err != nil {
		log.Fatal(err)
	}
	plotSR("1: stack-expand mmap")
	fmt.Println("    => the replaced maple nodes now sit on the RCU waiting list while")
	fmt.Println("       concurrent readers may still dereference them (CVE-2023-3269)")
}

func countDead(g *graph.Graph) int {
	n := 0
	for _, h := range g.ByType("rcu_head") {
		if e, ok := h.Member("embedded_in"); ok && e.TargetID != "" {
			n++
		}
	}
	return n
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
