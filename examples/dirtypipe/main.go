// Dirty Pipe (CVE-2022-0847): the paper's §5.3 case study (Fig 7).
//
// The staged state: a splice() moved data from test.txt into a pipe
// zero-copy, and copy_page_to_iter_pipe() forgot to initialize the buffer
// flags — the stale PIPE_BUF_FLAG_CAN_MERGE marks a page-cache page as
// writable through the pipe. The ViewCL program plots the page caches of
// all files and all pipe rings of the victim process; the paper's ViewQL
// trims every page except those shared between a file and a pipe, leaving
// exactly the corrupted sharing visible.
package main

import (
	"fmt"
	"log"
	"strings"

	"visualinux/internal/core"
	"visualinux/internal/graph"
	"visualinux/internal/kernelsim"
	"visualinux/internal/render"
	"visualinux/internal/vclstdlib"
)

func main() {
	fmt.Println("== Visualinux case study (3): Dirty Pipe (CVE-2022-0847) ==")
	session, kernel := core.NewKernelSession(kernelsim.Options{})

	pane, err := session.VPlot("dirtypipe", vclstdlib.DirtyPipeProgram)
	if err != nil {
		log.Fatalf("vplot: %v", err)
	}
	g := pane.Graph
	fmt.Printf("extracted %d boxes from pid 107's fd table\n", len(g.Boxes))

	pagesBefore := 0
	for _, b := range g.ByType("page") {
		if render.Visible(g)[b.ID] {
			pagesBefore++
		}
	}

	// The paper's §5.3 ViewQL: REACHABLE sets + set difference.
	fmt.Println("\napplying the paper's ViewQL (trim pages not shared file<->pipe):")
	fmt.Print(vclstdlib.DirtyPipeCustomization)
	if err := session.ApplyViewQL(pane.ID, vclstdlib.DirtyPipeCustomization); err != nil {
		log.Fatalf("viewql: %v", err)
	}

	vis := render.Visible(g)
	pagesAfter := 0
	for _, b := range g.ByType("page") {
		if vis[b.ID] {
			pagesAfter++
		}
	}
	fmt.Printf("\nvisible pages: %d before -> %d after\n", pagesBefore, pagesAfter)

	shared := graph.BoxID("PageBox", kernel.SharedPage.Addr)
	fmt.Printf("shared page %s still visible: %v\n", shared, vis[shared])

	// Point at the bug: the buffer holding the shared page with CAN_MERGE.
	for _, b := range g.ByType("pipe_buffer") {
		fl, _ := b.Member("flags")
		pg, _ := b.Member("page")
		if pg.TargetID == shared {
			fmt.Printf("\npipe_buffer %s:\n  page  -> %s (test.txt page cache!)\n  flags =  %s\n",
				b.ID, pg.TargetID, fl.Value)
			if strings.Contains(fl.Value, "CAN_MERGE") {
				fmt.Println("  => BUG: CAN_MERGE on a spliced page-cache page lets pipe writes")
				fmt.Println("     merge into the shared page, corrupting the file (CVE-2022-0847)")
			}
		}
	}

	fmt.Println("\n-- final plot --")
	fmt.Print(render.Text(g))
}
