// Maple tree live visualization: the paper's §3.1 case study.
//
// The maple tree replaced the VMA red-black tree in Linux 6.1 and is barely
// documented; this example plots a real (simulated) process address space:
// the tagged-pointer node tree is unwrapped with switch-case ViewCL, then
// customized with the paper's Fig 4 ViewQL (collapse slot arrays, trim
// writable VMAs), and finally distilled into a pmap-like sorted list.
package main

import (
	"fmt"
	"log"

	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
	"visualinux/internal/render"
	"visualinux/internal/vclstdlib"
)

func main() {
	fmt.Println("== Visualinux case study (1): the maple tree ==")
	session, _ := core.NewKernelSession(kernelsim.Options{})

	pane, err := session.VPlot("maple", vclstdlib.MapleTreeProgram)
	if err != nil {
		log.Fatalf("vplot: %v", err)
	}
	g := pane.Graph
	nodes := g.ByType("maple_node")
	vmas := g.ByType("vm_area_struct")
	fmt.Printf("extracted: %d maple nodes, %d VMAs, %d boxes total\n\n",
		len(nodes), len(vmas), len(g.Boxes))

	fmt.Println("-- raw maple tree (default view shows only mm counters) --")
	fmt.Print(render.Text(g))

	if err := session.ApplyViewQL(pane.ID, vclstdlib.MapleTreeCustomization); err != nil {
		log.Fatalf("viewql: %v", err)
	}
	fmt.Println("\n-- after the paper's Fig 4 ViewQL (tree view, slots collapsed, writable VMAs trimmed) --")
	fmt.Print(render.Text(g))

	// Distill: the :show_addrspace view's sorted interval list.
	if err := session.ApplyViewQL(pane.ID, `
mm = SELECT mm_struct FROM *
UPDATE mm WITH view: show_addrspace
writable = SELECT vm_area_struct FROM * WHERE is_writable == true
UPDATE writable WITH trimmed: false
`); err != nil {
		log.Fatalf("viewql: %v", err)
	}
	fmt.Println("\n-- distilled pmap-like address space (Array.selectFrom) --")
	for _, b := range g.ByType("mm_struct") {
		if space, ok := b.Member("mm_addr_space"); ok {
			for _, id := range space.Elems {
				if id == "" {
					continue
				}
				v, _ := g.Get(id)
				start, _ := v.Member("vm_start")
				end, _ := v.Member("vm_end")
				flags, _ := v.Member("vm_flags")
				file := "(anon)"
				if f, ok := v.Member("vm_file"); ok && f.TargetID != "" {
					if fb, ok := g.Get(f.TargetID); ok {
						if n, ok := fb.Member("name"); ok {
							file = n.Value
						}
					}
				}
				fmt.Printf("  %s-%s  %-32s %s\n", start.Value, end.Value, flags.Value, file)
			}
		}
	}
}
