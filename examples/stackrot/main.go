// StackRot (CVE-2023-3269): the paper's §3.2 / §5.3 case study.
//
// The kernel state is staged at the UAF window of Fig 5: CPU 0 freed a
// maple node under mm_read_lock; the free is deferred behind the RCU grace
// period (the node sits on rcu_data[0]'s callback list with mt_free_rcu)
// while CPU 1 still holds a pointer into the node. Plotting the mm's maple
// tree and the RCU waiting list side by side shows the SAME node box in
// both structures — the visual root cause. A natural-language vchat request
// then pins the node the developer fetched, hiding everything else.
package main

import (
	"fmt"
	"log"

	"visualinux/internal/core"
	"visualinux/internal/graph"
	"visualinux/internal/kernelsim"
	"visualinux/internal/render"
	"visualinux/internal/vclstdlib"
)

func main() {
	fmt.Println("== Visualinux case study (2): StackRot (CVE-2023-3269) ==")
	session, kernel := core.NewKernelSession(kernelsim.Options{})

	pane, err := session.VPlot("stackrot", vclstdlib.StackRotProgram)
	if err != nil {
		log.Fatalf("vplot: %v", err)
	}
	g := pane.Graph

	// The diagnosis: one maple node reachable from both plotted roots.
	dying := graph.BoxID("MapleLeaf", kernel.StackRotNode.Addr)
	fromTree := g.Reachable([]string{g.Roots[0]})
	fromRCU := g.Reachable([]string{g.Roots[1]})
	fmt.Printf("\nmm plot root:  %s\nrcu plot root: %s\n", g.Roots[0], g.Roots[1])
	fmt.Printf("maple node %s:\n  in mm's maple tree: %v\n  on RCU waiting list: %v\n",
		dying, fromTree[dying], fromRCU[dying])
	if fromTree[dying] && fromRCU[dying] {
		fmt.Println("  => USE-AFTER-FREE WINDOW: readers can still reach a node queued for free")
	}

	// Lock state, as the paper suggests visualizing.
	for _, b := range g.ByType("mm_struct") {
		readers, _ := b.Member("mmap_lock_readers")
		held, _ := b.Member("lock_held")
		fmt.Printf("mmap_lock: %s readers, held=%s\n", readers.Value, held.Value)
	}

	// The paper's natural-language pinning instruction.
	victim := kernel.StackRotVictim.Addr
	req := fmt.Sprintf("Find me all vm_area_struct whose address is not 0x%x, and hide them", victim)
	fmt.Printf("\nvchat> %s\n", req)
	prog, err := session.VChat(pane.ID, req)
	if err != nil {
		log.Fatalf("vchat: %v", err)
	}
	fmt.Println("synthesized ViewQL:")
	fmt.Print(prog)

	fmt.Println("\n-- final plot (only the victim VMA and the dying node's structures) --")
	fmt.Print(render.Text(g))
}
