// Quickstart: the paper's §1 walkthrough end to end.
//
//  1. Build a simulated kernel (the QEMU guest stand-in).
//  2. vplot the ViewCL program that extracts the CFS run queue of CPU 0 as
//     a red-black tree of pruned task boxes.
//  3. Apply the §1 ViewQL program that collapses every task except one pid
//     and its children.
//  4. vchat the same customization in natural language and show the
//     synthesized ViewQL.
package main

import (
	"fmt"
	"log"

	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
	"visualinux/internal/render"
	"visualinux/internal/vclstdlib"
)

func main() {
	fmt.Println("== Visualinux quickstart: the CFS run queue, visually ==")
	session, kernel := core.NewKernelSession(kernelsim.Options{})
	fmt.Printf("simulated kernel: %d tasks\n\n", len(kernel.Tasks))

	// (1) vplot: evaluate the ViewCL program from the paper's §1.
	pane, err := session.VPlot("sched", vclstdlib.QuickstartProgram)
	if err != nil {
		log.Fatalf("vplot: %v", err)
	}
	fmt.Println("-- extracted run queue (in vruntime order) --")
	fmt.Print(render.Text(pane.Graph))

	// (2) ViewQL: focus on process 100 and its children.
	if err := session.ApplyViewQL(pane.ID, vclstdlib.QuickstartCustomization); err != nil {
		log.Fatalf("viewql: %v", err)
	}
	fmt.Println("\n-- after ViewQL (everything but pid 100's family collapsed) --")
	fmt.Print(render.Text(pane.Graph))

	// (3) vchat: the same intent in natural language.
	prog, err := session.VChat(pane.ID, "shrink task_struct entries except for pid 100 and 101")
	if err != nil {
		log.Fatalf("vchat: %v", err)
	}
	fmt.Println("\n-- vchat synthesized this ViewQL from natural language --")
	fmt.Print(prog)

	// (4) stats, as Table 4 reports them.
	st := pane.Graph.Stats
	fmt.Printf("\nextraction stats: %d objects, %d reads, %d bytes, %.2fms\n",
		st.Objects, st.Reads, st.Bytes, float64(st.DurationNS)/1e6)
}
