// Command ulkgen regenerates the paper's Table 2: it evaluates every ULK
// figure program against the simulated kernel, reports per-figure ViewCL
// LOC and the structure-change class, and can dump each figure's plot.
//
// Usage:
//
//	ulkgen              # print Table 2
//	ulkgen -render 7-1  # also print the rendered plot of one figure
//	ulkgen -render all  # render every figure
//	ulkgen -dot 9-2     # emit Graphviz dot for one figure
package main

import (
	"flag"
	"fmt"
	"os"

	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
	"visualinux/internal/render"
	"visualinux/internal/vclstdlib"
)

func main() {
	renderID := flag.String("render", "", "render a figure's plot as text ('all' for every figure)")
	dotID := flag.String("dot", "", "emit Graphviz dot for a figure")
	flag.Parse()

	s, _ := core.NewKernelSession(kernelsim.Options{})

	fmt.Println("Table 2: representative ULK figures ported to the simulated Linux 6.1 state")
	fmt.Printf("%-4s %-12s %-52s %5s %8s  %s\n", "#", "figure", "description", "LOC", "paperLOC", "delta")
	for i, fig := range vclstdlib.Figures() {
		p, err := s.VPlot(fig.ID, fig.Program)
		status := ""
		boxes := 0
		if err != nil {
			status = " EXTRACTION FAILED: " + err.Error()
		} else {
			boxes = len(p.Graph.Boxes)
		}
		fmt.Printf("%-4d %-12s %-52s %5d %8d  %s (%s)  [%d boxes]%s\n",
			i+1, fig.ID, fig.Title, fig.LOC(), fig.PaperLOC, fig.Delta.Symbol(), fig.Delta, boxes, status)
	}

	dump := func(id string, asDot bool) {
		fig, ok := vclstdlib.FigureByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "ulkgen: unknown figure %q\n", id)
			os.Exit(1)
		}
		p, err := s.VPlot(fig.ID+"-render", fig.Program)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ulkgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\n--- figure %s: %s ---\n", fig.ID, fig.Title)
		if asDot {
			fmt.Print(render.DOT(p.Graph))
		} else {
			fmt.Print(render.Text(p.Graph))
		}
	}
	if *renderID == "all" {
		for _, fig := range vclstdlib.Figures() {
			dump(fig.ID, false)
		}
	} else if *renderID != "" {
		dump(*renderID, false)
	}
	if *dotID != "" {
		dump(*dotID, true)
	}
}
