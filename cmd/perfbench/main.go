// Command perfbench regenerates the paper's Table 4: per-figure
// visualization overhead on the "GDB (QEMU)" (fast simulated) target and
// the "KGDB (rpi-400)" (latency-modeled) target, plus the qualitative
// shape checks of §5.4. The KGDB column is measured twice — with the
// paper-faithful uncached stub, and with the snapshot read cache the live
// session uses — so the table doubles as the cache's before/after report.
//
// Usage:
//
//	perfbench                    # virtual-clock KGDB accounting (fast)
//	perfbench -sleep             # really sleep per read (live wall-clock)
//	perfbench -perread 5ms       # tune the modeled round-trip latency
//	perfbench -procs 10          # scale the workload population
//	perfbench -json BENCH_1.json # also write per-figure results as JSON
//	perfbench -rspjson BENCH_3.json
//	                             # also measure the slow-link personality — a
//	                             # PacketSize=512 RSP stub behind the snapshot
//	                             # cache, deterministic modeled cost — and
//	                             # write it as JSON (benchguard-compatible)
//	perfbench -steadyjson BENCH_4.json
//	                             # also run the steady-state incremental
//	                             # personality — attach, extract all figures,
//	                             # one Dirty-Pipe mutation, stop, re-extract —
//	                             # and write the cold-vs-steady report as JSON
//	perfbench -cpujson BENCH_6.json
//	                             # also run the CPU personality — cold
//	                             # extraction per figure through the compiled
//	                             # closure-chain engine vs the tree-walking
//	                             # interpreter, same process, no link cost —
//	                             # and write the report as JSON. The speedup
//	                             # column is a same-run internal ratio; the
//	                             # absolute ms values are host wall-clock.
//	perfbench -streamjson BENCH_7.json
//	                             # also run the stream fan-out personality —
//	                             # a live server free-running stop events
//	                             # into broker-level SSE client mixes (all
//	                             # fast; one slow straggler; half slow) —
//	                             # and write the push-latency/coalescing
//	                             # report as JSON. Latencies are host
//	                             # wall-clock; benchguard gates them with
//	                             # absolute ceilings/floors (-pushp95ceil).
//	perfbench -tenantjson BENCH_8.json
//	                             # also run the multi-tenant personality — one
//	                             # server admits a 64-session fleet through
//	                             # POST /sessions, serves pane reads against
//	                             # every tenant, then measures a victim
//	                             # session's stop-event round beside a hot
//	                             # free-running neighbor — and write the
//	                             # admission/serving/isolation report as JSON.
//	                             # Latencies are host wall-clock (absolute
//	                             # benchguard ceilings); the shared-infra
//	                             # counters are exact (zero stdlib re-parses
//	                             # and re-compiles after the first admission).
//	perfbench -memjson BENCH_9.json
//	                             # also run the fleet-memory personality — the
//	                             # same 64-session fleet admitted twice, once
//	                             # forking the shared CoW template image and
//	                             # once building every kernel privately — and
//	                             # write the admission/residency report as
//	                             # JSON. Admission latencies are host
//	                             # wall-clock (gated by the fork<=build
//	                             # comparison and absolute ceilings); the
//	                             # dedup ratio and CoW counters are
//	                             # deterministic byte accounting.
//	perfbench -fleetjson BENCH_10.json
//	                             # also run the fleet-query personality — a
//	                             # 16-target mixed fleet (live sims across
//	                             # three workload variants plus two loaded
//	                             # core dumps) answers one ViewQL program
//	                             # through POST /fleet/query, measured
//	                             # against the serial per-target loop — and
//	                             # write the fan-out/merge report as JSON.
//	                             # Latencies are host wall-clock (absolute
//	                             # benchguard ceilings); the merge counters
//	                             # are deterministic.
//	perfbench -trace out.json    # also write a Chrome trace_event profile
//	                             # of every figure's cached-KGDB extraction
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"visualinux/internal/gdbrsp"
	"visualinux/internal/kernelsim"
	"visualinux/internal/obs"
	"visualinux/internal/perf"
	"visualinux/internal/target"
	"visualinux/internal/vclstdlib"
)

// benchRecord is one BENCH_1.json entry: the same figure across the
// target personalities, with the raw traffic counters behind the costs.
type benchRecord struct {
	Figure         string  `json:"figure"`
	Objects        int     `json:"objects"`
	GDBNsOp        int64   `json:"gdb_ns_op"`
	BytesRead      uint64  `json:"bytes_read"`
	Transactions   uint64  `json:"transactions"`
	KGDBMs         float64 `json:"kgdb_ms"`
	KGDBUncachedMs float64 `json:"kgdb_uncached_ms"`
	CacheSpeedup   float64 `json:"cache_speedup"`
}

// rspRecord is one BENCH_3.json entry: the slow-link personality — a small
// negotiated PacketSize, annex continuation batching, snapshot cache — with
// the purely modeled link cost in kgdb_ms (benchguard keys on figure +
// kgdb_ms, so the same guard binary watches this file too).
type rspRecord struct {
	Figure        string  `json:"figure"`
	Objects       int     `json:"objects"`
	PacketSize    int     `json:"packet_size"`
	Transactions  uint64  `json:"transactions"`
	Continuations uint64  `json:"continuations"`
	BytesRead     uint64  `json:"bytes_read"`
	KGDBMs        float64 `json:"kgdb_ms"`
}

func main() {
	sleep := flag.Bool("sleep", false, "really sleep per read instead of virtual accounting")
	rsp := flag.Bool("rsp", false, "also measure extraction through a real GDB-RSP loopback socket")
	jsonOut := flag.String("json", "", "write per-figure results to this JSON file (e.g. BENCH_1.json)")
	rspJSONOut := flag.String("rspjson", "", "write the slow-link (PacketSize-constrained RSP, cached, modeled) results to this JSON file (e.g. BENCH_3.json)")
	steadyJSONOut := flag.String("steadyjson", "", "write the steady-state incremental re-extraction report to this JSON file (e.g. BENCH_4.json)")
	cpuJSONOut := flag.String("cpujson", "", "write the compiled-vs-interpreted CPU report to this JSON file (e.g. BENCH_6.json)")
	cpuIters := flag.Int("cpuiters", 0, "per-figure samples for -cpujson (0 = default)")
	streamJSONOut := flag.String("streamjson", "", "write the stream fan-out push-latency report to this JSON file (e.g. BENCH_7.json)")
	streamRounds := flag.Int("streamrounds", 0, "free-run stop events per client mix for -streamjson (0 = default)")
	tenantJSONOut := flag.String("tenantjson", "", "write the multi-tenant session-fabric report to this JSON file (e.g. BENCH_8.json)")
	tenantSessions := flag.Int("tenantsessions", 0, "fleet size for -tenantjson (0 = default of 64)")
	tenantReqs := flag.Int("tenantreqs", 0, "pane reads per session for -tenantjson (0 = default)")
	tenantRounds := flag.Int("tenantrounds", 0, "victim stop-event rounds per isolation arm for -tenantjson (0 = default)")
	memJSONOut := flag.String("memjson", "", "write the fleet-memory (CoW template fork vs private build) report to this JSON file (e.g. BENCH_9.json)")
	memSessions := flag.Int("memsessions", 0, "fleet size for -memjson (0 = default of 64)")
	memReqs := flag.Int("memreqs", 0, "pane reads per session for -memjson (0 = default)")
	fleetJSONOut := flag.String("fleetjson", "", "write the fleet-query (cross-target fan-out vs serial loop) report to this JSON file (e.g. BENCH_10.json)")
	fleetTargets := flag.Int("fleettargets", 0, "fleet size for -fleetjson, two of which are loaded core dumps (0 = default of 16)")
	fleetQueries := flag.Int("fleetqueries", 0, "query rounds per arm for -fleetjson (0 = default of 32)")
	packetSize := flag.Int("packetsize", 512, "negotiated RSP PacketSize for -rspjson (the serial-stub constraint)")
	traceOut := flag.String("trace", "", "write a Chrome trace_event file of every figure's cached-KGDB extraction (open in chrome://tracing or Perfetto)")
	perRead := flag.Duration("perread", 5*time.Millisecond, "modeled KGDB round-trip per read")
	perByte := flag.Duration("perbyte", 2*time.Microsecond, "modeled KGDB cost per byte")
	perCont := flag.Duration("percont", 50*time.Microsecond, "modeled cost per continuation packet of an open transfer")
	procs := flag.Int("procs", 0, "workload processes (0 = paper default of 5)")
	churn := flag.Int("churn", 0, "age the state through N live-transition rounds before measuring")
	flag.Parse()

	model := target.LatencyModel{PerRead: *perRead, PerByte: *perByte, PerContinuation: *perCont, Sleep: *sleep}
	opts := kernelsim.Options{Processes: *procs, Churn: *churn}

	uncached, err := perf.Table4Uncached(opts, model)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(perf.Format(uncached))

	cached, err := perf.Table4(opts, model)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("\nExtra: KGDB behind the snapshot read cache (one page fetch per page per stop):")
	fmt.Printf("%-12s | %12s %12s %8s | %6s %6s\n",
		"figure", "uncached(ms)", "cached(ms)", "speedup", "txns", "was")
	for i, p := range cached {
		u := uncached[i]
		speedup := 0.0
		if p.KGDB.TotalMS > 0 {
			speedup = u.KGDB.TotalMS / p.KGDB.TotalMS
		}
		fmt.Printf("%-12s | %12.1f %12.1f %7.1fx | %6d %6d\n",
			p.FigureID, u.KGDB.TotalMS, p.KGDB.TotalMS, speedup,
			p.KGDB.Transactions, u.KGDB.Transactions)
	}

	if *rsp {
		rows, err := perf.Table4RSP(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: rsp: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(perf.FormatRows("Extra: extraction through a real GDB-RSP loopback socket", rows))
	}

	if *rspJSONOut != "" {
		// The slow-link personality: a PacketSize-constrained stub, the
		// snapshot cache on top, cost priced by the deterministic link model
		// (no wall clock), so the file is byte-stable across runs.
		rspModel := target.LatencyModel{PerRead: *perRead, PerByte: *perByte, PerContinuation: *perCont}
		rows, err := perf.Table4RSPCached(opts, rspModel, gdbrsp.WithPacketSize(*packetSize))
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: rspjson: %v\n", err)
			os.Exit(1)
		}
		recs := make([]rspRecord, len(rows))
		for i, r := range rows {
			recs[i] = rspRecord{
				Figure:        r.FigureID,
				Objects:       r.Objects,
				PacketSize:    *packetSize,
				Transactions:  r.Transactions,
				Continuations: r.Continuations,
				BytesRead:     uint64(r.KBytes * 1024),
				KGDBMs:        r.TotalMS,
			}
		}
		blob, err := json.MarshalIndent(recs, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: rspjson: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*rspJSONOut, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: rspjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s (slow-link personality, PacketSize=%d, modeled)\n", *rspJSONOut, *packetSize)
	}

	if *steadyJSONOut != "" {
		// The incremental personality: one generation-tagged snapshot, one
		// cold round, one Dirty-Pipe mutation, one steady round. Costs are
		// pure virtual link time, so the file is byte-stable across runs.
		steadyModel := target.LatencyModel{PerRead: *perRead, PerByte: *perByte, PerContinuation: *perCont, PerHashCheck: target.DefaultKGDB.PerHashCheck}
		rep, err := perf.MeasureSteadyState(opts, steadyModel, false)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: steadyjson: %v\n", err)
			os.Exit(1)
		}
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: steadyjson: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*steadyJSONOut, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: steadyjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nSteady-state incremental re-extraction (one Dirty-Pipe mutation between rounds):\n")
		fmt.Printf("%-12s | %10s %10s | %6s %6s %6s\n",
			"figure", "cold(ms)", "steady(ms)", "reused", "boxes+", "boxes=")
		for _, r := range rep.Rows {
			fmt.Printf("%-12s | %10.1f %10.1f | %6v %6d %6d\n",
				r.FigureID, r.ColdMS, r.SteadyMS, r.Reused, r.BoxBuilds, r.BoxReuses)
		}
		fmt.Printf("steady round = %.1f%% of cold; box reuse ratio %.2f; %d/%d figures served whole\n",
			rep.SteadyFraction*100, rep.ReuseRatio, rep.FiguresReused, rep.Figures)
		fmt.Printf("wrote %s\n", *steadyJSONOut)
	}

	if *cpuJSONOut != "" {
		// The CPU personality: both engines in one process against the fast
		// in-process target, so the speedup is a same-run internal ratio.
		rep, err := perf.MeasureCPU(opts, *cpuIters, "")
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: cpujson: %v\n", err)
			os.Exit(1)
		}
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: cpujson: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*cpuJSONOut, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: cpujson: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nCPU personality (compiled closure chains vs tree-walking interpreter, same run):\n")
		fmt.Print(perf.FormatCPU(rep))
		fmt.Printf("wrote %s\n", *cpuJSONOut)
	}

	if *streamJSONOut != "" {
		// The stream personality: live fan-out under mixed consumer speeds.
		// Broker-level clients keep TCP out of the measurement; the columns
		// are wall-clock, so the guard uses absolute ceilings, not a
		// baseline diff.
		rep, err := perf.MeasureStream(opts, *streamRounds)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: streamjson: %v\n", err)
			os.Exit(1)
		}
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: streamjson: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*streamJSONOut, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: streamjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nStream fan-out personality (free-run stop events into mixed-speed SSE client pools):\n")
		fmt.Print(perf.FormatStream(rep))
		fmt.Printf("wrote %s\n", *streamJSONOut)
	}

	if *tenantJSONOut != "" {
		// The tenant personality: one live server, a whole fleet of managed
		// sessions, and a victim-vs-hot isolation experiment. Wall-clock, so
		// the guard uses absolute ceilings plus exact zero-equality on the
		// shared-infrastructure counters.
		rep, err := perf.MeasureTenants(*tenantSessions, *tenantReqs, *tenantRounds)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: tenantjson: %v\n", err)
			os.Exit(1)
		}
		blob, err := perf.TenantReportJSON(rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: tenantjson: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*tenantJSONOut, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: tenantjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nMulti-tenant session-fabric personality (one server, %d sessions):\n", rep.Sessions)
		fmt.Print(perf.FormatTenants(rep))
		fmt.Printf("wrote %s\n", *tenantJSONOut)
	}

	if *memJSONOut != "" {
		// The fleet-memory personality: fork-vs-build admission arms over
		// the same fleet shape, then the CoW byte accounting. The dedup
		// ratio and counters are deterministic; only the admission and
		// serving latencies are wall-clock.
		rep, err := perf.MeasureFleetMem(*memSessions, *memReqs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: memjson: %v\n", err)
			os.Exit(1)
		}
		blob, err := perf.FleetMemReportJSON(rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: memjson: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*memJSONOut, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: memjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nFleet-memory personality (CoW template forks vs private builds, %d sessions):\n", rep.Sessions)
		fmt.Print(perf.FormatFleetMem(rep))
		fmt.Printf("wrote %s\n", *memJSONOut)
	}

	if *fleetJSONOut != "" {
		// The fleet-query personality: one ViewQL program fanned across a
		// mixed live+core fleet vs the serial per-target loop. The merge
		// counters are deterministic; only the latencies are wall-clock.
		rep, err := perf.MeasureFleet(*fleetTargets, *fleetQueries)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: fleetjson: %v\n", err)
			os.Exit(1)
		}
		blob, err := perf.FleetReportJSON(rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: fleetjson: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*fleetJSONOut, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: fleetjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nFleet-query personality (fan-out vs serial over %d mixed targets):\n", rep.Targets)
		fmt.Print(perf.FormatFleet(rep))
		fmt.Printf("wrote %s\n", *fleetJSONOut)
	}

	if *traceOut != "" {
		if err := writeTrace(*traceOut, opts, model); err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s (load in chrome://tracing or https://ui.perfetto.dev)\n", *traceOut)
	}

	if *jsonOut != "" {
		recs := make([]benchRecord, len(cached))
		for i, p := range cached {
			u := uncached[i]
			speedup := 0.0
			if p.KGDB.TotalMS > 0 {
				speedup = u.KGDB.TotalMS / p.KGDB.TotalMS
			}
			recs[i] = benchRecord{
				Figure:         p.FigureID,
				Objects:        p.GDB.Objects,
				GDBNsOp:        int64(p.GDB.TotalMS * 1e6),
				BytesRead:      uint64(p.KGDB.KBytes * 1024),
				Transactions:   p.KGDB.Transactions,
				KGDBMs:         p.KGDB.TotalMS,
				KGDBUncachedMs: u.KGDB.TotalMS,
				CacheSpeedup:   speedup,
			}
		}
		blob, err := json.MarshalIndent(recs, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: json: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *jsonOut)
	}

	fmt.Println("\nShape checks (paper §5.4 qualitative claims, uncached stub):")
	runShapeChecks(uncached)
}

// writeTrace re-measures every figure on the cached-KGDB personality with
// the obs tap inserted under the snapshot, then emits all span trees as one
// Chrome trace_event file (one track per figure).
func writeTrace(path string, opts kernelsim.Options, model target.LatencyModel) error {
	k := kernelsim.Build(opts)
	o := obs.NewObserver()
	var roots []*obs.SpanExport
	for _, fig := range vclstdlib.Figures() {
		_, tr, err := perf.MeasureFigureKGDBTraced(k, fig, model, o)
		if err != nil {
			return fmt.Errorf("figure %s: %w", fig.ID, err)
		}
		if tr != nil {
			roots = append(roots, tr)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, roots...); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runShapeChecks(uncached []perf.Pair) {
	fails := perf.ShapeChecks(uncached)
	if len(fails) == 0 {
		fmt.Println("  all hold: KGDB >=10x slower everywhere; cost ranks with read count;")
		fmt.Println("  small figures remain interactive on KGDB.")
	} else {
		for _, f := range fails {
			fmt.Println("  FAIL:", f)
		}
		os.Exit(1)
	}
}
