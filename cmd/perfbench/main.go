// Command perfbench regenerates the paper's Table 4: per-figure
// visualization overhead on the "GDB (QEMU)" (fast simulated) target and
// the "KGDB (rpi-400)" (latency-modeled) target, plus the qualitative
// shape checks of §5.4.
//
// Usage:
//
//	perfbench                    # virtual-clock KGDB accounting (fast)
//	perfbench -sleep             # really sleep per read (live wall-clock)
//	perfbench -perread 5ms       # tune the modeled round-trip latency
//	perfbench -procs 10          # scale the workload population
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"visualinux/internal/kernelsim"
	"visualinux/internal/perf"
	"visualinux/internal/target"
)

func main() {
	sleep := flag.Bool("sleep", false, "really sleep per read instead of virtual accounting")
	rsp := flag.Bool("rsp", false, "also measure extraction through a real GDB-RSP loopback socket")
	perRead := flag.Duration("perread", 5*time.Millisecond, "modeled KGDB round-trip per read")
	perByte := flag.Duration("perbyte", 2*time.Microsecond, "modeled KGDB cost per byte")
	procs := flag.Int("procs", 0, "workload processes (0 = paper default of 5)")
	churn := flag.Int("churn", 0, "age the state through N live-transition rounds before measuring")
	flag.Parse()

	model := target.LatencyModel{PerRead: *perRead, PerByte: *perByte, Sleep: *sleep}
	opts := kernelsim.Options{Processes: *procs, Churn: *churn}

	pairs, err := perf.Table4(opts, model)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(perf.Format(pairs))

	if *rsp {
		rows, err := perf.Table4RSP(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: rsp: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(perf.FormatRows("Extra: extraction through a real GDB-RSP loopback socket", rows))
	}

	fmt.Println("\nShape checks (paper §5.4 qualitative claims):")
	fails := perf.ShapeChecks(pairs)
	if len(fails) == 0 {
		fmt.Println("  all hold: KGDB >=10x slower everywhere; cost ranks with read count;")
		fmt.Println("  small figures remain interactive on KGDB.")
	} else {
		for _, f := range fails {
			fmt.Println("  FAIL:", f)
		}
		os.Exit(1)
	}
}
