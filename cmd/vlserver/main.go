// Command vlserver runs the Visualinux visualizer front-end as an HTTP
// service over a simulated kernel: POST v-commands, GET pane state, a
// minimal embedded browser UI at /, and observability surfaces under
// /debug/ (Prometheus metrics, per-pane extraction traces, slow log).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
	"visualinux/internal/obs"
	"visualinux/internal/server"
	"visualinux/internal/vclstdlib"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8873", "listen address")
	procs := flag.Int("procs", 0, "workload processes (0 = default of 5)")
	figure := flag.String("figure", "7-1", "figure to plot at startup ('' for none)")
	workspace := flag.String("workspace", "", "comma-separated figure IDs (or 'all') to extract concurrently on attach, each with its own trace")
	workers := flag.Int("workers", 0, "workspace extraction workers (0 = GOMAXPROCS)")
	metricsEvery := flag.Duration("metrics-interval", 0, "periodically snapshot the metrics registry into the /debug/metrics/history ring (0 disables)")
	baseline := flag.String("baseline", "", "perfbench result file (BENCH_4.json shape) whose steady_kgdb_ms rows become the /debug/diagnose baseline")
	runEvery := flag.Duration("run-interval", 0, "free-run the simulated kernel: every interval, apply one mutation workload step, take a stop event, re-extract incrementally, and push pane deltas to /stream clients (0 disables)")
	flag.Parse()

	o := obs.NewObserver()
	if *metricsEvery > 0 {
		stop := o.StartMetricsHistory(*metricsEvery)
		defer stop()
	}
	if *runEvery > 0 {
		runContinuous(*addr, *procs, *workspace, *figure, *baseline, *runEvery, o)
		return
	}
	session, k, _ := core.NewObservedKernelSession(kernelsim.Options{Processes: *procs}, o)
	if *baseline != "" {
		if err := session.LoadBaselineFile(*baseline); err != nil {
			log.Fatalf("vlserver: %v", err)
		}
	}

	if *workspace != "" {
		figs, err := workspaceFigures(*workspace)
		if err != nil {
			log.Fatalf("vlserver: %v", err)
		}
		panesOut, err := core.ExtractFiguresInto(session, k, figs, *workers)
		attached := 0
		for _, p := range panesOut {
			if p != nil {
				attached++
			}
		}
		if err != nil {
			// One bad figure must not take the workspace down: the good
			// panes are already attached — serve them, report the rest.
			log.Printf("vlserver: workspace extraction: %v", err)
		}
		if attached == 0 {
			log.Fatalf("vlserver: workspace extraction produced no panes")
		}
		fmt.Printf("vlserver: workspace attached: %d/%d figures extracted concurrently\n", attached, len(figs))
	} else if *figure != "" {
		if _, err := session.VPlotFigure(*figure); err != nil {
			log.Fatalf("vlserver: startup plot: %v", err)
		}
	}
	_, bytes := k.Mem.Footprint()
	fmt.Printf("vlserver: simulated kernel ready (%d tasks, %d KiB); listening on http://%s\n",
		len(k.Tasks), bytes/1024, *addr)
	fmt.Printf("vlserver: metrics at /debug/metrics (+/history), traces at /debug/trace/{pane|last}, slow log at /debug/slowlog, diagnosis at /debug/diagnose/{pane|slowest}\n")
	log.Fatal(http.ListenAndServe(*addr, server.New(session)))
}

// runContinuous is the live-dashboard mode: the simulated kernel free-runs
// under the deterministic mutation workload, and every -run-interval the
// server takes a stop event — advance the snapshot generation, re-extract
// every figure incrementally, and fan the changed panes out to /stream
// subscribers. Browsers watch kernel state evolve instead of polling.
func runContinuous(addr string, procs int, workspace, figure, baseline string, every time.Duration, o *obs.Observer) {
	spec := workspace
	if spec == "" {
		spec = figure
	}
	if spec == "" {
		log.Fatalf("vlserver: -run-interval needs -figure or -workspace")
	}
	figs, err := workspaceFigures(spec)
	if err != nil {
		log.Fatalf("vlserver: %v", err)
	}
	k := kernelsim.Build(kernelsim.Options{Processes: procs})
	x := core.NewIncrementalExtractor(k, k.Target(), figs, o)
	if baseline != "" {
		if err := x.Session.LoadBaselineFile(baseline); err != nil {
			log.Fatalf("vlserver: %v", err)
		}
	}
	if _, err := x.Round(); err != nil {
		log.Fatalf("vlserver: cold extraction round: %v", err)
	}
	srv := server.New(x.Session)

	w := kernelsim.NewWorkload(k)
	go func() {
		tick := time.NewTicker(every)
		defer tick.Stop()
		for range tick.C {
			if err := srv.StreamRound(func() error {
				w.Step()
				x.Advance()
				_, err := x.Round()
				return err
			}); err != nil {
				log.Printf("vlserver: stop-event round: %v", err)
			}
		}
	}()

	_, bytes := k.Mem.Footprint()
	fmt.Printf("vlserver: simulated kernel free-running (%d tasks, %d KiB, %d figures, stop event every %v); listening on http://%s\n",
		len(k.Tasks), bytes/1024, len(figs), every, addr)
	fmt.Printf("vlserver: live pane deltas at /stream (SSE), stream health at /debug/stream\n")
	log.Fatal(http.ListenAndServe(addr, srv))
}

// workspaceFigures resolves the -workspace flag into stdlib figures.
func workspaceFigures(spec string) ([]vclstdlib.Figure, error) {
	if spec == "all" {
		return vclstdlib.Figures(), nil
	}
	var figs []vclstdlib.Figure
	for _, id := range strings.Split(spec, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		fig, ok := vclstdlib.FigureByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown workspace figure %q (known: %s)", id, strings.Join(core.FigureIDs(), ", "))
		}
		figs = append(figs, fig)
	}
	if len(figs) == 0 {
		return nil, fmt.Errorf("empty -workspace")
	}
	return figs, nil
}
