// Command vlserver runs the Visualinux visualizer front-end as an HTTP
// service over a simulated kernel: POST v-commands, GET pane state, and a
// minimal embedded browser UI at /.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
	"visualinux/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8873", "listen address")
	procs := flag.Int("procs", 0, "workload processes (0 = default of 5)")
	figure := flag.String("figure", "7-1", "figure to plot at startup ('' for none)")
	flag.Parse()

	session, k := core.NewKernelSession(kernelsim.Options{Processes: *procs})
	if *figure != "" {
		if _, err := session.VPlotFigure(*figure); err != nil {
			log.Fatalf("vlserver: startup plot: %v", err)
		}
	}
	_, bytes := k.Mem.Footprint()
	fmt.Printf("vlserver: simulated kernel ready (%d tasks, %d KiB); listening on http://%s\n",
		len(k.Tasks), bytes/1024, *addr)
	log.Fatal(http.ListenAndServe(*addr, server.New(session)))
}
