// Command vlserver runs the Visualinux visualizer front-end as an HTTP
// service over a simulated kernel: POST v-commands, GET pane state, a
// minimal embedded browser UI at /, and observability surfaces under
// /debug/ (Prometheus metrics, per-pane extraction traces, slow log).
//
// The process is multi-tenant: besides the startup session on the legacy
// un-prefixed routes, clients create additional managed sessions with
// POST /sessions and address each under /sessions/{id}/... with the full
// surface re-rooted per session. Admission control is operator-tuned:
// -max-sessions caps the fleet, -session-mem rejects oversized kernels,
// -mem-budget LRU-evicts to fit a total footprint, and -idle-ttl reaps
// sessions nobody touches (a background sweeper runs at ttl/4). Fleet
// health is at /debug/sessions.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
	"visualinux/internal/obs"
	"visualinux/internal/server"
	"visualinux/internal/vclstdlib"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8873", "listen address")
	procs := flag.Int("procs", 0, "workload processes (0 = default of 5)")
	figure := flag.String("figure", "7-1", "figure to plot at startup ('' for none)")
	workspace := flag.String("workspace", "", "comma-separated figure IDs (or 'all') to extract concurrently on attach, each with its own trace")
	workers := flag.Int("workers", 0, "workspace extraction workers (0 = GOMAXPROCS)")
	metricsEvery := flag.Duration("metrics-interval", 0, "periodically snapshot the metrics registry into the /debug/metrics/history ring (0 disables)")
	baseline := flag.String("baseline", "", "perfbench result file (BENCH_4.json shape) whose steady_kgdb_ms rows become the /debug/diagnose baseline")
	runEvery := flag.Duration("run-interval", 0, "free-run the simulated kernel: every interval, apply one mutation workload step, take a stop event, re-extract incrementally, and push pane deltas to /stream clients (0 disables)")
	maxSessions := flag.Int("max-sessions", 0, "managed-session admission cap for POST /sessions (0 = default of 256)")
	sessionMem := flag.Int64("session-mem", 0, "per-session simulated-kernel footprint cap in bytes; larger creates are rejected (0 = unbounded)")
	memBudget := flag.Int64("mem-budget", 0, "total simulated-kernel bytes across managed sessions; LRU sessions are evicted to fit (0 = unbounded)")
	idleTTL := flag.Duration("idle-ttl", 0, "evict managed sessions idle this long; a background sweeper runs at ttl/4 (0 = never)")
	privateBuilds := flag.Bool("private-builds", false, "build each managed session's kernel privately instead of forking the shared CoW template image (debugging escape hatch; admission is ~10x slower and nothing dedups)")
	coreFile := flag.String("core", "", "attach post-mortem: serve a VLCORE01 core dump instead of a live simulated kernel (read-only; rounds are rejected)")
	flag.Parse()

	o := obs.NewObserver()
	if *metricsEvery > 0 {
		stop := o.StartMetricsHistory(*metricsEvery)
		defer stop()
	}
	mgr := core.NewSessionManager(core.ManagerOptions{
		MaxSessions:   *maxSessions,
		SessionBudget: clampBytes(*sessionMem),
		MemBudget:     clampBytes(*memBudget),
		IdleTTL:       *idleTTL,
		PrivateBuilds: *privateBuilds,
	}, o)
	startIdleSweeper(mgr, *idleTTL)
	if *coreFile != "" {
		servePostMortem(*addr, *coreFile, *figure, *workspace, mgr)
		return
	}
	if *runEvery > 0 {
		runContinuous(*addr, *procs, *workspace, *figure, *baseline, *runEvery, o, mgr)
		return
	}
	session, k, _ := core.NewObservedKernelSession(kernelsim.Options{Processes: *procs}, o)
	if *baseline != "" {
		if err := session.LoadBaselineFile(*baseline); err != nil {
			log.Fatalf("vlserver: %v", err)
		}
	}

	if *workspace != "" {
		figs, err := workspaceFigures(*workspace)
		if err != nil {
			log.Fatalf("vlserver: %v", err)
		}
		panesOut, err := core.ExtractFiguresInto(session, k, figs, *workers)
		attached := 0
		for _, p := range panesOut {
			if p != nil {
				attached++
			}
		}
		if err != nil {
			// One bad figure must not take the workspace down: the good
			// panes are already attached — serve them, report the rest.
			log.Printf("vlserver: workspace extraction: %v", err)
		}
		if attached == 0 {
			log.Fatalf("vlserver: workspace extraction produced no panes")
		}
		fmt.Printf("vlserver: workspace attached: %d/%d figures extracted concurrently\n", attached, len(figs))
	} else if *figure != "" {
		if _, err := session.VPlotFigure(*figure); err != nil {
			log.Fatalf("vlserver: startup plot: %v", err)
		}
	}
	_, bytes := k.Mem.Footprint()
	fmt.Printf("vlserver: simulated kernel ready (%d tasks, %d KiB); listening on http://%s\n",
		len(k.Tasks), bytes/1024, *addr)
	fmt.Printf("vlserver: metrics at /debug/metrics (+/history), traces at /debug/trace/{pane|last}, slow log at /debug/slowlog, diagnosis at /debug/diagnose/{pane|slowest}\n")
	fmt.Printf("vlserver: session fabric: POST /sessions admits tenants (each at /sessions/{id}/...), fleet health at /debug/sessions\n")
	log.Fatal(http.ListenAndServe(*addr, server.NewManagedDefault(mgr, session)))
}

// clampBytes converts a byte-count flag to the manager's unsigned budget,
// treating negatives as "unbounded" rather than wrapping.
func clampBytes(n int64) uint64 {
	if n <= 0 {
		return 0
	}
	return uint64(n)
}

// startIdleSweeper reaps idle managed sessions in the background at a
// quarter of the TTL (floor 1s), so eviction does not wait for the next
// admission to sweep. No-op when the TTL is unset.
func startIdleSweeper(mgr *core.SessionManager, ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	every := ttl / 4
	if every < time.Second {
		every = time.Second
	}
	go func() {
		tick := time.NewTicker(every)
		defer tick.Stop()
		for range tick.C {
			if ids := mgr.SweepIdle(); len(ids) > 0 {
				log.Printf("vlserver: evicted %d idle session(s): %s", len(ids), strings.Join(ids, ", "))
			}
		}
	}()
}

// servePostMortem is the -core attach mode: load a VLCORE01 dump, admit it
// through the manager as a read-only post-mortem session, and serve it on
// the legacy routes (and under /sessions/core/ like any tenant). Further
// dumps or live sims can still be admitted beside it with POST /sessions,
// so one process fleet-queries live and crashed targets together.
func servePostMortem(addr, path, figure, workspace string, mgr *core.SessionManager) {
	img, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("vlserver: -core: %v", err)
	}
	var figIDs []string
	if workspace != "" && workspace != "all" {
		figs, err := workspaceFigures(workspace)
		if err != nil {
			log.Fatalf("vlserver: %v", err)
		}
		for _, f := range figs {
			figIDs = append(figIDs, f.ID)
		}
	} else if workspace == "" && figure != "" {
		figIDs = []string{figure}
	}
	ms, err := mgr.Create("core", core.SessionOptions{
		Source:    core.SourceCore,
		CoreImage: img,
		Figures:   figIDs,
	})
	if err != nil && ms == nil {
		log.Fatalf("vlserver: loading %s: %v", path, err)
	}
	if err != nil {
		log.Printf("vlserver: partial extraction from %s: %v", path, err)
	}
	_, bytes := ms.Mem.Footprint()
	fmt.Printf("vlserver: post-mortem session from %s (%d KiB image, %d panes); listening on http://%s\n",
		path, bytes/1024, len(ms.Session.Tree.Panes()), addr)
	fmt.Printf("vlserver: session is read-only: POST /round answers 422; fleet queries at /fleet/query span it and any live sessions admitted beside it\n")
	log.Fatal(http.ListenAndServe(addr, server.NewManaged(mgr, ms)))
}

// runContinuous is the live-dashboard mode: the simulated kernel free-runs
// under the deterministic mutation workload, and every -run-interval the
// server takes a stop event — advance the snapshot generation, re-extract
// every figure incrementally, and fan the changed panes out to /stream
// subscribers. Browsers watch kernel state evolve instead of polling.
func runContinuous(addr string, procs int, workspace, figure, baseline string, every time.Duration, o *obs.Observer, mgr *core.SessionManager) {
	spec := workspace
	if spec == "" {
		spec = figure
	}
	if spec == "" {
		log.Fatalf("vlserver: -run-interval needs -figure or -workspace")
	}
	figs, err := workspaceFigures(spec)
	if err != nil {
		log.Fatalf("vlserver: %v", err)
	}
	k := kernelsim.Build(kernelsim.Options{Processes: procs})
	x := core.NewIncrementalExtractor(k, k.Target(), figs, o)
	if baseline != "" {
		if err := x.Session.LoadBaselineFile(baseline); err != nil {
			log.Fatalf("vlserver: %v", err)
		}
	}
	if _, err := x.Round(); err != nil {
		log.Fatalf("vlserver: cold extraction round: %v", err)
	}
	srv := server.NewManagedDefault(mgr, x.Session)

	w := kernelsim.NewWorkload(k)
	go func() {
		tick := time.NewTicker(every)
		defer tick.Stop()
		for range tick.C {
			if err := srv.StreamRound(func() error {
				w.Step()
				x.Advance()
				_, err := x.Round()
				return err
			}); err != nil {
				log.Printf("vlserver: stop-event round: %v", err)
			}
		}
	}()

	_, bytes := k.Mem.Footprint()
	fmt.Printf("vlserver: simulated kernel free-running (%d tasks, %d KiB, %d figures, stop event every %v); listening on http://%s\n",
		len(k.Tasks), bytes/1024, len(figs), every, addr)
	fmt.Printf("vlserver: live pane deltas at /stream (SSE), stream health at /debug/stream\n")
	fmt.Printf("vlserver: session fabric: POST /sessions admits tenants (each at /sessions/{id}/...), fleet health at /debug/sessions\n")
	log.Fatal(http.ListenAndServe(addr, srv))
}

// workspaceFigures resolves the -workspace flag into stdlib figures.
func workspaceFigures(spec string) ([]vclstdlib.Figure, error) {
	if spec == "all" {
		return vclstdlib.Figures(), nil
	}
	var figs []vclstdlib.Figure
	for _, id := range strings.Split(spec, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		fig, ok := vclstdlib.FigureByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown workspace figure %q (known: %s)", id, strings.Join(core.FigureIDs(), ", "))
		}
		figs = append(figs, fig)
	}
	if len(figs) == 0 {
		return nil, fmt.Errorf("empty -workspace")
	}
	return figs, nil
}
