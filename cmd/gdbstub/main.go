// Command gdbstub serves the simulated kernel over the GDB Remote Serial
// Protocol, playing QEMU's `-s` gdbstub. Another process (cmd/visualinux
// with -remote, or any RSP-speaking tool) can attach to it:
//
//	gdbstub -addr 127.0.0.1:1234 &
//	visualinux -remote 127.0.0.1:1234
//
// For raw protocol inspection:
//
//	printf '+$m%x,8#...' | nc 127.0.0.1 1234
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"visualinux/internal/gdbrsp"
	"visualinux/internal/kernelsim"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:1234", "listen address")
	procs := flag.Int("procs", 0, "workload processes (0 = default of 5)")
	flag.Parse()

	k := kernelsim.Build(kernelsim.Options{Processes: *procs})
	srv, err := gdbrsp.Serve(*addr, k.Target())
	if err != nil {
		fmt.Fprintf(os.Stderr, "gdbstub: %v\n", err)
		os.Exit(1)
	}
	_, bytes := k.Mem.Footprint()
	fmt.Printf("gdbstub: simulated kernel (%d tasks, %d KiB) served on %s\n",
		len(k.Tasks), bytes/1024, srv.Addr())
	fmt.Println("gdbstub: waiting for RSP clients (ctrl-c to stop)")

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	srv.Close()
}
