// Command visualinux is the interactive CLI debugger: a REPL over the
// simulated kernel exposing the paper's three v-commands (§4). It is the
// terminal analogue of attaching the GDB extension to a stopped kernel.
// Run `help` inside the REPL for the command list; use -remote to attach
// to a cmd/gdbstub process over the GDB Remote Serial Protocol.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"visualinux/internal/cli"
	"visualinux/internal/core"
	"visualinux/internal/coredump"
	"visualinux/internal/ctypes"
	"visualinux/internal/gdbrsp"
	"visualinux/internal/kernelsim"
	"visualinux/internal/obs"
)

func main() {
	procs := flag.Int("procs", 0, "workload processes (0 = default of 5)")
	oneShot := flag.String("c", "", "run semicolon-separated commands and exit (e.g. -c 'vplot 7-1;vctrl show 1')")
	remote := flag.String("remote", "", "attach to a gdbstub over RSP instead of debugging in-process (addr:port); the local build provides types+symbols like vmlinux — use the same -procs on both sides")
	corePath := flag.String("core", "", "post-mortem: attach to a dump written with -savecore (crash(8) style)")
	saveCore := flag.String("savecore", "", "write the simulated kernel's memory image to a dump file and exit")
	flag.Parse()

	var session *core.Session
	var k *kernelsim.Kernel
	if *saveCore != "" {
		k = kernelsim.Build(kernelsim.Options{Processes: *procs})
		f, err := os.Create(*saveCore)
		if err == nil {
			err = coredump.Dump(k.Target(), f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "visualinux: savecore: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("visualinux: core dump written to %s\n", *saveCore)
		return
	}
	if *corePath != "" {
		fmt.Printf("visualinux: post-mortem attach to %s...\n", *corePath)
		f, err := os.Open(*corePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "visualinux: %v\n", err)
			os.Exit(1)
		}
		reg := kernelsim.RegisterTypes(ctypes.NewRegistry())
		tgt, err := coredump.Load(f, reg)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "visualinux: %v\n", err)
			os.Exit(1)
		}
		// Build a local kernel only for the Kernel handle the CLI banner
		// uses; the target is purely the dump.
		k = kernelsim.Build(kernelsim.Options{Processes: *procs})
		session = core.SessionOver(k, tgt).EnableObs(obs.NewObserver())
		r := cli.New(session, k, os.Stdout)
		runREPL(r, *oneShot)
		return
	}
	if *remote != "" {
		fmt.Printf("visualinux: loading local symbols and attaching to %s over RSP...\n", *remote)
		k = kernelsim.Build(kernelsim.Options{Processes: *procs})
		client, err := gdbrsp.Dial(*remote, k.Reg, k.Target().Symbols())
		if err != nil {
			fmt.Fprintf(os.Stderr, "visualinux: %v\n", err)
			os.Exit(1)
		}
		defer client.Close()
		// Observe the remote chain too: Instrumented under a Snapshot, so
		// vtrace shows which reads really crossed the RSP link.
		session, _ = core.ObservedSessionOver(k, client, obs.NewObserver())
	} else {
		fmt.Println("visualinux: building simulated kernel state...")
		session, k, _ = core.NewObservedKernelSession(kernelsim.Options{Processes: *procs}, obs.NewObserver())
	}
	pages, bytes := k.Mem.Footprint()
	fmt.Printf("attached: %d tasks, %d mapped pages (%d KiB). Type 'help'.\n",
		len(k.Tasks), pages, bytes/1024)

	r := cli.New(session, k, os.Stdout)
	runREPL(r, *oneShot)
}

// runREPL drives the runner either from -c one-shot commands or stdin.
func runREPL(r *cli.Runner, oneShot string) {
	if oneShot != "" {
		for _, cmd := range strings.Split(oneShot, ";") {
			if !r.Exec(cmd) {
				break
			}
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Print("(vl) ")
	for sc.Scan() {
		if !r.Exec(sc.Text()) {
			break
		}
		fmt.Print("(vl) ")
	}
}
