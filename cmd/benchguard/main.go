// Command benchguard is the bench-regression smoke gate of `make ci`: it
// compares two perfbench JSON outputs (see cmd/perfbench -json) and fails
// when any figure's cached-KGDB extraction cost regressed beyond the
// threshold against the baseline.
//
// Usage:
//
//	benchguard [-threshold 1.25] [-slack 50] BENCH_1.json BENCH_2.json
//	benchguard -reusefloor 0.8 BENCH_4.base.json BENCH_4.json
//	benchguard -speedupfloor 3 -allocceil 16 BENCH_6.json
//
// Three file shapes are understood: the flat per-figure array written by
// perfbench -json / -rspjson (gated on kgdb_ms), the steady-state
// report written by perfbench -steadyjson (gated on each row's
// steady_kgdb_ms, plus the whole-run reuse_ratio when -reusefloor is set),
// and the CPU report written by perfbench -cpujson. The CPU gate takes a
// single file: cpu_speedup is a same-run compiled-vs-interpreted ratio and
// steady_round_allocs_op a runtime counter, so they are judged against
// absolute floors rather than a baseline file whose wall-clock milliseconds
// would not transfer across hosts.
//
// The modeled-latency columns are deterministic workload properties, but
// they still carry a wall-clock component, so tiny figures are judged with
// an absolute slack: a figure only fails when it is both >threshold× slower
// and more than -slack ms above baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// record mirrors perfbench's benchRecord fields benchguard needs.
type record struct {
	Figure string  `json:"figure"`
	KGDBMs float64 `json:"kgdb_ms"`
}

// steadyFile mirrors the perf.SteadyReport fields benchguard needs: the
// per-figure steady-state link cost and the run-wide box reuse ratio.
type steadyFile struct {
	Rows []struct {
		Figure   string  `json:"figure"`
		SteadyMS float64 `json:"steady_kgdb_ms"`
	} `json:"rows"`
	ReuseRatio float64 `json:"reuse_ratio"`
}

// bench is one loaded file: per-figure costs plus, for steady-state
// reports, the reuse ratio.
type bench struct {
	recs       map[string]record
	reuseRatio float64
	steady     bool
}

func main() {
	threshold := flag.Float64("threshold", 1.25, "max allowed kgdb_ms ratio vs baseline")
	slack := flag.Float64("slack", 50, "absolute slack in ms (regressions smaller than this never fail)")
	reuseFloor := flag.Float64("reusefloor", 0, "min reuse_ratio for steady-state reports (0 disables)")
	speedupFloor := flag.Float64("speedupfloor", 0, "min same-run cpu_speedup for CPU reports (0 disables; single-file mode)")
	allocCeil := flag.Float64("allocceil", -1, "max steady_round_allocs_op for CPU reports (negative disables; single-file mode)")
	flag.Parse()
	if *speedupFloor > 0 || *allocCeil >= 0 {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: benchguard -speedupfloor 3 [-allocceil 16] BENCH_6.json")
			os.Exit(2)
		}
		guardCPU(flag.Arg(0), *speedupFloor, *allocCeil)
		return
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchguard [-threshold 1.25] [-slack 50] [-reusefloor 0.8] BASELINE.json CURRENT.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: baseline: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: current: %v\n", err)
		os.Exit(2)
	}

	failed := false
	for _, c := range cur.recs {
		b, ok := base.recs[c.Figure]
		if !ok {
			fmt.Printf("benchguard: %-12s new figure (%.1f ms), no baseline — ok\n", c.Figure, c.KGDBMs)
			continue
		}
		ratio := 0.0
		if b.KGDBMs > 0 {
			ratio = c.KGDBMs / b.KGDBMs
		}
		if ratio > *threshold && c.KGDBMs-b.KGDBMs > *slack {
			fmt.Printf("benchguard: %-12s REGRESSED: %.1f ms vs %.1f ms baseline (%.2fx > %.2fx)\n",
				c.Figure, c.KGDBMs, b.KGDBMs, ratio, *threshold)
			failed = true
		} else {
			fmt.Printf("benchguard: %-12s ok: %.1f ms vs %.1f ms baseline (%.2fx)\n",
				c.Figure, c.KGDBMs, b.KGDBMs, ratio)
		}
	}
	for fig := range base.recs {
		if _, ok := cur.recs[fig]; !ok {
			fmt.Printf("benchguard: %-12s MISSING from current run\n", fig)
			failed = true
		}
	}
	if *reuseFloor > 0 {
		if !cur.steady {
			fmt.Printf("benchguard: -reusefloor set but %s is not a steady-state report\n", flag.Arg(1))
			failed = true
		} else if cur.reuseRatio < *reuseFloor {
			fmt.Printf("benchguard: reuse_ratio %.3f BELOW floor %.3f\n", cur.reuseRatio, *reuseFloor)
			failed = true
		} else {
			fmt.Printf("benchguard: reuse_ratio %.3f ok (floor %.3f)\n", cur.reuseRatio, *reuseFloor)
		}
	}
	if failed {
		fmt.Println("benchguard: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchguard: PASS")
}

// cpuFile mirrors the perf.CPUReport fields the CPU gate needs.
type cpuFile struct {
	Rows []struct {
		Figure  string  `json:"figure"`
		Speedup float64 `json:"cpu_speedup"`
	} `json:"rows"`
	Speedup           float64 `json:"cpu_speedup"`
	SteadyRoundAllocs float64 `json:"steady_round_allocs_op"`
}

// guardCPU applies the absolute floors of the CPU personality to one report:
// the whole-sweep compiled-vs-interpreted speedup (a same-run ratio, so no
// baseline file is involved) and the steady-round allocation count.
func guardCPU(path string, speedupFloor, allocCeil float64) {
	blob, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	var cf cpuFile
	if err := json.Unmarshal(blob, &cf); err != nil || len(cf.Rows) == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %s: not a perfbench -cpujson report\n", path)
		os.Exit(2)
	}
	failed := false
	if speedupFloor > 0 {
		if cf.Speedup < speedupFloor {
			fmt.Printf("benchguard: cpu_speedup %.2fx BELOW floor %.2fx\n", cf.Speedup, speedupFloor)
			failed = true
		} else {
			fmt.Printf("benchguard: cpu_speedup %.2fx ok (floor %.2fx)\n", cf.Speedup, speedupFloor)
		}
	}
	if allocCeil >= 0 {
		if cf.SteadyRoundAllocs > allocCeil {
			fmt.Printf("benchguard: steady_round_allocs_op %.0f ABOVE ceiling %.0f\n", cf.SteadyRoundAllocs, allocCeil)
			failed = true
		} else {
			fmt.Printf("benchguard: steady_round_allocs_op %.0f ok (ceiling %.0f)\n", cf.SteadyRoundAllocs, allocCeil)
		}
	}
	if failed {
		fmt.Println("benchguard: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchguard: PASS")
}

func load(path string) (*bench, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []record
	if err := json.Unmarshal(blob, &recs); err == nil {
		out := &bench{recs: make(map[string]record, len(recs))}
		for _, r := range recs {
			out.recs[r.Figure] = r
		}
		return out, nil
	}
	var sf steadyFile
	if err := json.Unmarshal(blob, &sf); err != nil || len(sf.Rows) == 0 {
		return nil, fmt.Errorf("%s: neither a perfbench array nor a steady-state report", path)
	}
	out := &bench{recs: make(map[string]record, len(sf.Rows)), reuseRatio: sf.ReuseRatio, steady: true}
	for _, r := range sf.Rows {
		out.recs[r.Figure] = record{Figure: r.Figure, KGDBMs: r.SteadyMS}
	}
	return out, nil
}
