// Command benchguard is the bench-regression smoke gate of `make ci`: it
// compares two perfbench JSON outputs (see cmd/perfbench -json) and fails
// when any figure's cached-KGDB extraction cost regressed beyond the
// threshold against the baseline.
//
// Usage:
//
//	benchguard [-threshold 1.25] [-slack 50] BENCH_1.json BENCH_2.json
//	benchguard -reusefloor 0.8 BENCH_4.base.json BENCH_4.json
//	benchguard -speedupfloor 3 -allocceil 16 BENCH_6.json
//	benchguard -pushp95ceil 250 BENCH_7.json
//	benchguard -tenantp95ceil 250 -isolationceil 8 BENCH_8.json
//	benchguard -dedupfloor 3 -forkadmitceil BENCH_9.json
//	benchguard -fleetp95ceil 100 -fleettargets 16 BENCH_10.json
//
// Four file shapes are understood: the flat per-figure array written by
// perfbench -json / -rspjson (gated on kgdb_ms), the steady-state
// report written by perfbench -steadyjson (gated on each row's
// steady_kgdb_ms, plus the whole-run reuse_ratio when -reusefloor is set),
// the CPU report written by perfbench -cpujson, and the stream fan-out
// report written by perfbench -streamjson, and the multi-tenant
// session-fabric report written by perfbench -tenantjson. The CPU gate takes a
// single file: cpu_speedup is a same-run compiled-vs-interpreted ratio and
// steady_round_allocs_op a runtime counter, so they are judged against
// absolute floors rather than a baseline file whose wall-clock milliseconds
// would not transfer across hosts. The stream gate is single-file for the
// same reason: push latencies are wall-clock, so it checks an absolute p95
// ceiling (-pushp95ceil), a fast-client delivery-ratio floor
// (-deliveryfloor, default 0.999), and that the slow consumers in the mix
// actually coalesced — proof backpressure degraded them to latest-wins
// instead of stalling the plane. The tenant gate (-tenantp95ceil) is
// single-file too: it checks the worst session's request p95 against an
// absolute wall-clock ceiling, the victim-vs-hot isolation ratio against
// -isolationceil, and — exactly, no tolerance — that admitting the fleet
// after the first session cost zero stdlib re-parses and re-compiles,
// which is the shared-immutable-infrastructure contract. The fleet-memory
// gate (-dedupfloor) is single-file as well: the dedup ratio is
// deterministic byte accounting (private-sum over unique-resident), so it
// takes an exact floor; -forkadmitceil additionally requires fork-admission
// p95 to be no slower than build-admission p95 — both arms measured in the
// same run on the same host, so the comparison transfers — and the worst
// session's request p95 to stay under -memp95ceil. The fleet-query gate
// (-fleetp95ceil) checks the cross-target fan-out p95 against an absolute
// wall-clock ceiling and — exactly — the fleet shape (-fleettargets targets,
// all healthy, core dumps present) and merge integrity (a non-empty merged
// set with provenance on every ref).
//
// The modeled-latency columns are deterministic workload properties, but
// they still carry a wall-clock component, so tiny figures are judged with
// an absolute slack: a figure only fails when it is both >threshold× slower
// and more than -slack ms above baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// record mirrors perfbench's benchRecord fields benchguard needs.
type record struct {
	Figure string  `json:"figure"`
	KGDBMs float64 `json:"kgdb_ms"`
}

// steadyFile mirrors the perf.SteadyReport fields benchguard needs: the
// per-figure steady-state link cost and the run-wide box reuse ratio.
type steadyFile struct {
	Rows []struct {
		Figure   string  `json:"figure"`
		SteadyMS float64 `json:"steady_kgdb_ms"`
	} `json:"rows"`
	ReuseRatio float64 `json:"reuse_ratio"`
}

// bench is one loaded file: per-figure costs plus, for steady-state
// reports, the reuse ratio.
type bench struct {
	recs       map[string]record
	reuseRatio float64
	steady     bool
}

func main() {
	threshold := flag.Float64("threshold", 1.25, "max allowed kgdb_ms ratio vs baseline")
	slack := flag.Float64("slack", 50, "absolute slack in ms (regressions smaller than this never fail)")
	reuseFloor := flag.Float64("reusefloor", 0, "min reuse_ratio for steady-state reports (0 disables)")
	speedupFloor := flag.Float64("speedupfloor", 0, "min same-run cpu_speedup for CPU reports (0 disables; single-file mode)")
	allocCeil := flag.Float64("allocceil", -1, "max steady_round_allocs_op for CPU reports (negative disables; single-file mode)")
	pushP95Ceil := flag.Float64("pushp95ceil", 0, "max p95_push_ms for stream fan-out reports (0 disables; single-file mode)")
	deliveryFloor := flag.Float64("deliveryfloor", 0.999, "min fast_delivery_ratio for stream fan-out reports (with -pushp95ceil)")
	tenantP95Ceil := flag.Float64("tenantp95ceil", 0, "max worst_session_req_p95_ms for multi-tenant reports (0 disables; single-file mode)")
	isolationCeil := flag.Float64("isolationceil", 8, "max victim-vs-hot isolation_ratio for multi-tenant reports (with -tenantp95ceil)")
	dedupFloor := flag.Float64("dedupfloor", 0, "min dedup_ratio for fleet-memory reports (0 disables; single-file mode)")
	forkAdmitCeil := flag.Bool("forkadmitceil", false, "require fork_admit_p95_ms <= build_admit_p95_ms for fleet-memory reports (with -dedupfloor)")
	memP95Ceil := flag.Float64("memp95ceil", 250, "max worst_session_req_p95_ms for fleet-memory reports (with -dedupfloor)")
	fleetP95Ceil := flag.Float64("fleetp95ceil", 0, "max fanout_p95_ms for fleet-query reports (0 disables; single-file mode)")
	fleetTargetsWant := flag.Int("fleettargets", 16, "required target count for fleet-query reports (with -fleetp95ceil)")
	flag.Parse()
	if *fleetP95Ceil > 0 {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: benchguard -fleetp95ceil 100 [-fleettargets 16] BENCH_10.json")
			os.Exit(2)
		}
		guardFleet(flag.Arg(0), *fleetP95Ceil, *fleetTargetsWant)
		return
	}
	if *dedupFloor > 0 {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: benchguard -dedupfloor 3 [-forkadmitceil] [-memp95ceil 250] BENCH_9.json")
			os.Exit(2)
		}
		guardFleetMem(flag.Arg(0), *dedupFloor, *forkAdmitCeil, *memP95Ceil)
		return
	}
	if *tenantP95Ceil > 0 {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: benchguard -tenantp95ceil 250 [-isolationceil 8] BENCH_8.json")
			os.Exit(2)
		}
		guardTenants(flag.Arg(0), *tenantP95Ceil, *isolationCeil)
		return
	}
	if *pushP95Ceil > 0 {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: benchguard -pushp95ceil 250 [-deliveryfloor 0.999] BENCH_7.json")
			os.Exit(2)
		}
		guardStream(flag.Arg(0), *pushP95Ceil, *deliveryFloor)
		return
	}
	if *speedupFloor > 0 || *allocCeil >= 0 {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: benchguard -speedupfloor 3 [-allocceil 16] BENCH_6.json")
			os.Exit(2)
		}
		guardCPU(flag.Arg(0), *speedupFloor, *allocCeil)
		return
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchguard [-threshold 1.25] [-slack 50] [-reusefloor 0.8] BASELINE.json CURRENT.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: baseline: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: current: %v\n", err)
		os.Exit(2)
	}

	failed := false
	for _, c := range cur.recs {
		b, ok := base.recs[c.Figure]
		if !ok {
			fmt.Printf("benchguard: %-12s new figure (%.1f ms), no baseline — ok\n", c.Figure, c.KGDBMs)
			continue
		}
		ratio := 0.0
		if b.KGDBMs > 0 {
			ratio = c.KGDBMs / b.KGDBMs
		}
		if ratio > *threshold && c.KGDBMs-b.KGDBMs > *slack {
			fmt.Printf("benchguard: %-12s REGRESSED: %.1f ms vs %.1f ms baseline (%.2fx > %.2fx)\n",
				c.Figure, c.KGDBMs, b.KGDBMs, ratio, *threshold)
			failed = true
		} else {
			fmt.Printf("benchguard: %-12s ok: %.1f ms vs %.1f ms baseline (%.2fx)\n",
				c.Figure, c.KGDBMs, b.KGDBMs, ratio)
		}
	}
	for fig := range base.recs {
		if _, ok := cur.recs[fig]; !ok {
			fmt.Printf("benchguard: %-12s MISSING from current run\n", fig)
			failed = true
		}
	}
	if *reuseFloor > 0 {
		if !cur.steady {
			fmt.Printf("benchguard: -reusefloor set but %s is not a steady-state report\n", flag.Arg(1))
			failed = true
		} else if cur.reuseRatio < *reuseFloor {
			fmt.Printf("benchguard: reuse_ratio %.3f BELOW floor %.3f\n", cur.reuseRatio, *reuseFloor)
			failed = true
		} else {
			fmt.Printf("benchguard: reuse_ratio %.3f ok (floor %.3f)\n", cur.reuseRatio, *reuseFloor)
		}
	}
	if failed {
		fmt.Println("benchguard: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchguard: PASS")
}

// cpuFile mirrors the perf.CPUReport fields the CPU gate needs.
type cpuFile struct {
	Rows []struct {
		Figure  string  `json:"figure"`
		Speedup float64 `json:"cpu_speedup"`
	} `json:"rows"`
	Speedup           float64 `json:"cpu_speedup"`
	SteadyRoundAllocs float64 `json:"steady_round_allocs_op"`
}

// guardCPU applies the absolute floors of the CPU personality to one report:
// the whole-sweep compiled-vs-interpreted speedup (a same-run ratio, so no
// baseline file is involved) and the steady-round allocation count.
func guardCPU(path string, speedupFloor, allocCeil float64) {
	blob, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	var cf cpuFile
	if err := json.Unmarshal(blob, &cf); err != nil || len(cf.Rows) == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %s: not a perfbench -cpujson report\n", path)
		os.Exit(2)
	}
	failed := false
	if speedupFloor > 0 {
		if cf.Speedup < speedupFloor {
			fmt.Printf("benchguard: cpu_speedup %.2fx BELOW floor %.2fx\n", cf.Speedup, speedupFloor)
			failed = true
		} else {
			fmt.Printf("benchguard: cpu_speedup %.2fx ok (floor %.2fx)\n", cf.Speedup, speedupFloor)
		}
	}
	if allocCeil >= 0 {
		if cf.SteadyRoundAllocs > allocCeil {
			fmt.Printf("benchguard: steady_round_allocs_op %.0f ABOVE ceiling %.0f\n", cf.SteadyRoundAllocs, allocCeil)
			failed = true
		} else {
			fmt.Printf("benchguard: steady_round_allocs_op %.0f ok (ceiling %.0f)\n", cf.SteadyRoundAllocs, allocCeil)
		}
	}
	if failed {
		fmt.Println("benchguard: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchguard: PASS")
}

// streamFile mirrors the perf.StreamReport fields the stream gate needs.
type streamFile struct {
	Rows []struct {
		Mix           string  `json:"mix"`
		FastP95PushMS float64 `json:"fast_p95_push_ms"`
		Slow          int     `json:"slow_clients"`
	} `json:"rows"`
	P95PushMS         float64 `json:"p95_push_ms"`
	FastDeliveryRatio float64 `json:"fast_delivery_ratio"`
	SlowCoalesced     float64 `json:"slow_coalesced"`
}

// guardStream applies the stream fan-out gates to one report: the worst
// fast client's p95 push latency against an absolute wall-clock ceiling,
// the fast delivery ratio against its floor, and — whenever a mix included
// slow consumers — that they coalesced, which is the backpressure design
// working as intended.
func guardStream(path string, p95Ceil, deliveryFloor float64) {
	blob, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	var sf streamFile
	if err := json.Unmarshal(blob, &sf); err != nil || len(sf.Rows) == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %s: not a perfbench -streamjson report\n", path)
		os.Exit(2)
	}
	failed := false
	if sf.P95PushMS > p95Ceil {
		fmt.Printf("benchguard: p95_push_ms %.2f ABOVE ceiling %.2f\n", sf.P95PushMS, p95Ceil)
		failed = true
	} else {
		fmt.Printf("benchguard: p95_push_ms %.2f ok (ceiling %.2f)\n", sf.P95PushMS, p95Ceil)
	}
	if sf.FastDeliveryRatio < deliveryFloor {
		fmt.Printf("benchguard: fast_delivery_ratio %.4f BELOW floor %.4f\n", sf.FastDeliveryRatio, deliveryFloor)
		failed = true
	} else {
		fmt.Printf("benchguard: fast_delivery_ratio %.4f ok (floor %.4f)\n", sf.FastDeliveryRatio, deliveryFloor)
	}
	hasSlow := false
	for _, r := range sf.Rows {
		if r.Slow > 0 {
			hasSlow = true
		}
	}
	switch {
	case hasSlow && sf.SlowCoalesced <= 0:
		fmt.Println("benchguard: slow consumers present but slow_coalesced is 0 — backpressure never engaged")
		failed = true
	case hasSlow:
		fmt.Printf("benchguard: slow_coalesced %.0f ok (latest-wins engaged)\n", sf.SlowCoalesced)
	}
	if failed {
		fmt.Println("benchguard: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchguard: PASS")
}

// tenantFile mirrors the perf.TenantReport fields the tenant gate needs.
type tenantFile struct {
	Sessions             int     `json:"sessions"`
	WorstSessionReqP95MS float64 `json:"worst_session_req_p95_ms"`
	StdlibReparses       uint64  `json:"stdlib_reparses"`
	StdlibRecompiles     uint64  `json:"stdlib_recompiles"`
	IsolationRatio       float64 `json:"isolation_ratio"`
}

// guardTenants applies the session-fabric gates to one report: the worst
// session's request p95 against an absolute wall-clock ceiling, the
// victim-vs-hot isolation ratio against its ceiling (the global pool's
// per-session fairness promise), and exact zeros on the stdlib
// re-parse/re-compile counters — fleet admission must ride the shared
// immutable infrastructure, not rebuild it per tenant.
func guardTenants(path string, p95Ceil, isolationCeil float64) {
	blob, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	var tf tenantFile
	if err := json.Unmarshal(blob, &tf); err != nil || tf.Sessions == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %s: not a perfbench -tenantjson report\n", path)
		os.Exit(2)
	}
	failed := false
	if tf.WorstSessionReqP95MS > p95Ceil {
		fmt.Printf("benchguard: worst_session_req_p95_ms %.2f ABOVE ceiling %.2f\n", tf.WorstSessionReqP95MS, p95Ceil)
		failed = true
	} else {
		fmt.Printf("benchguard: worst_session_req_p95_ms %.2f ok (ceiling %.2f, %d sessions)\n",
			tf.WorstSessionReqP95MS, p95Ceil, tf.Sessions)
	}
	if isolationCeil > 0 {
		if tf.IsolationRatio > isolationCeil {
			fmt.Printf("benchguard: isolation_ratio %.2fx ABOVE ceiling %.2fx — a hot session starves its neighbors\n",
				tf.IsolationRatio, isolationCeil)
			failed = true
		} else {
			fmt.Printf("benchguard: isolation_ratio %.2fx ok (ceiling %.2fx)\n", tf.IsolationRatio, isolationCeil)
		}
	}
	if tf.StdlibReparses != 0 || tf.StdlibRecompiles != 0 {
		fmt.Printf("benchguard: fleet admission re-parsed the stdlib %d times and re-compiled it %d times; want exactly 0\n",
			tf.StdlibReparses, tf.StdlibRecompiles)
		failed = true
	} else {
		fmt.Println("benchguard: stdlib re-parses/re-compiles 0/0 ok (shared immutable infrastructure)")
	}
	if failed {
		fmt.Println("benchguard: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchguard: PASS")
}

// fleetMemFile mirrors the perf.FleetMemReport fields the fleet-memory
// gate needs.
type fleetMemFile struct {
	Sessions             int     `json:"sessions"`
	ForkAdmitP95MS       float64 `json:"fork_admit_p95_ms"`
	BuildAdmitP95MS      float64 `json:"build_admit_p95_ms"`
	WorstSessionReqP95MS float64 `json:"worst_session_req_p95_ms"`
	DedupRatio           float64 `json:"dedup_ratio"`
	TemplateForks        uint64  `json:"template_forks"`
	ZeroCopyFills        uint64  `json:"zero_copy_fills"`
}

// guardFleetMem applies the CoW fleet-memory gates to one report: the dedup
// ratio (deterministic byte accounting) against its floor, the same-run
// fork-vs-build admission p95 comparison, the worst session's request p95
// against an absolute wall-clock ceiling, and — exactly — that admission
// actually forked templates and extraction actually took the zero-copy
// path, so the gate can't pass on a silently disabled fast path.
func guardFleetMem(path string, dedupFloor float64, forkAdmitCeil bool, p95Ceil float64) {
	blob, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	var ff fleetMemFile
	if err := json.Unmarshal(blob, &ff); err != nil || ff.Sessions == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %s: not a perfbench -memjson report\n", path)
		os.Exit(2)
	}
	failed := false
	if ff.DedupRatio < dedupFloor {
		fmt.Printf("benchguard: dedup_ratio %.2fx BELOW floor %.2fx\n", ff.DedupRatio, dedupFloor)
		failed = true
	} else {
		fmt.Printf("benchguard: dedup_ratio %.2fx ok (floor %.2fx, %d sessions)\n",
			ff.DedupRatio, dedupFloor, ff.Sessions)
	}
	if forkAdmitCeil {
		if ff.ForkAdmitP95MS > ff.BuildAdmitP95MS {
			fmt.Printf("benchguard: fork_admit_p95_ms %.3f ABOVE build_admit_p95_ms %.3f — forking lost to rebuilding\n",
				ff.ForkAdmitP95MS, ff.BuildAdmitP95MS)
			failed = true
		} else {
			fmt.Printf("benchguard: fork_admit_p95_ms %.3f ok (build arm %.3f)\n",
				ff.ForkAdmitP95MS, ff.BuildAdmitP95MS)
		}
	}
	if p95Ceil > 0 {
		if ff.WorstSessionReqP95MS > p95Ceil {
			fmt.Printf("benchguard: worst_session_req_p95_ms %.2f ABOVE ceiling %.2f\n",
				ff.WorstSessionReqP95MS, p95Ceil)
			failed = true
		} else {
			fmt.Printf("benchguard: worst_session_req_p95_ms %.2f ok (ceiling %.2f)\n",
				ff.WorstSessionReqP95MS, p95Ceil)
		}
	}
	if ff.TemplateForks == 0 || ff.ZeroCopyFills == 0 {
		fmt.Printf("benchguard: CoW fast paths idle: template_forks=%d zero_copy_fills=%d; want both > 0\n",
			ff.TemplateForks, ff.ZeroCopyFills)
		failed = true
	} else {
		fmt.Printf("benchguard: template_forks %d, zero_copy_fills %d ok (fast paths engaged)\n",
			ff.TemplateForks, ff.ZeroCopyFills)
	}
	if failed {
		fmt.Println("benchguard: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchguard: PASS")
}

// fleetFile mirrors the perf.FleetReport fields the fleet-query gate needs.
type fleetFile struct {
	Targets      int     `json:"targets"`
	Core         int     `json:"core"`
	FanoutP95MS  float64 `json:"fanout_p95_ms"`
	MergedRefs   int     `json:"merged_refs"`
	HealthyTargs int     `json:"healthy_targets"`
	TaggedRefs   int     `json:"tagged_refs"`
}

// guardFleet applies the fleet-query gates to one report: the fan-out p95
// against an absolute wall-clock ceiling, the exact fleet shape (all
// targets present and healthy, core dumps included), and the merge
// integrity counters — a non-empty merged set with provenance on every
// ref — so the gate can't pass on an empty or untagged merge.
func guardFleet(path string, p95Ceil float64, wantTargets int) {
	blob, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	var ff fleetFile
	if err := json.Unmarshal(blob, &ff); err != nil || ff.Targets == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %s: not a perfbench -fleetjson report\n", path)
		os.Exit(2)
	}
	failed := false
	if ff.FanoutP95MS > p95Ceil {
		fmt.Printf("benchguard: fanout_p95_ms %.2f ABOVE ceiling %.2f\n", ff.FanoutP95MS, p95Ceil)
		failed = true
	} else {
		fmt.Printf("benchguard: fanout_p95_ms %.2f ok (ceiling %.2f)\n", ff.FanoutP95MS, p95Ceil)
	}
	if ff.Targets != wantTargets || ff.HealthyTargs != ff.Targets || ff.Core == 0 {
		fmt.Printf("benchguard: fleet shape off: %d targets (%d healthy, %d core); want %d, all healthy, core > 0\n",
			ff.Targets, ff.HealthyTargs, ff.Core, wantTargets)
		failed = true
	} else {
		fmt.Printf("benchguard: fleet shape ok (%d targets, %d core dumps, all healthy)\n",
			ff.Targets, ff.Core)
	}
	if ff.MergedRefs == 0 || ff.TaggedRefs != ff.MergedRefs {
		fmt.Printf("benchguard: merge integrity off: %d refs, %d provenance-tagged; want a non-empty fully tagged merge\n",
			ff.MergedRefs, ff.TaggedRefs)
		failed = true
	} else {
		fmt.Printf("benchguard: merge integrity ok (%d refs, all provenance-tagged)\n", ff.MergedRefs)
	}
	if failed {
		fmt.Println("benchguard: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchguard: PASS")
}

func load(path string) (*bench, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []record
	if err := json.Unmarshal(blob, &recs); err == nil {
		out := &bench{recs: make(map[string]record, len(recs))}
		for _, r := range recs {
			out.recs[r.Figure] = r
		}
		return out, nil
	}
	var sf steadyFile
	if err := json.Unmarshal(blob, &sf); err != nil || len(sf.Rows) == 0 {
		return nil, fmt.Errorf("%s: neither a perfbench array nor a steady-state report", path)
	}
	out := &bench{recs: make(map[string]record, len(sf.Rows)), reuseRatio: sf.ReuseRatio, steady: true}
	for _, r := range sf.Rows {
		out.recs[r.Figure] = record{Figure: r.Figure, KGDBMs: r.SteadyMS}
	}
	return out, nil
}
