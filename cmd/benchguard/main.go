// Command benchguard is the bench-regression smoke gate of `make ci`: it
// compares two perfbench JSON outputs (see cmd/perfbench -json) and fails
// when any figure's cached-KGDB extraction cost regressed beyond the
// threshold against the baseline.
//
// Usage:
//
//	benchguard [-threshold 1.25] [-slack 50] BENCH_1.json BENCH_2.json
//
// The modeled-latency columns are deterministic workload properties, but
// they still carry a wall-clock component, so tiny figures are judged with
// an absolute slack: a figure only fails when it is both >threshold× slower
// and more than -slack ms above baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// record mirrors perfbench's benchRecord fields benchguard needs.
type record struct {
	Figure string  `json:"figure"`
	KGDBMs float64 `json:"kgdb_ms"`
}

func main() {
	threshold := flag.Float64("threshold", 1.25, "max allowed kgdb_ms ratio vs baseline")
	slack := flag.Float64("slack", 50, "absolute slack in ms (regressions smaller than this never fail)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchguard [-threshold 1.25] [-slack 50] BASELINE.json CURRENT.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: baseline: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: current: %v\n", err)
		os.Exit(2)
	}

	failed := false
	for _, c := range cur {
		b, ok := base[c.Figure]
		if !ok {
			fmt.Printf("benchguard: %-12s new figure (%.1f ms), no baseline — ok\n", c.Figure, c.KGDBMs)
			continue
		}
		ratio := 0.0
		if b.KGDBMs > 0 {
			ratio = c.KGDBMs / b.KGDBMs
		}
		if ratio > *threshold && c.KGDBMs-b.KGDBMs > *slack {
			fmt.Printf("benchguard: %-12s REGRESSED: %.1f ms vs %.1f ms baseline (%.2fx > %.2fx)\n",
				c.Figure, c.KGDBMs, b.KGDBMs, ratio, *threshold)
			failed = true
		} else {
			fmt.Printf("benchguard: %-12s ok: %.1f ms vs %.1f ms baseline (%.2fx)\n",
				c.Figure, c.KGDBMs, b.KGDBMs, ratio)
		}
	}
	for fig := range base {
		if _, ok := lookup(cur, fig); !ok {
			fmt.Printf("benchguard: %-12s MISSING from current run\n", fig)
			failed = true
		}
	}
	if failed {
		fmt.Println("benchguard: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchguard: PASS")
}

func load(path string) (map[string]record, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []record
	if err := json.Unmarshal(blob, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]record, len(recs))
	for _, r := range recs {
		out[r.Figure] = r
	}
	return out, nil
}

func lookup(m map[string]record, fig string) (record, bool) {
	r, ok := m[fig]
	return r, ok
}
