// Package mem implements a sparse, byte-addressable simulated physical
// memory. It is the lowest substrate of the simulated debug target: the
// kernel-state builder writes Linux-shaped data structures into it, and the
// target layer reads them back for the expression evaluator, exactly as GDB
// reads guest memory from QEMU or KGDB.
//
// Memory is organized in fixed-size pages allocated on demand, so a 64-bit
// address space costs only what is actually touched. All multi-byte accessors
// are little-endian (x86_64 / aarch64 guest byte order).
//
// A Memory can additionally be sealed into a PageStore (see pagestore.go) and
// forked: forks share every unwritten page copy-on-write, so a fleet of
// sessions built from one template image pays for its unique pages only.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// PageSize is the granularity of backing allocation. 4 KiB matches the guest
// page size, which keeps address arithmetic in tests intuitive.
const PageSize = 4096

// Memory is a sparse byte-addressable address space. The zero value is ready
// to use. Reads may run concurrently with each other and with writes (the
// machine-stop discipline of the debugger keeps mutation coarse, but the
// fleet manager evicts one session's memory while another's extraction is
// mid-read, so the map itself must be race-free).
//
// Every Write is appended to a bounded journal of dirty ranges so a debugger
// attached across stop events can ask "what changed since my last stop?"
// instead of re-reading the world. WritesSince answers against a mark
// (a journal sequence number) handed out by a previous call.
type Memory struct {
	mu    sync.RWMutex
	pages map[uint64][]byte // private (writable) pages

	// CoW state: sealed pages live in the store and are referenced here.
	// A write to a shared page privatizes it into pages (a CoW break).
	shared   map[uint64]*SharedPage
	store    *PageStore
	released bool // store refs dropped; shared stays readable, never re-released

	// Write journal. journal[i] records the i-th surviving entry; seq of
	// journal[0] is journalBase, and journalBase+len(journal) is the seq the
	// NEXT write will get. Entries are never coalesced on append: a consumer
	// holding a mark in the middle of a run must still see later writes.
	journal     []WriteRange
	journalBase uint64
}

// WriteRange is one journaled mutation: [Addr, Addr+Size).
type WriteRange struct {
	Addr uint64
	Size uint64
}

// journalCap bounds the write journal. When it overflows, the oldest half is
// dropped and journalBase advances; consumers holding marks older than the
// base get ok=false from WritesSince and must fall back to revalidation.
const journalCap = 4096

// New returns an empty address space.
func New() *Memory {
	return &Memory{pages: make(map[uint64][]byte)}
}

// ErrUnmapped reports an access to an address with no backing page.
type ErrUnmapped struct {
	Addr uint64
}

func (e *ErrUnmapped) Error() string {
	return fmt.Sprintf("mem: unmapped address %#x", e.Addr)
}

// pageLocked returns the readable backing of addr's page — private if the
// page was written (or never sealed), shared otherwise. Callers hold m.mu.
func (m *Memory) pageLocked(addr uint64) []byte {
	base := addr &^ (PageSize - 1)
	if p, ok := m.pages[base]; ok {
		return p
	}
	if sp, ok := m.shared[base]; ok {
		return sp.data
	}
	return nil
}

// writablePageLocked returns addr's page for mutation, allocating it or
// breaking CoW sharing as needed. Callers hold m.mu for writing.
func (m *Memory) writablePageLocked(addr uint64) []byte {
	base := addr &^ (PageSize - 1)
	if p, ok := m.pages[base]; ok {
		return p
	}
	if m.pages == nil {
		m.pages = make(map[uint64][]byte)
	}
	p := make([]byte, PageSize)
	if sp, ok := m.shared[base]; ok {
		// CoW break: privatize the page, drop our store reference. After
		// Release the reference is already gone — privatize only.
		copy(p, sp.data)
		delete(m.shared, base)
		if !m.released {
			m.store.cowBreaks.Add(1)
			m.store.release(sp)
		}
	}
	m.pages[base] = p
	return p
}

// Mapped reports whether addr has a backing page.
func (m *Memory) Mapped(addr uint64) bool {
	m.mu.RLock()
	p := m.pageLocked(addr)
	m.mu.RUnlock()
	return p != nil
}

// Read copies len(dst) bytes starting at addr into dst. It fails with
// ErrUnmapped if any byte of the range has no backing page.
func (m *Memory) Read(addr uint64, dst []byte) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for n := 0; n < len(dst); {
		p := m.pageLocked(addr)
		if p == nil {
			return &ErrUnmapped{Addr: addr}
		}
		off := int(addr & (PageSize - 1))
		c := copy(dst[n:], p[off:])
		n += c
		addr += uint64(c)
	}
	return nil
}

// Write copies src into memory starting at addr, allocating pages as needed.
// Writes that land on shared pages break sharing for those pages only.
func (m *Memory) Write(addr uint64, src []byte) {
	if len(src) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.noteWrite(addr, uint64(len(src)))
	for n := 0; n < len(src); {
		p := m.writablePageLocked(addr)
		off := int(addr & (PageSize - 1))
		c := copy(p[off:], src[n:])
		n += c
		addr += uint64(c)
	}
}

// noteWrite appends one range to the journal, dropping the oldest half when
// the cap is hit so a long-running mutation burst costs O(1) amortized.
func (m *Memory) noteWrite(addr, size uint64) {
	if len(m.journal) >= journalCap {
		drop := len(m.journal) / 2
		m.journal = append(m.journal[:0], m.journal[drop:]...)
		m.journalBase += uint64(drop)
	}
	m.journal = append(m.journal, WriteRange{Addr: addr, Size: size})
}

// WritesSince returns the ranges written since mark (a value returned by an
// earlier call), the new mark to use next time, and whether the journal could
// answer. A mark beyond the current cursor (e.g. ^uint64(0)) is clamped: it
// returns no ranges and a fresh mark, which is how a consumer starts
// tracking. ok=false means the journal overflowed past mark — the caller has
// lost history and must fall back to content revalidation.
func (m *Memory) WritesSince(mark uint64) (ranges []WriteRange, next uint64, ok bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	cur := m.journalBase + uint64(len(m.journal))
	if mark >= cur {
		return nil, cur, true
	}
	if mark < m.journalBase {
		return nil, cur, false
	}
	tail := m.journal[mark-m.journalBase:]
	ranges = make([]WriteRange, len(tail))
	copy(ranges, tail)
	return ranges, cur, true
}

// --- copy-on-write fleet sharing ---------------------------------------------

// Seal interns every private page into store, converting this Memory into a
// shared image: subsequent Forks share all sealed pages copy-on-write, and
// writes to this Memory itself break sharing per page like any fork's would.
// Sealing twice (or sealing pages written after a first seal) is allowed and
// re-interns only the private remainder; the store must be the same one.
func (m *Memory) Seal(store *PageStore) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.store != nil && m.store != store {
		panic("mem: Seal with a different PageStore")
	}
	m.store = store
	if m.shared == nil {
		m.shared = make(map[uint64]*SharedPage, len(m.pages))
	}
	for base, p := range m.pages {
		m.shared[base] = store.intern(p)
		delete(m.pages, base)
	}
}

// Fork returns a copy-on-write clone sharing every sealed page. Pages written
// into the parent after its last Seal are interned first, so the fork never
// aliases mutable data. The fork starts with a fresh, empty write journal —
// snapshot consumers arm their journal cursor against the fork itself.
// Fork panics if the Memory was never sealed or was released.
func (m *Memory) Fork() *Memory {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.store == nil {
		panic("mem: Fork of an unsealed Memory (call Seal first)")
	}
	if m.released {
		panic("mem: Fork of a released Memory")
	}
	for base, p := range m.pages {
		m.shared[base] = m.store.intern(p)
		delete(m.pages, base)
	}
	child := &Memory{
		pages:  make(map[uint64][]byte),
		shared: make(map[uint64]*SharedPage, len(m.shared)),
		store:  m.store,
	}
	for base, sp := range m.shared {
		m.store.retain(sp)
		child.shared[base] = sp
	}
	return child
}

// Release drops this Memory's references on the shared store so its pages
// stop counting toward fleet residency. The Memory stays readable — in-flight
// extractions finish against the still-immutable page data — and Release is
// idempotent. The session manager calls this on eviction and deletion.
func (m *Memory) Release() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.released || m.store == nil {
		m.released = true
		return
	}
	m.released = true
	for _, sp := range m.shared {
		m.store.release(sp)
	}
}

// Store returns the PageStore this Memory was sealed into, or nil.
func (m *Memory) Store() *PageStore {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.store
}

// PageData returns the immutable shared backing of addr's page when the page
// is still shared (never written since seal/fork). Callers may alias the
// returned slice indefinitely — it is never mutated — but must not write it.
// ok is false for private (mutable) pages and unmapped addresses, which
// callers must read through Read instead.
func (m *Memory) PageData(addr uint64) (data []byte, ok bool) {
	base := addr &^ (PageSize - 1)
	m.mu.RLock()
	defer m.mu.RUnlock()
	if _, private := m.pages[base]; private {
		return nil, false
	}
	if sp, shared := m.shared[base]; shared {
		return sp.data, true
	}
	return nil, false
}

// Residency breaks a Memory's footprint down for accounting: private bytes
// are owned outright; shared bytes are mapped from the store; owned bytes
// amortize each shared page across its current holders, so summing OwnedBytes
// over every live Memory (templates included) equals the fleet's unique
// resident bytes.
type Residency struct {
	PrivatePages int
	PrivateBytes uint64
	SharedPages  int
	SharedBytes  uint64
	OwnedBytes   uint64
}

// Residency returns the current residency breakdown. A released Memory owns
// nothing (its store references are gone).
func (m *Memory) Residency() Residency {
	m.mu.RLock()
	defer m.mu.RUnlock()
	r := Residency{
		PrivatePages: len(m.pages),
		PrivateBytes: uint64(len(m.pages)) * PageSize,
		SharedPages:  len(m.shared),
		SharedBytes:  uint64(len(m.shared)) * PageSize,
	}
	if m.released {
		return r
	}
	r.OwnedBytes = r.PrivateBytes
	for _, sp := range m.shared {
		if refs := sp.refs.Load(); refs > 0 {
			r.OwnedBytes += PageSize / uint64(refs)
		}
	}
	return r
}

// OwnedBytes is shorthand for Residency().OwnedBytes.
func (m *Memory) OwnedBytes() uint64 { return m.Residency().OwnedBytes }

// --- scalar accessors ---------------------------------------------------------

// ReadU8 reads one byte.
func (m *Memory) ReadU8(addr uint64) (uint8, error) {
	var b [1]byte
	if err := m.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

// ReadU16 reads a little-endian 16-bit value.
func (m *Memory) ReadU16(addr uint64) (uint16, error) {
	var b [2]byte
	if err := m.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

// ReadU32 reads a little-endian 32-bit value.
func (m *Memory) ReadU32(addr uint64) (uint32, error) {
	var b [4]byte
	if err := m.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// ReadU64 reads a little-endian 64-bit value.
func (m *Memory) ReadU64(addr uint64) (uint64, error) {
	var b [8]byte
	if err := m.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteU8 writes one byte.
func (m *Memory) WriteU8(addr uint64, v uint8) { m.Write(addr, []byte{v}) }

// WriteU16 writes a little-endian 16-bit value.
func (m *Memory) WriteU16(addr uint64, v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	m.Write(addr, b[:])
}

// WriteU32 writes a little-endian 32-bit value.
func (m *Memory) WriteU32(addr uint64, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	m.Write(addr, b[:])
}

// WriteU64 writes a little-endian 64-bit value.
func (m *Memory) WriteU64(addr uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	m.Write(addr, b[:])
}

// ReadCString reads a NUL-terminated string starting at addr, up to max
// bytes. If no NUL is found within max bytes the truncated prefix is
// returned without error (debuggers display what they can).
func (m *Memory) ReadCString(addr uint64, max int) (string, error) {
	buf := make([]byte, 0, 32)
	for i := 0; i < max; i++ {
		c, err := m.ReadU8(addr + uint64(i))
		if err != nil {
			if i > 0 {
				break // partial string at a mapping edge: return what we have
			}
			return "", err
		}
		if c == 0 {
			break
		}
		buf = append(buf, c)
	}
	return string(buf), nil
}

// WriteCString writes s plus a terminating NUL at addr.
func (m *Memory) WriteCString(addr uint64, s string) {
	m.Write(addr, append([]byte(s), 0))
}

// Footprint returns the number of mapped pages and total mapped bytes,
// counting private and shared pages alike (the address-space view; see
// Residency for the accounting view).
func (m *Memory) Footprint() (pages int, bytes uint64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := len(m.pages) + len(m.shared)
	return n, uint64(n) * PageSize
}

// MappedRanges returns the sorted list of mapped page base addresses. Useful
// for tests and for the target's memory-map introspection.
func (m *Memory) MappedRanges() []uint64 {
	m.mu.RLock()
	out := make([]uint64, 0, len(m.pages)+len(m.shared))
	for base := range m.pages {
		out = append(out, base)
	}
	for base := range m.shared {
		if _, dup := m.pages[base]; !dup {
			out = append(out, base)
		}
	}
	m.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
