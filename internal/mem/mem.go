// Package mem implements a sparse, byte-addressable simulated physical
// memory. It is the lowest substrate of the simulated debug target: the
// kernel-state builder writes Linux-shaped data structures into it, and the
// target layer reads them back for the expression evaluator, exactly as GDB
// reads guest memory from QEMU or KGDB.
//
// Memory is organized in fixed-size pages allocated on demand, so a 64-bit
// address space costs only what is actually touched. All multi-byte accessors
// are little-endian (x86_64 / aarch64 guest byte order).
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// PageSize is the granularity of backing allocation. 4 KiB matches the guest
// page size, which keeps address arithmetic in tests intuitive.
const PageSize = 4096

// Memory is a sparse byte-addressable address space. The zero value is ready
// to use. Memory is not safe for concurrent mutation; the debugger stops the
// "machine" before reading, mirroring a stopped GDB inferior.
//
// Every Write is appended to a bounded journal of dirty ranges so a debugger
// attached across stop events can ask "what changed since my last stop?"
// instead of re-reading the world. WritesSince answers against a mark
// (a journal sequence number) handed out by a previous call.
type Memory struct {
	pages map[uint64][]byte

	// Write journal. journal[i] records the i-th surviving entry; seq of
	// journal[0] is journalBase, and journalBase+len(journal) is the seq the
	// NEXT write will get. Entries are never coalesced on append: a consumer
	// holding a mark in the middle of a run must still see later writes.
	journal     []WriteRange
	journalBase uint64
}

// WriteRange is one journaled mutation: [Addr, Addr+Size).
type WriteRange struct {
	Addr uint64
	Size uint64
}

// journalCap bounds the write journal. When it overflows, the oldest half is
// dropped and journalBase advances; consumers holding marks older than the
// base get ok=false from WritesSince and must fall back to revalidation.
const journalCap = 4096

// New returns an empty address space.
func New() *Memory {
	return &Memory{pages: make(map[uint64][]byte)}
}

// ErrUnmapped reports an access to an address with no backing page.
type ErrUnmapped struct {
	Addr uint64
}

func (e *ErrUnmapped) Error() string {
	return fmt.Sprintf("mem: unmapped address %#x", e.Addr)
}

func (m *Memory) page(addr uint64, create bool) []byte {
	base := addr &^ (PageSize - 1)
	p, ok := m.pages[base]
	if !ok && create {
		if m.pages == nil {
			m.pages = make(map[uint64][]byte)
		}
		p = make([]byte, PageSize)
		m.pages[base] = p
	}
	return p
}

// Mapped reports whether addr has a backing page.
func (m *Memory) Mapped(addr uint64) bool {
	return m.page(addr, false) != nil
}

// Read copies len(dst) bytes starting at addr into dst. It fails with
// ErrUnmapped if any byte of the range has no backing page.
func (m *Memory) Read(addr uint64, dst []byte) error {
	for n := 0; n < len(dst); {
		p := m.page(addr, false)
		if p == nil {
			return &ErrUnmapped{Addr: addr}
		}
		off := int(addr & (PageSize - 1))
		c := copy(dst[n:], p[off:])
		n += c
		addr += uint64(c)
	}
	return nil
}

// Write copies src into memory starting at addr, allocating pages as needed.
func (m *Memory) Write(addr uint64, src []byte) {
	if len(src) > 0 {
		m.noteWrite(addr, uint64(len(src)))
	}
	for n := 0; n < len(src); {
		p := m.page(addr, true)
		off := int(addr & (PageSize - 1))
		c := copy(p[off:], src[n:])
		n += c
		addr += uint64(c)
	}
}

// noteWrite appends one range to the journal, dropping the oldest half when
// the cap is hit so a long-running mutation burst costs O(1) amortized.
func (m *Memory) noteWrite(addr, size uint64) {
	if len(m.journal) >= journalCap {
		drop := len(m.journal) / 2
		m.journal = append(m.journal[:0], m.journal[drop:]...)
		m.journalBase += uint64(drop)
	}
	m.journal = append(m.journal, WriteRange{Addr: addr, Size: size})
}

// WritesSince returns the ranges written since mark (a value returned by an
// earlier call), the new mark to use next time, and whether the journal could
// answer. A mark beyond the current cursor (e.g. ^uint64(0)) is clamped: it
// returns no ranges and a fresh mark, which is how a consumer starts
// tracking. ok=false means the journal overflowed past mark — the caller has
// lost history and must fall back to content revalidation.
func (m *Memory) WritesSince(mark uint64) (ranges []WriteRange, next uint64, ok bool) {
	cur := m.journalBase + uint64(len(m.journal))
	if mark >= cur {
		return nil, cur, true
	}
	if mark < m.journalBase {
		return nil, cur, false
	}
	tail := m.journal[mark-m.journalBase:]
	ranges = make([]WriteRange, len(tail))
	copy(ranges, tail)
	return ranges, cur, true
}

// ReadU8 reads one byte.
func (m *Memory) ReadU8(addr uint64) (uint8, error) {
	var b [1]byte
	if err := m.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

// ReadU16 reads a little-endian 16-bit value.
func (m *Memory) ReadU16(addr uint64) (uint16, error) {
	var b [2]byte
	if err := m.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

// ReadU32 reads a little-endian 32-bit value.
func (m *Memory) ReadU32(addr uint64) (uint32, error) {
	var b [4]byte
	if err := m.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// ReadU64 reads a little-endian 64-bit value.
func (m *Memory) ReadU64(addr uint64) (uint64, error) {
	var b [8]byte
	if err := m.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteU8 writes one byte.
func (m *Memory) WriteU8(addr uint64, v uint8) { m.Write(addr, []byte{v}) }

// WriteU16 writes a little-endian 16-bit value.
func (m *Memory) WriteU16(addr uint64, v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	m.Write(addr, b[:])
}

// WriteU32 writes a little-endian 32-bit value.
func (m *Memory) WriteU32(addr uint64, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	m.Write(addr, b[:])
}

// WriteU64 writes a little-endian 64-bit value.
func (m *Memory) WriteU64(addr uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	m.Write(addr, b[:])
}

// ReadCString reads a NUL-terminated string starting at addr, up to max
// bytes. If no NUL is found within max bytes the truncated prefix is
// returned without error (debuggers display what they can).
func (m *Memory) ReadCString(addr uint64, max int) (string, error) {
	buf := make([]byte, 0, 32)
	for i := 0; i < max; i++ {
		c, err := m.ReadU8(addr + uint64(i))
		if err != nil {
			if i > 0 {
				break // partial string at a mapping edge: return what we have
			}
			return "", err
		}
		if c == 0 {
			break
		}
		buf = append(buf, c)
	}
	return string(buf), nil
}

// WriteCString writes s plus a terminating NUL at addr.
func (m *Memory) WriteCString(addr uint64, s string) {
	m.Write(addr, append([]byte(s), 0))
}

// Footprint returns the number of mapped pages and total mapped bytes.
func (m *Memory) Footprint() (pages int, bytes uint64) {
	return len(m.pages), uint64(len(m.pages)) * PageSize
}

// MappedRanges returns the sorted list of mapped page base addresses. Useful
// for tests and for the target's memory-map introspection.
func (m *Memory) MappedRanges() []uint64 {
	out := make([]uint64, 0, len(m.pages))
	for base := range m.pages {
		out = append(out, base)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
