// Copy-on-write page sharing for session fleets.
//
// A PageStore is the process-wide analogue of KSM plus the page cache: a
// refcounted, content-addressed pool of immutable 4 KiB pages. A Memory that
// has been sealed into a store holds references to store pages instead of
// private copies; Fork clones a sealed Memory in O(pages) map inserts without
// copying a single page, and the first Write to a shared page breaks sharing
// for that page only (CoW), exactly like a forked process faulting on a
// written page.
//
// Refcounts use atomics so readers (owned-bytes accounting, gauges) never
// take the store lock; the lock guards only the hash buckets on intern and
// on release-to-zero.
package mem

import (
	"bytes"
	"sync"
	"sync/atomic"
)

// SharedPage is one immutable, refcounted page in a PageStore. Its data must
// never be written after interning — every holder may alias it, including
// snapshot caches in other sessions.
type SharedPage struct {
	data []byte // len == PageSize, immutable after intern
	hash uint64
	refs atomic.Int64
}

// Data returns the page contents. The slice is shared and immutable; callers
// must not write through it.
func (p *SharedPage) Data() []byte { return p.data }

// Refs returns the current reference count.
func (p *SharedPage) Refs() int64 { return p.refs.Load() }

// PageStore is a content-addressed pool of shared pages. The zero value is
// not usable; call NewPageStore.
type PageStore struct {
	mu      sync.Mutex
	buckets map[uint64][]*SharedPage

	uniquePages atomic.Int64  // distinct pages resident
	totalRefs   atomic.Int64  // sum of refcounts (mapped shared pages fleet-wide)
	dedupHits   atomic.Uint64 // interns that matched an existing page
	interns     atomic.Uint64 // total intern calls
	cowBreaks   atomic.Uint64 // shared pages privatized by a write
}

// NewPageStore returns an empty store.
func NewPageStore() *PageStore {
	return &PageStore{buckets: make(map[uint64][]*SharedPage)}
}

// pageHash is FNV-1a over the page contents: cheap, deterministic, and good
// enough given interning always confirms with a byte compare.
func pageHash(data []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// intern adds data (len PageSize) to the store, deduplicating against
// resident pages by hash + byte compare. On a miss the store takes ownership
// of the slice; on a hit the slice is dropped and the resident page gains a
// reference. Either way the caller holds one reference on the result.
func (s *PageStore) intern(data []byte) *SharedPage {
	h := pageHash(data)
	s.interns.Add(1)
	s.mu.Lock()
	for _, p := range s.buckets[h] {
		if bytes.Equal(p.data, data) {
			p.refs.Add(1)
			s.mu.Unlock()
			s.dedupHits.Add(1)
			s.totalRefs.Add(1)
			return p
		}
	}
	p := &SharedPage{data: data, hash: h}
	p.refs.Store(1)
	s.buckets[h] = append(s.buckets[h], p)
	s.mu.Unlock()
	s.uniquePages.Add(1)
	s.totalRefs.Add(1)
	return p
}

// retain adds a reference to p. The caller must already hold a reference
// (a page can never be revived from zero), so no lock is needed.
func (s *PageStore) retain(p *SharedPage) {
	p.refs.Add(1)
	s.totalRefs.Add(1)
}

// release drops one reference; the last release evicts the page from the
// store so its bytes become reclaimable once aliasing snapshots let go.
func (s *PageStore) release(p *SharedPage) {
	s.totalRefs.Add(-1)
	if p.refs.Add(-1) != 0 {
		return
	}
	s.mu.Lock()
	// Refs can only grow via retain (which requires a live reference) or
	// intern (under s.mu). Refs hit zero, so no retain can race; re-check
	// under the lock only to serialize against a concurrent intern that
	// matched this page before we evict it.
	if p.refs.Load() != 0 {
		s.mu.Unlock()
		return
	}
	bucket := s.buckets[p.hash]
	for i, q := range bucket {
		if q == p {
			bucket[i] = bucket[len(bucket)-1]
			s.buckets[p.hash] = bucket[:len(bucket)-1]
			s.uniquePages.Add(-1)
			break
		}
	}
	if len(s.buckets[p.hash]) == 0 {
		delete(s.buckets, p.hash)
	}
	s.mu.Unlock()
}

// StoreStats is a point-in-time snapshot of a store's dedup effectiveness.
type StoreStats struct {
	UniquePages int64  // distinct pages resident
	UniqueBytes uint64 // UniquePages * PageSize
	TotalRefs   int64  // sum of refcounts across memories
	SharedBytes uint64 // TotalRefs * PageSize: bytes mapped if nothing were shared
	DedupHits   uint64 // interns satisfied by an existing page
	Interns     uint64 // total intern calls
	CowBreaks   uint64 // shared pages privatized by writes
}

// Stats returns current counters. Lock-free; values are individually atomic
// (the snapshot may be torn across fields under concurrent churn).
func (s *PageStore) Stats() StoreStats {
	up := s.uniquePages.Load()
	tr := s.totalRefs.Load()
	return StoreStats{
		UniquePages: up,
		UniqueBytes: uint64(up) * PageSize,
		TotalRefs:   tr,
		SharedBytes: uint64(tr) * PageSize,
		DedupHits:   s.dedupHits.Load(),
		Interns:     s.interns.Load(),
		CowBreaks:   s.cowBreaks.Load(),
	}
}
