package mem

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// buildImage fills m with a deterministic multi-page pattern.
func buildImage(m *Memory, pages int, salt byte) {
	for i := 0; i < pages; i++ {
		base := uint64(i) * PageSize
		buf := make([]byte, PageSize)
		for j := range buf {
			buf[j] = byte(i) ^ byte(j) ^ salt
		}
		m.Write(base, buf)
	}
}

func TestSealForkSharesPages(t *testing.T) {
	store := NewPageStore()
	tpl := New()
	buildImage(tpl, 8, 0)
	tpl.Seal(store)

	st := store.Stats()
	if st.UniquePages != 8 {
		t.Fatalf("unique pages after seal = %d, want 8", st.UniquePages)
	}

	f := tpl.Fork()
	if got := store.Stats().UniquePages; got != 8 {
		t.Fatalf("fork duplicated pages: unique = %d", got)
	}
	if got := store.Stats().TotalRefs; got != 16 {
		t.Fatalf("total refs after one fork = %d, want 16", got)
	}

	// Byte-identical reads, including cross-page.
	want := make([]byte, 3*PageSize)
	got := make([]byte, 3*PageSize)
	if err := tpl.Read(PageSize/2, want); err != nil {
		t.Fatal(err)
	}
	if err := f.Read(PageSize/2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("fork reads differ from template")
	}

	// Footprint counts shared pages.
	if pages, _ := f.Footprint(); pages != 8 {
		t.Fatalf("fork footprint = %d pages, want 8", pages)
	}
	if len(f.MappedRanges()) != 8 {
		t.Fatalf("fork MappedRanges = %d, want 8", len(f.MappedRanges()))
	}
}

func TestCowBreakIsolatesWriter(t *testing.T) {
	store := NewPageStore()
	tpl := New()
	buildImage(tpl, 4, 0)
	tpl.Seal(store)
	a, b := tpl.Fork(), tpl.Fork()

	orig, _ := tpl.ReadU64(2 * PageSize)
	a.WriteU64(2*PageSize, 0xdeadbeef)

	if v, _ := a.ReadU64(2 * PageSize); v != 0xdeadbeef {
		t.Fatalf("writer sees %#x", v)
	}
	for name, m := range map[string]*Memory{"template": tpl, "sibling": b} {
		if v, _ := m.ReadU64(2 * PageSize); v != orig {
			t.Fatalf("%s sees %#x after sibling write, want %#x", name, v, orig)
		}
	}

	st := store.Stats()
	if st.CowBreaks != 1 {
		t.Fatalf("cow breaks = %d, want 1", st.CowBreaks)
	}
	// a's broken page no longer holds a ref: 4 pages * (tpl + b) + 3 pages * a.
	if st.TotalRefs != 11 {
		t.Fatalf("total refs = %d, want 11", st.TotalRefs)
	}
	// The rest of the broken page must match the template outside the write.
	rest := make([]byte, PageSize-8)
	restTpl := make([]byte, PageSize-8)
	if err := a.Read(2*PageSize+8, rest); err != nil {
		t.Fatal(err)
	}
	if err := tpl.Read(2*PageSize+8, restTpl); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rest, restTpl) {
		t.Fatal("cow break corrupted unwritten bytes of the page")
	}
}

func TestDedupAcrossSealedImages(t *testing.T) {
	store := NewPageStore()
	a, b := New(), New()
	buildImage(a, 6, 0)
	buildImage(b, 6, 0) // identical content
	a.Seal(store)
	b.Seal(store)

	st := store.Stats()
	if st.UniquePages != 6 {
		t.Fatalf("unique pages = %d, want 6 (content dedup)", st.UniquePages)
	}
	if st.DedupHits != 6 {
		t.Fatalf("dedup hits = %d, want 6", st.DedupHits)
	}

	// Divergent image shares nothing.
	c := New()
	buildImage(c, 6, 0xff)
	c.Seal(store)
	if got := store.Stats().UniquePages; got != 12 {
		t.Fatalf("unique pages after divergent seal = %d, want 12", got)
	}
}

func TestReleaseDropsRefsButStaysReadable(t *testing.T) {
	store := NewPageStore()
	tpl := New()
	buildImage(tpl, 4, 0)
	tpl.Seal(store)
	f := tpl.Fork()

	f.Release()
	if got := store.Stats().TotalRefs; got != 4 {
		t.Fatalf("refs after release = %d, want 4", got)
	}
	if f.OwnedBytes() != 0 {
		t.Fatalf("released memory owns %d bytes", f.OwnedBytes())
	}
	// Still readable (in-flight extraction semantics), and writes must not
	// corrupt refcounts.
	var buf [16]byte
	if err := f.Read(PageSize, buf[:]); err != nil {
		t.Fatalf("released memory unreadable: %v", err)
	}
	f.WriteU8(PageSize, 42)
	f.Release() // idempotent
	if got := store.Stats().TotalRefs; got != 4 {
		t.Fatalf("refs after post-release write + re-release = %d, want 4", got)
	}

	tpl.Release()
	st := store.Stats()
	if st.TotalRefs != 0 || st.UniquePages != 0 {
		t.Fatalf("store not empty after all releases: %+v", st)
	}
}

// TestOwnedBytesAmortization checks the accounting identity the session
// manager's budget relies on: summing OwnedBytes over every live memory
// (template included) equals unique resident bytes, private pages included.
func TestOwnedBytesAmortization(t *testing.T) {
	store := NewPageStore()
	tpl := New()
	buildImage(tpl, 9, 0)
	tpl.Seal(store)

	mems := []*Memory{tpl}
	for i := 0; i < 3; i++ {
		mems = append(mems, tpl.Fork())
	}
	// Diverge one fork by two pages.
	mems[1].WriteU64(0, 1)
	mems[1].WriteU64(5*PageSize, 2)

	var owned uint64
	for _, m := range mems {
		owned = owned + m.Residency().OwnedBytes
	}
	st := store.Stats()
	var private uint64
	for _, m := range mems {
		private += m.Residency().PrivateBytes
	}
	want := st.UniqueBytes + private
	// Integer amortization (PageSize/refs) rounds down per holder; allow the
	// remainder: 9 shared pages * up to (refs-1) bytes lost.
	if owned > want || want-owned > 9*4 {
		t.Fatalf("sum(owned) = %d, want ~%d (unique %d + private %d)",
			owned, want, st.UniqueBytes, private)
	}
	r := mems[1].Residency()
	if r.PrivatePages != 2 || r.SharedPages != 7 {
		t.Fatalf("diverged fork residency = %+v, want 2 private / 7 shared", r)
	}
}

func TestForkJournalIsFresh(t *testing.T) {
	store := NewPageStore()
	tpl := New()
	buildImage(tpl, 2, 0)
	tpl.Seal(store)

	f := tpl.Fork()
	// A new consumer arms its cursor with a clamped mark.
	_, mark, ok := f.WritesSince(^uint64(0))
	if !ok || mark != 0 {
		t.Fatalf("fresh fork journal mark = %d ok=%v, want 0 true", mark, ok)
	}
	f.WriteU64(100, 7)
	ranges, next, ok := f.WritesSince(mark)
	if !ok || len(ranges) != 1 || ranges[0] != (WriteRange{Addr: 100, Size: 8}) {
		t.Fatalf("fork journal: ranges=%v ok=%v", ranges, ok)
	}
	if _, _, ok := f.WritesSince(next); !ok {
		t.Fatal("fork journal lost current mark")
	}
	// Template journal untouched by fork writes.
	if ranges, _, ok := tpl.WritesSince(mark); ok && len(ranges) != 0 {
		// Template has its own build history; just ensure the fork's write
		// did not append to it.
		for _, r := range ranges {
			if r.Addr == 100 {
				t.Fatal("fork write leaked into template journal")
			}
		}
	}
}

func TestPageDataAliasing(t *testing.T) {
	store := NewPageStore()
	tpl := New()
	buildImage(tpl, 2, 0)
	tpl.Seal(store)
	f := tpl.Fork()

	data, ok := f.PageData(PageSize + 123)
	if !ok || len(data) != PageSize {
		t.Fatalf("PageData on shared page: ok=%v len=%d", ok, len(data))
	}
	tplData, _ := tpl.PageData(PageSize)
	if &data[0] != &tplData[0] {
		t.Fatal("fork and template alias different backing for a shared page")
	}
	// After a CoW break the page is private: no aliasing allowed.
	f.WriteU8(PageSize, 9)
	if _, ok := f.PageData(PageSize); ok {
		t.Fatal("PageData exposed a private (mutable) page")
	}
	if _, ok := f.PageData(0); !ok {
		t.Fatal("untouched page lost aliasing after unrelated break")
	}
	if _, ok := f.PageData(99 * PageSize); ok {
		t.Fatal("PageData on unmapped address")
	}
}

// TestStoreConcurrencySoak hammers one store with concurrent forks, CoW
// breaks, reads, and releases — run under -race by the Makefile race gate.
func TestStoreConcurrencySoak(t *testing.T) {
	store := NewPageStore()
	tpl := New()
	buildImage(tpl, 16, 0)
	tpl.Seal(store)

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				f := tpl.Fork()
				var buf [64]byte
				for i := 0; i < 16; i++ {
					if err := f.Read(uint64(i)*PageSize+32, buf[:]); err != nil {
						panic(fmt.Sprintf("read: %v", err))
					}
				}
				f.WriteU64(uint64(w%16)*PageSize, uint64(iter))
				f.WriteU64(uint64((w+iter)%16)*PageSize+8, uint64(w))
				_ = f.OwnedBytes()
				_ = store.Stats()
				f.Release()
			}
		}(w)
	}
	wg.Wait()

	st := store.Stats()
	if st.TotalRefs != 16 || st.UniquePages != 16 {
		t.Fatalf("store leaked after soak: %+v", st)
	}
	tpl.Release()
	if st := store.Stats(); st.TotalRefs != 0 || st.UniquePages != 0 {
		t.Fatalf("store not empty: %+v", st)
	}
}
