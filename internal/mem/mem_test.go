package mem_test

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"visualinux/internal/mem"
)

func TestReadWriteRoundtrip(t *testing.T) {
	m := mem.New()
	prop := func(addrSeed uint32, data []byte) bool {
		if len(data) == 0 {
			data = []byte{0xAB}
		}
		addr := 0x1000_0000 + uint64(addrSeed)
		m.Write(addr, data)
		got := make([]byte, len(data))
		if err := m.Read(addr, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := mem.New()
	// A write spanning a page boundary must land contiguously.
	addr := uint64(2*mem.PageSize - 3)
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	m.Write(addr, data)
	for i, want := range data {
		got, err := m.ReadU8(addr + uint64(i))
		if err != nil {
			t.Fatalf("read +%d: %v", i, err)
		}
		if got != want {
			t.Errorf("byte %d = %d, want %d", i, got, want)
		}
	}
	v, err := m.ReadU64(addr)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x0807060504030201 {
		t.Errorf("u64 = %#x", v)
	}
}

func TestScalarAccessors(t *testing.T) {
	m := mem.New()
	m.WriteU16(0x100, 0xBEEF)
	m.WriteU32(0x110, 0xDEADBEEF)
	m.WriteU64(0x120, 0x0123456789ABCDEF)
	if v, _ := m.ReadU16(0x100); v != 0xBEEF {
		t.Errorf("u16 = %#x", v)
	}
	if v, _ := m.ReadU32(0x110); v != 0xDEADBEEF {
		t.Errorf("u32 = %#x", v)
	}
	if v, _ := m.ReadU64(0x120); v != 0x0123456789ABCDEF {
		t.Errorf("u64 = %#x", v)
	}
	// Little-endian byte order.
	if b, _ := m.ReadU8(0x100); b != 0xEF {
		t.Errorf("low byte = %#x", b)
	}
}

func TestUnmappedRead(t *testing.T) {
	m := mem.New()
	var buf [8]byte
	err := m.Read(0xdead0000, buf[:])
	if err == nil {
		t.Fatal("no error for unmapped read")
	}
	var um *mem.ErrUnmapped
	if !errors.As(err, &um) {
		t.Fatalf("error type %T", err)
	}
	if um.Addr != 0xdead0000 {
		t.Errorf("fault addr %#x", um.Addr)
	}
	// A read straddling mapped->unmapped also faults.
	m.Write(0x5000, []byte{1})
	if err := m.Read(0x5000+mem.PageSize-4, buf[:]); err == nil {
		t.Error("no error for straddling read")
	}
}

func TestCStrings(t *testing.T) {
	m := mem.New()
	m.WriteCString(0x200, "hello, kernel")
	s, err := m.ReadCString(0x200, 64)
	if err != nil || s != "hello, kernel" {
		t.Fatalf("got %q, %v", s, err)
	}
	// max truncation
	s, _ = m.ReadCString(0x200, 5)
	if s != "hello" {
		t.Errorf("truncated = %q", s)
	}
	// empty string
	m.WriteU8(0x300, 0)
	if s, _ := m.ReadCString(0x300, 8); s != "" {
		t.Errorf("empty = %q", s)
	}
}

func TestFootprintAndRanges(t *testing.T) {
	m := mem.New()
	m.WriteU8(0, 1)
	m.WriteU8(mem.PageSize*10, 1)
	m.WriteU8(mem.PageSize*10+1, 1) // same page
	pages, bytes := m.Footprint()
	if pages != 2 {
		t.Errorf("pages = %d", pages)
	}
	if bytes != 2*mem.PageSize {
		t.Errorf("bytes = %d", bytes)
	}
	rs := m.MappedRanges()
	if len(rs) != 2 || rs[0] != 0 || rs[1] != mem.PageSize*10 {
		t.Errorf("ranges = %v", rs)
	}
	if !m.Mapped(5) || m.Mapped(mem.PageSize*5) {
		t.Errorf("Mapped misreports")
	}
}

func TestZeroFill(t *testing.T) {
	m := mem.New()
	m.WriteU8(0x1000, 0xFF) // maps the page
	// Untouched bytes of a mapped page read as zero.
	if v, err := m.ReadU64(0x1008); err != nil || v != 0 {
		t.Errorf("zero fill: %d, %v", v, err)
	}
}
