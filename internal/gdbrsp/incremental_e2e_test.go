package gdbrsp_test

import (
	"testing"

	"visualinux/internal/core"
	"visualinux/internal/gdbrsp"
	"visualinux/internal/render"
	"visualinux/internal/vclstdlib"
)

// The full incremental pipeline over a real RSP loopback socket: repeated
// stop→mutate→resume cycles must produce VPlots byte-identical to a cold
// in-process extractor at every round — with the dirty-ranges annex doing
// the revalidation, and again with the annex disabled so the client falls
// back to memory-hash revalidation.
func TestIncrementalOverWire(t *testing.T) {
	figIDs := []string{"3-4", "3-6", "7-1", "workqueue"}
	for _, tc := range []struct {
		name string
		opts []gdbrsp.ServerOption
	}{
		{"dirty-annex", nil},
		{"hash-fallback", []gdbrsp.ServerOption{gdbrsp.WithoutDirtyAnnex()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			k, c := dialKernelOpts(t, tc.opts...)
			var figs []vclstdlib.Figure
			for _, id := range figIDs {
				fig, ok := vclstdlib.FigureByID(id)
				if !ok {
					t.Fatalf("unknown figure %s", id)
				}
				figs = append(figs, fig)
			}
			x := core.NewIncrementalExtractor(k, c, figs, nil)
			if _, err := x.Round(); err != nil {
				t.Fatalf("cold round: %v", err)
			}

			mutate := []func() error{
				func() error { return k.PipeWrite(k.DirtyPipe, 64) },
				func() error { _, err := k.SpawnTask(9100, "wiretest", 1); return err },
				nil, // quiet round
			}
			lastGen := x.Snapshot().Generation()
			for round, m := range mutate {
				if m != nil {
					if err := m(); err != nil {
						t.Fatalf("round %d mutation: %v", round, err)
					}
				}
				x.Advance()
				if g := x.Snapshot().Generation(); g <= lastGen {
					t.Fatalf("round %d: generation not monotone", round)
				} else {
					lastGen = g
				}
				out, err := x.Round()
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				for i, rr := range out {
					cold := core.SessionOver(k, k.Target())
					p, err := cold.VPlotFigure(figs[i].ID)
					if err != nil {
						t.Fatalf("round %d cold %s: %v", round, figs[i].ID, err)
					}
					if render.Text(rr.Res.Graph) != render.Text(p.Graph) {
						t.Errorf("round %d: figure %s over the wire diverged from cold extraction",
							round, figs[i].ID)
					}
				}
				if m == nil {
					for i, rr := range out {
						if !rr.Reused {
							t.Errorf("quiet round re-extracted %s", figs[i].ID)
						}
					}
				}
			}
			if tc.name == "hash-fallback" && c.Stats().HashChecks.Load() == 0 {
				t.Error("hash-fallback run issued no hash round trips")
			}
		})
	}
}
