package gdbrsp

import "testing"

func TestChecksumAndFraming(t *testing.T) {
	p := encodePacket("m1000,8")
	if string(p) != "$m1000,8#92" {
		t.Errorf("frame = %q", p)
	}
	if checksum([]byte("OK")) != 'O'+'K' {
		t.Errorf("checksum broken")
	}
}

func TestHexParsing(t *testing.T) {
	if v, err := parseHexU64("ffff888000001000"); err != nil || v != 0xffff888000001000 {
		t.Errorf("parse = %#x, %v", v, err)
	}
	if _, err := parseHexU64("xyz"); err == nil {
		t.Error("bad hex accepted")
	}
	if _, err := parseHexU64(""); err == nil {
		t.Error("empty hex accepted")
	}
	b, err := decodeHex("cafe01")
	if err != nil || len(b) != 3 || b[0] != 0xCA || b[2] != 1 {
		t.Errorf("decode = %v, %v", b, err)
	}
	if _, err := decodeHex("abc"); err == nil {
		t.Error("odd hex accepted")
	}
	a, l, err := splitAddrLen("1000,40")
	if err != nil || a != 0x1000 || l != 0x40 {
		t.Errorf("addrlen = %#x,%#x, %v", a, l, err)
	}
	if _, _, err := splitAddrLen("1000"); err == nil {
		t.Error("missing comma accepted")
	}
}
