package gdbrsp_test

import (
	"testing"

	"visualinux/internal/core"
	"visualinux/internal/gdbrsp"
	"visualinux/internal/kernelsim"
	"visualinux/internal/render"
	"visualinux/internal/target"
	"visualinux/internal/vclstdlib"
)

// dialKernel serves a simulated kernel over RSP and dials it back,
// returning both ends.
func dialKernel(t testing.TB) (*kernelsim.Kernel, *gdbrsp.Client) {
	t.Helper()
	k := kernelsim.Build(kernelsim.Options{})
	srv, err := gdbrsp.Serve("127.0.0.1:0", k.Target())
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := gdbrsp.Dial(srv.Addr(), k.Reg, k.Target().Symbols())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { client.Close() })
	return k, client
}

func TestMemoryOverWire(t *testing.T) {
	k, client := dialKernel(t)
	// A direct read and a wire read must agree.
	want, err := target.ReadU64(k.Target(), k.InitTask.Addr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := target.ReadU64(client, k.InitTask.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("wire read %#x != direct %#x", got, want)
	}
	// Large read (forces chunking): a whole task_struct.
	sz := k.Reg.MustLookup("task_struct").Size()
	direct := make([]byte, sz)
	wire := make([]byte, sz)
	if err := k.Target().ReadMemory(k.InitTask.Addr, direct); err != nil {
		t.Fatal(err)
	}
	if err := client.ReadMemory(k.InitTask.Addr, wire); err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if direct[i] != wire[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
	// Unmapped memory errors cleanly.
	var b [8]byte
	if err := client.ReadMemory(0xdead_0000_0000, b[:]); err == nil {
		t.Error("unmapped read succeeded over wire")
	}
	// Stats counted on the client side.
	if reads, _ := client.Stats().Snapshot(); reads == 0 {
		t.Error("client stats not counted")
	}
}

// TestFigureOverWire runs a full ViewCL extraction through the RSP stack
// and requires the identical object graph as direct extraction — the
// "detached front-end for GDB" architecture end to end.
func TestFigureOverWire(t *testing.T) {
	k, client := dialKernel(t)
	fig, _ := vclstdlib.FigureByID("7-1")

	direct := core.SessionOver(k, k.Target())
	pd, err := direct.VPlot("direct", fig.Program)
	if err != nil {
		t.Fatal(err)
	}
	remote := core.SessionOver(k, client)
	pr, err := remote.VPlot("remote", fig.Program)
	if err != nil {
		t.Fatalf("extraction over RSP: %v", err)
	}

	if len(pd.Graph.Boxes) != len(pr.Graph.Boxes) {
		t.Fatalf("box counts differ: %d vs %d", len(pd.Graph.Boxes), len(pr.Graph.Boxes))
	}
	// Same IDs, same rendered text values.
	for _, id := range pd.Graph.Order {
		db := pd.Graph.Boxes[id]
		rb, ok := pr.Graph.Get(id)
		if !ok {
			t.Fatalf("box %s missing over wire", id)
		}
		for _, vn := range db.ViewSeq {
			dv, rv := db.Views[vn], rb.Views[vn]
			if len(dv.Items) != len(rv.Items) {
				t.Fatalf("%s view %s item counts differ", id, vn)
			}
			for i := range dv.Items {
				if dv.Items[i].Value != rv.Items[i].Value {
					t.Errorf("%s.%s = %q over wire, %q direct",
						id, dv.Items[i].Name, rv.Items[i].Value, dv.Items[i].Value)
				}
			}
		}
	}
	// Renderings agree too (modulo the graph name in the header).
	if render.DOT(pd.Graph) == "" || render.DOT(pr.Graph) == "" {
		t.Error("rendering failed")
	}
}

func TestStackRotOverWire(t *testing.T) {
	k, client := dialKernel(t)
	s := core.SessionOver(k, client)
	p, err := s.VPlot("stackrot", vclstdlib.StackRotProgram)
	if err != nil {
		t.Fatalf("stackrot over RSP: %v", err)
	}
	if len(p.Graph.Roots) != 2 {
		t.Fatalf("roots = %d", len(p.Graph.Roots))
	}
	found := false
	for _, b := range p.Graph.ByType("rcu_head") {
		if f, ok := b.Member("func"); ok && f.Value == "mt_free_rcu" {
			found = true
		}
	}
	if !found {
		t.Error("RCU callback lost over the wire")
	}
}

func TestConcurrentClients(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	srv, err := gdbrsp.Serve("127.0.0.1:0", k.Target())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			c, err := gdbrsp.Dial(srv.Addr(), k.Reg, k.Target().Symbols())
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			var buf [64]byte
			for j := 0; j < 50; j++ {
				if err := c.ReadMemory(k.InitTask.Addr, buf[:]); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
