package gdbrsp

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"

	"visualinux/internal/target"
)

// minPacket is the smallest PacketSize the server will run with: enough for
// one qXfer command frame and at least a few bytes of hex reply.
const minPacket = 64

// Server speaks the gdbstub side of RSP, serving memory reads from a
// backing target (the simulated kernel). It is the QEMU-gdbstub stand-in.
//
// The server is built for slow, small-packet links: arbitrarily large reads
// are served over a small negotiated PacketSize via continuation — the
// qXfer:memory:read annex answers in `m`/`l` chunked replies — and a plain
// `$m` request that exceeds the packet bound gets a standards-correct short
// reply (the longest prefix that fits), which the client resumes from the
// next byte. When the backing target knows its memory map, the server also
// serves a qXfer:memory-map:read annex so clients can clip batch fills to
// mapped ranges without probing.
type Server struct {
	backing   target.Target
	ln        net.Listener
	packetMax int
	// noDirty / noHash suppress advertising the dirty-ranges and memory-hash
	// annexes even when the backing could serve them — modeling older stubs,
	// and letting tests pin the hash-fallback and refetch-fallback paths.
	noDirty bool
	noHash  bool

	mu     sync.Mutex
	closed bool
}

// ServerOption configures a Server before it starts listening.
type ServerOption func(*Server)

// WithPacketSize sets the advertised PacketSize (payload bytes), clamped to
// [minPacket, maxPacket]. Small sizes model constrained stubs (KGDB over
// serial advertises far less than QEMU's gdbstub).
func WithPacketSize(n int) ServerOption {
	return func(s *Server) {
		if n < minPacket {
			n = minPacket
		}
		if n > maxPacket {
			n = maxPacket
		}
		s.packetMax = n
	}
}

// WithoutDirtyAnnex disables the qXfer:dirty-ranges:read annex, modeling a
// stub without a write journal; clients degrade to hash revalidation.
func WithoutDirtyAnnex() ServerOption {
	return func(s *Server) { s.noDirty = true }
}

// WithoutHashAnnex disables the qXfer:memory-hash:read annex, modeling a
// stub that cannot hash its memory; clients degrade to whole-page refetch.
func WithoutHashAnnex() ServerOption {
	return func(s *Server) { s.noHash = true }
}

// Serve starts an RSP server on addr ("127.0.0.1:0" for an ephemeral
// port). It returns immediately; connections are handled in goroutines.
func Serve(addr string, backing target.Target, opts ...ServerOption) (*Server, error) {
	s := &Server{backing: backing, packetMax: maxPacket}
	for _, o := range opts {
		o(s)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gdbrsp: listen: %w", err)
	}
	s.ln = ln
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// PacketSize returns the advertised packet bound (payload bytes).
func (s *Server) PacketSize() int { return s.packetMax }

// Close stops the listener.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.ln.Close()
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go s.handle(conn)
	}
}

// stubConn is the per-connection state: buffered I/O plus the serialized
// memory map, cached so a chunked qXfer:memory-map:read sequence reads one
// consistent snapshot of the map even if the image mutates between stops.
type stubConn struct {
	s       *Server
	mapBlob []byte
	// Chunked-annex reply caches, keyed by the annex argument so a
	// continuation sequence reads one consistent blob. Rebuilt whenever a
	// request arrives at offset 0 or with a different argument.
	hashBlob  []byte
	hashKey   string
	dirtyBlob []byte
	dirtyKey  string
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	st := &stubConn{s: s}
	for {
		payload, err := readPacket(r, s.packetMax)
		if err != nil {
			return
		}
		// Ack every well-formed packet.
		if _, err := w.WriteString("+"); err != nil {
			return
		}
		reply, kill := st.dispatch(payload)
		if _, err := w.Write(encodePacket(reply)); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
		// The stub ignores the client's ack of our reply (read and drop).
		if b, err := r.Peek(1); err == nil && (b[0] == '+' || b[0] == '-') {
			_, _ = r.ReadByte()
		}
		if kill {
			return
		}
	}
}

// readPacket consumes one $...#cs frame, tolerating interrupt bytes and
// acks in the stream. Payloads above max (the negotiated PacketSize) are
// rejected: accepting more would silently void the bound both ends agreed
// on.
func readPacket(r *bufio.Reader, max int) (string, error) {
	for {
		c, err := r.ReadByte()
		if err != nil {
			return "", err
		}
		switch c {
		case '$':
			var payload []byte
			for {
				b, err := r.ReadByte()
				if err != nil {
					return "", err
				}
				if b == '#' {
					break
				}
				payload = append(payload, b)
				if len(payload) > max {
					return "", fmt.Errorf("gdbrsp: packet exceeds negotiated size %d", max)
				}
			}
			var cs [2]byte
			if _, err := io.ReadFull(r, cs[:]); err != nil {
				return "", err
			}
			want, err := parseHexU64(string(cs[:]))
			if err != nil {
				return "", err
			}
			if byte(want) != checksum(payload) {
				return "", fmt.Errorf("gdbrsp: checksum mismatch")
			}
			return string(payload), nil
		case '+', '-', 0x03:
			continue // acks and interrupts between packets
		default:
			continue // noise
		}
	}
}

// dispatch computes the reply for one packet; kill reports session end.
func (c *stubConn) dispatch(payload string) (reply string, kill bool) {
	s := c.s
	switch {
	case payload == "":
		return "", false
	case payload[0] == 'm':
		addr, length, err := splitAddrLen(payload[1:])
		if err != nil {
			return errorReply(0x16), false // EINVAL
		}
		// A reply is hex (2 chars per byte) and must fit the negotiated
		// packet: larger requests get a short reply — the standards-correct
		// signal (not an error) that the client should resume at addr+n.
		if bound := uint64(s.packetMax / 2); length > bound {
			length = bound
		}
		data := s.readMappedPrefix(addr, length)
		if len(data) == 0 && length > 0 {
			return errorReply(0x0e), false // EFAULT: not even the first byte
		}
		return hexEncode(data), false
	case hasPrefix(payload, "qXfer:memory:read:"):
		return s.xferMemoryRead(payload[len("qXfer:memory:read:"):]), false
	case hasPrefix(payload, "qXfer:memory-map:read:"):
		return c.xferMemoryMap(payload[len("qXfer:memory-map:read:"):]), false
	case hasPrefix(payload, "qXfer:memory-hash:read:"):
		return c.xferMemoryHash(payload[len("qXfer:memory-hash:read:"):]), false
	case hasPrefix(payload, "qXfer:dirty-ranges:read:"):
		return c.xferDirtyRanges(payload[len("qXfer:dirty-ranges:read:"):]), false
	case payload == "?":
		return "S05", false // stopped by SIGTRAP, like a fresh attach
	case payload == "g":
		// 16 fake 64-bit registers, all zero: we debug state, not regs.
		return stringsRepeat("0", 16*16), false
	case payload[0] == 'p':
		return stringsRepeat("0", 16), false
	case payload[0] == 'H':
		return "OK", false
	case payload == "qAttached":
		return "1", false
	case payload == "vMustReplyEmpty":
		return "", false
	case hasPrefix(payload, "qSupported"):
		features := fmt.Sprintf("PacketSize=%x;qXfer:features:read-;qXfer:memory:read+", s.packetMax)
		if _, ok := s.backing.(mappedRanger); ok {
			features += ";qXfer:memory-map:read+"
		}
		if !s.noHash {
			features += ";qXfer:memory-hash:read+"
		}
		if !s.noDirty {
			if _, ok := s.backing.(target.DirtyTracker); ok {
				features += ";qXfer:dirty-ranges:read+"
			}
		}
		return features, false
	case payload == "D": // detach
		return "OK", true
	case payload == "k": // kill
		return "", true
	case payload[0] == 'X' || payload[0] == 'M':
		// Memory writes: the visualizer never writes; refuse politely.
		return errorReply(0x0d), false // EACCES
	case payload[0] == 'c' || payload[0] == 's':
		// Continue/step: the simulated machine is permanently stopped.
		return "S05", false
	default:
		return "", false // unsupported -> empty reply per RSP
	}
}

// mappedRanger is what the backing must expose for the memory-map annex.
type mappedRanger interface {
	MappedRanges() []target.Range
}

// chunkBytes is how many memory bytes one continuation reply carries: the
// `m`/`l` marker plus 2 hex chars per byte must fit the negotiated packet.
func (s *Server) chunkBytes() uint64 { return uint64((s.packetMax - 1) / 2) }

// xferMemoryRead serves one window of a qXfer:memory:read:ADDR,LEN:OFF,N
// request. The annex names the whole object ([ADDR, ADDR+LEN)); OFF,N is the
// client's window into it. Replies are `m<hex>` (more follows) or `l<hex>`
// (object ends with this chunk). A chunk that stops short of the window —
// the read ran off the mapped prefix — is returned as `l`: the object ends
// early, and the client sees exactly how many bytes were readable.
func (s *Server) xferMemoryRead(spec string) string {
	i := strings.IndexByte(spec, ':')
	if i < 0 {
		return errorReply(0x16)
	}
	addr, length, err := splitAddrLen(spec[:i])
	if err != nil {
		return errorReply(0x16)
	}
	off, n, err := splitAddrLen(spec[i+1:])
	if err != nil || off > length {
		return errorReply(0x16)
	}
	window := length - off
	if n < window {
		window = n
	}
	if bound := s.chunkBytes(); window > bound {
		window = bound
	}
	if window == 0 {
		return "l"
	}
	data := s.readMappedPrefix(addr+off, window)
	if len(data) == 0 {
		if off == 0 {
			return errorReply(0x0e) // nothing readable at all
		}
		return "l" // mapped prefix ends exactly at off
	}
	if uint64(len(data)) < window || off+uint64(len(data)) == length {
		return "l" + hexEncode(data)
	}
	return "m" + hexEncode(data)
}

// xferMemoryMap serves the target's memory map as "addr,size;addr,size;..."
// (hex, merged mapped ranges, ascending), windowed by OFF,N with the same
// m/l continuation framing as memory reads. The map is serialized once per
// sequence (a request at offset 0) so chunked fetches stay consistent.
func (c *stubConn) xferMemoryMap(spec string) string {
	i := strings.IndexByte(spec, ':')
	if i < 0 {
		return errorReply(0x16)
	}
	off, n, err := splitAddrLen(spec[i+1:])
	if err != nil {
		return errorReply(0x16)
	}
	mr, ok := c.s.backing.(mappedRanger)
	if !ok {
		return "" // unsupported -> empty reply per RSP
	}
	if off == 0 || c.mapBlob == nil {
		var sb []byte
		for _, r := range mr.MappedRanges() {
			sb = append(sb, fmt.Sprintf("%x,%x;", r.Addr, r.Size)...)
		}
		c.mapBlob = sb
	}
	if off >= uint64(len(c.mapBlob)) {
		return "l"
	}
	window := uint64(len(c.mapBlob)) - off
	if n < window {
		window = n
	}
	// The map is plain text, not hex: one reply carries packetMax-1 chars.
	if bound := uint64(c.s.packetMax - 1); window > bound {
		window = bound
	}
	chunk := c.mapBlob[off : off+window]
	if off+window == uint64(len(c.mapBlob)) {
		return "l" + string(chunk)
	}
	return "m" + string(chunk)
}

// xferMemoryHash serves qXfer:memory-hash:read:ADDR,LEN:OFF,N — SubPage-
// granular FNV-1a 64 content hashes of [ADDR, ADDR+LEN), 16 hex chars per
// block, windowed with the usual m/l continuation framing. The hash vector
// is computed once per sequence (offset 0 or a new range) so a chunked
// fetch sees one consistent snapshot. Unmapped blocks hash as 0, matching
// the machine-side convention. This is the cheap revalidation primitive:
// the debugger confirms a stale page unchanged for 16 hex chars per 256 B
// instead of re-reading 4 KiB.
func (c *stubConn) xferMemoryHash(spec string) string {
	if c.s.noHash {
		return "" // unsupported -> empty reply per RSP
	}
	i := strings.IndexByte(spec, ':')
	if i < 0 {
		return errorReply(0x16)
	}
	addr, length, err := splitAddrLen(spec[:i])
	if err != nil || addr%target.SubPage != 0 || length%target.SubPage != 0 || length == 0 {
		return errorReply(0x16)
	}
	off, n, err := splitAddrLen(spec[i+1:])
	if err != nil {
		return errorReply(0x16)
	}
	key := spec[:i]
	if off == 0 || c.hashKey != key || c.hashBlob == nil {
		hashes, ok := target.HashBlocks(c.s.backing, addr, length)
		if !ok {
			hashes = c.hashLocally(addr, length)
		}
		blob := make([]byte, 0, 16*len(hashes))
		for _, h := range hashes {
			blob = append(blob, fmt.Sprintf("%016x", h)...)
		}
		c.hashBlob, c.hashKey = blob, key
	}
	return windowText(c.hashBlob, off, n, c.s.packetMax)
}

// hashLocally computes block hashes by reading the backing memory — the
// fallback when the backing target has no native hasher.
func (c *stubConn) hashLocally(addr, length uint64) []uint64 {
	hashes := make([]uint64, 0, length/target.SubPage)
	buf := make([]byte, target.SubPage)
	for off := uint64(0); off < length; off += target.SubPage {
		if err := c.s.backing.ReadMemory(addr+off, buf); err != nil {
			hashes = append(hashes, 0)
			continue
		}
		hashes = append(hashes, target.HashBlock(buf))
	}
	return hashes
}

// xferDirtyRanges serves qXfer:dirty-ranges:read:MARK:OFF,N — the write
// journal since MARK as "NEXTMARK;addr,size;addr,size;..." (hex), windowed
// with m/l framing. An error reply at offset 0 means the journal could not
// answer (history lost past MARK, or no journal); the client then falls
// back to hash revalidation. MARK=ffffffffffffffff arms a fresh cursor.
func (c *stubConn) xferDirtyRanges(spec string) string {
	if c.s.noDirty {
		return ""
	}
	i := strings.IndexByte(spec, ':')
	if i < 0 {
		return errorReply(0x16)
	}
	mark, err := parseHexU64(spec[:i])
	if err != nil {
		return errorReply(0x16)
	}
	off, n, err := splitAddrLen(spec[i+1:])
	if err != nil {
		return errorReply(0x16)
	}
	key := spec[:i]
	if off == 0 || c.dirtyKey != key || c.dirtyBlob == nil {
		dt, ok := c.s.backing.(target.DirtyTracker)
		if !ok {
			return ""
		}
		ranges, next, ok := dt.DirtySince(mark)
		if !ok {
			return errorReply(0x0b) // EAGAIN: history lost, re-arm and revalidate
		}
		blob := []byte(fmt.Sprintf("%x", next))
		for _, r := range ranges {
			blob = append(blob, fmt.Sprintf(";%x,%x", r.Addr, r.Size)...)
		}
		c.dirtyBlob, c.dirtyKey = blob, key
	}
	return windowText(c.dirtyBlob, off, n, c.s.packetMax)
}

// windowText frames one OFF,N window of a plain-text annex blob as an m/l
// continuation reply, bounded by the negotiated packet size.
func windowText(blob []byte, off, n uint64, packetMax int) string {
	if off >= uint64(len(blob)) {
		return "l"
	}
	window := uint64(len(blob)) - off
	if n < window {
		window = n
	}
	if bound := uint64(packetMax - 1); window > bound {
		window = bound
	}
	chunk := blob[off : off+window]
	if off+window == uint64(len(blob)) {
		return "l" + string(chunk)
	}
	return "m" + string(chunk)
}

// readMappedPrefix reads up to length bytes at addr, returning the longest
// readable prefix. A fully readable range costs one backing read; a range
// running off the mapped prefix degrades to page-bounded chunks so the
// prefix ends exactly at the mapping edge (the backing's granularity).
func (s *Server) readMappedPrefix(addr, length uint64) []byte {
	buf := make([]byte, length)
	if err := s.backing.ReadMemory(addr, buf); err == nil {
		return buf
	}
	got := uint64(0)
	for got < length {
		cur := addr + got
		n := length - got
		if room := target.PageSize - cur%target.PageSize; n > room {
			n = room
		}
		if err := s.backing.ReadMemory(cur, buf[got:got+n]); err != nil {
			break
		}
		got += n
	}
	return buf[:got]
}

func hexEncode(data []byte) string {
	out := make([]byte, 0, 2*len(data))
	for _, b := range data {
		out = append(out, hexByte(b)...)
	}
	return string(out)
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

func stringsRepeat(s string, n int) string {
	out := make([]byte, 0, n*len(s))
	for i := 0; i < n; i++ {
		out = append(out, s...)
	}
	return string(out)
}
