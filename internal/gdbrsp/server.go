package gdbrsp

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"

	"visualinux/internal/target"
)

// Server speaks the gdbstub side of RSP, serving memory reads from a
// backing target (the simulated kernel). It is the QEMU-gdbstub stand-in.
type Server struct {
	backing target.Target
	ln      net.Listener

	mu     sync.Mutex
	closed bool
}

// Serve starts an RSP server on addr ("127.0.0.1:0" for an ephemeral
// port). It returns immediately; connections are handled in goroutines.
func Serve(addr string, backing target.Target) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gdbrsp: listen: %w", err)
	}
	s := &Server{backing: backing, ln: ln}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.ln.Close()
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		payload, err := readPacket(r)
		if err != nil {
			return
		}
		// Ack every well-formed packet.
		if _, err := w.WriteString("+"); err != nil {
			return
		}
		reply, kill := s.dispatch(payload)
		if _, err := w.Write(encodePacket(reply)); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
		// The stub ignores the client's ack of our reply (read and drop).
		if b, err := r.Peek(1); err == nil && (b[0] == '+' || b[0] == '-') {
			_, _ = r.ReadByte()
		}
		if kill {
			return
		}
	}
}

// readPacket consumes one $...#cs frame, tolerating interrupt bytes and
// acks in the stream.
func readPacket(r *bufio.Reader) (string, error) {
	for {
		c, err := r.ReadByte()
		if err != nil {
			return "", err
		}
		switch c {
		case '$':
			var payload []byte
			for {
				b, err := r.ReadByte()
				if err != nil {
					return "", err
				}
				if b == '#' {
					break
				}
				payload = append(payload, b)
				if len(payload) > maxPacket*2 {
					return "", fmt.Errorf("gdbrsp: oversized packet")
				}
			}
			var cs [2]byte
			if _, err := io.ReadFull(r, cs[:]); err != nil {
				return "", err
			}
			want, err := parseHexU64(string(cs[:]))
			if err != nil {
				return "", err
			}
			if byte(want) != checksum(payload) {
				return "", fmt.Errorf("gdbrsp: checksum mismatch")
			}
			return string(payload), nil
		case '+', '-', 0x03:
			continue // acks and interrupts between packets
		default:
			continue // noise
		}
	}
}

// dispatch computes the reply for one packet; kill reports session end.
func (s *Server) dispatch(payload string) (reply string, kill bool) {
	switch {
	case payload == "":
		return "", false
	case payload[0] == 'm':
		addr, length, err := splitAddrLen(payload[1:])
		if err != nil {
			return errorReply(0x16), false // EINVAL
		}
		if length > maxPacket/2 {
			length = maxPacket / 2
		}
		buf := make([]byte, length)
		if err := s.backing.ReadMemory(addr, buf); err != nil {
			return errorReply(0x0e), false // EFAULT
		}
		var sb []byte
		for _, b := range buf {
			sb = append(sb, hexByte(b)...)
		}
		return string(sb), false
	case payload == "?":
		return "S05", false // stopped by SIGTRAP, like a fresh attach
	case payload == "g":
		// 16 fake 64-bit registers, all zero: we debug state, not regs.
		return stringsRepeat("0", 16*16), false
	case payload[0] == 'p':
		return stringsRepeat("0", 16), false
	case payload[0] == 'H':
		return "OK", false
	case payload == "qAttached":
		return "1", false
	case payload == "vMustReplyEmpty":
		return "", false
	case hasPrefix(payload, "qSupported"):
		return fmt.Sprintf("PacketSize=%x;qXfer:features:read-", maxPacket), false
	case payload == "D": // detach
		return "OK", true
	case payload == "k": // kill
		return "", true
	case payload[0] == 'X' || payload[0] == 'M':
		// Memory writes: the visualizer never writes; refuse politely.
		return errorReply(0x0d), false // EACCES
	case payload[0] == 'c' || payload[0] == 's':
		// Continue/step: the simulated machine is permanently stopped.
		return "S05", false
	default:
		return "", false // unsupported -> empty reply per RSP
	}
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

func stringsRepeat(s string, n int) string {
	out := make([]byte, 0, n*len(s))
	for i := 0; i < n; i++ {
		out = append(out, s...)
	}
	return string(out)
}
