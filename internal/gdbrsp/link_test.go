package gdbrsp

import (
	"bufio"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"visualinux/internal/ctypes"
	"visualinux/internal/mem"
	"visualinux/internal/target"
)

// fakeStub runs a scripted RSP peer: for each received packet it acks and
// calls reply; a nil return means "go silent" (never answer). Used to drive
// the client into link failure modes a well-behaved Server never produces.
func fakeStub(t *testing.T, reply func(payload string) *string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		for {
			payload, err := readPacket(r, maxPacket)
			if err != nil {
				return
			}
			if _, err := conn.Write([]byte("+")); err != nil {
				return
			}
			rep := reply(payload)
			if rep == nil {
				select {} // silent stub: hold the conn open forever
			}
			if _, err := conn.Write(encodePacket(*rep)); err != nil {
				return
			}
			// Drain the client's ack.
			if b, err := r.Peek(1); err == nil && (b[0] == '+' || b[0] == '-') {
				_, _ = r.ReadByte()
			}
		}
	}()
	return ln.Addr().String()
}

// TestNakRetransmitBound checks the client gives up on a stub that rejects
// every packet instead of retransmitting forever.
func TestNakRetransmitBound(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 4096)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
			if _, err := conn.Write([]byte("-")); err != nil {
				return
			}
		}
	}()
	_, err = Dial(ln.Addr().String(), ctypes.NewRegistry(), nil)
	if err == nil {
		t.Fatal("dial to NAK-storm stub succeeded")
	}
	if !errors.Is(err, ErrNakLimit) {
		t.Errorf("error = %v, want ErrNakLimit", err)
	}
	var le *LinkError
	if !errors.As(err, &le) {
		t.Errorf("error %v is not a *LinkError", err)
	}
}

// TestAckNoiseBound checks the client gives up on a stub streaming garbage
// instead of an ack.
func TestAckNoiseBound(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		junk := []byte(strings.Repeat("z", 1024))
		for {
			if _, err := conn.Write(junk); err != nil {
				return
			}
		}
	}()
	_, err = Dial(ln.Addr().String(), ctypes.NewRegistry(), nil)
	if err == nil {
		t.Fatal("dial to noise stub succeeded")
	}
	if !errors.Is(err, ErrAckNoise) {
		t.Errorf("error = %v, want ErrAckNoise", err)
	}
}

// TestLinkTimeout checks a read deadline fires on a stub that negotiates
// fine and then goes silent mid-session.
func TestLinkTimeout(t *testing.T) {
	addr := fakeStub(t, func(payload string) *string {
		switch {
		case strings.HasPrefix(payload, "qSupported"):
			s := "PacketSize=1000"
			return &s
		case payload == "?":
			s := "S05"
			return &s
		default:
			return nil // silence: let the client's deadline fire
		}
	})
	client, err := Dial(addr, ctypes.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	client.SetTimeout(50 * time.Millisecond)
	var buf [8]byte
	err = client.ReadMemory(0x1000, buf[:])
	if err == nil {
		t.Fatal("read from silent stub succeeded")
	}
	var le *LinkError
	if !errors.As(err, &le) {
		t.Fatalf("error %v is not a *LinkError", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("error %v does not unwrap to a timeout", err)
	}
}

// TestClientRejectsOversizeReply checks the client enforces the negotiated
// PacketSize on replies: a stub that negotiates small and then over-delivers
// is a protocol violation, not free bandwidth.
func TestClientRejectsOversizeReply(t *testing.T) {
	big := strings.Repeat("ab", 300) // 600 chars > negotiated 0x40
	addr := fakeStub(t, func(payload string) *string {
		switch {
		case strings.HasPrefix(payload, "qSupported"):
			s := "PacketSize=40" // hex: 64 bytes
			return &s
		case payload == "?":
			s := "S05"
			return &s
		default:
			return &big
		}
	})
	client, err := Dial(addr, ctypes.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if client.PacketSize() != 0x40 {
		t.Fatalf("negotiated %#x, want 0x40", client.PacketSize())
	}
	var buf [8]byte
	err = client.ReadMemory(0x1000, buf[:])
	if err == nil {
		t.Fatal("oversize reply accepted")
	}
	if !strings.Contains(err.Error(), "exceeds negotiated size") {
		t.Errorf("error = %v, want negotiated-size rejection", err)
	}
}

// TestServerRejectsOversizePacket checks the server drops a connection that
// sends a payload above the advertised PacketSize.
func TestServerRejectsOversizePacket(t *testing.T) {
	m := mem.New()
	sim := target.NewSim(m, ctypes.NewRegistry())
	srv, err := Serve("127.0.0.1:0", sim, WithPacketSize(128))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(encodePacket(strings.Repeat("q", 500))); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return // connection dropped: the server refused the frame
		}
		for _, b := range buf[:n] {
			if b == '$' {
				t.Fatal("server replied to an oversize packet")
			}
		}
	}
}

// holeyTarget builds a sim with two mapped islands around an unmapped hole:
// [base, base+2p) mapped, [base+2p, base+3p) hole, [base+3p, base+4p) mapped.
func holeyTarget(t *testing.T) (*target.Sim, uint64) {
	t.Helper()
	const p = uint64(target.PageSize)
	base := uint64(0x6000_0000)
	m := mem.New()
	fill := func(addr, size uint64) {
		b := make([]byte, size)
		for i := range b {
			b[i] = byte(uint64(i) + addr>>12)
		}
		m.Write(addr, b)
	}
	fill(base, 2*p)
	fill(base+3*p, p)
	// Far-away islands pad the memory map past one small packet, so the
	// chunked map fetch genuinely exercises continuation framing.
	for i := uint64(0); i < 6; i++ {
		fill(base+0x10_0000+2*i*p, p)
	}
	return target.NewSim(m, ctypes.NewRegistry()), base
}

// TestMemoryMapAnnex fetches the stub's memory map over a tiny packet size
// (forcing continuation chunks) and checks ClipMapped clips around the hole.
func TestMemoryMapAnnex(t *testing.T) {
	sim, base := holeyTarget(t)
	const p = uint64(target.PageSize)

	srv, err := Serve("127.0.0.1:0", sim, WithPacketSize(minPacket))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr(), sim.Types(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if !client.hasMemMap {
		t.Fatal("server should advertise qXfer:memory-map:read+")
	}

	got := client.MemoryMap()
	want := sim.MappedRanges()
	if len(got) != len(want) {
		t.Fatalf("map = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("map[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if conts := client.Stats().Continuations.Load(); conts == 0 {
		t.Error("tiny packet size should force memory-map continuations")
	}

	// Clip a span covering both islands and the hole.
	ranges, ok := client.ClipMapped(base+p, 3*p)
	if !ok {
		t.Fatal("ClipMapped not supported despite annex")
	}
	wantClip := []target.Range{
		{Addr: base + p, Size: p},
		{Addr: base + 3*p, Size: p},
	}
	if len(ranges) != len(wantClip) {
		t.Fatalf("clip = %v, want %v", ranges, wantClip)
	}
	for i := range wantClip {
		if ranges[i] != wantClip[i] {
			t.Fatalf("clip[%d] = %+v, want %+v", i, ranges[i], wantClip[i])
		}
	}
}

// TestAnnexUnmappedTail checks a large annex read that runs off the mapped
// prefix fails with a precise got-of-want error instead of silently
// truncating or succeeding.
func TestAnnexUnmappedTail(t *testing.T) {
	sim, base := holeyTarget(t)
	const p = uint64(target.PageSize)

	srv, err := Serve("127.0.0.1:0", sim, WithPacketSize(512))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr(), sim.Types(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	buf := make([]byte, 3*p) // [base, base+3p): last page unmapped
	err = client.ReadMemory(base, buf)
	if err == nil {
		t.Fatal("read across unmapped tail succeeded")
	}
	if !strings.Contains(err.Error(), "unmapped tail") {
		t.Errorf("error = %v, want unmapped-tail report", err)
	}
}
