package gdbrsp_test

import (
	"testing"

	"visualinux/internal/gdbrsp"
	"visualinux/internal/kernelsim"
	"visualinux/internal/target"
)

// dialKernelOpts is dialKernel with server options (small packets, annex
// opt-outs) for the revalidation-annex tests.
func dialKernelOpts(t testing.TB, opts ...gdbrsp.ServerOption) (*kernelsim.Kernel, *gdbrsp.Client) {
	t.Helper()
	k := kernelsim.Build(kernelsim.Options{})
	srv, err := gdbrsp.Serve("127.0.0.1:0", k.Target(), opts...)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := gdbrsp.Dial(srv.Addr(), k.Reg, k.Target().Symbols())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { client.Close() })
	return k, client
}

// pageOf returns a page-aligned mapped address to hash against.
func pageOf(t *testing.T, k *kernelsim.Kernel) uint64 {
	t.Helper()
	sym, ok := k.Target().LookupSymbol("init_task")
	if !ok {
		t.Fatal("no init_task symbol")
	}
	return sym.Addr &^ (target.PageSize - 1)
}

// The memory-hash annex must return the same FNV block vector the stub
// computes locally, across the m/l continuation framing of a small packet
// size.
func TestMemoryHashAnnexOverWire(t *testing.T) {
	k, c := dialKernelOpts(t, gdbrsp.WithPacketSize(96))
	addr := pageOf(t, k)

	want, ok := target.HashBlocks(k.Target(), addr, target.PageSize)
	if !ok {
		t.Fatal("sim refused to hash")
	}
	got, ok := c.HashBlocks(addr, target.PageSize)
	if !ok {
		t.Fatal("client HashBlocks not ok despite advertised annex")
	}
	if len(got) != len(want) {
		t.Fatalf("got %d hashes, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("hash[%d] = %#x, want %#x", i, got[i], want[i])
		}
	}
	// A 4 KiB page is 16 blocks * 16 hex chars = 256 chars of annex body:
	// with 96-byte packets the fetch must have continued at least once.
	if c.Stats().Continuations.Load() == 0 {
		t.Fatal("small-packet hash fetch issued no continuation packets")
	}
	if c.Stats().HashChecks.Load() == 0 {
		t.Fatal("hash round trip not counted in link stats")
	}

	// Misaligned and zero-length queries fail client-side, not on the wire.
	if _, ok := c.HashBlocks(addr+1, target.PageSize); ok {
		t.Fatal("misaligned HashBlocks succeeded")
	}
	if _, ok := c.HashBlocks(addr, 0); ok {
		t.Fatal("zero-length HashBlocks succeeded")
	}
}

// The dirty-ranges annex arms a cursor, then reports exactly the guest
// ranges mutated since, merged and cursor-advanced.
func TestDirtyRangesAnnexOverWire(t *testing.T) {
	k, c := dialKernelOpts(t)

	_, mark, ok := c.DirtySince(^uint64(0))
	if !ok {
		t.Fatal("arming DirtySince failed despite advertised annex")
	}
	// Quiet link: no writes means no ranges and a stable cursor.
	ranges, mark2, ok := c.DirtySince(mark)
	if !ok || len(ranges) != 0 {
		t.Fatalf("quiet journal = %v ranges, ok=%v; want none, true", ranges, ok)
	}

	if err := k.PipeWrite(k.DirtyPipe, 64); err != nil {
		t.Fatalf("PipeWrite: %v", err)
	}
	ranges, mark3, ok := c.DirtySince(mark2)
	if !ok || len(ranges) == 0 {
		t.Fatalf("mutation invisible to journal: %v, ok=%v", ranges, ok)
	}
	if mark3 <= mark2 {
		t.Fatalf("journal cursor did not advance: %d -> %d", mark2, mark3)
	}
	for i := 1; i < len(ranges); i++ {
		if ranges[i].Addr < ranges[i-1].Addr {
			t.Fatalf("ranges not sorted: %+v", ranges)
		}
	}
}

// Servers without the annexes must not advertise them, and the client must
// degrade to ok=false (which the snapshot turns into hash revalidation or
// whole-page refetch).
func TestAnnexOptOut(t *testing.T) {
	t.Run("no-dirty", func(t *testing.T) {
		k, c := dialKernelOpts(t, gdbrsp.WithoutDirtyAnnex())
		if _, _, ok := c.DirtySince(^uint64(0)); ok {
			t.Fatal("DirtySince ok without the annex")
		}
		if _, ok := c.HashBlocks(pageOf(t, k), target.PageSize); !ok {
			t.Fatal("memory-hash annex should survive the dirty opt-out")
		}
	})
	t.Run("no-hash", func(t *testing.T) {
		k, c := dialKernelOpts(t, gdbrsp.WithoutHashAnnex())
		if _, ok := c.HashBlocks(pageOf(t, k), target.PageSize); ok {
			t.Fatal("HashBlocks ok without the annex")
		}
		if _, _, ok := c.DirtySince(^uint64(0)); !ok {
			t.Fatal("dirty-ranges annex should survive the hash opt-out")
		}
	})
}

// A snapshot layered over the RSP client revalidates a small mutation at
// sub-page cost over the wire — the end-to-end version of the bytes-on-link
// contract, on both the journal path and the hash-fallback path.
func TestSnapshotOverWireSubPageRevalidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []gdbrsp.ServerOption
	}{
		{"journal", nil},
		{"hash-fallback", []gdbrsp.ServerOption{gdbrsp.WithoutDirtyAnnex()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			k, c := dialKernelOpts(t, tc.opts...)
			snap := target.NewSnapshot(c)
			addr := pageOf(t, k)

			buf := make([]byte, target.PageSize)
			if err := snap.ReadMemory(addr, buf); err != nil {
				t.Fatalf("cold read: %v", err)
			}
			k.Mem.WriteU64(addr+8, 0x1234_5678_9abc_def0)
			before := c.Stats().BytesRead.Load()

			snap.Advance()
			if err := snap.ReadMemory(addr, buf); err != nil {
				t.Fatalf("steady read: %v", err)
			}
			var got [8]byte
			copy(got[:], buf[8:16])
			want := [8]byte{0xf0, 0xde, 0xbc, 0x9a, 0x78, 0x56, 0x34, 0x12}
			if got != want {
				t.Fatalf("stale bytes after Advance: %x", got)
			}
			if d := c.Stats().BytesRead.Load() - before; d != target.SubPage {
				t.Fatalf("%s: revalidation moved %d bytes over the wire, want %d",
					tc.name, d, target.SubPage)
			}
		})
	}
}
