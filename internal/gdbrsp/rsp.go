// Package gdbrsp implements the GDB Remote Serial Protocol (RSP) — the
// wire protocol GDB speaks to QEMU's gdbstub and to KGDB. The paper's tool
// is "a detached front-end for GDB"; this package makes that architecture
// concrete in the reproduction:
//
//	Visualinux engine -> Client (this pkg, implements target.Target)
//	    -> TCP, real $m addr,len#cs packets ->
//	Server (this pkg) -> simulated kernel memory
//
// Type information and symbols do NOT travel over RSP — real GDB reads
// them from vmlinux's DWARF on the local side — so the Client carries the
// registry and symbol table locally and forwards only memory traffic,
// exactly mirroring GDB's split.
//
// The subset implemented is what a memory-inspecting debugger session
// uses: qSupported, ?, g/p (register stubs), m (memory read), H, D, k,
// qAttached, vMustReplyEmpty, plus correct checksums and +/- acks.
package gdbrsp

import (
	"fmt"
	"strings"
)

// maxPacket is our advertised packet size (payload bytes).
const maxPacket = 4096

// checksum computes the RSP modulo-256 sum of the payload.
func checksum(payload []byte) byte {
	var sum byte
	for _, b := range payload {
		sum += b
	}
	return sum
}

// encodePacket frames a payload: $<payload>#<2-hex-checksum>.
func encodePacket(payload string) []byte {
	return []byte(fmt.Sprintf("$%s#%02x", payload, checksum([]byte(payload))))
}

// hexByte renders one byte as two lowercase hex digits.
func hexByte(b byte) string { return fmt.Sprintf("%02x", b) }

// decodeHex parses a hex string into bytes.
func decodeHex(s string) ([]byte, error) {
	if len(s)%2 != 0 {
		return nil, fmt.Errorf("gdbrsp: odd hex length %d", len(s))
	}
	out := make([]byte, len(s)/2)
	for i := 0; i < len(out); i++ {
		hi, ok1 := hexDigit(s[2*i])
		lo, ok2 := hexDigit(s[2*i+1])
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("gdbrsp: bad hex %q", s[2*i:2*i+2])
		}
		out[i] = hi<<4 | lo
	}
	return out, nil
}

func hexDigit(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// parseHexU64 parses a hex number (no 0x prefix, RSP style).
func parseHexU64(s string) (uint64, error) {
	if s == "" {
		return 0, fmt.Errorf("gdbrsp: empty number")
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		d, ok := hexDigit(s[i])
		if !ok {
			return 0, fmt.Errorf("gdbrsp: bad hex number %q", s)
		}
		v = v<<4 | uint64(d)
	}
	return v, nil
}

// errorReply renders an RSP error response (Exx).
func errorReply(code byte) string { return "E" + hexByte(code) }

// splitAddrLen parses "ADDR,LEN".
func splitAddrLen(s string) (addr, length uint64, err error) {
	i := strings.IndexByte(s, ',')
	if i < 0 {
		return 0, 0, fmt.Errorf("gdbrsp: malformed addr,len %q", s)
	}
	addr, err = parseHexU64(s[:i])
	if err != nil {
		return 0, 0, err
	}
	length, err = parseHexU64(s[i+1:])
	return addr, length, err
}
