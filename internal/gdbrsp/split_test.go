package gdbrsp

import (
	"bytes"
	"testing"

	"visualinux/internal/ctypes"
	"visualinux/internal/mem"
	"visualinux/internal/target"
)

func TestParsePacketSize(t *testing.T) {
	cases := []struct {
		reply string
		want  int
	}{
		{"PacketSize=1000;qXfer:features:read-", 0x1000},
		{"qXfer:features:read-;PacketSize=800", 0x800},
		{"PacketSize=ffffffff", maxPacket}, // stub brags; clamp to our buffer
		{"PacketSize=4", 32},               // too small to carry a scalar
		{"PacketSize=zz", maxPacket},       // unparseable -> default
		{"multiprocess+", maxPacket},       // absent -> default
		{"", maxPacket},
	}
	for _, c := range cases {
		if got := parsePacketSize(c.reply); got != c.want {
			t.Errorf("parsePacketSize(%q) = %#x, want %#x", c.reply, got, c.want)
		}
	}
}

// TestSplitLargeRead drives a 3-page read through a loopback server and
// checks (a) the bytes survive, (b) with the qXfer:memory:read annex the
// whole read is one memory transaction whose reply streams back in
// continuation chunks — not one transaction per packet.
func TestSplitLargeRead(t *testing.T) {
	const base = uint64(0x4000_0000)
	const size = 3 * 4096 // > maxPacket/2, needs several reply packets

	m := mem.New()
	want := make([]byte, size)
	for i := range want {
		want[i] = byte(i*7 + i>>8)
	}
	m.Write(base, want)
	sim := target.NewSim(m, ctypes.NewRegistry())

	srv, err := Serve("127.0.0.1:0", sim)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr(), sim.Types(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if !client.hasMemRead {
		t.Fatal("server should advertise qXfer:memory:read+")
	}

	got := make([]byte, size)
	if err := client.ReadMemory(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("split read corrupted data")
	}

	reads, bytesRead, txns := client.Stats().Totals()
	if reads != 1 {
		t.Errorf("logical reads = %d, want 1", reads)
	}
	if bytesRead != size {
		t.Errorf("bytes = %d, want %d", bytesRead, size)
	}
	if txns != 1 {
		t.Errorf("transactions = %d, want 1 (annex opens one transfer)", txns)
	}
	conts := client.Stats().Continuations.Load()
	wantConts := uint64((size+int(srv.chunkBytes())-1)/int(srv.chunkBytes())) - 1
	if conts != wantConts {
		t.Errorf("continuations = %d, want %d (follow-up chunks)", conts, wantConts)
	}
}

// TestShortReadResumption forces the plain-$m path (no annex) and checks
// the client treats short replies as partial progress, resuming from the
// next byte instead of erroring — the standards-correct reading of a stub
// that serves less than asked.
func TestShortReadResumption(t *testing.T) {
	const base = uint64(0x4100_0000)
	const size = 3 * 4096

	m := mem.New()
	want := make([]byte, size)
	for i := range want {
		want[i] = byte(i*13 + 5)
	}
	m.Write(base, want)
	sim := target.NewSim(m, ctypes.NewRegistry())

	srv, err := Serve("127.0.0.1:0", sim, WithPacketSize(512))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr(), sim.Types(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.hasMemRead = false // pretend the stub lacks the annex
	// Make the client request more per $m than the stub's 512-byte bound
	// allows, so every reply comes back short and must be resumed.
	client.packetMax = maxPacket

	got := make([]byte, size)
	if err := client.ReadMemory(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed read corrupted data")
	}
	_, _, txns := client.Stats().Totals()
	wantTxns := uint64((size + 512/2 - 1) / (512 / 2))
	if txns != wantTxns {
		t.Errorf("transactions = %d, want %d (one short reply resumed per packet)", txns, wantTxns)
	}
}

// TestNegotiatedChunkRoundTrip checks that a read of exactly the negotiated
// per-packet capacity goes over in a single transaction.
func TestNegotiatedChunkRoundTrip(t *testing.T) {
	const base = uint64(0x5000_0000)
	m := mem.New()
	data := make([]byte, maxPacket/2)
	for i := range data {
		data[i] = byte(i)
	}
	m.Write(base, data)
	sim := target.NewSim(m, ctypes.NewRegistry())

	srv, err := Serve("127.0.0.1:0", sim)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr(), sim.Types(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	got := make([]byte, len(data))
	if err := client.ReadMemory(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("full-packet read corrupted data")
	}
	if _, _, txns := client.Stats().Totals(); txns != 1 {
		t.Errorf("transactions = %d, want 1 for a packet-sized read", txns)
	}
}
