package gdbrsp

import (
	"bytes"
	"testing"

	"visualinux/internal/ctypes"
	"visualinux/internal/mem"
	"visualinux/internal/target"
)

func TestParsePacketSize(t *testing.T) {
	cases := []struct {
		reply string
		want  int
	}{
		{"PacketSize=1000;qXfer:features:read-", 0x1000},
		{"qXfer:features:read-;PacketSize=800", 0x800},
		{"PacketSize=ffffffff", maxPacket}, // stub brags; clamp to our buffer
		{"PacketSize=4", 32},               // too small to carry a scalar
		{"PacketSize=zz", maxPacket},       // unparseable -> default
		{"multiprocess+", maxPacket},       // absent -> default
		{"", maxPacket},
	}
	for _, c := range cases {
		if got := parsePacketSize(c.reply); got != c.want {
			t.Errorf("parsePacketSize(%q) = %#x, want %#x", c.reply, got, c.want)
		}
	}
}

// TestSplitLargeRead drives a 3-page read through a loopback server and
// checks (a) the bytes survive the split, (b) the client accounts one
// logical read but multiple $m transactions.
func TestSplitLargeRead(t *testing.T) {
	const base = uint64(0x4000_0000)
	const size = 3 * 4096 // > maxPacket/2, must split into several packets

	m := mem.New()
	want := make([]byte, size)
	for i := range want {
		want[i] = byte(i*7 + i>>8)
	}
	m.Write(base, want)
	sim := target.NewSim(m, ctypes.NewRegistry())

	srv, err := Serve("127.0.0.1:0", sim)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr(), sim.Types(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	got := make([]byte, size)
	if err := client.ReadMemory(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("split read corrupted data")
	}

	reads, bytesRead, txns := client.Stats().Totals()
	if reads != 1 {
		t.Errorf("logical reads = %d, want 1", reads)
	}
	if bytesRead != size {
		t.Errorf("bytes = %d, want %d", bytesRead, size)
	}
	wantTxns := uint64((size + maxPacket/2 - 1) / (maxPacket / 2))
	if txns != wantTxns {
		t.Errorf("transactions = %d, want %d (one per $m packet)", txns, wantTxns)
	}
	if txns <= reads {
		t.Errorf("transactions (%d) should exceed reads (%d) for an oversized read", txns, reads)
	}
}

// TestNegotiatedChunkRoundTrip checks that a read of exactly the negotiated
// per-packet capacity goes over in a single transaction.
func TestNegotiatedChunkRoundTrip(t *testing.T) {
	const base = uint64(0x5000_0000)
	m := mem.New()
	data := make([]byte, maxPacket/2)
	for i := range data {
		data[i] = byte(i)
	}
	m.Write(base, data)
	sim := target.NewSim(m, ctypes.NewRegistry())

	srv, err := Serve("127.0.0.1:0", sim)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr(), sim.Types(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	got := make([]byte, len(data))
	if err := client.ReadMemory(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("full-packet read corrupted data")
	}
	if _, _, txns := client.Stats().Totals(); txns != 1 {
		t.Errorf("transactions = %d, want 1 for a packet-sized read", txns)
	}
}
