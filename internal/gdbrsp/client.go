package gdbrsp

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"

	"visualinux/internal/ctypes"
	"visualinux/internal/target"
)

// Client implements target.Target over an RSP connection: memory reads go
// over the wire as $m packets; types and symbols are provided locally,
// exactly as GDB gets them from vmlinux DWARF rather than from the stub.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer

	types   *ctypes.Registry
	symbols map[string]target.Symbol
	byAddr  map[uint64]string
	stats   target.Stats

	// packetMax is the stub's negotiated PacketSize (qSupported reply).
	// $m replies are hex-encoded, so one packet carries packetMax/2 bytes of
	// memory; larger reads split at that bound.
	packetMax int
}

// Dial connects to an RSP server and performs the initial handshake.
// reg and symbols play the role of the locally-loaded vmlinux.
func Dial(addr string, reg *ctypes.Registry, symbols []target.Symbol) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gdbrsp: dial: %w", err)
	}
	c := &Client{
		conn:    conn,
		r:       bufio.NewReader(conn),
		w:       bufio.NewWriter(conn),
		types:   reg,
		symbols: make(map[string]target.Symbol, len(symbols)),
		byAddr:  make(map[uint64]string, len(symbols)),
	}
	for _, s := range symbols {
		c.symbols[s.Name] = s
		c.byAddr[s.Addr] = s.Name
	}
	// Handshake like GDB: feature negotiation then stop-reason query.
	features, err := c.roundTrip("qSupported:multiprocess+")
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.packetMax = parsePacketSize(features)
	if _, err := c.roundTrip("?"); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close detaches and closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, _ = c.roundTripLocked("D")
	return c.conn.Close()
}

// roundTrip sends one packet and reads the reply (with ack handling).
func (c *Client) roundTrip(payload string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.roundTripLocked(payload)
}

func (c *Client) roundTripLocked(payload string) (string, error) {
	if _, err := c.w.Write(encodePacket(payload)); err != nil {
		return "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	// Expect the stub's ack, then its reply packet, then ack it.
	for {
		b, err := c.r.ReadByte()
		if err != nil {
			return "", err
		}
		if b == '+' {
			break
		}
		if b == '-' {
			// retransmit
			if _, err := c.w.Write(encodePacket(payload)); err != nil {
				return "", err
			}
			if err := c.w.Flush(); err != nil {
				return "", err
			}
		}
	}
	reply, err := readPacket(c.r)
	if err != nil {
		return "", err
	}
	if _, err := c.w.WriteString("+"); err != nil {
		return "", err
	}
	return reply, c.w.Flush()
}

// parsePacketSize extracts PacketSize=<hex> from a qSupported reply,
// clamped to sane bounds: never above our own maxPacket buffer, never so
// small that an 8-byte scalar read would split.
func parsePacketSize(features string) int {
	const fallback = maxPacket
	for _, f := range strings.Split(features, ";") {
		if v, ok := strings.CutPrefix(f, "PacketSize="); ok {
			n, err := parseHexU64(v)
			if err != nil {
				return fallback
			}
			if n > maxPacket {
				return maxPacket
			}
			if n < 32 {
				return 32
			}
			return int(n)
		}
	}
	return fallback
}

// ReadMemory implements target.Target via $m packets sized to the whole
// request, splitting only when the request exceeds the stub's negotiated
// packet bound. Reads counts logical requests; Transactions counts $m
// packets actually sent (Transactions >= Reads when requests split).
func (c *Client) ReadMemory(addr uint64, buf []byte) error {
	c.stats.Reads.Add(1)
	c.stats.BytesRead.Add(uint64(len(buf)))
	chunk := c.packetMax / 2 // hex encoding: 2 reply chars per memory byte
	for off := 0; off < len(buf); {
		n := len(buf) - off
		if n > chunk {
			n = chunk
		}
		c.stats.Transactions.Add(1)
		reply, err := c.roundTrip(fmt.Sprintf("m%x,%x", addr+uint64(off), n))
		if err != nil {
			return err
		}
		if len(reply) >= 1 && reply[0] == 'E' {
			return fmt.Errorf("gdbrsp: stub error %s reading %#x", reply, addr+uint64(off))
		}
		data, err := decodeHex(reply)
		if err != nil {
			return err
		}
		if len(data) != n {
			return fmt.Errorf("gdbrsp: short read %d of %d", len(data), n)
		}
		copy(buf[off:], data)
		off += n
	}
	return nil
}

// LookupSymbol implements target.Target from the locally-loaded table.
func (c *Client) LookupSymbol(name string) (target.Symbol, bool) {
	s, ok := c.symbols[name]
	return s, ok
}

// SymbolAt implements target.Target.
func (c *Client) SymbolAt(addr uint64) (string, bool) {
	n, ok := c.byAddr[addr]
	return n, ok
}

// Types implements target.Target.
func (c *Client) Types() *ctypes.Registry { return c.types }

// Stats implements target.Target.
func (c *Client) Stats() *target.Stats { return &c.stats }

var _ target.Target = (*Client)(nil)
