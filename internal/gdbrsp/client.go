package gdbrsp

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"visualinux/internal/ctypes"
	"visualinux/internal/obs"
	"visualinux/internal/target"
)

// maxRetransmits bounds how often one packet is re-sent on NAK ('-') before
// the link is declared broken: a stub stuck NAK-ing would otherwise keep the
// client retransmitting forever.
const maxRetransmits = 8

// ackScanLimit bounds how many junk bytes the client tolerates while waiting
// for an ack: a stub streaming noise instead of '+'/'-' must not pin the
// client in the scan loop.
const ackScanLimit = 4096

// defaultTimeout is the per-round-trip I/O deadline. Slow links are slow per
// packet, not tens of seconds per packet.
const defaultTimeout = 10 * time.Second

// LinkError is a transport-level RSP failure: the link itself misbehaved
// (NAK storm, noise, timeout, broken socket) as opposed to the stub cleanly
// reporting an error reply. errors.Is/As through Err.
type LinkError struct {
	Op  string // "send", "ack", "recv"
	Err error
}

func (e *LinkError) Error() string { return fmt.Sprintf("gdbrsp: link %s: %v", e.Op, e.Err) }
func (e *LinkError) Unwrap() error { return e.Err }

// ErrNakLimit reports a stub that kept rejecting our packets.
var ErrNakLimit = errors.New("retransmit limit exceeded (stub keeps NAK-ing)")

// ErrAckNoise reports a stub that streamed garbage instead of an ack.
var ErrAckNoise = errors.New("no ack within noise budget")

// Client implements target.Target over an RSP connection: memory reads go
// over the wire as $m packets; types and symbols are provided locally,
// exactly as GDB gets them from vmlinux DWARF rather than from the stub.
//
// The client is shaped for slow, small-packet links. Reads larger than the
// stub's negotiated packet bound prefer the qXfer:memory:read annex when the
// stub advertises it: one memory transaction whose reply streams back in
// continuation chunks, each chunk a cheap follow-up rather than a fresh
// memory walk. Plain $m short replies (a stub serving less than asked —
// packet bound or mapped-prefix end) are treated as partial progress and
// resumed from the next byte, never a hard error. When the stub serves a
// memory-map annex, the client loads it once and answers ClipMapped locally,
// so batch prefetch passes can clip fills to mapped ranges without probing.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer

	types   *ctypes.Registry
	symbols map[string]target.Symbol
	byAddr  map[uint64]string
	stats   target.Stats

	// packetMax is the stub's negotiated PacketSize (qSupported reply).
	// $m replies are hex-encoded, so one packet carries packetMax/2 bytes of
	// memory; larger reads use the annex or split at that bound.
	packetMax  int
	hasMemRead bool // stub advertises qXfer:memory:read+
	hasMemMap  bool // stub advertises qXfer:memory-map:read+
	hasMemHash bool // stub advertises qXfer:memory-hash:read+
	hasDirty   bool // stub advertises qXfer:dirty-ranges:read+

	timeout time.Duration

	memMapOnce   sync.Once
	memMap       []target.Range // sorted, merged; nil until fetched
	memMapLoaded bool

	o *obs.Observer // optional: continuation accounting for /debug/metrics
}

// Dial connects to an RSP server and performs the initial handshake.
// reg and symbols play the role of the locally-loaded vmlinux.
func Dial(addr string, reg *ctypes.Registry, symbols []target.Symbol) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gdbrsp: dial: %w", err)
	}
	c := &Client{
		conn:    conn,
		r:       bufio.NewReader(conn),
		w:       bufio.NewWriter(conn),
		types:   reg,
		symbols: make(map[string]target.Symbol, len(symbols)),
		byAddr:  make(map[uint64]string, len(symbols)),
		timeout: defaultTimeout,
	}
	for _, s := range symbols {
		c.symbols[s.Name] = s
		c.byAddr[s.Addr] = s.Name
	}
	// Handshake like GDB: feature negotiation then stop-reason query.
	features, err := c.roundTrip("qSupported:multiprocess+")
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.packetMax = parsePacketSize(features)
	c.hasMemRead = hasFeature(features, "qXfer:memory:read+")
	c.hasMemMap = hasFeature(features, "qXfer:memory-map:read+")
	c.hasMemHash = hasFeature(features, "qXfer:memory-hash:read+")
	c.hasDirty = hasFeature(features, "qXfer:dirty-ranges:read+")
	if _, err := c.roundTrip("?"); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Instrument mirrors the client's continuation accounting into the
// observer's shared counters (nil detaches).
func (c *Client) Instrument(o *obs.Observer) *Client {
	c.o = o
	return c
}

// SetTimeout adjusts the per-round-trip I/O deadline (0 disables).
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// PacketSize returns the negotiated packet bound (payload bytes).
func (c *Client) PacketSize() int { return c.packetMax }

// Close detaches and closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, _ = c.roundTripLocked("D")
	return c.conn.Close()
}

// roundTrip sends one packet and reads the reply (with ack handling).
func (c *Client) roundTrip(payload string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.roundTripLocked(payload)
}

func (c *Client) roundTripLocked(payload string) (string, error) {
	if c.timeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
	send := func() error {
		if _, err := c.w.Write(encodePacket(payload)); err != nil {
			return err
		}
		return c.w.Flush()
	}
	if err := send(); err != nil {
		return "", &LinkError{Op: "send", Err: err}
	}
	// Expect the stub's ack, then its reply packet, then ack it.
	retransmits, scanned := 0, 0
	for {
		b, err := c.r.ReadByte()
		if err != nil {
			return "", &LinkError{Op: "ack", Err: err}
		}
		if b == '+' {
			break
		}
		if b == '-' {
			retransmits++
			if retransmits > maxRetransmits {
				return "", &LinkError{Op: "ack", Err: ErrNakLimit}
			}
			if err := send(); err != nil {
				return "", &LinkError{Op: "send", Err: err}
			}
			continue
		}
		scanned++
		if scanned > ackScanLimit {
			return "", &LinkError{Op: "ack", Err: ErrAckNoise}
		}
	}
	reply, err := readPacket(c.r, c.recvMax())
	if err != nil {
		return "", &LinkError{Op: "recv", Err: err}
	}
	if _, err := c.w.WriteString("+"); err != nil {
		return "", &LinkError{Op: "send", Err: err}
	}
	if err := c.w.Flush(); err != nil {
		return "", &LinkError{Op: "send", Err: err}
	}
	return reply, nil
}

// recvMax is the reply payload bound the client enforces: the negotiated
// PacketSize once known, our own buffer bound during the handshake.
func (c *Client) recvMax() int {
	if c.packetMax > 0 {
		return c.packetMax
	}
	return maxPacket
}

// parsePacketSize extracts PacketSize=<hex> from a qSupported reply,
// clamped to sane bounds: never above our own maxPacket buffer, never so
// small that an 8-byte scalar read would split.
func parsePacketSize(features string) int {
	const fallback = maxPacket
	for _, f := range strings.Split(features, ";") {
		if v, ok := strings.CutPrefix(f, "PacketSize="); ok {
			n, err := parseHexU64(v)
			if err != nil {
				return fallback
			}
			if n > maxPacket {
				return maxPacket
			}
			if n < 32 {
				return 32
			}
			return int(n)
		}
	}
	return fallback
}

// hasFeature reports whether a qSupported reply lists the given feature.
func hasFeature(features, want string) bool {
	for _, f := range strings.Split(features, ";") {
		if f == want {
			return true
		}
	}
	return false
}

// ReadMemory implements target.Target. Reads that fit one packet go as a
// single $m; larger reads prefer the qXfer:memory:read annex (one memory
// transaction, continuation-chunked reply) and otherwise resume over short
// $m replies. Reads counts logical requests; Transactions counts memory
// round trips; Continuations counts annex follow-up chunks (streamed from
// the stub's already-prepared reply, so they never re-pay the memory walk).
func (c *Client) ReadMemory(addr uint64, buf []byte) error {
	c.stats.Reads.Add(1)
	c.stats.BytesRead.Add(uint64(len(buf)))
	if len(buf) == 0 {
		return nil
	}
	if c.hasMemRead && len(buf) > c.packetMax/2 {
		return c.readAnnex(addr, buf)
	}
	return c.readM(addr, buf)
}

// readM reads via plain $m packets. A short reply is partial progress —
// stubs legitimately serve less than asked (packet bound, mapped-prefix
// end) — so the client resumes at the next unread byte. Only a reply with
// no progress at all, an error reply, or over-delivery is a failure.
func (c *Client) readM(addr uint64, buf []byte) error {
	chunk := c.packetMax / 2 // hex encoding: 2 reply chars per memory byte
	for off := 0; off < len(buf); {
		n := len(buf) - off
		if n > chunk {
			n = chunk
		}
		c.stats.Transactions.Add(1)
		reply, err := c.roundTrip(fmt.Sprintf("m%x,%x", addr+uint64(off), n))
		if err != nil {
			return err
		}
		if len(reply) >= 1 && reply[0] == 'E' {
			return fmt.Errorf("gdbrsp: stub error %s reading %#x", reply, addr+uint64(off))
		}
		data, err := decodeHex(reply)
		if err != nil {
			return err
		}
		if len(data) == 0 {
			return fmt.Errorf("gdbrsp: empty $m reply at %#x (no progress)", addr+uint64(off))
		}
		if len(data) > n {
			return fmt.Errorf("gdbrsp: stub over-delivered %d of %d at %#x", len(data), n, addr+uint64(off))
		}
		copy(buf[off:], data)
		off += len(data) // short reply: resume from the next byte
	}
	return nil
}

// readAnnex reads via one qXfer:memory:read transaction whose reply streams
// back in m/l continuation chunks. An `l` chunk ending before the full
// length means the rest of the range is unreadable (mapped prefix ended):
// the error reports how far the stub got, so callers can degrade precisely.
func (c *Client) readAnnex(addr uint64, buf []byte) error {
	c.stats.Transactions.Add(1)
	length := uint64(len(buf))
	for off := uint64(0); off < length; {
		if off > 0 {
			c.stats.Continuations.Add(1)
			if c.o != nil {
				c.o.LinkContinuations.Inc()
			}
		}
		reply, err := c.roundTrip(fmt.Sprintf("qXfer:memory:read:%x,%x:%x,%x",
			addr, length, off, length-off))
		if err != nil {
			return err
		}
		if len(reply) >= 1 && reply[0] == 'E' {
			return fmt.Errorf("gdbrsp: stub error %s reading %#x", reply, addr+off)
		}
		if len(reply) == 0 || (reply[0] != 'm' && reply[0] != 'l') {
			return fmt.Errorf("gdbrsp: malformed qXfer reply %.16q at %#x", reply, addr+off)
		}
		last := reply[0] == 'l'
		data, err := decodeHex(reply[1:])
		if err != nil {
			return err
		}
		if uint64(len(data)) > length-off {
			return fmt.Errorf("gdbrsp: stub over-delivered %d of %d at %#x", len(data), length-off, addr+off)
		}
		copy(buf[off:], data)
		off += uint64(len(data))
		if last {
			if off < length {
				return fmt.Errorf("gdbrsp: object ends after %d of %d bytes at %#x (unmapped tail)",
					off, length, addr)
			}
			return nil
		}
		if len(data) == 0 {
			return fmt.Errorf("gdbrsp: empty qXfer chunk at %#x (no progress)", addr+off)
		}
	}
	return nil
}

// ClipMapped implements target.RangeProber from the stub's memory-map
// annex. The map is fetched once per connection (metadata, like symbols)
// and intersected locally, so batch prefetch passes clip for free. Without
// the annex, ok is false and callers treat everything as potentially
// mapped.
func (c *Client) ClipMapped(addr, size uint64) ([]target.Range, bool) {
	if !c.hasMemMap {
		return nil, false
	}
	c.memMapOnce.Do(c.fetchMemMap)
	if !c.memMapLoaded {
		return nil, false
	}
	if size == 0 {
		return nil, true
	}
	if addr+size < addr {
		size = -addr
	}
	end := addr + size
	var out []target.Range
	i := sort.Search(len(c.memMap), func(i int) bool { return c.memMap[i].End() > addr })
	for ; i < len(c.memMap) && c.memMap[i].Addr < end; i++ {
		lo, hi := c.memMap[i].Addr, c.memMap[i].End()
		if lo < addr {
			lo = addr
		}
		if hi > end {
			hi = end
		}
		if lo < hi {
			out = append(out, target.Range{Addr: lo, Size: hi - lo})
		}
	}
	return out, true
}

// MemoryMap returns the stub's merged mapped ranges (nil without the
// annex), fetching them on first use.
func (c *Client) MemoryMap() []target.Range {
	if !c.hasMemMap {
		return nil
	}
	c.memMapOnce.Do(c.fetchMemMap)
	return c.memMap
}

// fetchMemMap pulls the memory-map annex ("addr,size;..." hex text) over
// m/l continuation chunks and parses it.
func (c *Client) fetchMemMap() {
	c.mu.Lock()
	defer c.mu.Unlock()
	var blob []byte
	c.stats.Transactions.Add(1)
	for off := uint64(0); ; {
		if off > 0 {
			c.stats.Continuations.Add(1)
			if c.o != nil {
				c.o.LinkContinuations.Inc()
			}
		}
		reply, err := c.roundTripLocked(fmt.Sprintf("qXfer:memory-map:read::%x,%x",
			off, uint64(c.packetMax)))
		if err != nil {
			return
		}
		if len(reply) == 0 || (reply[0] != 'm' && reply[0] != 'l') {
			return // no usable map; leave memMapLoaded false
		}
		blob = append(blob, reply[1:]...)
		off += uint64(len(reply) - 1)
		if reply[0] == 'l' {
			break
		}
		if len(reply) == 1 {
			return // 'm' with no data: no progress
		}
	}
	ranges, err := parseMemMap(string(blob))
	if err != nil {
		return
	}
	c.memMap = ranges
	c.memMapLoaded = true
}

// fetchTextAnnex pulls one plain-text annex blob (qXfer:<annex>:read:<arg>)
// over m/l continuation chunks, with the usual accounting: one transaction
// for the sequence, continuations for the follow-up chunks.
func (c *Client) fetchTextAnnex(annex, arg string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var blob []byte
	c.stats.Transactions.Add(1)
	for off := uint64(0); ; {
		if off > 0 {
			c.stats.Continuations.Add(1)
			if c.o != nil {
				c.o.LinkContinuations.Inc()
			}
		}
		reply, err := c.roundTripLocked(fmt.Sprintf("qXfer:%s:read:%s:%x,%x",
			annex, arg, off, uint64(c.packetMax)))
		if err != nil {
			return "", err
		}
		if len(reply) >= 1 && reply[0] == 'E' {
			return "", fmt.Errorf("gdbrsp: stub error %s on qXfer:%s", reply, annex)
		}
		if len(reply) == 0 || (reply[0] != 'm' && reply[0] != 'l') {
			return "", fmt.Errorf("gdbrsp: malformed qXfer:%s reply %.16q", annex, reply)
		}
		blob = append(blob, reply[1:]...)
		off += uint64(len(reply) - 1)
		if reply[0] == 'l' {
			break
		}
		if len(reply) == 1 {
			return "", fmt.Errorf("gdbrsp: empty qXfer:%s chunk (no progress)", annex)
		}
	}
	return string(blob), nil
}

// HashBlocks implements target.PageHasher over the qXfer:memory-hash:read
// annex: SubPage-granular content hashes the stub computes against its own
// memory. A handful of continuation chunks replaces refetching whole pages —
// the cheap revalidation exchange of the incremental read path. ok=false
// without the annex (callers fall back to refetching).
func (c *Client) HashBlocks(addr, size uint64) ([]uint64, bool) {
	if !c.hasMemHash || size == 0 || addr%target.SubPage != 0 || size%target.SubPage != 0 {
		return nil, false
	}
	blob, err := c.fetchTextAnnex("memory-hash", fmt.Sprintf("%x,%x", addr, size))
	if err != nil {
		return nil, false
	}
	want := int(size / target.SubPage)
	if len(blob) != want*16 {
		return nil, false
	}
	hashes := make([]uint64, want)
	for i := range hashes {
		v, err := parseHexU64(blob[i*16 : i*16+16])
		if err != nil {
			return nil, false
		}
		hashes[i] = v
	}
	c.stats.HashChecks.Add(1)
	return hashes, true
}

// DirtySince implements target.DirtyTracker over the qXfer:dirty-ranges:read
// annex: the stub's write journal since mark, as "NEXT;addr,size;...". An
// error reply (history lost past mark) or a stub without the annex yields
// ok=false, and the snapshot gracefully degrades to hash revalidation.
func (c *Client) DirtySince(mark uint64) ([]target.Range, uint64, bool) {
	if !c.hasDirty {
		return nil, 0, false
	}
	blob, err := c.fetchTextAnnex("dirty-ranges", fmt.Sprintf("%x", mark))
	if err != nil {
		return nil, 0, false
	}
	parts := strings.Split(blob, ";")
	next, err := parseHexU64(parts[0])
	if err != nil {
		return nil, 0, false
	}
	var out []target.Range
	for _, p := range parts[1:] {
		if p == "" {
			continue
		}
		a, sz, err := splitAddrLen(p)
		if err != nil {
			return nil, 0, false
		}
		out = append(out, target.Range{Addr: a, Size: sz})
	}
	c.stats.HashChecks.Add(1)
	return target.MergeRanges(out), next, true
}

// parseMemMap parses "addr,size;addr,size;...;" into sorted ranges.
func parseMemMap(s string) ([]target.Range, error) {
	var out []target.Range
	for _, part := range strings.Split(s, ";") {
		if part == "" {
			continue
		}
		addr, size, err := splitAddrLen(part)
		if err != nil {
			return nil, err
		}
		out = append(out, target.Range{Addr: addr, Size: size})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out, nil
}

// LookupSymbol implements target.Target from the locally-loaded table.
func (c *Client) LookupSymbol(name string) (target.Symbol, bool) {
	s, ok := c.symbols[name]
	return s, ok
}

// SymbolAt implements target.Target.
func (c *Client) SymbolAt(addr uint64) (string, bool) {
	n, ok := c.byAddr[addr]
	return n, ok
}

// Types implements target.Target.
func (c *Client) Types() *ctypes.Registry { return c.types }

// Stats implements target.Target.
func (c *Client) Stats() *target.Stats { return &c.stats }

var (
	_ target.Target       = (*Client)(nil)
	_ target.RangeProber  = (*Client)(nil)
	_ target.PageHasher   = (*Client)(nil)
	_ target.DirtyTracker = (*Client)(nil)
)
