package gdbrsp

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"visualinux/internal/ctypes"
	"visualinux/internal/target"
)

// Client implements target.Target over an RSP connection: memory reads go
// over the wire as $m packets; types and symbols are provided locally,
// exactly as GDB gets them from vmlinux DWARF rather than from the stub.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer

	types   *ctypes.Registry
	symbols map[string]target.Symbol
	byAddr  map[uint64]string
	stats   target.Stats
}

// Dial connects to an RSP server and performs the initial handshake.
// reg and symbols play the role of the locally-loaded vmlinux.
func Dial(addr string, reg *ctypes.Registry, symbols []target.Symbol) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gdbrsp: dial: %w", err)
	}
	c := &Client{
		conn:    conn,
		r:       bufio.NewReader(conn),
		w:       bufio.NewWriter(conn),
		types:   reg,
		symbols: make(map[string]target.Symbol, len(symbols)),
		byAddr:  make(map[uint64]string, len(symbols)),
	}
	for _, s := range symbols {
		c.symbols[s.Name] = s
		c.byAddr[s.Addr] = s.Name
	}
	// Handshake like GDB: feature negotiation then stop-reason query.
	if _, err := c.roundTrip("qSupported:multiprocess+"); err != nil {
		conn.Close()
		return nil, err
	}
	if _, err := c.roundTrip("?"); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close detaches and closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, _ = c.roundTripLocked("D")
	return c.conn.Close()
}

// roundTrip sends one packet and reads the reply (with ack handling).
func (c *Client) roundTrip(payload string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.roundTripLocked(payload)
}

func (c *Client) roundTripLocked(payload string) (string, error) {
	if _, err := c.w.Write(encodePacket(payload)); err != nil {
		return "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	// Expect the stub's ack, then its reply packet, then ack it.
	for {
		b, err := c.r.ReadByte()
		if err != nil {
			return "", err
		}
		if b == '+' {
			break
		}
		if b == '-' {
			// retransmit
			if _, err := c.w.Write(encodePacket(payload)); err != nil {
				return "", err
			}
			if err := c.w.Flush(); err != nil {
				return "", err
			}
		}
	}
	reply, err := readPacket(c.r)
	if err != nil {
		return "", err
	}
	if _, err := c.w.WriteString("+"); err != nil {
		return "", err
	}
	return reply, c.w.Flush()
}

// ReadMemory implements target.Target via $m packets, chunking large
// requests to the stub's packet size.
func (c *Client) ReadMemory(addr uint64, buf []byte) error {
	c.stats.Reads.Add(1)
	c.stats.BytesRead.Add(uint64(len(buf)))
	const chunk = maxPacket / 2
	for off := 0; off < len(buf); {
		n := len(buf) - off
		if n > chunk {
			n = chunk
		}
		reply, err := c.roundTrip(fmt.Sprintf("m%x,%x", addr+uint64(off), n))
		if err != nil {
			return err
		}
		if len(reply) >= 1 && reply[0] == 'E' {
			return fmt.Errorf("gdbrsp: stub error %s reading %#x", reply, addr+uint64(off))
		}
		data, err := decodeHex(reply)
		if err != nil {
			return err
		}
		if len(data) != n {
			return fmt.Errorf("gdbrsp: short read %d of %d", len(data), n)
		}
		copy(buf[off:], data)
		off += n
	}
	return nil
}

// LookupSymbol implements target.Target from the locally-loaded table.
func (c *Client) LookupSymbol(name string) (target.Symbol, bool) {
	s, ok := c.symbols[name]
	return s, ok
}

// SymbolAt implements target.Target.
func (c *Client) SymbolAt(addr uint64) (string, bool) {
	n, ok := c.byAddr[addr]
	return n, ok
}

// Types implements target.Target.
func (c *Client) Types() *ctypes.Registry { return c.types }

// Stats implements target.Target.
func (c *Client) Stats() *target.Stats { return &c.stats }

var _ target.Target = (*Client)(nil)
