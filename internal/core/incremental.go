package core

import (
	"errors"
	"fmt"

	"visualinux/internal/kernelsim"
	"visualinux/internal/obs"
	"visualinux/internal/panes"
	"visualinux/internal/target"
	"visualinux/internal/vclstdlib"
	"visualinux/internal/viewcl"
)

// IncrementalExtractor is the end-to-end incremental pipeline: one
// generation-tagged snapshot shared by every figure, one persistent
// interpreter + cross-run memo per figure, and the prior round's results
// for figure-level delta. The steady-state loop is
//
//	x.Round()            // cold: extract everything, attach panes
//	... target resumes, mutates, stops ...
//	x.Advance()          // pages go stale (not gone); journal promotes clean ones
//	x.Round()            // delta: untouched figures return their prior VPlot,
//	                     // touched figures re-extract only dirty-overlapping boxes
//
// Rounds run figures sequentially: the memo and snapshot accounting stay
// deterministic, and steady-state rounds are dominated by link revalidation,
// not CPU, so worker fan-out buys nothing once the cache is warm.
type IncrementalExtractor struct {
	Session *Session
	// OnFigure, when set, fires after each figure's pass in a round —
	// reused tells whether the figure was served whole from the prior
	// round. The bench harness uses it to clock per-figure link cost.
	OnFigure func(i int, fig vclstdlib.Figure, reused bool, res *viewcl.Result)

	k      *kernelsim.Kernel
	snap   *target.Snapshot
	o      *obs.Observer
	states []*figState
	rounds int
}

type figState struct {
	fig    vclstdlib.Figure
	interp *viewcl.Interp
	prior  *viewcl.Result
	gen    uint64 // snapshot generation prior was validated at
	paneID int
}

// RoundResult reports one figure's outcome in a round.
type RoundResult struct {
	Fig    vclstdlib.Figure
	Pane   *panes.Pane
	Res    *viewcl.Result // the prior result when Reused
	Reused bool           // served whole from the prior round
}

// NewIncrementalExtractor builds the pipeline over base (the kernel's raw
// target, or a latency-wrapped view of it): base → Instrumented → Snapshot,
// then one memoizing interpreter per figure, all reporting into o (nil
// disables observability).
func NewIncrementalExtractor(k *kernelsim.Kernel, base target.Target, figs []vclstdlib.Figure, o *obs.Observer) *IncrementalExtractor {
	var chain target.Target = base
	if o != nil {
		chain = target.Instrument(base, o)
	}
	snap := target.NewSnapshot(chain).Instrument(o)
	s := SessionOver(k, snap)
	if o != nil {
		s.EnableObs(o)
	}
	x := &IncrementalExtractor{Session: s, k: k, snap: snap, o: o}
	for _, fig := range figs {
		ws := SessionOver(k, snap)
		if o != nil {
			ws.EnableObs(o)
		}
		ws.Interp.Memo = viewcl.NewMemo(snap)
		x.states = append(x.states, &figState{fig: fig, interp: ws.Interp})
	}
	return x
}

// Snapshot exposes the shared snapshot (for Advance, stats, tests).
func (x *IncrementalExtractor) Snapshot() *target.Snapshot { return x.snap }

// SetInterpret flips the shared session and every per-figure interpreter
// between the compiled closure-chain engine and the tree-walking oracle —
// plumbing for differential tests and engine-comparison benchmarks.
func (x *IncrementalExtractor) SetInterpret(v bool) {
	x.Session.Interp.Interpret = v
	for _, st := range x.states {
		st.interp.Interpret = v
	}
}

// Advance marks the incremental stop boundary after the target ran: cached
// pages become stale (revalidated lazily by hash) and the write journal, if
// the chain exposes one, promotes untouched pages back to clean for free.
func (x *IncrementalExtractor) Advance() { x.snap.Advance() }

// Rounds reports how many extraction rounds have completed.
func (x *IncrementalExtractor) Rounds() int { return x.rounds }

// PaneFor resolves the pane a figure was attached to (false before the
// figure's first successful round, or for figures this extractor doesn't
// carry). The fleet fan-out uses it to aim one query at the same figure
// across heterogeneous sessions.
func (x *IncrementalExtractor) PaneFor(figID string) (int, bool) {
	for _, st := range x.states {
		if st.fig.ID == figID && st.paneID != 0 {
			return st.paneID, true
		}
	}
	return 0, false
}

// Round extracts every figure once. The first round is cold: each figure is
// extracted and attached as a pane. Later rounds are deltas: a figure whose
// page-granular read set is provably unchanged since its last validation is
// served whole from its prior result (its pane keeps its version — the
// server's ETag path then answers 304); anything else re-extracts through
// its memo, which reuses every clean box, and the pane is updated in place
// with a version bump.
//
// Like ExtractFiguresInto, one failing figure never discards the others.
func (x *IncrementalExtractor) Round() ([]RoundResult, error) {
	out := make([]RoundResult, len(x.states))
	errs := make([]error, len(x.states))
	for i, st := range x.states {
		out[i].Fig = st.fig
		if st.prior != nil && x.snap.RangesUnchangedSince(st.prior.ReadSet, st.gen) {
			st.gen = x.snap.Generation()
			if x.o != nil {
				x.o.FigureReuses.Inc()
			}
			p, _ := x.Session.Tree.Pane(st.paneID)
			out[i].Pane = p
			out[i].Res = st.prior
			out[i].Reused = true
			if x.OnFigure != nil {
				x.OnFigure(i, st.fig, true, st.prior)
			}
			continue
		}
		res, err := st.interp.RunSource("fig"+st.fig.ID, st.fig.Program)
		if err != nil {
			errs[i] = fmt.Errorf("figure %s: %w", st.fig.ID, err)
			continue
		}
		st.prior = res
		st.gen = x.snap.Generation()
		if st.paneID == 0 {
			p, err := x.Session.attachPane("fig"+st.fig.ID, st.fig.Program, res)
			if err != nil {
				errs[i] = fmt.Errorf("figure %s: %w", st.fig.ID, err)
				continue
			}
			st.paneID = p.ID
			out[i].Pane = p
		} else {
			if err := x.Session.Tree.Update(st.paneID, res.Graph); err != nil {
				errs[i] = fmt.Errorf("figure %s: %w", st.fig.ID, err)
				continue
			}
			x.Session.recordExtraction(st.paneID, "fig"+st.fig.ID, res)
			p, _ := x.Session.Tree.Pane(st.paneID)
			out[i].Pane = p
		}
		out[i].Res = res
		if x.OnFigure != nil {
			x.OnFigure(i, st.fig, false, res)
		}
	}
	x.rounds++
	return out, errors.Join(errs...)
}
