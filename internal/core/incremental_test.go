package core_test

import (
	"testing"

	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
	"visualinux/internal/obs"
	"visualinux/internal/render"
	"visualinux/internal/vclstdlib"
)

// coldText extracts one figure with a completely fresh session over the
// kernel's raw target — the ground truth the incremental pipeline must
// match byte for byte.
func coldText(t *testing.T, k *kernelsim.Kernel, fig vclstdlib.Figure) string {
	t.Helper()
	s := core.SessionOver(k, k.Target())
	p, err := s.VPlotFigure(fig.ID)
	if err != nil {
		t.Fatalf("cold extraction of %s: %v", fig.ID, err)
	}
	return render.Text(p.Graph)
}

// The repeated stop→mutate→resume cycle: every round's incremental output
// must be byte-identical to a cold extractor's view of the same state, the
// snapshot generation must be monotone, and the reuse counters must move
// the right way (everything reused on a quiet round, the touched figure
// re-extracted after a mutation).
func TestIncrementalRoundsMatchColdExtraction(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	o := obs.NewObserver()
	figs := vclstdlib.Figures()
	x := core.NewIncrementalExtractor(k, k.Target(), figs, o)

	mutate := []func() error{
		nil, // round 1: quiet — everything must be figure-level reused
		func() error { return k.PipeWrite(k.DirtyPipe, 64) },
		func() error { _, err := k.SpawnTask(9001, "incrtest", 1); return err },
		nil, // final quiet round: back to full reuse
	}

	if _, err := x.Round(); err != nil {
		t.Fatalf("cold round: %v", err)
	}
	lastGen := x.Snapshot().Generation()

	for round, m := range mutate {
		if m != nil {
			if err := m(); err != nil {
				t.Fatalf("round %d mutation: %v", round, err)
			}
		}
		x.Advance()
		if g := x.Snapshot().Generation(); g <= lastGen {
			t.Fatalf("round %d: generation not monotone (%d after %d)", round, g, lastGen)
		} else {
			lastGen = g
		}

		out, err := x.Round()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		reusedAll := true
		for i, rr := range out {
			if !rr.Reused {
				reusedAll = false
			}
			got := render.Text(rr.Res.Graph)
			if want := coldText(t, k, figs[i]); got != want {
				t.Errorf("round %d: figure %s diverged from cold extraction", round, figs[i].ID)
			}
		}
		if m == nil && !reusedAll {
			t.Errorf("round %d: quiet round re-extracted figures", round)
		}
		if m != nil && reusedAll {
			t.Errorf("round %d: mutation round reused every figure whole", round)
		}
	}

	snap := x.Snapshot()
	if snap.Advances() == 0 {
		t.Error("no advances counted")
	}
	if snap.Promotions() == 0 {
		t.Error("journal promoted nothing across quiet rounds")
	}
	hits, _ := snap.CacheStats()
	if hits == 0 {
		t.Error("no cache hits across rounds")
	}
	if o.FigureReuses.Value() == 0 {
		t.Error("observer counted no figure reuses")
	}
	if x.Rounds() != len(mutate)+1 {
		t.Errorf("Rounds() = %d, want %d", x.Rounds(), len(mutate)+1)
	}
}

// Pane versions track figure-level deltas: a reused figure keeps its pane
// version (the server's ETag then answers 304), a re-extracted figure bumps
// it.
func TestIncrementalPaneVersions(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	figs := []vclstdlib.Figure{mustFigure(t, "3-6"), mustFigure(t, "7-1")}
	x := core.NewIncrementalExtractor(k, k.Target(), figs, nil)

	out, err := x.Round()
	if err != nil {
		t.Fatalf("cold round: %v", err)
	}
	v0 := []int{out[0].Pane.Version, out[1].Pane.Version}

	if err := k.PipeWrite(k.DirtyPipe, 64); err != nil {
		t.Fatalf("PipeWrite: %v", err)
	}
	x.Advance()
	out, err = x.Round()
	if err != nil {
		t.Fatalf("steady round: %v", err)
	}
	// 3-6 is the pipe figure: it must have re-extracted with a version
	// bump; 7-1 (sockets) reads nothing the pipe write touches.
	if out[0].Reused || out[0].Pane.Version != v0[0]+1 {
		t.Errorf("pipe figure: reused=%v version %d→%d, want re-extracted with bump",
			out[0].Reused, v0[0], out[0].Pane.Version)
	}
	if !out[1].Reused || out[1].Pane.Version != v0[1] {
		t.Errorf("socket figure: reused=%v version %d→%d, want reused with stable version",
			out[1].Reused, v0[1], out[1].Pane.Version)
	}
}

func mustFigure(t *testing.T, id string) vclstdlib.Figure {
	t.Helper()
	fig, ok := vclstdlib.FigureByID(id)
	if !ok {
		t.Fatalf("unknown figure %s", id)
	}
	return fig
}
