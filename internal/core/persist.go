package core

import (
	"encoding/json"
	"fmt"

	"visualinux/internal/panes"
	"visualinux/internal/viewql"
)

// Session persistence (paper §4.2: "persisting the state of panes and
// plots for reuse across debugging sessions"). A saved session stores the
// ViewCL program of every primary pane, the secondary panes' selections,
// the named ViewQL sets, and every display-attribute assignment; Import
// re-extracts against the (new) target and re-applies the customizations —
// exactly the reuse model of the paper, where plots are recomputed from
// the live state but the analyst's view setup survives.

type savedItemAttrs struct {
	Member string            `json:"member"`
	Attrs  map[string]string `json:"attrs"`
}

type savedBox struct {
	ID    string            `json:"id"`
	Attrs map[string]string `json:"attrs,omitempty"`
	Items []savedItemAttrs  `json:"items,omitempty"`
}

type savedPane struct {
	ID        int                     `json:"id"`
	Kind      string                  `json:"kind"`
	Title     string                  `json:"title"`
	Program   string                  `json:"program,omitempty"`
	Source    int                     `json:"source,omitempty"` // secondary: origin pane
	Selection []string                `json:"selection,omitempty"`
	Sets      map[string][]viewql.Ref `json:"sets,omitempty"`
	Boxes     []savedBox              `json:"boxes,omitempty"`
}

type savedState struct {
	Version int         `json:"version"`
	History []string    `json:"history"`
	Panes   []savedPane `json:"panes"`
}

// Export serializes the session's pane/plot state.
func (s *Session) Export() ([]byte, error) {
	st := savedState{Version: 1, History: s.History}
	if s.Tree != nil {
		for _, p := range s.Tree.Panes() {
			sp := savedPane{
				ID:        p.ID,
				Kind:      p.Kind.String(),
				Title:     p.Title,
				Program:   s.programs[p.ID],
				Selection: p.Selection,
				Sets:      p.Engine.Sets,
				Source:    s.secondarySrc[p.ID],
			}
			for _, id := range p.Graph.Order {
				b := p.Graph.Boxes[id]
				sb := savedBox{ID: b.ID}
				if len(b.Attrs) > 0 {
					sb.Attrs = b.Attrs
				}
				for _, vn := range b.ViewSeq {
					for _, it := range b.Views[vn].Items {
						if len(it.Attrs) > 0 {
							sb.Items = append(sb.Items, savedItemAttrs{Member: it.Name, Attrs: it.Attrs})
						}
					}
				}
				if sb.Attrs != nil || sb.Items != nil {
					sp.Boxes = append(sp.Boxes, sb)
				}
			}
			st.Panes = append(st.Panes, sp)
		}
	}
	return json.MarshalIndent(st, "", "  ")
}

// Import restores a saved session into this (fresh) session: primary panes
// re-extract their programs against the current target, secondary panes
// re-select, and all attributes and named sets are re-applied.
func (s *Session) Import(data []byte) error {
	var st savedState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("core: corrupt session state: %w", err)
	}
	if s.Tree != nil {
		return fmt.Errorf("core: import requires a fresh session")
	}
	idMap := make(map[int]int) // saved pane ID -> new pane ID
	maxSavedID := 0
	for _, sp := range st.Panes {
		if sp.ID > maxSavedID {
			maxSavedID = sp.ID
		}
		var p *panes.Pane
		var err error
		switch sp.Kind {
		case "primary":
			p, err = s.VPlot(sp.Title, sp.Program)
			if err != nil {
				return fmt.Errorf("core: re-extracting pane %q: %w", sp.Title, err)
			}
		case "secondary":
			srcID, ok := idMap[sp.Source]
			if !ok {
				return fmt.Errorf("core: secondary pane %q references unknown source %d", sp.Title, sp.Source)
			}
			refs := make([]viewql.Ref, 0, len(sp.Selection))
			for _, id := range sp.Selection {
				refs = append(refs, viewql.Ref{BoxID: id})
			}
			p, err = s.Tree.SelectInto(srcID, refs, sp.Title)
			if err != nil {
				return fmt.Errorf("core: re-selecting pane %q: %w", sp.Title, err)
			}
		default:
			return fmt.Errorf("core: unknown pane kind %q", sp.Kind)
		}
		idMap[sp.ID] = p.ID
		for name, refs := range sp.Sets {
			p.Engine.Sets[name] = refs
		}
		for _, sb := range sp.Boxes {
			b, ok := p.Graph.Get(sb.ID)
			if !ok {
				// The live state moved on; the box no longer exists. This
				// is expected across reboots — skip silently like the
				// paper's tool does for stale objects.
				continue
			}
			for k, v := range sb.Attrs {
				b.SetAttr(k, v)
			}
			for _, ia := range sb.Items {
				for _, vn := range b.ViewSeq {
					v := b.Views[vn]
					for i := range v.Items {
						if v.Items[i].Name == ia.Member {
							for k, val := range ia.Attrs {
								v.Items[i].SetAttr(k, val)
							}
						}
					}
				}
			}
		}
	}
	// Future panes must allocate past every ID the saved state mentions:
	// the replay renumbers panes densely, so without the reservation the
	// next vplot could mint an ID that aliases a pane from the exported
	// session — and a client holding that ID (pane cache entries, stream
	// subscriptions) would silently see a different pane's content.
	if s.Tree != nil {
		s.Tree.ReserveIDs(maxSavedID)
	}
	s.History = append(s.History, st.History...)
	return nil
}
