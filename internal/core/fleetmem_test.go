package core

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"visualinux/internal/kernelsim"
	"visualinux/internal/obs"
	"visualinux/internal/render"
	"visualinux/internal/vclstdlib"
)

// TestTotalMemMatchesOwnedSum is the fleet accounting invariant: after any
// admit/evict/delete sequence, the manager's TotalMem equals the sum of the
// resident sessions' owned bytes — nothing double-counted, nothing leaked
// when a session releases its shared pages.
func TestTotalMemMatchesOwnedSum(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	m := NewSessionManager(ManagerOptions{IdleTTL: time.Minute, Now: clk.now}, obs.NewObserver())

	check := func(step string) {
		t.Helper()
		var sum uint64
		for _, info := range m.List() {
			sum += info.OwnedBytes
		}
		if got := m.TotalMem(); got != sum {
			t.Fatalf("%s: TotalMem = %d, Σ owned = %d", step, got, sum)
		}
	}

	check("empty")
	for i := 0; i < 4; i++ {
		if _, err := m.Create(fmt.Sprintf("s%d", i), tinySession()); err != nil {
			t.Fatal(err)
		}
		clk.advance(time.Second)
		check(fmt.Sprintf("after create s%d", i))
	}

	// Diverge one session: CoW breaks shift its owned bytes upward, and the
	// invariant must track the new residency, not the admission-time value.
	ms, _ := m.Attach("s2")
	if _, err := ms.StepRound(); err != nil {
		t.Fatal(err)
	}
	check("after workload divergence")

	if !m.Delete("s1") {
		t.Fatal("delete s1")
	}
	check("after delete")

	clk.advance(2 * time.Minute)
	if evicted := m.SweepIdle(); len(evicted) == 0 {
		t.Fatal("TTL sweep evicted nothing")
	}
	check("after idle sweep")
	if m.Len() != 0 {
		t.Fatalf("len = %d after sweep, want 0", m.Len())
	}
	if m.TotalMem() != 0 {
		t.Fatalf("TotalMem = %d with no sessions", m.TotalMem())
	}
}

// TestFleetRaceSoak runs concurrent rounds across forked sessions sharing
// one template while TTL sweeps and budget-pressure admissions churn the
// fleet — the -race gate for the CoW fabric end to end.
func TestFleetRaceSoak(t *testing.T) {
	const n = 6
	m := NewSessionManager(ManagerOptions{IdleTTL: time.Hour}, obs.NewObserver())
	for i := 0; i < n; i++ {
		if _, err := m.Create(fmt.Sprintf("soak%d", i), tinySession()); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			ms, ok := m.Attach(id)
			if !ok {
				return // evicted by the churner — fine
			}
			for r := 0; r < 5; r++ {
				if _, err := ms.StepRound(); err != nil {
					t.Errorf("%s round %d: %v", id, r, err)
					return
				}
			}
		}(fmt.Sprintf("soak%d", i))
	}
	// Churner: sweeps, admissions, and accounting reads race the rounds.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < 10; r++ {
			m.SweepIdle()
			_ = m.TotalMem()
			_ = m.List()
			id := fmt.Sprintf("churn%d", r)
			if _, err := m.Create(id, tinySession()); err != nil {
				t.Errorf("churn create: %v", err)
			}
			m.Delete(id)
		}
	}()
	wg.Wait()
}

// paneJSON renders a round's panes to canonical JSON bytes, the same
// serialization the HTTP layer ships to clients. Extraction wall-clock
// (stats.DurationNS) is zeroed: it is the one field that is timing, not
// content, and byte-identity is a claim about content.
func paneJSON(t *testing.T, rr []RoundResult) []byte {
	t.Helper()
	var out []byte
	for _, r := range rr {
		jg := render.ToJSON(r.Pane.Graph)
		jg.Stats.DurationNS = 0
		b, err := json.Marshal(jg)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b...)
		out = append(out, '\n')
	}
	return out
}

// TestForkedSessionByteIdentical proves the CoW fabric is invisible to
// extraction: a session forked from a template produces byte-identical pane
// JSON to a privately built session, across every stdlib figure, both on the
// cold round and after the workload has diverged both images from the
// template.
func TestForkedSessionByteIdentical(t *testing.T) {
	figs := vclstdlib.Figures()
	ids := make([]string, len(figs))
	for i, f := range figs {
		ids[i] = f.ID
	}
	opts := SessionOptions{Kernel: kernelsim.Options{Churn: 3}, Figures: ids}

	forked := NewSessionManager(ManagerOptions{}, obs.NewObserver())
	private := NewSessionManager(ManagerOptions{PrivateBuilds: true}, obs.NewObserver())

	fs, err := forked.Create("f", opts)
	if err != nil {
		t.Fatalf("forked create: %v", err)
	}
	ps, err := private.Create("p", opts)
	if err != nil {
		t.Fatalf("private create: %v", err)
	}

	fr, err := fs.Round()
	if err != nil {
		t.Fatal(err)
	}
	pr, err := ps.Round()
	if err != nil {
		t.Fatal(err)
	}
	if len(fr) != len(figs) || len(pr) != len(figs) {
		t.Fatalf("rounds covered %d/%d panes, want %d", len(fr), len(pr), len(figs))
	}
	if fj, pj := paneJSON(t, fr), paneJSON(t, pr); string(fj) != string(pj) {
		t.Fatal("cold round: forked session panes differ from private build")
	}

	// Diverge both with the same deterministic workload, then compare again:
	// CoW breaks on the fork vs plain writes on the private image.
	for step := 0; step < 5; step++ {
		if fr, err = fs.StepRound(); err != nil {
			t.Fatal(err)
		}
		if pr, err = ps.StepRound(); err != nil {
			t.Fatal(err)
		}
	}
	if fj, pj := paneJSON(t, fr), paneJSON(t, pr); string(fj) != string(pj) {
		t.Fatal("post-divergence round: forked session panes differ from private build")
	}
}
