package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"visualinux/internal/kernelsim"
	"visualinux/internal/obs"
	"visualinux/internal/panes"
	"visualinux/internal/target"
	"visualinux/internal/vclstdlib"
	"visualinux/internal/viewcl"
)

// ExtractFigures plots the given figures concurrently over one stopped
// kernel image, using at most workers goroutines (workers <= 0 means
// GOMAXPROCS). Each worker runs its own Session with an isolated stats view
// of the shared target, so per-figure Graph.Stats stay accurate while the
// underlying read-only memory is shared freely.
//
// Results keep the order of figs. A failing figure aborts nothing else:
// every figure is still attempted, the panes that extracted are returned
// (failed slots stay nil), and the failures come back joined in err. Callers
// wanting all-or-nothing check err; callers serving a workspace keep the
// good panes and report the bad.
func ExtractFigures(k *kernelsim.Kernel, figs []vclstdlib.Figure, workers int) ([]*panes.Pane, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(figs) {
		workers = len(figs)
	}
	out := make([]*panes.Pane, len(figs))
	errs := make([]error, len(figs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, fig := range figs {
		wg.Add(1)
		go func(i int, fig vclstdlib.Figure) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s := SessionOver(k, target.WithStats(k.Target()))
			p, err := s.VPlot(fig.ID, fig.Program)
			if err != nil {
				errs[i] = fmt.Errorf("figure %s: %w", fig.ID, err)
				return
			}
			out[i] = p
		}(i, fig)
	}
	wg.Wait()
	return out, errors.Join(errs...)
}

// ExtractFiguresInto extracts figs concurrently over s's kernel and attaches
// every result as a pane of s, in figs order. Each worker runs its own
// interpreter over its own instrumented chain (Instrumented + Snapshot per
// worker — the cache and the span stack are single-extraction structures),
// but all workers report into s.Obs, so the process-wide metrics aggregate
// and every concurrent extraction still produces its own span tree. Pane
// attachment happens after the join, single-threaded: the pane tree is the
// session's shared mutable state.
//
// Like ExtractFigures, one failing figure never discards the others: every
// successfully extracted figure is attached as a pane (failed slots stay
// nil) and the failures come back joined in err.
func ExtractFiguresInto(s *Session, k *kernelsim.Kernel, figs []vclstdlib.Figure, workers int) ([]*panes.Pane, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(figs) {
		workers = len(figs)
	}
	results := make([]*viewcl.Result, len(figs))
	errs := make([]error, len(figs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, fig := range figs {
		wg.Add(1)
		go func(i int, fig vclstdlib.Figure) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var ws *Session
			if s.Obs != nil {
				ws, _ = ObservedSessionOver(k, target.WithStats(k.Target()), s.Obs,
					obs.Tag{Key: "figure", Value: fig.ID})
			} else {
				ws = SessionOver(k, target.WithStats(k.Target()))
			}
			res, err := ws.Interp.RunSource(fig.ID, fig.Program)
			if err != nil {
				errs[i] = fmt.Errorf("figure %s: %w", fig.ID, err)
				return
			}
			results[i] = res
		}(i, fig)
	}
	wg.Wait()
	out := make([]*panes.Pane, len(figs))
	for i, fig := range figs {
		if results[i] == nil {
			continue // extraction failed; its error is already in errs[i]
		}
		s.log("vplot fig" + fig.ID)
		p, err := s.attachPane("fig"+fig.ID, fig.Program, results[i])
		if err != nil {
			errs[i] = fmt.Errorf("figure %s: %w", fig.ID, err)
			continue
		}
		out[i] = p
	}
	return out, errors.Join(errs...)
}
