package core

import (
	"errors"
	"fmt"

	"visualinux/internal/kernelsim"
	"visualinux/internal/obs"
	"visualinux/internal/panes"
	"visualinux/internal/target"
	"visualinux/internal/vclstdlib"
	"visualinux/internal/viewcl"
)

// ExtractFigures plots the given figures concurrently over one stopped
// kernel image, keeping at most workers figures in flight (workers <= 0
// means no per-call cap). The figures run on the process-wide DefaultPool
// under a per-call key, so concurrent extractions — one per session —
// share the pool's fixed worker population round-robin instead of each
// spawning its own GOMAXPROCS goroutines. Each figure runs its own Session
// with an isolated stats view of the shared target, so per-figure
// Graph.Stats stay accurate while the underlying read-only memory is
// shared freely.
//
// Results keep the order of figs. A failing figure aborts nothing else:
// every figure is still attempted, the panes that extracted are returned
// (failed slots stay nil), and the failures come back joined in err. Callers
// wanting all-or-nothing check err; callers serving a workspace keep the
// good panes and report the bad.
func ExtractFigures(k *kernelsim.Kernel, figs []vclstdlib.Figure, workers int) ([]*panes.Pane, error) {
	out := make([]*panes.Pane, len(figs))
	errs := make([]error, len(figs))
	DefaultPool().Run(fmt.Sprintf("extract:%p", k), len(figs), workers, func(i int) {
		fig := figs[i]
		s := SessionOver(k, target.WithStats(k.Target()))
		p, err := s.VPlot(fig.ID, fig.Program)
		if err != nil {
			errs[i] = fmt.Errorf("figure %s: %w", fig.ID, err)
			return
		}
		out[i] = p
	})
	return out, errors.Join(errs...)
}

// ExtractFiguresInto extracts figs concurrently over s's kernel and attaches
// every result as a pane of s, in figs order. The figures run on the
// DefaultPool under the session's key, so two sessions extracting at once
// split the workers fairly. Each figure runs its own interpreter over its
// own instrumented chain (Instrumented + Snapshot per figure — the cache
// and the span stack are single-extraction structures), but all figures
// report into s.Obs, so the process-wide metrics aggregate and every
// concurrent extraction still produces its own span tree. Pane attachment
// happens after the join, single-threaded: the pane tree is the session's
// shared mutable state.
//
// Like ExtractFigures, one failing figure never discards the others: every
// successfully extracted figure is attached as a pane (failed slots stay
// nil) and the failures come back joined in err.
func ExtractFiguresInto(s *Session, k *kernelsim.Kernel, figs []vclstdlib.Figure, workers int) ([]*panes.Pane, error) {
	results := make([]*viewcl.Result, len(figs))
	errs := make([]error, len(figs))
	DefaultPool().Run(s.poolKey(), len(figs), workers, func(i int) {
		fig := figs[i]
		var ws *Session
		if s.Obs != nil {
			ws, _ = ObservedSessionOver(k, target.WithStats(k.Target()), s.Obs,
				obs.Tag{Key: "figure", Value: fig.ID})
		} else {
			ws = SessionOver(k, target.WithStats(k.Target()))
		}
		res, err := ws.Interp.RunSource(fig.ID, fig.Program)
		if err != nil {
			errs[i] = fmt.Errorf("figure %s: %w", fig.ID, err)
			return
		}
		results[i] = res
	})
	out := make([]*panes.Pane, len(figs))
	for i, fig := range figs {
		if results[i] == nil {
			continue // extraction failed; its error is already in errs[i]
		}
		s.log("vplot fig" + fig.ID)
		p, err := s.attachPane("fig"+fig.ID, fig.Program, results[i])
		if err != nil {
			errs[i] = fmt.Errorf("figure %s: %w", fig.ID, err)
			continue
		}
		out[i] = p
	}
	return out, errors.Join(errs...)
}
