package core

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"visualinux/internal/coredump"
	"visualinux/internal/ctypes"
	"visualinux/internal/kernelsim"
	"visualinux/internal/mem"
	"visualinux/internal/obs"
	"visualinux/internal/vclstdlib"
)

// SessionManager is the multi-tenant fabric from ROADMAP item 1: one
// process hosts many independent debugging sessions, keyed by client-chosen
// IDs, sharing every piece of immutable infrastructure (the ctypes
// registry, the parsed+compiled ViewCL stdlib, the global extraction pool)
// while keeping all mutable state — kernel image, snapshot, memo, pane
// tree, stream broker — strictly per session.
//
// Admission control is capacity-based: a configurable session-count cap, a
// per-session kernel footprint cap, and a total memory budget under which
// least-recently-used sessions are evicted to make room. Idle sessions are
// reaped by TTL, either on demand (every Create sweeps first) or from a
// caller's periodic SweepIdle.
type SessionManager struct {
	opts ManagerOptions

	// Tenants carries the fabric's metrics in the serving process's
	// registry (nil when the manager runs unobserved).
	Tenants *obs.TenantMetrics

	// OnEvict, when set, fires after a session leaves the map — for any
	// reason other than an explicit Delete — while still holding the
	// manager lock. The serving layer uses it to tear down per-session
	// serving state (brokers, caches). Keep it cheap.
	OnEvict func(id string, ms *ManagedSession)

	mu       sync.Mutex
	sessions map[string]*ManagedSession
}

// ManagerOptions bounds the fabric.
type ManagerOptions struct {
	MaxSessions int // session-count admission cap (<= 0: DefaultMaxSessions)
	// MemBudget caps total *owned* bytes across resident sessions: private
	// (CoW-broken) pages in full, shared pages amortized over their holders.
	// With template admission a fleet of identical sessions therefore fits
	// in roughly one kernel image of budget, not N. 0 = unbounded
	// (LRU-evicts to fit).
	MemBudget     uint64
	SessionBudget uint64           // per-session kernel footprint cap; 0 = unbounded (rejects)
	IdleTTL       time.Duration    // evict sessions idle this long; 0 = never
	Now           func() time.Time // injectable clock for TTL tests; nil = time.Now
	// PrivateBuilds admits each session with its own privately built kernel
	// instead of forking the shared template image — the pre-CoW behavior,
	// kept as an escape hatch and as the bench's comparison arm.
	PrivateBuilds bool
}

// DefaultMaxSessions is the default session-count admission cap.
const DefaultMaxSessions = 256

// ManagedSession is one resident tenant: a full single-session pipeline
// (kernel, incremental extractor, workload) plus the bookkeeping the
// manager evicts and reports by.
type ManagedSession struct {
	ID      string
	Session *Session
	// Source records the attach mode. Kernel and Workload are nil for
	// post-mortem (core dump) sessions: there is no simulator to step,
	// only a frozen image to extract from.
	Source    SourceKind
	Kernel    *kernelsim.Kernel
	Extractor *IncrementalExtractor
	Workload  *kernelsim.Workload
	// Mem is the session's memory image — the kernel's for live sessions,
	// the loaded dump's for core sessions. Budget accounting and release
	// go through it so both attach modes are charged the same way.
	Mem *mem.Memory
	// Obs is the session's own observer (registry, slow log, trace store):
	// tenants never share mutable observability state, only the bounded
	// session-labeled series the manager exports process-wide.
	Obs     *obs.Observer
	Figures []vclstdlib.Figure
	// MemBytes is the kernel's mapped footprint (the address-space view,
	// fixed at admission). Budget accounting uses OwnedBytes instead, which
	// shrinks as pages are shared and grows as CoW breaks privatize them.
	MemBytes uint64
	Created  time.Time

	lastUsed atomic.Int64 // unix nanos
	rounds   atomic.Int64
	mgr      *SessionManager
}

// SourceKind selects a session's attach mode at admission.
type SourceKind string

const (
	// SourceSim is the default: build (or template-fork) a live simulated
	// kernel and step it under the canned workload.
	SourceSim SourceKind = "sim"
	// SourceCore attaches post-mortem: load a VLCORE01 dump into a
	// read-only target. No workload, no rounds beyond the cold one.
	SourceCore SourceKind = "core"
)

// SessionOptions configures one tenant at admission.
type SessionOptions struct {
	// Source picks the attach mode; empty means SourceSim.
	Source SourceKind
	// Kernel configures the simulated kernel (SourceSim only).
	Kernel kernelsim.Options
	// CoreImage is the raw dump to load (SourceCore only).
	CoreImage []byte
	Figures   []string // stdlib figure IDs; empty = every figure
}

// Sentinel errors the REST layer maps to status codes.
var (
	ErrSessionExists   = errors.New("session already exists")
	ErrTooManySessions = errors.New("session limit reached")
	ErrMemBudget       = errors.New("memory budget exceeded")
	// ErrPostMortem rejects workload steps against a core-dump session:
	// the target is a frozen image, there is nothing to advance.
	ErrPostMortem = errors.New("post-mortem session has no workload")
)

// NewSessionManager creates the fabric. o is the serving process's observer
// for the session-labeled metrics (nil disables them).
func NewSessionManager(opts ManagerOptions, o *obs.Observer) *SessionManager {
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = DefaultMaxSessions
	}
	m := &SessionManager{opts: opts, sessions: make(map[string]*ManagedSession)}
	if o != nil {
		m.Tenants = obs.NewTenantMetrics(o.Registry, 0)
		registerFleetMemMetrics(o, m)
	}
	return m
}

// registerFleetMemMetrics exports the CoW page-store and fleet-residency
// series: how many bytes the fleet really holds (unique), how many it would
// hold without sharing (mapped), and the dedup/CoW counters behind the
// difference.
func registerFleetMemMetrics(o *obs.Observer, m *SessionManager) {
	r := o.Registry
	stats := func() mem.StoreStats { return kernelsim.SharedStore().Stats() }
	r.GaugeFunc("vl_mem_store_unique_bytes", "distinct page bytes resident in the CoW store", func() float64 {
		return float64(stats().UniqueBytes)
	})
	r.GaugeFunc("vl_mem_store_shared_bytes", "page bytes mapped from the CoW store across all memories (sum of refcounts)", func() float64 {
		return float64(stats().SharedBytes)
	})
	r.GaugeFunc("vl_mem_store_dedup_hits_total", "page interns satisfied by an already-resident identical page", func() float64 {
		return float64(stats().DedupHits)
	})
	r.GaugeFunc("vl_mem_store_cow_breaks_total", "shared pages privatized by session writes", func() float64 {
		return float64(stats().CowBreaks)
	})
	r.GaugeFunc("vl_fleet_owned_bytes", "owned (unique-equivalent) bytes across resident sessions", func() float64 {
		return float64(m.TotalMem())
	})
}

func (m *SessionManager) now() time.Time {
	if m.opts.Now != nil {
		return m.opts.Now()
	}
	return time.Now()
}

// resolveFigures maps requested IDs to stdlib figures (all when empty).
func resolveFigures(ids []string) ([]vclstdlib.Figure, error) {
	if len(ids) == 0 {
		return vclstdlib.Figures(), nil
	}
	figs := make([]vclstdlib.Figure, 0, len(ids))
	for _, id := range ids {
		f, ok := vclstdlib.FigureByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown figure %q", id)
		}
		figs = append(figs, f)
	}
	return figs, nil
}

// Create admits a new session: builds its kernel, applies admission
// control, and runs the cold extraction round (through the global pool,
// under the session's fairness key) so the returned session is immediately
// servable. A non-nil error with a non-nil session means the session is
// resident but some figures failed to extract — the serving layer reports
// those as warnings.
func (m *SessionManager) Create(id string, opts SessionOptions) (*ManagedSession, error) {
	if id == "" {
		return nil, errors.New("empty session ID")
	}
	figs, err := resolveFigures(opts.Figures)
	if err != nil {
		return nil, err
	}

	// Image acquisition happens outside the manager lock. The live path
	// forks the shared template image for this config — microseconds, all
	// pages shared copy-on-write; only the first request for a config pays
	// a build (PrivateBuilds keeps the old build-per-session behavior).
	// The core path parses the dump into a fresh private image and binds
	// its symbols against a locally reconstructed type registry, like GDB
	// loading vmlinux for a vmcore. A racing Create of the same ID wastes
	// one fork/build/load and gets ErrSessionExists, which is the correct
	// answer.
	so := obs.NewObserver()
	ms := &ManagedSession{
		ID: id, Obs: so, Figures: figs, Created: m.now(), mgr: m,
	}
	switch opts.Source {
	case "", SourceSim:
		ms.Source = SourceSim
		var k *kernelsim.Kernel
		if m.opts.PrivateBuilds {
			k = kernelsim.Build(opts.Kernel)
		} else {
			k = kernelsim.FromTemplate(opts.Kernel)
		}
		ms.Kernel = k
		ms.Mem = k.Mem
		ms.Extractor = NewIncrementalExtractor(k, k.Target(), figs, so)
		ms.Workload = kernelsim.NewWorkload(k)
	case SourceCore:
		reg := kernelsim.RegisterTypes(ctypes.NewRegistry())
		tgt, err := coredump.Load(bytes.NewReader(opts.CoreImage), reg)
		if err != nil {
			m.reject()
			return nil, err
		}
		ms.Source = SourceCore
		ms.Mem = tgt.Mem
		ms.Extractor = NewIncrementalExtractor(nil, tgt, figs, so)
	default:
		return nil, fmt.Errorf("unknown session source %q", opts.Source)
	}
	_, memBytes := ms.Mem.Footprint()
	if m.opts.SessionBudget > 0 && memBytes > m.opts.SessionBudget {
		m.reject()
		ms.Mem.Release()
		return nil, fmt.Errorf("%w: image footprint %d > per-session budget %d",
			ErrMemBudget, memBytes, m.opts.SessionBudget)
	}
	ms.MemBytes = memBytes
	ms.Session = ms.Extractor.Session
	ms.lastUsed.Store(ms.Created.UnixNano())

	if err := m.admit(ms); err != nil {
		ms.Mem.Release()
		return nil, err
	}

	// Cold round: extract every figure once so panes exist before the first
	// client request. Runs on the pool so N concurrent creates share the
	// worker population fairly with already-running sessions.
	_, xerr := ms.Round()
	return ms, xerr
}

// admit inserts ms under the capacity rules, evicting idle/LRU sessions as
// the rules allow.
func (m *SessionManager) admit(ms *ManagedSession) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.sessions[ms.ID]; ok {
		m.rejectLocked()
		return fmt.Errorf("%w: %q", ErrSessionExists, ms.ID)
	}
	m.sweepIdleLocked()
	// Memory pressure evicts least-recently-used tenants; the session cap
	// does not (every resident session is within TTL and budget — the
	// client asked for more concurrency than the operator provisioned).
	// Owned bytes are dynamic (evicting a sibling shifts its amortized
	// share onto the survivors), so the loop recomputes; each eviction
	// strictly shrinks the fleet's unique bytes, so it terminates.
	if m.opts.MemBudget > 0 {
		for m.totalMemLocked()+ms.OwnedBytes() > m.opts.MemBudget && len(m.sessions) > 0 {
			m.evictLRULocked()
		}
		if total := m.totalMemLocked(); total+ms.OwnedBytes() > m.opts.MemBudget {
			m.rejectLocked()
			return fmt.Errorf("%w: %d + %d owned > budget %d",
				ErrMemBudget, total, ms.OwnedBytes(), m.opts.MemBudget)
		}
	}
	if len(m.sessions) >= m.opts.MaxSessions {
		m.rejectLocked()
		return fmt.Errorf("%w: %d resident", ErrTooManySessions, len(m.sessions))
	}
	m.sessions[ms.ID] = ms
	if m.Tenants != nil {
		m.Tenants.Created.Inc()
		m.publishGaugesLocked()
	}
	return nil
}

// Attach resolves a live session and marks it used (the TTL clock resets).
func (m *SessionManager) Attach(id string) (*ManagedSession, bool) {
	m.mu.Lock()
	ms, ok := m.sessions[id]
	m.mu.Unlock()
	if ok {
		ms.Touch()
	}
	return ms, ok
}

// Touch marks the session used now.
func (ms *ManagedSession) Touch() { ms.lastUsed.Store(ms.mgr.now().UnixNano()) }

// LastUsed reports when the session last served anything.
func (ms *ManagedSession) LastUsed() time.Time { return time.Unix(0, ms.lastUsed.Load()) }

// Rounds reports how many extraction rounds the session has run.
func (ms *ManagedSession) Rounds() int64 { return ms.rounds.Load() }

// Round drives one extraction round — cold the first time, delta after —
// scheduled on the global pool under the session's key, so a tenant
// free-running rounds shares workers fairly with every other tenant. The
// caller (the serving layer) must serialize rounds per session, as it
// already does for single-session stop events.
func (ms *ManagedSession) Round() ([]RoundResult, error) {
	var out []RoundResult
	var err error
	DefaultPool().Run("session:"+ms.ID, 1, 1, func(int) {
		t0 := time.Now()
		out, err = ms.Extractor.Round()
		if ms.mgr != nil && ms.mgr.Tenants != nil {
			ms.mgr.Tenants.ObserveRound(ms.ID, time.Since(t0))
		}
	})
	ms.rounds.Add(1)
	ms.Touch()
	return out, err
}

// StepRound advances the session's canned workload one step, marks the
// stop boundary, and runs the delta round — the managed analogue of the
// single-session free-run loop. Post-mortem sessions refuse: a core image
// is frozen.
func (ms *ManagedSession) StepRound() ([]RoundResult, error) {
	if ms.Workload == nil {
		return nil, fmt.Errorf("%w: %q", ErrPostMortem, ms.ID)
	}
	ms.Workload.Step()
	ms.Extractor.Advance()
	return ms.Round()
}

// Delete removes a session by request. Unlike eviction it does not fire
// OnEvict: the caller tearing the session down is the serving layer itself.
func (m *SessionManager) Delete(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	ms, ok := m.sessions[id]
	if !ok {
		return false
	}
	m.removeLocked(ms)
	if m.Tenants != nil {
		m.Tenants.Deleted.Inc()
		m.publishGaugesLocked()
	}
	return true
}

// SweepIdle evicts every session idle past the TTL and returns their IDs.
// Serving processes call it periodically; Create sweeps implicitly.
func (m *SessionManager) SweepIdle() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := m.sweepIdleLocked()
	if len(ids) > 0 && m.Tenants != nil {
		m.publishGaugesLocked()
	}
	return ids
}

func (m *SessionManager) sweepIdleLocked() []string {
	if m.opts.IdleTTL <= 0 {
		return nil
	}
	cutoff := m.now().Add(-m.opts.IdleTTL).UnixNano()
	var ids []string
	for id, ms := range m.sessions {
		if ms.lastUsed.Load() < cutoff {
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		m.evictLocked(m.sessions[id])
	}
	return ids
}

// evictLRULocked evicts the least-recently-used session.
func (m *SessionManager) evictLRULocked() {
	var lru *ManagedSession
	for _, ms := range m.sessions {
		if lru == nil || ms.lastUsed.Load() < lru.lastUsed.Load() {
			lru = ms
		}
	}
	if lru != nil {
		m.evictLocked(lru)
	}
}

func (m *SessionManager) evictLocked(ms *ManagedSession) {
	m.removeLocked(ms)
	if m.Tenants != nil {
		m.Tenants.Evicted.Inc()
	}
	if m.OnEvict != nil {
		m.OnEvict(ms.ID, ms)
	}
}

func (m *SessionManager) removeLocked(ms *ManagedSession) {
	delete(m.sessions, ms.ID)
	// Drop the session's CoW store references so its share stops counting
	// against the budget. The memory stays readable: an in-flight round on
	// another goroutine finishes against the still-immutable pages.
	ms.Mem.Release()
	if m.Tenants != nil {
		m.Tenants.Release(ms.ID)
	}
}

func (m *SessionManager) reject() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejectLocked()
}

func (m *SessionManager) rejectLocked() {
	if m.Tenants != nil {
		m.Tenants.Rejected.Inc()
	}
}

func (m *SessionManager) publishGaugesLocked() {
	m.Tenants.Active.Set(float64(len(m.sessions)))
	m.Tenants.MemBytes.Set(float64(m.totalMemLocked()))
}

// Len reports the resident session count.
func (m *SessionManager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// totalMemLocked recomputes the fleet's owned bytes: every resident
// session's private pages in full plus its amortized share of each shared
// page. Recomputed rather than cached because shares shift on every fork,
// CoW break, and eviction; the walk is O(resident pages) of atomic loads.
func (m *SessionManager) totalMemLocked() uint64 {
	var total uint64
	for _, ms := range m.sessions {
		total += ms.OwnedBytes()
	}
	return total
}

// TotalMem reports the owned (unique-equivalent) bytes resident across
// sessions — the quantity MemBudget caps. By construction this equals the
// sum over resident sessions of OwnedBytes(); the lifecycle invariant test
// holds the manager to it.
func (m *SessionManager) TotalMem() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totalMemLocked()
}

// OwnedBytes reports the session's current owned bytes: CoW-broken private
// pages in full plus an amortized share of every page still shared through
// the store.
func (ms *ManagedSession) OwnedBytes() uint64 { return ms.Mem.OwnedBytes() }

// MemResidency returns the session's private/shared/owned breakdown for the
// debug surface.
func (ms *ManagedSession) MemResidency() mem.Residency { return ms.Mem.Residency() }

// SessionInfo is one tenant's manager-level health row. MemBytes is the
// mapped footprint; the residency triple breaks it down under CoW sharing
// (owned = private + amortized share of shared pages — what the budget
// charges).
type SessionInfo struct {
	ID           string    `json:"id"`
	Source       string    `json:"source"`
	Created      time.Time `json:"created"`
	IdleSeconds  float64   `json:"idle_seconds"`
	MemBytes     uint64    `json:"mem_bytes"`
	OwnedBytes   uint64    `json:"owned_bytes"`
	PrivateBytes uint64    `json:"private_bytes"`
	SharedBytes  uint64    `json:"shared_bytes"`
	Rounds       int64     `json:"rounds"`
	Figures      []string  `json:"figures"`
}

// List snapshots every resident session, sorted by ID.
func (m *SessionManager) List() []SessionInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	out := make([]SessionInfo, 0, len(m.sessions))
	for _, ms := range m.sessions {
		figIDs := make([]string, len(ms.Figures))
		for i, f := range ms.Figures {
			figIDs[i] = f.ID
		}
		res := ms.MemResidency()
		out = append(out, SessionInfo{
			ID:           ms.ID,
			Source:       string(ms.Source),
			Created:      ms.Created,
			IdleSeconds:  now.Sub(ms.LastUsed()).Seconds(),
			MemBytes:     ms.MemBytes,
			OwnedBytes:   res.OwnedBytes,
			PrivateBytes: res.PrivateBytes,
			SharedBytes:  res.SharedBytes,
			Rounds:       ms.Rounds(),
			Figures:      figIDs,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
