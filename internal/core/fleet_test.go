package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"visualinux/internal/coredump"
	"visualinux/internal/kernelsim"
	"visualinux/internal/obs"
)

// fleetOpts is a small heterogeneous fleet: same figure everywhere, but
// divergent workload shapes so every target's result set differs.
var fleetOpts = []SessionOptions{
	{Kernel: kernelsim.Options{Processes: 2, ThreadsPerProc: 1, VMAsPerProcess: 2, PagesPerFile: 2}, Figures: []string{"7-1"}},
	{Kernel: kernelsim.Options{Processes: 3, ThreadsPerProc: 1, VMAsPerProcess: 2, PagesPerFile: 2, RunqueueSkew: 2}, Figures: []string{"7-1"}},
	{Kernel: kernelsim.Options{Processes: 2, ThreadsPerProc: 2, VMAsPerProcess: 2, PagesPerFile: 2, ZombieTasks: 2}, Figures: []string{"7-1"}},
	{Kernel: kernelsim.Options{Processes: 2, ThreadsPerProc: 1, VMAsPerProcess: 2, PagesPerFile: 2, PipeBurst: 3}, Figures: []string{"7-1"}},
}

func admitFleet(t *testing.T, m *SessionManager, order []int) *Fleet {
	t.Helper()
	for _, i := range order {
		if _, err := m.Create(fmt.Sprintf("s%d", i), fleetOpts[i%len(fleetOpts)]); err != nil {
			t.Fatalf("admit s%d: %v", i, err)
		}
	}
	return &Fleet{Mgr: m}
}

// TestFleetMergeDeterminism pins the merge contract: the same fleet admitted
// in shuffled orders answers the same query with byte-identical JSON —
// targets sorted by session ID, provenance on every ref, merge concatenated
// in that order — regardless of admission or fan-out completion order.
func TestFleetMergeDeterminism(t *testing.T) {
	q := FleetQuery{Figure: "7-1", Query: "tasks = SELECT task_struct FROM *"}
	orders := [][]int{
		{0, 1, 2, 3, 4, 5},
		{5, 3, 1, 4, 2, 0},
		{2, 0, 5, 1, 3, 4},
	}
	var want []byte
	for n, order := range orders {
		m := NewSessionManager(ManagerOptions{}, obs.NewObserver())
		f := admitFleet(t, m, order)
		res, err := f.Query(q)
		if err != nil {
			t.Fatalf("order %d: %v", n, err)
		}
		got, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			if len(res.Targets) != len(order) || len(res.Merged) == 0 {
				t.Fatalf("degenerate result: %d targets, %d merged", len(res.Targets), len(res.Merged))
			}
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("order %d: merged result differs from order 0:\n%s\nvs\n%s", n, got, want)
		}
	}
}

// TestFleetProvenance checks every merged ref is stamped with its session of
// origin and per-target slices agree with the merge.
func TestFleetProvenance(t *testing.T) {
	m := NewSessionManager(ManagerOptions{}, obs.NewObserver())
	f := admitFleet(t, m, []int{0, 1, 2})
	res, err := f.Query(FleetQuery{Figure: "7-1", Query: "tasks = SELECT task_struct FROM *"})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, tr := range res.Targets {
		if tr.Err != "" {
			t.Fatalf("target %s: %s", tr.Target, tr.Err)
		}
		if tr.Source != string(SourceSim) {
			t.Fatalf("target %s: source %q, want sim", tr.Target, tr.Source)
		}
		for _, r := range tr.Refs {
			if r.Target != tr.Target {
				t.Fatalf("ref %s carries target %q inside slice for %q", r.BoxID, r.Target, tr.Target)
			}
		}
		total += tr.Count
	}
	if total == 0 || len(res.Merged) != total {
		t.Fatalf("merge size %d, per-target sum %d", len(res.Merged), total)
	}
	if res.Set != "tasks" {
		t.Fatalf("result set %q, want tasks", res.Set)
	}
}

// TestFleetCoreVsLiveEquivalence is the post-mortem fidelity check: a live
// session and a session loaded from that same kernel's core dump must give
// identical fleet answers modulo the provenance tag.
func TestFleetCoreVsLiveEquivalence(t *testing.T) {
	opts := kernelsim.Options{Processes: 2, ThreadsPerProc: 1, VMAsPerProcess: 2, PagesPerFile: 2, RunqueueSkew: 1}
	var img bytes.Buffer
	if err := coredump.Dump(kernelsim.Build(opts).Target(), &img); err != nil {
		t.Fatal(err)
	}

	m := NewSessionManager(ManagerOptions{}, obs.NewObserver())
	if _, err := m.Create("live", SessionOptions{Kernel: opts, Figures: []string{"7-1"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("dead", SessionOptions{Source: SourceCore, CoreImage: img.Bytes(), Figures: []string{"7-1"}}); err != nil {
		t.Fatal(err)
	}
	f := &Fleet{Mgr: m}
	res, err := f.Query(FleetQuery{Figure: "7-1", Query: "busy = SELECT task_struct FROM * WHERE pid > 0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Targets) != 2 {
		t.Fatalf("targets: %d", len(res.Targets))
	}
	dead, live := res.Targets[0], res.Targets[1]
	if dead.Target != "dead" || live.Target != "live" {
		t.Fatalf("unexpected sort order: %s, %s", dead.Target, live.Target)
	}
	if dead.Source != string(SourceCore) || live.Source != string(SourceSim) {
		t.Fatalf("sources: %s/%s", dead.Source, live.Source)
	}
	if dead.Err != "" || live.Err != "" {
		t.Fatalf("errors: %q / %q", dead.Err, live.Err)
	}
	if dead.Count == 0 || dead.Count != live.Count {
		t.Fatalf("counts diverge: core %d, live %d", dead.Count, live.Count)
	}
	for i := range dead.Refs {
		dr, lr := dead.Refs[i], live.Refs[i]
		dr.Target, lr.Target = "", ""
		if dr != lr {
			t.Fatalf("ref %d diverges: %+v vs %+v", i, dr, lr)
		}
	}
}

// TestFleetQueryErrors covers the input contract.
func TestFleetQueryErrors(t *testing.T) {
	m := NewSessionManager(ManagerOptions{}, obs.NewObserver())
	f := &Fleet{Mgr: m}
	if _, err := f.Query(FleetQuery{Figure: "7-1"}); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := f.Query(FleetQuery{Query: "x = SELECT rq FROM *"}); err == nil {
		t.Fatal("missing figure accepted")
	}
	if _, err := f.Query(FleetQuery{Figure: "7-1", Query: "x = SELECT rq FROM *"}); err != ErrNoFleetSessions {
		t.Fatalf("empty fleet: %v", err)
	}
	// Per-target failure is an entry, not an abort.
	admitFleet(t, m, []int{0})
	res, err := f.Query(FleetQuery{Figure: "7-1", Query: "x = SELECT rq FROM *", Sessions: []string{"s0", "ghost"}})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]TargetResult{}
	for _, tr := range res.Targets {
		byID[tr.Target] = tr
	}
	if byID["ghost"].Err == "" {
		t.Fatal("ghost target reported no error")
	}
	if byID["s0"].Err != "" || byID["s0"].Count == 0 {
		t.Fatalf("s0: %+v", byID["s0"])
	}
	// UPDATE programs are rejected per-target: fleet scope is read-only.
	res, err = f.Query(FleetQuery{Figure: "7-1", Query: "x = SELECT rq FROM *\nUPDATE x WITH collapsed: true"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Targets[0].Err, "read-only") {
		t.Fatalf("UPDATE not rejected: %+v", res.Targets[0])
	}
}

// TestFleetChatRunqueue asks the fleet question end to end: the session
// built with RunqueueSkew piles runnable tasks onto CPU 0 and must rank
// first for "which target has the longest runqueue?".
func TestFleetChatRunqueue(t *testing.T) {
	m := NewSessionManager(ManagerOptions{}, obs.NewObserver())
	if _, err := m.Create("flat", SessionOptions{
		Kernel:  kernelsim.Options{Processes: 2, ThreadsPerProc: 1, VMAsPerProcess: 2, PagesPerFile: 2},
		Figures: []string{"7-1"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("skewed", SessionOptions{
		Kernel:  kernelsim.Options{Processes: 6, ThreadsPerProc: 2, VMAsPerProcess: 2, PagesPerFile: 2, RunqueueSkew: 4},
		Figures: []string{"7-1"},
	}); err != nil {
		t.Fatal(err)
	}
	f := &Fleet{Mgr: m}
	ans, err := f.Chat("which target has the longest runqueue?")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Ranking) != 2 {
		t.Fatalf("ranking: %+v", ans.Ranking)
	}
	if ans.Ranking[0].Target != "skewed" {
		t.Fatalf("expected skewed first: %+v", ans.Ranking)
	}
	if !strings.Contains(ans.Text, "skewed") || !strings.Contains(ans.Text, "longest runqueue") {
		t.Fatalf("answer text: %q", ans.Text)
	}
	if _, err := f.Chat("what does pane 1 show?"); err == nil {
		t.Fatal("non-fleet question accepted")
	}
}

// TestFleetHealth checks the /debug/fleet counters.
func TestFleetHealth(t *testing.T) {
	opts := kernelsim.Options{Processes: 1, ThreadsPerProc: 1, VMAsPerProcess: 2, PagesPerFile: 2}
	var img bytes.Buffer
	if err := coredump.Dump(kernelsim.Build(opts).Target(), &img); err != nil {
		t.Fatal(err)
	}
	m := NewSessionManager(ManagerOptions{}, obs.NewObserver())
	if _, err := m.Create("live", SessionOptions{Kernel: opts, Figures: []string{"7-1"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("dead", SessionOptions{Source: SourceCore, CoreImage: img.Bytes(), Figures: []string{"7-1"}}); err != nil {
		t.Fatal(err)
	}
	f := &Fleet{Mgr: m}
	if _, err := f.Query(FleetQuery{Figure: "7-1", Query: "x = SELECT rq FROM *"}); err != nil {
		t.Fatal(err)
	}
	h := f.Health()
	if h.Sessions != 2 || h.Live != 1 || h.Core != 1 {
		t.Fatalf("health counts: %+v", h)
	}
	if h.Queries != 1 || h.LastTargets != 2 {
		t.Fatalf("health query stats: %+v", h)
	}
}
