package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"visualinux/internal/vchat"
	"visualinux/internal/viewql"
)

// Fleet is ViewQL's cross-target scope (ROADMAP item 4): one query fanned
// out over many resident sessions — live sims with divergent workloads and
// post-mortem core images alike — merged back into one provenance-tagged
// result set. The fan-out runs through the global bounded pool under each
// session's fairness key, so a wide fleet query shares workers with the
// sessions' own extraction rounds instead of stampeding past them.
type Fleet struct {
	Mgr *SessionManager
	// Guard, when set, wraps each per-session query body. The serving
	// layer passes the tenant's read lock here so fleet reads coexist
	// with per-session mutations; library users (tests, benches) that
	// serialize externally may leave it nil.
	Guard func(id string, fn func())

	queries  atomic.Int64
	errors   atomic.Int64
	lastMS   atomic.Int64 // microseconds, stored as int64
	lastSize atomic.Int64 // targets in the last query
}

// ErrNoFleetSessions rejects a fleet query with nothing to fan out over.
var ErrNoFleetSessions = errors.New("no sessions in fleet scope")

// FleetQuery is one cross-target request.
type FleetQuery struct {
	// Figure aims the query at one stdlib figure's pane in every session
	// (sessions not carrying the figure report an error entry).
	Figure string `json:"figure"`
	// Query is the ViewQL program, run read-only (UPDATE is rejected).
	Query string `json:"query"`
	// Sessions restricts the scope; empty means every resident session.
	Sessions []string `json:"sessions,omitempty"`
	// Set names the result set to report; empty takes the program's last
	// SELECT destination.
	Set string `json:"set,omitempty"`
}

// TargetResult is one session's slice of a fleet query.
type TargetResult struct {
	Target string       `json:"target"`
	Source string       `json:"source"` // "sim" | "core"
	Pane   int          `json:"pane,omitempty"`
	Count  int          `json:"count"`
	Refs   []viewql.Ref `json:"refs"`
	Err    string       `json:"error,omitempty"`

	setName string // resolved result-set name (reported via FleetResult.Set)
}

// FleetResult is the merged fan-out outcome. Targets are sorted by session
// ID and Merged concatenates their ref sets in that order with provenance
// stamped on every Ref, so the same fleet and query produce byte-identical
// results regardless of admission or completion order.
type FleetResult struct {
	Figure  string         `json:"figure"`
	Query   string         `json:"query"`
	Set     string         `json:"set"`
	Targets []TargetResult `json:"targets"`
	Merged  []viewql.Ref   `json:"merged"`
}

// Query fans q across the fleet. Each session runs the program against a
// fresh read-only engine over its figure pane's graph — per-session sets
// never leak between targets — scheduled on the global pool under the
// session's fairness key. Partial failure is per-target: a session that
// lacks the figure or rejects the program contributes an error entry, not
// a query abort.
func (f *Fleet) Query(q FleetQuery) (*FleetResult, error) {
	if q.Query == "" {
		return nil, errors.New("empty fleet query")
	}
	if q.Figure == "" {
		return nil, errors.New("fleet query needs a figure")
	}
	ids := q.Sessions
	if len(ids) == 0 {
		for _, info := range f.Mgr.List() {
			ids = append(ids, info.ID)
		}
	}
	if len(ids) == 0 {
		return nil, ErrNoFleetSessions
	}
	t0 := time.Now()
	f.queries.Add(1)
	f.lastSize.Store(int64(len(ids)))

	// One outer goroutine per target, each blocking in the pool under its
	// session key: the pool's round-robin then interleaves fleet work with
	// the sessions' own rounds. The guard (tenant read lock) is taken
	// BEFORE entering the pool — the same lock→pool order the serving
	// layer's stop-event rounds use — so pool workers themselves never
	// block on tenant locks. (Tasks must not nest pool Runs, so the query
	// body itself never touches the pool.)
	results := make([]TargetResult, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			f.guarded(id, func() {
				DefaultPool().Run("session:"+id, 1, 1, func(int) {
					results[i] = f.queryOne(id, q)
				})
			})
		}(i, id)
	}
	wg.Wait()

	sort.Slice(results, func(i, j int) bool { return results[i].Target < results[j].Target })
	res := &FleetResult{Figure: q.Figure, Query: q.Query, Set: q.Set, Targets: results}
	for _, tr := range results {
		if tr.Err != "" {
			f.errors.Add(1)
		}
		if res.Set == "" && tr.Err == "" {
			res.Set = tr.setName
		}
		res.Merged = append(res.Merged, tr.Refs...)
	}
	f.lastMS.Store(time.Since(t0).Microseconds())
	return res, nil
}

// guarded runs fn under the serving layer's per-session guard when one is
// installed.
func (f *Fleet) guarded(id string, fn func()) {
	if f.Guard != nil {
		f.Guard(id, fn)
	} else {
		fn()
	}
}

// queryOne runs the program against one session's figure pane. The caller
// holds the session guard.
func (f *Fleet) queryOne(id string, q FleetQuery) TargetResult {
	tr := TargetResult{Target: id}
	ms, ok := f.Mgr.Attach(id)
	if !ok {
		tr.Err = "no such session"
		return tr
	}
	tr.Source = string(ms.Source)
	paneID, ok := ms.Extractor.PaneFor(q.Figure)
	if !ok {
		tr.Err = fmt.Sprintf("figure %s not attached", q.Figure)
		return tr
	}
	p, ok := ms.Session.Tree.Pane(paneID)
	if !ok {
		tr.Err = fmt.Sprintf("pane %d missing", paneID)
		return tr
	}
	tr.Pane = paneID
	eng := viewql.NewEngine(p.Graph)
	eng.ReadOnly = true
	if err := eng.Apply(q.Query); err != nil {
		tr.Err = err.Error()
		return tr
	}
	set := q.Set
	if set == "" {
		set = eng.LastSet
	}
	if set == "" {
		tr.Err = "program defines no result set"
		return tr
	}
	tr.setName = set
	refs := eng.Set(set)
	tr.Refs = make([]viewql.Ref, len(refs))
	for i, r := range refs {
		r.Target = id
		tr.Refs[i] = r
	}
	tr.Count = len(tr.Refs)
	return tr
}

// FleetHealth is the /debug/fleet surface: the fan-out counters plus the
// per-session rows the fleet would scope over.
type FleetHealth struct {
	Sessions     int           `json:"sessions"`
	Live         int           `json:"live"`
	Core         int           `json:"core"`
	Queries      int64         `json:"queries"`
	TargetErrors int64         `json:"target_errors"`
	LastFanoutMS float64       `json:"last_fanout_ms"`
	LastTargets  int64         `json:"last_targets"`
	Members      []SessionInfo `json:"members"`
}

// Health snapshots the fleet.
func (f *Fleet) Health() FleetHealth {
	members := f.Mgr.List()
	h := FleetHealth{
		Sessions:     len(members),
		Queries:      f.queries.Load(),
		TargetErrors: f.errors.Load(),
		LastFanoutMS: float64(f.lastMS.Load()) / 1000,
		LastTargets:  f.lastSize.Load(),
		Members:      members,
	}
	for _, m := range members {
		if m.Source == string(SourceCore) {
			h.Core++
		} else {
			h.Live++
		}
	}
	return h
}

// FleetRank is one entry of a ranked fleet answer, best first.
type FleetRank struct {
	Target string  `json:"target"`
	Value  float64 `json:"value"`
	Detail string  `json:"detail,omitempty"`
}

// FleetAnswer is a ranked natural-language fleet response.
type FleetAnswer struct {
	Question string      `json:"question"`
	Text     string      `json:"text"`
	Ranking  []FleetRank `json:"ranking"`
}

// Chat answers an IntentFleet question by running the fan-out and ranking
// with the session-level diagnosis machinery: "which target has the
// longest runqueue?" fleet-queries the scheduler figure and ranks rq
// nr_running; "which fleet member has pane 3 slowest?" ranks the panes'
// retained extraction rounds.
func (f *Fleet) Chat(text string) (*FleetAnswer, error) {
	intent, pane := vchat.Classify(text)
	if intent != vchat.IntentFleet {
		return nil, fmt.Errorf("not a fleet question: %q", text)
	}
	low := strings.ToLower(text)
	switch {
	case strings.Contains(low, "runqueue") || strings.Contains(low, "run queue"):
		return f.rankRunqueues(text)
	case strings.Contains(low, "slow"):
		return f.rankSlowest(text, pane)
	}
	return nil, fmt.Errorf("unsupported fleet question: %q", text)
}

// schedFigure is the stdlib figure carrying the CFS run queue (ULK 7-1).
const schedFigure = "7-1"

// rankRunqueues fleet-queries the scheduler figure and ranks targets by
// their largest rq.nr_running.
func (f *Fleet) rankRunqueues(question string) (*FleetAnswer, error) {
	res, err := f.Query(FleetQuery{
		Figure: schedFigure,
		Query:  "rqs = SELECT rq FROM *",
	})
	if err != nil {
		return nil, err
	}
	ans := &FleetAnswer{Question: question}
	for _, tr := range res.Targets {
		if tr.Err != "" {
			continue
		}
		ms, ok := f.Mgr.Attach(tr.Target)
		if !ok {
			continue
		}
		best := -1.0
		detail := ""
		readRanks := func() {
			p, ok := ms.Session.Tree.Pane(tr.Pane)
			if !ok {
				return
			}
			for _, ref := range tr.Refs {
				b, ok := p.Graph.Get(ref.BoxID)
				if !ok {
					continue
				}
				if it, ok := b.Member("nr_running"); ok && it.IsNum && float64(it.Raw) > best {
					best = float64(it.Raw)
					detail = fmt.Sprintf("%s nr_running=%d", ref.BoxID, it.Raw)
				}
			}
		}
		f.guarded(tr.Target, readRanks)
		if best >= 0 {
			ans.Ranking = append(ans.Ranking, FleetRank{Target: tr.Target, Value: best, Detail: detail})
		}
	}
	if len(ans.Ranking) == 0 {
		return nil, fmt.Errorf("no target reported a runqueue")
	}
	sortRanks(ans.Ranking)
	top := ans.Ranking[0]
	ans.Text = fmt.Sprintf("target %s has the longest runqueue (%s) across %d targets",
		top.Target, top.Detail, len(ans.Ranking))
	return ans, nil
}

// rankSlowest ranks targets by a pane's latest retained round duration
// (pane 0 means each session's slowest pane), via the existing Diagnosis
// machinery.
func (f *Fleet) rankSlowest(question string, pane int) (*FleetAnswer, error) {
	ans := &FleetAnswer{Question: question}
	for _, info := range f.Mgr.List() {
		ms, ok := f.Mgr.Attach(info.ID)
		if !ok {
			continue
		}
		var d *vchat.Diagnosis
		var err error
		body := func() {
			if pane > 0 {
				d, err = ms.Session.Diagnose(pane)
			} else {
				d, err = ms.Session.DiagnoseSlowest()
			}
		}
		f.guarded(info.ID, body)
		if err != nil || d == nil {
			continue
		}
		ans.Ranking = append(ans.Ranking, FleetRank{
			Target: info.ID,
			Value:  d.TotalMS,
			Detail: fmt.Sprintf("pane %d (%s) %.2fms, suspect %s", d.Pane, d.Figure, d.TotalMS, d.Suspect),
		})
	}
	if len(ans.Ranking) == 0 {
		return nil, fmt.Errorf("no target has retained rounds for that pane")
	}
	sortRanks(ans.Ranking)
	top := ans.Ranking[0]
	ans.Text = fmt.Sprintf("fleet member %s is slowest: %s", top.Target, top.Detail)
	return ans, nil
}

// sortRanks orders best-first (highest value), ties by target ID so the
// answer is deterministic.
func sortRanks(rs []FleetRank) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Value != rs[j].Value {
			return rs[i].Value > rs[j].Value
		}
		return rs[i].Target < rs[j].Target
	})
}
