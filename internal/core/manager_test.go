package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"visualinux/internal/kernelsim"
	"visualinux/internal/obs"
)

// tinyKernel keeps manager tests fast: one process, minimal page cache.
var tinyKernel = kernelsim.Options{
	Processes: 1, ThreadsPerProc: 1, VMAsPerProcess: 2, PagesPerFile: 2,
}

func tinySession() SessionOptions {
	return SessionOptions{Kernel: tinyKernel, Figures: []string{"7-1"}}
}

// fakeClock is the injectable TTL clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestSessionLifecycleMatrix walks create → extract → idle-evict →
// re-attach, the core row of the lifecycle matrix.
func TestSessionLifecycleMatrix(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	m := NewSessionManager(ManagerOptions{IdleTTL: time.Minute, Now: clk.now}, obs.NewObserver())

	var evicted []string
	m.OnEvict = func(id string, _ *ManagedSession) { evicted = append(evicted, id) }

	// Create + cold extract.
	ms, err := m.Create("alpha", tinySession())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if ms.Session.Tree == nil || len(ms.Session.Tree.Panes()) != 1 {
		t.Fatal("cold round did not attach the figure pane")
	}

	// A steady round after the workload ran.
	clk.advance(30 * time.Second)
	if _, err := ms.StepRound(); err != nil {
		t.Fatalf("steady round: %v", err)
	}

	// Attach keeps it alive across sweeps.
	clk.advance(45 * time.Second)
	if _, ok := m.Attach("alpha"); !ok {
		t.Fatal("attach lost a live session")
	}
	if ids := m.SweepIdle(); len(ids) != 0 {
		t.Fatalf("recently used session swept: %v", ids)
	}

	// Idle past the TTL: the sweep evicts it and fires the teardown hook.
	clk.advance(2 * time.Minute)
	if ids := m.SweepIdle(); len(ids) != 1 || ids[0] != "alpha" {
		t.Fatalf("sweep = %v, want [alpha]", ids)
	}
	if len(evicted) != 1 || evicted[0] != "alpha" {
		t.Fatalf("OnEvict saw %v", evicted)
	}
	if _, ok := m.Attach("alpha"); ok {
		t.Fatal("attach resolved an evicted session")
	}
	if m.Len() != 0 || m.TotalMem() != 0 {
		t.Fatalf("evicted session still accounted: len=%d mem=%d", m.Len(), m.TotalMem())
	}

	// Re-attach after eviction = create again under the same ID.
	if _, err := m.Create("alpha", tinySession()); err != nil {
		t.Fatalf("re-create after eviction: %v", err)
	}

	tm := m.Tenants
	if tm.Created.Value() != 2 || tm.Evicted.Value() != 1 {
		t.Fatalf("lifecycle counters: created=%d evicted=%d", tm.Created.Value(), tm.Evicted.Value())
	}
}

// TestSessionManagerMemBudgetEviction fills the total memory budget and
// checks the least-recently-used tenant is evicted to admit the newcomer.
// Private builds keep each session's owned bytes at its full footprint, so
// the budget math stays exact; fork-based admission is exercised separately
// by the fleet-memory tests.
func TestSessionManagerMemBudgetEviction(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	probe, err := NewSessionManager(ManagerOptions{PrivateBuilds: true}, nil).Create("probe", tinySession())
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	per := probe.OwnedBytes()

	m := NewSessionManager(ManagerOptions{MemBudget: 2*per + per/2, Now: clk.now, PrivateBuilds: true}, obs.NewObserver())
	var evicted []string
	m.OnEvict = func(id string, _ *ManagedSession) { evicted = append(evicted, id) }

	if _, err := m.Create("a", tinySession()); err != nil {
		t.Fatal(err)
	}
	clk.advance(time.Second)
	if _, err := m.Create("b", tinySession()); err != nil {
		t.Fatal(err)
	}
	clk.advance(time.Second)
	m.Attach("a") // b becomes LRU
	clk.advance(time.Second)

	if _, err := m.Create("c", tinySession()); err != nil {
		t.Fatalf("create under memory pressure: %v", err)
	}
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted %v, want the LRU session [b]", evicted)
	}
	if m.Len() != 2 {
		t.Fatalf("len = %d, want 2", m.Len())
	}
	if m.Tenants.Evicted.Value() != 1 {
		t.Fatalf("evicted counter = %d", m.Tenants.Evicted.Value())
	}
}

// TestSessionManagerAdmission covers the reject paths: duplicate ID,
// session-count cap, per-session footprint cap, unknown figure.
func TestSessionManagerAdmission(t *testing.T) {
	m := NewSessionManager(ManagerOptions{MaxSessions: 1, SessionBudget: 1 << 40}, obs.NewObserver())
	if _, err := m.Create("a", tinySession()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("a", tinySession()); !errors.Is(err, ErrSessionExists) {
		t.Fatalf("duplicate ID: %v", err)
	}
	if _, err := m.Create("b", tinySession()); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("over cap: %v", err)
	}

	tight := NewSessionManager(ManagerOptions{SessionBudget: 1}, obs.NewObserver())
	if _, err := tight.Create("big", tinySession()); !errors.Is(err, ErrMemBudget) {
		t.Fatalf("over per-session budget: %v", err)
	}
	if tight.Tenants.Rejected.Value() != 1 {
		t.Fatalf("rejected counter = %d", tight.Tenants.Rejected.Value())
	}

	if _, err := m.Create("c", SessionOptions{Kernel: tinyKernel, Figures: []string{"no-such-fig"}}); err == nil {
		t.Fatal("unknown figure admitted")
	}
}

// TestSessionManagerConcurrentCreateDelete hammers create/delete of the
// same ID from many goroutines — the -race row of the lifecycle matrix.
func TestSessionManagerConcurrentCreateDelete(t *testing.T) {
	m := NewSessionManager(ManagerOptions{MaxSessions: 8}, obs.NewObserver())
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				ms, err := m.Create("contested", tinySession())
				if err != nil && !errors.Is(err, ErrSessionExists) {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if ms != nil && err == nil {
					if _, ok := m.Attach("contested"); ok {
						m.Delete("contested")
					}
				}
			}
		}(g)
	}
	// Distinct IDs churn alongside the contested one.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				id := fmt.Sprintf("own-%d-%d", g, i)
				if _, err := m.Create(id, tinySession()); err != nil {
					t.Errorf("%s: %v", id, err)
					return
				}
				m.Delete(id)
			}
		}(g)
	}
	wg.Wait()
	m.Delete("contested")
	if m.Len() != 0 {
		t.Fatalf("sessions leaked: %d resident", m.Len())
	}
	if m.TotalMem() != 0 {
		t.Fatalf("memory accounting leaked: %d bytes", m.TotalMem())
	}
}
