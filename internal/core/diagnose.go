package core

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"visualinux/internal/vchat"
)

// This file wires the vchat diagnosis layer to a session: pane→figure
// mapping, the steady-state bench baseline, and the intent-routed
// VChatAnswer entry point the REPL and the HTTP server share.

// SetBaseline installs a figure→steady-state-milliseconds baseline table
// (keys as the bench writes them, e.g. "3-6"; pane figure names like
// "fig3-6" are normalized on lookup).
func (s *Session) SetBaseline(steadyMS map[string]float64) {
	s.baselineMu.Lock()
	defer s.baselineMu.Unlock()
	s.baseline = steadyMS
}

// LoadBaselineFile reads a perfbench result file (BENCH_4.json shape:
// {"rows":[{"figure":"3-6","steady_kgdb_ms":5.5,...},...]}) and installs
// its steady-state figures as the diagnosis baseline. Rows whose steady
// round was fully figure-reused (0 ms) are skipped — a zero baseline would
// make every ratio infinite.
func (s *Session) LoadBaselineFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var doc struct {
		Rows []struct {
			Figure   string  `json:"figure"`
			SteadyMS float64 `json:"steady_kgdb_ms"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	table := make(map[string]float64)
	for _, r := range doc.Rows {
		if r.SteadyMS > 0 {
			table[r.Figure] = r.SteadyMS
		}
	}
	if len(table) == 0 {
		return fmt.Errorf("baseline %s: no rows with a nonzero steady_kgdb_ms", path)
	}
	s.SetBaseline(table)
	return nil
}

// baselineFor looks a figure up in the installed baseline, tolerating the
// "fig" prefix pane names carry over bench row keys.
func (s *Session) baselineFor(figure string) (float64, bool) {
	s.baselineMu.RLock()
	defer s.baselineMu.RUnlock()
	if s.baseline == nil {
		return 0, false
	}
	if ms, ok := s.baseline[figure]; ok {
		return ms, true
	}
	ms, ok := s.baseline[strings.TrimPrefix(figure, "fig")]
	return ms, ok
}

// Figure reports the figure/extraction name a pane was plotted from.
func (s *Session) Figure(paneID int) (string, bool) {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	f, ok := s.figures[paneID]
	return f, ok
}

// observations packages the session's retained data for the vchat
// diagnosis layer.
func (s *Session) observations() vchat.Observations {
	return vchat.Observations{
		Obs:      s.Obs,
		Figure:   s.Figure,
		Baseline: s.baselineFor,
		Stream:   s.StreamHealth,
	}
}

// Diagnose answers "why is pane N slow?" from the pane's retained span
// trees (never from /debug/trace).
func (s *Session) Diagnose(paneID int) (*vchat.Diagnosis, error) {
	if s.Obs == nil {
		return nil, fmt.Errorf("diagnose: session is not observed")
	}
	return s.observations().Diagnose(paneID)
}

// DiagnoseSlowest diagnoses whichever pane's latest retained round was
// slowest.
func (s *Session) DiagnoseSlowest() (*vchat.Diagnosis, error) {
	if s.Obs == nil {
		return nil, fmt.Errorf("diagnose: session is not observed")
	}
	return s.observations().Slowest()
}

// DiagnoseChanges compares a pane's last two retained rounds.
func (s *Session) DiagnoseChanges(paneID int) (*vchat.ChangeReport, error) {
	if s.Obs == nil {
		return nil, fmt.Errorf("diagnose: session is not observed")
	}
	return s.observations().Changes(paneID)
}

// DiagnoseStream answers "why is my stream laggy?" from the fan-out
// broker's health snapshot and the retained fan-out round traces.
func (s *Session) DiagnoseStream() (*vchat.StreamReport, error) {
	return s.observations().StreamLag()
}

// VChat answer kinds.
const (
	AnswerViewQL    = "viewql"    // out is a synthesized ViewQL program (already applied)
	AnswerDiagnosis = "diagnosis" // out is rendered diagnosis text
)

// VChatAnswer is the intent-routed vchat entry point: visualization
// requests synthesize and apply ViewQL exactly like VChat; performance
// questions ("why is pane 3 slow?", "which pane is slowest?", "what
// changed since the last stop?") are answered from retained span trees.
// A pane named in the text overrides the addressed pane.
func (s *Session) VChatAnswer(paneID int, text string) (kind, out string, err error) {
	intent, named := vchat.Classify(text)
	target := paneID
	if named > 0 {
		target = named
	}
	switch intent {
	case vchat.IntentDiagnosePane:
		s.log("vchat " + text)
		if target == 0 {
			s.traceMu.Lock()
			target = s.lastTrace
			s.traceMu.Unlock()
		}
		if target == 0 {
			return AnswerDiagnosis, "", fmt.Errorf("vchat: which pane? say e.g. \"why is pane 1 slow?\"")
		}
		d, err := s.Diagnose(target)
		if err != nil {
			return AnswerDiagnosis, "", err
		}
		return AnswerDiagnosis, d.Render(), nil
	case vchat.IntentSlowestPane:
		s.log("vchat " + text)
		d, err := s.DiagnoseSlowest()
		if err != nil {
			return AnswerDiagnosis, "", err
		}
		return AnswerDiagnosis, d.Render(), nil
	case vchat.IntentStreamLag:
		s.log("vchat " + text)
		r, err := s.DiagnoseStream()
		if err != nil {
			return AnswerDiagnosis, "", err
		}
		return AnswerDiagnosis, r.Render(), nil
	case vchat.IntentWhatChanged:
		s.log("vchat " + text)
		if target == 0 {
			s.traceMu.Lock()
			target = s.lastTrace
			s.traceMu.Unlock()
		}
		if target == 0 {
			return AnswerDiagnosis, "", fmt.Errorf("vchat: no retained rounds yet; vplot first")
		}
		r, err := s.DiagnoseChanges(target)
		if err != nil {
			return AnswerDiagnosis, "", err
		}
		return AnswerDiagnosis, r.Render(), nil
	}
	prog, err := s.VChat(paneID, text)
	return AnswerViewQL, prog, err
}
