package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolRoundRobinFairness queues one session's whole backlog before a
// second session submits anything, then checks a single worker alternates
// between the two queues instead of draining the first-comer.
func TestPoolRoundRobinFairness(t *testing.T) {
	p := NewPool(1)
	defer p.Close()

	gate := make(chan struct{})
	started := make(chan struct{})
	var mu sync.Mutex
	var order []string
	record := func(key string) func() {
		return func() {
			mu.Lock()
			order = append(order, key)
			mu.Unlock()
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	p.Submit("gate", func() { close(started); <-gate; wg.Done() })
	<-started // the worker is pinned; everything below queues behind it

	const perKey = 3
	wg.Add(2 * perKey)
	for i := 0; i < perKey; i++ {
		task := record("a")
		p.Submit("a", func() { task(); wg.Done() })
	}
	for i := 0; i < perKey; i++ {
		task := record("b")
		p.Submit("b", func() { task(); wg.Done() })
	}
	close(gate)
	wg.Wait()

	if len(order) != 2*perKey {
		t.Fatalf("expected %d tasks, ran %d", 2*perKey, len(order))
	}
	// Strict alternation: session a queued its whole backlog first, yet b
	// never waits behind more than one of a's tasks.
	for i := 1; i < len(order); i++ {
		if order[i] == order[i-1] {
			t.Fatalf("unfair schedule: %v (consecutive %q at %d)", order, order[i], i)
		}
	}
}

// TestPoolRunCapsInFlight checks the per-call limit: Run(n=12, limit=2) on
// a wide pool never has more than 2 tasks of that call running at once.
func TestPoolRunCapsInFlight(t *testing.T) {
	p := NewPool(8)
	defer p.Close()

	var cur, peak atomic.Int32
	p.Run("capped", 12, 2, func(int) {
		n := cur.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		cur.Add(-1)
	})
	if got := peak.Load(); got > 2 {
		t.Fatalf("limit=2 but %d tasks ran concurrently", got)
	}
}

// TestPoolRunCompletes checks every index runs exactly once, concurrently
// submitted from many goroutines under distinct keys.
func TestPoolRunCompletes(t *testing.T) {
	p := NewPool(4)
	defer p.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		key := string(rune('a' + g))
		go func() {
			defer wg.Done()
			var ran [32]atomic.Int32
			p.Run(key, len(ran), 0, func(i int) { ran[i].Add(1) })
			for i := range ran {
				if ran[i].Load() != 1 {
					t.Errorf("key %s index %d ran %d times", key, i, ran[i].Load())
				}
			}
		}()
	}
	wg.Wait()
}

// TestPoolSubmitAfterClose checks shutdown never loses work: post-Close
// submissions run synchronously.
func TestPoolSubmitAfterClose(t *testing.T) {
	p := NewPool(1)
	p.Close()
	ran := false
	p.Submit("x", func() { ran = true })
	if !ran {
		t.Fatal("task submitted after Close did not run")
	}
}
