package core_test

import (
	"bytes"
	"strings"
	"testing"

	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
	"visualinux/internal/obs"
	"visualinux/internal/target"
	"visualinux/internal/vclstdlib"
)

// TestObservedSessionHitRatio runs a repeated-extraction workload over one
// observed session and asserts the snapshot cache's hit ratio climbs: the
// second extraction of the same figure touches pages the first one already
// pulled across the link.
func TestObservedSessionHitRatio(t *testing.T) {
	o := obs.NewObserver()
	s, _, snap := core.NewObservedKernelSession(kernelsim.Options{}, o)

	if _, err := s.VPlotFigure("7-1"); err != nil {
		t.Fatalf("first vplot: %v", err)
	}
	h1, m1 := snap.CacheStats()
	if m1 == 0 {
		t.Fatal("first extraction filled no pages")
	}
	if _, err := s.VPlotFigure("7-1"); err != nil {
		t.Fatalf("second vplot: %v", err)
	}
	h2, m2 := snap.CacheStats()
	if m2 != m1 {
		t.Fatalf("repeat extraction refetched pages: misses %d -> %d", m1, m2)
	}
	if h2 <= h1 {
		t.Fatalf("repeat extraction produced no cache hits: hits %d -> %d", h1, h2)
	}
	if r := snap.HitRatio(); r < 0.5 {
		t.Fatalf("hit ratio after repeat = %v, want >= 0.5", r)
	}

	// The same events must be visible through the shared registry.
	if o.SnapHits.Value() != h2 || o.SnapMisses.Value() != m2 {
		t.Fatalf("observer counters (%d hits, %d misses) diverge from snapshot (%d, %d)",
			o.SnapHits.Value(), o.SnapMisses.Value(), h2, m2)
	}
	var buf bytes.Buffer
	o.Registry.WritePrometheus(&buf)
	for _, want := range []string{"vl_snapshot_hit_ratio 0.", "vl_snapshot_page_hits_total", "vl_extractions_total 2"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, buf.String())
		}
	}
}

// TestSnapshotInvalidations pins the invalidation counter satellite: every
// Invalidate is counted on the snapshot and in the registry, and the next
// extraction refills from the link.
func TestSnapshotInvalidations(t *testing.T) {
	o := obs.NewObserver()
	s, _, snap := core.NewObservedKernelSession(kernelsim.Options{}, o)
	if _, err := s.VPlotFigure("7-1"); err != nil {
		t.Fatal(err)
	}
	_, m1 := snap.CacheStats()

	snap.Invalidate()
	snap.Invalidate()
	if got := snap.Invalidations(); got != 2 {
		t.Fatalf("Invalidations = %d, want 2", got)
	}
	if got := o.SnapInvalidations.Value(); got != 2 {
		t.Fatalf("observer invalidations = %d, want 2", got)
	}

	if _, err := s.VPlotFigure("7-1"); err != nil {
		t.Fatal(err)
	}
	_, m2 := snap.CacheStats()
	if m2 <= m1 {
		t.Fatalf("post-invalidate extraction hit a supposedly empty cache (misses %d -> %d)", m1, m2)
	}
}

// TestVPlotTraceRecorded asserts the per-pane trace plumbing: a plot on an
// observed session leaves a queryable span tree and a slow-log entry.
func TestVPlotTraceRecorded(t *testing.T) {
	o := obs.NewObserver()
	s, _, _ := core.NewObservedKernelSession(kernelsim.Options{}, o)
	p, err := s.VPlotFigure("7-1")
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := s.Trace(p.ID)
	if !ok || tr == nil {
		t.Fatalf("no trace for pane %d", p.ID)
	}
	if !strings.HasPrefix(tr.Name, "vplot:") {
		t.Fatalf("root span = %q", tr.Name)
	}
	var sawBox, sawRead bool
	tr.Walk(func(e *obs.SpanExport) {
		if strings.HasPrefix(e.Name, "box:") {
			sawBox = true
		}
		if e.Name == "target.read" {
			sawRead = true
		}
	})
	if !sawBox || !sawRead {
		t.Fatalf("trace lacks box/read spans (box=%v read=%v):\n%s", sawBox, sawRead, tr.FormatTree())
	}
	id, last, ok := s.LastTrace()
	if !ok || id != p.ID || last != tr {
		t.Fatalf("LastTrace = (%d, %p, %v), want (%d, %p, true)", id, last, ok, p.ID, tr)
	}
	if o.Slow.Len() == 0 {
		t.Fatal("slow log is empty after a traced extraction")
	}
}

// TestExtractFiguresInto covers the concurrent-attach satellite: every
// stdlib figure extracted by the worker pool lands as a pane of one session,
// each with its own trace, all metrics aggregating in one observer. The
// -race run of this test is the concurrency assertion.
func TestExtractFiguresInto(t *testing.T) {
	o := obs.NewObserver()
	s, k, _ := core.NewObservedKernelSession(kernelsim.Options{}, o)
	figs := vclstdlib.Figures()
	panes, err := core.ExtractFiguresInto(s, k, figs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(panes) != len(figs) {
		t.Fatalf("panes = %d, want %d", len(panes), len(figs))
	}
	for i, p := range panes {
		if p.Graph == nil || len(p.Graph.Boxes) == 0 {
			t.Fatalf("figure %s: empty pane graph", figs[i].ID)
		}
		tr, ok := s.Trace(p.ID)
		if !ok || tr == nil {
			t.Fatalf("figure %s (pane %d): no trace", figs[i].ID, p.ID)
		}
		if !strings.Contains(tr.Name, figs[i].ID) {
			t.Fatalf("pane %d trace root %q does not name figure %s", p.ID, tr.Name, figs[i].ID)
		}
	}
	if got := o.Extractions.Value(); got != uint64(len(figs)) {
		t.Fatalf("extractions counter = %d, want %d", got, len(figs))
	}
	if o.LinkTxns.Value() == 0 {
		t.Fatal("no link transactions recorded across workers")
	}
}

// TestExtractFiguresIntoUnobserved keeps the helper usable without an
// observer (plain session, no tracing).
func TestExtractFiguresIntoUnobserved(t *testing.T) {
	s, k := core.NewKernelSession(kernelsim.Options{})
	figs := vclstdlib.Figures()[:3]
	panes, err := core.ExtractFiguresInto(s, k, figs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(panes) != 3 {
		t.Fatalf("panes = %d", len(panes))
	}
	if _, ok := s.Trace(panes[0].ID); ok {
		t.Fatal("unobserved session recorded a trace")
	}
}

// TestPrefetchHintsOnStdlibFigures covers the prefetch satellite on the
// paper's list-heavy figures (3-6, 8-2): hints are issued per hop and never
// regress the fill count. The simulator's bump allocator packs elements
// densely, so a hop's element pages usually coincide with the pages its link
// word would fill anyway — the strict fills-drop guarantee (one coalesced
// fill per page-straddling element) is pinned deterministically by
// viewcl's TestPrefetchCoalescesStraddlingElements instead.
func TestPrefetchHintsOnStdlibFigures(t *testing.T) {
	run := func(hints bool, fig string) (fills uint64, hintCount uint64) {
		k := kernelsim.Build(kernelsim.Options{})
		o := obs.NewObserver()
		counted := target.WithStats(k.Target())
		inst := target.Instrument(counted, o)
		snap := target.NewSnapshot(inst).Instrument(o)
		s := core.SessionOver(k, snap).EnableObs(o)
		s.Interp.PrefetchHints = hints
		if _, err := s.VPlotFigure(fig); err != nil {
			t.Fatalf("vplot %s (hints=%v): %v", fig, hints, err)
		}
		return o.SnapFills.Value(), o.PrefetchHints.Value()
	}
	for _, fig := range []string{"3-6", "8-2"} {
		off, hOff := run(false, fig)
		on, hOn := run(true, fig)
		if hOff != 0 {
			t.Fatalf("%s: hints issued with hints disabled", fig)
		}
		if hOn == 0 {
			t.Fatalf("%s: no prefetch hints issued on a list-heavy figure", fig)
		}
		if on > off {
			t.Fatalf("%s: fill transactions regressed with hints: %d (on) vs %d (off)", fig, on, off)
		}
		t.Logf("%s: fill transactions %d -> %d with %d hints", fig, off, on, hOn)
	}
}
