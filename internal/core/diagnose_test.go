package core_test

import (
	"fmt"
	"strings"
	"testing"

	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
	"visualinux/internal/obs"
	"visualinux/internal/vchat"
	"visualinux/internal/vclstdlib"
)

// TestDiagnosisEndToEnd drives the full span-driven diagnosis path: a
// stop→mutate→resume cycle over the incremental extractor, then a natural
// language "why is pane N slow?" answered purely from the retained span
// trees — this test never touches /debug/trace (or any HTTP surface at
// all), which is the point: the answer comes from the in-memory store.
func TestDiagnosisEndToEnd(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	o := obs.NewObserver()
	figs := []vclstdlib.Figure{mustFigure(t, "3-6")}
	x := core.NewIncrementalExtractor(k, k.KGDBTarget(), figs, o)

	out, err := x.Round() // cold round
	if err != nil {
		t.Fatalf("cold round: %v", err)
	}
	paneID := out[0].Pane.ID
	o.History.Snapshot(o.Registry)

	// stop → mutate (the pipe write lands in fig 3-6's object set) → resume
	if err := k.PipeWrite(k.DirtyPipe, 64); err != nil {
		t.Fatalf("PipeWrite: %v", err)
	}
	x.Advance()
	out2, err := x.Round()
	if err != nil {
		t.Fatalf("mutation round: %v", err)
	}
	if out2[0].Reused {
		t.Fatal("mutation round reused the figure whole; nothing to diagnose")
	}
	o.History.Snapshot(o.Registry)

	s := x.Session

	// The structured diagnosis: stage buckets must conserve the round's
	// measured span-tree total (>= 90%) and name a real dominant stage.
	rec, ok := o.Traces.Last(paneID)
	if !ok {
		t.Fatalf("no retained trace for pane %d", paneID)
	}
	d, err := s.Diagnose(paneID)
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if d.Pane != paneID || d.Figure != "fig3-6" {
		t.Fatalf("diagnosis identity = pane %d figure %q", d.Pane, d.Figure)
	}
	total := rec.Trace.DurUS
	if total <= 0 {
		t.Fatalf("retained trace total = %dus", total)
	}
	if sum := d.Breakdown.SumUS(); sum*10 < total*9 {
		t.Fatalf("stage buckets sum to %dus of a %dus round (< 90%%)", sum, total)
	}
	if d.Suspect == "" || d.Suspect == obs.StageOther {
		t.Fatalf("suspect stage = %q, want a named pipeline stage", d.Suspect)
	}
	if d.SuspectShare <= 0 || d.SuspectShare > 1 {
		t.Fatalf("suspect share = %v", d.SuspectShare)
	}
	if d.Rounds < 2 {
		t.Fatalf("retained rounds = %d, want the cold round and the mutation round", d.Rounds)
	}

	// The vchat phrasing of the same question must route to the diagnosis
	// path and render the same suspect.
	kind, text, err := s.VChatAnswer(0, fmt.Sprintf("why is pane %d slow?", paneID))
	if err != nil {
		t.Fatalf("VChatAnswer: %v", err)
	}
	if kind != core.AnswerDiagnosis {
		t.Fatalf("kind = %q, want diagnosis", kind)
	}
	if !strings.Contains(text, fmt.Sprintf("pane %d (fig3-6)", paneID)) {
		t.Fatalf("rendered diagnosis does not identify the pane:\n%s", text)
	}
	if !strings.Contains(text, "dominant stage: "+d.Suspect) {
		t.Fatalf("rendered diagnosis does not name suspect %q:\n%s", d.Suspect, text)
	}

	// With no bench baseline installed, the fallback baseline is the median
	// of the pane's earlier retained rounds.
	if d.BaselineSource != "" && d.BaselineSource != "history" {
		t.Fatalf("baseline source = %q without an installed bench table", d.BaselineSource)
	}

	// A bench baseline takes precedence once installed.
	s.SetBaseline(map[string]float64{"3-6": 5.5})
	d2, err := s.Diagnose(paneID)
	if err != nil {
		t.Fatalf("Diagnose with baseline: %v", err)
	}
	if d2.BaselineSource != "bench" || d2.BaselineMS != 5.5 {
		t.Fatalf("baseline = %v (%s), want 5.5 (bench)", d2.BaselineMS, d2.BaselineSource)
	}
	if d2.BaselineRatio <= 0 {
		t.Fatalf("baseline ratio = %v", d2.BaselineRatio)
	}
}

// The other two diagnostic intents ride the same retained data: slowest-pane
// scanning and round-over-round comparison.
func TestDiagnosisSlowestAndChanges(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	o := obs.NewObserver()
	figs := []vclstdlib.Figure{mustFigure(t, "3-6"), mustFigure(t, "7-1")}
	x := core.NewIncrementalExtractor(k, k.KGDBTarget(), figs, o)
	if _, err := x.Round(); err != nil {
		t.Fatalf("cold round: %v", err)
	}
	if err := k.PipeWrite(k.DirtyPipe, 64); err != nil {
		t.Fatalf("PipeWrite: %v", err)
	}
	x.Advance()
	if _, err := x.Round(); err != nil {
		t.Fatalf("round: %v", err)
	}
	s := x.Session

	kind, text, err := s.VChatAnswer(0, "which pane is slowest?")
	if err != nil {
		t.Fatalf("slowest: %v", err)
	}
	if kind != core.AnswerDiagnosis || !strings.Contains(text, "dominant stage:") {
		t.Fatalf("slowest answer (%s):\n%s", kind, text)
	}

	// "what changed" needs two retained rounds for the pane; fig 3-6 was
	// re-extracted both rounds (cold + dirty), so its pane qualifies.
	d, err := s.DiagnoseSlowest()
	if err != nil {
		t.Fatal(err)
	}
	pane := d.Pane
	if n := o.Traces.Len(pane); n >= 2 {
		kind, text, err = s.VChatAnswer(0, fmt.Sprintf("what changed in pane %d since the last stop?", pane))
		if err != nil {
			t.Fatalf("changes: %v", err)
		}
		if kind != core.AnswerDiagnosis || !strings.Contains(text, "largest swing:") {
			t.Fatalf("changes answer (%s):\n%s", kind, text)
		}
	}

	// Visualization requests must still come back as ViewQL.
	kind, prog, err := s.VChatAnswer(1, "hide the tasks except for pids 1 and 100")
	if err != nil {
		t.Fatalf("synthesis path: %v", err)
	}
	if kind != core.AnswerViewQL || !strings.Contains(prog, "SELECT") {
		t.Fatalf("synthesis answer (%s):\n%s", kind, prog)
	}

	// The intent classifier itself must agree on the routing.
	if intent, pane := vchat.Classify("why is pane 2 slow?"); intent != vchat.IntentDiagnosePane || pane != 2 {
		t.Fatalf("Classify = (%v, %d)", intent, pane)
	}
}
