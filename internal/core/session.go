// Package core wires the Visualinux components into a debugging session: a
// debug target, the ViewCL interpreter, the pane tree, and the three
// v-commands of the paper (§4) — vplot (extract an object graph), vctrl
// (panes + ViewQL), vchat (natural language). The CLI, the HTTP server, the
// examples and the benchmark harness all drive this facade.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"visualinux/internal/expr"
	"visualinux/internal/graph"
	"visualinux/internal/kernelsim"
	"visualinux/internal/obs"
	"visualinux/internal/panes"
	"visualinux/internal/render"
	"visualinux/internal/stream"
	"visualinux/internal/target"
	"visualinux/internal/vchat"
	"visualinux/internal/vclstdlib"
	"visualinux/internal/viewcl"
	"visualinux/internal/viewql"
)

// Session is one interactive Visualinux debugging session.
type Session struct {
	Target target.Target
	Env    *expr.Env
	Interp *viewcl.Interp
	Tree   *panes.Tree
	// History records every executed v-command, supporting the paper's
	// session persistence story.
	History []string

	// Obs, when set, makes every VPlot produce a span tree (queryable per
	// pane), feed the slow-extraction log, and bump the shared metrics
	// registry. Set it via EnableObs / ObservedSessionOver.
	Obs *obs.Observer

	// StreamHealth, when set by the serving layer, snapshots the stream
	// broker's per-client state — the source the vchat stream-lag
	// diagnosis answers from. Nil outside a serving process.
	StreamHealth func() *stream.Health

	programs     map[int]string // pane ID -> ViewCL source (primary panes)
	secondarySrc map[int]int    // secondary pane ID -> source pane ID

	traceMu   sync.Mutex
	traces    map[int]*obs.SpanExport // pane ID -> last extraction trace
	figures   map[int]string          // pane ID -> figure/extraction name
	lastTrace int                     // pane ID of the most recent extraction

	baselineMu sync.RWMutex
	baseline   map[string]float64 // figure -> steady-state ms (e.g. BENCH_4.json)
}

// NewSession creates a session over an arbitrary target whose expression
// environment has already been configured (helpers registered).
func NewSession(t target.Target, env *expr.Env) *Session {
	in := viewcl.New(env)
	return &Session{
		Target: t, Env: env, Interp: in,
		programs:     make(map[int]string),
		secondarySrc: make(map[int]int),
		traces:       make(map[int]*obs.SpanExport),
		figures:      make(map[int]string),
	}
}

// EnableObs attaches an observer: extractions from now on are traced and
// measured. Safe to call once, right after session construction.
func (s *Session) EnableObs(o *obs.Observer) *Session {
	s.Obs = o
	s.Interp.Obs = o
	return s
}

// NewKernelSession builds a simulated kernel and a fully wired session over
// it — the one-call analogue of "attach GDB to the QEMU guest".
func NewKernelSession(opts kernelsim.Options) (*Session, *kernelsim.Kernel) {
	k := kernelsim.Build(opts)
	s := SessionOver(k, k.Target())
	return s, k
}

// The kernelsim flag vocabularies never change at runtime, so every session
// shares one immutable conversion instead of rebuilding the slices per
// session (the server creates a session per figure per client). The shared
// slices are never mutated; each session's Flags map stays private, so tests
// overriding an entry only affect their own interpreter.
var (
	flagSetsOnce sync.Once
	sharedFlags  map[string][]viewcl.Flag
)

func sharedFlagSets() map[string][]viewcl.Flag {
	flagSetsOnce.Do(func() {
		sharedFlags = make(map[string][]viewcl.Flag)
		for id, set := range kernelsim.FlagSets() {
			fl := make([]viewcl.Flag, 0, len(set))
			for _, b := range set {
				fl = append(fl, viewcl.Flag{Mask: b.Mask, Name: b.Name})
			}
			sharedFlags[id] = fl
		}
	})
	return sharedFlags
}

// SessionOver wires a session over any target view of a built kernel
// (fast or latency-wrapped), sharing the kernel's type registry.
func SessionOver(k *kernelsim.Kernel, t target.Target) *Session {
	env := expr.NewEnv(t)
	kernelsim.RegisterHelpers(env)
	s := NewSession(t, env)
	for id, fl := range sharedFlagSets() {
		s.Interp.Flags[id] = fl
	}
	return s
}

// ObservedSessionOver wires a session over base with the full observability
// chain: base → Instrumented (per-transaction spans + link counters) →
// Snapshot (page cache, hit/miss counters) → session, all reporting into o.
// The snapshot is returned so callers can Invalidate between target runs.
func ObservedSessionOver(k *kernelsim.Kernel, base target.Target, o *obs.Observer, tags ...obs.Tag) (*Session, *target.Snapshot) {
	inst := target.Instrument(base, o, tags...)
	snap := target.NewSnapshot(inst).Instrument(o)
	s := SessionOver(k, snap)
	s.EnableObs(o)
	return s, snap
}

// NewObservedKernelSession builds a simulated kernel plus an observed
// session over its raw target — the zero-config entry point for the server
// and CLI binaries.
func NewObservedKernelSession(opts kernelsim.Options, o *obs.Observer) (*Session, *kernelsim.Kernel, *target.Snapshot) {
	k := kernelsim.Build(opts)
	s, snap := ObservedSessionOver(k, k.Target(), o)
	return s, k, snap
}

func (s *Session) log(cmd string) { s.History = append(s.History, cmd) }

// poolKey is the session's scheduling identity on the DefaultPool: all of a
// session's extraction work queues under one key, so the pool's round-robin
// across keys is round-robin across sessions.
func (s *Session) poolKey() string { return fmt.Sprintf("session:%p", s) }

// VPlot evaluates a ViewCL program and displays the resulting object graph
// in a new primary pane (the first plot creates the pane tree; subsequent
// plots split the first pane).
func (s *Session) VPlot(name, program string) (*panes.Pane, error) {
	s.log("vplot " + name)
	res, err := s.Interp.RunSource(name, program)
	if err != nil {
		return nil, fmt.Errorf("vplot %s: %w", name, err)
	}
	return s.attachPane(name, program, res)
}

// attachPane puts an extracted graph into the pane tree and records its
// observability artifacts. Extraction and attachment are split so that
// ExtractFiguresInto can run extractions concurrently and attach the
// results one at a time.
func (s *Session) attachPane(name, program string, res *viewcl.Result) (*panes.Pane, error) {
	var pane *panes.Pane
	if s.Tree == nil {
		tree, p := panes.NewTree(name, res.Graph)
		s.Tree = tree
		pane = p
	} else {
		p, err := s.Tree.Split(1, panes.Horizontal, name, res.Graph)
		if err != nil {
			return nil, err
		}
		pane = p
	}
	s.programs[pane.ID] = program
	s.recordExtraction(pane.ID, name, res)
	return pane, nil
}

// recordExtraction files the extraction's trace under its pane ID and feeds
// the duration into the metrics registry and the slow-extraction log.
func (s *Session) recordExtraction(paneID int, name string, res *viewcl.Result) {
	if s.Obs == nil || res == nil {
		return
	}
	dur := time.Duration(res.Graph.Stats.DurationNS)
	s.Obs.ObserveExtraction(name, dur)
	if res.Trace != nil {
		s.traceMu.Lock()
		s.traces[paneID] = res.Trace
		s.figures[paneID] = name
		s.lastTrace = paneID
		s.traceMu.Unlock()
		s.Obs.Slow.Record(fmt.Sprintf("pane %d (%s)", paneID, name), dur, res.Trace)
		s.Obs.Traces.Record(paneID, name, float64(dur.Nanoseconds())/1e6, res.Trace)
	}
}

// Trace returns the span tree of a pane's most recent extraction, if the
// session is observed and the pane was produced by a plot.
func (s *Session) Trace(paneID int) (*obs.SpanExport, bool) {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	t, ok := s.traces[paneID]
	return t, ok
}

// LastTrace returns the most recent extraction trace and the pane it
// belongs to.
func (s *Session) LastTrace() (int, *obs.SpanExport, bool) {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	t, ok := s.traces[s.lastTrace]
	return s.lastTrace, t, ok
}

// VPlotAuto synthesizes a naive ViewCL program for a type + root expression
// and plots it (the paper's "vplot ... can also synthesize naive ViewCL
// code for trivial debugging objectives"). It returns the pane and the
// generated program so the user can refine it.
func (s *Session) VPlotAuto(typeName, rootExpr string) (*panes.Pane, string, error) {
	prog, err := viewcl.SynthesizeProgram(s.Env.Types(), typeName, rootExpr)
	if err != nil {
		return nil, "", err
	}
	p, err := s.VPlot("auto:"+typeName, prog)
	return p, prog, err
}

// VPlotFigure plots a named Table 2 figure from the stdlib.
func (s *Session) VPlotFigure(id string) (*panes.Pane, error) {
	fig, ok := vclstdlib.FigureByID(id)
	if !ok {
		return nil, fmt.Errorf("vplot: unknown figure %q (try one of %s)", id, strings.Join(FigureIDs(), ", "))
	}
	return s.VPlot("fig"+fig.ID, fig.Program)
}

// FigureIDs lists the stdlib figure identifiers.
func FigureIDs() []string {
	var ids []string
	for _, f := range vclstdlib.Figures() {
		ids = append(ids, f.ID)
	}
	sort.Strings(ids)
	return ids
}

// VCtrl executes a pane-control command:
//
//	split <pane> [h|v]          duplicate a pane's graph into a new pane
//	viewql <pane> <program>     apply ViewQL to a pane
//	select <pane> <set> <title> lift a named ViewQL set into a secondary pane
//	focus <member>=<value>      cross-pane search (paper Fig 2)
//	expand <pane> [set]         clear collapse attributes (click-to-expand)
//	layout                      show the pane tree
//	show <pane> [text|dot]      render a pane
func (s *Session) VCtrl(cmd string) (string, error) {
	s.log("vctrl " + cmd)
	if s.Tree == nil {
		return "", fmt.Errorf("vctrl: no panes yet; vplot first")
	}
	fields := strings.Fields(cmd)
	if len(fields) == 0 {
		return "", fmt.Errorf("vctrl: empty command")
	}
	switch fields[0] {
	case "split":
		if len(fields) < 2 {
			return "", fmt.Errorf("vctrl: split <pane> [h|v]")
		}
		id, err := paneArg(fields[1])
		if err != nil {
			return "", err
		}
		src, ok := s.Tree.Pane(id)
		if !ok {
			return "", fmt.Errorf("vctrl: no pane %d", id)
		}
		o := panes.Horizontal
		if len(fields) > 2 && fields[2] == "v" {
			o = panes.Vertical
		}
		p, err := s.Tree.Split(id, o, src.Title+"'", src.Graph)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("pane %d created", p.ID), nil
	case "viewql":
		if len(fields) < 3 {
			return "", fmt.Errorf("vctrl: viewql <pane> <program>")
		}
		id, err := paneArg(fields[1])
		if err != nil {
			return "", err
		}
		prog := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(cmd, fields[0]), " "+fields[1]))
		if err := s.Tree.Refine(id, prog); err != nil {
			return "", err
		}
		return "ok", nil
	case "select":
		if len(fields) < 3 {
			return "", fmt.Errorf("vctrl: select <pane> <set> [title]")
		}
		id, err := paneArg(fields[1])
		if err != nil {
			return "", err
		}
		p, ok := s.Tree.Pane(id)
		if !ok {
			return "", fmt.Errorf("vctrl: no pane %d", id)
		}
		refs := p.Engine.Set(fields[2])
		if refs == nil {
			return "", fmt.Errorf("vctrl: pane %d has no set %q", id, fields[2])
		}
		title := fields[2]
		if len(fields) > 3 {
			title = strings.Join(fields[3:], " ")
		}
		sp, err := s.Tree.SelectInto(id, refs, title)
		if err != nil {
			return "", err
		}
		s.secondarySrc[sp.ID] = id
		return fmt.Sprintf("secondary pane %d created (%d objects)", sp.ID, len(sp.Selection)), nil
	case "focus":
		if len(fields) < 2 || !strings.Contains(fields[1], "=") {
			return "", fmt.Errorf("vctrl: focus <member>=<value>")
		}
		kv := strings.SplitN(fields[1], "=", 2)
		hits := s.focus(kv[0], kv[1])
		if len(hits) == 0 {
			return "no matches", nil
		}
		var sb strings.Builder
		for _, h := range hits {
			fmt.Fprintf(&sb, "pane %d: %s\n", h.PaneID, h.BoxID)
		}
		return sb.String(), nil
	case "expand":
		// The CLI stand-in for clicking a collapsed box's button (paper
		// §4.2: "clicking this button will remove the collapsed
		// attribute"): clear collapse on a named set, or everywhere.
		if len(fields) < 2 {
			return "", fmt.Errorf("vctrl: expand <pane> [set]")
		}
		id, err := paneArg(fields[1])
		if err != nil {
			return "", err
		}
		p, ok := s.Tree.Pane(id)
		if !ok {
			return "", fmt.Errorf("vctrl: no pane %d", id)
		}
		n := 0
		if len(fields) > 2 {
			refs := p.Engine.Set(fields[2])
			if refs == nil {
				return "", fmt.Errorf("vctrl: pane %d has no set %q", id, fields[2])
			}
			for _, r := range refs {
				if b, ok := p.Graph.Get(r.BoxID); ok && r.Member == "" && b.Collapsed() {
					b.SetAttr(graph.AttrCollapsed, "false")
					n++
				}
			}
		} else {
			for _, b := range p.Graph.All() {
				if b.Collapsed() {
					b.SetAttr(graph.AttrCollapsed, "false")
					n++
				}
				for _, vn := range b.ViewSeq {
					v := b.Views[vn]
					for i := range v.Items {
						if v.Items[i].Collapsed() {
							v.Items[i].SetAttr(graph.AttrCollapsed, "false")
							n++
						}
					}
				}
			}
		}
		if n > 0 {
			s.Tree.BumpEpoch()
		}
		return fmt.Sprintf("%d boxes expanded", n), nil
	case "layout":
		return s.Tree.Layout(), nil
	case "show":
		if len(fields) < 2 {
			return "", fmt.Errorf("vctrl: show <pane> [text|dot]")
		}
		id, err := paneArg(fields[1])
		if err != nil {
			return "", err
		}
		p, ok := s.Tree.Pane(id)
		if !ok {
			return "", fmt.Errorf("vctrl: no pane %d", id)
		}
		if len(fields) > 2 && fields[2] == "dot" {
			return render.DOT(p.Graph), nil
		}
		return render.Text(p.Graph), nil
	}
	return "", fmt.Errorf("vctrl: unknown subcommand %q", fields[0])
}

func (s *Session) focus(member, value string) []panes.FocusHit {
	// Numeric values match raw scalars; otherwise compare rendered text.
	var raw uint64
	byRaw := false
	if v, err := parseUint(value); err == nil {
		raw, byRaw = v, true
	}
	if member == "addr" && byRaw {
		return s.Tree.FocusAddr(raw)
	}
	hits := s.Tree.FocusMember(member, value, raw, byRaw)
	if len(hits) == 0 && byRaw {
		// fall back to text comparison ("comm=107"? unlikely but cheap)
		hits = s.Tree.FocusMember(member, value, 0, false)
	}
	return hits
}

func parseUint(s string) (uint64, error) {
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") {
		_, err = fmt.Sscanf(s, "0x%x", &v)
	} else {
		_, err = fmt.Sscanf(s, "%d", &v)
	}
	return v, err
}

func paneArg(s string) (int, error) {
	var id int
	if _, err := fmt.Sscanf(s, "%d", &id); err != nil {
		return 0, fmt.Errorf("vctrl: bad pane id %q", s)
	}
	return id, nil
}

// VChat converts a natural-language request into ViewQL for the given pane,
// applies it, and returns the synthesized program (so the user sees what
// ran, like the paper's LLM flow).
func (s *Session) VChat(paneID int, text string) (string, error) {
	s.log("vchat " + text)
	if s.Tree == nil {
		return "", fmt.Errorf("vchat: no panes yet; vplot first")
	}
	p, ok := s.Tree.Pane(paneID)
	if !ok {
		return "", fmt.Errorf("vchat: no pane %d", paneID)
	}
	prog, err := vchat.Synthesize(p.Graph, text)
	if err != nil {
		return "", err
	}
	if err := p.Engine.Apply(prog); err != nil {
		return prog, fmt.Errorf("vchat: synthesized program failed: %w", err)
	}
	s.Tree.BumpEpoch()
	return prog, nil
}

// Graphs returns the graphs of all panes (for the HTTP server).
func (s *Session) Graphs() map[int]*graph.Graph {
	out := make(map[int]*graph.Graph)
	if s.Tree == nil {
		return out
	}
	for _, p := range s.Tree.Panes() {
		out[p.ID] = p.Graph
	}
	return out
}

// ApplyViewQL applies a ViewQL program directly to a pane (programmatic
// convenience mirroring `vctrl viewql`).
func (s *Session) ApplyViewQL(paneID int, program string) error {
	if s.Tree == nil {
		return fmt.Errorf("no panes")
	}
	return s.Tree.Refine(paneID, program)
}

// Engine returns a pane's ViewQL engine.
func (s *Session) Engine(paneID int) (*viewql.Engine, bool) {
	if s.Tree == nil {
		return nil, false
	}
	p, ok := s.Tree.Pane(paneID)
	if !ok {
		return nil, false
	}
	return p.Engine, true
}
