package core_test

import (
	"strings"
	"testing"

	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
	"visualinux/internal/obs"
	"visualinux/internal/vclstdlib"
)

// badFigure cannot parse: it stands in for a figure whose program broke
// (stdlib regression, user typo) inside an otherwise healthy workspace.
var badFigure = vclstdlib.Figure{
	ID:      "broken",
	Title:   "deliberately broken",
	Program: "plot { this is not ViewCL",
}

// TestExtractFiguresPartial checks the all-figures helpers keep the panes
// that extracted when one figure fails: a 1-bad / N-good workspace yields N
// panes plus a joined error naming the bad one, not nil.
func TestExtractFiguresPartial(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	good := vclstdlib.Figures()
	figs := append(append([]vclstdlib.Figure{}, good...), badFigure)

	panesOut, err := core.ExtractFigures(k, figs, 4)
	if err == nil {
		t.Fatal("broken figure produced no error")
	}
	if !strings.Contains(err.Error(), "broken") {
		t.Errorf("error %v does not name the broken figure", err)
	}
	if len(panesOut) != len(figs) {
		t.Fatalf("panes = %d, want %d slots", len(panesOut), len(figs))
	}
	for i, p := range panesOut[:len(good)] {
		if p == nil {
			t.Fatalf("good figure %s lost to the broken one", figs[i].ID)
		}
	}
	if panesOut[len(good)] != nil {
		t.Fatal("broken figure produced a pane")
	}
}

// TestExtractFiguresIntoPartial is the same contract for the session-attach
// variant: good panes attach, the broken figure is reported, the workspace
// stays serviceable.
func TestExtractFiguresIntoPartial(t *testing.T) {
	o := obs.NewObserver()
	s, k, _ := core.NewObservedKernelSession(kernelsim.Options{}, o)
	good := vclstdlib.Figures()
	figs := append(append([]vclstdlib.Figure{}, good...), badFigure)

	panesOut, err := core.ExtractFiguresInto(s, k, figs, 4)
	if err == nil {
		t.Fatal("broken figure produced no error")
	}
	if !strings.Contains(err.Error(), "broken") {
		t.Errorf("error %v does not name the broken figure", err)
	}
	attached := 0
	for _, p := range panesOut {
		if p != nil {
			attached++
		}
	}
	if attached != len(good) {
		t.Fatalf("attached %d panes, want %d (all good figures)", attached, len(good))
	}
	for _, p := range panesOut[:len(good)] {
		if p == nil || p.Graph == nil || len(p.Graph.Boxes) == 0 {
			t.Fatal("a good figure lost its pane to the broken one")
		}
	}
}
