package core_test

import (
	"strings"
	"testing"

	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
)

func TestSessionPersistence(t *testing.T) {
	// First session: two panes, customizations, named sets, a secondary.
	s1, k := core.NewKernelSession(kernelsim.Options{})
	if _, err := s1.VPlotFigure("3-4"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.VPlotFigure("7-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.VCtrl("viewql 1 kt = SELECT task_struct FROM * WHERE mm == NULL\nUPDATE kt WITH collapsed: true"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.VCtrl("viewql 2 a = SELECT task_struct FROM *\nUPDATE a WITH view: sched"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.VCtrl("select 1 kt kernel-threads"); err != nil {
		t.Fatal(err)
	}

	data, err := s1.Export()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if !strings.Contains(string(data), "collapsed") {
		t.Errorf("export misses attributes")
	}

	// Second session over the SAME kernel (the paper's "reuse across
	// debugging sessions": reattach and replay the view setup).
	s2 := core.SessionOver(k, k.Target())
	if err := s2.Import(data); err != nil {
		t.Fatalf("import: %v", err)
	}
	if got := len(s2.Tree.Panes()); got != 3 {
		t.Fatalf("restored panes = %d, want 3", got)
	}
	p1, _ := s2.Tree.Pane(1)
	collapsed := 0
	for _, b := range p1.Graph.ByType("task_struct") {
		if b.Collapsed() {
			collapsed++
		}
	}
	if collapsed == 0 {
		t.Errorf("collapsed attributes not restored")
	}
	if p1.Engine.Set("kt") == nil {
		t.Errorf("named sets not restored")
	}
	p2, _ := s2.Tree.Pane(2)
	sched := 0
	for _, b := range p2.Graph.ByType("task_struct") {
		if b.CurrentView().Name == "sched" {
			sched++
		}
	}
	if sched == 0 {
		t.Errorf("view attribute not restored")
	}
	p3, _ := s2.Tree.Pane(3)
	if p3.Kind.String() != "secondary" || len(p3.Selection) == 0 {
		t.Errorf("secondary pane not restored: %+v", p3)
	}

	// Import into a dirty session must refuse.
	if err := s2.Import(data); err == nil {
		t.Errorf("import into non-fresh session accepted")
	}
	// Corrupt data must error.
	s3 := core.SessionOver(k, k.Target())
	if err := s3.Import([]byte("{nope")); err == nil {
		t.Errorf("corrupt import accepted")
	}
}

// TestImportReservesPaneIDs regression-tests the import pane-ID collision:
// a saved state whose pane numbering has gaps (panes deleted, or exported
// from a longer-lived session) used to renumber densely on import, letting
// the next vplot mint an ID the saved session already used — aliasing a
// pane a client still holds. Import must push ID allocation past the
// imported maximum.
func TestImportReservesPaneIDs(t *testing.T) {
	s1, k := core.NewKernelSession(kernelsim.Options{})
	if _, err := s1.VPlotFigure("3-4"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.VPlotFigure("7-1"); err != nil {
		t.Fatal(err)
	}
	data, err := s1.Export()
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a gapped saved state: the second pane was exported as ID 7.
	gapped := strings.Replace(string(data), `"id": 2`, `"id": 7`, 1)

	s2 := core.SessionOver(k, k.Target())
	if err := s2.Import([]byte(gapped)); err != nil {
		t.Fatalf("import: %v", err)
	}
	p, err := s2.VPlotFigure("6-1")
	if err != nil {
		t.Fatal(err)
	}
	if p.ID <= 7 {
		t.Fatalf("post-import vplot got pane ID %d, which collides with the "+
			"imported state's ID space (max saved ID 7)", p.ID)
	}
}

func TestVPlotAuto(t *testing.T) {
	s, _ := core.NewKernelSession(kernelsim.Options{})
	p, prog, err := s.VPlotAuto("task_struct", "&init_task")
	if err != nil {
		t.Fatalf("auto: %v", err)
	}
	if !strings.Contains(prog, "define TaskStruct as Box<task_struct>") {
		t.Errorf("generated program:\n%s", prog)
	}
	root, _ := p.Graph.Get(p.Graph.RootID)
	if root == nil {
		t.Fatal("no root box")
	}
	pid, ok := root.Member("pid")
	if !ok || pid.Raw != 0 {
		t.Errorf("auto plot pid = %+v", pid)
	}
	if comm, ok := root.Member("comm"); !ok || comm.Value != "swapper/0" {
		t.Errorf("auto plot comm = %+v", comm)
	}
	// Unknown type errors cleanly.
	if _, _, err := s.VPlotAuto("no_such_struct", "0"); err == nil {
		t.Errorf("bogus type accepted")
	}
}
