package core

import (
	"runtime"
	"sync"
)

// Pool is the process-wide extraction worker pool. Work is submitted under a
// key — one key per session — and dispatched round-robin across keys, so a
// session that floods the pool with figures only ever gets its fair share of
// workers: with S active sessions and W workers, each session advances at
// ~W/S tasks at a time no matter how deep its own queue is. This replaces
// the per-call goroutine pools that used to let a single busy session
// commandeer GOMAXPROCS workers per request, N requests deep.
//
// Tasks must not block on the pool themselves (no nested Run from inside a
// task): workers are a fixed population and a task waiting for pool
// capacity would deadlock under full load.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[string][]func()
	ring   []string // keys with pending work, round-robin order
	next   int      // ring cursor: next key to serve
	closed bool
}

// NewPool starts a pool with the given number of workers (<= 0 means
// GOMAXPROCS).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{queues: make(map[string][]func())}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

var (
	defaultPoolOnce sync.Once
	defaultPool     *Pool
)

// DefaultPool returns the shared process pool (GOMAXPROCS workers), started
// on first use. Every extraction in the process — ad-hoc ExtractFigures
// calls and managed-session rounds alike — funnels through it, which is
// what makes the fairness guarantee global rather than per-API.
func DefaultPool() *Pool {
	defaultPoolOnce.Do(func() { defaultPool = NewPool(0) })
	return defaultPool
}

func (p *Pool) worker() {
	for {
		task, ok := p.take()
		if !ok {
			return
		}
		task()
	}
}

// take blocks for the next task, serving keys round-robin.
func (p *Pool) take() (func(), bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.ring) == 0 && !p.closed {
		p.cond.Wait()
	}
	if len(p.ring) == 0 {
		return nil, false // closed and drained
	}
	if p.next >= len(p.ring) {
		p.next = 0
	}
	key := p.ring[p.next]
	q := p.queues[key]
	task := q[0]
	if len(q) == 1 {
		delete(p.queues, key)
		p.ring = append(p.ring[:p.next], p.ring[p.next+1:]...)
		// next now indexes the following key; no advance needed.
	} else {
		p.queues[key] = q[1:]
		p.next++
	}
	return task, true
}

// Submit enqueues task under key and returns immediately. After Close,
// tasks run synchronously in the caller (shutdown never loses work).
func (p *Pool) Submit(key string, task func()) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		task()
		return
	}
	if _, ok := p.queues[key]; !ok {
		p.ring = append(p.ring, key)
	}
	p.queues[key] = append(p.queues[key], task)
	p.mu.Unlock()
	p.cond.Signal()
}

// Run executes task(0..n-1) on the pool under key with at most limit of
// them in flight at once (limit <= 0 means no per-call cap beyond the
// pool's worker count), and returns when all have completed. The cap is
// enforced by completion-driven dispatch — a finishing task enqueues its
// successor — so a capped call never parks a pool worker on a semaphore.
func (p *Pool) Run(key string, n, limit int, task func(int)) {
	if n <= 0 {
		return
	}
	if limit <= 0 || limit > n {
		limit = n
	}
	var wg sync.WaitGroup
	wg.Add(n)
	var mu sync.Mutex
	next := 0
	var launch func()
	launch = func() {
		mu.Lock()
		if next >= n {
			mu.Unlock()
			return
		}
		i := next
		next++
		mu.Unlock()
		p.Submit(key, func() {
			defer func() {
				wg.Done()
				launch()
			}()
			task(i)
		})
	}
	for i := 0; i < limit; i++ {
		launch()
	}
	wg.Wait()
}

// Pending reports the number of queued (not yet running) tasks.
func (p *Pool) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, q := range p.queues {
		n += len(q)
	}
	return n
}

// Close stops the workers once the queues drain. Submissions after Close
// run synchronously in the caller.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}
