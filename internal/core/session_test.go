package core_test

import (
	"strings"
	"testing"

	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
	"visualinux/internal/vclstdlib"
)

func TestVPlotAndVCtrl(t *testing.T) {
	s, _ := core.NewKernelSession(kernelsim.Options{})
	p, err := s.VPlotFigure("7-1")
	if err != nil {
		t.Fatalf("vplot: %v", err)
	}
	if p.ID != 1 {
		t.Errorf("first pane id = %d", p.ID)
	}
	out, err := s.VCtrl("show 1 text")
	if err != nil {
		t.Fatalf("show: %v", err)
	}
	if !strings.Contains(out, "RunQueue") {
		t.Errorf("rendering misses the run queue:\n%.300s", out)
	}
	if _, err := s.VCtrl("viewql 1 a = SELECT task_struct FROM *\nUPDATE a WITH view: sched"); err != nil {
		t.Fatalf("viewql: %v", err)
	}
	out, _ = s.VCtrl("show 1 text")
	if !strings.Contains(out, "vruntime") {
		t.Errorf("sched view not applied:\n%.300s", out)
	}
	if _, err := s.VCtrl("layout"); err != nil {
		t.Fatalf("layout: %v", err)
	}
}

// TestFigure2 reproduces experiment E4: two panes (parent tree + sched
// tree), then the cross-pane focus operation finds the same task in both.
func TestFigure2(t *testing.T) {
	s, _ := core.NewKernelSession(kernelsim.Options{})
	if _, err := s.VPlotFigure("3-4"); err != nil {
		t.Fatalf("vplot 3-4: %v", err)
	}
	if _, err := s.VPlotFigure("7-1"); err != nil {
		t.Fatalf("vplot 7-1: %v", err)
	}
	// pid 101 is a runnable workload thread scheduled on CPU 0, so it
	// appears in the parent tree (pane 1) and CPU 0's run queue (pane 2).
	out, err := s.VCtrl("focus pid=101")
	if err != nil {
		t.Fatalf("focus: %v", err)
	}
	if !strings.Contains(out, "pane 1") || !strings.Contains(out, "pane 2") {
		t.Errorf("focus should hit both panes:\n%s", out)
	}
	// Focus on a sleeping daemon: present in the process tree only.
	out, err = s.VCtrl("focus comm=sshd")
	if err != nil {
		t.Fatalf("focus: %v", err)
	}
	if !strings.Contains(out, "pane 1") || strings.Contains(out, "pane 2") {
		t.Errorf("sshd should only appear in the parent tree:\n%s", out)
	}
}

func TestSecondaryPane(t *testing.T) {
	s, _ := core.NewKernelSession(kernelsim.Options{})
	if _, err := s.VPlotFigure("3-4"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.VCtrl("viewql 1 workers = SELECT task_struct FROM * WHERE comm == \"workload-0\""); err != nil {
		t.Fatalf("viewql: %v", err)
	}
	out, err := s.VCtrl("select 1 workers focus-on-workload")
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	if !strings.Contains(out, "secondary pane") {
		t.Errorf("no secondary pane: %s", out)
	}
	// Linked panes: collapsing in the secondary pane is visible in the
	// primary (shared boxes).
	if _, err := s.VCtrl("viewql 2 w = SELECT task_struct FROM *\nUPDATE w WITH collapsed: true"); err != nil {
		t.Fatalf("refine secondary: %v", err)
	}
	p1, _ := s.Tree.Pane(1)
	collapsed := 0
	for _, b := range p1.Graph.ByType("task_struct") {
		if b.Collapsed() {
			collapsed++
		}
	}
	if collapsed == 0 {
		t.Errorf("linked-pane update not visible in primary")
	}
}

func TestVChatEndToEnd(t *testing.T) {
	s, _ := core.NewKernelSession(kernelsim.Options{})
	if _, err := s.VPlotFigure("3-4"); err != nil {
		t.Fatal(err)
	}
	prog, err := s.VChat(1, "shrink tasks that have no address space")
	if err != nil {
		t.Fatalf("vchat: %v", err)
	}
	// "Task" (the box label) and "task_struct" (the C type) are equivalent
	// selectors in ViewQL; the synthesizer may ground to either.
	if !(strings.Contains(prog, "SELECT Task") || strings.Contains(prog, "SELECT task_struct")) ||
		!strings.Contains(prog, "collapsed") {
		t.Errorf("unexpected synthesis:\n%s", prog)
	}
	p, _ := s.Tree.Pane(1)
	n := 0
	for _, b := range p.Graph.ByType("task_struct") {
		if b.Collapsed() {
			n++
		}
	}
	if n == 0 {
		t.Errorf("vchat had no effect")
	}
}

func TestAllFiguresThroughSession(t *testing.T) {
	s, _ := core.NewKernelSession(kernelsim.Options{})
	for _, id := range core.FigureIDs() {
		if _, err := s.VPlotFigure(id); err != nil {
			t.Errorf("figure %s: %v", id, err)
		}
	}
	if len(s.Graphs()) != len(vclstdlib.Figures()) {
		t.Errorf("panes = %d, want %d", len(s.Graphs()), len(vclstdlib.Figures()))
	}
	if len(s.History) == 0 {
		t.Errorf("history not recorded")
	}
}

func TestErrorsSurface(t *testing.T) {
	s, _ := core.NewKernelSession(kernelsim.Options{})
	if _, err := s.VPlot("bad", "this is not viewcl"); err == nil {
		t.Errorf("no error for bad program")
	}
	if _, err := s.VCtrl("show 1"); err == nil {
		t.Errorf("no error for vctrl before vplot")
	}
	if _, err := s.VPlotFigure("7-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.VCtrl("show 99"); err == nil {
		t.Errorf("no error for missing pane")
	}
	if _, err := s.VCtrl("viewql 1 garbage $$$"); err == nil {
		t.Errorf("no error for bad viewql")
	}
	if _, err := s.VChat(1, "fjdkslfjdsl"); err == nil {
		t.Errorf("no error for nonsense chat")
	}
}

func TestVCtrlExpand(t *testing.T) {
	s, _ := core.NewKernelSession(kernelsim.Options{})
	if _, err := s.VPlotFigure("3-4"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.VCtrl("viewql 1 kt = SELECT task_struct FROM * WHERE mm == NULL\nUPDATE kt WITH collapsed: true"); err != nil {
		t.Fatal(err)
	}
	out, err := s.VCtrl("expand 1 kt")
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	if !strings.Contains(out, "expanded") || strings.HasPrefix(out, "0 ") {
		t.Errorf("expand output: %q", out)
	}
	p, _ := s.Tree.Pane(1)
	for _, b := range p.Graph.ByType("task_struct") {
		if b.Collapsed() {
			t.Errorf("%s still collapsed", b.ID)
		}
	}
	if _, err := s.VCtrl("expand 1 nosuchset"); err == nil {
		t.Error("expand of unknown set accepted")
	}
	// expand-all path (no set)
	if _, err := s.VCtrl("viewql 1 a = SELECT task_struct FROM *\nUPDATE a WITH collapsed: true"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.VCtrl("expand 1"); err != nil {
		t.Fatal(err)
	}
	for _, b := range p.Graph.ByType("task_struct") {
		if b.Collapsed() {
			t.Errorf("expand-all missed %s", b.ID)
		}
	}
}
