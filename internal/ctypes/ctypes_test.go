package ctypes_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"visualinux/internal/ctypes"
)

func reg() *ctypes.Registry { return ctypes.NewRegistry() }

func TestBaseTypes(t *testing.T) {
	r := reg()
	cases := []struct {
		name string
		size uint64
	}{
		{"char", 1}, {"short", 2}, {"int", 4}, {"long", 8},
		{"u8", 1}, {"u16", 2}, {"u32", 4}, {"u64", 8},
		{"pid_t", 4}, {"size_t", 8}, {"atomic_t", 4},
	}
	for _, c := range cases {
		typ, ok := r.Lookup(c.name)
		if !ok {
			t.Fatalf("missing %s", c.name)
		}
		if typ.Size() != c.size {
			t.Errorf("sizeof(%s) = %d, want %d", c.name, typ.Size(), c.size)
		}
	}
}

func TestStructLayoutAlignment(t *testing.T) {
	r := reg()
	s := ctypes.StructOf("s",
		ctypes.F("a", r.MustLookup("char")),
		ctypes.F("b", r.MustLookup("u32")), // padded to offset 4
		ctypes.F("c", r.MustLookup("char")),
		ctypes.F("d", r.MustLookup("u64")), // padded to offset 16
	)
	want := map[string]uint64{"a": 0, "b": 4, "c": 8, "d": 16}
	for name, off := range want {
		f, ok := s.FieldByName(name)
		if !ok || f.Offset != off {
			t.Errorf("%s at %d, want %d", name, f.Offset, off)
		}
	}
	if s.Size() != 24 {
		t.Errorf("size = %d, want 24", s.Size())
	}
	if s.Align() != 8 {
		t.Errorf("align = %d, want 8", s.Align())
	}
}

// Property: for any sequence of members, every field offset is aligned to
// its type and the struct size is a multiple of the struct alignment, with
// no two plain fields overlapping.
func TestStructLayoutProperties(t *testing.T) {
	r := reg()
	pool := []*ctypes.Type{
		r.MustLookup("char"), r.MustLookup("short"), r.MustLookup("int"),
		r.MustLookup("long"), r.MustLookup("u64").ArrayOf(3),
		ctypes.StructOf("inner", ctypes.F("x", r.MustLookup("u32")), ctypes.F("y", r.MustLookup("u64"))),
	}
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%12) + 1
		specs := make([]ctypes.FieldSpec, count)
		for i := range specs {
			specs[i] = ctypes.F(string(rune('a'+i)), pool[rng.Intn(len(pool))])
		}
		s := ctypes.StructOf("p", specs...)
		if s.Size()%s.Align() != 0 {
			return false
		}
		prevEnd := uint64(0)
		for _, f := range s.Fields {
			if f.Offset%f.Type.Align() != 0 {
				return false
			}
			if f.Offset < prevEnd {
				return false // overlap
			}
			prevEnd = f.Offset + f.Type.Size()
		}
		return prevEnd <= s.Size()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBitfields(t *testing.T) {
	r := reg()
	u32 := r.MustLookup("u32")
	s := ctypes.StructOf("bf",
		ctypes.BF("a", u32, 16),
		ctypes.BF("b", u32, 15),
		ctypes.BF("c", u32, 1),  // fits in the same unit: 16+15+1 = 32
		ctypes.BF("d", u32, 20), // new unit
		ctypes.F("e", r.MustLookup("u8")),
	)
	a, _ := s.FieldByName("a")
	b, _ := s.FieldByName("b")
	c, _ := s.FieldByName("c")
	d, _ := s.FieldByName("d")
	if a.Offset != 0 || a.BitOffset != 0 || !a.IsBitfield() {
		t.Errorf("a: %+v", a)
	}
	if b.Offset != 0 || b.BitOffset != 16 {
		t.Errorf("b: %+v", b)
	}
	if c.Offset != 0 || c.BitOffset != 31 {
		t.Errorf("c: %+v", c)
	}
	if d.Offset != 4 || d.BitOffset != 0 {
		t.Errorf("d: %+v", d)
	}
	e, _ := s.FieldByName("e")
	if e.Offset != 8 {
		t.Errorf("e at %d", e.Offset)
	}
}

func TestUnionLayout(t *testing.T) {
	r := reg()
	u := ctypes.UnionOf("u",
		ctypes.F("i", r.MustLookup("int")),
		ctypes.F("l", r.MustLookup("long")),
		ctypes.F("a", r.MustLookup("char").ArrayOf(3)),
	)
	if u.Size() != 8 {
		t.Errorf("union size = %d", u.Size())
	}
	for _, name := range []string{"i", "l", "a"} {
		f, ok := u.FieldByName(name)
		if !ok || f.Offset != 0 {
			t.Errorf("union member %s at %d", name, f.Offset)
		}
	}
}

func TestAnonymousMembers(t *testing.T) {
	r := reg()
	inner := ctypes.StructOf("", ctypes.F("x", r.MustLookup("u64")), ctypes.F("y", r.MustLookup("u32")))
	outer := ctypes.StructOf("o",
		ctypes.F("head", r.MustLookup("u32")),
		ctypes.FieldSpec{Name: "", Type: inner},
	)
	x, ok := outer.FieldByName("x")
	if !ok {
		t.Fatal("x not lifted through anonymous member")
	}
	if x.Offset != 8 { // head(4) pad(4) then inner.x at 0
		t.Errorf("x at %d", x.Offset)
	}
	y, _ := outer.FieldByName("y")
	if y.Offset != 16 {
		t.Errorf("y at %d", y.Offset)
	}
}

func TestResolvePath(t *testing.T) {
	r := reg()
	leaf := ctypes.StructOf("leaf", ctypes.F("v", r.MustLookup("u64")))
	mid := ctypes.StructOf("mid", ctypes.F("pad", r.MustLookup("u64")), ctypes.F("leaf", leaf))
	top := ctypes.StructOf("top", ctypes.F("pad", r.MustLookup("u32")), ctypes.F("mid", mid))
	f, err := top.ResolvePath("mid.leaf.v")
	if err != nil {
		t.Fatal(err)
	}
	if f.Offset != 8+8 { // mid at 8 (aligned), leaf at +8, v at +0
		t.Errorf("offset = %d", f.Offset)
	}
	// Paths crossing pointers are rejected.
	ptr := ctypes.StructOf("p", ctypes.F("next", top.PointerTo()))
	if _, err := ptr.ResolvePath("next.mid"); err == nil {
		t.Error("pointer-crossing path accepted")
	}
	if _, err := top.ResolvePath("nothere"); err == nil {
		t.Error("missing member accepted")
	}
}

func TestShellCompletion(t *testing.T) {
	a := ctypes.NewShell("a")
	b := ctypes.NewShell("b")
	a.Complete(ctypes.F("next", b.PointerTo()), ctypes.F("v", ctypes.Int("u64", 8, false)))
	b.Complete(ctypes.F("prev", a.PointerTo()))
	if a.Size() != 16 || b.Size() != 8 {
		t.Errorf("sizes: a=%d b=%d", a.Size(), b.Size())
	}
	f, _ := a.FieldByName("next")
	if f.Type.Strip().Elem != b {
		t.Error("cycle not preserved")
	}
}

func TestRegistryLookupSpellings(t *testing.T) {
	r := reg()
	s := r.Register(ctypes.StructOf("task_struct", ctypes.F("pid", r.MustLookup("int"))))
	for _, spelling := range []string{"task_struct", "struct task_struct", "struct task_struct *", "task_struct **"} {
		typ, ok := r.Lookup(spelling)
		if !ok {
			t.Errorf("lookup %q failed", spelling)
			continue
		}
		base := typ
		for base.Strip().Kind == ctypes.KindPointer {
			base = base.Strip().Elem
		}
		if base != s {
			t.Errorf("%q resolved to wrong type", spelling)
		}
	}
	if _, ok := r.Lookup("no_such_type"); ok {
		t.Error("bogus lookup succeeded")
	}
}

func TestEnums(t *testing.T) {
	r := reg()
	e := r.Register(ctypes.NewEnum("color",
		ctypes.EnumVal{Name: "RED", Value: 0},
		ctypes.EnumVal{Name: "GREEN", Value: 5},
	))
	if n := e.EnumName(5); n != "GREEN" {
		t.Errorf("EnumName = %q", n)
	}
	if n := e.EnumName(99); n != "" {
		t.Errorf("bogus EnumName = %q", n)
	}
	if v, ok := e.EnumValue("RED"); !ok || v != 0 {
		t.Errorf("EnumValue RED = %d, %v", v, ok)
	}
	v, typ, ok := r.EnumeratorValue("GREEN")
	if !ok || v != 5 || typ != e {
		t.Errorf("EnumeratorValue = %d, %v, %v", v, typ, ok)
	}
}

func TestPointerCacheAndStrings(t *testing.T) {
	r := reg()
	u64 := r.MustLookup("u64")
	if u64.PointerTo() != u64.PointerTo() {
		t.Error("pointer type not cached")
	}
	if s := u64.PointerTo().String(); s != "u64 *" {
		t.Errorf("spelling %q", s)
	}
	arr := u64.ArrayOf(4)
	if arr.Size() != 32 || arr.String() != "u64[4]" {
		t.Errorf("array: %d %q", arr.Size(), arr.String())
	}
	if got := ctypes.Void.String(); got != "void" {
		t.Errorf("void = %q", got)
	}
}
