// Package ctypes implements a C type system: base types, pointers, arrays,
// structs, unions, enums, typedefs and bitfields, with sizeof/alignof/
// offsetof computation following the System V x86_64 ABI rules (natural
// alignment, no packing). It is the repository's stand-in for DWARF debug
// info: the kernel simulator declares Linux struct layouts here, and the
// expression evaluator resolves member accesses against them, exactly as GDB
// resolves them against DWARF.
package ctypes

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Kind discriminates the type shapes.
type Kind int

// Type kinds.
const (
	KindVoid Kind = iota
	KindInt       // integer of Size bytes, Signed or not
	KindBool
	KindFloat
	KindPointer
	KindArray
	KindStruct
	KindUnion
	KindEnum
	KindTypedef
	KindFunc // function type; only meaningful behind a pointer
)

func (k Kind) String() string {
	switch k {
	case KindVoid:
		return "void"
	case KindInt:
		return "int"
	case KindBool:
		return "bool"
	case KindFloat:
		return "float"
	case KindPointer:
		return "pointer"
	case KindArray:
		return "array"
	case KindStruct:
		return "struct"
	case KindUnion:
		return "union"
	case KindEnum:
		return "enum"
	case KindTypedef:
		return "typedef"
	case KindFunc:
		return "func"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// PointerSize is the target pointer width (64-bit guest).
const PointerSize = 8

// Field is a struct or union member.
type Field struct {
	Name   string
	Type   *Type
	Offset uint64 // byte offset from the start of the enclosing aggregate
	// Bitfield description; BitSize == 0 means a plain (non-bit) field.
	BitOffset uint32 // bit offset within the storage unit at Offset
	BitSize   uint32
}

// IsBitfield reports whether the field is a C bitfield.
func (f *Field) IsBitfield() bool { return f.BitSize != 0 }

// EnumVal is one enumerator of an enum type.
type EnumVal struct {
	Name  string
	Value int64
}

// Type describes a C type. Types are immutable once built; share freely.
type Type struct {
	Kind   Kind
	Name   string // tag or typedef name; "" for anonymous/derived types
	size   uint64
	align  uint64
	Signed bool // KindInt
	Elem   *Type
	Count  uint64 // KindArray
	Fields []Field
	Enums  []EnumVal
	Base   *Type // KindTypedef underlying type

	// Cached pointer-to-this. Atomic because types are shared across
	// concurrent extraction workers, which derive pointer types on demand.
	ptrTo atomic.Pointer[Type]
}

// Size returns sizeof(t) in bytes.
func (t *Type) Size() uint64 { return t.size }

// Align returns alignof(t) in bytes.
func (t *Type) Align() uint64 {
	if t.align == 0 {
		return 1
	}
	return t.align
}

// Strip removes typedef layers, returning the underlying type.
func (t *Type) Strip() *Type {
	for t != nil && t.Kind == KindTypedef {
		t = t.Base
	}
	return t
}

// IsInteger reports whether the stripped type is an integer-like scalar
// (int, bool, enum). Pointers are not integers, though they convert.
func (t *Type) IsInteger() bool {
	s := t.Strip()
	if s == nil {
		return false
	}
	switch s.Kind {
	case KindInt, KindBool, KindEnum:
		return true
	}
	return false
}

// IsPointer reports whether the stripped type is a pointer.
func (t *Type) IsPointer() bool {
	s := t.Strip()
	return s != nil && s.Kind == KindPointer
}

// String renders a C-ish spelling of the type.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case KindVoid:
		return "void"
	case KindInt:
		if t.Name != "" {
			return t.Name
		}
		sign := "u"
		if t.Signed {
			sign = "s"
		}
		return fmt.Sprintf("%sint%d", sign, t.size*8)
	case KindBool:
		return "bool"
	case KindFloat:
		if t.size == 4 {
			return "float"
		}
		return "double"
	case KindPointer:
		return t.Elem.String() + " *"
	case KindArray:
		return fmt.Sprintf("%s[%d]", t.Elem.String(), t.Count)
	case KindStruct:
		if t.Name != "" {
			return "struct " + t.Name
		}
		return "struct <anon>"
	case KindUnion:
		if t.Name != "" {
			return "union " + t.Name
		}
		return "union <anon>"
	case KindEnum:
		if t.Name != "" {
			return "enum " + t.Name
		}
		return "enum <anon>"
	case KindTypedef:
		return t.Name
	case KindFunc:
		return "func()"
	}
	return "<?>"
}

// PointerTo returns the (cached) pointer type to t. The cache keeps one
// canonical pointer type per pointee even under concurrent derivation.
func (t *Type) PointerTo() *Type {
	if p := t.ptrTo.Load(); p != nil {
		return p
	}
	p := &Type{Kind: KindPointer, size: PointerSize, align: PointerSize, Elem: t}
	if t.ptrTo.CompareAndSwap(nil, p) {
		return p
	}
	return t.ptrTo.Load()
}

// ArrayOf returns a fresh array type of n elements of t.
func (t *Type) ArrayOf(n uint64) *Type {
	return &Type{Kind: KindArray, size: t.size * n, align: t.Align(), Elem: t, Count: n}
}

// FieldByName finds a direct member, descending into anonymous struct/union
// members the way C name lookup does. The returned offset is relative to t.
func (t *Type) FieldByName(name string) (Field, bool) {
	s := t.Strip()
	if s == nil || (s.Kind != KindStruct && s.Kind != KindUnion) {
		return Field{}, false
	}
	for _, f := range s.Fields {
		if f.Name == name {
			return f, true
		}
	}
	// Anonymous members: lift their fields.
	for _, f := range s.Fields {
		if f.Name != "" {
			continue
		}
		if inner, ok := f.Type.FieldByName(name); ok {
			inner.Offset += f.Offset
			return inner, true
		}
	}
	return Field{}, false
}

// ResolvePath resolves a dot-separated member path ("se.vruntime") starting
// from t, auto-dereferencing pointers between components exactly like
// ViewCL's flatten operator. It returns the accumulated byte offset relative
// to the start of t (counting only offsets after the last dereference is the
// caller's concern; see Deref below) — for layouts with no intermediate
// pointers the offset is directly usable. For paths that cross pointers, use
// expr evaluation instead; this helper rejects them.
func (t *Type) ResolvePath(path string) (Field, error) {
	parts := strings.Split(path, ".")
	cur := t
	var total uint64
	var last Field
	for i, p := range parts {
		s := cur.Strip()
		if s.Kind == KindPointer {
			return Field{}, fmt.Errorf("ctypes: path %q crosses a pointer at %q; evaluate via expr", path, strings.Join(parts[:i], "."))
		}
		f, ok := cur.FieldByName(p)
		if !ok {
			return Field{}, fmt.Errorf("ctypes: %s has no member %q (path %q)", cur, p, path)
		}
		total += f.Offset
		last = f
		cur = f.Type
	}
	last.Offset = total
	return last, nil
}

// --- constructors -----------------------------------------------------------

// Void is the void type (size 0).
var Void = &Type{Kind: KindVoid, size: 0, align: 1, Name: "void"}

// VoidPtr is void*.
var VoidPtr = Void.PointerTo()

// Int returns an integer type of the given byte size and signedness with an
// optional display name.
func Int(name string, size uint64, signed bool) *Type {
	return &Type{Kind: KindInt, Name: name, size: size, align: size, Signed: signed}
}

// Bool8 is a one-byte boolean (_Bool).
var Bool8 = &Type{Kind: KindBool, Name: "bool", size: 1, align: 1}

// FuncType is the generic function type used behind function pointers.
var FuncType = &Type{Kind: KindFunc, Name: "func", size: 1, align: 1}

// FuncPtr is a generic function pointer type.
var FuncPtr = FuncType.PointerTo()

// NewEnum builds an enum type (4 bytes, as on Linux).
func NewEnum(name string, vals ...EnumVal) *Type {
	return &Type{Kind: KindEnum, Name: name, size: 4, align: 4, Signed: true, Enums: vals}
}

// EnumName returns the enumerator name for value v, or "" if none matches.
func (t *Type) EnumName(v int64) string {
	s := t.Strip()
	if s == nil || s.Kind != KindEnum {
		return ""
	}
	for _, e := range s.Enums {
		if e.Value == v {
			return e.Name
		}
	}
	return ""
}

// EnumValue returns the numeric value of enumerator name.
func (t *Type) EnumValue(name string) (int64, bool) {
	s := t.Strip()
	if s == nil || s.Kind != KindEnum {
		return 0, false
	}
	for _, e := range s.Enums {
		if e.Name == name {
			return e.Value, true
		}
	}
	return 0, false
}

// Typedef creates a named alias of base.
func Typedef(name string, base *Type) *Type {
	return &Type{Kind: KindTypedef, Name: name, size: base.size, align: base.align, Base: base}
}

// FieldSpec declares one member for StructOf/UnionOf. A zero BitSize means a
// plain field. Name "" declares an anonymous struct/union member.
type FieldSpec struct {
	Name    string
	Type    *Type
	BitSize uint32 // optional bitfield width in bits
}

// F is shorthand for a plain FieldSpec.
func F(name string, t *Type) FieldSpec { return FieldSpec{Name: name, Type: t} }

// BF is shorthand for a bitfield FieldSpec.
func BF(name string, t *Type, bits uint32) FieldSpec {
	return FieldSpec{Name: name, Type: t, BitSize: bits}
}

// StructOf lays out a struct with natural alignment: each member is placed at
// the next offset aligned to its alignment; consecutive bitfields of the same
// storage size pack into shared units. Total size is rounded up to the max
// member alignment.
func StructOf(name string, specs ...FieldSpec) *Type {
	t := &Type{Kind: KindStruct, Name: name, align: 1}
	var off uint64
	bitUnitOff := ^uint64(0) // offset of the open bitfield storage unit
	var bitPos uint32        // next free bit within the unit
	var bitUnitSize uint64
	for _, sp := range specs {
		ft := sp.Type
		a := ft.Align()
		if a > t.align {
			t.align = a
		}
		if sp.BitSize > 0 {
			sz := ft.Size()
			// Open a new unit if none is open, the storage size differs, or
			// the field does not fit in the remaining bits.
			if bitUnitOff == ^uint64(0) || bitUnitSize != sz || uint64(bitPos+sp.BitSize) > sz*8 {
				off = align(off, a)
				bitUnitOff = off
				bitUnitSize = sz
				bitPos = 0
				off += sz
			}
			t.Fields = append(t.Fields, Field{Name: sp.Name, Type: ft, Offset: bitUnitOff, BitOffset: bitPos, BitSize: sp.BitSize})
			bitPos += sp.BitSize
			continue
		}
		bitUnitOff = ^uint64(0)
		off = align(off, a)
		t.Fields = append(t.Fields, Field{Name: sp.Name, Type: ft, Offset: off})
		off += ft.Size()
	}
	t.size = align(off, t.align)
	return t
}

// UnionOf lays out a union: all members at offset 0, size = max member size
// rounded to max alignment.
func UnionOf(name string, specs ...FieldSpec) *Type {
	t := &Type{Kind: KindUnion, Name: name, align: 1}
	for _, sp := range specs {
		ft := sp.Type
		if a := ft.Align(); a > t.align {
			t.align = a
		}
		if s := ft.Size(); s > t.size {
			t.size = s
		}
		t.Fields = append(t.Fields, Field{Name: sp.Name, Type: ft})
	}
	t.size = align(t.size, t.align)
	return t
}

// NewShell creates an incomplete (forward-declared) struct type so that
// mutually recursive structures can hold pointers to each other before
// their layouts are complete — the C forward declaration.
func NewShell(name string) *Type {
	return &Type{Kind: KindStruct, Name: name, align: 1}
}

// Complete fills a shell struct in place with the given members, computing
// the layout like StructOf. It returns the receiver for chaining.
func (t *Type) Complete(specs ...FieldSpec) *Type {
	tmp := StructOf(t.Name, specs...)
	t.Kind = KindStruct
	t.Fields = tmp.Fields
	t.size = tmp.size
	t.align = tmp.align
	return t
}

// CompleteUnion fills a shell in place as a union.
func (t *Type) CompleteUnion(specs ...FieldSpec) *Type {
	tmp := UnionOf(t.Name, specs...)
	t.Kind = KindUnion
	t.Fields = tmp.Fields
	t.size = tmp.size
	t.align = tmp.align
	return t
}

func align(off, a uint64) uint64 {
	if a == 0 {
		return off
	}
	return (off + a - 1) &^ (a - 1)
}

// --- registry ----------------------------------------------------------------

// Registry maps type names to types, playing the role of a DWARF type index.
// Struct/union tags and typedef names share one namespace here (the kernel
// typedefs most tags anyway, and ViewCL's Box<task_struct> spelling omits
// the keyword).
type Registry struct {
	types map[string]*Type
}

// NewRegistry returns a registry pre-populated with the standard C and Linux
// fixed-width base types.
func NewRegistry() *Registry {
	r := &Registry{types: make(map[string]*Type)}
	base := []*Type{
		Void,
		Bool8,
		Int("char", 1, true),
		Int("signed char", 1, true),
		Int("unsigned char", 1, false),
		Int("short", 2, true),
		Int("unsigned short", 2, false),
		Int("int", 4, true),
		Int("unsigned int", 4, false),
		Int("long", 8, true),
		Int("unsigned long", 8, false),
		Int("long long", 8, true),
		Int("unsigned long long", 8, false),
		Int("u8", 1, false), Int("s8", 1, true),
		Int("u16", 2, false), Int("s16", 2, true),
		Int("u32", 4, false), Int("s32", 4, true),
		Int("u64", 8, false), Int("s64", 8, true),
		Int("size_t", 8, false), Int("ssize_t", 8, true),
		Int("pid_t", 4, true),
		Int("uid_t", 4, false), Int("gid_t", 4, false),
		Int("gfp_t", 4, false),
		Int("dev_t", 4, false),
		Int("loff_t", 8, true),
		Int("sector_t", 8, false),
		Int("time64_t", 8, true),
		Int("atomic_t", 4, true),
		Int("atomic64_t", 8, true),
		Int("atomic_long_t", 8, true),
		Int("uintptr_t", 8, false),
	}
	for _, t := range base {
		r.types[t.Name] = t
	}
	return r
}

// Register adds t under t.Name, replacing any previous definition (the
// kernel build registers each type once; replacement keeps tests simple).
func (r *Registry) Register(t *Type) *Type {
	if t.Name == "" {
		panic("ctypes: cannot register anonymous type")
	}
	r.types[t.Name] = t
	return t
}

// Lookup finds a type by name. The optional "struct "/"union "/"enum "
// keyword prefixes are accepted and ignored, and a trailing "*" (possibly
// repeated) derives pointer types, so "struct task_struct *" works.
func (r *Registry) Lookup(name string) (*Type, bool) {
	name = strings.TrimSpace(name)
	stars := 0
	for strings.HasSuffix(name, "*") {
		name = strings.TrimSpace(strings.TrimSuffix(name, "*"))
		stars++
	}
	for _, kw := range []string{"struct ", "union ", "enum "} {
		if strings.HasPrefix(name, kw) {
			name = strings.TrimSpace(strings.TrimPrefix(name, kw))
			break
		}
	}
	t, ok := r.types[name]
	if !ok {
		return nil, false
	}
	for i := 0; i < stars; i++ {
		t = t.PointerTo()
	}
	return t, true
}

// MustLookup is Lookup that panics on a missing type; for build-time wiring.
func (r *Registry) MustLookup(name string) *Type {
	t, ok := r.Lookup(name)
	if !ok {
		panic(fmt.Sprintf("ctypes: unknown type %q", name))
	}
	return t
}

// Names returns all registered type names (unordered).
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.types))
	for n := range r.types {
		out = append(out, n)
	}
	return out
}

// EnumeratorValue searches all registered enums for an enumerator called
// name, mirroring C's flat enumerator namespace. Used by ${maple_leaf_64}
// style expressions.
func (r *Registry) EnumeratorValue(name string) (int64, *Type, bool) {
	for _, t := range r.types {
		if t.Kind != KindEnum {
			continue
		}
		if v, ok := t.EnumValue(name); ok {
			return v, t, true
		}
	}
	return 0, nil, false
}
