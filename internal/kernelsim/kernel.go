package kernelsim

import (
	"visualinux/internal/ctypes"
	"visualinux/internal/target"
)

// Kernel is a fully built simulated kernel state plus handles to the key
// objects, so tests and examples can locate what they plot without
// searching memory.
type Kernel struct {
	*Builder

	// Process management.
	InitTask  Obj
	Tasks     []Obj       // all tasks in creation order (incl. init)
	ByPID     map[int]Obj // pid -> task_struct
	InitPidNS Obj         // struct pid_namespace with the pid IDR
	Runqueues Obj         // per-cpu array of struct rq

	// Memory management.
	NodeData Obj // struct pglist_data (single NUMA node)

	// VFS and files.
	SuperBlocks Obj   // list_head symbol handle
	Files       []Obj // all struct file objects
	RootSB      Obj   // the ext4-ish root superblock

	// Case-study handles.
	DirtyPipe      Obj // pipe_inode_info sharing a page with DirtyFile
	DirtyFile      Obj // struct file whose page cache is shared
	SharedPage     Obj // the shared struct page
	StackRotMM     Obj // mm_struct whose maple node is pending RCU free
	StackRotNode   Obj // the maple_node on the RCU waiting list
	StackRotVictim Obj // the vm_area_struct reachable through the dead node
	MMPercpuWQ     Obj // workqueue_struct for Fig 6
	RCUData        Obj // per-cpu rcu_data array

	// internal builder state shared between subsystem files
	vfsSt      *vfsState
	immapNodes map[uint64][]uint64 // address_space -> vma shared_rb nodes

	// mmVMAs tracks each mm's live mappings so mutations (MapRegion /
	// UnmapRegion) can rebuild the maple tree consistently.
	mmVMAs map[uint64][]mappedVMA
}

// mappedVMA pairs a mapping's interval with its vm_area_struct object.
type mappedVMA struct {
	start, end uint64
	vma        Obj
}

// Options tune the synthetic workload. The zero value requests the paper's
// Table 4 population: 5 processes × 2 threads plus kernel housekeeping.
type Options struct {
	Processes        int // user processes (default 5)
	ThreadsPerProc   int // threads per process (default 2)
	VMAsPerProcess   int // memory-mapped regions per process (default 12)
	PagesPerFile     int // page-cache pages per file (default 16)
	DisableStackRot  bool
	DisableDirtyPipe bool
	// Churn ages the built state through N rounds of live transitions
	// (map/unmap, fork/exit, signals, pipe traffic), the equivalent of
	// letting the paper's workload run before breaking in: maple trees
	// fragment and the RCU lists fill up.
	Churn int

	// Fleet-heterogeneity variants: a fleet of sessions over divergent
	// options must actually look different, or cross-target queries
	// ("which target has the longest runqueue?") have nothing to rank.
	// All fields stay comparable — Options keys the template-image map.

	// RunqueueSkew piles runnable tasks onto CPU 0 instead of the default
	// balanced round-robin: every block of RunqueueSkew extra tasks per
	// NrCPUs lands on CPU 0, so rq0's nr_running grows with the skew.
	RunqueueSkew int
	// ZombieTasks spawns and immediately exits N extra tasks, leaving
	// EXIT_ZOMBIE entries in the task list (the unreaped-children fault).
	ZombieTasks int
	// PipeBurst preloads a scratch pipe with N writes, filling its ring
	// buffers (the stuck-reader workload shape).
	PipeBurst int
}

func (o *Options) fill() {
	if o.Processes == 0 {
		o.Processes = 5
	}
	if o.ThreadsPerProc == 0 {
		o.ThreadsPerProc = 2
	}
	if o.VMAsPerProcess == 0 {
		o.VMAsPerProcess = 12
	}
	if o.PagesPerFile == 0 {
		o.PagesPerFile = 16
	}
}

// Build constructs the complete simulated kernel state.
func Build(opts Options) *Kernel {
	opts.fill()
	k := &Kernel{
		Builder:    NewBuilder(),
		ByPID:      make(map[int]Obj),
		immapNodes: make(map[uint64][]uint64),
		mmVMAs:     make(map[uint64][]mappedVMA),
	}

	// Order matters only where subsystems reference each other; each
	// builder registers its own symbols.
	k.buildSched()
	k.buildPidNamespace()
	k.buildBuddy()
	k.buildSlab()
	k.buildVFSCore()
	k.buildProcesses(opts)
	k.buildIRQ()
	k.buildTimers()
	k.buildKobjects()
	k.buildBlock()
	k.buildSwap()
	k.buildIPC(opts)
	k.buildWorkqueues()
	k.buildRCU()
	k.buildSockets(opts)
	if !opts.DisableDirtyPipe {
		k.buildDirtyPipe()
	}
	if !opts.DisableStackRot {
		k.buildStackRot()
	}
	k.finalizeSched(opts.RunqueueSkew)
	k.finalizePidIDR()
	k.applyVariants(opts)
	k.churn(opts.Churn)
	// max_pfn reflects every page frame handed out during the build, so
	// helpers can scan the vmemmap like the kernel does.
	cell := k.AllocRaw(8, 8)
	k.Mem.WriteU64(cell, k.pfn)
	k.SymbolAddr("max_pfn", cell, k.Reg.MustLookup("unsigned long"))
	return k
}

// Target returns the simulated debug target (the "GDB (QEMU)" personality).
func (k *Kernel) Target() *target.Sim { return k.Tgt }

// KGDBTarget returns a latency-wrapped view of the same kernel (the
// "KGDB (rpi-400)" personality of Table 4).
func (k *Kernel) KGDBTarget() *target.Latency {
	return target.WithLatency(k.Tgt, target.DefaultKGDB)
}

// typeSize is a small helper for symbol registration of arrays.
func (k *Kernel) typeOf(name string) *ctypes.Type { return k.Reg.MustLookup(name) }
