package kernelsim

import (
	"fmt"

	"visualinux/internal/ctypes"
	"visualinux/internal/expr"
	"visualinux/internal/target"
)

// RegisterHelpers installs the kernel helper functions into an expression
// environment. These are the analogue of the paper's ~500 lines of GDB
// scripts that "expose kernel functions invisible to the debugger", such as
// static inline functions (cpu_rq, mte_to_node, ...). They only use the
// target interface, so they work on both the fast and latency targets.
func RegisterHelpers(env *expr.Env) {
	reg := env.Types()
	ulong := reg.MustLookup("unsigned long")
	boolT := ctypes.Bool8

	need := func(args []expr.Value, n int, name string) error {
		if len(args) != n {
			return fmt.Errorf("%s: want %d args, got %d", name, n, len(args))
		}
		return nil
	}

	// cpu_rq(cpu): address of the per-CPU run queue.
	env.RegisterFunc("cpu_rq", func(e *expr.Env, args []expr.Value) (expr.Value, error) {
		if err := need(args, 1, "cpu_rq"); err != nil {
			return expr.Value{}, err
		}
		sym, ok := e.Target.LookupSymbol("runqueues")
		if !ok {
			return expr.Value{}, fmt.Errorf("cpu_rq: no runqueues symbol")
		}
		rqT := reg.MustLookup("rq")
		return expr.MakePointer(rqT, sym.Addr+args[0].Uint()*rqT.Size()), nil
	})

	// task_state(task*): human-readable scheduler state.
	env.RegisterFunc("task_state", func(e *expr.Env, args []expr.Value) (expr.Value, error) {
		if err := need(args, 1, "task_state"); err != nil {
			return expr.Value{}, err
		}
		taskT := reg.MustLookup("task_struct")
		f, _ := taskT.FieldByName("__state")
		st, err := target.ReadUint(e.Target, args[0].Uint()+f.Offset, f.Type.Size())
		if err != nil {
			return expr.Value{}, err
		}
		return expr.MakeString(TaskStateName(st)), nil
	})

	// Maple tree primitives (lib/maple_tree.c statics).
	env.RegisterFunc("mte_to_node", func(e *expr.Env, args []expr.Value) (expr.Value, error) {
		if err := need(args, 1, "mte_to_node"); err != nil {
			return expr.Value{}, err
		}
		return expr.MakePointer(reg.MustLookup("maple_node"), MtToNode(args[0].Uint())), nil
	})
	env.RegisterFunc("mte_node_type", func(e *expr.Env, args []expr.Value) (expr.Value, error) {
		if err := need(args, 1, "mte_node_type"); err != nil {
			return expr.Value{}, err
		}
		return expr.MakeInt(reg.MustLookup("maple_type"), MtNodeType(args[0].Uint())), nil
	})
	env.RegisterFunc("mte_is_leaf", func(e *expr.Env, args []expr.Value) (expr.Value, error) {
		if err := need(args, 1, "mte_is_leaf"); err != nil {
			return expr.Value{}, err
		}
		t := MtNodeType(args[0].Uint())
		v := uint64(0)
		if t == MapleLeaf64 || t == MapleDense {
			v = 1
		}
		return expr.Value{Type: boolT, Bits: v}, nil
	})
	env.RegisterFunc("mt_slot_count", func(e *expr.Env, args []expr.Value) (expr.Value, error) {
		if err := need(args, 1, "mt_slot_count"); err != nil {
			return expr.Value{}, err
		}
		n := uint64(MapleR64Slots)
		if args[0].Uint() == MapleArange64 {
			n = MapleA64Slots
		}
		return expr.MakeInt(ulong, n), nil
	})
	env.RegisterFunc("mt_node_max", func(e *expr.Env, args []expr.Value) (expr.Value, error) {
		if err := need(args, 1, "mt_node_max"); err != nil {
			return expr.Value{}, err
		}
		return expr.MakeInt(ulong, ^uint64(0)), nil
	})

	// XArray primitives (include/linux/xarray.h statics).
	env.RegisterFunc("xa_is_node", func(e *expr.Env, args []expr.Value) (expr.Value, error) {
		if err := need(args, 1, "xa_is_node"); err != nil {
			return expr.Value{}, err
		}
		v := uint64(0)
		if XaIsNode(args[0].Uint()) {
			v = 1
		}
		return expr.Value{Type: boolT, Bits: v}, nil
	})
	env.RegisterFunc("xa_to_node", func(e *expr.Env, args []expr.Value) (expr.Value, error) {
		if err := need(args, 1, "xa_to_node"); err != nil {
			return expr.Value{}, err
		}
		return expr.MakePointer(reg.MustLookup("xa_node"), XaToNode(args[0].Uint())), nil
	})
	env.RegisterFunc("xa_is_value", func(e *expr.Env, args []expr.Value) (expr.Value, error) {
		if err := need(args, 1, "xa_is_value"); err != nil {
			return expr.Value{}, err
		}
		v := uint64(0)
		if XaIsValue(args[0].Uint()) {
			v = 1
		}
		return expr.Value{Type: boolT, Bits: v}, nil
	})
	env.RegisterFunc("xa_to_value", func(e *expr.Env, args []expr.Value) (expr.Value, error) {
		if err := need(args, 1, "xa_to_value"); err != nil {
			return expr.Value{}, err
		}
		return expr.MakeInt(ulong, XaToValue(args[0].Uint())), nil
	})

	// Page helpers.
	env.RegisterFunc("pfn_to_page", func(e *expr.Env, args []expr.Value) (expr.Value, error) {
		if err := need(args, 1, "pfn_to_page"); err != nil {
			return expr.Value{}, err
		}
		pageT := reg.MustLookup("page")
		return expr.MakePointer(pageT, vmemmapBase+args[0].Uint()*pageT.Size()), nil
	})
	env.RegisterFunc("page_to_pfn", func(e *expr.Env, args []expr.Value) (expr.Value, error) {
		if err := need(args, 1, "page_to_pfn"); err != nil {
			return expr.Value{}, err
		}
		pageT := reg.MustLookup("page")
		return expr.MakeInt(ulong, (args[0].Uint()-vmemmapBase)/pageT.Size()), nil
	})
	env.RegisterFunc("PageAnon", func(e *expr.Env, args []expr.Value) (expr.Value, error) {
		if err := need(args, 1, "PageAnon"); err != nil {
			return expr.Value{}, err
		}
		pageT := reg.MustLookup("page")
		f, _ := pageT.FieldByName("mapping")
		m, err := target.ReadUint(e.Target, args[0].Uint()+f.Offset, 8)
		if err != nil {
			return expr.Value{}, err
		}
		return expr.Value{Type: boolT, Bits: m & pageMappingAnon}, nil
	})
	env.RegisterFunc("page_anon_vma", func(e *expr.Env, args []expr.Value) (expr.Value, error) {
		if err := need(args, 1, "page_anon_vma"); err != nil {
			return expr.Value{}, err
		}
		pageT := reg.MustLookup("page")
		f, _ := pageT.FieldByName("mapping")
		m, err := target.ReadUint(e.Target, args[0].Uint()+f.Offset, 8)
		if err != nil {
			return expr.Value{}, err
		}
		return expr.MakePointer(reg.MustLookup("anon_vma"), m&^uint64(3)), nil
	})

	// Function-pointer name (GDB's `info symbol`).
	env.RegisterFunc("symbol_name", func(e *expr.Env, args []expr.Value) (expr.Value, error) {
		if err := need(args, 1, "symbol_name"); err != nil {
			return expr.Value{}, err
		}
		if n, ok := e.Target.SymbolAt(args[0].Uint()); ok {
			return expr.MakeString(n), nil
		}
		return expr.MakeString(fmt.Sprintf("0x%x", args[0].Uint())), nil
	})

	// i_mode classification helpers for ViewQL-friendly fields.
	env.RegisterFunc("inode_is_reg", modeCheck(reg, SIFREG))
	env.RegisterFunc("inode_is_dir", modeCheck(reg, SIFDIR))
	env.RegisterFunc("inode_is_sock", modeCheck(reg, SIFSOCK))
	env.RegisterFunc("inode_is_fifo", modeCheck(reg, SIFIFO))

	// task_cpu(task*): the CPU a task last ran on.
	env.RegisterFunc("task_cpu", func(e *expr.Env, args []expr.Value) (expr.Value, error) {
		if err := need(args, 1, "task_cpu"); err != nil {
			return expr.Value{}, err
		}
		taskT := reg.MustLookup("task_struct")
		f, _ := taskT.FieldByName("cpu")
		v, err := target.ReadUint(e.Target, args[0].Uint()+f.Offset, f.Type.Size())
		if err != nil {
			return expr.Value{}, err
		}
		return expr.MakeInt(reg.MustLookup("unsigned int"), v), nil
	})

	// find_task(pid): walk the global task list like for_each_process,
	// checking each thread group. GDB-script equivalent of pid_task().
	env.RegisterFunc("find_task", func(e *expr.Env, args []expr.Value) (expr.Value, error) {
		if err := need(args, 1, "find_task"); err != nil {
			return expr.Value{}, err
		}
		want := args[0].Uint()
		taskT := reg.MustLookup("task_struct")
		initSym, ok := e.Target.LookupSymbol("init_task")
		if !ok {
			return expr.Value{}, fmt.Errorf("find_task: no init_task")
		}
		pidF, _ := taskT.FieldByName("pid")
		tasksF, _ := taskT.FieldByName("tasks")
		tgF, _ := taskT.FieldByName("thread_group")
		check := func(task uint64) (uint64, error) {
			return target.ReadUint(e.Target, task+pidF.Offset, pidF.Type.Size())
		}
		head := initSym.Addr + tasksF.Offset
		cur := head
		for i := 0; i < 65536; i++ {
			task := cur - tasksF.Offset
			if pid, err := check(task); err == nil && pid == want {
				return expr.MakePointer(taskT, task), nil
			}
			// scan the thread group of this leader
			tgHead := cur - tasksF.Offset + tgF.Offset
			tg, err := target.ReadU64(e.Target, tgHead)
			if err == nil {
				for j := 0; j < 4096 && tg != tgHead && tg != 0; j++ {
					tTask := tg - tgF.Offset
					if pid, err := check(tTask); err == nil && pid == want {
						return expr.MakePointer(taskT, tTask), nil
					}
					tg, _ = target.ReadU64(e.Target, tg)
				}
			}
			next, err := target.ReadU64(e.Target, cur)
			if err != nil {
				return expr.Value{}, err
			}
			cur = next
			if cur == head {
				break
			}
		}
		return expr.Value{Type: taskT.PointerTo()}, nil // NULL: not found
	})

	// task_anon_vma(task*): the anon_vma of the task's first anonymous
	// VMA, found by walking the mm's maple tree (Fig 17-1 entry point).
	env.RegisterFunc("task_anon_vma", func(e *expr.Env, args []expr.Value) (expr.Value, error) {
		if err := need(args, 1, "task_anon_vma"); err != nil {
			return expr.Value{}, err
		}
		avT := reg.MustLookup("anon_vma")
		taskT := reg.MustLookup("task_struct")
		mmF, _ := taskT.FieldByName("mm")
		mm, err := target.ReadU64(e.Target, args[0].Uint()+mmF.Offset)
		if err != nil || mm == 0 {
			return expr.Value{Type: avT.PointerTo()}, err
		}
		mmT := reg.MustLookup("mm_struct")
		mtF, _ := mmT.FieldByName("mm_mt")
		mtT := reg.MustLookup("maple_tree")
		rootF, _ := mtT.FieldByName("ma_root")
		root, err := target.ReadU64(e.Target, mm+mtF.Offset+rootF.Offset)
		if err != nil {
			return expr.Value{}, err
		}
		vmaT := reg.MustLookup("vm_area_struct")
		avF, _ := vmaT.FieldByName("anon_vma")
		nodeT := reg.MustLookup("maple_node")
		slotF, err2 := nodeT.ResolvePath("mr64.slot")
		if err2 != nil {
			return expr.Value{}, err2
		}
		aslotF, _ := nodeT.ResolvePath("ma64.slot")
		var walk func(enode uint64, depth int) (uint64, error)
		walk = func(enode uint64, depth int) (uint64, error) {
			if depth > 8 {
				return 0, nil
			}
			node := MtToNode(enode)
			leaf := MtNodeType(enode) == MapleLeaf64
			base, n := node+aslotF.Offset, uint64(MapleA64Slots)
			if leaf {
				base, n = node+slotF.Offset, uint64(MapleR64Slots)
			}
			for i := uint64(0); i < n; i++ {
				entry, err := target.ReadU64(e.Target, base+i*8)
				if err != nil || entry == 0 {
					continue
				}
				if !leaf {
					if XaIsNode(entry) {
						if found, err := walk(entry, depth+1); err != nil || found != 0 {
							return found, err
						}
					}
					continue
				}
				av, err := target.ReadU64(e.Target, entry+avF.Offset)
				if err == nil && av != 0 {
					return av, nil
				}
			}
			return 0, nil
		}
		if !XaIsNode(root) {
			return expr.Value{Type: avT.PointerTo()}, nil
		}
		av, err := walk(root, 0)
		if err != nil {
			return expr.Value{}, err
		}
		return expr.MakePointer(avT, av), nil
	})

	// anon_first_page(anon_vma*): scan the vmemmap for the first page
	// whose mapping is the PAGE_MAPPING_ANON-tagged anon_vma.
	env.RegisterFunc("anon_first_page", func(e *expr.Env, args []expr.Value) (expr.Value, error) {
		if err := need(args, 1, "anon_first_page"); err != nil {
			return expr.Value{}, err
		}
		pageT := reg.MustLookup("page")
		mapF, _ := pageT.FieldByName("mapping")
		maxSym, ok := e.Target.LookupSymbol("max_pfn")
		if !ok {
			return expr.Value{}, fmt.Errorf("anon_first_page: no max_pfn")
		}
		maxPfn, err := target.ReadU64(e.Target, maxSym.Addr)
		if err != nil {
			return expr.Value{}, err
		}
		want := args[0].Uint() | pageMappingAnon
		for pfn := uint64(1); pfn < maxPfn; pfn++ {
			pg := vmemmapBase + pfn*pageT.Size()
			m, err := target.ReadU64(e.Target, pg+mapF.Offset)
			if err == nil && m == want {
				return expr.MakePointer(pageT, pg), nil
			}
		}
		return expr.Value{Type: pageT.PointerTo()}, nil
	})

	// signal number to name, for Fig 11-1.
	env.RegisterFunc("signame", func(e *expr.Env, args []expr.Value) (expr.Value, error) {
		if err := need(args, 1, "signame"); err != nil {
			return expr.Value{}, err
		}
		return expr.MakeString(SigName(int(args[0].Int()))), nil
	})
}

// TaskStateName renders a __state bitmask the way ps(1) spells it.
func TaskStateName(st uint64) string {
	switch {
	case st == TaskRunning:
		return "RUNNING"
	case st&TaskInterruptible != 0:
		return "INTERRUPTIBLE"
	case st&TaskUninterruptible != 0:
		return "UNINTERRUPTIBLE"
	case st&TaskStopped != 0:
		return "STOPPED"
	case st&TaskTraced != 0:
		return "TRACED"
	case st&ExitZombie != 0:
		return "ZOMBIE"
	case st&ExitDead != 0 || st&TaskDead != 0:
		return "DEAD"
	default:
		return fmt.Sprintf("0x%x", st)
	}
}

var sigNames = map[int]string{
	1: "SIGHUP", 2: "SIGINT", 3: "SIGQUIT", 4: "SIGILL", 5: "SIGTRAP",
	6: "SIGABRT", 7: "SIGBUS", 8: "SIGFPE", 9: "SIGKILL", 10: "SIGUSR1",
	11: "SIGSEGV", 12: "SIGUSR2", 13: "SIGPIPE", 14: "SIGALRM", 15: "SIGTERM",
	17: "SIGCHLD", 18: "SIGCONT", 19: "SIGSTOP", 20: "SIGTSTP",
}

// SigName returns the conventional name of a signal number.
func SigName(n int) string {
	if s, ok := sigNames[n]; ok {
		return s
	}
	return fmt.Sprintf("SIG%d", n)
}

func modeCheck(reg *ctypes.Registry, bits uint64) expr.Func {
	return func(e *expr.Env, args []expr.Value) (expr.Value, error) {
		if len(args) != 1 {
			return expr.Value{}, fmt.Errorf("mode check: want 1 arg")
		}
		inodeT := reg.MustLookup("inode")
		f, _ := inodeT.FieldByName("i_mode")
		m, err := target.ReadUint(e.Target, args[0].Uint()+f.Offset, f.Type.Size())
		if err != nil {
			return expr.Value{}, err
		}
		v := uint64(0)
		if m&0xF000 == bits {
			v = 1
		}
		return expr.Value{Type: ctypes.Bool8, Bits: v}, nil
	}
}

// FlagBit names one bit of a flags word, for the flag:<id> text decorator.
type FlagBit struct {
	Mask uint64
	Name string
}

// FlagSets returns the named flag vocabularies of the simulated kernel, fed
// to ViewCL's flag decorator registry.
func FlagSets() map[string][]FlagBit {
	return map[string][]FlagBit{
		"vm_flags": {
			{VMRead, "VM_READ"}, {VMWrite, "VM_WRITE"}, {VMExec, "VM_EXEC"},
			{VMShared, "VM_SHARED"}, {VMMayRead, "VM_MAYREAD"},
			{VMMayWrite, "VM_MAYWRITE"}, {VMGrowsDown, "VM_GROWSDOWN"},
		},
		"pipe_buf_flags": {
			{PipeBufFlagLRU, "PIPE_BUF_FLAG_LRU"},
			{PipeBufFlagAtomic, "PIPE_BUF_FLAG_ATOMIC"},
			{PipeBufFlagGift, "PIPE_BUF_FLAG_GIFT"},
			{PipeBufFlagPacket, "PIPE_BUF_FLAG_PACKET"},
			{PipeBufFlagCanMerge, "PIPE_BUF_FLAG_CAN_MERGE"},
		},
		"page_flags": {
			{PGLocked, "PG_locked"}, {PGDirty, "PG_dirty"}, {PGLRU, "PG_lru"},
			{PGUptodate, "PG_uptodate"}, {PGSlab, "PG_slab"},
			{PGBuddy, "PG_buddy"}, {PGSwapCache, "PG_swapcache"},
		},
		"task_flags": {
			{0x00000002, "PF_IDLE"}, {0x00000004, "PF_EXITING"},
			{0x00200000, "PF_KTHREAD"}, {0x00000100, "PF_WQ_WORKER"},
		},
	}
}
