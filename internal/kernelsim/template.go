package kernelsim

import (
	"sync"

	"visualinux/internal/mem"
)

// Template kernel images. Fleets admit many sessions over the same Options;
// building each one privately costs ~2 ms and a full private image. Instead,
// the first request for a config builds it once, seals the image into the
// process-wide CoW page store, and every session admission forks the
// template: microsecond admits, all unwritten pages shared.

var (
	storeOnce  sync.Once
	fleetStore *mem.PageStore

	tmplMu    sync.Mutex
	templates map[Options]*Kernel
	tmplBuilt uint64
	tmplForks uint64
)

// SharedStore returns the process-wide CoW page store every template image
// (and every fork of one) shares. One store, not one per config: identical
// pages dedup across configs too.
func SharedStore() *mem.PageStore {
	storeOnce.Do(func() { fleetStore = mem.NewPageStore() })
	return fleetStore
}

// TemplateFor returns the immutable template kernel for opts, building and
// sealing it on first use. The template must never be mutated or served
// from directly — callers fork it (or use FromTemplate). Options are
// normalized first, so the zero value and its explicit defaults share one
// template.
func TemplateFor(opts Options) *Kernel {
	opts.fill()
	tmplMu.Lock()
	defer tmplMu.Unlock()
	if templates == nil {
		templates = make(map[Options]*Kernel)
	}
	if k, ok := templates[opts]; ok {
		return k
	}
	k := Build(opts)
	k.Mem.Seal(SharedStore())
	templates[opts] = k
	tmplBuilt++
	return k
}

// FromTemplate returns a fresh session kernel forked from the template for
// opts — the fleet admission fast path. The returned kernel is fully
// independent: its writes break page sharing, its symbol table is private.
func FromTemplate(opts Options) *Kernel {
	k := TemplateFor(opts).Fork()
	tmplMu.Lock()
	tmplForks++
	tmplMu.Unlock()
	return k
}

// TemplateStats reports how many distinct template images were built and how
// many session kernels were forked from them — the "admission re-built the
// world" detector, alongside the store's dedup counters.
func TemplateStats() (built, forks uint64) {
	tmplMu.Lock()
	defer tmplMu.Unlock()
	return tmplBuilt, tmplForks
}

// TemplatesResidency sums the owned bytes of every template image currently
// cached: the amortization base the fleet's per-session owned bytes sit on.
func TemplatesResidency() uint64 {
	tmplMu.Lock()
	defer tmplMu.Unlock()
	var total uint64
	for _, k := range templates {
		total += k.Mem.OwnedBytes()
	}
	return total
}
