package kernelsim

// XArray construction following Linux's lib/xarray.c entry encoding:
//
//   - internal entries (pointers to struct xa_node) are node|2;
//   - value entries (tagged integers, used by the pid IDR) are (v<<1)|1;
//   - everything else is a plain object pointer.
//
// xa_head points at a single entry for index 0, or at an internal entry for
// a node whose shift says how many index bits each slot level consumes.

// XaMkInternal tags a node pointer as internal.
func XaMkInternal(node uint64) uint64 { return node | 2 }

// XaToNode untags an internal entry.
func XaToNode(entry uint64) uint64 { return entry - 2 }

// XaMkValue builds a value entry from an integer.
func XaMkValue(v uint64) uint64 { return v<<1 | 1 }

// XaIsValue reports whether an entry is a tagged integer.
func XaIsValue(entry uint64) bool { return entry&1 == 1 }

// XaToValue untags a value entry.
func XaToValue(entry uint64) uint64 { return entry >> 1 }

const xaChunkShift = 6 // log2(XAChunkSize)

// BuildXArray stores the given (index -> entry) pairs into the xarray
// object xa, building the radix-tree node levels. Entries must be non-zero.
func (k *Kernel) BuildXArray(xa Obj, items map[uint64]uint64) {
	if len(items) == 0 {
		xa.Set("xa_head", 0)
		return
	}
	var maxIdx uint64
	for idx := range items {
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	if maxIdx == 0 {
		for _, e := range items {
			xa.Set("xa_head", e)
			return
		}
	}
	// Height needed so that shift*levels covers maxIdx.
	shift := uint64(0)
	for maxIdx>>shift >= XAChunkSize {
		shift += xaChunkShift
	}
	root := k.buildXaLevel(xa, nil, shift, 0, items)
	xa.Set("xa_head", XaMkInternal(root))
}

// buildXaLevel creates the xa_node covering indices [base, base+range) at
// the given shift and returns its address.
func (k *Kernel) buildXaLevel(xa Obj, parent *Obj, shift, base uint64, items map[uint64]uint64) uint64 {
	node := k.Alloc("xa_node")
	node.Set("shift", shift)
	node.SetObj("array", xa)
	if parent != nil {
		node.Set("parent", parent.Addr)
	}
	count := uint64(0)
	nrValues := uint64(0)
	slots := node.Field("slots")
	for s := uint64(0); s < XAChunkSize; s++ {
		lo := base + s<<shift
		hi := lo + 1<<shift // exclusive
		if shift == 0 {
			if e, ok := items[lo]; ok {
				k.Mem.WriteU64(slots.Addr+s*8, e)
				count++
				if XaIsValue(e) {
					nrValues++
				}
			}
			continue
		}
		// Does any item fall in [lo, hi)?
		var sub map[uint64]uint64
		for idx, e := range items {
			if idx >= lo && idx < hi {
				if sub == nil {
					sub = make(map[uint64]uint64)
				}
				sub[idx] = e
			}
		}
		if sub == nil {
			continue
		}
		childAddr := k.buildXaLevel(xa, &node, shift-xaChunkShift, lo, sub)
		child := k.At("xa_node", childAddr)
		child.Set("offset", s)
		k.Mem.WriteU64(slots.Addr+s*8, XaMkInternal(childAddr))
		count++
	}
	node.Set("count", count)
	node.Set("nr_values", nrValues)
	return node.Addr
}
