package kernelsim

import (
	"fmt"
	"sort"
)

// State mutations. The paper's debugging sessions are interactive: the
// developer steps the kernel and re-plots, watching the figure evolve
// (§5.3: "This figure evolves as the debugging process proceeds"). These
// transitions mutate the simulated state the way the corresponding kernel
// paths would, keeping every derived structure consistent — and, like the
// real mm, *deferring freed maple nodes to the RCU callback list*, which
// is exactly the mechanism behind CVE-2023-3269.

// SpawnTask forks a new process under parentPID and enqueues it on a CPU's
// run queue. Returns the new task.
func (k *Kernel) SpawnTask(pid int, comm string, parentPID int) (Obj, error) {
	if _, exists := k.ByPID[pid]; exists {
		return Obj{}, fmt.Errorf("kernelsim: pid %d already exists", pid)
	}
	parent, ok := k.ByPID[parentPID]
	if !ok {
		return Obj{}, fmt.Errorf("kernelsim: no parent pid %d", parentPID)
	}
	t := k.NewTask(TaskSpec{
		PID: pid, Comm: comm, Parent: parent,
		State: TaskRunning, VRuntime: 5_000_000 + uint64(pid)*1000,
	})
	sig, hand := k.MkSignalStructs(1, nil)
	t.SetObj("signal", sig)
	t.SetObj("sighand", hand)
	t.SetObj("files", k.MkFiles(nil))
	k.requeueCPU(0)
	return t, nil
}

// ExitTask marks a task zombie and dequeues it from its run queue, like
// do_exit before the parent reaps it.
func (k *Kernel) ExitTask(pid int) error {
	t, ok := k.ByPID[pid]
	if !ok {
		return fmt.Errorf("kernelsim: no pid %d", pid)
	}
	t.Set("__state", 0)
	t.Set("exit_state", ExitZombie)
	t.Set("exit_code", 0)
	t.Set("se.on_rq", 0)
	t.Set("on_rq", 0)
	cpu := t.Get("cpu")
	k.requeueCPU(cpu)
	return nil
}

// requeueCPU rebuilds a CPU's CFS red-black tree from the current runnable
// population (the enqueue/dequeue paths collapsed into one rebuild).
func (k *Kernel) requeueCPU(cpu uint64) {
	type ent struct {
		node, vr uint64
	}
	var es []ent
	for _, t := range k.Tasks {
		if t.Get("pid") == 0 || t.Get("__state") != TaskRunning || t.Get("exit_state") != 0 {
			continue
		}
		if t.Get("cpu") != cpu {
			// Newly spawned tasks land on the rebuilt CPU.
			if t.Get("on_rq") != 0 {
				continue
			}
			t.Set("cpu", cpu)
		}
		t.Set("on_rq", 1)
		t.Set("se.on_rq", 1)
		es = append(es, ent{node: t.FieldAddr("se.run_node"), vr: t.Get("se.vruntime")})
	}
	sort.Slice(es, func(i, j int) bool { return es[i].vr < es[j].vr })
	nodes := make([]uint64, len(es))
	for i, e := range es {
		nodes[i] = e.node
	}
	rq := k.Runqueues.Index(cpu)
	k.BuildRBTree(rq.FieldAddr("cfs.tasks_timeline"), nodes, true)
	rq.Set("cfs.nr_running", uint64(len(es)))
	rq.Set("nr_running", uint64(len(es)))
}

// collectMapleNodes gathers every node address of an mm's current maple
// tree (the set that a rebuild replaces).
func (k *Kernel) collectMapleNodes(mm Obj) []uint64 {
	var out []uint64
	root := mm.Field("mm_mt").Get("ma_root")
	if !XaIsNode(root) {
		return out
	}
	var walk func(enode uint64)
	walk = func(enode uint64) {
		node := MtToNode(enode)
		out = append(out, node)
		if MtNodeType(enode) == MapleLeaf64 {
			return
		}
		obj := k.At("maple_node", node)
		for s := uint64(0); s < MapleA64Slots; s++ {
			e, _ := k.Mem.ReadU64(obj.FieldAddr("ma64.slot") + s*8)
			if e != 0 && XaIsNode(e) {
				walk(e)
			}
		}
	}
	walk(root)
	return out
}

// rebuildMM rebuilds the mm's maple tree from the tracked mapping set,
// queueing every replaced maple node on CPU 0's RCU callback list with
// mt_free_rcu — the deferred free that opens the StackRot window.
func (k *Kernel) rebuildMM(mm Obj) {
	old := k.collectMapleNodes(mm)
	vmas := k.mmVMAs[mm.Addr]
	sort.Slice(vmas, func(i, j int) bool { return vmas[i].start < vmas[j].start })
	entries := make([]MapleEntry, 0, len(vmas))
	for _, mv := range vmas {
		entries = append(entries, MapleEntry{First: mv.start, Last: mv.end - 1, Ptr: mv.vma.Addr})
	}
	k.BuildMapleTree(mm.Field("mm_mt"), entries)
	mm.Set("map_count", uint64(len(vmas)))
	for _, node := range old {
		k.rcuEnqueue(0, k.At("maple_node", node).FieldAddr("rcu"), "mt_free_rcu")
	}
}

// MapRegion mmaps [start,end) into pid's address space (anonymous if file
// is empty), rebuilding the maple tree. The replaced nodes go to RCU.
func (k *Kernel) MapRegion(pid int, start, end, flags uint64, file Obj) (Obj, error) {
	t, ok := k.ByPID[pid]
	if !ok {
		return Obj{}, fmt.Errorf("kernelsim: no pid %d", pid)
	}
	mmAddr := t.Get("mm")
	if mmAddr == 0 {
		return Obj{}, fmt.Errorf("kernelsim: pid %d has no mm", pid)
	}
	if start >= end || start&(pageSize-1) != 0 || end&(pageSize-1) != 0 {
		return Obj{}, fmt.Errorf("kernelsim: bad range [%#x,%#x)", start, end)
	}
	mm := k.At("mm_struct", mmAddr)
	for _, mv := range k.mmVMAs[mm.Addr] {
		if start < mv.end && mv.start < end {
			return Obj{}, fmt.Errorf("kernelsim: range overlaps [%#x,%#x)", mv.start, mv.end)
		}
	}
	vma := k.Alloc("vm_area_struct")
	vma.Set("vm_start", start)
	vma.Set("vm_end", end)
	vma.Set("vm_flags", flags)
	vma.SetObj("vm_mm", mm)
	k.InitList(vma.FieldAddr("anon_vma_chain"))
	if !file.IsNil() {
		vma.SetObj("vm_file", file)
		mapping := k.At("address_space", file.Get("f_mapping"))
		k.attachIMmap(mapping, vma)
	}
	k.mmVMAs[mm.Addr] = append(k.mmVMAs[mm.Addr], mappedVMA{start: start, end: end, vma: vma})
	k.rebuildMM(mm)
	mm.Set("total_vm", mm.Get("total_vm")+((end-start)>>pageShift))
	return vma, nil
}

// UnmapRegion munmaps the mapping starting at start from pid's address
// space. The maple rebuild sends the replaced nodes to the RCU list.
func (k *Kernel) UnmapRegion(pid int, start uint64) error {
	t, ok := k.ByPID[pid]
	if !ok {
		return fmt.Errorf("kernelsim: no pid %d", pid)
	}
	mm := k.At("mm_struct", t.Get("mm"))
	vmas := k.mmVMAs[mm.Addr]
	idx := -1
	for i, mv := range vmas {
		if mv.start == start {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("kernelsim: no mapping at %#x", start)
	}
	k.mmVMAs[mm.Addr] = append(vmas[:idx], vmas[idx+1:]...)
	k.rebuildMM(mm)
	return nil
}

// SendSignal queues a signal on pid's private pending list, like
// __send_signal with a freshly allocated sigqueue.
func (k *Kernel) SendSignal(pid, sig, fromPid int) error {
	t, ok := k.ByPID[pid]
	if !ok {
		return fmt.Errorf("kernelsim: no pid %d", pid)
	}
	q := k.Alloc("sigqueue")
	q.Set("si_signo", uint64(sig))
	q.Set("si_code", 0)
	q.Set("si_pid", uint64(fromPid))
	k.ListAddTail(t.FieldAddr("pending.list"), q.FieldAddr("list"))
	// set the bit in pending.signal (sigset word 0)
	sigAddr := t.FieldAddr("pending.signal.sig")
	old, _ := k.Mem.ReadU64(sigAddr)
	k.Mem.WriteU64(sigAddr, old|1<<(uint(sig)-1))
	return nil
}

// PipeWrite appends bytes to a pipe ring: merges into the head buffer when
// CAN_MERGE allows (this is the Dirty Pipe write primitive — against a
// spliced page-cache buffer it corrupts the file's page), else occupies a
// fresh slot with a new anonymous page.
func (k *Kernel) PipeWrite(pipe Obj, n uint64) error {
	head := pipe.Get("head")
	tail := pipe.Get("tail")
	ringSize := pipe.Get("ring_size")
	bufs := pipe.Get("bufs")
	bufT := k.typeOf("pipe_buffer")
	if head > tail {
		last := k.At("pipe_buffer", bufs+((head-1)&(ringSize-1))*bufT.Size())
		if last.Get("flags")&PipeBufFlagCanMerge != 0 {
			// Merge into the existing buffer's page — if that page belongs
			// to a file's page cache, mark it dirty: the corruption.
			last.Set("len", last.Get("len")+n)
			pg := k.At("page", last.Get("page"))
			if pg.Get("mapping") != 0 {
				pg.Set("flags", pg.Get("flags")|PGDirty)
			}
			return nil
		}
	}
	if head-tail >= ringSize {
		return fmt.Errorf("kernelsim: pipe full")
	}
	pg, _ := k.AllocPage()
	pg.Set("_refcount", 1)
	buf := k.At("pipe_buffer", bufs+(head&(ringSize-1))*bufT.Size())
	buf.SetObj("page", pg)
	buf.Set("len", n)
	buf.Set("offset", 0)
	buf.Set("flags", PipeBufFlagCanMerge)
	pipe.Set("head", head+1)
	return nil
}

// SpliceToPipe zero-copies a page-cache page of file into the pipe ring —
// copy_page_to_iter_pipe(). withBug leaves the stale CAN_MERGE flag in
// place (the CVE-2022-0847 omission); without it the flags are properly
// cleared.
func (k *Kernel) SpliceToPipe(file Obj, pageIndex uint64, pipe Obj, n uint64, withBug bool) error {
	mapping := k.At("address_space", file.Get("f_mapping"))
	// find the page in the cache
	var pageAddr uint64
	head := mapping.Field("i_pages").Get("xa_head")
	if head == 0 {
		return fmt.Errorf("kernelsim: empty page cache")
	}
	if !XaIsNode(head) {
		if pageIndex == 0 {
			pageAddr = head
		}
	} else {
		entry := head
		for {
			node := k.At("xa_node", XaToNode(entry))
			shift := node.Get("shift")
			slot := (pageIndex >> shift) & (XAChunkSize - 1)
			e, _ := k.Mem.ReadU64(node.FieldAddr("slots") + slot*8)
			if e == 0 {
				break
			}
			if shift == 0 || e&3 != 2 {
				pageAddr = e
				break
			}
			entry = e
		}
	}
	if pageAddr == 0 {
		return fmt.Errorf("kernelsim: page %d not in cache", pageIndex)
	}
	headIdx := pipe.Get("head")
	tail := pipe.Get("tail")
	ringSize := pipe.Get("ring_size")
	if headIdx-tail >= ringSize {
		return fmt.Errorf("kernelsim: pipe full")
	}
	bufT := k.typeOf("pipe_buffer")
	buf := k.At("pipe_buffer", pipe.Get("bufs")+(headIdx&(ringSize-1))*bufT.Size())
	buf.Set("page", pageAddr)
	buf.Set("offset", 0)
	buf.Set("len", n)
	if sym, ok := k.Tgt.LookupSymbol("page_cache_pipe_buf_ops"); ok {
		buf.Set("ops", sym.Addr)
	}
	if withBug {
		// The CVE: flags inherited from the slot's previous occupant are
		// not cleared; a previously-merged anon buffer leaves CAN_MERGE.
		buf.Set("flags", buf.Get("flags")|PipeBufFlagCanMerge)
	} else {
		buf.Set("flags", 0)
	}
	pg := k.At("page", pageAddr)
	pg.Set("_refcount", pg.Get("_refcount")+1)
	pipe.Set("head", headIdx+1)
	return nil
}

// churn ages the freshly built state through rounds deterministic
// transitions, approximating the paper's workload having run for a while
// before the debugger breaks in.
func (k *Kernel) churn(rounds int) {
	if rounds <= 0 {
		return
	}
	w := NewWorkload(k)
	for i := 0; i < rounds; i++ {
		w.Step()
	}
}

// applyVariants applies the fleet-heterogeneity options after the base
// build: zombie leftovers and pipe pressure are ordinary mutations, run
// through the same transition paths the live workload uses so every
// derived structure stays consistent.
func (k *Kernel) applyVariants(opts Options) {
	for i := 0; i < opts.ZombieTasks; i++ {
		pid := 700 + i
		if _, err := k.SpawnTask(pid, "zombie", 1); err == nil {
			_ = k.ExitTask(pid)
		}
	}
	if opts.PipeBurst > 0 {
		p := k.MakePipe()
		for i := 0; i < opts.PipeBurst; i++ {
			_ = k.PipeWrite(p, uint64(64+i*16))
		}
	}
}

// Workload is the deterministic mutation stepper behind churn, exported so
// free-run mode (vlserver -run-interval) and the streaming bench can keep
// aging the kernel between stop events: each Step maps/unmaps memory,
// delivers a signal, writes the pipe, and periodically spawns or exits a
// task — touching the address-space, signal, pipe, and task figures.
type Workload struct {
	k    *Kernel
	pipe Obj
	i    int
}

// NewWorkload initializes a stepper over k (creating its scratch pipe).
func NewWorkload(k *Kernel) *Workload {
	return &Workload{k: k, pipe: k.MakePipe()}
}

// Steps reports how many mutation steps have run.
func (w *Workload) Steps() int { return w.i }

// Step applies one deterministic mutation round.
func (w *Workload) Step() {
	k, i := w.k, w.i
	w.i++
	pid := 100 + (i*2)%8 // rotate over the workload leaders
	start := uint64(0x7500_0000_0000) + uint64(i)*0x100000
	if _, err := k.MapRegion(pid, start, start+0x20000, VMRead|VMWrite, Obj{}); err == nil && i%3 == 0 {
		_ = k.UnmapRegion(pid, start)
	}
	_ = k.SendSignal(pid, 10+(i%5), 1)
	_ = k.PipeWrite(w.pipe, uint64(64+i*16))
	if i%4 == 3 {
		if _, err := k.SpawnTask(900+i, "churn", 1); err == nil && i%8 == 7 {
			_ = k.ExitTask(900 + i)
		}
	}
}

// MakePipe creates a fresh empty pipe with its pipefs inode, returning the
// pipe_inode_info.
func (k *Kernel) MakePipe() Obj {
	ino := k.MkInode(k.vfs().sbPipefs, SIFIFO|0o600, 0)
	pi := k.Alloc("pipe_inode_info")
	ino.SetObj("i_pipe", pi)
	pi.Set("ring_size", PipeRingSize)
	pi.Set("max_usage", PipeRingSize)
	pi.Set("readers", 1)
	pi.Set("writers", 1)
	pi.Set("bufs", k.AllocArray("pipe_buffer", PipeRingSize).Addr)
	return pi
}
