package kernelsim

// VFS core: filesystem types, superblocks, inodes, dentries, files and
// their page caches. Reproduces the object topology behind ULK Fig 12-3
// (fd array), Fig 14-3 (block device descriptors via super_block), Fig 15-1
// (page-cache radix tree), Fig 16-2 (file memory mapping) and the
// "from process to VFS" figure (#20).

// File mode bits.
const (
	SIFIFO  = 0x1000
	SIFCHR  = 0x2000
	SIFDIR  = 0x4000
	SIFBLK  = 0x6000
	SIFREG  = 0x8000
	SIFLNK  = 0xA000
	SIFSOCK = 0xC000
)

// vfsState carries the VFS handles other builders need.
type vfsState struct {
	superBlocksHead uint64 // list_head symbol address
	sbExt4          Obj
	sbProc          Obj
	sbTmpfs         Obj
	sbPipefs        Obj
	sbSockfs        Obj
	rootDentry      Obj
	nextIno         uint64
	consoleFile     Obj
	fileOps         Obj // shared file_operations for regular files
	pipeOps         Obj
	sockOps         Obj
}

var _ = SIFLNK

func (k *Kernel) vfs() *vfsState { return k.vfsSt }

func (k *Kernel) buildVFSCore() {
	st := &vfsState{nextIno: 2}
	k.vfsSt = st

	// --- file_operations tables ----------------------------------------
	st.fileOps = k.Alloc("file_operations")
	st.fileOps.Set("read_iter", k.Func("generic_file_read_iter"))
	st.fileOps.Set("write_iter", k.Func("generic_file_write_iter"))
	st.fileOps.Set("mmap", k.Func("generic_file_mmap"))
	st.fileOps.Set("open", k.Func("generic_file_open"))
	st.fileOps.Set("llseek", k.Func("generic_file_llseek"))
	k.Symbol("ext4_file_operations", st.fileOps)
	st.pipeOps = k.Alloc("file_operations")
	st.pipeOps.Set("read_iter", k.Func("pipe_read"))
	st.pipeOps.Set("write_iter", k.Func("pipe_write"))
	k.Symbol("pipefifo_fops", st.pipeOps)
	st.sockOps = k.Alloc("file_operations")
	st.sockOps.Set("read_iter", k.Func("sock_read_iter"))
	st.sockOps.Set("write_iter", k.Func("sock_write_iter"))
	k.Symbol("socket_file_ops", st.sockOps)

	// --- registered filesystem types (symbol: file_systems) -------------
	names := []string{"ext4", "proc", "tmpfs", "pipefs", "sockfs"}
	var prev Obj
	var first Obj
	for _, n := range names {
		ft := k.Alloc("file_system_type")
		ft.SetStrPtr("name", n)
		ft.Set("mount", k.Func(n+"_mount"))
		ft.Set("kill_sb", k.Func("kill_block_super"))
		if prev.IsNil() {
			first = ft
		} else {
			prev.SetObj("next", ft)
		}
		prev = ft
	}
	// file_systems is a pointer variable: allocate a cell holding it.
	cell := k.AllocRaw(8, 8)
	k.Mem.WriteU64(cell, first.Addr)
	k.SymbolAddr("file_systems", cell, k.typeOf("file_system_type").PointerTo())

	// --- super_blocks list -----------------------------------------------
	head := k.AllocRaw(16, 8)
	k.InitList(head)
	st.superBlocksHead = head
	k.SymbolAddr("super_blocks", head, k.typeOf("list_head"))
	k.SuperBlocks = k.At("list_head", head)

	mkSB := func(id string, fsIdx int, magic uint64, blocksize uint64) Obj {
		sb := k.Alloc("super_block")
		sb.SetStr("s_id", id)
		sb.Set("s_blocksize", blocksize)
		sb.Set("s_blocksize_bits", 12)
		sb.Set("s_magic", magic)
		sb.Set("s_count", 1)
		sb.Set("s_active", 1)
		// find fs type by walking our chain again
		ft := first
		for i := 0; i < fsIdx; i++ {
			ft = k.At("file_system_type", ft.Get("next"))
		}
		sb.SetObj("s_type", ft)
		k.InitList(sb.FieldAddr("s_inodes"))
		k.ListAddTail(head, sb.FieldAddr("s_list"))
		return sb
	}
	st.sbExt4 = mkSB("sda1", 0, 0xEF53, 4096)
	st.sbProc = mkSB("proc", 1, 0x9fa0, 4096)
	st.sbTmpfs = mkSB("tmpfs", 2, 0x01021994, 4096)
	st.sbPipefs = mkSB("pipefs:", 3, 0x50495045, 4096)
	st.sbSockfs = mkSB("sockfs:", 4, 0x534F434B, 4096)
	k.RootSB = st.sbExt4

	// Root dentry for ext4.
	rootIno := k.MkInode(st.sbExt4, SIFDIR|0o755, 4096)
	st.rootDentry = k.MkDentry("/", Obj{}, rootIno)
	st.sbExt4.SetObj("s_root", st.rootDentry)

	// Console char device file shared by every task's fds 0-2.
	consIno := k.MkInode(st.sbExt4, SIFCHR|0o620, 0)
	consIno.Set("i_rdev", 5<<20|1) // MKDEV(5,1)
	consDentry := k.MkDentry("console", st.rootDentry, consIno)
	st.consoleFile = k.MkFile(consDentry, 2 /*O_RDWR*/)
}

// MkInode allocates an inode on sb with its own address_space.
func (k *Kernel) MkInode(sb Obj, mode uint64, size uint64) Obj {
	st := k.vfs()
	ino := k.Alloc("inode")
	ino.Set("i_mode", mode)
	ino.Set("i_ino", st.nextIno)
	st.nextIno++
	ino.Set("i_size", size)
	ino.Set("i_nlink", 1)
	ino.Set("i_count", 1)
	ino.SetObj("i_sb", sb)
	// i_mapping points at the embedded i_data.
	data := ino.Field("i_data")
	data.Set("host", ino.Addr)
	ino.Set("i_mapping", data.Addr)
	k.InitList(ino.FieldAddr("i_sb_list"))
	if !sb.IsNil() {
		k.ListAddTail(sb.FieldAddr("s_inodes"), ino.FieldAddr("i_sb_list"))
	}
	return ino
}

// MkDentry allocates a dentry named name under parent (may be empty for the
// root), pointing at ino.
func (k *Kernel) MkDentry(name string, parent Obj, ino Obj) Obj {
	d := k.Alloc("dentry")
	d.SetStr("d_iname", name)
	d.Set("d_name.hash_len", uint64(len(name))<<32)
	d.Set("d_name.name", d.FieldAddr("d_iname"))
	d.Set("d_lockref_count", 1)
	if !ino.IsNil() {
		d.SetObj("d_inode", ino)
		d.SetObj("d_sb", k.At("super_block", ino.Get("i_sb")))
		k.HListAddHead(ino.FieldAddr("i_dentry"), k.AllocRaw(16, 8)) // alias stub
	}
	k.InitList(d.FieldAddr("d_subdirs"))
	k.InitList(d.FieldAddr("d_child"))
	if !parent.IsNil() {
		d.SetObj("d_parent", parent)
		k.ListAddTail(parent.FieldAddr("d_subdirs"), d.FieldAddr("d_child"))
	} else {
		d.SetObj("d_parent", d) // root points at itself
	}
	return d
}

// MkFile opens a struct file over dentry.
func (k *Kernel) MkFile(dentry Obj, flags uint64) Obj {
	st := k.vfs()
	f := k.Alloc("file")
	ino := k.At("inode", dentry.Get("d_inode"))
	f.SetObj("f_path.dentry", dentry)
	f.SetObj("f_inode", ino)
	f.Set("f_mapping", ino.Get("i_mapping"))
	f.Set("f_flags", flags)
	f.Set("f_mode", 0x1|0x2) // FMODE_READ|FMODE_WRITE
	f.Set("f_count", 1)
	mode := ino.Get("i_mode") & 0xF000
	switch mode {
	case SIFIFO:
		f.SetObj("f_op", st.pipeOps)
	case SIFSOCK:
		f.SetObj("f_op", st.sockOps)
	default:
		f.SetObj("f_op", st.fileOps)
	}
	k.Files = append(k.Files, f)
	return f
}

// MkRegularFile creates an ext4 file with a populated page cache and
// returns the struct file. Pages get PGUptodate|PGLRU and sequential
// indices; every page's mapping points back at the address_space.
func (k *Kernel) MkRegularFile(name string, sizePages int) Obj {
	st := k.vfs()
	ino := k.MkInode(st.sbExt4, SIFREG|0o644, uint64(sizePages)*pageSize)
	d := k.MkDentry(name, st.rootDentry, ino)
	f := k.MkFile(d, 2)
	k.PopulatePageCache(ino, sizePages)
	return f
}

// PopulatePageCache fills ino's i_data xarray with sizePages pages.
func (k *Kernel) PopulatePageCache(ino Obj, sizePages int) []Obj {
	mapping := ino.Field("i_data")
	items := make(map[uint64]uint64, sizePages)
	pages := make([]Obj, 0, sizePages)
	for i := 0; i < sizePages; i++ {
		pg, _ := k.AllocPage()
		pg.Set("flags", PGUptodate|PGLRU)
		pg.Set("mapping", mapping.Addr)
		pg.Set("index", uint64(i))
		pg.Set("_refcount", 2)
		pg.Set("_mapcount", ^uint64(0)&0xffffffff) // -1: not pte-mapped
		items[uint64(i)] = pg.Addr
		pages = append(pages, pg)
	}
	k.BuildXArray(mapping.Field("i_pages"), items)
	mapping.Set("nrpages", uint64(sizePages))
	return pages
}
