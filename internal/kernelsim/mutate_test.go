package kernelsim

import "testing"

func TestSpawnAndExit(t *testing.T) {
	k := Build(Options{})
	before := len(k.Tasks)
	nt, err := k.SpawnTask(500, "newproc", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Tasks) != before+1 || k.ByPID[500].Addr != nt.Addr {
		t.Fatal("task not registered")
	}
	if nt.Get("on_rq") != 1 {
		t.Error("spawned task not runnable")
	}
	// Its run_node must be in CPU 0's tree.
	rq := k.Runqueues.Index(0)
	found := false
	var walk func(addr uint64)
	walk = func(addr uint64) {
		if addr == 0 {
			return
		}
		if addr == nt.FieldAddr("se.run_node") {
			found = true
		}
		r, _ := k.Mem.ReadU64(addr + 8)
		l, _ := k.Mem.ReadU64(addr + 16)
		walk(l)
		walk(r)
	}
	root, _ := k.Mem.ReadU64(rq.FieldAddr("cfs.tasks_timeline"))
	walk(root)
	if !found {
		t.Error("spawned task not on the run queue")
	}
	// Duplicate pid rejected.
	if _, err := k.SpawnTask(500, "dup", 1); err == nil {
		t.Error("duplicate pid accepted")
	}

	// Exit: dequeued, zombie.
	if err := k.ExitTask(500); err != nil {
		t.Fatal(err)
	}
	if nt.Get("exit_state") != ExitZombie {
		t.Error("not zombie")
	}
	found = false
	root, _ = k.Mem.ReadU64(rq.FieldAddr("cfs.tasks_timeline"))
	walk(root)
	if found {
		t.Error("zombie still enqueued")
	}
}

func TestMapUnmapWithRCUDeferredFree(t *testing.T) {
	k := Build(Options{})
	mm := k.At("mm_struct", k.ByPID[100].Get("mm"))
	mapsBefore := len(k.mmVMAs[mm.Addr])
	rcuBefore := k.RCUData.Index(0).Get("cblist.len")

	vma, err := k.MapRegion(100, 0x7000_0000_0000, 0x7000_0002_0000, VMRead|VMWrite, Obj{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(k.mmVMAs[mm.Addr]); got != mapsBefore+1 {
		t.Fatalf("maps = %d", got)
	}
	if mm.Get("map_count") != uint64(mapsBefore+1) {
		t.Errorf("map_count = %d", mm.Get("map_count"))
	}
	// The new mapping is findable in the rebuilt maple tree.
	if got := mapleLookup(k, mm.Field("mm_mt"), 0x7000_0001_0000); got != vma.Addr {
		t.Errorf("lookup after map = %#x, want %#x", got, vma.Addr)
	}
	// The rebuild queued the replaced nodes on RCU (the StackRot
	// mechanism): cblist grew.
	rcuAfterMap := k.RCUData.Index(0).Get("cblist.len")
	if rcuAfterMap <= rcuBefore {
		t.Errorf("no deferred frees after rebuild: %d -> %d", rcuBefore, rcuAfterMap)
	}

	// Overlap rejected.
	if _, err := k.MapRegion(100, 0x7000_0001_0000, 0x7000_0003_0000, VMRead, Obj{}); err == nil {
		t.Error("overlapping map accepted")
	}
	// Unaligned rejected.
	if _, err := k.MapRegion(100, 0x7000_1000_0123, 0x7000_1000_2000, VMRead, Obj{}); err == nil {
		t.Error("unaligned map accepted")
	}

	// Unmap: gone from the tree.
	if err := k.UnmapRegion(100, 0x7000_0000_0000); err != nil {
		t.Fatal(err)
	}
	if got := mapleLookup(k, mm.Field("mm_mt"), 0x7000_0001_0000); got != 0 {
		t.Errorf("lookup after unmap = %#x", got)
	}
	if err := k.UnmapRegion(100, 0xdead_0000); err == nil {
		t.Error("bogus unmap accepted")
	}
}

func TestSendSignal(t *testing.T) {
	k := Build(Options{})
	if err := k.SendSignal(100, 10, 1); err != nil {
		t.Fatal(err)
	}
	tsk := k.ByPID[100]
	sig, _ := k.Mem.ReadU64(tsk.FieldAddr("pending.signal.sig"))
	if sig&(1<<9) == 0 {
		t.Errorf("SIGUSR1 bit not set: %#x", sig)
	}
	// The queue holds one sigqueue whose si_signo is 10.
	head := tsk.FieldAddr("pending.list")
	first, _ := k.Mem.ReadU64(head)
	if first == head {
		t.Fatal("pending list empty")
	}
	q := k.At("sigqueue", first) // list field is at offset 0
	if q.Get("si_signo") != 10 || q.Get("si_pid") != 1 {
		t.Errorf("sigqueue = signo %d from %d", q.Get("si_signo"), q.Get("si_pid"))
	}
	if err := k.SendSignal(99999, 9, 1); err == nil {
		t.Error("signal to missing pid accepted")
	}
}

// TestDirtyPipeDynamics replays the CVE step by step: a clean pipe, a
// buggy splice, then a write that merges into the file's page and dirties
// it — the corruption becoming visible in the state.
func TestDirtyPipeDynamics(t *testing.T) {
	k := Build(Options{DisableDirtyPipe: true})
	pipe := k.MakePipe()
	file := k.DirtyFile // test.txt

	// Step 1: a normal write occupies slot 0 with CAN_MERGE (legit).
	if err := k.PipeWrite(pipe, 100); err != nil {
		t.Fatal(err)
	}
	// Step 2: buggy splice of test.txt page 0.
	if err := k.SpliceToPipe(file, 0, pipe, 512, true); err != nil {
		t.Fatal(err)
	}
	bufT := k.typeOf("pipe_buffer")
	spliced := k.At("pipe_buffer", pipe.Get("bufs")+1*bufT.Size())
	if spliced.Get("flags")&PipeBufFlagCanMerge == 0 {
		t.Fatal("bug flag missing")
	}
	pg := k.At("page", spliced.Get("page"))
	if pg.Get("mapping") != file.Get("f_mapping") {
		t.Fatal("spliced page is not the file's")
	}
	if pg.Get("flags")&PGDirty != 0 {
		t.Fatal("page dirty too early")
	}
	// Step 3: the attacker's pipe write merges into the shared page.
	if err := k.PipeWrite(pipe, 64); err != nil {
		t.Fatal(err)
	}
	if pg.Get("flags")&PGDirty == 0 {
		t.Error("corruption did not reach the page cache (PG_dirty missing)")
	}

	// Counterfactual: a correct splice (flags cleared) does not corrupt.
	k2 := Build(Options{DisableDirtyPipe: true})
	p2 := k2.MakePipe()
	if err := k2.PipeWrite(p2, 100); err != nil {
		t.Fatal(err)
	}
	if err := k2.SpliceToPipe(k2.DirtyFile, 0, p2, 512, false); err != nil {
		t.Fatal(err)
	}
	if err := k2.PipeWrite(p2, 64); err != nil {
		t.Fatal(err)
	}
	b1 := k2.At("pipe_buffer", p2.Get("bufs")+1*k2.typeOf("pipe_buffer").Size())
	pg2 := k2.At("page", b1.Get("page"))
	if pg2.Get("flags")&PGDirty != 0 {
		t.Error("fixed kernel still corrupts")
	}
	// The write landed in a fresh slot instead.
	if p2.Get("head") != 3 {
		t.Errorf("head = %d, want 3 (new slot used)", p2.Get("head"))
	}
}

// TestChurnAgesState: churned kernels stay consistent and still extract.
func TestChurnAgesState(t *testing.T) {
	k := Build(Options{Churn: 16})
	// RCU lists populated by the rebuilds.
	total := uint64(0)
	for cpu := uint64(0); cpu < NrCPUs; cpu++ {
		total += k.RCUData.Index(cpu).Get("cblist.len")
	}
	if total == 0 {
		t.Error("churn produced no deferred frees")
	}
	// Spawned churn tasks registered.
	if _, ok := k.ByPID[903]; !ok {
		t.Error("churn did not spawn tasks")
	}
	// Maple trees still internally consistent for every workload mm.
	for mmAddr, vmas := range k.mmVMAs {
		mm := k.At("mm_struct", mmAddr)
		for _, mv := range vmas {
			got := mapleLookup(k, mm.Field("mm_mt"), mv.start)
			if got != mv.vma.Addr {
				t.Fatalf("mm %#x: lookup(%#x) = %#x, want %#x", mmAddr, mv.start, got, mv.vma.Addr)
			}
		}
	}
	// Pending signals accumulated.
	sig, _ := k.Mem.ReadU64(k.ByPID[100].FieldAddr("pending.signal.sig"))
	if sig == 0 {
		t.Error("no pending signals after churn")
	}
}
