package kernelsim

import "fmt"

// buildIRQ populates the irq_desc array (ULK Fig 4-5). A few IRQs have
// configured actions (some chained), the rest are unconfigured.
func (k *Kernel) buildIRQ() {
	descs := k.AllocArray("irq_desc", NrIRQs)
	k.SymbolAddr("irq_desc", descs.Addr, k.typeOf("irq_desc").ArrayOf(NrIRQs))

	chip := k.Alloc("irq_chip")
	chip.SetStrPtr("name", "IO-APIC")
	chip.Set("irq_startup", k.Func("irq_startup_default"))
	chip.Set("irq_enable", k.Func("apic_irq_enable"))
	chip.Set("irq_disable", k.Func("apic_irq_disable"))

	actions := map[int][]string{
		1:  {"i8042_interrupt"},
		4:  {"serial8250_interrupt"},
		8:  {"rtc_interrupt"},
		11: {"e1000_intr", "ahci_interrupt"}, // shared line
		14: {"ata_bmdma_interrupt"},
	}
	for i := 0; i < NrIRQs; i++ {
		d := descs.Index(uint64(i))
		d.Set("irq_data.irq", uint64(i))
		d.Set("irq_data.hwirq", uint64(i))
		d.SetObj("irq_data.chip", chip)
		d.Set("handle_irq", k.Func("handle_edge_irq"))
		d.SetStrPtr("name", fmt.Sprintf("edge-%d", i))
		if handlers, ok := actions[i]; ok {
			var prev Obj
			for _, h := range handlers {
				a := k.Alloc("irqaction")
				a.Set("handler", k.Func(h))
				a.Set("irq", uint64(i))
				a.SetStrPtr("name", h)
				if prev.IsNil() {
					d.SetObj("action", a)
				} else {
					prev.SetObj("next", a)
				}
				prev = a
			}
		} else {
			d.Set("depth", 1) // disabled, no action
		}
	}
}

// buildTimers populates per-CPU timer wheels (ULK Fig 6-1).
func (k *Kernel) buildTimers() {
	bases := k.AllocArray("timer_base", NrCPUs)
	k.SymbolAddr("timer_bases", bases.Addr, k.typeOf("timer_base").ArrayOf(NrCPUs))
	jiffies := uint64(4_295_000_000)
	jc := k.AllocRaw(8, 8)
	k.Mem.WriteU64(jc, jiffies)
	k.SymbolAddr("jiffies", jc, k.typeOf("unsigned long"))

	timerFns := []string{
		"process_timeout", "delayed_work_timer_fn", "tcp_keepalive_timer",
		"neigh_timer_handler", "commit_timeout", "blk_rq_timed_out_timer",
		"writeout_period", "mce_timer_fn", "dev_watchdog",
	}
	const wheelSize = 64
	fn := 0
	for cpu := uint64(0); cpu < NrCPUs; cpu++ {
		base := bases.Index(cpu)
		base.Set("cpu", cpu)
		base.Set("clk", jiffies)
		base.Set("next_expiry", jiffies+12)
		// Scatter timers across a few buckets; some buckets get chains.
		for b := 0; b < 10; b++ {
			bucket := base.FieldAddr("vectors") + uint64(b*3%wheelSize)*8
			n := 1 + (b % 3)
			for j := 0; j < n; j++ {
				tl := k.Alloc("timer_list")
				tl.Set("expires", jiffies+uint64(b*3+j+1))
				tl.Set("function", k.Func(timerFns[fn%len(timerFns)]))
				tl.Set("flags", cpu|uint64(b)<<22)
				k.HListAddHead(bucket, tl.FieldAddr("entry"))
				fn++
			}
		}
	}
}

// buildBuddy populates one NUMA node with zones and buddy free lists
// (ULK Fig 8-2), backing the free lists with real struct pages flagged
// PGBuddy whose buddy_order records their order.
func (k *Kernel) buildBuddy() {
	node := k.Alloc("pglist_data")
	k.NodeData = node
	k.Symbol("node_data0", node)
	node.Set("nr_zones", MaxNrZones)
	node.Set("node_start_pfn", 1)

	pageT := k.typeOf("page")
	k.SymbolAddr("vmemmap", vmemmapBase, pageT.PointerTo())

	zoneNames := []string{"DMA", "DMA32", "Normal"}
	present := []uint64{4096, 1_044_480, 262_144}
	for zi := 0; zi < MaxNrZones; zi++ {
		z := node.Field("node_zones").Index(uint64(zi))
		z.SetStrPtr("name", zoneNames[zi])
		z.Set("zone_start_pfn", 1+uint64(zi)*4096)
		z.Set("present_pages", present[zi])
		z.Set("spanned_pages", present[zi])
		z.Set("managed_pages", present[zi]*95/100)
		totalFree := uint64(0)
		for order := 0; order < MaxOrder; order++ {
			fa := z.Field("free_area").Index(uint64(order))
			for mt := 0; mt < MigrateTypes; mt++ {
				head := fa.FieldAddr("free_list") + uint64(mt)*16
				k.InitList(head)
				// A couple of free blocks on the interesting lists.
				nblocks := 0
				if zi == 2 { // ZONE_NORMAL gets the visible population
					nblocks = (order+mt)%3 + 1
				}
				for bi := 0; bi < nblocks; bi++ {
					pg, _ := k.AllocPage()
					pg.Set("buddy_flags", PGBuddy)
					pg.Set("buddy_order", uint64(order))
					k.ListAddTail(head, pg.FieldAddr("buddy_list"))
					totalFree += 1 << order
				}
			}
			fa.Set("nr_free", totalFree)
		}
	}
}

// buildSlab populates the slab_caches list with SLUB caches and partial
// slabs (ULK Fig 8-4).
func (k *Kernel) buildSlab() {
	head := k.AllocRaw(16, 8)
	k.InitList(head)
	k.SymbolAddr("slab_caches", head, k.typeOf("list_head"))

	caches := []struct {
		name    string
		objSize uint64
		perSlab int
		partial int
	}{
		{"kmalloc-64", 64, 64, 2},
		{"kmalloc-256", 256, 16, 1},
		{"task_struct", k.typeOf("task_struct").Size(), 8, 1},
		{"vm_area_struct", k.typeOf("vm_area_struct").Size(), 16, 2},
		{"maple_node", 256, 16, 1},
		{"dentry", k.typeOf("dentry").Size(), 16, 1},
		{"inode_cache", k.typeOf("inode").Size(), 8, 0},
	}
	for _, c := range caches {
		kc := k.Alloc("kmem_cache")
		kc.SetStrPtr("name", c.name)
		kc.Set("object_size", c.objSize)
		kc.Set("size", (c.objSize+63)&^63)
		kc.Set("oo", uint64(c.perSlab))
		kc.Set("min_partial", 5)
		k.ListAddTail(head, kc.FieldAddr("list"))

		cpuSlab := k.Alloc("kmem_cache_cpu")
		kc.SetObj("cpu_slab", cpuSlab)
		nodeC := k.Alloc("kmem_cache_node")
		k.InitList(nodeC.FieldAddr("partial"))
		nodeC.Set("nr_partial", uint64(c.partial))
		k.Mem.WriteU64(kc.FieldAddr("node"), nodeC.Addr)

		mkSlab := func(inuse int) Obj {
			s := k.Alloc("slab") // stands in for the page-embedded slab
			s.SetObj("slab_cache", kc)
			s.Set("objects", uint64(c.perSlab))
			s.Set("inuse", uint64(inuse))
			if inuse < c.perSlab {
				s.Set("freelist", k.AllocRaw(c.objSize, 8))
			}
			k.InitList(s.FieldAddr("slab_list"))
			return s
		}
		active := mkSlab(c.perSlab / 2)
		cpuSlab.SetObj("slab", active)
		cpuSlab.Set("freelist", active.Get("freelist"))
		for i := 0; i < c.partial; i++ {
			ps := mkSlab(c.perSlab - 1 - i)
			k.ListAddTail(nodeC.FieldAddr("partial"), ps.FieldAddr("slab_list"))
		}
	}
}
