package kernelsim

import (
	"fmt"
	"sync"

	"visualinux/internal/ctypes"
	"visualinux/internal/mem"
	"visualinux/internal/target"
)

// Address-space layout of the simulated kernel, mirroring x86_64 Linux.
const (
	arenaBase   = 0xffff_8880_0000_0000 // direct map: all allocations
	vmemmapBase = 0xffff_ea00_0000_0000 // struct page array
	textBase    = 0xffff_ffff_8100_0000 // kernel text: fake function addresses
	pageShift   = 12
	pageSize    = 1 << pageShift
)

// Builder allocates and wires kernel objects in simulated memory.
type Builder struct {
	Mem   *mem.Memory
	Tgt   *target.Sim
	Reg   *ctypes.Registry
	next  uint64 // arena bump pointer
	text  uint64 // next fake function address
	pfn   uint64 // next free page frame number
	funcs map[string]uint64
}

var (
	sharedRegOnce sync.Once
	sharedReg     *ctypes.Registry
)

// SharedRegistry returns the process-wide kernel type registry, built on
// first use. The registry is immutable after RegisterTypes (lookups are
// read-only and pointer derivation is atomic), so every kernel — and every
// session on top of one — can share a single copy instead of re-declaring
// the full type catalog per Build.
func SharedRegistry() *ctypes.Registry {
	sharedRegOnce.Do(func() {
		sharedReg = RegisterTypes(ctypes.NewRegistry())
	})
	return sharedReg
}

// NewBuilder creates an empty simulated kernel image.
func NewBuilder() *Builder {
	m := mem.New()
	reg := SharedRegistry()
	b := &Builder{
		Mem:   m,
		Tgt:   target.NewSim(m, reg),
		Reg:   reg,
		next:  arenaBase,
		text:  textBase,
		pfn:   1, // pfn 0 reserved
		funcs: make(map[string]uint64),
	}
	return b
}

// Obj is a handle to an allocated kernel object: address + static type.
type Obj struct {
	B    *Builder
	Addr uint64
	Type *ctypes.Type
}

// IsNil reports whether the handle is empty.
func (o Obj) IsNil() bool { return o.B == nil || o.Addr == 0 }

// AllocRaw reserves size bytes with the given alignment in the arena.
func (b *Builder) AllocRaw(size, align uint64) uint64 {
	if align == 0 {
		align = 8
	}
	b.next = (b.next + align - 1) &^ (align - 1)
	addr := b.next
	b.next += size
	// Touch the range so reads of never-written fields see zeroes instead
	// of unmapped errors (the kernel zeroes most allocations too).
	b.Mem.Write(addr, make([]byte, size))
	return addr
}

// Alloc allocates a zeroed object of the named type.
func (b *Builder) Alloc(typeName string) Obj {
	t := b.Reg.MustLookup(typeName)
	return Obj{B: b, Addr: b.AllocRaw(t.Size(), t.Align()), Type: t}
}

// AllocAligned allocates with an explicit alignment (e.g. 256 for maple
// nodes whose pointers carry type tags in the low bits).
func (b *Builder) AllocAligned(typeName string, align uint64) Obj {
	t := b.Reg.MustLookup(typeName)
	return Obj{B: b, Addr: b.AllocRaw(t.Size(), align), Type: t}
}

// AllocArray allocates a zeroed array of n objects of the named type and
// returns the handle of element 0.
func (b *Builder) AllocArray(typeName string, n uint64) Obj {
	t := b.Reg.MustLookup(typeName)
	return Obj{B: b, Addr: b.AllocRaw(t.Size()*n, t.Align()), Type: t}
}

// CString allocates a NUL-terminated string in the arena and returns its
// address.
func (b *Builder) CString(s string) uint64 {
	addr := b.AllocRaw(uint64(len(s)+1), 1)
	b.Mem.WriteCString(addr, s)
	return addr
}

// Func returns a stable fake text address for the named kernel function,
// registering it as a symbol so the fptr decorator can resolve it back.
func (b *Builder) Func(name string) uint64 {
	if a, ok := b.funcs[name]; ok {
		return a
	}
	a := b.text
	b.text += 16
	b.funcs[name] = a
	b.Tgt.AddSymbol(name, a, ctypes.FuncType)
	return a
}

// Symbol registers obj as the global symbol name.
func (b *Builder) Symbol(name string, obj Obj) {
	b.Tgt.AddSymbol(name, obj.Addr, obj.Type)
}

// SymbolAddr registers a raw typed address as a global symbol.
func (b *Builder) SymbolAddr(name string, addr uint64, typ *ctypes.Type) {
	b.Tgt.AddSymbol(name, addr, typ)
}

// At returns a handle viewing addr as the named type.
func (b *Builder) At(typeName string, addr uint64) Obj {
	return Obj{B: b, Addr: addr, Type: b.Reg.MustLookup(typeName)}
}

// --- page frames ---------------------------------------------------------------

// AllocPage reserves a page frame and returns its struct page handle in the
// vmemmap (allocating the page struct lazily) plus the frame's direct-map
// data address.
func (b *Builder) AllocPage() (pg Obj, data uint64) {
	pfn := b.pfn
	b.pfn++
	pageT := b.Reg.MustLookup("page")
	addr := vmemmapBase + pfn*pageT.Size()
	b.Mem.Write(addr, make([]byte, pageT.Size()))
	data = arenaBase + (0x4000_0000_0000 + pfn<<pageShift) // fake direct-map slot
	b.Mem.Write(data, make([]byte, pageSize))
	return Obj{B: b, Addr: addr, Type: pageT}, data
}

// PageForPFN returns the struct page handle for a frame number.
func (b *Builder) PageForPFN(pfn uint64) Obj {
	pageT := b.Reg.MustLookup("page")
	return Obj{B: b, Addr: vmemmapBase + pfn*pageT.Size(), Type: pageT}
}

// PFNOf returns the frame number of a struct page handle.
func (b *Builder) PFNOf(pg Obj) uint64 {
	pageT := b.Reg.MustLookup("page")
	return (pg.Addr - vmemmapBase) / pageT.Size()
}

// --- typed field access -----------------------------------------------------------

func (o Obj) field(path string) ctypes.Field {
	f, err := o.Type.ResolvePath(path)
	if err != nil {
		panic(fmt.Sprintf("kernelsim: %v", err))
	}
	return f
}

// FieldAddr returns the address of a (possibly nested, dot-separated)
// member. The path must not cross pointers.
func (o Obj) FieldAddr(path string) uint64 {
	return o.Addr + o.field(path).Offset
}

// Field returns a handle to a nested member.
func (o Obj) Field(path string) Obj {
	f := o.field(path)
	return Obj{B: o.B, Addr: o.Addr + f.Offset, Type: f.Type}
}

// Index returns element i when o designates an array (or an object placed
// in an allocated array).
func (o Obj) Index(i uint64) Obj {
	t := o.Type.Strip()
	et := t
	if t.Kind == ctypes.KindArray {
		et = t.Elem
	}
	return Obj{B: o.B, Addr: o.Addr + i*et.Size(), Type: et}
}

// Set writes a scalar member (sized by the field type, bitfields honored).
func (o Obj) Set(path string, v uint64) {
	f := o.field(path)
	addr := o.Addr + f.Offset
	sz := f.Type.Size()
	if f.IsBitfield() {
		old := o.B.readUint(addr, sz)
		mask := uint64((1<<f.BitSize)-1) << f.BitOffset
		o.B.writeUint(addr, sz, (old&^mask)|((v<<f.BitOffset)&mask))
		return
	}
	if st := f.Type.Strip(); st.Kind == ctypes.KindStruct || st.Kind == ctypes.KindUnion || st.Kind == ctypes.KindArray {
		panic(fmt.Sprintf("kernelsim: Set(%q) on aggregate %s", path, f.Type))
	}
	o.B.writeUint(addr, sz, v)
}

// SetObj stores a pointer to target into the member at path.
func (o Obj) SetObj(path string, tgt Obj) { o.Set(path, tgt.Addr) }

// Get reads a scalar member.
func (o Obj) Get(path string) uint64 {
	f := o.field(path)
	addr := o.Addr + f.Offset
	v := o.B.readUint(addr, f.Type.Size())
	if f.IsBitfield() {
		v = (v >> f.BitOffset) & ((1 << f.BitSize) - 1)
	}
	return v
}

// SetStr writes s into an in-object char array member (truncating to fit).
func (o Obj) SetStr(path string, s string) {
	f := o.field(path)
	t := f.Type.Strip()
	if t.Kind != ctypes.KindArray {
		panic(fmt.Sprintf("kernelsim: SetStr(%q) on non-array %s", path, f.Type))
	}
	n := int(t.Count)
	if len(s) >= n {
		s = s[:n-1]
	}
	buf := make([]byte, n)
	copy(buf, s)
	o.B.Mem.Write(o.Addr+f.Offset, buf)
}

// SetStrPtr allocates s in the arena and stores its address in the char*
// member at path.
func (o Obj) SetStrPtr(path string, s string) {
	o.Set(path, o.B.CString(s))
}

func (b *Builder) readUint(addr, size uint64) uint64 {
	v, err := target.ReadUint(b.Tgt, addr, size)
	if err != nil {
		panic(fmt.Sprintf("kernelsim: read %#x: %v", addr, err))
	}
	return v
}

func (b *Builder) writeUint(addr, size, v uint64) {
	switch size {
	case 1:
		b.Mem.WriteU8(addr, uint8(v))
	case 2:
		b.Mem.WriteU16(addr, uint16(v))
	case 4:
		b.Mem.WriteU32(addr, uint32(v))
	case 8:
		b.Mem.WriteU64(addr, v)
	default:
		panic(fmt.Sprintf("kernelsim: bad scalar size %d", size))
	}
}

// --- intrusive containers -----------------------------------------------------------

// InitList makes the list_head at addr an empty circular list.
func (b *Builder) InitList(addr uint64) {
	b.Mem.WriteU64(addr, addr)   // next
	b.Mem.WriteU64(addr+8, addr) // prev
}

// ListAddTail links the list_head at node before the head at head
// (i.e. appends to the tail), like list_add_tail.
func (b *Builder) ListAddTail(head, node uint64) {
	prev, _ := b.Mem.ReadU64(head + 8)
	// node.next = head; node.prev = prev
	b.Mem.WriteU64(node, head)
	b.Mem.WriteU64(node+8, prev)
	// prev.next = node; head.prev = node
	b.Mem.WriteU64(prev, node)
	b.Mem.WriteU64(head+8, node)
}

// ListDel unlinks the list_head at node, like list_del.
func (b *Builder) ListDel(node uint64) {
	next, _ := b.Mem.ReadU64(node)
	prev, _ := b.Mem.ReadU64(node + 8)
	b.Mem.WriteU64(prev, next)
	b.Mem.WriteU64(next+8, prev)
	// Poison like the kernel does.
	b.Mem.WriteU64(node, 0xdead000000000100)
	b.Mem.WriteU64(node+8, 0xdead000000000122)
}

// HListAddHead links the hlist_node at node at the front of the hlist_head
// at head, like hlist_add_head.
func (b *Builder) HListAddHead(head, node uint64) {
	first, _ := b.Mem.ReadU64(head)
	b.Mem.WriteU64(node, first)  // node.next = first
	b.Mem.WriteU64(node+8, head) // node.pprev = &head.first
	if first != 0 {
		b.Mem.WriteU64(first+8, node) // first.pprev = &node.next
	}
	b.Mem.WriteU64(head, node) // head.first = node
}

// --- red-black trees -----------------------------------------------------------------

// rb_node layout: __rb_parent_color at +0, rb_right +8, rb_left +16.
// Color bit 0: 0 = red, 1 = black (Linux convention).

// BuildRBTree links the given rb_node addresses (already sorted by key)
// into a balanced red-black tree rooted at the rb_root at rootAddr. Nodes
// at the deepest level are colored red, all others black, which satisfies
// the red-black invariants for a height-balanced tree built this way.
// If cachedLeftmost is true, rootAddr is treated as rb_root_cached and the
// leftmost pointer (at rootAddr+8) is set too.
func (b *Builder) BuildRBTree(rootAddr uint64, nodes []uint64, cachedLeftmost bool) {
	maxDepth := 0
	var measure func(lo, hi, d int)
	measure = func(lo, hi, d int) {
		if lo >= hi {
			return
		}
		if d > maxDepth {
			maxDepth = d
		}
		mid := (lo + hi) / 2
		measure(lo, mid, d+1)
		measure(mid+1, hi, d+1)
	}
	measure(0, len(nodes), 1)

	var build func(lo, hi int, parent uint64, d int) uint64
	build = func(lo, hi int, parent uint64, d int) uint64 {
		if lo >= hi {
			return 0
		}
		mid := (lo + hi) / 2
		n := nodes[mid]
		color := uint64(1) // black
		if d == maxDepth {
			color = 0 // red leaves at the deepest level
		}
		b.Mem.WriteU64(n, parent|color)
		left := build(lo, mid, n, d+1)
		right := build(mid+1, hi, n, d+1)
		b.Mem.WriteU64(n+8, right)
		b.Mem.WriteU64(n+16, left)
		return n
	}
	root := build(0, len(nodes), 0, 1)
	if root != 0 {
		// The root is always black (a single-node tree would otherwise be
		// a red root).
		pc, _ := b.Mem.ReadU64(root)
		b.Mem.WriteU64(root, pc|1)
	}
	b.Mem.WriteU64(rootAddr, root)
	if cachedLeftmost {
		lm := uint64(0)
		if len(nodes) > 0 {
			lm = nodes[0]
		}
		b.Mem.WriteU64(rootAddr+8, lm)
	}
}
