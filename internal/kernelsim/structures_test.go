package kernelsim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// mapleLookup walks a built maple tree the way mas_walk does: descend
// choosing the slot whose pivot covers the index.
func mapleLookup(k *Kernel, mt Obj, index uint64) uint64 {
	root := mt.Get("ma_root")
	if root == 0 {
		return 0
	}
	if !XaIsNode(root) {
		return root // single direct entry covering everything
	}
	enode := root
	for depth := 0; depth < 16; depth++ {
		node := MtToNode(enode)
		var pivotBase, slotBase uint64
		var nslots uint64
		leaf := MtNodeType(enode) == MapleLeaf64
		obj := k.At("maple_node", node)
		if leaf {
			pivotBase = obj.FieldAddr("mr64.pivot")
			slotBase = obj.FieldAddr("mr64.slot")
			nslots = MapleR64Slots
		} else {
			pivotBase = obj.FieldAddr("ma64.pivot")
			slotBase = obj.FieldAddr("ma64.slot")
			nslots = MapleA64Slots
		}
		slot := nslots - 1
		for i := uint64(0); i < nslots-1; i++ {
			pivot, _ := k.Mem.ReadU64(pivotBase + i*8)
			if pivot == 0 && i > 0 {
				// unused tail slots: the last written pivot wins
				slot = i
				break
			}
			if index <= pivot {
				slot = i
				break
			}
		}
		entry, _ := k.Mem.ReadU64(slotBase + slot*8)
		if leaf {
			return entry
		}
		if entry == 0 || !XaIsNode(entry) {
			return entry
		}
		enode = entry
	}
	return 0
}

// TestMapleLookupProperty: for random non-overlapping interval sets, every
// in-range index finds its pointer and every gap index finds NULL.
func TestMapleLookupProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%40) + 1
		k := &Kernel{Builder: NewBuilder(), immapNodes: map[uint64][]uint64{}}
		var entries []MapleEntry
		cursor := uint64(0x1000)
		for i := 0; i < count; i++ {
			cursor += uint64(rng.Intn(8)+1) * 0x1000 // gap
			size := uint64(rng.Intn(4)+1) * 0x1000
			entries = append(entries, MapleEntry{
				First: cursor,
				Last:  cursor + size - 1,
				Ptr:   0xffff_8880_0100_0000 + uint64(i)*0x100,
			})
			cursor += size
		}
		mt := k.Alloc("maple_tree")
		k.BuildMapleTree(mt, entries)
		for _, e := range entries {
			for _, idx := range []uint64{e.First, e.Last, (e.First + e.Last) / 2} {
				if got := mapleLookup(k, mt, idx); got != e.Ptr {
					t.Logf("seed=%d lookup(%#x) = %#x, want %#x", seed, idx, got, e.Ptr)
					return false
				}
			}
		}
		// Gap probes.
		if got := mapleLookup(k, mt, 0); got != 0 {
			t.Logf("seed=%d gap lookup(0) = %#x", seed, got)
			return false
		}
		for i := 1; i < len(entries); i++ {
			gapLo := entries[i-1].Last + 1
			gapHi := entries[i].First - 1
			if gapLo > gapHi {
				continue
			}
			if got := mapleLookup(k, mt, gapLo); got != 0 {
				t.Logf("seed=%d gap lookup(%#x) = %#x", seed, gapLo, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMapleAlignmentAndTags: every node is 256-aligned and correctly
// tagged; leaves are leaves.
func TestMapleAlignmentAndTags(t *testing.T) {
	k := Build(Options{})
	task := k.ByPID[100]
	mm := k.At("mm_struct", task.Get("mm"))
	root := mm.Field("mm_mt").Get("ma_root")
	var walk func(enode uint64, depth int)
	walk = func(enode uint64, depth int) {
		if depth > 8 {
			t.Fatal("tree too deep")
		}
		node := MtToNode(enode)
		if node%mapleNodeAlign != 0 {
			t.Errorf("node %#x misaligned", node)
		}
		typ := MtNodeType(enode)
		if typ != MapleLeaf64 && typ != MapleArange64 {
			t.Errorf("unexpected node type %d", typ)
		}
		if typ != MapleArange64 {
			return
		}
		obj := k.At("maple_node", node)
		for s := uint64(0); s < MapleA64Slots; s++ {
			entry, _ := k.Mem.ReadU64(obj.FieldAddr("ma64.slot") + s*8)
			if entry == 0 {
				continue
			}
			if !XaIsNode(entry) {
				t.Errorf("internal slot %d holds non-node %#x", s, entry)
				continue
			}
			walk(entry, depth+1)
		}
	}
	if !XaIsNode(root) {
		t.Fatalf("root %#x not a node", root)
	}
	walk(root, 0)
}

// TestXArrayRoundtrip: random index->value maps store and load exactly.
func TestXArrayRoundtrip(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := &Kernel{Builder: NewBuilder(), immapNodes: map[uint64][]uint64{}}
		items := make(map[uint64]uint64)
		for i := 0; i < int(n%64)+1; i++ {
			idx := uint64(rng.Intn(5000))
			items[idx] = 0xffff_8880_0200_0000 + idx*0x40
		}
		xa := k.Alloc("xarray")
		k.BuildXArray(xa, items)
		// Walk: descend by index bits.
		lookup := func(idx uint64) uint64 {
			entry := xa.Get("xa_head")
			if entry == 0 {
				return 0
			}
			if entry&3 != 2 {
				if idx == 0 {
					return entry
				}
				return 0
			}
			for {
				node := k.At("xa_node", XaToNode(entry))
				shift := node.Get("shift")
				slot := (idx >> shift) & (XAChunkSize - 1)
				e, _ := k.Mem.ReadU64(node.FieldAddr("slots") + slot*8)
				if e == 0 {
					return 0
				}
				if shift == 0 {
					return e
				}
				if e&3 != 2 {
					return e
				}
				entry = e
				idx &= (1 << shift) - 1 // keep low bits... actually keep all: slots mask handles
			}
		}
		for idx, want := range items {
			if got := lookup(idx); got != want {
				t.Logf("seed=%d xa[%d] = %#x, want %#x", seed, idx, got, want)
				return false
			}
		}
		// A few absent probes.
		for i := 0; i < 5; i++ {
			idx := uint64(rng.Intn(5000))
			if _, ok := items[idx]; ok {
				continue
			}
			if got := lookup(idx); got != 0 {
				t.Logf("seed=%d absent xa[%d] = %#x", seed, idx, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestXaValueTagging(t *testing.T) {
	if !XaIsValue(XaMkValue(42)) || XaToValue(XaMkValue(42)) != 42 {
		t.Error("value tagging broken")
	}
	if XaIsNode(XaMkValue(42)) {
		t.Error("value entry mistaken for node")
	}
	n := uint64(0xffff888000001000)
	if !XaIsNode(XaMkInternal(n)) || XaToNode(XaMkInternal(n)) != n {
		t.Error("internal tagging broken")
	}
}

// TestRBTreeInvariants: the builder produces valid red-black trees —
// in-order traversal matches input order, no red node has a red child, and
// all root-to-null paths have equal black height.
func TestRBTreeInvariants(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%60) + 1
		k := &Kernel{Builder: NewBuilder(), immapNodes: map[uint64][]uint64{}}
		nodes := make([]uint64, count)
		for i := range nodes {
			nodes[i] = k.AllocRaw(24, 8)
		}
		_ = rng
		rootCell := k.AllocRaw(16, 8)
		k.BuildRBTree(rootCell, nodes, true)
		root, _ := k.Mem.ReadU64(rootCell)
		leftmost, _ := k.Mem.ReadU64(rootCell + 8)
		if count > 0 && leftmost != nodes[0] {
			t.Logf("leftmost %#x != first %#x", leftmost, nodes[0])
			return false
		}

		// In-order traversal must yield the input sequence.
		var inorder []uint64
		var walk func(addr uint64)
		walk = func(addr uint64) {
			if addr == 0 {
				return
			}
			right, _ := k.Mem.ReadU64(addr + 8)
			left, _ := k.Mem.ReadU64(addr + 16)
			walk(left)
			inorder = append(inorder, addr)
			walk(right)
		}
		walk(root)
		if len(inorder) != count {
			return false
		}
		for i := range inorder {
			if inorder[i] != nodes[i] {
				return false
			}
		}

		// Red-black invariants.
		isRed := func(addr uint64) bool {
			if addr == 0 {
				return false
			}
			pc, _ := k.Mem.ReadU64(addr)
			return pc&1 == 0
		}
		ok := true
		var bh func(addr uint64) int
		bh = func(addr uint64) int {
			if addr == 0 {
				return 1
			}
			right, _ := k.Mem.ReadU64(addr + 8)
			left, _ := k.Mem.ReadU64(addr + 16)
			if isRed(addr) && (isRed(left) || isRed(right)) {
				ok = false
			}
			lb, rb := bh(left), bh(right)
			if lb != rb {
				ok = false
			}
			b := lb
			if !isRed(addr) {
				b++
			}
			return b
		}
		bh(root)
		// Root must be black.
		if isRed(root) {
			ok = false
		}
		// Parent pointers consistent.
		var checkParent func(addr, parent uint64)
		checkParent = func(addr, parent uint64) {
			if addr == 0 {
				return
			}
			pc, _ := k.Mem.ReadU64(addr)
			if pc&^uint64(3) != parent {
				ok = false
			}
			right, _ := k.Mem.ReadU64(addr + 8)
			left, _ := k.Mem.ReadU64(addr + 16)
			checkParent(left, addr)
			checkParent(right, addr)
		}
		checkParent(root, 0)
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestListInvariants: builder lists are valid circular doubly-linked lists.
func TestListInvariants(t *testing.T) {
	k := &Kernel{Builder: NewBuilder(), immapNodes: map[uint64][]uint64{}}
	head := k.AllocRaw(16, 8)
	k.InitList(head)
	var nodes []uint64
	for i := 0; i < 10; i++ {
		n := k.AllocRaw(16, 8)
		k.ListAddTail(head, n)
		nodes = append(nodes, n)
	}
	// forward walk
	cur, _ := k.Mem.ReadU64(head)
	for i := 0; i < 10; i++ {
		if cur != nodes[i] {
			t.Fatalf("forward order broken at %d", i)
		}
		// next.prev == cur
		next, _ := k.Mem.ReadU64(cur)
		prev, _ := k.Mem.ReadU64(next + 8)
		if prev != cur {
			t.Fatalf("prev link broken at %d", i)
		}
		cur = next
	}
	if cur != head {
		t.Fatal("list not circular")
	}
	// deletion
	k.ListDel(nodes[4])
	n3next, _ := k.Mem.ReadU64(nodes[3])
	if n3next != nodes[5] {
		t.Error("ListDel did not relink")
	}
	poison, _ := k.Mem.ReadU64(nodes[4])
	if poison>>32 != 0xdead0000 {
		t.Errorf("no poison: %#x", poison)
	}
}

// TestWorkloadScalesDeterministically: same options build identical states.
func TestWorkloadDeterminism(t *testing.T) {
	k1 := Build(Options{Processes: 3})
	k2 := Build(Options{Processes: 3})
	if len(k1.Tasks) != len(k2.Tasks) {
		t.Fatalf("task counts differ: %d vs %d", len(k1.Tasks), len(k2.Tasks))
	}
	for i := range k1.Tasks {
		if k1.Tasks[i].Addr != k2.Tasks[i].Addr {
			t.Fatalf("task %d at different address", i)
		}
		if k1.Tasks[i].Get("pid") != k2.Tasks[i].Get("pid") {
			t.Fatalf("task %d pid differs", i)
		}
	}
	p1, b1 := k1.Mem.Footprint()
	p2, b2 := k2.Mem.Footprint()
	if p1 != p2 || b1 != b2 {
		t.Errorf("footprints differ: %d/%d vs %d/%d", p1, b1, p2, b2)
	}
}

func TestOptionsScaling(t *testing.T) {
	small := Build(Options{Processes: 2, ThreadsPerProc: 1})
	big := Build(Options{Processes: 10, ThreadsPerProc: 3})
	if len(big.Tasks) <= len(small.Tasks) {
		t.Errorf("scaling broken: %d vs %d tasks", len(big.Tasks), len(small.Tasks))
	}
	sortedPids := func(k *Kernel) []int {
		var out []int
		for pid := range k.ByPID {
			out = append(out, pid)
		}
		sort.Ints(out)
		return out
	}
	if got := sortedPids(big); got[len(got)-1] < 120 {
		t.Errorf("pids = %v", got)
	}
}
