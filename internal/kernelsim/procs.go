package kernelsim

import (
	"fmt"
	"sort"
)

// Process management: task_structs, the process tree (ULK Fig 3-4), the pid
// IDR (Fig 3-6's modern descendant), signal structures (Fig 11-1), fd
// tables (Fig 12-3), and per-process address spaces (Fig 9-2) with anon
// reverse maps (Fig 17-1) and file mappings (Fig 16-2).

func (k *Kernel) buildPidNamespace() {
	ns := k.Alloc("pid_namespace")
	k.InitPidNS = ns
	k.Symbol("init_pid_ns", ns)
}

// MkPid allocates a struct pid for number nr.
func (k *Kernel) MkPid(nr int) Obj {
	p := k.Alloc("pid")
	p.Set("count.refs", 1)
	n0 := p.Field("numbers").Index(0)
	n0.Set("nr", uint64(uint32(nr)))
	n0.SetObj("ns", k.InitPidNS)
	return p
}

// TaskSpec configures NewTask.
type TaskSpec struct {
	PID      int
	TGID     int // 0: same as PID (group leader)
	Comm     string
	Parent   Obj // empty for init
	State    uint64
	Prio     int
	VRuntime uint64
	Kthread  bool
}

// NewTask allocates a task_struct, wiring identity, parenthood, the global
// task list and pid linkage. Scheduling linkage happens in finalizeSched.
func (k *Kernel) NewTask(sp TaskSpec) Obj {
	t := k.Alloc("task_struct")
	if sp.TGID == 0 {
		sp.TGID = sp.PID
	}
	t.Set("pid", uint64(uint32(sp.PID)))
	t.Set("tgid", uint64(uint32(sp.TGID)))
	t.SetStr("comm", sp.Comm)
	t.Set("__state", sp.State)
	if sp.Prio == 0 {
		sp.Prio = 120
	}
	t.Set("prio", uint64(sp.Prio))
	t.Set("static_prio", uint64(sp.Prio))
	t.Set("normal_prio", uint64(sp.Prio))
	t.Set("usage.refs", 2)
	t.Set("se.vruntime", sp.VRuntime)
	t.Set("se.load.weight", 1024)
	t.Set("se.sum_exec_runtime", sp.VRuntime*3/2)
	t.Set("start_time", 1_000_000_000+uint64(sp.PID)*7_000_000)
	t.Set("utime", uint64(sp.PID)*1_000_000)
	t.Set("stime", uint64(sp.PID)*400_000)
	if sp.Kthread {
		t.Set("flags", 0x00200000) // PF_KTHREAD
	}
	k.InitList(t.FieldAddr("children"))
	k.InitList(t.FieldAddr("sibling"))
	k.InitList(t.FieldAddr("tasks"))
	k.InitList(t.FieldAddr("thread_group"))
	k.InitList(t.FieldAddr("thread_node"))
	k.InitList(t.FieldAddr("pending.list"))

	if sp.Parent.IsNil() {
		t.SetObj("parent", t)
		t.SetObj("real_parent", t)
		t.SetObj("group_leader", t)
	} else {
		t.SetObj("parent", sp.Parent)
		t.SetObj("real_parent", sp.Parent)
		k.ListAddTail(sp.Parent.FieldAddr("children"), t.FieldAddr("sibling"))
		if sp.TGID == sp.PID {
			t.SetObj("group_leader", t)
		} else {
			leader := k.ByPID[sp.TGID]
			t.SetObj("group_leader", leader)
			k.ListAddTail(leader.FieldAddr("thread_group"), t.FieldAddr("thread_group"))
		}
		// Global task list threads through init_task.tasks; only thread
		// group leaders are on it (like for_each_process).
		if sp.TGID == sp.PID {
			k.ListAddTail(k.InitTask.FieldAddr("tasks"), t.FieldAddr("tasks"))
		}
	}

	// pid linkage
	p := k.MkPid(sp.PID)
	t.SetObj("thread_pid", p)
	k.HListAddHead(p.FieldAddr("tasks"), t.FieldAddr("pid_links")) // PIDTYPE_PID

	k.Tasks = append(k.Tasks, t)
	k.ByPID[sp.PID] = t
	return t
}

// MkSignalStructs allocates shared signal_struct + sighand_struct for a
// thread group, with a few configured handlers (Fig 11-1).
func (k *Kernel) MkSignalStructs(nthreads int, configured map[int]string) (sig, hand Obj) {
	sig = k.Alloc("signal_struct")
	sig.Set("sigcnt.refs", uint64(nthreads))
	sig.Set("live", uint64(nthreads))
	sig.Set("nr_threads", uint64(nthreads))
	k.InitList(sig.FieldAddr("thread_head"))
	k.InitList(sig.FieldAddr("shared_pending.list"))

	hand = k.Alloc("sighand_struct")
	hand.Set("count.refs", uint64(nthreads))
	// Sorted order: Func bump-allocates text addresses, so iterating the
	// map directly would make the image depend on map iteration order and
	// break Build's determinism (the template/fork byte-identity contract).
	signos := make([]int, 0, len(configured))
	for signo := range configured {
		signos = append(signos, signo)
	}
	sort.Ints(signos)
	for _, signo := range signos {
		act := hand.Field("action").Index(uint64(signo - 1))
		act.Set("sa.sa_handler", k.Func(configured[signo]))
		act.Set("sa.sa_flags", 0x10000000) // SA_RESTART
	}
	return sig, hand
}

// MkFiles allocates a files_struct whose fdtable points at the embedded
// fdtab/fd_array (the common small-table case), with fds 0-2 at the console
// and the given extra files appended.
func (k *Kernel) MkFiles(extra []Obj) Obj {
	fs := k.Alloc("files_struct")
	fs.Set("count", 1)
	fdt := fs.Field("fdtab")
	fdt.Set("max_fds", NFDBits)
	fdt.Set("fd", fs.FieldAddr("fd_array"))
	fdt.Set("open_fds", fs.FieldAddr("open_fds_init"))
	fdt.Set("close_on_exec", fs.FieldAddr("close_on_exec_init"))
	fs.Set("fdt", fdt.Addr)
	cons := k.vfs().consoleFile
	open := uint64(0)
	setFD := func(i int, f Obj) {
		k.Mem.WriteU64(fs.FieldAddr("fd_array")+uint64(i)*8, f.Addr)
		open |= 1 << uint(i)
	}
	setFD(0, cons)
	setFD(1, cons)
	setFD(2, cons)
	for i, f := range extra {
		setFD(3+i, f)
	}
	fs.Set("next_fd", uint64(3+len(extra)))
	k.Mem.WriteU64(fs.FieldAddr("open_fds_init"), open)
	return fs
}

// VMASpec describes one mapping for MkMM.
type VMASpec struct {
	Start, End uint64
	Flags      uint64
	File       Obj // file-backed if set
	Pgoff      uint64
	Anon       bool // attach to the process anon_vma
}

// MkMM builds an mm_struct with the given mappings: the maple tree, the
// anon_vma reverse map for anonymous areas, and i_mmap interval trees for
// file-backed areas.
func (k *Kernel) MkMM(owner Obj, vmas []VMASpec) Obj {
	mm := k.Alloc("mm_struct")
	mm.Set("mm_users", 1)
	mm.Set("mm_count", 1)
	mm.SetObj("owner", owner)
	mm.Set("mmap_base", 0x7f00_0000_0000)
	mm.Set("task_size", 0x7fff_ffff_f000)
	mm.Set("pgd", k.AllocRaw(pageSize, pageSize))
	k.InitList(mm.FieldAddr("mmlist"))

	// One anon_vma per process for its anonymous areas.
	av := k.Alloc("anon_vma")
	av.SetObj("root", av)
	av.Set("refcount", 1)

	var entries []MapleEntry
	var anonNodes []uint64
	totalVM := uint64(0)
	for _, sp := range vmas {
		vma := k.Alloc("vm_area_struct")
		vma.Set("vm_start", sp.Start)
		vma.Set("vm_end", sp.End)
		vma.Set("vm_flags", sp.Flags)
		vma.Set("vm_page_prot", sp.Flags&7)
		vma.SetObj("vm_mm", mm)
		vma.Set("vm_pgoff", sp.Pgoff)
		k.InitList(vma.FieldAddr("anon_vma_chain"))
		if !sp.File.IsNil() {
			vma.SetObj("vm_file", sp.File)
			// Interval-tree linkage in the file's address_space.
			mapping := k.At("address_space", sp.File.Get("f_mapping"))
			k.attachIMmap(mapping, vma)
		}
		if sp.Anon {
			vma.SetObj("anon_vma", av)
			avc := k.Alloc("anon_vma_chain")
			avc.SetObj("vma", vma)
			avc.SetObj("anon_vma", av)
			k.InitList(avc.FieldAddr("same_vma"))
			k.ListAddTail(vma.FieldAddr("anon_vma_chain"), avc.FieldAddr("same_vma"))
			anonNodes = append(anonNodes, avc.FieldAddr("rb"))
			av.Set("num_active_vmas", av.Get("num_active_vmas")+1)
			// Back the area with an anonymous page whose mapping carries
			// the PAGE_MAPPING_ANON-tagged anon_vma (Fig 17-1 state).
			pg, _ := k.AllocPage()
			pg.Set("flags", PGAnon|PGUptodate|PGLRU)
			pg.Set("mapping", av.Addr|pageMappingAnon)
			pg.Set("index", sp.Start>>pageShift&0xffff)
			pg.Set("_refcount", 1)
			pg.Set("_mapcount", 0)
		}
		entries = append(entries, MapleEntry{First: sp.Start, Last: sp.End - 1, Ptr: vma.Addr})
		totalVM += (sp.End - sp.Start) >> pageShift
	}
	k.BuildRBTree(av.FieldAddr("rb_root"), anonNodes, true)
	k.BuildMapleTree(mm.Field("mm_mt"), entries)
	for _, e := range entries {
		k.mmVMAs[mm.Addr] = append(k.mmVMAs[mm.Addr], mappedVMA{
			start: e.First, end: e.Last + 1, vma: k.At("vm_area_struct", e.Ptr),
		})
	}
	mm.Set("map_count", uint64(len(vmas)))
	mm.Set("total_vm", totalVM)
	if len(vmas) > 0 {
		mm.Set("start_code", vmas[0].Start)
		mm.Set("end_code", vmas[0].End)
		last := vmas[len(vmas)-1]
		mm.Set("start_stack", last.End-0x1000)
	}
	return mm
}

// attachIMmap inserts vma into mapping->i_mmap. We accumulate nodes per
// address_space and rebuild the balanced tree each time (builder-time cost
// only).
func (k *Kernel) attachIMmap(mapping Obj, vma Obj) {
	k.immapNodes[mapping.Addr] = append(k.immapNodes[mapping.Addr], vma.FieldAddr("shared_rb"))
	k.BuildRBTree(mapping.FieldAddr("i_mmap"), k.immapNodes[mapping.Addr], true)
	mapping.Set("i_mmap_writable", 1)
}

// standardVMAs lays out a realistic process address space: code, data, heap,
// file mappings, anonymous arenas, libc, stack.
func (k *Kernel) standardVMAs(binary, libc, data Obj, extraAnon int) []VMASpec {
	base := uint64(0x0000_5555_5555_0000)
	specs := []VMASpec{
		{Start: base, End: base + 0x8000, Flags: VMRead | VMExec, File: binary, Pgoff: 0},
		{Start: base + 0x8000, End: base + 0xa000, Flags: VMRead, File: binary, Pgoff: 8},
		{Start: base + 0xa000, End: base + 0xc000, Flags: VMRead | VMWrite, File: binary, Pgoff: 10},
		{Start: base + 0x20000, End: base + 0x61000, Flags: VMRead | VMWrite, Anon: true}, // heap
	}
	m := uint64(0x7f00_0000_0000)
	if !data.IsNil() {
		specs = append(specs, VMASpec{Start: m, End: m + 0x4000, Flags: VMRead | VMWrite | VMShared, File: data})
		m += 0x10000
	}
	for i := 0; i < extraAnon; i++ {
		specs = append(specs, VMASpec{Start: m, End: m + 0x21000, Flags: VMRead | VMWrite, Anon: true})
		m += 0x40000
	}
	if !libc.IsNil() {
		specs = append(specs,
			VMASpec{Start: m, End: m + 0x28000, Flags: VMRead | VMExec, File: libc},
			VMASpec{Start: m + 0x28000, End: m + 0x2c000, Flags: VMRead, File: libc, Pgoff: 0x28},
			VMASpec{Start: m + 0x2c000, End: m + 0x2e000, Flags: VMRead | VMWrite, File: libc, Pgoff: 0x2c})
	}
	specs = append(specs, VMASpec{
		Start: 0x7ffd_0000_0000, End: 0x7ffd_0002_1000,
		Flags: VMRead | VMWrite | VMGrowsDown, Anon: true}) // stack
	return specs
}

// buildProcesses creates init (pid 1), kernel threads, and the Table-4
// workload: opts.Processes processes × opts.ThreadsPerProc threads, each
// with files, sockets and mapped regions.
func (k *Kernel) buildProcesses(opts Options) {
	// init_task (swapper, pid 0) is static in the kernel; give it a symbol.
	k.InitTask = k.NewTask(TaskSpec{PID: 0, Comm: "swapper/0", State: TaskRunning, Kthread: true})
	k.Symbol("init_task", k.InitTask)

	// Shared libraries/binaries with page caches (Fig 15-1 / 16-2 fodder).
	libc := k.MkRegularFile("libc.so.6", opts.PagesPerFile*2)
	busybox := k.MkRegularFile("busybox", opts.PagesPerFile)
	logfile := k.MkRegularFile("syslog", opts.PagesPerFile)
	testTxt := k.MkRegularFile("test.txt", 4)
	k.DirtyFile = testTxt

	// pid 1: init.
	sig1, hand1 := k.MkSignalStructs(1, map[int]string{2: "init_sigint", 15: "init_sigterm", 17: "init_sigchld"})
	initT := k.NewTask(TaskSpec{PID: 1, Comm: "systemd", Parent: k.InitTask, State: TaskInterruptible, VRuntime: 1_200_000})
	initT.SetObj("signal", sig1)
	initT.SetObj("sighand", hand1)
	mm1 := k.MkMM(initT, k.standardVMAs(busybox, libc, Obj{}, 2))
	initT.SetObj("mm", mm1)
	initT.SetObj("active_mm", mm1)
	initT.SetObj("files", k.MkFiles([]Obj{logfile}))

	// Kernel threads.
	for i, name := range []string{"kthreadd", "rcu_preempt", "kworker/0:1", "kworker/1:2", "ksoftirqd/0"} {
		kt := k.NewTask(TaskSpec{PID: 2 + i, Comm: name, Parent: k.InitTask,
			State: TaskInterruptible, Kthread: true, VRuntime: uint64(400_000 * (i + 1))})
		kt.SetObj("active_mm", mm1)
	}

	// Workload processes (the paper's ~500 LOC benchmark program).
	pid := 100
	for p := 0; p < opts.Processes; p++ {
		comm := fmt.Sprintf("workload-%d", p)
		nthreads := opts.ThreadsPerProc
		sig, hand := k.MkSignalStructs(nthreads, map[int]string{
			10: "workload_sigusr1", 14: "workload_alarm",
		})
		var dataFile Obj
		if p%2 == 0 {
			dataFile = logfile
		} else {
			dataFile = testTxt
		}
		leader := k.NewTask(TaskSpec{
			PID: pid, Comm: comm, Parent: k.ByPID[1],
			State: TaskRunning, VRuntime: uint64(2_000_000 + 150_000*p),
		})
		leader.SetObj("signal", sig)
		leader.SetObj("sighand", hand)
		extraAnon := opts.VMAsPerProcess - 9 // standardVMAs adds ~9 besides anon arenas
		if extraAnon < 1 {
			extraAnon = 1
		}
		mm := k.MkMM(leader, k.standardVMAs(busybox, libc, dataFile, extraAnon))
		leader.SetObj("mm", mm)
		leader.SetObj("active_mm", mm)
		leader.SetObj("files", k.MkFiles([]Obj{dataFile}))
		// signal->pids[PIDTYPE_PID] points at the leader's struct pid.
		k.Mem.WriteU64(sig.FieldAddr("pids"), leader.Get("thread_pid"))
		k.ListAddTail(sig.FieldAddr("thread_head"), leader.FieldAddr("thread_node"))
		pid++
		for th := 1; th < nthreads; th++ {
			tt := k.NewTask(TaskSpec{
				PID: pid, TGID: leader.taskPID(), Comm: comm, Parent: k.ByPID[1],
				State: TaskRunning, VRuntime: uint64(2_050_000 + 150_000*p + 40_000*th),
			})
			tt.SetObj("signal", sig)
			tt.SetObj("sighand", hand)
			tt.SetObj("mm", mm)
			tt.SetObj("active_mm", mm)
			tt.Set("files", leader.Get("files")) // threads share the files_struct
			k.ListAddTail(sig.FieldAddr("thread_head"), tt.FieldAddr("thread_node"))
			pid++
		}
	}

	// A few sleeping daemons to diversify states.
	for i, d := range []struct {
		comm  string
		state uint64
	}{{"sshd", TaskInterruptible}, {"cron", TaskInterruptible}, {"jbd2/sda1-8", TaskUninterruptible}} {
		dt := k.NewTask(TaskSpec{PID: 50 + i, Comm: d.comm, Parent: k.ByPID[1], State: d.state,
			VRuntime: uint64(900_000 * (i + 1))})
		sig, hand := k.MkSignalStructs(1, map[int]string{1: "daemon_sighup"})
		dt.SetObj("signal", sig)
		dt.SetObj("sighand", hand)
		mm := k.MkMM(dt, k.standardVMAs(busybox, libc, Obj{}, 1))
		dt.SetObj("mm", mm)
		dt.SetObj("active_mm", mm)
		dt.SetObj("files", k.MkFiles(nil))
	}
}

func (t Obj) taskPID() int { return int(int32(t.Get("pid"))) }

// finalizePidIDR fills init_pid_ns.idr with pid-number -> struct pid
// mappings for every task, reproducing the modern Fig 3-6 structure.
func (k *Kernel) finalizePidIDR() {
	items := make(map[uint64]uint64)
	maxPid := 0
	for pid, t := range k.ByPID {
		if pid == 0 {
			continue
		}
		items[uint64(pid)] = t.Get("thread_pid")
		if pid > maxPid {
			maxPid = pid
		}
	}
	k.BuildXArray(k.InitPidNS.Field("idr.idr_rt"), items)
	k.InitPidNS.Set("idr.idr_next", uint64(maxPid+1))
	k.InitPidNS.Set("pid_allocated", uint64(len(items)))
	k.InitPidNS.SetObj("child_reaper", k.ByPID[1])
}
