package kernelsim

import (
	"testing"

	"visualinux/internal/expr"
)

func buildTest(t *testing.T) *Kernel {
	t.Helper()
	return Build(Options{})
}

func env(k *Kernel) *expr.Env {
	e := expr.NewEnv(k.Target())
	RegisterHelpers(e)
	return e
}

func evalU(t *testing.T, e *expr.Env, src string) uint64 {
	t.Helper()
	ex, err := expr.Parse(src, e.Types())
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := ex.Eval(e)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v.Uint()
}

func evalS(t *testing.T, e *expr.Env, src string) string {
	t.Helper()
	ex, err := expr.Parse(src, e.Types())
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := ex.Eval(e)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	if v.IsStr {
		return v.Str
	}
	s, err := expr.ReadString(e, v, 64)
	if err != nil {
		t.Fatalf("string %q: %v", src, err)
	}
	return s
}

func TestBuildSmoke(t *testing.T) {
	k := buildTest(t)
	if len(k.Tasks) < 15 {
		t.Fatalf("too few tasks: %d", len(k.Tasks))
	}
	if k.ByPID[1].IsNil() || k.ByPID[100].IsNil() {
		t.Fatalf("missing key pids")
	}
	pages, bytes := k.Mem.Footprint()
	if pages == 0 || bytes == 0 {
		t.Fatalf("empty memory image")
	}
}

func TestExprOverKernel(t *testing.T) {
	k := buildTest(t)
	e := env(k)

	if got := evalU(t, e, "init_task.pid"); got != 0 {
		t.Errorf("init_task.pid = %d", got)
	}
	if got := evalS(t, e, "init_task.comm"); got != "swapper/0" {
		t.Errorf("init_task.comm = %q", got)
	}
	// Walk the process tree: init's first child via list_head arithmetic.
	firstChild := evalU(t, e, "container_of(init_task.children.next, task_struct, sibling)")
	if firstChild == 0 {
		t.Fatalf("no first child")
	}
	e.Vars["c"] = expr.MakePointer(e.Types().MustLookup("task_struct"), firstChild)
	if pid := evalU(t, e, "@c->pid"); pid != 1 {
		t.Errorf("first child pid = %d, want 1 (systemd)", pid)
	}
	if s := evalS(t, e, "task_state(@c)"); s != "INTERRUPTIBLE" {
		t.Errorf("task_state = %q", s)
	}

	// Scheduler: cpu_rq and the CFS tree.
	if n := evalU(t, e, "cpu_rq(0)->cfs.nr_running"); n == 0 {
		t.Errorf("cpu 0 has empty run queue")
	}
	left := evalU(t, e, "cpu_rq(0)->cfs.tasks_timeline.rb_leftmost")
	if left == 0 {
		t.Fatalf("no leftmost rb node")
	}
	lt := evalU(t, e, "container_of(cpu_rq(0)->cfs.tasks_timeline.rb_leftmost, task_struct, se.run_node)")
	e.Vars["lt"] = expr.MakePointer(e.Types().MustLookup("task_struct"), lt)
	if v := evalU(t, e, "@lt->se.vruntime"); v == 0 {
		t.Errorf("leftmost task has zero vruntime")
	}
}

func TestMapleTreeShape(t *testing.T) {
	k := buildTest(t)
	e := env(k)
	task := k.ByPID[100]
	e.Vars["t"] = expr.MakePointer(e.Types().MustLookup("task_struct"), task.Addr)

	root := evalU(t, e, "@t->mm->mm_mt.ma_root")
	if root == 0 {
		t.Fatalf("empty maple root")
	}
	if !XaIsNode(root) {
		t.Fatalf("root %#x is not an encoded node", root)
	}
	if evalU(t, e, "xa_is_node(@t->mm->mm_mt.ma_root)") != 1 {
		t.Errorf("xa_is_node helper disagrees")
	}
	nodeAddr := evalU(t, e, "mte_to_node(@t->mm->mm_mt.ma_root)")
	if nodeAddr%mapleNodeAlign != 0 {
		t.Errorf("node %#x not 256-aligned", nodeAddr)
	}
	typ := MtNodeType(root)
	if typ != MapleArange64 && typ != MapleLeaf64 {
		t.Errorf("unexpected root type %d", typ)
	}
	// Walk to a leaf and check a VMA looks sane.
	enode := root
	for MtNodeType(enode) != MapleLeaf64 {
		child := evalU(t, e, "mte_to_node("+hex(enode)+")->ma64.slot[0]")
		if !XaIsNode(child) {
			t.Fatalf("internal child %#x is not a node", child)
		}
		enode = child
	}
	vma := uint64(0)
	for s := 0; s < MapleR64Slots && vma == 0; s++ {
		vma = evalU(t, e, "mte_to_node("+hex(enode)+")->mr64.slot["+itoa(s)+"]")
	}
	if vma == 0 {
		t.Fatalf("leaf has no entries")
	}
	e.Vars["v"] = expr.MakePointer(e.Types().MustLookup("vm_area_struct"), vma)
	start, end := evalU(t, e, "@v->vm_start"), evalU(t, e, "@v->vm_end")
	if start >= end {
		t.Errorf("vma range [%#x,%#x) inverted", start, end)
	}
	if mm := evalU(t, e, "@v->vm_mm"); mm != task.Get("mm") {
		t.Errorf("vma->vm_mm mismatch")
	}
}

func TestDirtyPipeState(t *testing.T) {
	k := buildTest(t)
	e := env(k)
	flags := evalU(t, e, "dirty_pipe.bufs[1].flags")
	if flags&PipeBufFlagCanMerge == 0 {
		t.Fatalf("CVE state missing CAN_MERGE on the spliced buffer")
	}
	pipePage := evalU(t, e, "dirty_pipe.bufs[1].page")
	if pipePage != k.SharedPage.Addr {
		t.Errorf("pipe page %#x != shared page %#x", pipePage, k.SharedPage.Addr)
	}
	// The same page must be reachable from test.txt's page cache.
	mapping := evalU(t, e, "dirty_pipe.bufs[1].page->mapping")
	if mapping != k.DirtyFile.Get("f_mapping") {
		t.Errorf("shared page mapping %#x is not test.txt's address_space", mapping)
	}
}

func TestStackRotState(t *testing.T) {
	k := buildTest(t)
	e := env(k)
	head := evalU(t, e, "rcu_data[0].cblist.head")
	if head == 0 {
		t.Fatalf("no RCU callback queued")
	}
	if head != k.StackRotNode.FieldAddr("rcu") {
		t.Errorf("queued rcu_head %#x is not the dying maple node's", head)
	}
	fn := evalU(t, e, "rcu_data[0].cblist.head->func")
	if name, _ := k.Target().SymbolAt(fn); name != "mt_free_rcu" {
		t.Errorf("callback is %q, want mt_free_rcu", name)
	}
	if evalU(t, e, "stackrot_mm.mmap_lock.count") != 2 {
		t.Errorf("mmap_lock should show two readers")
	}
	if k.StackRotVictim.IsNil() {
		t.Errorf("no victim VMA recorded")
	}
}

func TestPageCacheXArray(t *testing.T) {
	k := buildTest(t)
	e := env(k)
	// test.txt has 4 pages; its xarray head must be a single leaf node
	// (shift 0) with 4 slots.
	e.Vars["f"] = expr.MakePointer(e.Types().MustLookup("file"), k.DirtyFile.Addr)
	head := evalU(t, e, "@f->f_mapping->i_pages.xa_head")
	if !XaIsNode(head) {
		t.Fatalf("xa_head %#x not a node", head)
	}
	if sh := evalU(t, e, "xa_to_node(@f->f_mapping->i_pages.xa_head)->shift"); sh != 0 {
		t.Errorf("shift = %d, want 0", sh)
	}
	if cnt := evalU(t, e, "xa_to_node(@f->f_mapping->i_pages.xa_head)->count"); cnt != 4 {
		t.Errorf("count = %d, want 4", cnt)
	}
	pg := evalU(t, e, "xa_to_node(@f->f_mapping->i_pages.xa_head)->slots[2]")
	if idx := evalU(t, e, "((page *)"+hex(pg)+")->index"); idx != 2 {
		t.Errorf("page index = %d, want 2", idx)
	}
}

func TestSuperBlockList(t *testing.T) {
	k := buildTest(t)
	e := env(k)
	// Count superblocks by walking the list.
	head, _ := k.Target().LookupSymbol("super_blocks")
	cur := evalU(t, e, "super_blocks.next")
	n := 0
	ids := map[string]bool{}
	for cur != head.Addr {
		e.Vars["sb"] = expr.MakePointer(e.Types().MustLookup("list_head"), cur)
		sb := evalU(t, e, "container_of(@sb, super_block, s_list)")
		e.Vars["sbp"] = expr.MakePointer(e.Types().MustLookup("super_block"), sb)
		ids[evalS(t, e, "@sbp->s_id")] = true
		cur = evalU(t, e, "@sb->next") // @sb is really the list_head pointer
		n++
		if n > 32 {
			t.Fatalf("runaway list")
		}
	}
	if n != 5 {
		t.Errorf("superblocks = %d, want 5", n)
	}
	if !ids["sda1"] || !ids["pipefs:"] {
		t.Errorf("missing expected superblocks: %v", ids)
	}
	if bdev := evalU(t, e, "sda1_bdev.bd_dev"); bdev != 8<<20|1 {
		t.Errorf("sda1 dev = %#x", bdev)
	}
}

func hex(v uint64) string {
	const digits = "0123456789abcdef"
	buf := make([]byte, 0, 18)
	buf = append(buf, '0', 'x')
	started := false
	for i := 60; i >= 0; i -= 4 {
		d := (v >> uint(i)) & 0xF
		if d != 0 || started || i == 0 {
			buf = append(buf, digits[d])
			started = true
		}
	}
	return string(buf)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
