package kernelsim

// buildKobjects constructs a device-model slice (ULK Fig 13-3): a bus, a
// driver, devices with kobjects chained into a kset.
func (k *Kernel) buildKobjects() {
	ktype := k.Alloc("kobj_type")
	ktype.Set("release", k.Func("device_release"))
	k.Symbol("device_ktype", ktype)

	devicesKset := k.Alloc("kset")
	devicesKset.Field("kobj").SetStrPtr("name", "devices")
	devicesKset.Field("kobj").Set("kref.refcount.refs", 1)
	devicesKset.Field("kobj").Set("state_initialized", 1)
	k.InitList(devicesKset.FieldAddr("list"))
	k.Symbol("devices_kset", devicesKset)

	pciBus := k.Alloc("bus_type")
	pciBus.SetStrPtr("name", "pci")
	pciBus.Set("match", k.Func("pci_bus_match"))
	pciBus.Set("probe", k.Func("pci_device_probe"))
	k.Symbol("pci_bus_type", pciBus)

	e1000 := k.Alloc("device_driver")
	e1000.SetStrPtr("name", "e1000")
	e1000.SetObj("bus", pciBus)
	e1000.Set("probe", k.Func("e1000_probe"))
	e1000.Set("remove", k.Func("e1000_remove"))
	k.Symbol("e1000_driver", e1000)

	ahci := k.Alloc("device_driver")
	ahci.SetStrPtr("name", "ahci")
	ahci.SetObj("bus", pciBus)
	ahci.Set("probe", k.Func("ahci_probe"))

	var parent Obj
	for i, spec := range []struct {
		name   string
		driver Obj
	}{
		{"pci0000:00", Obj{}},
		{"0000:00:02.0", e1000},
		{"0000:00:1f.2", ahci},
	} {
		d := k.Alloc("device")
		kobj := d.Field("kobj")
		kobj.SetStrPtr("name", spec.name)
		kobj.SetObj("kset", devicesKset)
		kobj.SetObj("ktype", ktype)
		kobj.Set("kref.refcount.refs", uint64(2+i))
		kobj.Set("state_initialized", 1)
		kobj.Set("state_in_sysfs", 1)
		if !parent.IsNil() {
			kobj.Set("parent", parent.FieldAddr("kobj"))
			d.SetObj("parent", parent)
		}
		k.ListAddTail(devicesKset.FieldAddr("list"), kobj.FieldAddr("entry"))
		d.SetObj("bus", pciBus)
		if !spec.driver.IsNil() {
			d.SetObj("driver", spec.driver)
		}
		d.Set("devt", uint64(8<<20|16*i))
		if parent.IsNil() {
			parent = d
		}
	}
}

// buildBlock constructs gendisk/block_device descriptors (ULK Fig 14-3)
// and attaches sda1 to the ext4 superblock.
func (k *Kernel) buildBlock() {
	disk := k.Alloc("gendisk")
	disk.Set("major", 8)
	disk.Set("minors", 16)
	disk.SetStr("disk_name", "sda")
	k.Symbol("sda_disk", disk)

	whole := k.Alloc("block_device")
	whole.Set("bd_dev", 8<<20|0)
	whole.Set("bd_nr_sectors", 500118192)
	whole.SetObj("bd_disk", disk)
	whole.Set("bd_openers", 1)
	disk.SetObj("part0", whole)
	bdevIno := k.MkInode(k.vfs().sbExt4, SIFBLK|0o600, 0)
	whole.SetObj("bd_inode", bdevIno)

	part1 := k.Alloc("block_device")
	part1.Set("bd_dev", 8<<20|1)
	part1.Set("bd_partno", 1)
	part1.Set("bd_start_sect", 2048)
	part1.Set("bd_nr_sectors", 500116144)
	part1.SetObj("bd_disk", disk)
	part1.Set("bd_openers", 1)
	p1Ino := k.MkInode(k.vfs().sbExt4, SIFBLK|0o600, 0)
	part1.SetObj("bd_inode", p1Ino)
	part1.SetObj("bd_super", k.vfs().sbExt4)
	k.vfs().sbExt4.SetObj("s_bdev", part1)
	k.vfs().sbExt4.Set("s_dev", 8<<20|1)
	k.Symbol("sda1_bdev", part1)
}

// buildSwap constructs swap area descriptors (ULK Fig 17-6).
func (k *Kernel) buildSwap() {
	const maxSwapfiles = 4
	siT := k.typeOf("swap_info_struct")
	arr := k.AllocRaw(8*maxSwapfiles, 8)
	k.SymbolAddr("swap_info", arr, siT.PointerTo().ArrayOf(maxSwapfiles))
	nr := k.AllocRaw(4, 4)
	k.Mem.WriteU32(nr, 1)
	k.SymbolAddr("nr_swapfiles", nr, k.typeOf("int"))

	si := k.Alloc("swap_info_struct")
	si.Set("flags", 1|2) // SWP_USED|SWP_WRITEOK
	si.Set("prio", uint64(0xFFFE))
	si.Set("max", 131072)
	si.Set("pages", 131071)
	si.Set("inuse_pages", 2048)
	si.Set("lowest_bit", 3)
	si.Set("highest_bit", 131071)
	swapFile := k.MkRegularFile("swapfile", 2)
	si.SetObj("swap_file", swapFile)
	// swap_map: one byte per slot; allocate a prefix with a few counts.
	sm := k.AllocRaw(64, 8)
	for i := 0; i < 16; i++ {
		k.Mem.WriteU8(sm+uint64(i), uint8(i%3))
	}
	si.Set("swap_map", sm)
	k.Mem.WriteU64(arr, si.Addr)
	k.Symbol("swap_info_0", si)
}

// buildIPC constructs System V IPC state (ULK Fig 19-1/19-2): semaphore
// arrays and message queues registered in an ipc namespace's IDRs.
func (k *Kernel) buildIPC(opts Options) {
	ns := k.Alloc("ipc_namespace")
	k.Symbol("init_ipc_ns", ns)

	semItems := make(map[uint64]uint64)
	// One semaphore array per pair of workload processes.
	nsems := opts.Processes/2 + 1
	semT := k.typeOf("sem")
	for i := 0; i < nsems; i++ {
		// sem_array has a flexible array member: allocate header + sems.
		saT := k.typeOf("sem_array")
		cnt := uint64(2 + i%3)
		addr := k.AllocRaw(saT.Size()+cnt*semT.Size(), 8)
		sa := Obj{B: k.Builder, Addr: addr, Type: saT}
		sa.Set("sem_perm.id", uint64(i))
		sa.Set("sem_perm.key", uint64(0x5feed+i))
		sa.Set("sem_perm.mode", 0o600)
		sa.Set("sem_perm.seq", uint64(i))
		sa.Set("sem_nsems", cnt)
		sa.Set("sem_ctime", 1_700_000_000+uint64(i))
		k.InitList(sa.FieldAddr("pending_alter"))
		k.InitList(sa.FieldAddr("pending_const"))
		k.InitList(sa.FieldAddr("list_id"))
		for s := uint64(0); s < cnt; s++ {
			sem := Obj{B: k.Builder, Addr: addr + saT.Size() + s*semT.Size(), Type: semT}
			sem.Set("semval", s%2)
			sem.Set("sempid", uint64(100+i*2))
			k.InitList(sem.FieldAddr("pending_alter"))
			k.InitList(sem.FieldAddr("pending_const"))
			// A waiting queue entry on busy semaphores.
			if s == 0 && i%2 == 0 {
				q := k.Alloc("sem_queue")
				if t, ok := k.ByPID[101+i*2]; ok {
					q.SetObj("sleeper", t)
					q.Set("pid", t.Get("pid"))
				}
				q.Set("nsops", 1)
				q.Set("alter", 1)
				k.ListAddTail(sem.FieldAddr("pending_alter"), q.FieldAddr("list"))
			}
		}
		semItems[uint64(i)] = sa.Addr
		if i == 0 {
			k.Symbol("sem_array_0", sa)
		}
	}
	k.BuildXArray(ns.Field("ids").Index(0).Field("ipcs_idr.idr_rt"), semItems)
	ns.Field("ids").Index(0).Set("in_use", uint64(len(semItems)))

	msgItems := make(map[uint64]uint64)
	for i := 0; i < 2; i++ {
		mq := k.Alloc("msg_queue")
		mq.Set("q_perm.id", uint64(i))
		mq.Set("q_perm.key", uint64(0xbeef+i))
		mq.Set("q_perm.mode", 0o644)
		mq.Set("q_qbytes", 16384)
		k.InitList(mq.FieldAddr("q_messages"))
		k.InitList(mq.FieldAddr("q_receivers"))
		k.InitList(mq.FieldAddr("q_senders"))
		nmsg := 3 + i*2
		bytes := uint64(0)
		for m := 0; m < nmsg; m++ {
			msg := k.Alloc("msg_msg")
			msg.Set("m_type", uint64(1+m%2))
			msg.Set("m_ts", uint64(64+m*16))
			bytes += uint64(64 + m*16)
			k.ListAddTail(mq.FieldAddr("q_messages"), msg.FieldAddr("m_list"))
		}
		mq.Set("q_qnum", uint64(nmsg))
		mq.Set("q_cbytes", bytes)
		mq.Set("q_lspid", 100)
		msgItems[uint64(i)] = mq.Addr
		if i == 0 {
			k.Symbol("msg_queue_0", mq)
		}
	}
	k.BuildXArray(ns.Field("ids").Index(1).Field("ipcs_idr.idr_rt"), msgItems)
	ns.Field("ids").Index(1).Set("in_use", uint64(len(msgItems)))
}
