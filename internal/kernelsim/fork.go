package kernelsim

// Kernel forking: the session-fleet fast path. A built kernel sealed into a
// CoW page store can be cloned in microseconds — the fork shares every guest
// page copy-on-write and deep-copies only the Go-side bookkeeping (object
// handles, symbol table, VFS/mm trackers), so a fleet of sessions built from
// one template pays build cost once and unique pages only.

// Fork returns an independent copy-on-write clone of k. The clone has its
// own memory view (writes break sharing per 4 KiB page), its own symbol
// table and fake-text allocator (mutation workloads register symbols via
// Func), and private copies of every Go-side tracker, so the two kernels can
// run divergent workloads without touching each other. k must have been
// sealed into a PageStore (see Template) before forking.
func (k *Kernel) Fork() *Kernel {
	m := k.Mem.Fork()
	b := &Builder{
		Mem:   m,
		Tgt:   k.Tgt.CloneWith(m),
		Reg:   k.Reg,
		next:  k.next,
		text:  k.text,
		pfn:   k.pfn,
		funcs: make(map[string]uint64, len(k.funcs)),
	}
	for name, addr := range k.funcs {
		b.funcs[name] = addr
	}

	f := &Kernel{
		Builder: b,

		InitTask:  b.reown(k.InitTask),
		InitPidNS: b.reown(k.InitPidNS),
		Runqueues: b.reown(k.Runqueues),
		NodeData:  b.reown(k.NodeData),

		SuperBlocks: b.reown(k.SuperBlocks),
		RootSB:      b.reown(k.RootSB),

		DirtyPipe:      b.reown(k.DirtyPipe),
		DirtyFile:      b.reown(k.DirtyFile),
		SharedPage:     b.reown(k.SharedPage),
		StackRotMM:     b.reown(k.StackRotMM),
		StackRotNode:   b.reown(k.StackRotNode),
		StackRotVictim: b.reown(k.StackRotVictim),
		MMPercpuWQ:     b.reown(k.MMPercpuWQ),
		RCUData:        b.reown(k.RCUData),

		Tasks:      make([]Obj, len(k.Tasks)),
		ByPID:      make(map[int]Obj, len(k.ByPID)),
		Files:      make([]Obj, len(k.Files)),
		immapNodes: make(map[uint64][]uint64, len(k.immapNodes)),
		mmVMAs:     make(map[uint64][]mappedVMA, len(k.mmVMAs)),
	}
	for i, t := range k.Tasks {
		f.Tasks[i] = b.reown(t)
	}
	for pid, t := range k.ByPID {
		f.ByPID[pid] = b.reown(t)
	}
	for i, file := range k.Files {
		f.Files[i] = b.reown(file)
	}
	for addr, nodes := range k.immapNodes {
		f.immapNodes[addr] = append([]uint64(nil), nodes...)
	}
	for addr, vmas := range k.mmVMAs {
		cp := make([]mappedVMA, len(vmas))
		for i, mv := range vmas {
			mv.vma = b.reown(mv.vma)
			cp[i] = mv
		}
		f.mmVMAs[addr] = cp
	}
	if k.vfsSt != nil {
		st := *k.vfsSt
		st.sbExt4 = b.reown(st.sbExt4)
		st.sbProc = b.reown(st.sbProc)
		st.sbTmpfs = b.reown(st.sbTmpfs)
		st.sbPipefs = b.reown(st.sbPipefs)
		st.sbSockfs = b.reown(st.sbSockfs)
		st.rootDentry = b.reown(st.rootDentry)
		st.consoleFile = b.reown(st.consoleFile)
		st.fileOps = b.reown(st.fileOps)
		st.pipeOps = b.reown(st.pipeOps)
		st.sockOps = b.reown(st.sockOps)
		f.vfsSt = &st
	}
	return f
}

// reown rebinds an object handle to this builder (addresses and types are
// position-independent across forks; only the builder pointer differs).
func (b *Builder) reown(o Obj) Obj {
	if o.B != nil {
		o.B = b
	}
	return o
}
