package kernelsim

import (
	"bytes"
	"testing"

	"visualinux/internal/mem"
)

// memEqual compares two memories page by page over their mapped ranges.
func memEqual(t *testing.T, a, b *mem.Memory) bool {
	t.Helper()
	ra, rb := a.MappedRanges(), b.MappedRanges()
	if len(ra) != len(rb) {
		t.Logf("mapped page counts differ: %d vs %d", len(ra), len(rb))
		return false
	}
	pa, pb := make([]byte, mem.PageSize), make([]byte, mem.PageSize)
	for i := range ra {
		if ra[i] != rb[i] {
			t.Logf("page base mismatch at %d: %#x vs %#x", i, ra[i], rb[i])
			return false
		}
		if err := a.Read(ra[i], pa); err != nil {
			t.Fatal(err)
		}
		if err := b.Read(rb[i], pb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pa, pb) {
			t.Logf("content mismatch in page %#x", ra[i])
			return false
		}
	}
	return true
}

// Build must be deterministic — the property that makes a forked session
// byte-identical to a privately built one.
func TestBuildIsDeterministic(t *testing.T) {
	opts := Options{Churn: 6}
	a, b := Build(opts), Build(opts)
	if !memEqual(t, a.Mem, b.Mem) {
		t.Fatal("two Build calls with identical Options produced different images")
	}
}

// A forked kernel is byte-identical to a privately built one, and identical
// workloads keep them byte-identical after divergence from the template.
func TestForkMatchesPrivateBuild(t *testing.T) {
	opts := Options{Churn: 4}
	private := Build(opts)
	forked := FromTemplate(opts)
	if !memEqual(t, private.Mem, forked.Mem) {
		t.Fatal("forked kernel differs from private build")
	}
	if len(private.Tgt.Symbols()) != len(forked.Tgt.Symbols()) {
		t.Fatalf("symbol tables differ: %d vs %d",
			len(private.Tgt.Symbols()), len(forked.Tgt.Symbols()))
	}

	// Same deterministic workload on both sides: CoW breaks on the fork,
	// plain writes on the private build — bytes must stay identical.
	wp, wf := NewWorkload(private), NewWorkload(forked)
	for i := 0; i < 10; i++ {
		wp.Step()
		wf.Step()
	}
	if !memEqual(t, private.Mem, forked.Mem) {
		t.Fatal("forked kernel diverged from private build under the same workload")
	}
}

// Forks are independent of each other and of the template: one session's
// workload must never leak into a sibling.
func TestForkIsolation(t *testing.T) {
	opts := Options{Churn: 2}
	tpl := TemplateFor(opts)
	tplPages, _ := tpl.Mem.Footprint()

	a, b := tpl.Fork(), tpl.Fork()
	if !memEqual(t, a.Mem, b.Mem) {
		t.Fatal("fresh forks differ")
	}
	wa := NewWorkload(a)
	for i := 0; i < 8; i++ {
		wa.Step()
	}
	// a mutated; b must still match a fresh fork of the template.
	c := tpl.Fork()
	if !memEqual(t, b.Mem, c.Mem) {
		t.Fatal("sibling fork was contaminated by another session's workload")
	}
	if pages, _ := tpl.Mem.Footprint(); pages != tplPages {
		t.Fatalf("template footprint moved under fork workloads: %d -> %d", tplPages, pages)
	}
	if r := tpl.Mem.Residency(); r.PrivateBytes != 0 {
		t.Fatalf("template gained %d private bytes (was mutated)", r.PrivateBytes)
	}

	// The fork's mutation bookkeeping is private: spawning the same pid in
	// both siblings must work (shared ByPID would collide).
	if _, err := b.SpawnTask(5000, "twin", 1); err != nil {
		t.Fatalf("spawn in b: %v", err)
	}
	if _, err := c.SpawnTask(5000, "twin", 1); err != nil {
		t.Fatalf("spawn in c: %v", err)
	}
	if _, ok := a.ByPID[5000]; ok {
		t.Fatal("pid map shared across forks")
	}
}

// Fork admission must share ~everything: a fresh fork owns (almost) nothing
// beyond its amortized share, and CoW breaks charge only written pages.
func TestForkResidency(t *testing.T) {
	opts := Options{Churn: 1, Processes: 3}
	tpl := TemplateFor(opts)
	f := FromTemplate(opts)

	r := f.Mem.Residency()
	if r.PrivateBytes != 0 {
		t.Fatalf("fresh fork has %d private bytes, want 0", r.PrivateBytes)
	}
	_, total := f.Mem.Footprint()
	if r.OwnedBytes*3 > total {
		t.Fatalf("fresh fork owns %d of %d bytes — not shared with the template",
			r.OwnedBytes, total)
	}
	w := NewWorkload(f)
	w.Step()
	r2 := f.Mem.Residency()
	if r2.PrivateBytes == 0 {
		t.Fatal("workload step broke no pages")
	}
	if r2.PrivateBytes >= total/2 {
		t.Fatalf("one workload step privatized %d of %d bytes", r2.PrivateBytes, total)
	}
	_ = tpl
}
