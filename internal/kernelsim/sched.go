package kernelsim

import "sort"

// buildSched allocates the per-CPU run queues (symbol "runqueues") before
// any task exists; finalizeSched later enqueues runnable tasks into the CFS
// red-black trees, reproducing ULK Fig 7-1 state.
func (k *Kernel) buildSched() {
	rqT := k.typeOf("rq")
	arr := k.AllocArray("rq", NrCPUs)
	k.Runqueues = arr
	k.SymbolAddr("runqueues", arr.Addr, rqT.ArrayOf(NrCPUs))
	for cpu := uint64(0); cpu < NrCPUs; cpu++ {
		rq := arr.Index(cpu)
		rq.Set("cpu", cpu)
		rq.Set("clock", 1_000_000_000*(cpu+1))
		rq.Set("cfs.min_vruntime", 3_000_000)
		k.InitList(rq.FieldAddr("cfs.tasks_timeline")) // placeholder; rebuilt below
	}
}

// finalizeSched distributes runnable tasks round-robin over the CPUs and
// builds each CPU's CFS timeline red-black tree keyed by vruntime. A
// positive skew unbalances the distribution: out of every NrCPUs+skew
// tasks, the skew overflow lands on CPU 0, so rq0 is measurably the
// longest runqueue (the fleet-heterogeneity layout variant).
func (k *Kernel) finalizeSched(skew int) {
	type entry struct {
		node     uint64
		vruntime uint64
		task     Obj
	}
	percpu := make([][]entry, NrCPUs)
	for i, t := range k.Tasks {
		if t.Get("__state") != TaskRunning || t.Get("pid") == 0 {
			continue
		}
		cpu := i % NrCPUs
		if skew > 0 {
			if idx := i % (NrCPUs + skew); idx >= NrCPUs {
				cpu = 0
			} else {
				cpu = idx
			}
		}
		t.Set("cpu", uint64(cpu))
		t.Set("on_rq", 1)
		t.Set("se.on_rq", 1)
		percpu[cpu] = append(percpu[cpu], entry{
			node:     t.FieldAddr("se.run_node"),
			vruntime: t.Get("se.vruntime"),
			task:     t,
		})
	}
	for cpu := 0; cpu < NrCPUs; cpu++ {
		es := percpu[cpu]
		sort.Slice(es, func(i, j int) bool { return es[i].vruntime < es[j].vruntime })
		nodes := make([]uint64, len(es))
		for i, e := range es {
			nodes[i] = e.node
		}
		rq := k.Runqueues.Index(uint64(cpu))
		k.BuildRBTree(rq.FieldAddr("cfs.tasks_timeline"), nodes, true)
		rq.Set("cfs.nr_running", uint64(len(es)))
		rq.Set("cfs.h_nr_running", uint64(len(es)))
		rq.Set("nr_running", uint64(len(es)))
		if len(es) > 0 {
			cur := es[len(es)-1].task
			rq.SetObj("curr", cur)
			rq.Set("cfs.curr", cur.FieldAddr("se"))
			cur.Set("on_cpu", 1)
		}
		rq.Set("cfs.load.weight", 1024*uint64(len(es)))
	}
}
