// Package kernelsim builds a simulated Linux kernel state: a memory image
// populated with Linux-6.1-shaped data structures that the Visualinux engine
// debugs through the target interface. It replaces the live QEMU/KGDB kernel
// of the paper while preserving everything ViewCL can observe — struct
// layouts, pointer topology, container_of embedding, tagged pointers, and
// per-CPU indirection.
//
// The layouts below follow Linux 6.1 field names and nesting. Field *sets*
// are pruned to the members that any ULK figure, case study, or helper
// touches (plus padding-relevant neighbors); offsets therefore differ from a
// real vmlinux, which is irrelevant because the type registry is the single
// source of truth for both the builder and the evaluator — exactly the
// DWARF contract.
package kernelsim

import (
	"visualinux/internal/ctypes"
)

// Tunables of the simulated machine (kept small enough to plot, mirroring
// the paper's 2-vCPU QEMU setup).
const (
	NrCPUs        = 2
	NrIRQs        = 16
	NSig          = 64
	MaxOrder      = 11 // buddy allocator orders 0..10
	MigrateTypes  = 3
	MaxNrZones    = 3
	XAChunkSize   = 64 // xarray fan-out
	MapleR64Slots = 16 // maple_range_64 / leaf_64 slots
	MapleA64Slots = 10 // maple_arange_64 slots
	PipeRingSize  = 8
	NFDBits       = 64
)

// Maple node type enumerators (mirroring enum maple_type).
const (
	MapleDense = iota
	MapleLeaf64
	MapleRange64
	MapleArange64
)

// Pointer tagging schemes, documented here once:
//
// maple enode: nodes are 256-byte aligned; an encoded node pointer is
// node | (type << 3) | 2. The |2 makes it an xarray-style "internal" entry,
// so xa_is_node() distinguishes internal nodes from plain object pointers
// stored in leaf slots.
const (
	mapleNodeAlign  = 256
	mapleTypeShift  = 3
	mapleTypeMask   = 0xF
	xaInternalTag   = 2
	pageMappingAnon = 1 // page->mapping low bit: anon_vma pointer
)

// VM flag bits (subset of Linux's vm_flags).
const (
	VMRead      = 0x0001
	VMWrite     = 0x0002
	VMExec      = 0x0004
	VMShared    = 0x0008
	VMMayRead   = 0x0010
	VMMayWrite  = 0x0020
	VMGrowsDown = 0x0100
	VMAnon      = 0 // anonymous mappings are simply file-less
)

// Pipe buffer flags.
const (
	PipeBufFlagLRU      = 0x01
	PipeBufFlagAtomic   = 0x02
	PipeBufFlagGift     = 0x04
	PipeBufFlagPacket   = 0x08
	PipeBufFlagCanMerge = 0x10
)

// Page flag bits (subset).
const (
	PGLocked    = 1 << 0
	PGDirty     = 1 << 1
	PGLRU       = 1 << 2
	PGUptodate  = 1 << 3
	PGSlab      = 1 << 4
	PGBuddy     = 1 << 5
	PGAnon      = 1 << 6
	PGSwapCache = 1 << 7
)

// Task state bits (Linux __state values).
const (
	TaskRunning         = 0x0000
	TaskInterruptible   = 0x0001
	TaskUninterruptible = 0x0002
	TaskStopped         = 0x0004
	TaskTraced          = 0x0008
	ExitDead            = 0x0010
	ExitZombie          = 0x0020
	TaskDead            = 0x0080
	TaskWakeKill        = 0x0100
	TaskNew             = 0x0800
)

// RegisterTypes declares every simulated kernel type into r and returns r.
func RegisterTypes(r *ctypes.Registry) *ctypes.Registry {
	u8 := r.MustLookup("u8")
	u16 := r.MustLookup("u16")
	u32 := r.MustLookup("u32")
	u64 := r.MustLookup("u64")
	s64 := r.MustLookup("s64")
	cint := r.MustLookup("int")
	uint_ := r.MustLookup("unsigned int")
	long_ := r.MustLookup("long")
	ulong := r.MustLookup("unsigned long")
	short_ := r.MustLookup("short")
	charT := r.MustLookup("char")
	pidT := r.MustLookup("pid_t")
	atomicT := r.MustLookup("atomic_t")
	atomic64 := r.MustLookup("atomic64_t")
	atomicLong := r.MustLookup("atomic_long_t")
	loffT := r.MustLookup("loff_t")
	devT := r.MustLookup("dev_t")
	sectorT := r.MustLookup("sector_t")
	voidp := ctypes.VoidPtr
	fptr := ctypes.FuncPtr
	charp := charT.PointerTo()

	F := ctypes.F
	BF := ctypes.BF

	// ---- forward declarations for every cyclic struct --------------------
	shell := func(name string) *ctypes.Type { return r.Register(ctypes.NewShell(name)) }
	taskStruct := shell("task_struct")
	mmStruct := shell("mm_struct")
	vmArea := shell("vm_area_struct")
	filesStruct := shell("files_struct")
	file := shell("file")
	dentry := shell("dentry")
	inode := shell("inode")
	superBlock := shell("super_block")
	addressSpace := shell("address_space")
	anonVma := shell("anon_vma")
	signalStruct := shell("signal_struct")
	sighandStruct := shell("sighand_struct")
	pidStruct := shell("pid")
	pidNamespace := shell("pid_namespace")
	sock := shell("sock")
	socket := shell("socket")
	skBuff := shell("sk_buff")
	blockDevice := shell("block_device")
	gendisk := shell("gendisk")
	kobject := shell("kobject")
	kset := shell("kset")
	kobjType := shell("kobj_type")
	device := shell("device")
	deviceDriver := shell("device_driver")
	busType := shell("bus_type")
	kmemCache := shell("kmem_cache")
	slab := shell("slab")
	xaNode := shell("xa_node")
	mapleNode := shell("maple_node")
	page := shell("page")
	pipeInode := shell("pipe_inode_info")
	irqaction := shell("irqaction")
	irqChip := shell("irq_chip")
	fsType := shell("file_system_type")
	workqueueStruct := shell("workqueue_struct")
	workerPool := shell("worker_pool")
	swapInfo := shell("swap_info_struct")
	rcuHead := shell("rcu_head")
	timerList := shell("timer_list")
	msgMsg := shell("msg_msg")
	vfsmount := shell("vfsmount")
	protoOps := shell("proto_ops")
	fileOperations := shell("file_operations")
	pipeBufOperations := shell("pipe_buf_operations")
	vmOperations := shell("vm_operations_struct")
	schedEntity := shell("sched_entity")
	cfsRq := shell("cfs_rq")
	rq := shell("rq")

	// ---- enums ------------------------------------------------------------
	r.Register(ctypes.NewEnum("maple_type",
		ctypes.EnumVal{Name: "maple_dense", Value: MapleDense},
		ctypes.EnumVal{Name: "maple_leaf_64", Value: MapleLeaf64},
		ctypes.EnumVal{Name: "maple_range_64", Value: MapleRange64},
		ctypes.EnumVal{Name: "maple_arange_64", Value: MapleArange64},
	))
	r.Register(ctypes.NewEnum("pid_type",
		ctypes.EnumVal{Name: "PIDTYPE_PID", Value: 0},
		ctypes.EnumVal{Name: "PIDTYPE_TGID", Value: 1},
		ctypes.EnumVal{Name: "PIDTYPE_PGID", Value: 2},
		ctypes.EnumVal{Name: "PIDTYPE_SID", Value: 3},
		ctypes.EnumVal{Name: "PIDTYPE_MAX", Value: 4},
	))
	socketState := r.Register(ctypes.NewEnum("socket_state",
		ctypes.EnumVal{Name: "SS_FREE", Value: 0},
		ctypes.EnumVal{Name: "SS_UNCONNECTED", Value: 1},
		ctypes.EnumVal{Name: "SS_CONNECTING", Value: 2},
		ctypes.EnumVal{Name: "SS_CONNECTED", Value: 3},
		ctypes.EnumVal{Name: "SS_DISCONNECTING", Value: 4},
	))
	r.Register(ctypes.NewEnum("tcp_state",
		ctypes.EnumVal{Name: "TCP_ESTABLISHED", Value: 1},
		ctypes.EnumVal{Name: "TCP_SYN_SENT", Value: 2},
		ctypes.EnumVal{Name: "TCP_SYN_RECV", Value: 3},
		ctypes.EnumVal{Name: "TCP_FIN_WAIT1", Value: 4},
		ctypes.EnumVal{Name: "TCP_FIN_WAIT2", Value: 5},
		ctypes.EnumVal{Name: "TCP_TIME_WAIT", Value: 6},
		ctypes.EnumVal{Name: "TCP_CLOSE", Value: 7},
		ctypes.EnumVal{Name: "TCP_CLOSE_WAIT", Value: 8},
		ctypes.EnumVal{Name: "TCP_LAST_ACK", Value: 9},
		ctypes.EnumVal{Name: "TCP_LISTEN", Value: 10},
		ctypes.EnumVal{Name: "TCP_CLOSING", Value: 11},
	))
	zoneType := r.Register(ctypes.NewEnum("zone_type",
		ctypes.EnumVal{Name: "ZONE_DMA", Value: 0},
		ctypes.EnumVal{Name: "ZONE_DMA32", Value: 1},
		ctypes.EnumVal{Name: "ZONE_NORMAL", Value: 2},
	))
	_ = zoneType

	// ---- primitive kernel wrappers ----------------------------------------
	spinlock := r.Register(ctypes.StructOf("spinlock_t", F("raw_lock", u32), F("owner_cpu", u32)))
	r.Register(ctypes.Typedef("raw_spinlock_t", spinlock))
	refcount := r.Register(ctypes.StructOf("refcount_t", F("refs", atomicT)))
	kref := r.Register(ctypes.StructOf("kref", F("refcount", refcount)))
	rwsem := r.Register(ctypes.StructOf("rw_semaphore",
		F("count", atomicLong), F("owner", atomicLong), F("wait_lock", spinlock)))
	seqcount := r.Register(ctypes.StructOf("seqcount_t", F("sequence", uint_)))
	mutexT := r.Register(ctypes.StructOf("mutex", F("owner", atomicLong), F("wait_lock", spinlock)))
	sigsetT := r.Register(ctypes.StructOf("sigset_t", F("sig", u64.ArrayOf(1))))
	kuidT := r.Register(ctypes.StructOf("kuid_t", F("val", u32)))
	kgidT := r.Register(ctypes.StructOf("kgid_t", F("val", u32)))
	waitQueueHead := shell("wait_queue_head")

	listHead := shell("list_head")
	listHead.Complete(F("next", listHead.PointerTo()), F("prev", listHead.PointerTo()))
	hlistNode := shell("hlist_node")
	hlistNode.Complete(F("next", hlistNode.PointerTo()), F("pprev", hlistNode.PointerTo().PointerTo()))
	hlistHead := r.Register(ctypes.StructOf("hlist_head", F("first", hlistNode.PointerTo())))
	r.Register(listHead)
	r.Register(hlistNode)

	waitQueueHead.Complete(F("lock", spinlock), F("head", listHead))
	r.Register(waitQueueHead)

	rbNode := shell("rb_node")
	rbNode.Complete(
		F("__rb_parent_color", ulong),
		F("rb_right", rbNode.PointerTo()),
		F("rb_left", rbNode.PointerTo()))
	r.Register(rbNode)
	rbRoot := r.Register(ctypes.StructOf("rb_root", F("rb_node", rbNode.PointerTo())))
	rbRootCached := r.Register(ctypes.StructOf("rb_root_cached",
		F("rb_root", rbRoot), F("rb_leftmost", rbNode.PointerTo())))

	rcuHead.Complete(F("next", rcuHead.PointerTo()), F("func", fptr))

	qstr := r.Register(ctypes.StructOf("qstr", F("hash_len", u64), F("name", charp)))

	// ---- xarray / idr -------------------------------------------------------
	xarray := r.Register(ctypes.StructOf("xarray",
		F("xa_lock", spinlock), F("xa_flags", uint_), F("xa_head", voidp)))
	xaNode.Complete(
		F("shift", u8), F("offset", u8), F("count", u8), F("nr_values", u8),
		F("parent", xaNode.PointerTo()),
		F("array", xarray.PointerTo()),
		F("slots", voidp.ArrayOf(XAChunkSize)))
	idr := r.Register(ctypes.StructOf("idr",
		F("idr_rt", xarray), F("idr_base", uint_), F("idr_next", uint_)))

	// ---- maple tree ---------------------------------------------------------
	mapleTree := r.Register(ctypes.StructOf("maple_tree",
		F("ma_lock", spinlock),
		F("ma_flags", uint_),
		F("ma_root", voidp)))
	mapleRange64 := r.Register(ctypes.StructOf("maple_range_64",
		F("parent", voidp),
		F("pivot", ulong.ArrayOf(MapleR64Slots-1)),
		F("slot", voidp.ArrayOf(MapleR64Slots))))
	mapleArange64 := r.Register(ctypes.StructOf("maple_arange_64",
		F("parent", voidp),
		F("pivot", ulong.ArrayOf(MapleA64Slots-1)),
		F("slot", voidp.ArrayOf(MapleA64Slots)),
		F("gap", ulong.ArrayOf(MapleA64Slots)),
		F("meta", u64)))
	mapleNode.CompleteUnion(
		ctypes.FieldSpec{Name: "", Type: ctypes.StructOf("",
			F("pad", voidp),
			F("rcu", rcuHead))},
		F("mr64", mapleRange64),
		F("ma64", mapleArange64))
	// Maple nodes are 256-byte aligned slab objects; pad the union to the
	// allocation size so tagged-pointer arithmetic is honest.
	_ = mapleNode

	// ---- scheduler ----------------------------------------------------------
	loadWeight := r.Register(ctypes.StructOf("load_weight",
		F("weight", ulong), F("inv_weight", u32)))
	schedEntity.Complete(
		F("load", loadWeight),
		F("run_node", rbNode),
		F("group_node", listHead),
		F("on_rq", uint_),
		F("exec_start", u64),
		F("sum_exec_runtime", u64),
		F("vruntime", u64),
		F("prev_sum_exec_runtime", u64))
	r.Register(schedEntity)
	cfsRq.Complete(
		F("load", loadWeight),
		F("nr_running", uint_),
		F("h_nr_running", uint_),
		F("exec_clock", u64),
		F("min_vruntime", u64),
		F("tasks_timeline", rbRootCached),
		F("curr", schedEntity.PointerTo()),
		F("next", schedEntity.PointerTo()))
	r.Register(cfsRq)
	rq.Complete(
		F("__lock", spinlock),
		F("nr_running", uint_),
		F("cpu", cint),
		F("cfs", cfsRq),
		F("curr", taskStruct.PointerTo()),
		F("idle", taskStruct.PointerTo()),
		F("clock", u64))
	r.Register(rq)

	// ---- pids ---------------------------------------------------------------
	upid := r.Register(ctypes.StructOf("upid",
		F("nr", cint), F("ns", pidNamespace.PointerTo())))
	pidStruct.Complete(
		F("count", refcount),
		F("level", uint_),
		F("tasks", hlistHead.ArrayOf(4)), // PIDTYPE_MAX
		F("inodes", hlistHead),
		F("numbers", upid.ArrayOf(1)))
	r.Register(pidStruct)
	pidNamespace.Complete(
		F("idr", idr),
		F("pid_allocated", uint_),
		F("level", uint_),
		F("child_reaper", taskStruct.PointerTo()),
		F("parent", pidNamespace.PointerTo()))
	r.Register(pidNamespace)

	// ---- signals --------------------------------------------------------------
	sigaction := r.Register(ctypes.StructOf("sigaction",
		F("sa_handler", fptr),
		F("sa_flags", ulong),
		F("sa_restorer", fptr),
		F("sa_mask", sigsetT)))
	kSigaction := r.Register(ctypes.StructOf("k_sigaction", F("sa", sigaction)))
	sigpending := r.Register(ctypes.StructOf("sigpending",
		F("list", listHead), F("signal", sigsetT)))
	sigqueue := r.Register(ctypes.StructOf("sigqueue",
		F("list", listHead),
		F("flags", cint),
		F("si_signo", cint), // flattened siginfo essentials
		F("si_code", cint),
		F("si_pid", pidT)))
	_ = sigqueue
	sighandStruct.Complete(
		F("count", refcount),
		F("siglock", spinlock),
		F("action", kSigaction.ArrayOf(NSig)))
	r.Register(sighandStruct)
	signalStruct.Complete(
		F("sigcnt", refcount),
		F("live", atomicT),
		F("nr_threads", cint),
		F("thread_head", listHead),
		F("shared_pending", sigpending),
		F("group_exit_code", cint),
		F("pids", pidStruct.PointerTo().ArrayOf(4)))
	r.Register(signalStruct)

	// ---- memory management ------------------------------------------------------
	page.CompleteUnion(
		ctypes.FieldSpec{Name: "", Type: ctypes.StructOf("",
			F("flags", ulong),
			F("lru", listHead),
			F("mapping", addressSpace.PointerTo()),
			F("index", ulong),
			F("private", ulong),
			F("_mapcount", atomicT),
			F("_refcount", atomicT))},
		ctypes.FieldSpec{Name: "", Type: ctypes.StructOf("",
			F("buddy_flags", ulong),
			F("buddy_list", listHead),
			F("__pad_bf", ulong.ArrayOf(2)),
			F("buddy_order", ulong))},
		ctypes.FieldSpec{Name: "", Type: ctypes.StructOf("",
			F("slab_flags", ulong),
			F("slab_list", listHead))})
	r.Register(page)

	freeArea := r.Register(ctypes.StructOf("free_area",
		F("free_list", listHead.ArrayOf(MigrateTypes)),
		F("nr_free", ulong)))
	zone := r.Register(ctypes.StructOf("zone",
		F("_watermark", ulong.ArrayOf(3)),
		F("lock", spinlock),
		F("name", charp),
		F("zone_start_pfn", ulong),
		F("managed_pages", atomicLong),
		F("spanned_pages", ulong),
		F("present_pages", ulong),
		F("free_area", freeArea.ArrayOf(MaxOrder))))
	pglistData := r.Register(ctypes.StructOf("pglist_data",
		F("node_zones", zone.ArrayOf(MaxNrZones)),
		F("nr_zones", cint),
		F("node_id", cint),
		F("node_start_pfn", ulong),
		F("node_present_pages", ulong)))
	_ = pglistData

	vmOperations.Complete(F("open", fptr), F("close", fptr), F("fault", fptr))
	r.Register(vmOperations)
	vmArea.Complete(
		F("vm_start", ulong),
		F("vm_end", ulong),
		F("vm_mm", mmStruct.PointerTo()),
		F("vm_page_prot", ulong),
		F("vm_flags", ulong),
		F("shared_rb", rbNode), // interval-tree node in address_space->i_mmap
		F("shared_rb_subtree_last", ulong),
		F("anon_vma_chain", listHead),
		F("anon_vma", anonVma.PointerTo()),
		F("vm_ops", vmOperations.PointerTo()),
		F("vm_pgoff", ulong),
		F("vm_file", file.PointerTo()),
		F("vm_private_data", voidp))
	r.Register(vmArea)

	mmStruct.Complete(
		F("mm_mt", mapleTree),
		F("mmap_base", ulong),
		F("task_size", ulong),
		F("pgd", ulong),
		F("mm_users", atomicT),
		F("mm_count", atomicT),
		F("map_count", cint),
		F("mmap_lock", rwsem),
		F("mmlist", listHead),
		F("total_vm", ulong),
		F("exec_vm", ulong),
		F("stack_vm", ulong),
		F("start_code", ulong), F("end_code", ulong),
		F("start_data", ulong), F("end_data", ulong),
		F("start_brk", ulong), F("brk", ulong),
		F("start_stack", ulong),
		F("arg_start", ulong), F("arg_end", ulong),
		F("env_start", ulong), F("env_end", ulong),
		F("owner", taskStruct.PointerTo()))
	r.Register(mmStruct)

	avc := r.Register(ctypes.StructOf("anon_vma_chain",
		F("vma", vmArea.PointerTo()),
		F("anon_vma", anonVma.PointerTo()),
		F("same_vma", listHead),
		F("rb", rbNode),
		F("rb_subtree_last", ulong)))
	_ = avc
	anonVma.Complete(
		F("root", anonVma.PointerTo()),
		F("rwsem", rwsem),
		F("refcount", atomicT),
		F("num_children", ulong),
		F("num_active_vmas", ulong),
		F("parent", anonVma.PointerTo()),
		F("rb_root", rbRootCached))
	r.Register(anonVma)

	swapInfo.Complete(
		F("lock", spinlock),
		F("flags", ulong),
		F("prio", short_),
		F("type", cint),
		F("max", ulong),
		F("swap_map", r.MustLookup("unsigned char").PointerTo()),
		F("lowest_bit", ulong),
		F("highest_bit", ulong),
		F("pages", ulong),
		F("inuse_pages", ulong),
		F("bdev", blockDevice.PointerTo()),
		F("swap_file", file.PointerTo()))
	r.Register(swapInfo)

	// ---- slab (SLUB) ---------------------------------------------------------
	kmemCacheCPU := r.Register(ctypes.StructOf("kmem_cache_cpu",
		F("freelist", voidp),
		F("tid", ulong),
		F("slab", slab.PointerTo()),
		F("partial", slab.PointerTo())))
	kmemCacheNode := r.Register(ctypes.StructOf("kmem_cache_node",
		F("list_lock", spinlock),
		F("nr_partial", ulong),
		F("partial", listHead)))
	slab.Complete(
		F("slab_list", listHead),
		F("slab_cache", kmemCache.PointerTo()),
		F("freelist", voidp),
		BF("inuse", u32, 16),
		BF("objects", u32, 15),
		BF("frozen", u32, 1))
	r.Register(slab)
	kmemCache.Complete(
		F("cpu_slab", kmemCacheCPU.PointerTo()),
		F("flags", ulong),
		F("min_partial", ulong),
		F("size", uint_),
		F("object_size", uint_),
		F("offset", uint_),
		F("oo", u32),
		F("name", charp),
		F("list", listHead),
		F("node", kmemCacheNode.PointerTo().ArrayOf(1)))
	r.Register(kmemCache)

	// ---- VFS ---------------------------------------------------------------
	fileOperations.Complete(
		F("owner", voidp), F("llseek", fptr), F("read", fptr), F("write", fptr),
		F("read_iter", fptr), F("write_iter", fptr), F("mmap", fptr), F("open", fptr))
	r.Register(fileOperations)

	addressSpace.Complete(
		F("host", inode.PointerTo()),
		F("i_pages", xarray),
		F("invalidate_lock", rwsem),
		F("gfp_mask", u32),
		F("i_mmap_writable", atomicT),
		F("i_mmap", rbRootCached),
		F("i_mmap_rwsem", rwsem),
		F("nrpages", ulong),
		F("writeback_index", ulong),
		F("a_ops", voidp),
		F("flags", ulong))
	r.Register(addressSpace)

	inode.Complete(
		F("i_mode", u16),
		F("i_opflags", u16),
		F("i_uid", kuidT),
		F("i_gid", kgidT),
		F("i_flags", uint_),
		F("i_sb", superBlock.PointerTo()),
		F("i_mapping", addressSpace.PointerTo()),
		F("i_ino", ulong),
		F("i_nlink", uint_),
		F("i_rdev", devT),
		F("i_size", loffT),
		F("i_blocks", u64),
		F("i_state", ulong),
		F("i_sb_list", listHead),
		F("i_dentry", hlistHead),
		F("i_count", atomicT),
		F("i_data", addressSpace),
		F("i_pipe", pipeInode.PointerTo()))
	r.Register(inode)

	dentry.Complete(
		F("d_flags", uint_),
		F("d_seq", seqcount),
		F("d_hash", hlistNode),
		F("d_parent", dentry.PointerTo()),
		F("d_name", qstr),
		F("d_inode", inode.PointerTo()),
		F("d_iname", charT.ArrayOf(32)),
		F("d_lockref_count", cint),
		F("d_sb", superBlock.PointerTo()),
		F("d_child", listHead),
		F("d_subdirs", listHead))
	r.Register(dentry)

	vfsmount.Complete(
		F("mnt_root", dentry.PointerTo()),
		F("mnt_sb", superBlock.PointerTo()),
		F("mnt_flags", cint))
	r.Register(vfsmount)

	path := r.Register(ctypes.StructOf("path",
		F("mnt", vfsmount.PointerTo()),
		F("dentry", dentry.PointerTo())))

	file.Complete(
		F("f_u_llist", listHead), // union fu: llist/rcuhead, modeled as list
		F("f_lock", spinlock),
		F("f_mode", uint_),
		F("f_count", atomicLong),
		F("f_pos_lock", mutexT),
		F("f_pos", loffT),
		F("f_flags", uint_),
		F("f_path", path),
		F("f_inode", inode.PointerTo()),
		F("f_op", fileOperations.PointerTo()),
		F("f_mapping", addressSpace.PointerTo()),
		F("private_data", voidp))
	r.Register(file)

	fdtable := r.Register(ctypes.StructOf("fdtable",
		F("max_fds", uint_),
		F("fd", file.PointerTo().PointerTo()),
		F("close_on_exec", ulong.PointerTo()),
		F("open_fds", ulong.PointerTo()),
		F("full_fds_bits", ulong.PointerTo()),
		F("rcu", rcuHead)))
	filesStruct.Complete(
		F("count", atomicT),
		F("fdt", fdtable.PointerTo()),
		F("fdtab", fdtable),
		F("file_lock", spinlock),
		F("next_fd", uint_),
		F("close_on_exec_init", ulong.ArrayOf(1)),
		F("open_fds_init", ulong.ArrayOf(1)),
		F("fd_array", file.PointerTo().ArrayOf(NFDBits)))
	r.Register(filesStruct)

	fsType.Complete(
		F("name", charp),
		F("fs_flags", cint),
		F("init_fs_context", fptr),
		F("mount", fptr),
		F("kill_sb", fptr),
		F("next", fsType.PointerTo()),
		F("fs_supers", hlistHead))
	r.Register(fsType)

	superBlock.Complete(
		F("s_list", listHead),
		F("s_dev", devT),
		F("s_blocksize_bits", u8),
		F("s_blocksize", ulong),
		F("s_maxbytes", loffT),
		F("s_type", fsType.PointerTo()),
		F("s_flags", ulong),
		F("s_magic", ulong),
		F("s_root", dentry.PointerTo()),
		F("s_count", cint),
		F("s_active", atomicT),
		F("s_bdev", blockDevice.PointerTo()),
		F("s_id", charT.ArrayOf(32)),
		F("s_inodes", listHead))
	r.Register(superBlock)

	// ---- block layer -----------------------------------------------------------
	blockDevice.Complete(
		F("bd_start_sect", sectorT),
		F("bd_nr_sectors", sectorT),
		F("bd_dev", devT),
		F("bd_inode", inode.PointerTo()),
		F("bd_super", superBlock.PointerTo()),
		F("bd_partno", u8),
		F("bd_openers", atomicT),
		F("bd_holder", voidp),
		F("bd_disk", gendisk.PointerTo()))
	r.Register(blockDevice)
	gendisk.Complete(
		F("major", cint),
		F("first_minor", cint),
		F("minors", cint),
		F("disk_name", charT.ArrayOf(32)),
		F("part0", blockDevice.PointerTo()),
		F("state", ulong))
	r.Register(gendisk)

	// ---- kobject / device model -------------------------------------------------
	kobject.Complete(
		F("name", charp),
		F("entry", listHead),
		F("parent", kobject.PointerTo()),
		F("kset", kset.PointerTo()),
		F("ktype", kobjType.PointerTo()),
		F("kref", kref),
		BF("state_initialized", u32, 1),
		BF("state_in_sysfs", u32, 1),
		BF("state_add_uevent_sent", u32, 1),
		BF("state_remove_uevent_sent", u32, 1),
		BF("uevent_suppress", u32, 1))
	r.Register(kobject)
	kset.Complete(
		F("list", listHead),
		F("list_lock", spinlock),
		F("kobj", kobject))
	r.Register(kset)
	kobjType.Complete(
		F("release", fptr),
		F("sysfs_ops", voidp))
	r.Register(kobjType)
	busType.Complete(
		F("name", charp),
		F("dev_name", charp),
		F("match", fptr),
		F("probe", fptr))
	r.Register(busType)
	deviceDriver.Complete(
		F("name", charp),
		F("bus", busType.PointerTo()),
		F("probe", fptr),
		F("remove", fptr))
	r.Register(deviceDriver)
	device.Complete(
		F("kobj", kobject),
		F("parent", device.PointerTo()),
		F("init_name", charp),
		F("bus", busType.PointerTo()),
		F("driver", deviceDriver.PointerTo()),
		F("devt", devT))
	r.Register(device)

	// ---- IRQ ----------------------------------------------------------------
	irqChip.Complete(
		F("name", charp),
		F("irq_startup", fptr),
		F("irq_shutdown", fptr),
		F("irq_enable", fptr),
		F("irq_disable", fptr))
	r.Register(irqChip)
	irqData := r.Register(ctypes.StructOf("irq_data",
		F("mask", u32),
		F("irq", uint_),
		F("hwirq", ulong),
		F("chip", irqChip.PointerTo())))
	irqaction.Complete(
		F("handler", fptr),
		F("dev_id", voidp),
		F("next", irqaction.PointerTo()),
		F("irq", uint_),
		F("flags", uint_),
		F("thread_fn", fptr),
		F("name", charp))
	r.Register(irqaction)
	r.Register(ctypes.StructOf("irq_desc",
		F("irq_data", irqData),
		F("handle_irq", fptr),
		F("action", irqaction.PointerTo()),
		F("depth", uint_),
		F("irq_count", uint_),
		F("lock", spinlock),
		F("name", charp)))

	// ---- timers ----------------------------------------------------------------
	timerList.Complete(
		F("entry", hlistNode),
		F("expires", ulong),
		F("function", fptr),
		F("flags", u32))
	r.Register(timerList)
	const timerWheelSize = 64 // scaled-down LVL_SIZE*LVL_DEPTH
	r.Register(ctypes.StructOf("timer_base",
		F("lock", spinlock),
		F("running_timer", timerList.PointerTo()),
		F("clk", ulong),
		F("next_expiry", ulong),
		F("cpu", uint_),
		F("vectors", hlistHead.ArrayOf(timerWheelSize))))

	// ---- workqueues ---------------------------------------------------------------
	workStruct := r.Register(ctypes.StructOf("work_struct",
		F("data", atomicLong),
		F("entry", listHead),
		F("func", fptr)))
	r.Register(ctypes.StructOf("delayed_work",
		F("work", workStruct),
		F("timer", timerList),
		F("wq", workqueueStruct.PointerTo()),
		F("cpu", cint)))
	workerPool.Complete(
		F("lock", spinlock),
		F("cpu", cint),
		F("node", cint),
		F("id", cint),
		F("flags", uint_),
		F("worklist", listHead),
		F("nr_workers", cint),
		F("nr_idle", cint),
		F("idle_list", listHead),
		F("workers", listHead))
	r.Register(workerPool)
	poolWorkqueue := r.Register(ctypes.StructOf("pool_workqueue",
		F("pool", workerPool.PointerTo()),
		F("wq", workqueueStruct.PointerTo()),
		F("refcnt", cint),
		F("nr_active", cint),
		F("max_active", cint),
		F("inactive_works", listHead),
		F("pwqs_node", listHead),
		F("mayday_node", listHead)))
	_ = poolWorkqueue
	workqueueStruct.Complete(
		F("pwqs", listHead),
		F("list", listHead),
		F("flags", uint_),
		F("name", charT.ArrayOf(24)))
	r.Register(workqueueStruct)
	worker := r.Register(ctypes.StructOf("worker",
		F("entry", listHead),
		F("current_work", workStruct.PointerTo()),
		F("current_func", fptr),
		F("pool", workerPool.PointerTo()),
		F("node", listHead),
		F("id", cint),
		F("desc", charT.ArrayOf(24))))
	_ = worker
	// Heterogeneous work items for Fig 6: each embeds work_struct.
	r.Register(ctypes.StructOf("vmstat_work_item",
		F("dwork", r.MustLookup("delayed_work")),
		F("cpu", cint),
		F("stat_threshold", cint)))
	r.Register(ctypes.StructOf("lru_drain_work_item",
		F("work", workStruct),
		F("cpu", cint),
		F("nr_pages", ulong)))
	r.Register(ctypes.StructOf("mmu_gather_work_item",
		F("work", workStruct),
		F("mm", mmStruct.PointerTo()),
		F("freed_tables", cint)))

	// ---- RCU -----------------------------------------------------------------
	rcuSegcblist := r.Register(ctypes.StructOf("rcu_segcblist",
		F("head", rcuHead.PointerTo()),
		F("tails", rcuHead.PointerTo().PointerTo().ArrayOf(4)),
		F("gp_seq", ulong.ArrayOf(4)),
		F("len", atomicLong)))
	r.Register(ctypes.StructOf("rcu_data",
		F("gp_seq", ulong),
		F("gp_seq_needed", ulong),
		F("cblist", rcuSegcblist),
		F("cpu", cint)))
	r.Register(rcuHead)

	// ---- pipes ----------------------------------------------------------------
	pipeBufOperations.Complete(
		F("confirm", fptr),
		F("release", fptr),
		F("try_steal", fptr),
		F("get", fptr))
	r.Register(pipeBufOperations)
	pipeBuffer := r.Register(ctypes.StructOf("pipe_buffer",
		F("page", page.PointerTo()),
		F("offset", uint_),
		F("len", uint_),
		F("ops", pipeBufOperations.PointerTo()),
		F("flags", uint_),
		F("private", ulong)))
	pipeInode.Complete(
		F("mutex", mutexT),
		F("rd_wait", waitQueueHead),
		F("wr_wait", waitQueueHead),
		F("head", uint_),
		F("tail", uint_),
		F("max_usage", uint_),
		F("ring_size", uint_),
		F("readers", uint_),
		F("writers", uint_),
		F("r_counter", uint_),
		F("w_counter", uint_),
		F("bufs", pipeBuffer.PointerTo()))
	r.Register(pipeInode)

	// ---- sockets -----------------------------------------------------------------
	protoOps.Complete(
		F("family", cint),
		F("bind", fptr),
		F("connect", fptr),
		F("sendmsg", fptr),
		F("recvmsg", fptr))
	r.Register(protoOps)
	skBuffHead := r.Register(ctypes.StructOf("sk_buff_head",
		F("next", skBuff.PointerTo()),
		F("prev", skBuff.PointerTo()),
		F("qlen", u32),
		F("lock", spinlock)))
	skBuff.Complete(
		F("next", skBuff.PointerTo()),
		F("prev", skBuff.PointerTo()),
		F("sk", sock.PointerTo()),
		F("len", uint_),
		F("data_len", uint_),
		F("protocol", u16),
		F("head", voidp),
		F("data", voidp),
		F("tail", u32),
		F("end", u32))
	r.Register(skBuff)
	sockCommon := r.Register(ctypes.StructOf("sock_common",
		F("skc_daddr", u32),
		F("skc_rcv_saddr", u32),
		F("skc_dport", u16),
		F("skc_num", u16),
		F("skc_family", u16),
		F("skc_state", u8),
		F("skc_reuse", u8)))
	sock.Complete(
		F("__sk_common", sockCommon),
		F("sk_lock_owned", cint),
		F("sk_rcvbuf", atomicT),
		F("sk_sndbuf", cint),
		F("sk_receive_queue", skBuffHead),
		F("sk_write_queue", skBuffHead),
		F("sk_wmem_alloc", refcount),
		F("sk_rmem_alloc", atomicT),
		F("sk_socket", socket.PointerTo()))
	r.Register(sock)
	socket.Complete(
		F("state", socketState),
		F("type", short_),
		F("flags", ulong),
		F("file", file.PointerTo()),
		F("sk", sock.PointerTo()),
		F("ops", protoOps.PointerTo()))
	r.Register(socket)
	r.Register(ctypes.StructOf("socket_alloc",
		F("socket", socket),
		F("vfs_inode", inode)))

	// ---- System V IPC -----------------------------------------------------------
	kernIpcPerm := r.Register(ctypes.StructOf("kern_ipc_perm",
		F("lock", spinlock),
		F("deleted", ctypes.Bool8),
		F("id", cint),
		F("key", cint),
		F("uid", kuidT),
		F("gid", kgidT),
		F("mode", u16),
		F("seq", ulong)))
	semT := r.Register(ctypes.StructOf("sem",
		F("semval", cint),
		F("sempid", pidT),
		F("lock", spinlock),
		F("pending_alter", listHead),
		F("pending_const", listHead),
		F("sem_otime", r.MustLookup("time64_t"))))
	r.Register(ctypes.StructOf("sem_array",
		F("sem_perm", kernIpcPerm),
		F("sem_ctime", r.MustLookup("time64_t")),
		F("pending_alter", listHead),
		F("pending_const", listHead),
		F("list_id", listHead),
		F("sem_nsems", cint),
		F("complex_count", cint),
		F("sems", semT.ArrayOf(0)))) // flexible array member
	r.Register(ctypes.StructOf("sem_queue",
		F("list", listHead),
		F("sleeper", taskStruct.PointerTo()),
		F("pid", pidT),
		F("status", cint),
		F("nsops", cint),
		F("alter", ctypes.Bool8)))
	msgMsg.Complete(
		F("m_list", listHead),
		F("m_type", long_),
		F("m_ts", r.MustLookup("size_t")),
		F("next", voidp),
		F("security", voidp))
	r.Register(msgMsg)
	r.Register(ctypes.StructOf("msg_queue",
		F("q_perm", kernIpcPerm),
		F("q_stime", r.MustLookup("time64_t")),
		F("q_rtime", r.MustLookup("time64_t")),
		F("q_ctime", r.MustLookup("time64_t")),
		F("q_cbytes", ulong),
		F("q_qnum", ulong),
		F("q_qbytes", ulong),
		F("q_lspid", pidT),
		F("q_lrpid", pidT),
		F("q_messages", listHead),
		F("q_receivers", listHead),
		F("q_senders", listHead)))
	ipcIds := r.Register(ctypes.StructOf("ipc_ids",
		F("in_use", cint),
		F("seq", u16),
		F("rwsem", rwsem),
		F("ipcs_idr", idr),
		F("max_idx", cint)))
	r.Register(ctypes.StructOf("ipc_namespace",
		F("ids", ipcIds.ArrayOf(3))))

	// ---- fs_struct & ns ------------------------------------------------------------
	r.Register(ctypes.StructOf("fs_struct",
		F("users", cint),
		F("lock", spinlock),
		F("umask", cint),
		F("root", path),
		F("pwd", path)))

	// ---- the task_struct (last: embeds sched_entity etc.) ---------------------------
	taskStruct.Complete(
		F("thread_info_flags", ulong),
		F("__state", uint_),
		F("stack", voidp),
		F("usage", refcount),
		F("flags", uint_),
		F("on_cpu", cint),
		F("cpu", uint_),
		F("on_rq", cint),
		F("prio", cint),
		F("static_prio", cint),
		F("normal_prio", cint),
		F("se", schedEntity),
		F("policy", uint_),
		F("mm", mmStruct.PointerTo()),
		F("active_mm", mmStruct.PointerTo()),
		F("exit_state", cint),
		F("exit_code", cint),
		F("exit_signal", cint),
		F("pid", pidT),
		F("tgid", pidT),
		F("real_parent", taskStruct.PointerTo()),
		F("parent", taskStruct.PointerTo()),
		F("children", listHead),
		F("sibling", listHead),
		F("group_leader", taskStruct.PointerTo()),
		F("thread_pid", pidStruct.PointerTo()),
		F("pid_links", hlistNode.ArrayOf(4)),
		F("thread_group", listHead),
		F("thread_node", listHead),
		F("tasks", listHead),
		F("utime", u64),
		F("stime", u64),
		F("start_time", u64),
		F("comm", charT.ArrayOf(16)),
		F("fs", r.MustLookup("fs_struct").PointerTo()),
		F("files", filesStruct.PointerTo()),
		F("signal", signalStruct.PointerTo()),
		F("sighand", sighandStruct.PointerTo()),
		F("blocked", sigsetT),
		F("pending", sigpending))
	r.Register(taskStruct)

	_ = s64
	_ = atomic64
	_ = mapleTree
	return r
}
