package kernelsim

import "fmt"

// buildWorkqueues constructs the mm_percpu_wq heterogeneous work list of
// the paper's Fig 6: worker pools whose worklists chain work_structs
// embedded (container_of-style) in differently-typed owning objects, with
// the node type recoverable only through the func pointer.
func (k *Kernel) buildWorkqueues() {
	wq := k.Alloc("workqueue_struct")
	wq.SetStr("name", "mm_percpu_wq")
	k.InitList(wq.FieldAddr("pwqs"))
	k.InitList(wq.FieldAddr("list"))
	k.MMPercpuWQ = wq
	k.Symbol("mm_percpu_wq", wq)

	wqList := k.AllocRaw(16, 8)
	k.InitList(wqList)
	k.SymbolAddr("workqueues", wqList, k.typeOf("list_head"))
	k.ListAddTail(wqList, wq.FieldAddr("list"))

	pools := k.AllocArray("worker_pool", NrCPUs)
	k.SymbolAddr("cpu_worker_pools", pools.Addr, k.typeOf("worker_pool").ArrayOf(NrCPUs))

	for cpu := uint64(0); cpu < NrCPUs; cpu++ {
		pool := pools.Index(cpu)
		pool.Set("cpu", cpu)
		pool.Set("id", cpu*2)
		k.InitList(pool.FieldAddr("worklist"))
		k.InitList(pool.FieldAddr("idle_list"))
		k.InitList(pool.FieldAddr("workers"))

		pwq := k.Alloc("pool_workqueue")
		pwq.SetObj("pool", pool)
		pwq.SetObj("wq", wq)
		pwq.Set("refcnt", 1)
		pwq.Set("max_active", 256)
		k.InitList(pwq.FieldAddr("inactive_works"))
		k.InitList(pwq.FieldAddr("pwqs_node"))
		k.ListAddTail(wq.FieldAddr("pwqs"), pwq.FieldAddr("pwqs_node"))

		// Workers attached to the pool.
		for w := 0; w < 2; w++ {
			wk := k.Alloc("worker")
			wk.SetObj("pool", pool)
			wk.Set("id", uint64(w))
			wk.SetStr("desc", fmt.Sprintf("kworker/%d:%d", cpu, w))
			k.InitList(wk.FieldAddr("entry"))
			k.InitList(wk.FieldAddr("node"))
			k.ListAddTail(pool.FieldAddr("workers"), wk.FieldAddr("node"))
		}

		// Heterogeneous pending work: vmstat (delayed_work in a wrapper),
		// lru drain, and an mmu-gather flush, all on one list.
		vw := k.Alloc("vmstat_work_item")
		vw.Set("cpu", cpu)
		vw.Set("stat_threshold", 125)
		vw.Set("dwork.work.func", k.Func("vmstat_update"))
		vw.Set("dwork.cpu", cpu)
		k.ListAddTail(pool.FieldAddr("worklist"), vw.FieldAddr("dwork.work.entry"))

		lw := k.Alloc("lru_drain_work_item")
		lw.Set("cpu", cpu)
		lw.Set("nr_pages", 32+cpu*7)
		lw.Set("work.func", k.Func("lru_add_drain_per_cpu"))
		k.ListAddTail(pool.FieldAddr("worklist"), lw.FieldAddr("work.entry"))

		if cpu == 0 {
			mg := k.Alloc("mmu_gather_work_item")
			if t, ok := k.ByPID[100]; ok {
				mg.Set("mm", t.Get("mm"))
			}
			mg.Set("freed_tables", 1)
			mg.Set("work.func", k.Func("tlb_remove_table_smp_sync"))
			k.ListAddTail(pool.FieldAddr("worklist"), mg.FieldAddr("work.entry"))
		}
		pool.Set("nr_workers", 2)
	}
}

// buildRCU allocates per-CPU rcu_data with empty callback lists; the
// StackRot builder later enqueues the dying maple node's rcu_head.
func (k *Kernel) buildRCU() {
	rd := k.AllocArray("rcu_data", NrCPUs)
	k.RCUData = rd
	k.SymbolAddr("rcu_data", rd.Addr, k.typeOf("rcu_data").ArrayOf(NrCPUs))
	for cpu := uint64(0); cpu < NrCPUs; cpu++ {
		d := rd.Index(cpu)
		d.Set("cpu", cpu)
		d.Set("gp_seq", 0x100+cpu*8)
		d.Set("gp_seq_needed", 0x108+cpu*8)
	}
}

// rcuEnqueue appends an rcu_head with the given callback to cpu's cblist.
// Enqueuing a head that is already on the list is a no-op (call_rcu on a
// live head would be a kernel bug; here it can happen when successive
// maple rebuilds retire overlapping node sets).
func (k *Kernel) rcuEnqueue(cpu uint64, rcuHeadAddr uint64, fn string) {
	d := k.RCUData.Index(cpu)
	fnAddr := k.Func(fn)
	head := d.Get("cblist.head")
	if head == 0 {
		k.Mem.WriteU64(rcuHeadAddr, 0)
		k.Mem.WriteU64(rcuHeadAddr+8, fnAddr)
		d.Set("cblist.head", rcuHeadAddr)
		d.Set("cblist.len", d.Get("cblist.len")+1)
		return
	}
	// Walk to the tail, bailing if the head is already queued.
	cur := head
	for i := 0; ; i++ {
		if cur == rcuHeadAddr {
			return // already on the list
		}
		next, _ := k.Mem.ReadU64(cur)
		if next == 0 || i > 1<<20 {
			break
		}
		cur = next
	}
	k.Mem.WriteU64(rcuHeadAddr, 0)
	k.Mem.WriteU64(rcuHeadAddr+8, fnAddr)
	k.Mem.WriteU64(cur, rcuHeadAddr)
	d.Set("cblist.len", d.Get("cblist.len")+1)
}

// buildSockets constructs live socket connections (Table 2 figure #21):
// socket_allocs (socket+inode via container_of), socks with skb queues,
// attached to workload fd tables.
func (k *Kernel) buildSockets(opts Options) {
	mkSkb := func(sk Obj, length uint64) Obj {
		skb := k.Alloc("sk_buff")
		skb.SetObj("sk", sk)
		skb.Set("len", length)
		_, data := k.AllocPage()
		skb.Set("head", data)
		skb.Set("data", data+64)
		skb.Set("tail", 64+length)
		skb.Set("end", pageSize)
		return skb
	}
	enqueue := func(qAddr uint64, skb Obj) {
		// sk_buff_head acts as a list head over sk_buff next/prev at +0/+8.
		prev, _ := k.Mem.ReadU64(qAddr + 8)
		if prev == 0 { // empty: point head at itself first
			k.Mem.WriteU64(qAddr, qAddr)
			k.Mem.WriteU64(qAddr+8, qAddr)
			prev = qAddr
		}
		k.Mem.WriteU64(skb.Addr, qAddr)
		k.Mem.WriteU64(skb.Addr+8, prev)
		k.Mem.WriteU64(prev, skb.Addr)
		k.Mem.WriteU64(qAddr+8, skb.Addr)
		qlen, _ := k.Mem.ReadU32(qAddr + 16)
		k.Mem.WriteU32(qAddr+16, qlen+1)
	}

	nconns := opts.Processes
	// all_socks / nr_socks let figure programs enumerate live sockets the
	// way a GDB script would walk a global table.
	sockT := k.typeOf("socket")
	arr := k.AllocRaw(8*uint64(nconns), 8)
	k.SymbolAddr("all_socks", arr, sockT.PointerTo().ArrayOf(uint64(nconns)))
	nrCell := k.AllocRaw(4, 4)
	k.Mem.WriteU32(nrCell, uint32(nconns))
	k.SymbolAddr("nr_socks", nrCell, k.typeOf("int"))
	for i := 0; i < nconns; i++ {
		sa := k.Alloc("socket_alloc")
		sock := sa.Field("socket")
		ino := sa.Field("vfs_inode")
		// Initialize the embedded inode like MkInode does.
		ino.Set("i_mode", SIFSOCK|0o777)
		ino.Set("i_ino", 7000+uint64(i))
		ino.SetObj("i_sb", k.vfs().sbSockfs)
		ino.Field("i_data").Set("host", ino.Addr)
		ino.Set("i_mapping", ino.FieldAddr("i_data"))
		k.InitList(ino.FieldAddr("i_sb_list"))

		sk := k.Alloc("sock")
		sk.Set("__sk_common.skc_family", 2) // AF_INET
		sk.Set("__sk_common.skc_daddr", 0x0100007f+uint64(i)<<24)
		sk.Set("__sk_common.skc_rcv_saddr", 0x0100007f)
		sk.Set("__sk_common.skc_dport", uint64(0x5000+i))
		sk.Set("__sk_common.skc_num", uint64(40000+i))
		sk.Set("__sk_common.skc_state", 1) // TCP_ESTABLISHED
		sk.Set("sk_rcvbuf", 212992)
		sk.Set("sk_sndbuf", 212992)
		sk.SetObj("sk_socket", sock)

		sock.Set("state", 3) // SS_CONNECTED
		sock.Set("type", 1)  // SOCK_STREAM
		sock.SetObj("sk", sk)
		protoOps := k.Alloc("proto_ops")
		protoOps.Set("family", 2)
		protoOps.Set("sendmsg", k.Func("inet_sendmsg"))
		protoOps.Set("recvmsg", k.Func("inet_recvmsg"))
		sock.SetObj("ops", protoOps)

		// Buffers: even sockets have queued data, odd ones are idle (the
		// Table 3 socket objective filters on this).
		if i%2 == 0 {
			for q := 0; q < 2+i%3; q++ {
				enqueue(sk.FieldAddr("sk_receive_queue"), mkSkb(sk, uint64(512+128*q)))
			}
			enqueue(sk.FieldAddr("sk_write_queue"), mkSkb(sk, 1460))
			sk.Set("sk_rmem_alloc", 4096)
			sk.Set("sk_wmem_alloc.refs", 2048)
		}

		d := k.MkDentry(fmt.Sprintf("socket:[%d]", 7000+i), Obj{}, ino)
		f := k.MkFile(d, 2)
		f.Set("private_data", sock.Addr)
		sock.SetObj("file", f)

		// Install into the owning workload process's fd table.
		if t, ok := k.ByPID[100+i*opts.ThreadsPerProc]; ok {
			files := k.At("files_struct", t.Get("files"))
			fd := files.Get("next_fd")
			k.Mem.WriteU64(files.FieldAddr("fd_array")+fd*8, f.Addr)
			open, _ := k.Mem.ReadU64(files.FieldAddr("open_fds_init"))
			k.Mem.WriteU64(files.FieldAddr("open_fds_init"), open|1<<fd)
			files.Set("next_fd", fd+1)
		}
		k.Mem.WriteU64(arr+uint64(i)*8, sock.Addr)
		if i == 0 {
			k.Symbol("sample_socket", sock)
		}
	}
}

// buildDirtyPipe stages the CVE-2022-0847 state (paper Fig 7): a pipe whose
// ring references a page-cache page of test.txt, with the stale
// PIPE_BUF_FLAG_CAN_MERGE making the shared page writable through the pipe.
func (k *Kernel) buildDirtyPipe() {
	pipeIno := k.MkInode(k.vfs().sbPipefs, SIFIFO|0o600, 0)
	pi := k.Alloc("pipe_inode_info")
	pipeIno.SetObj("i_pipe", pi)
	pi.Set("ring_size", PipeRingSize)
	pi.Set("max_usage", PipeRingSize)
	pi.Set("readers", 1)
	pi.Set("writers", 1)
	bufs := k.AllocArray("pipe_buffer", PipeRingSize)
	pi.Set("bufs", bufs.Addr)

	anonOps := k.Alloc("pipe_buf_operations")
	anonOps.Set("release", k.Func("anon_pipe_buf_release"))
	anonOps.Set("try_steal", k.Func("anon_pipe_buf_try_steal"))
	k.Symbol("anon_pipe_buf_ops", anonOps)
	pageCacheOps := k.Alloc("pipe_buf_operations")
	pageCacheOps.Set("release", k.Func("page_cache_pipe_buf_release"))
	pageCacheOps.Set("confirm", k.Func("page_cache_pipe_buf_confirm"))
	k.Symbol("page_cache_pipe_buf_ops", pageCacheOps)

	// Slot 0: a normal anonymous pipe page.
	anonPg, _ := k.AllocPage()
	anonPg.Set("_refcount", 1)
	b0 := bufs.Index(0)
	b0.SetObj("page", anonPg)
	b0.Set("len", 512)
	b0.SetObj("ops", anonOps)
	b0.Set("flags", PipeBufFlagCanMerge) // legitimate on anon buffers

	// Slot 1: the bug — a splice()d page-cache page of test.txt carrying
	// CAN_MERGE because copy_page_to_iter_pipe() forgot to clear flags.
	mapping := k.At("address_space", k.DirtyFile.Get("f_mapping"))
	ino := k.At("inode", mapping.Get("host"))
	_ = ino
	// First page of test.txt's cache:
	xaHead := mapping.Field("i_pages").Get("xa_head")
	var pg0 uint64
	if XaIsNode(xaHead) {
		node := k.At("xa_node", XaToNode(xaHead))
		pg0, _ = k.Mem.ReadU64(node.FieldAddr("slots"))
	} else {
		pg0 = xaHead
	}
	shared := k.At("page", pg0)
	shared.Set("_refcount", shared.Get("_refcount")+1)
	b1 := bufs.Index(1)
	b1.SetObj("page", shared)
	b1.Set("offset", 0)
	b1.Set("len", 1024)
	b1.SetObj("ops", pageCacheOps)
	b1.Set("flags", PipeBufFlagCanMerge) // THE BUG: must not be set here
	pi.Set("head", 2)
	pi.Set("tail", 0)

	k.SharedPage = shared
	k.DirtyPipe = pi
	k.Symbol("dirty_pipe", pi)

	// Give the pipe fds to workload process 107-ish: the paper's Fig 7
	// shows pid 107 owning both test.txt and the pipe.
	d := k.MkDentry("pipe:[9001]", Obj{}, pipeIno)
	rf := k.MkFile(d, 0)
	wf := k.MkFile(d, 1)
	for _, t := range k.Tasks {
		if t.Get("pid") == 107 {
			files := k.At("files_struct", t.Get("files"))
			fd := files.Get("next_fd")
			k.Mem.WriteU64(files.FieldAddr("fd_array")+fd*8, rf.Addr)
			k.Mem.WriteU64(files.FieldAddr("fd_array")+(fd+1)*8, wf.Addr)
			// Also make sure test.txt itself is in this fd table (Fig 7
			// plots both reachable from one process).
			k.Mem.WriteU64(files.FieldAddr("fd_array")+(fd+2)*8, k.DirtyFile.Addr)
			open, _ := k.Mem.ReadU64(files.FieldAddr("open_fds_init"))
			k.Mem.WriteU64(files.FieldAddr("open_fds_init"), open|7<<fd)
			files.Set("next_fd", fd+3)
		}
	}
}

// buildStackRot stages the CVE-2023-3269 state (paper §3.2/Fig 5): CPU 0
// has freed a maple node under mm_read_lock; the node sits on the RCU
// waiting list (ma_free_rcu -> call_rcu(&mt_free_rcu)) while CPU 1 still
// holds a pointer into it — the classic deferred-free UAF window.
func (k *Kernel) buildStackRot() {
	victim, ok := k.ByPID[100]
	if !ok {
		return
	}
	mm := k.At("mm_struct", victim.Get("mm"))
	k.StackRotMM = mm

	// Find a leaf node in the mm's maple tree and detach it the way
	// mas_store_prealloc does on stack expansion: replaced in the parent,
	// then queued for RCU free.
	root := mm.Field("mm_mt").Get("ma_root")
	if !XaIsNode(root) {
		return
	}
	node := k.At("maple_node", MtToNode(root))
	var leaf Obj
	if MtNodeType(root) == MapleLeaf64 {
		leaf = node
	} else {
		// first child
		child, _ := k.Mem.ReadU64(node.FieldAddr("ma64.slot"))
		if !XaIsNode(child) {
			return
		}
		leaf = k.At("maple_node", MtToNode(child))
	}
	// The VMA still reachable through the dead node: slot 0's first
	// non-NULL entry.
	for s := uint64(0); s < MapleR64Slots; s++ {
		p, _ := k.Mem.ReadU64(leaf.FieldAddr("mr64.slot") + s*8)
		if p != 0 && !XaIsNode(p) {
			k.StackRotVictim = k.At("vm_area_struct", p)
			break
		}
	}
	k.StackRotNode = leaf
	// mmap_lock is read-held by both CPUs (the paper's trace, lines 2-3).
	mm.Set("mmap_lock.count", 2) // two readers
	// Queue the node on CPU 0's RCU callback list with mt_free_rcu.
	k.rcuEnqueue(0, leaf.FieldAddr("rcu"), "mt_free_rcu")
	k.Symbol("stackrot_mm", mm)
	k.Symbol("stackrot_node", leaf)
}
