package kernelsim

// Maple tree construction. The layout mirrors Linux 6.1's lib/maple_tree.c
// mechanics as observed by a debugger:
//
//   - nodes are 256-byte-aligned maple_node unions;
//   - an encoded node pointer ("enode") carries the node type in bits 3..6
//     and the xarray "internal" tag 0b10 in bits 0..1;
//   - leaf (maple_leaf_64) slots hold object pointers directly, with
//     pivot[i] = last index covered by slot i; NULL slots encode gaps;
//   - internal nodes are maple_arange_64 (the mm tree tracks allocation
//     gaps), whose slots hold child enodes and whose gap array holds the
//     largest gap below each child.
//
// A tree with zero entries has ma_root == NULL; a tree with exactly one
// entry stores the object pointer directly in ma_root (untagged).

// MapleEntry is one interval to store: [First,Last] -> Ptr.
type MapleEntry struct {
	First, Last uint64
	Ptr         uint64
}

// MtEncode builds an enode from a node address and maple type.
func MtEncode(node uint64, mtype uint64) uint64 {
	return node | (mtype << mapleTypeShift) | xaInternalTag
}

// MtToNode decodes the node address of an enode.
func MtToNode(enode uint64) uint64 { return enode &^ uint64(mapleNodeAlign-1) }

// MtNodeType decodes the maple type of an enode.
func MtNodeType(enode uint64) uint64 { return (enode >> mapleTypeShift) & mapleTypeMask }

// XaIsNode reports whether an entry is an internal (node) entry rather than
// a plain object pointer. Mirrors xa_is_node(): internal tag plus a sanity
// floor so small internal constants aren't mistaken for nodes.
func XaIsNode(entry uint64) bool {
	return entry&3 == xaInternalTag && entry > 4096
}

// BuildMapleTree fills the maple_tree object mt with the given entries
// (sorted by First, non-overlapping) and returns the root enode (0 for an
// empty tree). Gaps between entries become NULL slots with their own
// pivots, as in the real tree.
func (k *Kernel) BuildMapleTree(mt Obj, entries []MapleEntry) uint64 {
	const mtFlagsAllocRange = 0x02
	mt.Set("ma_flags", mtFlagsAllocRange)
	if len(entries) == 0 {
		mt.Set("ma_root", 0)
		return 0
	}
	if len(entries) == 1 && entries[0].First == 0 {
		// Single-entry trees store the pointer directly in ma_root.
		mt.Set("ma_root", entries[0].Ptr)
		return entries[0].Ptr
	}

	// Expand entries into (pivot, ptr) runs including gap runs, then chunk
	// into leaves.
	type run struct {
		last uint64 // pivot: last index covered
		ptr  uint64 // 0 for a gap
	}
	var runs []run
	cursor := uint64(0)
	for _, e := range entries {
		if e.First > cursor {
			runs = append(runs, run{last: e.First - 1, ptr: 0})
		}
		runs = append(runs, run{last: e.Last, ptr: e.Ptr})
		cursor = e.Last + 1
	}
	// Trailing gap to the end of the address space.
	runs = append(runs, run{last: ^uint64(0), ptr: 0})

	// Leaves: up to MapleR64Slots runs per node (keep 2 spare like a tree
	// that has seen splits).
	perLeaf := MapleR64Slots - 2
	type child struct {
		enode uint64
		last  uint64 // max index covered by this subtree
		gap   uint64 // largest gap in this subtree
	}
	var children []child
	for i := 0; i < len(runs); i += perLeaf {
		j := i + perLeaf
		if j > len(runs) {
			j = len(runs)
		}
		leaf := k.AllocAligned("maple_node", mapleNodeAlign)
		maxGap := uint64(0)
		prevLast := uint64(0)
		if i > 0 {
			prevLast = runs[i-1].last + 1
		}
		for s, rn := range runs[i:j] {
			si := uint64(s)
			if si < MapleR64Slots-1 {
				k.Mem.WriteU64(leaf.Field("mr64.pivot").Addr+si*8, rn.last)
			}
			k.Mem.WriteU64(leaf.Field("mr64.slot").Addr+si*8, rn.ptr)
			if rn.ptr == 0 {
				g := rn.last - prevLast + 1
				if g > maxGap {
					maxGap = g
				}
			}
			prevLast = rn.last + 1
		}
		children = append(children, child{
			enode: MtEncode(leaf.Addr, MapleLeaf64),
			last:  runs[j-1].last,
			gap:   maxGap,
		})
	}

	// Internal levels: maple_arange_64 fan-in of up to MapleA64Slots.
	parentOf := make(map[uint64]uint64) // node addr -> parent enode (set later)
	for len(children) > 1 {
		var next []child
		for i := 0; i < len(children); i += MapleA64Slots {
			j := i + MapleA64Slots
			if j > len(children) {
				j = len(children)
			}
			node := k.AllocAligned("maple_node", mapleNodeAlign)
			maxGap := uint64(0)
			for s, c := range children[i:j] {
				si := uint64(s)
				if si < MapleA64Slots-1 {
					k.Mem.WriteU64(node.Field("ma64.pivot").Addr+si*8, c.last)
				}
				k.Mem.WriteU64(node.Field("ma64.slot").Addr+si*8, c.enode)
				k.Mem.WriteU64(node.Field("ma64.gap").Addr+si*8, c.gap)
				parentOf[MtToNode(c.enode)] = MtEncode(node.Addr, MapleArange64)
				if c.gap > maxGap {
					maxGap = c.gap
				}
			}
			next = append(next, child{
				enode: MtEncode(node.Addr, MapleArange64),
				last:  children[j-1].last,
				gap:   maxGap,
			})
		}
		children = next
	}
	root := children[0].enode
	// Wire parent pointers (the root's parent points back at the tree with
	// a tag, like ma_parent; we store the maple_tree address | 1).
	k.Mem.WriteU64(MtToNode(root), mt.Addr|1)
	for nodeAddr, parent := range parentOf {
		k.Mem.WriteU64(nodeAddr, parent)
	}
	mt.Set("ma_root", root)
	return root
}
