package vclstdlib

// Memory-management figures: ULK Fig 8-2, 8-4, 9-2, 15-1, 16-2, 17-1, 17-6.

// Fig8_2 plots the buddy system: node -> zones -> per-order free areas ->
// free pages (ULK Fig 8-2).
const Fig8_2 = `
define PageBox as Box<page> [
    Text pfn: ${page_to_pfn(@this)}
    Text order: ${@this->buddy_order}
    Text<flag:page_flags> flags: ${@this->buddy_flags}
]

define FreeArea as Box<free_area> [
    Text nr_free
    Container unmovable: List(${@this->free_list[0]}).forEach |n| {
        yield PageBox<page.buddy_list>(@n)
    }
    Container movable: List(${@this->free_list[1]}).forEach |n| {
        yield PageBox<page.buddy_list>(@n)
    }
    Container reclaimable: List(${@this->free_list[2]}).forEach |n| {
        yield PageBox<page.buddy_list>(@n)
    }
]

define Zone as Box<zone> [
    Text name
    Text zone_start_pfn, present_pages
    Text managed: ${@this->managed_pages}
    Container free_area: Array(${@this->free_area}).forEach |fa| {
        yield FreeArea(@fa)
    }
]

define NodeData as Box<pglist_data> [
    Text node_id, nr_zones, node_start_pfn
    Container node_zones: Array(${@this->node_zones}).forEach |z| {
        yield Zone(@z)
    }
]

root = NodeData(${&node_data0})
plot @root
`

// Fig8_4 plots the SLUB allocator: cache list -> per-CPU active slab and
// per-node partial slabs (ULK Fig 8-4, structure replaced since 2.6's SLAB).
const Fig8_4 = `
define Slab as Box<slab> [
    Text inuse, objects, frozen
    Text<u64:x> freelist
]

define CpuSlab as Box<kmem_cache_cpu> [
    Text<u64:x> freelist
    Text tid
    Link slab -> Slab(${@this->slab})
    Link partial -> Slab(${@this->partial})
]

define CacheNode as Box<kmem_cache_node> [
    Text nr_partial
    Container partial: List(${@this->partial}).forEach |n| {
        yield Slab<slab.slab_list>(@n)
    }
]

define KmemCache as Box<kmem_cache> [
    Text name
    Text size, object_size, offset
    Text objs_per_slab: ${@this->oo}
    Link cpu_slab -> CpuSlab(${@this->cpu_slab})
    Link node -> CacheNode(${@this->node[0]})
]

root = Box [
    Container slab_caches: List(${slab_caches}).forEach |n| {
        yield KmemCache<kmem_cache.list>(@n)
    }
]
plot @root
`

// Fig9_2 plots a process address space: mm_struct -> maple tree (leaf and
// allocation-range nodes unwrapped from their tagged pointers) -> VMAs with
// backing files. This is the paper's Fig 3 program adapted to ULK Fig 9-2;
// the :show_addrspace view distills the tree into a pmap-like sorted list
// (paper §3.2).
const Fig9_2 = `
define FileRef as Box<file> [
    Text name: ${@this->f_path.dentry->d_iname}
]

define VMArea as Box<vm_area_struct> [
    Text<u64:x> vm_start, vm_end
    Text<flag:vm_flags> vm_flags: vm_flags
    Text<bool> is_writable: ${(@this->vm_flags & 2) != 0}
    Text vm_pgoff
    Link vm_file -> FileRef(${@this->vm_file})
]

define MapleLeaf as Box<maple_node> [
    Text kind: "maple_leaf_64"
    Container pivots: Array(${@this->mr64.pivot})
    Container slots: Array(${@this->mr64.slot}).forEach |s| {
        yield switch ${@s == 0} {
            case ${true}: NULL
            otherwise: VMArea(@s)
        }
    }
]

define MapleARange as Box<maple_node> [
    Text kind: "maple_arange_64"
    Container pivots: Array(${@this->ma64.pivot})
    Container gaps: Array(${@this->ma64.gap})
    Container slots: Array(${@this->ma64.slot}).forEach |s| {
        yield switch ${xa_is_node(@s)} {
            case ${false}: NULL
            otherwise: switch ${mte_is_leaf(@s)} {
                case ${true}: MapleLeaf(${mte_to_node(@s)})
                otherwise: MapleARange(${mte_to_node(@s)})
            }
        }
    }
]

define MapleTree as Box<maple_tree> [
    Text<u64:x> ma_flags
    Link ma_root -> switch ${xa_is_node(@this->ma_root)} {
        case ${true}: switch ${mte_is_leaf(@this->ma_root)} {
            case ${true}: MapleLeaf(${mte_to_node(@this->ma_root)})
            otherwise: MapleARange(${mte_to_node(@this->ma_root)})
        }
        otherwise: switch ${@this->ma_root == 0} {
            case ${true}: NULL
            otherwise: VMArea(${@this->ma_root})
        }
    }
]

define MMStruct as Box<mm_struct> {
    :default [
        Text<u64:x> mmap_base, pgd
        Text mm_users, mm_count, map_count, total_vm
        Text<u64:x> start_code, start_stack
    ]
    :default => :show_mt [
        Link mm_maple_tree -> @mm_mt
    ]
    :show_mt => :show_addrspace [
        Container mm_addr_space: Array.selectFrom(@mm_mt, VMArea)
    ]
} where {
    mm_mt = MapleTree(${&@this->mm_mt})
}

define Task as Box<task_struct> [
    Text pid, comm
    Link mm -> MMStruct(${@this->mm})
]

root = Task(${find_task(100)})
plot @root
`

// Fig15_1 plots the page cache: in 2.6 a radix tree, in 6.1 the xarray
// (ULK Fig 15-1, structure upgraded). The :flat view distills the node tree
// into the plain ordered page list.
const Fig15_1 = `
define PageBox as Box<page> [
    Text index
    Text<flag:page_flags> flags: flags
    Text refcount: ${@this->_refcount}
]

define XaNode as Box<xa_node> [
    Text shift, offset, count
    Container slots: Array(${@this->slots}).forEach |s| {
        yield switch ${@s == 0} {
            case ${true}: NULL
            otherwise: switch ${xa_is_node(@s)} {
                case ${true}: XaNode(${xa_to_node(@s)})
                otherwise: PageBox(@s)
            }
        }
    }
]

define AddressSpace as Box<address_space> {
    :default [
        Text nrpages
        Link xa_head -> @xa_root
    ]
    :default => :flat [
        Container pages: Array.selectFrom(@xa_root, PageBox)
    ]
} where {
    xa_root = switch ${xa_is_node(@this->i_pages.xa_head)} {
        case ${true}: XaNode(${xa_to_node(@this->i_pages.xa_head)})
        otherwise: switch ${@this->i_pages.xa_head == 0} {
            case ${true}: NULL
            otherwise: PageBox(${@this->i_pages.xa_head})
        }
    }
}

define FileBox as Box<file> [
    Text name: ${@this->f_path.dentry->d_iname}
    Link f_mapping -> AddressSpace(${@this->f_mapping})
]

root = FileBox(${find_task(1)->files->fdt->fd[3]})
plot @root
`

// Fig16_2 plots file memory mapping: files -> address_space -> the i_mmap
// interval tree of VMAs -> owning mm/task (ULK Fig 16-2).
const Fig16_2 = `
define TaskRef as Box<task_struct> [
    Text pid, comm
]

define MMRef as Box<mm_struct> [
    Text map_count
    Link owner -> TaskRef(${@this->owner})
]

define VMArea as Box<vm_area_struct> [
    Text<u64:x> vm_start, vm_end
    Text vm_pgoff
    Link vm_mm -> MMRef(${@this->vm_mm})
]

define AddressSpace as Box<address_space> [
    Text nrpages
    Container i_mmap: RBTree(${@this->i_mmap}).forEach |n| {
        yield VMArea<vm_area_struct.shared_rb>(@n)
    }
]

define FileBox as Box<file> [
    Text name: ${@this->f_path.dentry->d_iname}
    Text nr_mmap: ${@this->f_mapping->i_mmap.rb_root.rb_node != 0}
    Link f_mapping -> AddressSpace(${@this->f_mapping})
]

root = Box [
    Container files: Array(${find_task(100)->files->fdt->fd}, 8).forEach |f| {
        yield switch ${@f == 0} {
            case ${true}: NULL
            otherwise: FileBox(@f)
        }
    }
]
plot @root
`

// Fig17_1 plots the reverse map of anonymous pages: page -> tagged
// anon_vma pointer -> interval tree of anon_vma_chains -> VMAs -> mm
// (ULK Fig 17-1).
const Fig17_1 = `
define TaskRef as Box<task_struct> [
    Text pid, comm
]

define MMRef as Box<mm_struct> [
    Text map_count
    Link owner -> TaskRef(${@this->owner})
]

define VMArea as Box<vm_area_struct> [
    Text<u64:x> vm_start, vm_end
    Text<flag:vm_flags> vm_flags: vm_flags
    Link vm_mm -> MMRef(${@this->vm_mm})
]

define AVC as Box<anon_vma_chain> [
    Link vma -> VMArea(${@this->vma})
]

define AnonVma as Box<anon_vma> [
    Text refcount, num_active_vmas
    Container rb_root: RBTree(${@this->rb_root}).forEach |n| {
        yield AVC<anon_vma_chain.rb>(@n)
    }
]

define AnonPage as Box<page> [
    Text index
    Text<flag:page_flags> flags: flags
    Text mapcount: ${@this->_mapcount}
    Text<bool> is_anon: ${PageAnon(@this)}
    Link mapping_anon_vma -> AnonVma(${page_anon_vma(@this)})
]

root = Box [
    Link page -> AnonPage(${anon_first_page(task_anon_vma(find_task(100)))})
]
plot @root
`

// Fig17_6 plots swap area descriptors (ULK Fig 17-6).
const Fig17_6 = `
define FileRef as Box<file> [
    Text name: ${@this->f_path.dentry->d_iname}
]

define SwapInfo as Box<swap_info_struct> [
    Text prio, pages, inuse_pages
    Text<u64:x> flags
    Text lowest_bit, highest_bit
    Link swap_file -> FileRef(${@this->swap_file})
]

root = Box [
    Text nr_swapfiles: ${nr_swapfiles}
    Link swap_info_0 -> SwapInfo(${swap_info[0]})
]
plot @root
`
