// Package vclstdlib is ViewCL's "standard library" in this reproduction:
// the 21 ULK figure programs of the paper's Table 2, the Table 3 debugging
// objectives (as natural-language requests plus reference ViewQL), and the
// case-study programs (maple tree, StackRot, Dirty Pipe). Each program is
// self-contained ViewCL source — the paper notes that "code shared between
// plots is calculated repeatedly", so per-figure LOC here is directly
// comparable to the paper's LOC column.
package vclstdlib

import "visualinux/internal/viewcl"

// Delta classifies how much the underlying kernel structure changed between
// Linux 2.6.11 (the ULK book) and 6.1 (Table 2's Δ column).
type Delta int

// Delta levels, ordered by magnitude.
const (
	DeltaNone   Delta = iota // ○ negligible changes
	DeltaMinor               // ◔ some variables or fields changed
	DeltaMedium              // ◑ fields/structures/relations changed
	DeltaMajor               // ● underlying data structure replaced
)

func (d Delta) String() string {
	switch d {
	case DeltaNone:
		return "none"
	case DeltaMinor:
		return "minor"
	case DeltaMedium:
		return "medium"
	case DeltaMajor:
		return "major"
	}
	return "?"
}

// Symbol renders the Table 2 marker.
func (d Delta) Symbol() string {
	switch d {
	case DeltaNone:
		return "○"
	case DeltaMinor:
		return "◔"
	case DeltaMedium:
		return "◑"
	case DeltaMajor:
		return "●"
	}
	return "?"
}

// Objective is a Table 3 hypothetical debugging objective: the natural-
// language description fed to vchat and the reference ViewQL it should be
// equivalent to.
type Objective struct {
	Description string // NL request (vchat input)
	ViewQL      string // reference program (what the paper's LLM produced)
}

// Figure is one Table 2 row.
type Figure struct {
	ID        string // "3-4", "8-2", "workqueue", ...
	Title     string
	Delta     Delta
	Program   string     // ViewCL source
	Objective *Objective // Table 3 entry, if this figure has one
	PaperLOC  int        // the paper's reported LOC, for EXPERIMENTS.md
}

// LOC counts the program's non-blank, non-comment lines.
func (f *Figure) LOC() int {
	p := viewcl.MustParse(f.ID, f.Program)
	return p.LOC
}

// Figures returns all Table 2 rows in paper order.
func Figures() []Figure {
	return []Figure{
		{ID: "3-4", Title: "process parenthood tree", Delta: DeltaNone, Program: Fig3_4, PaperLOC: 27,
			Objective: &Objective{
				Description: "Display view show_children of all tasks, and shrink tasks that have no address space",
				ViewQL: `a1 = SELECT task_struct FROM *
UPDATE a1 WITH view: show_children
a2 = SELECT task_struct FROM * WHERE mm == NULL
UPDATE a2 WITH collapsed: true`,
			}},
		{ID: "3-6", Title: "PID hash tables (now: pid IDR)", Delta: DeltaMedium, Program: Fig3_6, PaperLOC: 48,
			Objective: &Objective{
				Description: "Shrink all pid entries except for nr 1 and 100",
				ViewQL: `a1 = SELECT pid FROM *
a2 = SELECT pid FROM * WHERE nr == 1 OR nr == 100
UPDATE a1 \ a2 WITH collapsed: true`,
			}},
		{ID: "4-5", Title: "IRQ descriptors", Delta: DeltaMinor, Program: Fig4_5, PaperLOC: 59,
			Objective: &Objective{
				Description: "Shrink irq_desc entries whose action is not configured",
				ViewQL: `a1 = SELECT irq_desc FROM * WHERE action == NULL
UPDATE a1 WITH collapsed: true`,
			}},
		{ID: "6-1", Title: "dynamic timers", Delta: DeltaMinor, Program: Fig6_1, PaperLOC: 46},
		{ID: "7-1", Title: "runqueue of CFS scheduler", Delta: DeltaMinor, Program: Fig7_1, PaperLOC: 35,
			Objective: &Objective{
				Description: "Display view sched of all tasks; display the tasks_timeline of RunQueue vertically",
				ViewQL: `a1 = SELECT task_struct FROM *
UPDATE a1 WITH view: sched
a2 = SELECT RunQueue.tasks_timeline FROM *
UPDATE a2 WITH direction: vertical`,
			}},
		{ID: "8-2", Title: "buddy system and pages", Delta: DeltaMedium, Program: Fig8_2, PaperLOC: 64},
		{ID: "8-4", Title: "kmem cache and slab allocator", Delta: DeltaMajor, Program: Fig8_4, PaperLOC: 102},
		{ID: "9-2", Title: "process address space", Delta: DeltaMajor, Program: Fig9_2, PaperLOC: 145,
			Objective: &Objective{
				Description: "Display view show_mt of all mm_struct objects; shrink the maple_node slots; shrink all vm_area_struct objects that are writable",
				ViewQL: `a1 = SELECT mm_struct FROM *
UPDATE a1 WITH view: show_mt
a2 = SELECT maple_node.slots FROM *
UPDATE a2 WITH collapsed: true
a3 = SELECT vm_area_struct FROM * WHERE is_writable == true
UPDATE a3 WITH collapsed: true`,
			}},
		{ID: "11-1", Title: "components for signal handling", Delta: DeltaNone, Program: Fig11_1, PaperLOC: 71,
			Objective: &Objective{
				Description: "Shrink k_sigaction entries whose sa_handler is not configured",
				ViewQL: `a1 = SELECT k_sigaction FROM * WHERE sa_handler == NULL
UPDATE a1 WITH collapsed: true`,
			}},
		{ID: "12-3", Title: "the fd array", Delta: DeltaMedium, Program: Fig12_3, PaperLOC: 55},
		{ID: "13-3", Title: "device driver and kobject", Delta: DeltaMinor, Program: Fig13_3, PaperLOC: 55},
		{ID: "14-3", Title: "block device descriptors", Delta: DeltaMinor, Program: Fig14_3, PaperLOC: 75,
			Objective: &Objective{
				Description: "Display the list of SuperBlocks vertically; collapse super_block entries whose s_bdev is not connected to any block device",
				ViewQL: `a1 = SELECT SuperBlocks.list FROM *
UPDATE a1 WITH direction: vertical
a2 = SELECT super_block FROM * WHERE s_bdev == NULL
UPDATE a2 WITH collapsed: true`,
			}},
		{ID: "15-1", Title: "the radix tree managing page cache (now: xarray)", Delta: DeltaMajor, Program: Fig15_1, PaperLOC: 70,
			Objective: &Objective{
				Description: "Shrink the pages list in address_space objects",
				ViewQL: `a1 = SELECT address_space.pages FROM *
UPDATE a1 WITH collapsed: true`,
			}},
		{ID: "16-2", Title: "file memory mapping", Delta: DeltaMinor, Program: Fig16_2, PaperLOC: 53,
			Objective: &Objective{
				Description: "Shrink files that have no mapping",
				ViewQL: `a1 = SELECT file FROM * WHERE nr_mmap == 0
UPDATE a1 WITH collapsed: true`,
			}},
		{ID: "17-1", Title: "reverse map of anonymous pages", Delta: DeltaNone, Program: Fig17_1, PaperLOC: 154},
		{ID: "17-6", Title: "swap area descriptors", Delta: DeltaNone, Program: Fig17_6, PaperLOC: 19},
		{ID: "19-1/2", Title: "IPC semaphore and message queue management", Delta: DeltaMinor, Program: Fig19_12, PaperLOC: 126},
		{ID: "workqueue", Title: "work queue (heterogeneous work list)", Delta: DeltaMajor, Program: FigWorkqueue, PaperLOC: 89},
		{ID: "proc2vfs", Title: "from process to VFS", Delta: DeltaNone, Program: FigProc2VFS, PaperLOC: 96},
		{ID: "socketconn", Title: "socket connection", Delta: DeltaMinor, Program: FigSocketConn, PaperLOC: 92,
			Objective: &Objective{
				Description: "Shrink sockets whose write/receive buffer are both empty",
				ViewQL: `a1 = SELECT sock FROM * WHERE tx_qlen == 0 AND rx_qlen == 0
UPDATE a1 WITH collapsed: true`,
			}},
	}
}

// FigureByID finds a Table 2 row.
func FigureByID(id string) (Figure, bool) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}
