package vclstdlib

// Process-management figures: ULK Fig 3-4, 3-6, 4-5, 6-1, 7-1, 11-1, 12-3.

// Fig3_4 plots the process parenthood tree (ULK Fig 3-4).
const Fig3_4 = `
define MM as Box<mm_struct> [
    Text map_count
    Text<u64:x> pgd
]

define Task as Box<task_struct> {
    :default [
        Text pid, comm
        Text<string> state: ${task_state(@this)}
        Link mm -> MM(${@this->mm})
    ]
    :default => :show_children [
        Text ppid: ${@this->parent->pid}
        Container children: List(${@this->children}).forEach |n| {
            yield Task<task_struct.sibling>(@n)
        }
    ]
}

root = Task(${&init_task})
plot @root
`

// Fig3_6 plots PID management. ULK drew the 2.6 pid_hash tables; in Linux
// 6.1 pids live in a per-namespace IDR (radix tree), so the ported figure
// shows init_pid_ns's IDR with struct pid leaves (Δ = structure changed).
const Fig3_6 = `
define Task as Box<task_struct> [
    Text pid, comm
]

define Pid as Box<pid> [
    Text nr: ${@this->numbers[0].nr}
    Text level
    Text refcount: ${@this->count.refs}
    Container tasks: HList(${@this->tasks[0]}).forEach |n| {
        yield Task<task_struct.pid_links>(@n)
    }
]

define IdrNode as Box<xa_node> [
    Text shift, count
    Container slots: Array(${@this->slots}).forEach |s| {
        yield switch ${@s == 0} {
            case ${true}: NULL
            otherwise: switch ${xa_is_node(@s)} {
                case ${true}: IdrNode(${xa_to_node(@s)})
                otherwise: Pid(@s)
            }
        }
    }
]

define PidNS as Box<pid_namespace> [
    Text pid_allocated, level
    Link child_reaper -> Task(${@this->child_reaper})
    Link idr_root -> switch ${xa_is_node(@this->idr.idr_rt.xa_head)} {
        case ${true}: IdrNode(${xa_to_node(@this->idr.idr_rt.xa_head)})
        otherwise: NULL
    }
]

root = PidNS(${&init_pid_ns})
plot @root
`

// Fig4_5 plots the IRQ descriptor table with (possibly shared) actions
// (ULK Fig 4-5).
const Fig4_5 = `
define IrqAction as Box<irqaction> [
    Text name
    Text<fptr> handler
    Text irq
    Link next -> IrqAction(${@this->next})
]

define IrqChip as Box<irq_chip> [
    Text name
    Text<fptr> irq_enable, irq_disable
]

define IrqDesc as Box<irq_desc> [
    Text irq: ${@this->irq_data.irq}
    Text name
    Text depth
    Text<fptr> handle_irq
    Link chip -> IrqChip(${@this->irq_data.chip})
    Link action -> IrqAction(${@this->action})
]

root = Box [
    Container irq_descs: Array(${irq_desc}).forEach |d| {
        yield IrqDesc(@d)
    }
]
plot @root
`

// Fig6_1 plots the per-CPU timer wheels (ULK Fig 6-1, dynamic timers).
const Fig6_1 = `
define Timer as Box<timer_list> [
    Text expires
    Text<fptr> function
    Text<u64:x> flags
]

define Bucket as Box<hlist_head> [
    Container timers: HList(@this).forEach |n| {
        yield Timer<timer_list.entry>(@n)
    }
]

define TimerBase as Box<timer_base> [
    Text cpu, clk, next_expiry
    Text<emoji:lock> lock: ${@this->lock.raw_lock}
    Container vectors: Array(${@this->vectors}).forEach |b| {
        yield switch ${@b.first == 0} {
            case ${true}: NULL
            otherwise: Bucket(@b)
        }
    }
]

root = Box [
    Link cpu0 -> TimerBase(${&timer_bases[0]})
    Link cpu1 -> TimerBase(${&timer_bases[1]})
]
plot @root
`

// Fig7_1 plots the CFS run queue of CPU 0 (ULK Fig 7-1) — the paper's §1
// motivating example.
const Fig7_1 = `
define Task as Box<task_struct> {
    :default [
        Text pid, comm
        Text ppid: ${@this->parent->pid}
        Text<string> state: ${task_state(@this)}
    ]
    :default => :sched [
        Text se.vruntime
        Text weight: ${@this->se.load.weight}
    ]
}

define RunQueue as Box<rq> [
    Text cpu, nr_running
    Text min_vruntime: ${@this->cfs.min_vruntime}
    Container tasks_timeline: RBTree(${@this->cfs.tasks_timeline}).forEach |node| {
        yield Task<task_struct.se.run_node>(@node)
    }
]

root = RunQueue(${cpu_rq(0)})
plot @root
`

// Fig11_1 plots the signal-handling components of a process (ULK Fig 11-1).
const Fig11_1 = `
define KSigaction as Box<k_sigaction> [
    Text<fptr> sa_handler: ${@this->sa.sa_handler}
    Text<u64:x> sa_flags: ${@this->sa.sa_flags}
    Text<u64:x> sa_mask: ${@this->sa.sa_mask.sig[0]}
]

define Sighand as Box<sighand_struct> [
    Text count: ${@this->count.refs}
    Container action: Array(${@this->action}).forEach |a| {
        yield KSigaction(@a)
    }
]

define SignalStruct as Box<signal_struct> [
    Text nr_threads
    Text live
    Text group_exit_code
    Container shared_pending: List(${@this->shared_pending.list}).forEach |n| {
        yield SigQueue<sigqueue.list>(@n)
    }
]

define SigQueue as Box<sigqueue> [
    Text si_signo, si_code, si_pid
]

define Task as Box<task_struct> [
    Text pid, comm
    Text<u64:x> blocked: ${@this->blocked.sig[0]}
    Link signal -> SignalStruct(${@this->signal})
    Link sighand -> Sighand(${@this->sighand})
]

root = Task(${find_task(100)})
plot @root
`

// Fig12_3 plots the fd array of a process (ULK Fig 12-3).
const Fig12_3 = `
define File as Box<file> [
    Text name: ${@this->f_path.dentry->d_iname}
    Text f_pos
    Text f_count
    Text<u64:x> f_flags
]

define Fdtable as Box<fdtable> [
    Text max_fds
    Text<u64:x> open_fds: ${@this->open_fds[0]}
    Container fd: Array(${@this->fd}, 16).forEach |f| {
        yield switch ${@f == 0} {
            case ${true}: NULL
            otherwise: File(@f)
        }
    }
]

define FilesStruct as Box<files_struct> [
    Text count, next_fd
    Link fdt -> Fdtable(${@this->fdt})
]

define Task as Box<task_struct> [
    Text pid, comm
    Link files -> FilesStruct(${@this->files})
]

root = Task(${find_task(100)})
plot @root
`
