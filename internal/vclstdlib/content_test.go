package vclstdlib_test

import (
	"strings"
	"testing"

	"visualinux/internal/graph"
	"visualinux/internal/kernelsim"
	"visualinux/internal/vclstdlib"
)

// Content-level assertions per figure: not just "it extracts", but "it
// shows what the kernel state actually contains".

func extractFig(t *testing.T, k *kernelsim.Kernel, id string) *graph.Graph {
	t.Helper()
	fig, ok := vclstdlib.FigureByID(id)
	if !ok {
		t.Fatalf("no figure %s", id)
	}
	in := newInterp(t, k)
	res, err := in.RunSource(id, fig.Program)
	if err != nil {
		t.Fatalf("extract %s: %v", id, err)
	}
	return res.Graph
}

func member(t *testing.T, g *graph.Graph, b *graph.Box, name string) graph.Item {
	t.Helper()
	it, ok := b.Member(name)
	if !ok {
		t.Fatalf("%s has no member %q", b.ID, name)
	}
	return it
}

func TestFig3_4Content(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	g := extractFig(t, k, "3-4")
	// init_task's children: systemd plus the kernel threads.
	root, _ := g.Get(g.RootID)
	kids := member(t, g, root, "children")
	if n := len(kids.Elems); n < 6 {
		t.Errorf("init children = %d", n)
	}
	// systemd's children: the workload processes and daemons.
	var systemd *graph.Box
	for _, b := range g.ByType("task_struct") {
		if member(t, g, b, "pid").Raw == 1 {
			systemd = b
		}
	}
	if systemd == nil {
		t.Fatal("no systemd")
	}
	if n := len(member(t, g, systemd, "children").Elems); n < 8 {
		t.Errorf("systemd children = %d", n)
	}
	// Each child's ppid is 0 (reparented tasks excluded in our build).
	for _, id := range kids.Elems {
		if id == "" {
			continue
		}
		b, _ := g.Get(id)
		if pp := member(t, g, b, "ppid"); pp.Raw != 0 {
			t.Errorf("%s ppid = %d", id, pp.Raw)
		}
	}
	// Kernel threads have NULL mm, user processes don't.
	sawKthread, sawUser := false, false
	for _, b := range g.ByType("task_struct") {
		mm := member(t, g, b, "mm")
		comm := member(t, g, b, "comm")
		if strings.HasPrefix(comm.Value, "kworker") && mm.TargetID == "" {
			sawKthread = true
		}
		if strings.HasPrefix(comm.Value, "workload") && mm.TargetID != "" {
			sawUser = true
		}
	}
	if !sawKthread || !sawUser {
		t.Errorf("mm discrimination lost: kthread=%v user=%v", sawKthread, sawUser)
	}
}

func TestFig4_5Content(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	g := extractFig(t, k, "4-5")
	// IRQ 11 is a shared line: two chained irqactions.
	var irq11 *graph.Box
	for _, b := range g.ByType("irq_desc") {
		if member(t, g, b, "irq").Raw == 11 {
			irq11 = b
		}
	}
	if irq11 == nil {
		t.Fatal("no irq 11")
	}
	a1ID := member(t, g, irq11, "action").TargetID
	if a1ID == "" {
		t.Fatal("irq 11 has no action")
	}
	a1, _ := g.Get(a1ID)
	if h := member(t, g, a1, "handler"); h.Value != "e1000_intr" {
		t.Errorf("first handler = %q", h.Value)
	}
	a2ID := member(t, g, a1, "next").TargetID
	if a2ID == "" {
		t.Fatal("shared line not chained")
	}
	a2, _ := g.Get(a2ID)
	if h := member(t, g, a2, "handler"); h.Value != "ahci_interrupt" {
		t.Errorf("second handler = %q", h.Value)
	}
	// Unconfigured IRQs have NULL action.
	unconfigured := 0
	for _, b := range g.ByType("irq_desc") {
		if member(t, g, b, "action").TargetID == "" {
			unconfigured++
		}
	}
	if unconfigured != kernelsim.NrIRQs-5 {
		t.Errorf("unconfigured = %d", unconfigured)
	}
}

func TestFig8_4Content(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	g := extractFig(t, k, "8-4")
	var taskCache *graph.Box
	for _, b := range g.ByType("kmem_cache") {
		if member(t, g, b, "name").Value == "task_struct" {
			taskCache = b
		}
	}
	if taskCache == nil {
		t.Fatal("no task_struct cache")
	}
	objSize := member(t, g, taskCache, "object_size")
	if objSize.Raw != k.Reg.MustLookup("task_struct").Size() {
		t.Errorf("object_size = %d, want %d", objSize.Raw, k.Reg.MustLookup("task_struct").Size())
	}
	// Bitfields on slabs decode: inuse <= objects, frozen in {0,1}.
	for _, b := range g.ByType("slab") {
		inuse := member(t, g, b, "inuse")
		objects := member(t, g, b, "objects")
		if inuse.Raw > objects.Raw || objects.Raw == 0 {
			t.Errorf("%s: inuse=%d objects=%d", b.ID, inuse.Raw, objects.Raw)
		}
	}
}

func TestFig14_3Content(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	g := extractFig(t, k, "14-3")
	var ext4 *graph.Box
	for _, b := range g.ByType("super_block") {
		if member(t, g, b, "s_id").Value == "sda1" {
			ext4 = b
		}
	}
	if ext4 == nil {
		t.Fatal("no sda1 superblock")
	}
	bdevID := member(t, g, ext4, "s_bdev").TargetID
	if bdevID == "" {
		t.Fatal("sda1 has no block device")
	}
	bdev, _ := g.Get(bdevID)
	if pn := member(t, g, bdev, "bd_partno"); pn.Raw != 1 {
		t.Errorf("partno = %d", pn.Raw)
	}
	diskID := member(t, g, bdev, "bd_disk").TargetID
	disk, _ := g.Get(diskID)
	if n := member(t, g, disk, "disk_name"); n.Value != "sda" {
		t.Errorf("disk = %q", n.Value)
	}
	// Virtual filesystems have NULL s_bdev.
	nodev := 0
	for _, b := range g.ByType("super_block") {
		if member(t, g, b, "s_bdev").TargetID == "" {
			nodev++
		}
	}
	if nodev != 4 { // proc, tmpfs, pipefs, sockfs
		t.Errorf("nodev superblocks = %d", nodev)
	}
}

func TestFig17_6Content(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	g := extractFig(t, k, "17-6")
	sis := g.ByType("swap_info_struct")
	if len(sis) != 1 {
		t.Fatalf("swap infos = %d", len(sis))
	}
	si := sis[0]
	if p := member(t, g, si, "pages"); p.Raw != 131071 {
		t.Errorf("pages = %d", p.Raw)
	}
	fileID := member(t, g, si, "swap_file").TargetID
	f, _ := g.Get(fileID)
	if n := member(t, g, f, "name"); n.Value != "swapfile" {
		t.Errorf("swap file = %q", n.Value)
	}
}

func TestFig19Content(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	g := extractFig(t, k, "19-1/2")
	// Semaphore arrays carry their sems with a sleeping waiter somewhere.
	semArrays := g.ByType("sem_array")
	if len(semArrays) == 0 {
		t.Fatal("no sem arrays")
	}
	waiters := 0
	for _, q := range g.ByType("sem_queue") {
		if member(t, g, q, "sleeper").TargetID != "" {
			waiters++
		}
	}
	if waiters == 0 {
		t.Error("no semaphore waiters linked to tasks")
	}
	// Message queues: q_qnum matches the message list length.
	for _, mq := range g.ByType("msg_queue") {
		qnum := member(t, g, mq, "q_qnum")
		msgs := member(t, g, mq, "q_messages")
		live := 0
		for _, e := range msgs.Elems {
			if e != "" {
				live++
			}
		}
		if uint64(live) != qnum.Raw {
			t.Errorf("%s: q_qnum=%d but %d messages", mq.ID, qnum.Raw, live)
		}
	}
}

func TestWorkqueueContent(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	g := extractFig(t, k, "workqueue")
	// The heterogeneous list: all three wrapper types present, each with
	// the right function-pointer witness.
	wantFuncs := map[string]string{
		"vmstat_work_item":     "vmstat_update",
		"lru_drain_work_item":  "lru_add_drain_per_cpu",
		"mmu_gather_work_item": "tlb_remove_table_smp_sync",
	}
	for typ, fn := range wantFuncs {
		boxes := g.ByType(typ)
		if len(boxes) == 0 {
			t.Errorf("no %s on any worklist", typ)
			continue
		}
		for _, b := range boxes {
			if f := member(t, g, b, "func"); f.Value != fn {
				t.Errorf("%s func = %q, want %q", b.ID, f.Value, fn)
			}
			if kind := member(t, g, b, "kind"); kind.Value != typ {
				t.Errorf("%s kind = %q", b.ID, kind.Value)
			}
		}
	}
	// The container_of recovery: each pool's worklist has mixed types.
	for _, pool := range g.ByType("worker_pool") {
		wl := member(t, g, pool, "worklist")
		types := map[string]bool{}
		for _, e := range wl.Elems {
			if e == "" {
				continue
			}
			b, _ := g.Get(e)
			types[b.TypeName] = true
		}
		if len(types) < 2 {
			t.Errorf("pool %s worklist not heterogeneous: %v", pool.ID, types)
		}
	}
}

func TestSocketConnContent(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	g := extractFig(t, k, "socketconn")
	socks := g.ByType("sock")
	if len(socks) != 5 {
		t.Fatalf("socks = %d", len(socks))
	}
	busy, idle := 0, 0
	for _, s := range socks {
		rx := member(t, g, s, "rx_qlen")
		q := member(t, g, s, "rx_queue")
		live := 0
		for _, e := range q.Elems {
			if e != "" {
				live++
			}
		}
		if uint64(live) != rx.Raw {
			t.Errorf("%s: rx_qlen=%d but %d skbs", s.ID, rx.Raw, live)
		}
		if rx.Raw > 0 {
			busy++
		} else {
			idle++
		}
	}
	if busy == 0 || idle == 0 {
		t.Errorf("need both busy and idle sockets: %d/%d", busy, idle)
	}
	// Enum decorator: socket state renders by name.
	for _, s := range g.ByType("socket") {
		if st := member(t, g, s, "state"); st.Value != "SS_CONNECTED" {
			t.Errorf("socket state = %q", st.Value)
		}
	}
}

func TestFig6_1Content(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	g := extractFig(t, k, "6-1")
	timers := g.ByType("timer_list")
	if len(timers) < 20 {
		t.Fatalf("timers = %d", len(timers))
	}
	for _, tm := range timers {
		fn := member(t, g, tm, "function")
		if fn.Value == "" || strings.HasPrefix(fn.Value, "0x") {
			t.Errorf("%s function undecorated: %q", tm.ID, fn.Value)
		}
		if exp := member(t, g, tm, "expires"); exp.Raw <= 4_295_000_000 {
			t.Errorf("%s expires in the past: %d", tm.ID, exp.Raw)
		}
	}
	// Spinlock emoji rendered on timer bases.
	for _, tb := range g.ByType("timer_base") {
		l := member(t, g, tb, "lock")
		if l.Value != "\U0001F513" { // built unlocked
			t.Errorf("lock emoji = %q", l.Value)
		}
	}
}
