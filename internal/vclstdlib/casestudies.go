package vclstdlib

// Case-study programs: the paper's §3.1 maple-tree walkthrough (Figs 3/4),
// §3.2/§5.3 StackRot (CVE-2023-3269), and §5.3 Dirty Pipe (CVE-2022-0847).

// MapleTreeProgram is the §3.1 program: Fig9_2's extraction plus the
// customization applied in the paper to obtain Fig 4.
const MapleTreeProgram = Fig9_2

// MapleTreeCustomization is the ViewQL the paper applies to reach Fig 4:
// collapse the bulky slot arrays and hide writable areas (the hypothetical
// objective focuses on read-only ones).
const MapleTreeCustomization = `
mm = SELECT mm_struct FROM *
UPDATE mm WITH view: show_mt
slots = SELECT maple_node.slots FROM *
UPDATE slots WITH collapsed: true
writable_vmas = SELECT vm_area_struct FROM * WHERE is_writable == true
UPDATE writable_vmas WITH trimmed: true
`

// StackRotProgram plots the CVE-2023-3269 state: the victim mm's maple
// tree side by side with CPU 0's RCU callback list. The maple node queued
// for deferred free appears in BOTH structures — the visual signature of
// the use-after-free window (paper Fig 5's aftermath). The rcu_head links
// back to its embedding maple node via container_of, so the memoized node
// box is literally shared between the two subgraphs.
const StackRotProgram = `
define FileRef as Box<file> [
    Text name: ${@this->f_path.dentry->d_iname}
]

define VMArea as Box<vm_area_struct> [
    Text<u64:x> vm_start, vm_end
    Text<flag:vm_flags> vm_flags: vm_flags
    Link vm_file -> FileRef(${@this->vm_file})
]

define MapleLeaf as Box<maple_node> [
    Text kind: "maple_leaf_64"
    Container slots: Array(${@this->mr64.slot}).forEach |s| {
        yield switch ${@s == 0} {
            case ${true}: NULL
            otherwise: VMArea(@s)
        }
    }
]

define MapleARange as Box<maple_node> [
    Text kind: "maple_arange_64"
    Container slots: Array(${@this->ma64.slot}).forEach |s| {
        yield switch ${xa_is_node(@s)} {
            case ${false}: NULL
            otherwise: switch ${mte_is_leaf(@s)} {
                case ${true}: MapleLeaf(${mte_to_node(@s)})
                otherwise: MapleARange(${mte_to_node(@s)})
            }
        }
    }
]

define MapleTree as Box<maple_tree> [
    Text<u64:x> ma_flags
    Link ma_root -> switch ${xa_is_node(@this->ma_root)} {
        case ${true}: switch ${mte_is_leaf(@this->ma_root)} {
            case ${true}: MapleLeaf(${mte_to_node(@this->ma_root)})
            otherwise: MapleARange(${mte_to_node(@this->ma_root)})
        }
        otherwise: NULL
    }
]

define MMStruct as Box<mm_struct> [
    Text map_count
    Text mmap_lock_readers: ${@this->mmap_lock.count}
    Text<emoji:onoff> lock_held: ${@this->mmap_lock.count != 0}
    Link mm_mt -> MapleTree(${&@this->mm_mt})
]

define RcuHead as Box<rcu_head> [
    Text<fptr> func
    Link next -> RcuHead(${@this->next})
    Link embedded_in -> switch ${@this->func == mt_free_rcu} {
        case ${true}: MapleLeaf(${container_of(@this, maple_node, rcu)})
        otherwise: NULL
    }
]

define RcuData as Box<rcu_data> [
    Text cpu
    Text<u64:x> gp_seq
    Text cblist_len: ${@this->cblist.len}
    Link cblist_head -> RcuHead(${@this->cblist.head})
]

mm = MMStruct(${&stackrot_mm})
rcu0 = RcuData(${&rcu_data[0]})

plot @mm
plot @rcu0
`

// DirtyPipeProgram plots the CVE-2022-0847 state from the victim process's
// fd table: regular files with their page caches, and pipes with their
// ring buffers, flags decorated (paper Fig 7's extraction, ~60 LOC as the
// paper reports).
const DirtyPipeProgram = `
define PageBox as Box<page> [
    Text index
    Text<flag:page_flags> flags: flags
    Text refcount: ${@this->_refcount}
]

define AddressSpace as Box<address_space> [
    Text nrpages
    Container pages: XArray(${@this->i_pages}).forEach |e| {
        yield PageBox(@e)
    }
]

define PipeBuffer as Box<pipe_buffer> [
    Text offset, len
    Text<flag:pipe_buf_flags> flags: flags
    Text<fptr> release: ${@this->ops->release}
    Link page -> PageBox(${@this->page})
]

define Pipe as Box<pipe_inode_info> [
    Text head, tail, ring_size, readers, writers
    Container bufs: PipeRing(@this).forEach |b| {
        yield PipeBuffer(@b)
    }
]

define FileBox as Box<file> [
    Text name: ${@this->f_path.dentry->d_iname}
    Link pagecache -> switch ${@this->f_inode->i_pipe == 0} {
        case ${true}: AddressSpace(${@this->f_mapping})
        otherwise: NULL
    }
    Link pipe -> switch ${@this->f_inode->i_pipe == 0} {
        case ${true}: NULL
        otherwise: Pipe(${@this->f_inode->i_pipe})
    }
]

define Task as Box<task_struct> [
    Text pid, comm
    Container files: Array(${@this->files->fdt->fd}, ${@this->files->next_fd}).forEach |f| {
        yield switch ${@f == 0} {
            case ${true}: NULL
            otherwise: FileBox(@f)
        }
    }
]

root = Task(${find_task(107)})
plot @root
`

// DirtyPipeCustomization is the paper's §5.3 ViewQL: keep only the pages
// shared between a file's page cache and a pipe ring.
const DirtyPipeCustomization = `
file_pgc = SELECT file->pagecache FROM *
file_pgs = SELECT page FROM REACHABLE(file_pgc)
pipe_buf = SELECT pipe_inode_info->bufs FROM *
pipe_pgs = SELECT page FROM REACHABLE(pipe_buf)
UPDATE pipe_pgs \ file_pgs WITH trimmed: true
`

// QuickstartProgram is the paper's §1 opening example: the CFS run queue
// of CPU 0 as a red-black tree of pruned task boxes.
const QuickstartProgram = `
define Task as Box<task_struct> [
    Text pid, comm
    Text ppid: ${@this->parent->pid}
    Text<string> state: ${task_state(@this)}
    Text se.vruntime
]

root = ${cpu_rq(0)->cfs.tasks_timeline}

sched_tree = RBTree(@root).forEach |node| {
    yield Task<task_struct.se.run_node>(@node)
}

plot @sched_tree
`

// QuickstartCustomization is §1's follow-up ViewQL: focus on one pid and
// its children.
const QuickstartCustomization = `
task_all = SELECT task_struct FROM *
task_2 = SELECT task_struct FROM task_all WHERE pid == 100 OR ppid == 100
UPDATE task_all \ task_2 WITH collapsed: true
`
