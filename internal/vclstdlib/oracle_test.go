package vclstdlib_test

import (
	"testing"

	"visualinux/internal/expr"
	"visualinux/internal/kernelsim"
	"visualinux/internal/render"
	"visualinux/internal/target"
	"visualinux/internal/vclstdlib"
	"visualinux/internal/viewcl"
)

// The compiled ViewCL engine (closure chains, slot frames, pooled run state)
// must be observationally identical to the tree-walking interpreter it
// replaced — the interpreter is kept behind Interp.Interpret exactly so it
// can serve as the differential oracle here. "Identical" means byte-equal
// rendered plots and equal extraction-issue lists, across every stdlib
// figure and case study, cold and across a stop→mutate→resume memo cycle.

// oraclePrograms is the full corpus both engines must agree on.
func oraclePrograms() map[string]string {
	progs := map[string]string{
		"maple":      vclstdlib.MapleTreeProgram,
		"stackrot":   vclstdlib.StackRotProgram,
		"dirtypipe":  vclstdlib.DirtyPipeProgram,
		"quickstart": vclstdlib.QuickstartProgram,
	}
	for _, fig := range vclstdlib.Figures() {
		progs[fig.ID] = fig.Program
	}
	return progs
}

func errStrings(errs []error) []string {
	out := make([]string, len(errs))
	for i, e := range errs {
		out[i] = e.Error()
	}
	return out
}

func TestCompiledMatchesInterpretedOracle(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	for id, prog := range oraclePrograms() {
		id, prog := id, prog
		t.Run(id, func(t *testing.T) {
			comp := newInterp(t, k)
			intp := newInterp(t, k)
			intp.Interpret = true

			cres, err := comp.RunSource(id, prog)
			if err != nil {
				t.Fatalf("compiled: %v", err)
			}
			ires, err := intp.RunSource(id, prog)
			if err != nil {
				t.Fatalf("interpreted: %v", err)
			}
			ct, it := render.Text(cres.Graph), render.Text(ires.Graph)
			if ct != it {
				t.Fatalf("engines diverge on %s:\n--- compiled ---\n%s\n--- interpreted ---\n%s", id, ct, it)
			}
			ce, ie := errStrings(cres.Errors), errStrings(ires.Errors)
			if len(ce) != len(ie) {
				t.Fatalf("issue counts diverge: compiled %v vs interpreted %v", ce, ie)
			}
			for i := range ce {
				if ce[i] != ie[i] {
					t.Errorf("issue %d diverges:\ncompiled:    %s\ninterpreted: %s", i, ce[i], ie[i])
				}
			}
		})
	}
}

// Error programs must fail identically too: same message, same evaluation
// order (definition lookup before argument evaluation, anchors after).
func TestOracleErrorParity(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	bad := map[string]string{
		"unknown-type": `plot NoSuchBox(${init_task})`,
		"unbound-var":  `plot @nobody`,
		"circular": `define T: task_struct { Text pid }
x = @y
y = @x
plot T(${&init_task})` + "\n" + `plot @x`,
		"bad-anchor": `define T: task_struct { Text pid }
plot T<task_struct.no_such_field>(${&init_task})`,
		"scalar-plot": `plot ${init_task.pid}`,
	}
	for id, prog := range bad {
		id, prog := id, prog
		t.Run(id, func(t *testing.T) {
			comp := newInterp(t, k)
			intp := newInterp(t, k)
			intp.Interpret = true
			_, cerr := comp.RunSource(id, prog)
			_, ierr := intp.RunSource(id, prog)
			if (cerr == nil) != (ierr == nil) {
				t.Fatalf("one engine failed, the other did not: compiled=%v interpreted=%v", cerr, ierr)
			}
			if cerr != nil && cerr.Error() != ierr.Error() {
				t.Errorf("error text diverges:\ncompiled:    %v\ninterpreted: %v", cerr, ierr)
			}
		})
	}
}

// memoOracle builds one engine (compiled or interpreted) with the full
// incremental wiring: snapshot-backed reads and a cross-run memo.
func memoOracle(t testing.TB, k *kernelsim.Kernel, interpret bool) (*target.Snapshot, *viewcl.Interp) {
	t.Helper()
	snap := target.NewSnapshot(k.Target())
	env := expr.NewEnv(snap)
	kernelsim.RegisterHelpers(env)
	in := viewcl.New(env)
	for id, set := range kernelsim.FlagSets() {
		var fl []viewcl.Flag
		for _, b := range set {
			fl = append(fl, viewcl.Flag{Mask: b.Mask, Name: b.Name})
		}
		in.Flags[id] = fl
	}
	in.Memo = viewcl.NewMemo(snap)
	in.Interpret = interpret
	return snap, in
}

// The engines must also agree through a stop→mutate→resume cycle with the
// memo active: cold extraction, a kernel-side mutation (the StackRot maple
// tree rebuild), then a warm re-extraction that reuses clean boxes and
// rebuilds dirty ones.
func TestOracleMemoCycleMatches(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{DisableStackRot: true})
	victim := k.ByPID[100]
	k.Symbol("stackrot_mm", k.At("mm_struct", victim.Get("mm")))

	csnap, cin := memoOracle(t, k, false)
	isnap, iin := memoOracle(t, k, true)

	run := func(in *viewcl.Interp, phase string) *viewcl.Result {
		res, err := in.RunSource("stackrot", vclstdlib.StackRotProgram)
		if err != nil {
			t.Fatalf("%s: %v", phase, err)
		}
		return res
	}
	c1, i1 := run(cin, "compiled cold"), run(iin, "interpreted cold")
	if a, b := render.Text(c1.Graph), render.Text(i1.Graph); a != b {
		t.Fatalf("cold plots diverge:\n--- compiled ---\n%s\n--- interpreted ---\n%s", a, b)
	}

	// Mutate: a new mapping rebuilds the maple tree and queues the replaced
	// nodes on the RCU list (the StackRot step moment).
	if _, err := k.MapRegion(100, 0x7100_0000_0000, 0x7100_0002_0000,
		kernelsim.VMRead|kernelsim.VMWrite, kernelsim.Obj{}); err != nil {
		t.Fatalf("map: %v", err)
	}
	csnap.Advance()
	isnap.Advance()

	c2, i2 := run(cin, "compiled warm"), run(iin, "interpreted warm")
	if a, b := render.Text(c2.Graph), render.Text(i2.Graph); a != b {
		t.Fatalf("post-mutation plots diverge:\n--- compiled ---\n%s\n--- interpreted ---\n%s", a, b)
	}
	// Both engines share the memo machinery; the cycle must actually have
	// exercised it the same way on both sides.
	if c2.BoxesReused == 0 {
		t.Error("compiled warm run reused nothing")
	}
	if c2.BoxesBuilt == 0 {
		t.Error("compiled warm run rebuilt nothing despite the mutation")
	}
	if c2.BoxesReused != i2.BoxesReused || c2.BoxesBuilt != i2.BoxesBuilt {
		t.Errorf("reuse split diverges: compiled %d/%d vs interpreted %d/%d",
			c2.BoxesReused, c2.BoxesBuilt, i2.BoxesReused, i2.BoxesBuilt)
	}
}
