package vclstdlib_test

import (
	"strings"
	"testing"

	"visualinux/internal/expr"
	"visualinux/internal/graph"
	"visualinux/internal/kernelsim"
	"visualinux/internal/render"
	"visualinux/internal/vclstdlib"
	"visualinux/internal/viewcl"
	"visualinux/internal/viewql"
)

func newInterp(t testing.TB, k *kernelsim.Kernel) *viewcl.Interp {
	env := expr.NewEnv(k.Target())
	kernelsim.RegisterHelpers(env)
	in := viewcl.New(env)
	for id, set := range kernelsim.FlagSets() {
		var fl []viewcl.Flag
		for _, b := range set {
			fl = append(fl, viewcl.Flag{Mask: b.Mask, Name: b.Name})
		}
		in.Flags[id] = fl
	}
	return in
}

// minBoxes is the plausibility floor per figure: each plot must extract at
// least this many boxes from the simulated kernel.
var minBoxes = map[string]int{
	"3-4": 15, "3-6": 10, "4-5": 17, "6-1": 20, "7-1": 5,
	"8-2": 10, "8-4": 20, "9-2": 10, "11-1": 5, "12-3": 5,
	"13-3": 7, "14-3": 8, "15-1": 10, "16-2": 4, "17-1": 4,
	"17-6": 3, "19-1/2": 10, "workqueue": 10, "proc2vfs": 10,
	"socketconn": 10,
}

func TestAllFiguresExtract(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	for _, fig := range vclstdlib.Figures() {
		fig := fig
		t.Run(fig.ID, func(t *testing.T) {
			in := newInterp(t, k)
			res, err := in.RunSource(fig.ID, fig.Program)
			if err != nil {
				t.Fatalf("figure %s: %v", fig.ID, err)
			}
			for _, e := range res.Errors {
				t.Errorf("figure %s extraction issue: %v", fig.ID, e)
			}
			g := res.Graph
			if len(g.Boxes) < minBoxes[fig.ID] {
				t.Errorf("figure %s: only %d boxes (want >= %d)\n%s",
					fig.ID, len(g.Boxes), minBoxes[fig.ID],
					render.HistogramString(render.TypeHistogram(g)))
			}
			if g.RootID == "" {
				t.Errorf("figure %s: no root", fig.ID)
			}
			// The plot must render without panicking and mention the root.
			txt := render.Text(g)
			if !strings.Contains(txt, "==") {
				t.Errorf("figure %s: empty rendering", fig.ID)
			}
			// DOT and JSON forms must be producible too.
			if dot := render.DOT(g); !strings.HasPrefix(dot, "digraph") {
				t.Errorf("figure %s: bad dot", fig.ID)
			}
			if j := render.ToJSON(g); len(j.Boxes) != len(g.Boxes) {
				t.Errorf("figure %s: json lost boxes", fig.ID)
			}
		})
	}
}

// TestTable3Objectives applies each figure's reference ViewQL and checks it
// changes the visualization (the Table 3 usability claims).
func TestTable3Objectives(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	for _, fig := range vclstdlib.Figures() {
		if fig.Objective == nil {
			continue
		}
		fig := fig
		t.Run(fig.ID, func(t *testing.T) {
			in := newInterp(t, k)
			res, err := in.RunSource(fig.ID, fig.Program)
			if err != nil {
				t.Fatalf("extract: %v", err)
			}
			g := res.Graph
			before := countAttrs(g)
			eng := viewql.NewEngine(g)
			if err := eng.Apply(fig.Objective.ViewQL); err != nil {
				t.Fatalf("objective ViewQL: %v", err)
			}
			after := countAttrs(g)
			if after == before {
				t.Errorf("objective had no effect (attrs %d -> %d)", before, after)
			}
		})
	}
}

func countAttrs(g *graph.Graph) int {
	n := 0
	for _, b := range g.All() {
		n += len(b.Attrs)
		for _, vn := range b.ViewSeq {
			for _, it := range b.Views[vn].Items {
				n += len(it.Attrs)
			}
		}
	}
	return n
}

func TestFigureLOCWithinPaperBallpark(t *testing.T) {
	// Our self-contained programs should be within a sane factor of the
	// paper's per-figure LOC (same order of magnitude of effort).
	for _, fig := range vclstdlib.Figures() {
		loc := fig.LOC()
		if loc < 5 {
			t.Errorf("figure %s: suspiciously small program (%d LOC)", fig.ID, loc)
		}
		if fig.PaperLOC > 0 && loc > fig.PaperLOC*3 {
			t.Errorf("figure %s: %d LOC vs paper's %d — too far off", fig.ID, loc, fig.PaperLOC)
		}
	}
}

func TestMapleTreeCaseStudy(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	in := newInterp(t, k)
	res, err := in.RunSource("maple", vclstdlib.MapleTreeProgram)
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	g := res.Graph
	nodes := g.ByType("maple_node")
	if len(nodes) < 2 {
		t.Fatalf("maple tree too small: %d nodes", len(nodes))
	}
	vmas := g.ByType("vm_area_struct")
	if len(vmas) < 5 {
		t.Fatalf("too few VMAs: %d", len(vmas))
	}
	// Fig 4 customization: collapse slots, trim writable areas.
	eng := viewql.NewEngine(g)
	if err := eng.Apply(vclstdlib.MapleTreeCustomization); err != nil {
		t.Fatalf("customize: %v", err)
	}
	vis := render.Visible(g)
	for _, b := range vmas {
		w, _ := b.Member("is_writable")
		if w.Raw != 0 && vis[b.ID] {
			t.Errorf("writable VMA %s still visible", b.ID)
		}
		if w.Raw == 0 && !vis[b.ID] {
			t.Errorf("read-only VMA %s hidden", b.ID)
		}
	}
	// The distilled address-space view keeps VMAs sorted by vm_start.
	var mmBox *graph.Box
	for _, b := range g.ByType("mm_struct") {
		mmBox = b
	}
	if mmBox == nil {
		t.Fatal("no mm box")
	}
	space, ok := mmBox.Member("mm_addr_space")
	if !ok {
		t.Fatal("no distilled address space")
	}
	var prev uint64
	count := 0
	for _, id := range space.Elems {
		if id == "" {
			continue
		}
		b, _ := g.Get(id)
		st, _ := b.Member("vm_start")
		if st.Raw < prev {
			t.Errorf("distilled VMA list out of order at %s", id)
		}
		prev = st.Raw
		count++
	}
	if count != len(vmas) {
		t.Errorf("distilled list has %d VMAs, tree has %d", count, len(vmas))
	}
}

func TestStackRotCaseStudy(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	in := newInterp(t, k)
	res, err := in.RunSource("stackrot", vclstdlib.StackRotProgram)
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	g := res.Graph
	if len(g.Roots) != 2 {
		t.Fatalf("want 2 roots (mm + rcu), got %d", len(g.Roots))
	}
	// The dying node must be reachable from BOTH roots: through the tree
	// and through the RCU callback list (the UAF signature).
	dying := graph.BoxID("MapleLeaf", k.StackRotNode.Addr)
	fromMM := g.Reachable([]string{g.Roots[0]})
	fromRCU := g.Reachable([]string{g.Roots[1]})
	if !fromMM[dying] {
		t.Errorf("dying node not in the maple tree plot")
	}
	if !fromRCU[dying] {
		t.Errorf("dying node not reachable from the RCU list")
	}
	// The rcu callback must be labeled mt_free_rcu.
	found := false
	for _, b := range g.ByType("rcu_head") {
		if f, ok := b.Member("func"); ok && f.Value == "mt_free_rcu" {
			found = true
		}
	}
	if !found {
		t.Errorf("no mt_free_rcu callback box")
	}
	// Lock state: two readers hold mmap_lock.
	for _, b := range g.ByType("mm_struct") {
		r, _ := b.Member("mmap_lock_readers")
		if r.Raw != 2 {
			t.Errorf("mmap_lock readers = %d, want 2", r.Raw)
		}
	}
}

func TestDirtyPipeCaseStudy(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	in := newInterp(t, k)
	res, err := in.RunSource("dirtypipe", vclstdlib.DirtyPipeProgram)
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	g := res.Graph
	// Before customization: many pages visible.
	visBefore := 0
	for _, b := range g.ByType("page") {
		if render.Visible(g)[b.ID] {
			visBefore++
		}
	}
	eng := viewql.NewEngine(g)
	if err := eng.Apply(vclstdlib.DirtyPipeCustomization); err != nil {
		t.Fatalf("customize: %v", err)
	}
	vis := render.Visible(g)
	// After: the shared page must remain, the anon pipe page must be gone.
	shared := graph.BoxID("PageBox", k.SharedPage.Addr)
	if !vis[shared] {
		t.Fatalf("shared page trimmed away")
	}
	trimmedPipePages := 0
	for _, b := range g.ByType("page") {
		if b.Trimmed() {
			trimmedPipePages++
		}
	}
	if trimmedPipePages == 0 {
		t.Errorf("no pipe-only pages trimmed")
	}
	// The buggy buffer shows CAN_MERGE.
	foundBug := false
	for _, b := range g.ByType("pipe_buffer") {
		fl, _ := b.Member("flags")
		pg, _ := b.Member("page")
		if strings.Contains(fl.Value, "PIPE_BUF_FLAG_CAN_MERGE") && pg.TargetID == shared {
			foundBug = true
		}
	}
	if !foundBug {
		t.Errorf("CAN_MERGE flag on the shared page's buffer not visualized")
	}
}

func TestQuickstart(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	in := newInterp(t, k)
	res, err := in.RunSource("quickstart", vclstdlib.QuickstartProgram)
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	g := res.Graph
	eng := viewql.NewEngine(g)
	if err := eng.Apply(vclstdlib.QuickstartCustomization); err != nil {
		t.Fatalf("customize: %v", err)
	}
	// pid 100 and its children stay expanded; everything else collapses.
	for _, b := range g.ByType("task_struct") {
		pid, _ := b.Member("pid")
		ppid, _ := b.Member("ppid")
		keep := pid.Raw == 100 || ppid.Raw == 100
		if keep && b.Collapsed() {
			t.Errorf("pid %d collapsed", pid.Raw)
		}
		if !keep && !b.Collapsed() {
			t.Errorf("pid %d not collapsed", pid.Raw)
		}
	}
	_ = k
}
