package vclstdlib_test

import (
	"strings"
	"testing"

	"visualinux/internal/graph"
	"visualinux/internal/kernelsim"
	"visualinux/internal/render"
	"visualinux/internal/vclstdlib"
	"visualinux/internal/viewql"
)

// The paper's debugging sessions are dynamic: pause, plot, step the
// kernel, re-plot, and watch the figure evolve (§5.3). These tests replay
// both CVEs as state transitions, asserting that successive plots show the
// bug appearing.

func TestStackRotDynamics(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{DisableStackRot: true})
	// The program plots ${&stackrot_mm}; with the pre-staged state
	// disabled, point the symbol at the victim mm ourselves.
	victim := k.ByPID[100]
	k.Symbol("stackrot_mm", k.At("mm_struct", victim.Get("mm")))
	in := newInterp(t, k)

	// Plot 1: before the fateful mmap — RCU callback list is empty.
	res1, err := in.RunSource("before", vclstdlib.StackRotProgram)
	if err != nil {
		t.Fatalf("plot 1: %v", err)
	}
	if n := len(res1.Graph.ByType("rcu_head")); n != 0 {
		t.Fatalf("rcu heads before = %d", n)
	}
	// Track the old tree's nodes by address (the RCU link re-views every
	// dead node as a MapleLeaf box, so IDs may differ across plots).
	nodesBefore := map[uint64]bool{}
	for _, b := range res1.Graph.ByType("maple_node") {
		nodesBefore[b.Addr] = true
	}

	// The "expand_stack" moment: a new mapping rebuilds the maple tree;
	// the replaced nodes are queued for RCU-deferred free while readers
	// may still hold pointers into them.
	if _, err := k.MapRegion(100, 0x7100_0000_0000, 0x7100_0002_0000,
		kernelsim.VMRead|kernelsim.VMWrite, kernelsim.Obj{}); err != nil {
		t.Fatalf("map: %v", err)
	}

	// Plot 2: the RCU waiting list now holds the dead nodes, each linking
	// back (container_of) to its maple_node box — the old tree nodes the
	// reader could still dereference.
	in2 := newInterp(t, k)
	res2, err := in2.RunSource("after", vclstdlib.StackRotProgram)
	if err != nil {
		t.Fatalf("plot 2: %v", err)
	}
	heads := res2.Graph.ByType("rcu_head")
	if len(heads) == 0 {
		t.Fatal("no RCU callbacks after the rebuild")
	}
	deadLinked := 0
	for _, h := range heads {
		if f, ok := h.Member("func"); !ok || f.Value != "mt_free_rcu" {
			t.Errorf("callback func = %v", f.Value)
		}
		if e, ok := h.Member("embedded_in"); ok && e.TargetID != "" {
			deadLinked++
			// The dead node was part of the *old* tree.
			if !nodesBefore[graph.ParseBoxAddr(e.TargetID)] {
				t.Errorf("dead node %s was not in the pre-step tree", e.TargetID)
			}
		}
	}
	if deadLinked == 0 {
		t.Error("no dead maple node linked from the RCU list")
	}
	// And the new tree does NOT contain the dead nodes (use-after-free:
	// only stale readers see them).
	var mmRoot string
	for _, id := range res2.Graph.Roots {
		if strings.HasPrefix(id, "MMStruct") {
			mmRoot = id
		}
	}
	fromTree := res2.Graph.Reachable([]string{mmRoot})
	for _, h := range heads {
		if e, ok := h.Member("embedded_in"); ok && e.TargetID != "" && fromTree[e.TargetID] {
			t.Errorf("dead node %s still reachable from the NEW tree", e.TargetID)
		}
	}
}

func TestDirtyPipeDynamics(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{DisableDirtyPipe: true})
	pipe := k.MakePipe()
	k.Symbol("dyn_pipe", k.At("pipe_inode_info", pipe.Addr))

	prog := `
define PageBox as Box<page> [
    Text index
    Text<flag:page_flags> flags: flags
]
define AddressSpace as Box<address_space> [
    Text nrpages
    Container pages: XArray(${@this->i_pages}).forEach |e| {
        yield PageBox(@e)
    }
]
define PipeBuffer as Box<pipe_buffer> [
    Text len
    Text<flag:pipe_buf_flags> flags: flags
    Link page -> PageBox(${@this->page})
]
define Pipe as Box<pipe_inode_info> [
    Text head, tail
    Container bufs: PipeRing(@this).forEach |b| {
        yield PipeBuffer(@b)
    }
]
define FileBox as Box<file> [
    Text name: ${@this->f_path.dentry->d_iname}
    Link pagecache -> AddressSpace(${@this->f_mapping})
]
f = FileBox(${find_task(100)->files->fdt->fd[3]})
p = Pipe(${&dyn_pipe})
plot @f
plot @p
`
	sharedPages := func(g *graph.Graph) int {
		// pages reachable from both the file root and the pipe root
		fromFile := g.Reachable([]string{g.Roots[0]})
		fromPipe := g.Reachable([]string{g.Roots[1]})
		n := 0
		for _, b := range g.ByType("page") {
			if fromFile[b.ID] && fromPipe[b.ID] {
				n++
			}
		}
		return n
	}

	// Step 0: empty pipe — nothing shared.
	res0, err := newInterp(t, k).RunSource("step0", prog)
	if err != nil {
		t.Fatalf("step0: %v", err)
	}
	if n := sharedPages(res0.Graph); n != 0 {
		t.Fatalf("shared before = %d", n)
	}

	// Step 1: normal pipe write — still nothing shared.
	if err := k.PipeWrite(pipe, 128); err != nil {
		t.Fatal(err)
	}
	res1, err := newInterp(t, k).RunSource("step1", prog)
	if err != nil {
		t.Fatalf("step1: %v", err)
	}
	if n := sharedPages(res1.Graph); n != 0 {
		t.Fatalf("shared after write = %d", n)
	}

	// Step 2: the buggy splice — one page now shared, CAN_MERGE visible.
	// (find_task(100)'s fd 3 is a data file with a page cache.)
	file := k.At("file", mustEval(t, k, "find_task(100)->files->fdt->fd[3]"))
	if err := k.SpliceToPipe(file, 0, pipe, 512, true); err != nil {
		t.Fatal(err)
	}
	res2, err := newInterp(t, k).RunSource("step2", prog)
	if err != nil {
		t.Fatalf("step2: %v", err)
	}
	if n := sharedPages(res2.Graph); n != 1 {
		t.Fatalf("shared after splice = %d, want 1", n)
	}
	// The paper's ViewQL isolates it.
	eng := viewql.NewEngine(res2.Graph)
	if err := eng.Apply(`
file_pgc = SELECT file->pagecache FROM *
file_pgs = SELECT page FROM REACHABLE(file_pgc)
pipe_buf = SELECT pipe_inode_info->bufs FROM *
pipe_pgs = SELECT page FROM REACHABLE(pipe_buf)
UPDATE pipe_pgs \ file_pgs WITH trimmed: true
`); err != nil {
		t.Fatal(err)
	}
	vis := render.Visible(res2.Graph)
	visiblePipePages := 0
	for _, b := range res2.Graph.ByType("pipe_buffer") {
		pg, _ := b.Member("page")
		if pg.TargetID != "" && vis[pg.TargetID] {
			visiblePipePages++
			fl, _ := b.Member("flags")
			if !strings.Contains(fl.Value, "CAN_MERGE") {
				t.Errorf("isolated buffer lacks the bug flag: %q", fl.Value)
			}
		}
	}
	if visiblePipePages != 1 {
		t.Errorf("visible pipe pages after trim = %d", visiblePipePages)
	}

	// Step 3: the attacker's write dirties the file's page — visible as
	// PG_dirty in the next plot.
	if err := k.PipeWrite(pipe, 64); err != nil {
		t.Fatal(err)
	}
	res3, err := newInterp(t, k).RunSource("step3", prog)
	if err != nil {
		t.Fatalf("step3: %v", err)
	}
	corrupted := false
	for _, b := range res3.Graph.ByType("page") {
		fl, _ := b.Member("flags")
		if strings.Contains(fl.Value, "PG_dirty") {
			corrupted = true
		}
	}
	if !corrupted {
		t.Error("the corruption (PG_dirty on a cache page) is not visible")
	}
}

// mustEval evaluates a C expression against the kernel for test plumbing.
func mustEval(t *testing.T, k *kernelsim.Kernel, src string) uint64 {
	t.Helper()
	in := newInterp(t, k)
	res, err := in.RunSource("eval", `
define Probe as Box<file> [
    Text<raw_ptr> self: ${@this}
]
p = Probe(${`+src+`})
plot @p
`)
	if err != nil {
		t.Fatalf("eval %s: %v", src, err)
	}
	root, _ := res.Graph.Get(res.Graph.RootID)
	return root.Addr
}
