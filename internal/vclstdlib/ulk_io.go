package vclstdlib

// I/O and IPC figures: ULK Fig 13-3, 14-3, 19-1/2, plus the three figures
// the paper adds beyond ULK: the workqueue (paper Fig 6), process-to-VFS,
// and socket connections.

// Fig13_3 plots the driver model: kset -> kobjects -> devices with their
// drivers and bus (ULK Fig 13-3).
const Fig13_3 = `
define BusType as Box<bus_type> [
    Text name
    Text<fptr> match, probe
]

define Driver as Box<device_driver> [
    Text name
    Text<fptr> probe
    Link bus -> BusType(${@this->bus})
]

define Kobject as Box<kobject> [
    Text name
    Text refcount: ${@this->kref.refcount.refs}
    Text<bool> in_sysfs: ${@this->state_in_sysfs}
    Link parent -> Kobject(${@this->parent})
]

define Device as Box<device> [
    Box kobj: Kobject(${&@this->kobj})
    Link driver -> Driver(${@this->driver})
    Link bus -> BusType(${@this->bus})
    Link parent -> Device(${@this->parent})
]

define Kset as Box<kset> [
    Box kobj: Kobject(${&@this->kobj})
    Container list: List(${@this->list}).forEach |n| {
        yield Device<device.kobj.entry>(@n)
    }
]

root = Kset(${&devices_kset})
plot @root
`

// Fig14_3 plots block device descriptors: the super_block list, each with
// its backing block_device partition and gendisk (ULK Fig 14-3).
const Fig14_3 = `
define Gendisk as Box<gendisk> [
    Text disk_name, major, minors
]

define BlockDevice as Box<block_device> [
    Text<u64:x> bd_dev
    Text bd_partno, bd_start_sect, bd_nr_sectors
    Link bd_disk -> Gendisk(${@this->bd_disk})
]

define FsType as Box<file_system_type> [
    Text name
]

define SuperBlock as Box<super_block> [
    Text s_id
    Text<u64:x> s_dev, s_magic
    Text s_blocksize
    Link s_type -> FsType(${@this->s_type})
    Link s_bdev -> BlockDevice(${@this->s_bdev})
]

define SuperBlocks as Box<list_head> [
    Container list: List(@this).forEach |n| {
        yield SuperBlock<super_block.s_list>(@n)
    }
]

root = SuperBlocks(${&super_blocks})
plot @root
`

// Fig19_12 plots System V IPC: the semaphore and message-queue IDRs with
// their undo/pending structures (ULK Fig 19-1 and 19-2, merged as the
// paper does).
const Fig19_12 = `
define TaskRef as Box<task_struct> [
    Text pid, comm
]

define SemQueue as Box<sem_queue> [
    Text pid, nsops
    Text<bool> alter
    Link sleeper -> TaskRef(${@this->sleeper})
]

define Sem as Box<sem> [
    Text semval, sempid
    Container pending_alter: List(${@this->pending_alter}).forEach |n| {
        yield SemQueue<sem_queue.list>(@n)
    }
]

define SemArray as Box<sem_array> [
    Text id: ${@this->sem_perm.id}
    Text<u64:x> key: ${@this->sem_perm.key}
    Text sem_nsems
    Container sems: Array(${@this->sems}, ${@this->sem_nsems}).forEach |s| {
        yield Sem(@s)
    }
]

define SemIdrNode as Box<xa_node> [
    Text shift, count
    Container slots: Array(${@this->slots}).forEach |s| {
        yield switch ${@s == 0} {
            case ${true}: NULL
            otherwise: switch ${xa_is_node(@s)} {
                case ${true}: SemIdrNode(${xa_to_node(@s)})
                otherwise: SemArray(@s)
            }
        }
    }
]

define MsgMsg as Box<msg_msg> [
    Text m_type, m_ts
]

define MsgQueue as Box<msg_queue> [
    Text id: ${@this->q_perm.id}
    Text<u64:x> key: ${@this->q_perm.key}
    Text q_qnum, q_cbytes, q_qbytes
    Container q_messages: List(${@this->q_messages}).forEach |n| {
        yield MsgMsg<msg_msg.m_list>(@n)
    }
]

define MsgIdrNode as Box<xa_node> [
    Text shift, count
    Container slots: Array(${@this->slots}).forEach |s| {
        yield switch ${@s == 0} {
            case ${true}: NULL
            otherwise: switch ${xa_is_node(@s)} {
                case ${true}: MsgIdrNode(${xa_to_node(@s)})
                otherwise: MsgQueue(@s)
            }
        }
    }
]

define IpcNS as Box<ipc_namespace> [
    Text sem_in_use: ${@this->ids[0].in_use}
    Text msg_in_use: ${@this->ids[1].in_use}
    Link sem_idr -> switch ${xa_is_node(@this->ids[0].ipcs_idr.idr_rt.xa_head)} {
        case ${true}: SemIdrNode(${xa_to_node(@this->ids[0].ipcs_idr.idr_rt.xa_head)})
        otherwise: SemArray(${@this->ids[0].ipcs_idr.idr_rt.xa_head})
    }
    Link msg_idr -> switch ${xa_is_node(@this->ids[1].ipcs_idr.idr_rt.xa_head)} {
        case ${true}: MsgIdrNode(${xa_to_node(@this->ids[1].ipcs_idr.idr_rt.xa_head)})
        otherwise: MsgQueue(${@this->ids[1].ipcs_idr.idr_rt.xa_head})
    }
]

root = IpcNS(${&init_ipc_ns})
plot @root
`

// FigWorkqueue plots the mm_percpu_wq work queue: worker pools whose
// heterogeneous worklists are recovered through container_of plus the
// function-pointer type witness — the paper's Fig 6.
const FigWorkqueue = `
define VmstatWork as Box<vmstat_work_item> [
    Text kind: "vmstat_work_item"
    Text cpu, stat_threshold
    Text<fptr> func: ${@this->dwork.work.func}
]

define LruDrainWork as Box<lru_drain_work_item> [
    Text kind: "lru_drain_work_item"
    Text cpu, nr_pages
    Text<fptr> func: ${@this->work.func}
]

define MmuGatherWork as Box<mmu_gather_work_item> [
    Text kind: "mmu_gather_work_item"
    Text freed_tables
    Text<fptr> func: ${@this->work.func}
]

define GenericWork as Box<work_struct> [
    Text kind: "work_struct"
    Text<fptr> func
]

define Worker as Box<worker> [
    Text id, desc
]

define WorkerPool as Box<worker_pool> [
    Text cpu, id, nr_workers
    Container workers: List(${@this->workers}).forEach |n| {
        yield Worker<worker.node>(@n)
    }
    Container worklist: List(${@this->worklist}).forEach |n| {
        yield switch ${container_of(@n, work_struct, entry)->func} {
            case ${vmstat_update}: VmstatWork<vmstat_work_item.dwork.work.entry>(@n)
            case ${lru_add_drain_per_cpu}: LruDrainWork<lru_drain_work_item.work.entry>(@n)
            case ${tlb_remove_table_smp_sync}: MmuGatherWork<mmu_gather_work_item.work.entry>(@n)
            otherwise: GenericWork<work_struct.entry>(@n)
        }
    }
]

define PoolWQ as Box<pool_workqueue> [
    Text nr_active, max_active, refcnt
    Link pool -> WorkerPool(${@this->pool})
]

define Workqueue as Box<workqueue_struct> [
    Text name
    Container pwqs: List(${@this->pwqs}).forEach |n| {
        yield PoolWQ<pool_workqueue.pwqs_node>(@n)
    }
]

root = Workqueue(${&mm_percpu_wq})
plot @root
`

// FigProc2VFS plots the path from a process to the filesystem: task ->
// files -> fd -> file -> dentry -> inode -> superblock (figure #20).
const FigProc2VFS = `
define SuperBlock as Box<super_block> [
    Text s_id
    Text<u64:x> s_magic
]

define Inode as Box<inode> [
    Text i_ino, i_size, i_nlink
    Text<u64:x> i_mode
    Link i_sb -> SuperBlock(${@this->i_sb})
]

define Dentry as Box<dentry> [
    Text name: d_iname
    Link d_parent -> Dentry(${@this->d_parent})
    Link d_inode -> Inode(${@this->d_inode})
]

define FileBox as Box<file> [
    Text f_pos, f_count
    Text<u64:x> f_flags
    Link dentry -> Dentry(${@this->f_path.dentry})
]

define FilesStruct as Box<files_struct> [
    Text count, next_fd
    Container fd: Array(${@this->fdt->fd}, 8).forEach |f| {
        yield switch ${@f == 0} {
            case ${true}: NULL
            otherwise: FileBox(@f)
        }
    }
]

define Task as Box<task_struct> [
    Text pid, comm
    Link files -> FilesStruct(${@this->files})
]

root = Task(${find_task(100)})
plot @root
`

// FigSocketConn plots live socket connections: sockets with their socks,
// receive/send skb queues, and owning files (figure #21 — the network
// chapter ULK never had).
const FigSocketConn = `
define SkBuff as Box<sk_buff> [
    Text len, data_len
]

define Sock as Box<sock> [
    Text state: ${@this->__sk_common.skc_state}
    Text sport: ${@this->__sk_common.skc_num}
    Text dport: ${@this->__sk_common.skc_dport}
    Text<u64:x> daddr: ${@this->__sk_common.skc_daddr}
    Text rx_qlen: ${@this->sk_receive_queue.qlen}
    Text tx_qlen: ${@this->sk_write_queue.qlen}
    Container rx_queue: List(${@this->sk_receive_queue}).forEach |n| {
        yield SkBuff<sk_buff.next>(@n)
    }
    Container tx_queue: List(${@this->sk_write_queue}).forEach |n| {
        yield SkBuff<sk_buff.next>(@n)
    }
]

define FileRef as Box<file> [
    Text name: ${@this->f_path.dentry->d_iname}
]

define Socket as Box<socket> [
    Text<enum:socket_state> state: state
    Text type
    Link sk -> Sock(${@this->sk})
    Link file -> FileRef(${@this->file})
]

root = Box [
    Container sockets: Array(${all_socks}, ${nr_socks}).forEach |s| {
        yield Socket(@s)
    }
]
plot @root
`
