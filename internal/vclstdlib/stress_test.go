package vclstdlib_test

import (
	"testing"

	"visualinux/internal/kernelsim"
	"visualinux/internal/vclstdlib"
	"visualinux/internal/viewql"
)

// TestDeepMapleTree: a process with many mappings produces a multi-level
// maple tree (leaf level + at least two internal levels) that the ViewCL
// program still unwraps completely and distills in order.
func TestDeepMapleTree(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{VMAsPerProcess: 160})
	g := extractFig(t, k, "9-2")

	leaves, internals := 0, 0
	for _, b := range g.ByType("maple_node") {
		switch b.Label {
		case "MapleLeaf":
			leaves++
		case "MapleARange":
			internals++
		}
	}
	if leaves < 10 {
		t.Errorf("leaves = %d (tree too shallow for the stress workload)", leaves)
	}
	if internals < 2 {
		t.Errorf("internal nodes = %d; want a multi-level tree", internals)
	}

	vmas := g.ByType("vm_area_struct")
	if len(vmas) < 150 {
		t.Errorf("VMAs extracted = %d", len(vmas))
	}
	// The distilled list must still be complete and sorted.
	for _, mm := range g.ByType("mm_struct") {
		space, ok := mm.Member("mm_addr_space")
		if !ok {
			t.Fatal("no distilled view")
		}
		var prev uint64
		n := 0
		for _, id := range space.Elems {
			if id == "" {
				continue
			}
			b, _ := g.Get(id)
			st, _ := b.Member("vm_start")
			if st.Raw < prev {
				t.Fatalf("distill order broken at %s", id)
			}
			prev = st.Raw
			n++
		}
		if n != len(vmas) {
			t.Errorf("distilled %d of %d VMAs", n, len(vmas))
		}
	}
}

// TestLargePageCache: a file with thousands of pages produces a multi-level
// xarray that extracts fully and in index order.
func TestLargePageCache(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{PagesPerFile: 600})
	in := newInterp(t, k)
	// Raise the per-container ceiling for the stress sweep.
	in.MaxElems = 8192
	res, err := in.RunSource("big-cache", `
define PageBox as Box<page> [
    Text index
]
define XaNode as Box<xa_node> [
    Text shift, count
    Container slots: Array(${@this->slots}).forEach |s| {
        yield switch ${@s == 0} {
            case ${true}: NULL
            otherwise: switch ${xa_is_node(@s)} {
                case ${true}: XaNode(${xa_to_node(@s)})
                otherwise: PageBox(@s)
            }
        }
    }
]
root = XaNode(${xa_to_node(find_task(1)->files->fdt->fd[3]->f_mapping->i_pages.xa_head)})
plot @root
`)
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	g := res.Graph
	pages := g.ByType("page")
	if len(pages) != 600 {
		t.Fatalf("pages = %d, want 600", len(pages))
	}
	nodes := g.ByType("xa_node")
	if len(nodes) < 10 {
		t.Errorf("xa nodes = %d; want a multi-level tree", len(nodes))
	}
	// Root shift must be 6 (two levels: 64*64 >= 600 > 64).
	root, _ := g.Get(g.RootID)
	if sh, _ := root.Member("shift"); sh.Raw != 6 {
		t.Errorf("root shift = %d", sh.Raw)
	}
}

// TestBigWorkloadEndToEnd: the full figure set extracts against a much
// larger population without errors or runaway costs.
func TestBigWorkloadEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("stress")
	}
	k := kernelsim.Build(kernelsim.Options{Processes: 20, ThreadsPerProc: 4})
	if len(k.Tasks) < 85 {
		t.Fatalf("tasks = %d", len(k.Tasks))
	}
	for _, fig := range vclstdlib.Figures() {
		in := newInterp(t, k)
		res, err := in.RunSource(fig.ID, fig.Program)
		if err != nil {
			t.Errorf("figure %s: %v", fig.ID, err)
			continue
		}
		if len(res.Errors) > 0 {
			t.Errorf("figure %s: %d extraction issues, first: %v", fig.ID, len(res.Errors), res.Errors[0])
		}
	}
	// ViewQL over the big process tree stays correct.
	g := extractFig(t, k, "3-4")
	e := viewql.NewEngine(g)
	if err := e.Apply(`
big = SELECT task_struct FROM * WHERE pid >= 100
UPDATE big WITH collapsed: true
`); err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, b := range g.ByType("task_struct") {
		if b.Collapsed() {
			n++
		}
	}
	if n < 80 {
		t.Errorf("collapsed = %d", n)
	}
}

// TestObjectBudget: the interpreter's safety valve stops runaway
// extractions instead of exhausting memory.
func TestObjectBudget(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{Processes: 10})
	in := newInterp(t, k)
	in.MaxObjects = 25
	fig, _ := vclstdlib.FigureByID("3-4")
	res, err := in.RunSource("budget", fig.Program)
	if err == nil && (res == nil || len(res.Errors) == 0) {
		t.Fatal("budget overrun not reported")
	}
	if res != nil && len(res.Graph.Boxes) > 25 {
		t.Errorf("budget exceeded: %d boxes", len(res.Graph.Boxes))
	}
}
