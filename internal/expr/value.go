// Package expr implements a C expression parser and evaluator over a debug
// target. It is the stand-in for GDB's expression engine: ViewCL's ${...}
// escapes are parsed and evaluated here, including member access across
// pointers, casts, array indexing, arithmetic, comparisons, and calls into a
// registry of helper functions (the analogue of the paper's ~500 lines of
// GDB scripts exposing static-inline kernel functions).
package expr

import (
	"fmt"

	"visualinux/internal/ctypes"
	"visualinux/internal/target"
)

// Value is the result of evaluating an expression. A Value is either
//
//   - a scalar rvalue: Type + Bits (integers, enums, bools, pointers);
//   - an lvalue: an object living in target memory at Addr with Type
//     (structs, unions, arrays — and scalars before rvalue conversion);
//   - a synthetic string produced by a helper function (IsStr).
type Value struct {
	Type    *ctypes.Type
	Bits    uint64 // scalar payload (sign-extended for signed types)
	Addr    uint64 // location for lvalues
	HasAddr bool
	Str     string
	IsStr   bool
}

// MakeInt builds an integer rvalue of the given type.
func MakeInt(t *ctypes.Type, v uint64) Value { return Value{Type: t, Bits: v} }

// MakeBool builds a boolean rvalue.
func MakeBool(b bool) Value {
	var v uint64
	if b {
		v = 1
	}
	return Value{Type: ctypes.Bool8, Bits: v}
}

// MakePointer builds a pointer rvalue of type elem*.
func MakePointer(elem *ctypes.Type, addr uint64) Value {
	return Value{Type: elem.PointerTo(), Bits: addr}
}

// MakeLValue builds an lvalue designating an object of type t at addr.
func MakeLValue(t *ctypes.Type, addr uint64) Value {
	return Value{Type: t, Addr: addr, HasAddr: true}
}

// MakeString builds a synthetic string value.
func MakeString(s string) Value { return Value{IsStr: true, Str: s} }

// IsZero reports whether the value is a zero scalar (NULL, 0, false).
// Lvalues are never zero: they designate an object.
func (v Value) IsZero() bool {
	if v.IsStr {
		return v.Str == ""
	}
	return !v.HasAddr && v.Bits == 0
}

// Uint returns the scalar payload as unsigned.
func (v Value) Uint() uint64 { return v.Bits }

// Int returns the scalar payload as signed, sign-extending from the value's
// type width.
func (v Value) Int() int64 {
	t := v.Type.Strip()
	if t == nil {
		return int64(v.Bits)
	}
	sz := t.Size()
	if sz == 0 || sz >= 8 {
		return int64(v.Bits)
	}
	shift := (8 - sz) * 8
	return int64(v.Bits<<shift) >> shift
}

// Bool interprets the value as a C truth value.
func (v Value) Bool() bool {
	if v.IsStr {
		return v.Str != ""
	}
	return v.Bits != 0
}

// String renders the value for diagnostics.
func (v Value) String() string {
	switch {
	case v.IsStr:
		return fmt.Sprintf("%q", v.Str)
	case v.HasAddr:
		return fmt.Sprintf("(%s) @%#x", v.Type, v.Addr)
	case v.Type != nil && v.Type.IsPointer():
		return fmt.Sprintf("(%s) %#x", v.Type, v.Bits)
	case v.Type != nil && v.Type.Strip() != nil && v.Type.Strip().Signed:
		return fmt.Sprintf("%d", v.Int())
	default:
		return fmt.Sprintf("%d", v.Bits)
	}
}

// Func is a helper function callable from expressions, the analogue of the
// paper's GDB-script-exposed kernel functions (cpu_rq, mte_to_node, ...).
type Func func(env *Env, args []Value) (Value, error)

// Env is the evaluation environment: the target plus helper functions and
// spliced ViewCL variables (@name).
type Env struct {
	Target target.Target
	Funcs  map[string]Func
	Vars   map[string]Value
	// Resolver, when set, is consulted for @name references missing from
	// Vars. ViewCL installs its lexical scope chain here so where-clause
	// bindings are forced lazily on first ${...} reference.
	Resolver func(name string) (Value, bool)
}

// NewEnv builds an environment over t with empty tables.
func NewEnv(t target.Target) *Env {
	return &Env{Target: t, Funcs: make(map[string]Func), Vars: make(map[string]Value)}
}

// RegisterFunc installs a helper function.
func (e *Env) RegisterFunc(name string, f Func) { e.Funcs[name] = f }

// Clone returns a copy sharing Funcs but with a fresh Vars map seeded from
// the receiver. ViewCL scopes use this for where-clause bindings.
func (e *Env) Clone() *Env {
	ne := &Env{Target: e.Target, Funcs: e.Funcs, Vars: make(map[string]Value, len(e.Vars))}
	for k, v := range e.Vars {
		ne.Vars[k] = v
	}
	return ne
}

// Types is a shorthand for the target's type registry.
func (e *Env) Types() *ctypes.Registry { return e.Target.Types() }

// Load performs rvalue conversion: scalar lvalues are fetched from target
// memory; aggregates and rvalues pass through unchanged.
func (e *Env) Load(v Value) (Value, error) {
	if !v.HasAddr || v.IsStr {
		return v, nil
	}
	t := v.Type.Strip()
	switch t.Kind {
	case ctypes.KindInt, ctypes.KindBool, ctypes.KindEnum, ctypes.KindPointer:
		raw, err := target.ReadUint(e.Target, v.Addr, t.Size())
		if err != nil {
			return Value{}, err
		}
		return Value{Type: v.Type, Bits: raw}, nil
	case ctypes.KindFunc:
		// Function designators decay to function pointers, so symbol
		// references compare naturally against loaded fptr fields.
		return Value{Type: ctypes.FuncPtr, Bits: v.Addr}, nil
	default:
		// Aggregates (structs, unions, arrays) stay address-designated;
		// arrays deliberately do not decay so container converters keep
		// their element counts.
		return v, nil
	}
}

// LoadField reads member f of the aggregate lvalue v, handling bitfields.
func (e *Env) LoadField(v Value, f ctypes.Field) (Value, error) {
	if !v.HasAddr {
		return Value{}, fmt.Errorf("expr: member access on non-lvalue %s", v)
	}
	addr := v.Addr + f.Offset
	if f.IsBitfield() {
		raw, err := target.ReadUint(e.Target, addr, f.Type.Size())
		if err != nil {
			return Value{}, err
		}
		raw >>= f.BitOffset
		raw &= (1 << f.BitSize) - 1
		return Value{Type: f.Type, Bits: raw}, nil
	}
	return MakeLValue(f.Type, addr), nil
}
