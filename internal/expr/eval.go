package expr

import (
	"fmt"

	"visualinux/internal/ctypes"
	"visualinux/internal/target"
)

func (n *numberNode) eval(env *Env) (Value, error) {
	t := n.typ
	if t == nil {
		t = env.Types().MustLookup("long")
	}
	return MakeInt(t, n.v), nil
}

func (n *stringNode) eval(env *Env) (Value, error) { return MakeString(n.s), nil }

func (n *atVarNode) eval(env *Env) (Value, error) {
	if v, ok := env.Vars[n.name]; ok {
		return v, nil
	}
	if env.Resolver != nil {
		if v, ok := env.Resolver(n.name); ok {
			return v, nil
		}
	}
	return Value{}, fmt.Errorf("expr: unbound variable @%s", n.name)
}

func (n *identNode) eval(env *Env) (Value, error) {
	switch n.name {
	case "NULL", "nullptr":
		return Value{Type: ctypes.VoidPtr}, nil
	case "true":
		return MakeBool(true), nil
	case "false":
		return MakeBool(false), nil
	}
	// ViewCL-spliced variable without '@' (allowed for convenience when the
	// name does not collide with a symbol).
	if v, ok := env.Vars[n.name]; ok {
		return v, nil
	}
	if sym, ok := env.Target.LookupSymbol(n.name); ok {
		typ := sym.Type
		if typ == nil {
			typ = env.Types().MustLookup("unsigned long")
		}
		return MakeLValue(typ, sym.Addr), nil
	}
	if v, t, ok := env.Types().EnumeratorValue(n.name); ok {
		return MakeInt(t, uint64(v)), nil
	}
	return Value{}, fmt.Errorf("expr: unknown identifier %q", n.name)
}

func (n *castNode) eval(env *Env) (Value, error) {
	v, err := n.x.eval(env)
	if err != nil {
		return Value{}, err
	}
	v, err = env.Load(v)
	if err != nil {
		return Value{}, err
	}
	st := n.typ.Strip()
	switch st.Kind {
	case ctypes.KindPointer:
		return Value{Type: n.typ, Bits: v.Bits}, nil
	case ctypes.KindInt, ctypes.KindBool, ctypes.KindEnum:
		bits := v.Bits
		if sz := st.Size(); sz < 8 {
			bits &= (1 << (sz * 8)) - 1
		}
		return Value{Type: n.typ, Bits: bits}, nil
	case ctypes.KindStruct, ctypes.KindUnion:
		// (struct foo)x is not valid C on scalars, but ViewCL uses it to
		// re-view a pointer as an object: treat the scalar as an address.
		return MakeLValue(n.typ, v.Bits), nil
	}
	return Value{}, fmt.Errorf("expr: unsupported cast to %s", n.typ)
}

func (n *sizeofTypeNode) eval(env *Env) (Value, error) {
	return MakeInt(env.Types().MustLookup("size_t"), n.typ.Size()), nil
}

func (n *memberNode) eval(env *Env) (Value, error) {
	base, err := n.x.eval(env)
	if err != nil {
		return Value{}, err
	}
	if n.arrow || base.Type.IsPointer() || (!base.HasAddr && !base.IsStr) {
		// '->', or be GDB-lenient and auto-dereference '.': load the
		// pointer and re-anchor at its target.
		base, err = env.Load(base)
		if err != nil {
			return Value{}, err
		}
		pt := base.Type.Strip()
		if pt.Kind != ctypes.KindPointer {
			return Value{}, fmt.Errorf("expr: '->%s' on non-pointer %s", n.name, base.Type)
		}
		if base.Bits == 0 {
			return Value{}, fmt.Errorf("expr: NULL dereference accessing %q", n.name)
		}
		base = MakeLValue(pt.Elem, base.Bits)
	}
	if c := n.cache.Load(); c != nil && c.base == base.Type {
		return env.LoadField(base, c.f)
	}
	f, ok := base.Type.FieldByName(n.name)
	if !ok {
		return Value{}, fmt.Errorf("expr: %s has no member %q", base.Type, n.name)
	}
	n.cache.Store(&memberCache{base: base.Type, f: f})
	return env.LoadField(base, f)
}

func (n *indexNode) eval(env *Env) (Value, error) {
	base, err := n.x.eval(env)
	if err != nil {
		return Value{}, err
	}
	idxV, err := n.i.eval(env)
	if err != nil {
		return Value{}, err
	}
	idxV, err = env.Load(idxV)
	if err != nil {
		return Value{}, err
	}
	idx := idxV.Int()

	bt := base.Type.Strip()
	switch {
	case bt.Kind == ctypes.KindArray && base.HasAddr:
		elem := bt.Elem
		return MakeLValue(elem, base.Addr+uint64(idx)*elem.Size()), nil
	default:
		base, err = env.Load(base)
		if err != nil {
			return Value{}, err
		}
		pt := base.Type.Strip()
		if pt.Kind != ctypes.KindPointer {
			return Value{}, fmt.Errorf("expr: indexing non-pointer %s", base.Type)
		}
		elem := pt.Elem
		return MakeLValue(elem, base.Bits+uint64(idx)*elem.Size()), nil
	}
}

func (n *unaryNode) eval(env *Env) (Value, error) {
	if n.op == "&" {
		v, err := n.x.eval(env)
		if err != nil {
			return Value{}, err
		}
		if !v.HasAddr {
			return Value{}, fmt.Errorf("expr: '&' on non-lvalue")
		}
		return MakePointer(v.Type, v.Addr), nil
	}
	v, err := n.x.eval(env)
	if err != nil {
		return Value{}, err
	}
	if n.op == "sizeof" {
		return MakeInt(env.Types().MustLookup("size_t"), v.Type.Size()), nil
	}
	v, err = env.Load(v)
	if err != nil {
		return Value{}, err
	}
	switch n.op {
	case "*":
		pt := v.Type.Strip()
		if pt.Kind != ctypes.KindPointer {
			return Value{}, fmt.Errorf("expr: dereference of non-pointer %s", v.Type)
		}
		if v.Bits == 0 {
			return Value{}, fmt.Errorf("expr: NULL dereference")
		}
		return MakeLValue(pt.Elem, v.Bits), nil
	case "-":
		return Value{Type: v.Type, Bits: uint64(-v.Int())}, nil
	case "~":
		return Value{Type: v.Type, Bits: ^v.Bits}, nil
	case "!":
		return MakeBool(!v.Bool()), nil
	}
	return Value{}, fmt.Errorf("expr: unsupported unary %q", n.op)
}

func (n *ternaryNode) eval(env *Env) (Value, error) {
	c, err := n.cond.eval(env)
	if err != nil {
		return Value{}, err
	}
	c, err = env.Load(c)
	if err != nil {
		return Value{}, err
	}
	if c.Bool() {
		return n.a.eval(env)
	}
	return n.b.eval(env)
}

func (n *binaryNode) eval(env *Env) (Value, error) {
	// Short-circuit logical operators.
	if n.op == "&&" || n.op == "||" {
		x, err := evalLoaded(env, n.x)
		if err != nil {
			return Value{}, err
		}
		if n.op == "&&" && !x.Bool() {
			return MakeBool(false), nil
		}
		if n.op == "||" && x.Bool() {
			return MakeBool(true), nil
		}
		y, err := evalLoaded(env, n.y)
		if err != nil {
			return Value{}, err
		}
		return MakeBool(y.Bool()), nil
	}
	x, err := evalLoaded(env, n.x)
	if err != nil {
		return Value{}, err
	}
	y, err := evalLoaded(env, n.y)
	if err != nil {
		return Value{}, err
	}
	return applyBinary(env, n.op, x, y)
}

func evalLoaded(env *Env, n node) (Value, error) {
	v, err := n.eval(env)
	if err != nil {
		return Value{}, err
	}
	return env.Load(v)
}

func applyBinary(env *Env, op string, x, y Value) (Value, error) {
	// String equality (synthetic strings from helpers).
	if x.IsStr || y.IsStr {
		switch op {
		case "==":
			return MakeBool(x.Str == y.Str), nil
		case "!=":
			return MakeBool(x.Str != y.Str), nil
		}
		return Value{}, fmt.Errorf("expr: operator %q on string", op)
	}

	// Pointer arithmetic: p + n, p - n scale by element size; p - q yields
	// an element count.
	xp, yp := x.Type.IsPointer(), y.Type.IsPointer()
	if (op == "+" || op == "-") && (xp || yp) {
		if xp && yp {
			if op != "-" {
				return Value{}, fmt.Errorf("expr: pointer + pointer")
			}
			es := x.Type.Strip().Elem.Size()
			if es == 0 {
				es = 1
			}
			return MakeInt(env.Types().MustLookup("long"), (x.Bits-y.Bits)/es), nil
		}
		p, i := x, y
		if yp {
			p, i = y, x
		}
		es := p.Type.Strip().Elem.Size()
		if es == 0 {
			es = 1
		}
		d := uint64(i.Int()) * es
		if op == "-" {
			return Value{Type: p.Type, Bits: p.Bits - d}, nil
		}
		return Value{Type: p.Type, Bits: p.Bits + d}, nil
	}

	signed := isSigned(x) && isSigned(y) && !xp && !yp
	switch op {
	case "==":
		return MakeBool(x.Bits == y.Bits), nil
	case "!=":
		return MakeBool(x.Bits != y.Bits), nil
	case "<", ">", "<=", ">=":
		var r bool
		if signed {
			a, b := x.Int(), y.Int()
			switch op {
			case "<":
				r = a < b
			case ">":
				r = a > b
			case "<=":
				r = a <= b
			case ">=":
				r = a >= b
			}
		} else {
			a, b := x.Bits, y.Bits
			switch op {
			case "<":
				r = a < b
			case ">":
				r = a > b
			case "<=":
				r = a <= b
			case ">=":
				r = a >= b
			}
		}
		return MakeBool(r), nil
	}

	rt := x.Type
	if rt == nil || !rt.IsInteger() && !rt.IsPointer() {
		rt = y.Type
	}
	if rt == nil {
		rt = env.Types().MustLookup("long")
	}
	var bits uint64
	switch op {
	case "+":
		bits = x.Bits + y.Bits
	case "-":
		bits = x.Bits - y.Bits
	case "*":
		bits = x.Bits * y.Bits
	case "/":
		if y.Bits == 0 {
			return Value{}, fmt.Errorf("expr: division by zero")
		}
		if signed {
			bits = uint64(x.Int() / y.Int())
		} else {
			bits = x.Bits / y.Bits
		}
	case "%":
		if y.Bits == 0 {
			return Value{}, fmt.Errorf("expr: modulo by zero")
		}
		if signed {
			bits = uint64(x.Int() % y.Int())
		} else {
			bits = x.Bits % y.Bits
		}
	case "&":
		bits = x.Bits & y.Bits
	case "|":
		bits = x.Bits | y.Bits
	case "^":
		bits = x.Bits ^ y.Bits
	case "<<":
		bits = x.Bits << (y.Bits & 63)
	case ">>":
		if signed {
			bits = uint64(x.Int() >> (y.Bits & 63))
		} else {
			bits = x.Bits >> (y.Bits & 63)
		}
	default:
		return Value{}, fmt.Errorf("expr: unsupported operator %q", op)
	}
	if sz := rt.Strip().Size(); sz > 0 && sz < 8 && !rt.IsPointer() {
		bits &= (1 << (sz * 8)) - 1
	}
	return Value{Type: rt, Bits: bits}, nil
}

func isSigned(v Value) bool {
	t := v.Type.Strip()
	return t != nil && (t.Kind == ctypes.KindInt || t.Kind == ctypes.KindEnum) && t.Signed
}

func (n *callNode) eval(env *Env) (Value, error) {
	// Builtin macro: container_of(ptr, type, member) — the kernel's
	// embedded-container idiom. type and member are names, not values.
	if n.name == "container_of" {
		return evalContainerOf(env, n.args)
	}
	if n.name == "offsetof" {
		return evalOffsetof(env, n.args)
	}
	f, ok := env.Funcs[n.name]
	if !ok {
		return Value{}, fmt.Errorf("expr: unknown function %q (is the helper registered?)", n.name)
	}
	args := make([]Value, len(n.args))
	for i, a := range n.args {
		v, err := evalLoaded(env, a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	return f(env, args)
}

// nodeAsName renders an identifier or dotted-member chain as a textual name,
// for macro-style arguments (container_of's type and member).
func nodeAsName(n node) (string, bool) {
	switch x := n.(type) {
	case *identNode:
		return x.name, true
	case *memberNode:
		base, ok := nodeAsName(x.x)
		if !ok {
			return "", false
		}
		return base + "." + x.name, true
	}
	return "", false
}

func evalContainerOf(env *Env, args []node) (Value, error) {
	if len(args) != 3 {
		return Value{}, fmt.Errorf("expr: container_of wants (ptr, type, member)")
	}
	ptr, err := evalLoaded(env, args[0])
	if err != nil {
		return Value{}, err
	}
	tname, ok := nodeAsName(args[1])
	if !ok {
		return Value{}, fmt.Errorf("expr: container_of: bad type argument")
	}
	mname, ok := nodeAsName(args[2])
	if !ok {
		return Value{}, fmt.Errorf("expr: container_of: bad member argument")
	}
	typ, ok := env.Types().Lookup(tname)
	if !ok {
		return Value{}, fmt.Errorf("expr: container_of: unknown type %q", tname)
	}
	f, err := typ.ResolvePath(mname)
	if err != nil {
		return Value{}, err
	}
	return MakePointer(typ, ptr.Bits-f.Offset), nil
}

func evalOffsetof(env *Env, args []node) (Value, error) {
	if len(args) != 2 {
		return Value{}, fmt.Errorf("expr: offsetof wants (type, member)")
	}
	tname, ok := nodeAsName(args[0])
	if !ok {
		return Value{}, fmt.Errorf("expr: offsetof: bad type argument")
	}
	mname, ok := nodeAsName(args[1])
	if !ok {
		return Value{}, fmt.Errorf("expr: offsetof: bad member argument")
	}
	typ, ok := env.Types().Lookup(tname)
	if !ok {
		return Value{}, fmt.Errorf("expr: offsetof: unknown type %q", tname)
	}
	f, err := typ.ResolvePath(mname)
	if err != nil {
		return Value{}, err
	}
	return MakeInt(env.Types().MustLookup("size_t"), f.Offset), nil
}

// ReadString reads the C string a char* value points at (helper for text
// decorators and the task_state-style helpers).
func ReadString(env *Env, v Value, max int) (string, error) {
	if v.IsStr {
		return v.Str, nil
	}
	t := v.Type.Strip()
	switch {
	case t.Kind == ctypes.KindPointer:
		if v.Bits == 0 {
			return "", nil
		}
		return target.ReadCString(env.Target, v.Bits, max)
	case t.Kind == ctypes.KindArray && v.HasAddr:
		return target.ReadCString(env.Target, v.Addr, int(t.Size()))
	}
	return "", fmt.Errorf("expr: value %s is not a string", v)
}
