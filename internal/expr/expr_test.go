package expr_test

import (
	"testing"
	"testing/quick"

	"visualinux/internal/ctypes"
	"visualinux/internal/expr"
	"visualinux/internal/mem"
	"visualinux/internal/target"
)

// fixture builds a tiny typed world: a point struct, a linked node chain,
// an array, strings, and a couple of symbols.
type fixture struct {
	env  *expr.Env
	tgt  *target.Sim
	node *ctypes.Type
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	m := mem.New()
	reg := ctypes.NewRegistry()
	u64 := reg.MustLookup("u64")
	s32 := reg.MustLookup("int")
	charT := reg.MustLookup("char")

	point := reg.Register(ctypes.StructOf("point",
		ctypes.F("x", s32), ctypes.F("y", s32), ctypes.F("name", charT.PointerTo())))
	node := ctypes.NewShell("node")
	node.Complete(
		ctypes.F("value", u64),
		ctypes.F("next", node.PointerTo()),
		ctypes.F("pt", point),
		ctypes.BF("flagsA", reg.MustLookup("u32"), 4),
		ctypes.BF("flagsB", reg.MustLookup("u32"), 12),
	)
	reg.Register(node)

	tgt := target.NewSim(m, reg)

	// point at 0x1000
	m.WriteU32(0x1000, 0xFFFFFFFF) // x = -1
	m.WriteU32(0x1004, 42)         // y
	m.WriteCString(0x2000, "origin")
	m.WriteU64(0x1008, 0x2000) // name

	// node chain at 0x3000 -> 0x3100 -> NULL
	m.WriteU64(0x3000, 7)          // value
	m.WriteU64(0x3008, 0x3100)     // next
	m.WriteU32(0x3010, 0xFFFFFFFF) // pt.x
	m.WriteU32(0x3020, 0xABC5)     // bitfields: flagsA=5, flagsB=0xABC
	m.WriteU64(0x3100, 9)
	m.WriteU64(0x3108, 0) // next = NULL

	// u64 array at 0x4000
	for i := uint64(0); i < 8; i++ {
		m.WriteU64(0x4000+i*8, i*i)
	}

	tgt.AddSymbol("origin_point", 0x1000, point)
	tgt.AddSymbol("head", 0x3000, node)
	tgt.AddSymbol("squares", 0x4000, u64.ArrayOf(8))
	tgt.AddSymbol("do_work", 0xFFFF0000, ctypes.FuncType)

	env := expr.NewEnv(tgt)
	env.RegisterFunc("double", func(e *expr.Env, args []expr.Value) (expr.Value, error) {
		return expr.MakeInt(u64, args[0].Uint()*2), nil
	})
	return &fixture{env: env, tgt: tgt, node: node}
}

func (f *fixture) eval(t testing.TB, src string) expr.Value {
	t.Helper()
	ex, err := expr.Parse(src, f.env.Types())
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := ex.Eval(f.env)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func (f *fixture) evalErr(t testing.TB, src string) error {
	t.Helper()
	ex, err := expr.Parse(src, f.env.Types())
	if err != nil {
		return err
	}
	_, err = ex.Eval(f.env)
	return err
}

func TestLiteralsAndArithmetic(t *testing.T) {
	f := newFixture(t)
	cases := map[string]uint64{
		"1 + 2*3":        7,
		"(1 + 2) * 3":    9,
		"10 / 3":         3,
		"10 % 3":         1,
		"1 << 10":        1024,
		"0xFF & 0x0F":    0x0F,
		"0xF0 | 0x0F":    0xFF,
		"5 ^ 1":          4,
		"~0 & 0xFF":      0xFF,
		"0x10":           16,
		"'A'":            65,
		"1 < 2":          1,
		"2 <= 1":         0,
		"3 == 3":         1,
		"3 != 3":         0,
		"1 && 0":         0,
		"1 || 0":         1,
		"!0":             1,
		"1 ? 42 : 7":     42,
		"0 ? 42 : 7":     7,
		"-5 + 10":        5,
		"100u":           100,
		"sizeof(u64)":    8,
		"sizeof(point)":  16,
		"sizeof(node *)": 8,
	}
	for src, want := range cases {
		if got := f.eval(t, src).Uint(); got != want {
			t.Errorf("%s = %d, want %d", src, got, want)
		}
	}
}

// Property: the evaluator agrees with Go on random small arithmetic.
func TestArithmeticProperty(t *testing.T) {
	f := newFixture(t)
	prop := func(a, b uint16, op uint8) bool {
		ops := []string{"+", "-", "*", "&", "|", "^"}
		o := ops[int(op)%len(ops)]
		src := fmtUint(uint64(a)) + " " + o + " " + fmtUint(uint64(b))
		got := f.eval(t, src).Uint()
		var want uint64
		x, y := uint64(a), uint64(b)
		switch o {
		case "+":
			want = x + y
		case "-":
			want = x - y
		case "*":
			want = x * y
		case "&":
			want = x & y
		case "|":
			want = x | y
		case "^":
			want = x ^ y
		}
		// result is typed "long" (8 bytes): no masking
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func fmtUint(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestMemberAccess(t *testing.T) {
	f := newFixture(t)
	if got := f.eval(t, "origin_point.y").Uint(); got != 42 {
		t.Errorf("y = %d", got)
	}
	if got := f.eval(t, "origin_point.x").Int(); got != -1 {
		t.Errorf("x = %d (signed)", got)
	}
	if got := f.eval(t, "head.value").Uint(); got != 7 {
		t.Errorf("value = %d", got)
	}
	// -> across the chain, and auto-deref leniency on '.'
	if got := f.eval(t, "head.next->value").Uint(); got != 9 {
		t.Errorf("next->value = %d", got)
	}
	if got := f.eval(t, "head.next.value").Uint(); got != 9 {
		t.Errorf("next.value (auto-deref) = %d", got)
	}
	// nested struct
	if got := f.eval(t, "head.pt.x").Int(); got != -1 {
		t.Errorf("pt.x = %d", got)
	}
}

func TestBitfieldRead(t *testing.T) {
	f := newFixture(t)
	if got := f.eval(t, "head.flagsA").Uint(); got != 5 {
		t.Errorf("flagsA = %d", got)
	}
	if got := f.eval(t, "head.flagsB").Uint(); got != 0xABC {
		t.Errorf("flagsB = %#x", got)
	}
}

func TestPointersAndArrays(t *testing.T) {
	f := newFixture(t)
	if got := f.eval(t, "squares[5]").Uint(); got != 25 {
		t.Errorf("squares[5] = %d", got)
	}
	if got := f.eval(t, "&origin_point").Uint(); got != 0x1000 {
		t.Errorf("&origin_point = %#x", got)
	}
	if got := f.eval(t, "*(u64 *)0x4010").Uint(); got != 4 {
		t.Errorf("deref cast = %d", got)
	}
	// pointer arithmetic scales
	if got := f.eval(t, "(u64 *)0x4000 + 3").Uint(); got != 0x4018 {
		t.Errorf("ptr+3 = %#x", got)
	}
	if got := f.eval(t, "((u64 *)0x4020 - (u64 *)0x4000)").Uint(); got != 4 {
		t.Errorf("ptr diff = %d", got)
	}
	if got := f.eval(t, "((node *)&head)->value").Uint(); got != 7 {
		t.Errorf("cast member = %d", got)
	}
}

func TestBuiltins(t *testing.T) {
	f := newFixture(t)
	// container_of: &head.pt back to head
	if got := f.eval(t, "container_of(&head.pt, node, pt)").Uint(); got != 0x3000 {
		t.Errorf("container_of = %#x", got)
	}
	if got := f.eval(t, "offsetof(node, pt)").Uint(); got != 16 {
		t.Errorf("offsetof = %d", got)
	}
	if got := f.eval(t, "double(21)").Uint(); got != 42 {
		t.Errorf("helper = %d", got)
	}
	if got := f.eval(t, "NULL").Uint(); got != 0 {
		t.Errorf("NULL = %d", got)
	}
	if got := f.eval(t, "true").Uint(); got != 1 {
		t.Errorf("true = %d", got)
	}
}

func TestVarsAndResolver(t *testing.T) {
	f := newFixture(t)
	f.env.Vars["n"] = expr.MakePointer(f.node, 0x3000)
	if got := f.eval(t, "@n->value").Uint(); got != 7 {
		t.Errorf("@n->value = %d", got)
	}
	f.env.Resolver = func(name string) (expr.Value, bool) {
		if name == "lazy" {
			return expr.MakeInt(f.env.Types().MustLookup("u64"), 99), true
		}
		return expr.Value{}, false
	}
	if got := f.eval(t, "@lazy + 1").Uint(); got != 100 {
		t.Errorf("resolver = %d", got)
	}
}

func TestStrings(t *testing.T) {
	f := newFixture(t)
	v := f.eval(t, "origin_point.name")
	s, err := expr.ReadString(f.env, v, 32)
	if err != nil || s != "origin" {
		t.Errorf("string = %q, %v", s, err)
	}
	lit := f.eval(t, `"hello"`)
	if !lit.IsStr || lit.Str != "hello" {
		t.Errorf("literal = %v", lit)
	}
	eq := f.eval(t, `"a" == "a"`)
	if !eq.Bool() {
		t.Errorf("string equality failed")
	}
}

func TestSignedComparisons(t *testing.T) {
	f := newFixture(t)
	// origin_point.x is int -1: signed compare must see it below zero.
	if !f.eval(t, "origin_point.x < 0").Bool() {
		t.Error("-1 < 0 failed (signedness lost)")
	}
	if f.eval(t, "origin_point.y < 0").Bool() {
		t.Error("42 < 0")
	}
}

func TestEvalErrors(t *testing.T) {
	f := newFixture(t)
	for _, src := range []string{
		"head.next->next->value", // NULL dereference at the chain end
		"1 / 0",
		"5 % 0",
		"unknown_symbol_xyz",
		"unknown_fn(1)",
		"@unbound",
		"head.nomember",
		"*42",
	} {
		if err := f.evalErr(t, src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	f := newFixture(t)
	for _, src := range []string{
		"1 +", "(1", "a..b", "1 ? 2", "foo(", "'unterminated", `"open`,
		"@", "0x", "]",
	} {
		if _, err := expr.Parse(src, f.env.Types()); err == nil {
			t.Errorf("no parse error for %q", src)
		}
	}
}

func TestStatsCounted(t *testing.T) {
	f := newFixture(t)
	f.tgt.Stats().Reset()
	f.eval(t, "head.next->value")
	reads, bytes := f.tgt.Stats().Snapshot()
	if reads == 0 || bytes == 0 {
		t.Errorf("no traffic recorded: %d reads %d bytes", reads, bytes)
	}
}
