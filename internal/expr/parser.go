package expr

import (
	"fmt"
	"strings"
	"sync/atomic"

	"visualinux/internal/ctypes"
)

// Expr is a parsed C expression, reusable across evaluations. ViewCL
// compiles each ${...} escape to an Expr once and evaluates it per object.
type Expr struct {
	Src  string
	root node
}

// Parse compiles src against the type registry (needed to recognize cast
// type names at parse time, as GDB does with DWARF).
func Parse(src string, reg *ctypes.Registry) (*Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, reg: reg, src: src}
	n, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != tokEOF {
		return nil, fmt.Errorf("expr: trailing input %q in %q", p.peek(), src)
	}
	return &Expr{Src: src, root: n}, nil
}

// MustParse is Parse that panics; for static tables in tests and stdlib.
func MustParse(src string, reg *ctypes.Registry) *Expr {
	e, err := Parse(src, reg)
	if err != nil {
		panic(err)
	}
	return e
}

// Eval evaluates the expression, returning an rvalue-converted result for
// scalars (aggregates stay as lvalues).
func (e *Expr) Eval(env *Env) (Value, error) {
	v, err := e.root.eval(env)
	if err != nil {
		return Value{}, fmt.Errorf("%v (in %q)", err, e.Src)
	}
	lv, err := env.Load(v)
	if err != nil {
		return Value{}, fmt.Errorf("%v (in %q)", err, e.Src)
	}
	return lv, nil
}

// ConstValue reports the expression's value when it is a literal atom —
// true/false/NULL/nullptr, a number, or a string — whose evaluation never
// consults the environment and so yields the same value in every run. The
// ViewCL compiler folds such ${...} escapes at lowering time. reg resolves
// the default literal type exactly as evaluation would.
func (e *Expr) ConstValue(reg *ctypes.Registry) (Value, bool) {
	switch n := e.root.(type) {
	case *identNode:
		switch n.name {
		case "NULL", "nullptr":
			return Value{Type: ctypes.VoidPtr}, true
		case "true":
			return MakeBool(true), true
		case "false":
			return MakeBool(false), true
		}
	case *numberNode:
		t := n.typ
		if t == nil {
			t = reg.MustLookup("long")
		}
		return MakeInt(t, n.v), true
	case *stringNode:
		return MakeString(n.s), true
	}
	return Value{}, false
}

// EvalLValue evaluates without the final rvalue conversion, so the caller
// can take the object's address (used by ViewCL box anchoring).
func (e *Expr) EvalLValue(env *Env) (Value, error) {
	v, err := e.root.eval(env)
	if err != nil {
		return Value{}, fmt.Errorf("%v (in %q)", err, e.Src)
	}
	return v, nil
}

// --- AST ---------------------------------------------------------------------

type node interface {
	eval(env *Env) (Value, error)
}

type identNode struct{ name string }
type atVarNode struct{ name string }
type numberNode struct {
	v uint64
	// typ is the literal's C type, resolved once at parse time so hot
	// evaluation loops skip the registry lookup. Nil when the parse-time
	// registry does not know "long" (then eval falls back).
	typ *ctypes.Type
}
type stringNode struct{ s string }
type unaryNode struct {
	op string
	x  node
}
type binaryNode struct {
	op   string
	x, y node
}
type ternaryNode struct{ cond, a, b node }
type castNode struct {
	typ *ctypes.Type
	x   node
}
type memberNode struct {
	x     node
	name  string
	arrow bool
	// cache is a monomorphic inline cache for the field resolution: member
	// chains are evaluated once per box per run, and the base type at a given
	// syntactic position is almost always the same *ctypes.Type. The pointer
	// is swapped atomically so a parsed Expr stays safe to share between
	// concurrent evaluations.
	cache atomic.Pointer[memberCache]
}

type memberCache struct {
	base *ctypes.Type
	f    ctypes.Field
}
type indexNode struct{ x, i node }
type callNode struct {
	name string
	args []node
}
type sizeofTypeNode struct{ typ *ctypes.Type }

// --- parser ------------------------------------------------------------------

type parser struct {
	toks []token
	pos  int
	reg  *ctypes.Registry
	src  string
}

func (p *parser) peek() token   { return p.toks[p.pos] }
func (p *parser) next() token   { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) save() int     { return p.pos }
func (p *parser) restore(s int) { p.pos = s }

func (p *parser) accept(text string) bool {
	if p.peek().Kind == tokPunct && p.peek().Text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return fmt.Errorf("expr: expected %q, found %q in %q", text, p.peek(), p.src)
	}
	return nil
}

func (p *parser) parseExpr() (node, error) { return p.parseTernary() }

func (p *parser) parseTernary() (node, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.accept("?") {
		return cond, nil
	}
	a, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	b, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &ternaryNode{cond: cond, a: a, b: b}, nil
}

// binary operator precedence levels, loosest first.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", ">", "<=", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseBinary(level int) (node, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := ""
		for _, op := range precLevels[level] {
			if p.peek().Kind == tokPunct && p.peek().Text == op {
				matched = op
				break
			}
		}
		if matched == "" {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &binaryNode{op: matched, x: lhs, y: rhs}
	}
}

func (p *parser) parseUnary() (node, error) {
	t := p.peek()
	if t.Kind == tokPunct {
		switch t.Text {
		case "-", "~", "!", "*", "&":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &unaryNode{op: t.Text, x: x}, nil
		case "(":
			// Possible cast: '(' typename ')' unary.
			s := p.save()
			p.next()
			if typ, ok := p.tryParseTypeName(); ok && p.accept(")") {
				// A cast must be followed by something castable.
				nt := p.peek()
				if nt.Kind == tokIdent || nt.Kind == tokAtIdent || nt.Kind == tokNumber ||
					nt.Kind == tokString || nt.Kind == tokChar ||
					(nt.Kind == tokPunct && (nt.Text == "(" || nt.Text == "*" || nt.Text == "&" || nt.Text == "-" || nt.Text == "~" || nt.Text == "!")) {
					x, err := p.parseUnary()
					if err != nil {
						return nil, err
					}
					return &castNode{typ: typ, x: x}, nil
				}
			}
			p.restore(s)
		}
	}
	if t.Kind == tokIdent && t.Text == "sizeof" {
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		if typ, ok := p.tryParseTypeName(); ok && p.accept(")") {
			return &sizeofTypeNode{typ: typ}, nil
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &unaryNode{op: "sizeof", x: x}, nil
	}
	return p.parsePostfix()
}

// tryParseTypeName attempts to consume a type name (optionally keyword-
// prefixed, possibly multi-word, with trailing stars) recognized by the
// registry. On failure the position is restored and ok is false.
func (p *parser) tryParseTypeName() (*ctypes.Type, bool) {
	s := p.save()
	var words []string
	for p.peek().Kind == tokIdent {
		words = append(words, p.next().Text)
		// Greedy: keep consuming while the longer spelling still resolves
		// or is a type keyword prefix ("unsigned", "struct", ...).
	}
	if len(words) == 0 {
		p.restore(s)
		return nil, false
	}
	stars := 0
	for p.accept("*") {
		stars++
	}
	name := strings.Join(words, " ")
	t, ok := p.reg.Lookup(name)
	if !ok {
		p.restore(s)
		return nil, false
	}
	for i := 0; i < stars; i++ {
		t = t.PointerTo()
	}
	return t, true
}

func (p *parser) parsePostfix() (node, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != tokPunct {
			return x, nil
		}
		switch t.Text {
		case ".":
			p.next()
			id := p.next()
			if id.Kind != tokIdent {
				return nil, fmt.Errorf("expr: expected member name after '.', found %q in %q", id, p.src)
			}
			x = &memberNode{x: x, name: id.Text}
		case "->":
			p.next()
			id := p.next()
			if id.Kind != tokIdent {
				return nil, fmt.Errorf("expr: expected member name after '->', found %q in %q", id, p.src)
			}
			x = &memberNode{x: x, name: id.Text, arrow: true}
		case "[":
			p.next()
			i, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &indexNode{x: x, i: i}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (node, error) {
	t := p.next()
	switch t.Kind {
	case tokNumber, tokChar:
		n := &numberNode{v: t.Num}
		if p.reg != nil {
			if lt, ok := p.reg.Lookup("long"); ok {
				n.typ = lt
			}
		}
		return n, nil
	case tokString:
		return &stringNode{s: t.Text}, nil
	case tokAtIdent:
		return &atVarNode{name: t.Text}, nil
	case tokIdent:
		// Function call?
		if p.peek().Kind == tokPunct && p.peek().Text == "(" {
			p.next()
			var args []node
			if !p.accept(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.accept(")") {
						break
					}
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
			}
			return &callNode{name: t.Text, args: args}, nil
		}
		return &identNode{name: t.Text}, nil
	case tokPunct:
		if t.Text == "(" {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return x, nil
		}
	}
	return nil, fmt.Errorf("expr: unexpected token %q in %q", t, p.src)
}
