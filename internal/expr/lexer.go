package expr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind enumerates lexer token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokAtIdent // @name — ViewCL variable splice
	tokNumber
	tokString
	tokChar
	tokPunct // operators and punctuation; Text holds the spelling
)

type token struct {
	Kind tokKind
	Text string
	Num  uint64
	Pos  int
}

func (t token) String() string {
	switch t.Kind {
	case tokEOF:
		return "<eof>"
	case tokNumber:
		return fmt.Sprintf("%d", t.Num)
	default:
		return t.Text
	}
}

// lexer tokenizes a C expression.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// multi-character operators, longest first.
var multiOps = []string{
	"<<=", ">>=", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "?", ":",
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{Kind: tokEOF, Pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		start := l.pos
		switch {
		case c == '@':
			l.pos++
			id := l.ident()
			if id == "" {
				return nil, fmt.Errorf("expr: bare '@' at offset %d in %q", start, l.src)
			}
			l.toks = append(l.toks, token{Kind: tokAtIdent, Text: id, Pos: start})
		case isIdentStart(rune(c)):
			id := l.ident()
			l.toks = append(l.toks, token{Kind: tokIdent, Text: id, Pos: start})
		case c >= '0' && c <= '9':
			n, err := l.number()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{Kind: tokNumber, Num: n, Pos: start})
		case c == '\'':
			v, err := l.charLit()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{Kind: tokChar, Num: v, Pos: start})
		case c == '"':
			s, err := l.stringLit()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{Kind: tokString, Text: s, Pos: start})
		default:
			op := l.punct()
			if op == "" {
				return nil, fmt.Errorf("expr: unexpected character %q at offset %d in %q", c, start, l.src)
			}
			l.toks = append(l.toks, token{Kind: tokPunct, Text: op, Pos: start})
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		return
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentCont(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) ident() string {
	start := l.pos
	for l.pos < len(l.src) && isIdentCont(rune(l.src[l.pos])) {
		l.pos++
	}
	return l.src[start:l.pos]
}

func (l *lexer) number() (uint64, error) {
	start := l.pos
	s := l.src
	if strings.HasPrefix(s[l.pos:], "0x") || strings.HasPrefix(s[l.pos:], "0X") {
		l.pos += 2
		for l.pos < len(s) && isHexDigit(s[l.pos]) {
			l.pos++
		}
	} else {
		for l.pos < len(s) && s[l.pos] >= '0' && s[l.pos] <= '9' {
			l.pos++
		}
	}
	lit := s[start:l.pos]
	// Swallow C integer suffixes.
	for l.pos < len(s) && (s[l.pos] == 'u' || s[l.pos] == 'U' || s[l.pos] == 'l' || s[l.pos] == 'L') {
		l.pos++
	}
	v, err := strconv.ParseUint(lit, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("expr: bad number %q: %v", lit, err)
	}
	return v, nil
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func (l *lexer) charLit() (uint64, error) {
	// l.src[l.pos] == '\''
	l.pos++
	if l.pos >= len(l.src) {
		return 0, fmt.Errorf("expr: unterminated char literal")
	}
	var v uint64
	if l.src[l.pos] == '\\' {
		l.pos++
		if l.pos >= len(l.src) {
			return 0, fmt.Errorf("expr: unterminated escape")
		}
		switch l.src[l.pos] {
		case 'n':
			v = '\n'
		case 't':
			v = '\t'
		case '0':
			v = 0
		case '\\':
			v = '\\'
		case '\'':
			v = '\''
		default:
			return 0, fmt.Errorf("expr: unsupported escape \\%c", l.src[l.pos])
		}
		l.pos++
	} else {
		v = uint64(l.src[l.pos])
		l.pos++
	}
	if l.pos >= len(l.src) || l.src[l.pos] != '\'' {
		return 0, fmt.Errorf("expr: unterminated char literal")
	}
	l.pos++
	return v, nil
}

func (l *lexer) stringLit() (string, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			return b.String(), nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			switch l.src[l.pos] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				b.WriteByte(l.src[l.pos])
			}
			l.pos++
			continue
		}
		b.WriteByte(c)
		l.pos++
	}
	return "", fmt.Errorf("expr: unterminated string literal")
}

func (l *lexer) punct() string {
	rest := l.src[l.pos:]
	for _, op := range multiOps {
		if strings.HasPrefix(rest, op) {
			l.pos += len(op)
			return op
		}
	}
	c := rest[0]
	if strings.ContainsRune("+-*/%&|^~!<>()[].,", rune(c)) {
		l.pos++
		return string(c)
	}
	return ""
}
