package graph_test

import (
	"testing"

	"visualinux/internal/graph"
)

func box(g *graph.Graph, id string, links ...string) *graph.Box {
	b := graph.NewBox(id, id, "t", 0)
	var items []graph.Item
	for _, l := range links {
		items = append(items, graph.Item{Kind: graph.ItemLink, Name: "to_" + l, TargetID: l})
	}
	b.AddView(&graph.View{Name: "default", Items: items})
	return g.Add(b)
}

func TestAddDeduplicates(t *testing.T) {
	g := graph.New("g")
	a := box(g, "a")
	a2 := g.Add(graph.NewBox("a", "other", "t2", 7))
	if a2 != a {
		t.Error("duplicate ID created a second box")
	}
	if len(g.Order) != 1 {
		t.Errorf("order = %v", g.Order)
	}
}

func TestReachability(t *testing.T) {
	g := graph.New("g")
	box(g, "d")
	box(g, "c", "d")
	box(g, "b")
	box(g, "a", "b", "c")
	box(g, "island")
	r := g.Reachable([]string{"a"})
	for _, id := range []string{"a", "b", "c", "d"} {
		if !r[id] {
			t.Errorf("%s unreachable", id)
		}
	}
	if r["island"] {
		t.Error("island reachable")
	}
	// Cycles terminate.
	ca, _ := g.Get("d")
	ca.Views["default"].Items = append(ca.Views["default"].Items,
		graph.Item{Kind: graph.ItemLink, Name: "back", TargetID: "a"})
	r = g.Reachable([]string{"a"})
	if len(r) != 4 {
		t.Errorf("cycle reach = %d", len(r))
	}
}

func TestViewsAndMember(t *testing.T) {
	b := graph.NewBox("x", "X", "t", 1)
	b.AddView(&graph.View{Name: "default", Items: []graph.Item{
		{Kind: graph.ItemText, Name: "pid", Value: "1", Raw: 1, IsNum: true},
	}})
	b.AddView(&graph.View{Name: "deep", Items: []graph.Item{
		{Kind: graph.ItemText, Name: "extra", Value: "9"},
	}})
	if b.CurrentView().Name != "default" {
		t.Errorf("current = %s", b.CurrentView().Name)
	}
	b.SetAttr(graph.AttrView, "deep")
	if b.CurrentView().Name != "deep" {
		t.Errorf("current = %s", b.CurrentView().Name)
	}
	// Member search spans non-current views.
	if it, ok := b.Member("pid"); !ok || it.Raw != 1 {
		t.Errorf("member pid = %+v, %v", it, ok)
	}
	// Unknown view falls back to default.
	b.SetAttr(graph.AttrView, "ghost")
	if b.CurrentView().Name != "default" {
		t.Errorf("fallback = %s", b.CurrentView().Name)
	}
	// Attribute clear semantics.
	b.SetAttr(graph.AttrTrimmed, "true")
	if !b.Trimmed() {
		t.Error("trim set failed")
	}
	b.SetAttr(graph.AttrTrimmed, "false")
	if b.Trimmed() {
		t.Error("trim clear failed")
	}
}

func TestItemAttrs(t *testing.T) {
	it := graph.Item{Kind: graph.ItemContainer, Name: "c"}
	if it.Collapsed() {
		t.Error("zero item collapsed")
	}
	it.SetAttr(graph.AttrCollapsed, "true")
	if !it.Collapsed() {
		t.Error("set failed")
	}
	it.SetAttr(graph.AttrCollapsed, "")
	if it.Collapsed() {
		t.Error("clear failed")
	}
}

func TestByTypeAndTypes(t *testing.T) {
	g := graph.New("g")
	g.Add(graph.NewBox("a", "Task", "task_struct", 1))
	g.Add(graph.NewBox("b", "Task", "task_struct", 2))
	g.Add(graph.NewBox("c", "MM", "mm_struct", 3))
	if n := len(g.ByType("task_struct")); n != 2 {
		t.Errorf("by C type = %d", n)
	}
	if n := len(g.ByType("Task")); n != 2 {
		t.Errorf("by label = %d", n)
	}
	types := g.Types()
	if len(types) != 2 || types[0] != "mm_struct" {
		t.Errorf("types = %v", types)
	}
}

func TestBoxIDAndParse(t *testing.T) {
	id := graph.BoxID("Task", 0xffff888000001000)
	if id != "Task@0xffff888000001000" {
		t.Errorf("id = %s", id)
	}
	if a := graph.ParseBoxAddr(id); a != 0xffff888000001000 {
		t.Errorf("parse = %#x", a)
	}
	if a := graph.ParseBoxAddr("cell#5"); a != 0 {
		t.Errorf("non-canonical = %#x", a)
	}
}

func TestCloneView(t *testing.T) {
	v := &graph.View{Name: "v", Items: []graph.Item{
		{Kind: graph.ItemContainer, Name: "c", Elems: []string{"a", "b"}},
	}}
	c := v.Clone()
	c.Items[0].Elems[0] = "changed"
	if v.Items[0].Elems[0] != "a" {
		t.Error("clone shares element slice")
	}
}
