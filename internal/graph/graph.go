// Package graph defines the simplified kernel object graph that ViewCL
// extraction produces and ViewQL customization operates on (the paper's
// G(V,E)): vertices are Boxes (objects, possibly virtual), edges are Links
// (pointer-derived relations). Boxes carry Views (alternative layouts) and
// display attributes (view/trimmed/collapsed/direction) that the renderer
// honors.
package graph

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Well-known attribute names (paper §4.2).
const (
	AttrView      = "view"
	AttrTrimmed   = "trimmed"
	AttrCollapsed = "collapsed"
	AttrDirection = "direction"
)

// DefaultView is the view used when the view attribute is absent.
const DefaultView = "default"

// ItemKind discriminates view items.
type ItemKind int

// Item kinds.
const (
	ItemText ItemKind = iota
	ItemLink
	ItemContainer
	ItemBox // nested box, plotted inside the parent
)

func (k ItemKind) String() string {
	switch k {
	case ItemText:
		return "text"
	case ItemLink:
		return "link"
	case ItemContainer:
		return "container"
	case ItemBox:
		return "box"
	}
	return "?"
}

// Item is one member of a view: a Text (rendered string plus the raw value
// for ViewQL comparisons), a Link to another box, an embedded Container of
// boxes, or a nested Box.
type Item struct {
	Kind ItemKind
	Name string // member label, e.g. "pid" or "runqueue"

	// Text payload.
	Value string // rendered (decorated) text
	Raw   uint64 // raw scalar for WHERE comparisons
	IsNum bool   // Raw is meaningful
	IsStr bool   // Value is a true string (compare as string)

	// Link / nested box target (box ID; "" for NULL links).
	TargetID string

	// Container payload: ordered element box IDs ("" elements are NULL
	// slots kept for positional fidelity).
	Elems     []string
	Direction string // container plotting direction override

	// Attrs holds item-level display attributes (ViewQL can UPDATE a
	// member selection like "maple_node.slots" with collapsed: true).
	Attrs map[string]string
}

// SetAttr assigns an item-level attribute, allocating the map on demand;
// "false"/"" clears.
func (it *Item) SetAttr(key, value string) {
	if value == "" || value == "false" {
		delete(it.Attrs, key)
		return
	}
	if it.Attrs == nil {
		it.Attrs = make(map[string]string)
	}
	it.Attrs[key] = value
}

// Collapsed reports the item-level collapsed attribute.
func (it *Item) Collapsed() bool { return it.Attrs[AttrCollapsed] == "true" }

// View is a named layout of a box (paper §2.2).
type View struct {
	Name  string
	Items []Item
}

// Clone deep-copies the view, including per-item element slices and
// attribute maps (so ViewQL UPDATEs on one copy never leak into another).
func (v *View) Clone() *View {
	nv := &View{Name: v.Name, Items: make([]Item, len(v.Items))}
	copy(nv.Items, v.Items)
	for i := range nv.Items {
		if v.Items[i].Elems != nil {
			nv.Items[i].Elems = append([]string(nil), v.Items[i].Elems...)
		}
		if v.Items[i].Attrs != nil {
			attrs := make(map[string]string, len(v.Items[i].Attrs))
			for k, val := range v.Items[i].Attrs {
				attrs[k] = val
			}
			nv.Items[i].Attrs = attrs
		}
	}
	return nv
}

// Box is a vertex of the object graph. A box usually mirrors one kernel
// object (TypeName+Addr); virtual boxes (containers, synthesized wrappers)
// have Addr 0 or a synthetic label.
type Box struct {
	ID       string
	Label    string // ViewCL box-type name, e.g. "Task"
	TypeName string // C type name, e.g. "task_struct"; "" for virtual
	Addr     uint64
	Views    map[string]*View
	ViewSeq  []string          // view declaration order
	Attrs    map[string]string // display attributes
}

// NewBox constructs an empty box.
func NewBox(id, label, typeName string, addr uint64) *Box {
	// Attrs stays nil until the first SetAttr: most boxes never get display
	// attributes, and extraction builds boxes by the hundred per round.
	return &Box{
		ID: id, Label: label, TypeName: typeName, Addr: addr,
		Views: make(map[string]*View),
	}
}

// Clone deep-copies the box. The extraction memo keeps pristine clones of
// freshly built boxes and hands out further clones on reuse, so downstream
// ViewQL mutation of one run's output cannot corrupt the cache.
func (b *Box) Clone() *Box {
	nb := &Box{
		ID: b.ID, Label: b.Label, TypeName: b.TypeName, Addr: b.Addr,
		Views: make(map[string]*View, len(b.Views)),
	}
	if b.ViewSeq != nil {
		nb.ViewSeq = append([]string(nil), b.ViewSeq...)
	}
	for name, v := range b.Views {
		nb.Views[name] = v.Clone()
	}
	if len(b.Attrs) > 0 {
		nb.Attrs = make(map[string]string, len(b.Attrs))
		for k, v := range b.Attrs {
			nb.Attrs[k] = v
		}
	}
	return nb
}

// AddView installs a view, keeping declaration order.
func (b *Box) AddView(v *View) {
	if _, dup := b.Views[v.Name]; !dup {
		b.ViewSeq = append(b.ViewSeq, v.Name)
	}
	b.Views[v.Name] = v
}

// CurrentView resolves the active view per the view attribute, falling back
// to default, then to the first declared view.
func (b *Box) CurrentView() *View {
	name := b.Attrs[AttrView]
	if name == "" {
		name = DefaultView
	}
	if v, ok := b.Views[name]; ok {
		return v
	}
	if v, ok := b.Views[DefaultView]; ok {
		return v
	}
	if len(b.ViewSeq) > 0 {
		return b.Views[b.ViewSeq[0]]
	}
	return &View{Name: DefaultView}
}

// Trimmed reports the trimmed attribute.
func (b *Box) Trimmed() bool { return b.Attrs[AttrTrimmed] == "true" }

// Collapsed reports the collapsed attribute.
func (b *Box) Collapsed() bool { return b.Attrs[AttrCollapsed] == "true" }

// SetAttr assigns a display attribute ("false"/"" clears boolean attrs),
// allocating the map on demand.
func (b *Box) SetAttr(key, value string) {
	if value == "" || value == "false" {
		delete(b.Attrs, key)
		return
	}
	if b.Attrs == nil {
		b.Attrs = make(map[string]string)
	}
	b.Attrs[key] = value
}

// Member returns the named item from the box's current view, searching
// other views as a fallback (a WHERE clause may reference a field the
// active view hides).
func (b *Box) Member(name string) (Item, bool) {
	for _, it := range b.CurrentView().Items {
		if it.Name == name {
			return it, true
		}
	}
	for _, vn := range b.ViewSeq {
		for _, it := range b.Views[vn].Items {
			if it.Name == name {
				return it, true
			}
		}
	}
	return Item{}, false
}

// Stats summarizes an extraction for the performance harness (Table 4).
type Stats struct {
	Objects    int    // boxes extracted
	Bytes      uint64 // target bytes transferred during extraction
	Reads      uint64 // read transactions
	DurationNS int64  // extraction wall/virtual time
}

// Graph is the extracted object graph.
type Graph struct {
	Name   string
	RootID string   // primary root (first plot)
	Roots  []string // all plotted roots, in plot order
	Boxes  map[string]*Box
	Order  []string // insertion order for deterministic rendering
	Stats  Stats

	// arena is the current chunk of the graph-owned box store (NewBoxIn).
	// Full chunks are dropped from here but stay alive through the Boxes
	// pointers; a chunk is never reallocated, so handed-out *Box are stable.
	arena []Box
}

// New creates an empty graph.
func New(name string) *Graph {
	return &Graph{Name: name, Boxes: make(map[string]*Box)}
}

// NewSized creates an empty graph pre-sized for about n boxes, so repeated
// extractions of a known figure skip the map-rehash and order-slice growth
// of a cold build.
func NewSized(name string, n int) *Graph {
	if n <= 0 {
		return New(name)
	}
	return &Graph{
		Name:  name,
		Boxes: make(map[string]*Box, n),
		Order: make([]string, 0, n),
		arena: make([]Box, 0, n),
	}
}

// boxChunk is the arena fallback granularity: small, because a correctly
// pre-sized graph (NewSized) never overflows its first chunk, and an unsized
// one shouldn't hold a page of dead boxes per small graph.
const boxChunk = 16

// NewBoxIn allocates a box owned by the graph, carved from its chunked
// arena — one allocation per boxChunk boxes instead of one per box. The box
// lives exactly as long as the graph, which is what every extraction run
// wants; use NewBox for a box with independent lifetime (memo clones).
func (g *Graph) NewBoxIn(id, label, typeName string, addr uint64) *Box {
	if len(g.arena) == cap(g.arena) {
		g.arena = make([]Box, 0, boxChunk)
	}
	g.arena = append(g.arena, Box{
		ID: id, Label: label, TypeName: typeName, Addr: addr,
		Views: make(map[string]*View),
	})
	return &g.arena[len(g.arena)-1]
}

// BoxID builds the canonical box identifier for a typed object.
func BoxID(label string, addr uint64) string {
	// Hand-rolled "%s@0x%x": one ID per box built makes this a measurable
	// fraction of extraction allocations under fmt.
	var tmp [16]byte
	var sb strings.Builder
	sb.Grow(len(label) + 3 + 16)
	sb.WriteString(label)
	sb.WriteString("@0x")
	sb.Write(strconv.AppendUint(tmp[:0], addr, 16))
	return sb.String()
}

// Add inserts a box (no-op if the ID is already present) and returns the
// canonical instance.
func (g *Graph) Add(b *Box) *Box {
	if exist, ok := g.Boxes[b.ID]; ok {
		return exist
	}
	g.Boxes[b.ID] = b
	g.Order = append(g.Order, b.ID)
	return b
}

// Get looks up a box by ID.
func (g *Graph) Get(id string) (*Box, bool) {
	b, ok := g.Boxes[id]
	return b, ok
}

// ByType returns all boxes whose TypeName or Label equals name, in
// insertion order. ViewQL's "SELECT task_struct FROM *".
func (g *Graph) ByType(name string) []*Box {
	var out []*Box
	for _, id := range g.Order {
		b := g.Boxes[id]
		if b.TypeName == name || b.Label == name {
			out = append(out, b)
		}
	}
	return out
}

// All returns every box in insertion order.
func (g *Graph) All() []*Box {
	out := make([]*Box, 0, len(g.Order))
	for _, id := range g.Order {
		out = append(out, g.Boxes[id])
	}
	return out
}

// Neighbors returns the box IDs directly referenced by b's current view
// (links, containers, nested boxes).
func (g *Graph) Neighbors(b *Box) []string {
	var out []string
	for _, it := range b.CurrentView().Items {
		switch it.Kind {
		case ItemLink, ItemBox:
			if it.TargetID != "" {
				out = append(out, it.TargetID)
			}
		case ItemContainer:
			for _, e := range it.Elems {
				if e != "" {
					out = append(out, e)
				}
			}
		}
	}
	return out
}

// Reachable computes the set of box IDs reachable from the given seeds
// (inclusive) following current-view edges. ViewQL's REACHABLE(v).
func (g *Graph) Reachable(seeds []string) map[string]bool {
	seen := make(map[string]bool)
	stack := append([]string(nil), seeds...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		b, ok := g.Boxes[id]
		if !ok {
			continue
		}
		seen[id] = true
		stack = append(stack, g.Neighbors(b)...)
	}
	return seen
}

// Types returns the distinct TypeNames present, sorted.
func (g *Graph) Types() []string {
	set := map[string]bool{}
	for _, b := range g.Boxes {
		if b.TypeName != "" {
			set[b.TypeName] = true
		}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Summary renders a one-line description, for logs and the pane list.
func (g *Graph) Summary() string {
	return fmt.Sprintf("%s: %d boxes, %d types, root=%s", g.Name, len(g.Boxes), len(g.Types()), g.RootID)
}

// TextValue formats a raw scalar the way WHERE literals are written, so
// string comparisons against rendered text behave predictably.
func TextValue(raw uint64, signed bool) string {
	if signed {
		return strconv.FormatInt(int64(raw), 10)
	}
	return strconv.FormatUint(raw, 10)
}

// ParseBoxAddr extracts the address from a canonical box ID; 0 if the ID is
// not canonical.
func ParseBoxAddr(id string) uint64 {
	i := strings.LastIndex(id, "@0x")
	if i < 0 {
		return 0
	}
	v, err := strconv.ParseUint(id[i+3:], 16, 64)
	if err != nil {
		return 0
	}
	return v
}
