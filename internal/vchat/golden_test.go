package vchat_test

import (
	"testing"

	"visualinux/internal/kernelsim"
	"visualinux/internal/obs"
	"visualinux/internal/vchat"
	"visualinux/internal/vclstdlib"
)

// TestGoldenCorpus pins vchat's full output surface across both intent
// paths: synthesis phrases pin the exact ViewQL emitted, and diagnostic
// questions pin the rendered diagnosis text built from a synthetic span
// tree (synthetic so the corpus is wall-clock free and byte-stable).
func TestGoldenCorpus(t *testing.T) {
	t.Run("synthesis", testGoldenSynthesis)
	t.Run("diagnosis", testGoldenDiagnosis)
}

func testGoldenSynthesis(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	cases := []struct {
		figure string
		phrase string
		want   string
	}{
		{
			// Bare-"and" clause split plus the except/number-list guard,
			// in one request.
			figure: "3-4",
			phrase: "shrink tasks that have no address space and hide the tasks except for pids 1 and 100",
			want: "a1 = SELECT Task FROM * WHERE mm == NULL\n" +
				"UPDATE a1 WITH collapsed: true\n" +
				"a2 = SELECT Task FROM *\n" +
				"a3 = SELECT Task FROM * WHERE pid == 1 OR pid == 100\n" +
				"UPDATE a2 \\ a3 WITH trimmed: true\n",
		},
		{
			// " then " split with anaphora across the boundary.
			figure: "3-4",
			phrase: "find the tasks whose pid is 1, then shrink them",
			want: "a1 = SELECT Task FROM * AS self WHERE pid == 1\n" +
				"UPDATE a1 WITH collapsed: true\n",
		},
		{
			// Conjoined member phrase ("write and receive buffers") must
			// survive the bare-"and" splitter intact.
			figure: "socketconn",
			phrase: "hide sockets whose write and receive buffers are both empty",
			want: "a1 = SELECT sock FROM * WHERE tx_qlen == 0 AND rx_qlen == 0\n" +
				"UPDATE a1 WITH trimmed: true\n",
		},
	}
	for _, tc := range cases {
		fig, ok := vclstdlib.FigureByID(tc.figure)
		if !ok {
			t.Fatalf("no figure %s", tc.figure)
		}
		g := extract(t, k, "fig"+tc.figure, fig.Program)
		got, err := vchat.Synthesize(g, tc.phrase)
		if err != nil {
			t.Errorf("%q: %v", tc.phrase, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%q:\ngot:\n%s\nwant:\n%s", tc.phrase, got, tc.want)
		}
	}
}

// goldenTrace is a round shaped like a real incremental extraction, with
// microsecond durations chosen so every share is a round percentage.
func goldenTrace() *obs.SpanExport {
	return &obs.SpanExport{
		Name: "vplot:fig3-6", DurUS: 10000,
		Children: []*obs.SpanExport{
			{Name: "plot:pidhash", DurUS: 9000,
				Children: []*obs.SpanExport{
					{Name: "box:Task", DurUS: 7000,
						Children: []*obs.SpanExport{
							{Name: "snapshot.revalidate", DurUS: 4000,
								Children: []*obs.SpanExport{
									{Name: "target.read", DurUS: 2000, Tags: map[string]string{"model_ns": "1500000"}},
									{Name: "snapshot.subpage", DurUS: 1000},
								}},
							{Name: "memo.verify", DurUS: 2000,
								Children: []*obs.SpanExport{
									{Name: "target.read", DurUS: 500, Tags: map[string]string{"model_ns": "400000"}},
								}},
						}},
					{Name: "container:list", DurUS: 1000},
				}},
			{Name: "render", DurUS: 500},
		},
	}
}

func testGoldenDiagnosis(t *testing.T) {
	o := obs.NewObserver()
	o.Traces.Record(3, "fig3-6", 10, goldenTrace())
	// Two history snapshots bracketing the round, so the diagnosis reports
	// the suspect stage's counter deltas.
	o.BoxBuilds.Add(10)
	o.History.Snapshot(o.Registry)
	o.BoxBuilds.Add(20)
	o.SnapMisses.Add(5)
	o.History.Snapshot(o.Registry)

	v := vchat.Observations{
		Obs:      o,
		Figure:   func(pane int) (string, bool) { return "fig3-6", pane == 3 },
		Baseline: func(fig string) (float64, bool) { return 2.5, fig == "fig3-6" },
	}
	d, err := v.Diagnose(3)
	if err != nil {
		t.Fatal(err)
	}
	want := "pane 3 (fig3-6): last round took 10.000ms (1.900ms modeled link time) — 4.0x the steady-state bench baseline of 2.500ms.\n" +
		"dominant stage: build (30% of the round)\n" +
		"  build        3.000ms   30%  (3 spans)\n" +
		"  link         2.500ms   25%  (2 spans)\n" +
		"  revalidate   2.000ms   20%  (2 spans)\n" +
		"  memo         1.500ms   15%  (1 spans)\n" +
		"  other        0.500ms    5%  (1 spans)\n" +
		"  render       0.500ms    5%  (1 spans)\n" +
		"supporting counters: vl_extract_box_builds_total +20, vl_snapshot_page_misses_total +5\n"
	got := d.Render()
	if got != want {
		t.Errorf("rendered diagnosis drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
