// Stream diagnosis: the third intent path of vchat. "Why is my stream
// laggy?" is answered from the fan-out broker's health snapshot (per-client
// queue depth, lag, drop/coalesce counts) joined with the retained fan-out
// round span trees — the same evidence /debug/stream and the TraceStore
// hold, folded into one verdict.
package vchat

import (
	"fmt"
	"sort"
	"strings"

	"visualinux/internal/stream"
)

// StreamReport is the structured answer to "why is my stream laggy?".
type StreamReport struct {
	Clients   int    `json:"clients"`
	Seq       uint64 `json:"seq"` // newest broadcast sequence
	Sent      uint64 `json:"frames_sent"`
	Dropped   uint64 `json:"frames_dropped"`
	Coalesced uint64 `json:"frames_coalesced"`

	// Slow lists the clients with a backlog or a coalescing history,
	// worst backlog first.
	Slow []stream.ClientHealth `json:"slow,omitempty"`

	// FanoutP95MS is the p95 wall duration of the retained fan-out rounds
	// (serialize + enqueue, publisher side); FanoutRounds is how many
	// rounds that percentile is over.
	FanoutP95MS  float64 `json:"fanout_p95_ms,omitempty"`
	FanoutRounds int     `json:"fanout_rounds"`

	Verdict string `json:"verdict"`
}

// StreamLag builds the stream diagnosis. The health snapshot comes from
// the serving layer via Observations.Stream.
func (v Observations) StreamLag() (*StreamReport, error) {
	if v.Stream == nil {
		return nil, fmt.Errorf("diagnose: session is not serving a stream (start vlserver)")
	}
	h := v.Stream()
	if h == nil {
		return nil, fmt.Errorf("diagnose: stream broker unavailable")
	}
	r := &StreamReport{Clients: len(h.Clients), Seq: h.Seq}
	for _, c := range h.Clients {
		r.Sent += c.FramesSent
		r.Dropped += c.FramesDropped
		r.Coalesced += c.FramesCoalesced
		if c.QueueDepth > 0 || c.LagFrames > 0 || c.FramesCoalesced > 0 {
			r.Slow = append(r.Slow, c)
		}
	}
	sort.Slice(r.Slow, func(i, j int) bool {
		if r.Slow[i].LagFrames != r.Slow[j].LagFrames {
			return r.Slow[i].LagFrames > r.Slow[j].LagFrames
		}
		return r.Slow[i].FramesDropped > r.Slow[j].FramesDropped
	})
	if v.Obs != nil {
		var durs []float64
		for _, rec := range v.Obs.Traces.History(stream.FanoutTracePane) {
			durs = append(durs, rec.DurMS)
		}
		r.FanoutRounds = len(durs)
		if len(durs) > 0 {
			sort.Float64s(durs)
			r.FanoutP95MS = durs[(len(durs)*95)/100]
		}
	}
	r.Verdict = r.verdict()
	return r, nil
}

// verdict folds the evidence into the one-line answer.
func (r *StreamReport) verdict() string {
	switch {
	case r.Clients == 0:
		return "no stream clients connected — nothing is lagging"
	case len(r.Slow) == 0:
		return fmt.Sprintf("all %d clients are keeping up; the publisher is not the bottleneck", r.Clients)
	default:
		w := r.Slow[0]
		return fmt.Sprintf("client %d is the slow consumer: %d frames behind (queue depth %d, %d dropped / %d coalesced so far) — it is receiving latest-wins snapshots while the other %d clients get every delta",
			w.ID, w.LagFrames, w.QueueDepth, w.FramesDropped, w.FramesCoalesced, r.Clients-1)
	}
}

// Render formats the stream report as the plain text vchat answers with.
func (r *StreamReport) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "stream: %d clients, %d frames sent (%d coalesced, %d dropped as superseded), seq %d.\n",
		r.Clients, r.Sent, r.Coalesced, r.Dropped, r.Seq)
	if r.FanoutRounds > 0 {
		fmt.Fprintf(&sb, "publisher fan-out p95 over %d retained rounds: %s\n", r.FanoutRounds, fmtMS(r.FanoutP95MS))
	}
	for _, c := range r.Slow {
		fmt.Fprintf(&sb, "  client %-3d %-5s %4d behind  depth %-3d  %d dropped  %d coalesced  last lag %s\n",
			c.ID, c.Format, c.LagFrames, c.QueueDepth, c.FramesDropped, c.FramesCoalesced, fmtMS(c.LastLagMS))
	}
	sb.WriteString(r.Verdict)
	sb.WriteString("\n")
	return sb.String()
}
