package vchat_test

import (
	"strings"
	"testing"

	"visualinux/internal/expr"
	"visualinux/internal/graph"
	"visualinux/internal/kernelsim"
	"visualinux/internal/vchat"
	"visualinux/internal/vclstdlib"
	"visualinux/internal/viewcl"
	"visualinux/internal/viewql"
)

func extract(t testing.TB, k *kernelsim.Kernel, name, src string) *graph.Graph {
	t.Helper()
	env := expr.NewEnv(k.Target())
	kernelsim.RegisterHelpers(env)
	in := viewcl.New(env)
	for id, set := range kernelsim.FlagSets() {
		var fl []viewcl.Flag
		for _, b := range set {
			fl = append(fl, viewcl.Flag{Mask: b.Mask, Name: b.Name})
		}
		in.Flags[id] = fl
	}
	res, err := in.RunSource(name, src)
	if err != nil {
		t.Fatalf("viewcl %s: %v", name, err)
	}
	return res.Graph
}

// attrState snapshots (box, attr) and (box, member, attr) assignments so two
// ViewQL programs can be compared by effect, not by text.
func attrState(g *graph.Graph) map[string]string {
	out := make(map[string]string)
	for _, b := range g.All() {
		for k, v := range b.Attrs {
			out[b.ID+"/"+k] = v
		}
		seen := map[string]bool{}
		for _, vn := range b.ViewSeq {
			for _, it := range b.Views[vn].Items {
				if seen[it.Name] {
					continue
				}
				seen[it.Name] = true
				for k, v := range it.Attrs {
					out[b.ID+"."+it.Name+"/"+k] = v
				}
			}
		}
	}
	return out
}

func diffState(a, b map[string]string) []string {
	var d []string
	for k, v := range b {
		if a[k] != v {
			d = append(d, k+"="+v)
		}
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			d = append(d, k+" removed")
		}
	}
	return d
}

// TestTable3Synthesis is experiment E2: for each Table 3 objective, the
// rule-based synthesizer must produce a ViewQL program whose effect on the
// figure equals the reference program's effect. The paper reports 10/10
// correct synthesis with DeepSeek-V2; we require 10/10 from the rule engine.
func TestTable3Synthesis(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	total, correct := 0, 0
	for _, fig := range vclstdlib.Figures() {
		if fig.Objective == nil {
			continue
		}
		fig := fig
		total++
		ok := t.Run(fig.ID, func(t *testing.T) {
			// Reference effect.
			gRef := extract(t, k, fig.ID, fig.Program)
			if err := viewql.NewEngine(gRef).Apply(fig.Objective.ViewQL); err != nil {
				t.Fatalf("reference ViewQL: %v", err)
			}
			want := attrState(gRef)

			// Synthesized effect.
			gSyn := extract(t, k, fig.ID, fig.Program)
			prog, err := vchat.Synthesize(gSyn, fig.Objective.Description)
			if err != nil {
				t.Fatalf("synthesize %q: %v", fig.Objective.Description, err)
			}
			if err := viewql.NewEngine(gSyn).Apply(prog); err != nil {
				t.Fatalf("apply synthesized program:\n%s\nerror: %v", prog, err)
			}
			got := attrState(gSyn)

			// Box IDs differ across extractions only if extraction is
			// nondeterministic — it is deterministic, so compare directly.
			if d := diffState(want, got); len(d) != 0 {
				t.Errorf("effect mismatch for %q:\nsynthesized:\n%s\ndiff (%d): %v",
					fig.Objective.Description, prog, len(d), d[:min(8, len(d))])
			}
		})
		if ok {
			correct++
		}
	}
	if total != 10 {
		t.Errorf("Table 3 has %d objectives, want 10", total)
	}
	t.Logf("Table 3 synthesis: %d/%d correct", correct, total)
}

// The paper's §2.4 example: "display the task_structs that have non-null mm
// members with the show_mm view."
func TestSynthesisShowMM(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	g := extract(t, k, "3-4", vclstdlib.Fig3_4)
	prog, err := vchat.Synthesize(g, "display the show_children view of task_struct objects that have a mm")
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	if !strings.Contains(prog, "view: show_children") {
		t.Errorf("missing view update:\n%s", prog)
	}
	if err := viewql.NewEngine(g).Apply(prog); err != nil {
		t.Fatalf("apply: %v", err)
	}
}

// The paper's §3.2 StackRot instruction: pin one node, hide the rest.
func TestSynthesisPinNode(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	g := extract(t, k, "stackrot", vclstdlib.StackRotProgram)
	victim := k.StackRotVictim.Addr
	req := "Find me all vm_area_struct whose address is not 0x" +
		strings.ToLower(hex(victim)) + ", and hide them"
	prog, err := vchat.Synthesize(g, req)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	if err := viewql.NewEngine(g).Apply(prog); err != nil {
		t.Fatalf("apply:\n%s\n%v", prog, err)
	}
	kept, trimmed := 0, 0
	for _, b := range g.ByType("vm_area_struct") {
		if b.Trimmed() {
			trimmed++
		} else {
			kept++
			if b.Addr != victim {
				t.Errorf("non-victim VMA %s kept", b.ID)
			}
		}
	}
	if kept != 1 || trimmed == 0 {
		t.Errorf("kept=%d trimmed=%d; want exactly the victim kept", kept, trimmed)
	}
}

func hex(v uint64) string {
	const digits = "0123456789abcdef"
	var b []byte
	for i := 60; i >= 0; i -= 4 {
		d := (v >> uint(i)) & 0xF
		if d != 0 || len(b) > 0 || i == 0 {
			b = append(b, digits[d])
		}
	}
	return string(b)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestPhrasingVariants: the same intent in several phrasings must ground to
// semantically equivalent programs.
func TestPhrasingVariants(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	g := extract(t, k, "3-4", vclstdlib.Fig3_4)
	for _, req := range []string{
		"shrink tasks that have no mm",
		"collapse all tasks whose mm is null",
		"shrink every task_struct that has no address space",
		"collapse processes whose mm is not set",
	} {
		prog, err := vchat.Synthesize(g, req)
		if err != nil {
			t.Errorf("%q: %v", req, err)
			continue
		}
		if !strings.Contains(prog, "mm == NULL") || !strings.Contains(prog, "collapsed: true") {
			t.Errorf("%q synthesized:\n%s", req, prog)
		}
	}
	for _, req := range []string{
		"hide tasks whose pid is 1",
		"remove task_struct entries where pid == 1",
		"make tasks with pid == 1 invisible",
	} {
		prog, err := vchat.Synthesize(g, req)
		if err != nil {
			t.Errorf("%q: %v", req, err)
			continue
		}
		if !strings.Contains(prog, "pid == 1") || !strings.Contains(prog, "trimmed: true") {
			t.Errorf("%q synthesized:\n%s", req, prog)
		}
	}
}

// TestMultiClause: several actions in one request.
func TestMultiClause(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	g := extract(t, k, "3-4", vclstdlib.Fig3_4)
	prog, err := vchat.Synthesize(g,
		"Display view show_children of all tasks; shrink tasks that have no mm, and hide tasks whose pid is 0")
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	for _, want := range []string{"view: show_children", "mm == NULL", "pid == 0", "trimmed: true", "collapsed: true"} {
		if !strings.Contains(prog, want) {
			t.Errorf("missing %q in:\n%s", want, prog)
		}
	}
	if err := viewql.NewEngine(g).Apply(prog); err != nil {
		t.Fatalf("apply:\n%s\n%v", prog, err)
	}
}

// TestUngroundableRequests: nonsense must fail, not guess.
func TestUngroundableRequests(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	g := extract(t, k, "7-1", vclstdlib.Fig7_1)
	for _, req := range []string{
		"",
		"frobnicate the wombats",
		"shrink quasars that have no flux",
		"shrink tasks that have no such_member_anywhere",
	} {
		if prog, err := vchat.Synthesize(g, req); err == nil {
			t.Errorf("%q accepted:\n%s", req, prog)
		}
	}
}
