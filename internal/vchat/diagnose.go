// Diagnosis: the second intent path of vchat. Visualization requests are
// synthesized into ViewQL (vchat.go); performance questions — "why is pane
// 3 slow?", "which pane is slowest?", "what changed since the last stop?" —
// are answered from retained observability data: the per-pane trace store,
// the metrics-history ring, and the steady-state bench baseline. Nothing
// here consults /debug/trace; the span trees are already in memory.
package vchat

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"visualinux/internal/obs"
	"visualinux/internal/stream"
)

// Intent routes one vchat message.
type Intent int

const (
	// IntentSynthesize is the classic path: the message describes a
	// visualization change and becomes a ViewQL program.
	IntentSynthesize Intent = iota
	// IntentDiagnosePane asks why a pane is slow.
	IntentDiagnosePane
	// IntentSlowestPane asks which pane is slowest.
	IntentSlowestPane
	// IntentWhatChanged asks what changed since the previous round.
	IntentWhatChanged
	// IntentStreamLag asks why the live stream is lagging.
	IntentStreamLag
	// IntentFleet asks a cross-target question ("which target has the
	// longest runqueue?") answered by fanning out over the session fleet
	// and ranking the per-target results.
	IntentFleet
)

// Classify decides which intent a message carries and extracts a pane
// number when the message names one ("pane 3", "@3"); pane is 0 when the
// message leaves the target implicit.
func Classify(text string) (Intent, int) {
	low := strings.ToLower(text)
	pane := parsePane(low)
	switch {
	// Fleet questions outrank everything: "which fleet member has pane 3
	// slowest?" names a pane and says "slowest", but the subject is the
	// fleet, not this session.
	case strings.Contains(low, "which target") || strings.Contains(low, "which session") ||
		strings.Contains(low, "fleet member") || strings.Contains(low, "across the fleet") ||
		strings.Contains(low, "which fleet"):
		return IntentFleet, pane
	case strings.Contains(low, "what changed") || strings.Contains(low, "what has changed"):
		return IntentWhatChanged, pane
	// Stream questions outrank the generic slow/why check: "why is my
	// stream slow?" is about the push plane, not a pane's extraction.
	case strings.Contains(low, "stream") &&
		(strings.Contains(low, "lag") || strings.Contains(low, "slow") ||
			strings.Contains(low, "behind") || strings.Contains(low, "drop") ||
			strings.Contains(low, "stuck") || strings.Contains(low, "why")):
		return IntentStreamLag, pane
	case strings.Contains(low, "slowest"):
		return IntentSlowestPane, pane
	case strings.Contains(low, "slow") && (strings.Contains(low, "why") || strings.Contains(low, "diagnose")):
		return IntentDiagnosePane, pane
	case strings.HasPrefix(strings.TrimSpace(low), "diagnose"):
		return IntentDiagnosePane, pane
	}
	return IntentSynthesize, pane
}

// parsePane finds "pane N" or "@N" in a lowercased message.
func parsePane(low string) int {
	words := strings.FieldsFunc(low, func(r rune) bool { return r == ' ' || r == '?' || r == ',' })
	for i, w := range words {
		if strings.HasPrefix(w, "@") {
			if n, err := strconv.Atoi(w[1:]); err == nil && n > 0 {
				return n
			}
		}
		if w == "pane" && i+1 < len(words) {
			if n, err := strconv.Atoi(words[i+1]); err == nil && n > 0 {
				return n
			}
		}
	}
	return 0
}

// Observations is the retained data the diagnosis layer answers from. The
// caller (core.Session) supplies the pane→figure mapping and the optional
// steady-state baseline lookup; everything else comes from the observer.
type Observations struct {
	Obs *obs.Observer
	// Figure maps a pane ID to its figure/extraction name.
	Figure func(pane int) (string, bool)
	// Baseline returns the steady-state duration baseline for a figure in
	// milliseconds (e.g. from BENCH_4.json), ok=false when unknown.
	Baseline func(figure string) (float64, bool)
	// Stream snapshots the serving layer's fan-out broker health; nil when
	// the session is not being served over HTTP.
	Stream func() *stream.Health
}

// Diagnosis is the structured answer to "why is pane N slow?".
type Diagnosis struct {
	Pane    int     `json:"pane"`
	Figure  string  `json:"figure"`
	Round   uint64  `json:"round"`    // trace-store admission sequence
	TotalMS float64 `json:"total_ms"` // the round's span-tree total
	ModelMS float64 `json:"model_ms,omitempty"`

	Suspect      string  `json:"suspect"` // dominant attribution stage
	SuspectShare float64 `json:"suspect_share"`

	Breakdown *obs.StageBreakdown `json:"breakdown"`

	BaselineMS     float64 `json:"baseline_ms,omitempty"`
	BaselineSource string  `json:"baseline_source,omitempty"` // "bench" | "history"
	BaselineRatio  float64 `json:"baseline_ratio,omitempty"`

	// Counters carries supporting counter deltas (between the last two
	// metrics-history points when the ring has them, otherwise absolute
	// totals, marked by BaselineSource-independent "total:" prefix).
	Counters map[string]float64 `json:"counters,omitempty"`
	Rounds   int                `json:"rounds"` // retained rounds for this pane
}

// supportingCounters names the registry series that corroborate each stage.
var supportingCounters = map[string][]string{
	obs.StageLink: {
		"vl_target_link_transactions_total", "vl_target_link_bytes_total",
		"vl_target_link_continuations_total",
	},
	obs.StageRevalidate: {
		"vl_snapshot_revalidations_total", "vl_snapshot_dirty_promotions_total",
		"vl_snapshot_stale_refetches_total", "vl_snapshot_subpage_fills_total",
	},
	obs.StageMemo: {
		"vl_extract_box_reuse_total",
	},
	obs.StageBuild: {
		"vl_extract_box_builds_total", "vl_snapshot_page_misses_total",
	},
}

// Diagnose answers "why is pane N slow?" from the pane's retained span
// trees.
func (v Observations) Diagnose(pane int) (*Diagnosis, error) {
	if v.Obs == nil {
		return nil, fmt.Errorf("diagnose: session has no observer")
	}
	rec, ok := v.Obs.Traces.Last(pane)
	if !ok {
		return nil, fmt.Errorf("diagnose: no retained trace for pane %d (only plotted panes are traced)", pane)
	}
	return v.diagnoseRecord(rec)
}

func (v Observations) diagnoseRecord(rec obs.TraceRecord) (*Diagnosis, error) {
	b := obs.Attribute(rec.Trace)
	if b == nil || b.TotalUS == 0 {
		return nil, fmt.Errorf("diagnose: pane %d trace is empty", rec.Pane)
	}
	dom := b.Dominant()
	d := &Diagnosis{
		Pane: rec.Pane, Figure: rec.Figure, Round: rec.Seq,
		TotalMS:      float64(b.TotalUS) / 1000,
		ModelMS:      float64(b.ModelNS) / 1e6,
		Suspect:      dom.Stage,
		SuspectShare: dom.Share,
		Breakdown:    b,
		Rounds:       v.Obs.Traces.Len(rec.Pane),
	}
	v.fillBaseline(d, rec)
	d.Counters = v.counterDeltas(dom.Stage)
	return d, nil
}

// fillBaseline prefers the committed bench baseline; without one it falls
// back to the median of the pane's earlier retained rounds.
func (v Observations) fillBaseline(d *Diagnosis, rec obs.TraceRecord) {
	if v.Baseline != nil {
		if ms, ok := v.Baseline(rec.Figure); ok && ms > 0 {
			d.BaselineMS, d.BaselineSource = ms, "bench"
			d.BaselineRatio = d.TotalMS / ms
			return
		}
	}
	hist := v.Obs.Traces.History(rec.Pane)
	var prior []float64
	for _, h := range hist {
		if h.Seq != rec.Seq {
			prior = append(prior, h.DurMS)
		}
	}
	if len(prior) == 0 {
		return
	}
	sort.Float64s(prior)
	med := prior[len(prior)/2]
	if med <= 0 {
		return
	}
	d.BaselineMS, d.BaselineSource = med, "history"
	d.BaselineRatio = d.TotalMS / med
}

// counterDeltas pulls the suspect stage's supporting series from the
// metrics-history ring: the delta between the last two snapshots when the
// ring has them, otherwise current absolute totals.
func (v Observations) counterDeltas(stage string) map[string]float64 {
	names := supportingCounters[stage]
	if len(names) == 0 {
		return nil
	}
	out := make(map[string]float64)
	pts := v.Obs.History.Points()
	if len(pts) >= 2 {
		prev, cur := pts[len(pts)-2].Values, pts[len(pts)-1].Values
		for _, n := range names {
			if delta := cur[n] - prev[n]; delta != 0 {
				out[n] = delta
			}
		}
	} else if v.Obs.Registry != nil {
		vals := v.Obs.Registry.Values()
		for _, n := range names {
			if vals[n] != 0 {
				out["total:"+n] = vals[n]
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Slowest answers "which pane is slowest?" by diagnosing every retained
// pane's latest round and picking the largest total.
func (v Observations) Slowest() (*Diagnosis, error) {
	if v.Obs == nil {
		return nil, fmt.Errorf("diagnose: session has no observer")
	}
	var worst *obs.TraceRecord
	for _, pane := range v.Obs.Traces.Panes() {
		rec, ok := v.Obs.Traces.Last(pane)
		if !ok {
			continue
		}
		if worst == nil || rec.DurMS > worst.DurMS {
			r := rec
			worst = &r
		}
	}
	if worst == nil {
		return nil, fmt.Errorf("diagnose: no retained traces yet; vplot first")
	}
	return v.diagnoseRecord(*worst)
}

// ChangeReport answers "what changed since the last stop?" for one pane:
// the latest two retained rounds compared stage by stage.
type ChangeReport struct {
	Pane       int     `json:"pane"`
	Figure     string  `json:"figure"`
	PrevMS     float64 `json:"prev_ms"`
	CurMS      float64 `json:"cur_ms"`
	Prev, Cur  *obs.StageBreakdown
	DeltaMS    float64            `json:"delta_ms"`
	Counters   map[string]float64 `json:"counters,omitempty"`
	MovedStage string             `json:"moved_stage"` // stage with the largest absolute swing
}

// Changes compares a pane's last two retained rounds.
func (v Observations) Changes(pane int) (*ChangeReport, error) {
	if v.Obs == nil {
		return nil, fmt.Errorf("diagnose: session has no observer")
	}
	hist := v.Obs.Traces.History(pane)
	if len(hist) == 0 {
		return nil, fmt.Errorf("diagnose: no retained trace for pane %d", pane)
	}
	if len(hist) < 2 {
		return nil, fmt.Errorf("diagnose: pane %d has only one retained round; run another stop→resume cycle", pane)
	}
	prev, cur := hist[len(hist)-2], hist[len(hist)-1]
	pb, cb := obs.Attribute(prev.Trace), obs.Attribute(cur.Trace)
	rep := &ChangeReport{
		Pane: pane, Figure: cur.Figure,
		PrevMS: float64(pb.TotalUS) / 1000, CurMS: float64(cb.TotalUS) / 1000,
		Prev: pb, Cur: cb,
	}
	rep.DeltaMS = rep.CurMS - rep.PrevMS
	var worstSwing int64 = -1
	for _, stage := range []string{obs.StageLink, obs.StageRevalidate, obs.StageMemo, obs.StageBuild, obs.StageRender, obs.StageOther} {
		swing := cb.Stage(stage).DurUS - pb.Stage(stage).DurUS
		if swing < 0 {
			swing = -swing
		}
		if swing > worstSwing {
			worstSwing, rep.MovedStage = swing, stage
		}
	}
	rep.Counters = v.counterDeltas(rep.MovedStage)
	return rep, nil
}

// --- rendering ----------------------------------------------------------------

// Render formats the diagnosis as the plain text vchat answers with.
func (d *Diagnosis) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pane %d (%s): last round took %s", d.Pane, d.Figure, fmtMS(d.TotalMS))
	if d.ModelMS > 0 {
		fmt.Fprintf(&sb, " (%s modeled link time)", fmtMS(d.ModelMS))
	}
	switch d.BaselineSource {
	case "bench":
		fmt.Fprintf(&sb, " — %.1fx the steady-state bench baseline of %s", d.BaselineRatio, fmtMS(d.BaselineMS))
	case "history":
		fmt.Fprintf(&sb, " — %.1fx the median of its %d retained rounds (%s)", d.BaselineRatio, d.Rounds, fmtMS(d.BaselineMS))
	}
	sb.WriteString(".\n")
	fmt.Fprintf(&sb, "dominant stage: %s (%.0f%% of the round)\n", d.Suspect, d.SuspectShare*100)
	for _, s := range d.Breakdown.Stages {
		fmt.Fprintf(&sb, "  %-10s %9s  %3.0f%%  (%d spans)\n", s.Stage, fmtMS(float64(s.DurUS)/1000), s.Share*100, s.Spans)
	}
	if len(d.Counters) > 0 {
		sb.WriteString("supporting counters: ")
		sb.WriteString(fmtCounters(d.Counters))
		sb.WriteString("\n")
	}
	return sb.String()
}

// Render formats the change report as plain text.
func (r *ChangeReport) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pane %d (%s): %s -> %s since the previous round (%+.3fms)\n",
		r.Pane, r.Figure, fmtMS(r.PrevMS), fmtMS(r.CurMS), r.DeltaMS)
	fmt.Fprintf(&sb, "largest swing: %s (%+.3fms)\n", r.MovedStage,
		float64(r.Cur.Stage(r.MovedStage).DurUS-r.Prev.Stage(r.MovedStage).DurUS)/1000)
	for _, stage := range []string{obs.StageLink, obs.StageRevalidate, obs.StageMemo, obs.StageBuild, obs.StageRender, obs.StageOther} {
		p, c := r.Prev.Stage(stage), r.Cur.Stage(stage)
		if p.DurUS == 0 && c.DurUS == 0 {
			continue
		}
		fmt.Fprintf(&sb, "  %-10s %9s -> %-9s\n", stage, fmtMS(float64(p.DurUS)/1000), fmtMS(float64(c.DurUS)/1000))
	}
	if len(r.Counters) > 0 {
		sb.WriteString("supporting counters: ")
		sb.WriteString(fmtCounters(r.Counters))
		sb.WriteString("\n")
	}
	return sb.String()
}

func fmtMS(ms float64) string {
	return strconv.FormatFloat(ms, 'f', 3, 64) + "ms"
}

func fmtCounters(c map[string]float64) string {
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		v := c[k]
		if strings.HasPrefix(k, "total:") {
			parts = append(parts, fmt.Sprintf("%s=%g", strings.TrimPrefix(k, "total:"), v))
		} else {
			parts = append(parts, fmt.Sprintf("%s %+g", k, v))
		}
	}
	return strings.Join(parts, ", ")
}
