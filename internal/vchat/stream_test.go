package vchat

import (
	"strings"
	"testing"

	"visualinux/internal/obs"
	"visualinux/internal/stream"
)

func TestClassifyStreamLag(t *testing.T) {
	for _, msg := range []string{
		"why is my stream laggy?",
		"why is the stream slow",
		"the stream is falling behind",
		"is the stream dropping frames?",
		"stream stuck?",
	} {
		if intent, _ := Classify(msg); intent != IntentStreamLag {
			t.Errorf("Classify(%q) = %v, want IntentStreamLag", msg, intent)
		}
	}
	// The stream check must not swallow pane-extraction questions.
	if intent, pane := Classify("why is pane 3 slow?"); intent != IntentDiagnosePane || pane != 3 {
		t.Errorf("pane diagnosis misrouted: %v %d", intent, pane)
	}
	// A plain visualization request mentioning downstream words stays on
	// the synthesize path.
	if intent, _ := Classify("shrink tasks that have no address space"); intent != IntentSynthesize {
		t.Error("synthesize request misrouted")
	}
}

func TestStreamLagReport(t *testing.T) {
	o := obs.NewObserver()
	health := &stream.Health{
		Seq:      120,
		QueueCap: 16,
		Clients: []stream.ClientHealth{
			{ID: 1, Format: "json", FramesSent: 100},
			{ID: 2, Format: "json", FramesSent: 40, FramesDropped: 55, FramesCoalesced: 5,
				QueueDepth: 6, LastSeq: 120, DeliveredSeq: 100, LagFrames: 20, LastLagMS: 80},
		},
	}
	// Retained fan-out rounds give the publisher-side p95.
	for i := 0; i < 10; i++ {
		o.Traces.Record(stream.FanoutTracePane, "stream.fanout", float64(i+1), &obs.SpanExport{Name: "stream.round", DurUS: int64(i+1) * 1000})
	}
	v := Observations{Obs: o, Stream: func() *stream.Health { return health }}
	r, err := v.StreamLag()
	if err != nil {
		t.Fatal(err)
	}
	if r.Clients != 2 || r.Sent != 140 || r.Dropped != 55 || r.Coalesced != 5 {
		t.Fatalf("report totals: %+v", r)
	}
	if len(r.Slow) != 1 || r.Slow[0].ID != 2 {
		t.Fatalf("slow clients: %+v", r.Slow)
	}
	if r.FanoutRounds != 8 { // TraceStore keeps the last 8 per pane
		t.Fatalf("fanout rounds %d, want 8", r.FanoutRounds)
	}
	if r.FanoutP95MS < 9 || r.FanoutP95MS > 10 {
		t.Fatalf("fanout p95 %v", r.FanoutP95MS)
	}
	text := r.Render()
	for _, want := range []string{
		"2 clients", "140 frames sent", "client 2", "20 behind",
		"slow consumer", "latest-wins",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}

	// No clients and no slow clients produce calm verdicts.
	health.Clients = nil
	if r, _ := v.StreamLag(); !strings.Contains(r.Verdict, "no stream clients") {
		t.Fatalf("empty verdict: %q", r.Verdict)
	}
	health.Clients = []stream.ClientHealth{{ID: 1, FramesSent: 10}}
	if r, _ := v.StreamLag(); !strings.Contains(r.Verdict, "keeping up") {
		t.Fatalf("healthy verdict: %q", r.Verdict)
	}

	// Without a serving layer the question gets a pointed error.
	if _, err := (Observations{Obs: o}).StreamLag(); err == nil {
		t.Fatal("expected error without a Stream hook")
	}
}
