package vchat

import (
	"reflect"
	"testing"
)

// Regression: splitClauses must split on bare " and "/" then " only between
// complete clauses (next word opens an action), never inside noun phrases or
// number lists.
func TestSplitClauses(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		// Coordinated actions joined by a bare "and" must split.
		{"hide kernel threads and sort tasks by pid",
			[]string{"hide kernel threads", "sort tasks by pid"}},
		{"shrink the superblocks and make the timers invisible",
			[]string{"shrink the superblocks", "make the timers invisible"}},
		// A number list after "except for" must NOT split.
		{"trim all tasks except for pids 1 and 100",
			[]string{"trim all tasks except for pids 1 and 100"}},
		// A conjoined member phrase must NOT split.
		{"hide sockets whose write and receive buffers are both empty",
			[]string{"hide sockets whose write and receive buffers are both empty"}},
		// " then " between clauses splits; existing ", and "/"; " separators
		// keep working.
		{"find the tasks with pid 1 then hide them",
			[]string{"find the tasks with pid 1", "hide them"}},
		{"shrink the tasks, and hide the timers; collapse the files",
			[]string{"shrink the tasks", "hide the timers", "collapse the files"}},
		{"find vmas that are not writable, then collapse these and hide the pages",
			[]string{"find vmas that are not writable", "collapse these", "hide the pages"}},
		// Mixed: a protected number list inside one clause of a real split.
		{"trim tasks except for pids 1 and 100 and hide the superblocks",
			[]string{"trim tasks except for pids 1 and 100", "hide the superblocks"}},
		// Trailing period and whitespace are trimmed.
		{"  shrink the tasks.  ", []string{"shrink the tasks"}},
	}
	for _, tc := range cases {
		if got := splitClauses(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("splitClauses(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		in   string
		want Intent
		pane int
	}{
		{"why is pane 3 slow?", IntentDiagnosePane, 3},
		{"Why is pane 12 so slow", IntentDiagnosePane, 12},
		{"diagnose @2", IntentDiagnosePane, 2},
		{"diagnose", IntentDiagnosePane, 0},
		{"which pane is slowest?", IntentSlowestPane, 0},
		{"what changed since the last stop?", IntentWhatChanged, 0},
		{"what changed in pane 2 since the last resume", IntentWhatChanged, 2},
		// Visualization requests stay on the synthesis path, even ones that
		// mention panes or contain "slow"-adjacent words.
		{"shrink the tasks that have no mm", IntentSynthesize, 0},
		{"hide kernel threads and sort tasks by pid", IntentSynthesize, 0},
		{"show the slow path handlers", IntentSynthesize, 0},
	}
	for _, tc := range cases {
		intent, pane := Classify(tc.in)
		if intent != tc.want || pane != tc.pane {
			t.Errorf("Classify(%q) = (%v, %d), want (%v, %d)", tc.in, intent, pane, tc.want, tc.pane)
		}
	}
}
