// Package vchat synthesizes ViewQL programs from natural-language requests.
// The paper delegates this to an LLM (DeepSeek-V2) with in-context ViewQL
// examples; offline we substitute a deterministic rule engine that grounds
// noun phrases against the pane's actual graph schema (available box types
// and member names) and emits the same two-statement SELECT/UPDATE shapes.
// The substitution preserves the claim under test: ViewQL is simple enough
// that a textual request maps mechanically onto it (paper §2.4, §5.2).
package vchat

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"visualinux/internal/graph"
)

// typeAliases maps normalized nouns to kernel type names. Grounding first
// tries the graph's own type set; these aliases cover kernel jargon.
var typeAliases = map[string]string{
	"task": "task_struct", "tasks": "task_struct",
	"process": "task_struct", "processes": "task_struct",
	"thread": "task_struct", "threads": "task_struct",
	"vma": "vm_area_struct", "vmas": "vm_area_struct",
	"memoryarea": "vm_area_struct", "memoryareas": "vm_area_struct",
	"superblock": "super_block", "superblocks": "super_block",
	"socket": "sock", "sockets": "sock",
	"irqdescriptor": "irq_desc", "irqdescriptors": "irq_desc",
	"irqdesc": "irq_desc", "irqdescs": "irq_desc",
	"sigaction": "k_sigaction", "sigactions": "k_sigaction",
	"pidentry": "pid", "pidentries": "pid",
	"pidhashtableentry": "pid", "pidhashtableentries": "pid",
	"maplenode": "maple_node", "maplenodes": "maple_node",
	"page": "page", "pages": "page",
	"file": "file", "files": "file",
	"pipebuffer": "pipe_buffer", "pipebuffers": "pipe_buffer",
	"timer": "timer_list", "timers": "timer_list",
	"workitem": "work_struct", "workitems": "work_struct",
	"cache": "kmem_cache", "caches": "kmem_cache",
	"inode": "inode", "inodes": "inode",
	"dentry": "dentry", "dentries": "dentry",
}

// memberAliases maps member noun phrases to member names.
var memberAliases = map[string]string{
	"addressspace": "mm", "mm": "mm",
	"action": "action", "handler": "sa_handler",
	"blockdevice": "s_bdev",
	"writebuffer": "tx_qlen", "receivebuffer": "rx_qlen",
	"readbuffer":    "rx_qlen",
	"memorymapping": "nr_mmap", "mapping": "nr_mmap",
	"slotpointerlist": "slots", "slotlist": "slots", "slots": "slots",
	"pagelist": "pages", "pageslist": "pages",
	"pid": "pid", "pids": "pid", "nr": "nr",
	"children": "children",
}

// Synthesize converts a natural-language request into a ViewQL program for
// the given graph. It returns the program text (so the user can inspect
// exactly what will run, as with the paper's LLM output).
func Synthesize(g *graph.Graph, text string) (string, error) {
	s := &synth{g: g}
	clauses := splitClauses(text)
	if len(clauses) == 0 {
		return "", fmt.Errorf("vchat: empty request")
	}
	var out []string
	for _, cl := range clauses {
		stmts, err := s.clause(cl)
		if err != nil {
			return "", fmt.Errorf("vchat: %q: %w", cl, err)
		}
		out = append(out, stmts...)
	}
	if len(out) == 0 {
		return "", fmt.Errorf("vchat: could not understand %q", text)
	}
	return strings.Join(out, "\n") + "\n", nil
}

type synth struct {
	g       *graph.Graph
	setN    int
	lastSet string // antecedent for "them"/"these" anaphora
}

func (s *synth) fresh() string {
	s.setN++
	return fmt.Sprintf("a%d", s.setN)
}

// clauseVerbs are the words that can open an independent clause. A bare
// " and "/" then " splits a request only when what follows starts with one
// of these, so coordinated actions ("hide kernel threads and sort tasks by
// pid") split while noun-phrase conjunctions ("except for pids 1 and 100",
// "X and Y are both empty") stay intact.
var clauseVerbs = map[string]bool{
	"shrink": true, "collapse": true, "trim": true, "hide": true,
	"remove": true, "make": true, "display": true, "show": true,
	"plot": true, "draw": true, "find": true, "select": true,
	"sort": true, "let": true, "expand": true, "please": true,
}

// splitClauses breaks a request into independent actions.
func splitClauses(text string) []string {
	text = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(text), "."))
	for _, sep := range []string{"; ", ", and ", ". ", ", then ", " then "} {
		text = strings.ReplaceAll(text, sep, "\x00")
	}
	var out []string
	for _, c := range strings.Split(text, "\x00") {
		for _, part := range splitBareAnd(c) {
			part = strings.TrimSpace(part)
			if part != "" {
				out = append(out, part)
			}
		}
	}
	return out
}

// splitBareAnd splits a clause on " and " boundaries that start a new
// action (next word is a clause verb), leaving conjunctions inside noun
// phrases and number lists alone.
func splitBareAnd(text string) []string {
	var out []string
	rest := text
	for {
		low := strings.ToLower(rest)
		idx := -1
		for from := 0; ; {
			i := strings.Index(low[from:], " and ")
			if i < 0 {
				break
			}
			i += from
			after := strings.Fields(low[i+len(" and "):])
			if len(after) > 0 && clauseVerbs[after[0]] {
				idx = i
				break
			}
			from = i + len(" and ")
		}
		if idx < 0 {
			out = append(out, rest)
			return out
		}
		out = append(out, rest[:idx])
		rest = rest[idx+len(" and "):]
	}
}

func norm(s string) string {
	s = strings.ToLower(s)
	return strings.Map(func(r rune) rune {
		if r == '_' || r == ' ' || r == '-' || r == '/' {
			return -1
		}
		return r
	}, s)
}

// groundType resolves a noun phrase to a type present in the graph.
func (s *synth) groundType(phrase string) (string, bool) {
	cands := s.groundTypeAll(phrase)
	if len(cands) == 0 {
		return "", false
	}
	return cands[0], true
}

// groundTypeAll returns every plausible type for a noun phrase, most exact
// first; ambiguity (e.g. "sockets" → socket or sock) is resolved by the
// caller against the rest of the request.
func (s *synth) groundTypeAll(phrase string) []string {
	n := norm(phrase)
	if n == "" {
		return nil
	}
	var out []string
	add := func(t string) {
		for _, have := range out {
			if have == t {
				return
			}
		}
		out = append(out, t)
	}
	// exact kernel name as written ("vm_area_structs")
	raw := strings.TrimSuffix(strings.TrimSpace(phrase), "s")
	for _, cand := range []string{strings.TrimSpace(phrase), raw} {
		for _, t := range s.typeNames() {
			if cand == t {
				add(t)
			}
		}
	}
	// fuzzy: normalized equality against the graph's types (with/without s)
	for _, t := range s.typeNames() {
		tn := norm(t)
		if n == tn || n == tn+"s" || strings.TrimSuffix(n, "s") == tn {
			add(t)
		}
	}
	if t, ok := typeAliases[n]; ok {
		add(t)
	}
	return out
}

func (s *synth) typeNames() []string {
	set := map[string]bool{}
	for _, b := range s.g.All() {
		if b.TypeName != "" {
			set[b.TypeName] = true
		}
		set[b.Label] = true
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// groundMember resolves a member phrase against boxes of the given type.
// Noise suffixes like "list"/"array" are tolerated ("slot pointer list").
func (s *synth) groundMember(typeName, phrase string) (string, bool) {
	members := s.membersOf(typeName)
	n0 := norm(phrase)
	variants := []string{n0}
	for _, suf := range []string{"pointerlist", "pointerarray", "list", "array", "field", "member", "members"} {
		if strings.HasSuffix(n0, suf) && len(n0) > len(suf) {
			variants = append(variants, strings.TrimSuffix(n0, suf))
		}
	}
	for _, n := range variants {
		for _, m := range members {
			if n == norm(m) || n == norm(m)+"s" || strings.TrimSuffix(n, "s") == norm(m) {
				return m, true
			}
		}
		for _, key := range []string{n, strings.TrimSuffix(n, "s")} {
			if m, ok := memberAliases[key]; ok {
				for _, have := range members {
					if have == m {
						return m, true
					}
				}
			}
		}
		// "is <adj>" grounding: is_<adj>
		for _, m := range members {
			if norm(m) == "is"+n {
				return m, true
			}
		}
	}
	return "", false
}

func (s *synth) membersOf(typeName string) []string {
	seen := map[string]bool{}
	var out []string
	for _, b := range s.g.All() {
		if b.TypeName != typeName && b.Label != typeName {
			continue
		}
		for _, vn := range b.ViewSeq {
			for _, it := range b.Views[vn].Items {
				if !seen[it.Name] {
					seen[it.Name] = true
					out = append(out, it.Name)
				}
			}
		}
	}
	return out
}

// clause handles one action.
func (s *synth) clause(cl string) ([]string, error) {
	words := strings.Fields(cl)
	if len(words) == 0 {
		return nil, fmt.Errorf("empty clause")
	}
	low := strings.ToLower(cl)

	// --- direction: "display the X vertically / top-down / horizontally"
	if dir, rest, ok := directionReq(low); ok {
		tn, member, err := s.subject(rest)
		if err != nil {
			return nil, err
		}
		set := s.fresh()
		sel := fmt.Sprintf("%s = SELECT %s FROM *", set, selSpec(tn, member))
		s.lastSet = set
		return []string{sel, fmt.Sprintf("UPDATE %s WITH direction: %s", set, dir)}, nil
	}

	// --- "display/show view X of T [and ...]" or "let T display the X view"
	if view, rest, ok := viewReq(low); ok {
		subj, condText := splitCondition(rest)
		tn, _, err := s.subject(subj)
		if err != nil {
			return nil, err
		}
		set := s.fresh()
		sel := fmt.Sprintf("%s = SELECT %s FROM *", set, tn)
		if condText != "" {
			cond, err := s.condition(tn, condText)
			if err != nil {
				return nil, err
			}
			sel += " WHERE " + cond
		}
		s.lastSet = set
		return []string{sel, fmt.Sprintf("UPDATE %s WITH view: %s", set, view)}, nil
	}

	// --- "find/select ..." clauses establish a set ("them") without acting.
	if hasAny(low, "find ", "select ") {
		rest := low
		for _, w := range []string{"find me", "find", "select", "please"} {
			rest = strings.TrimSpace(strings.TrimPrefix(rest, w))
		}
		subj, condText := splitCondition(stripActionWords(rest))
		tn, member, err := s.subject(subj)
		if err != nil {
			return nil, err
		}
		set := s.fresh()
		sel := fmt.Sprintf("%s = SELECT %s FROM * AS self", set, selSpec(tn, member))
		if condText != "" {
			cond, err := s.condition(tn, condText)
			if err != nil {
				return nil, err
			}
			sel += " WHERE " + cond
		}
		s.lastSet = set
		return []string{sel}, nil
	}

	// --- shrink/collapse/trim/hide
	attr := ""
	switch {
	case hasAny(low, "shrink", "collapse"):
		attr = "collapsed"
	case hasAny(low, "trim", "hide", "remove", "invisible", "make invisible"):
		attr = "trimmed"
	}
	if attr == "" {
		return nil, fmt.Errorf("no recognized action")
	}
	rest := stripActionWords(low)

	// Anaphora: "hide them" / "collapse these" refers to the last SELECT.
	if w := strings.TrimSpace(rest); w == "them" || w == "these" || w == "those" || w == "it" {
		if s.lastSet == "" {
			return nil, fmt.Errorf("%q has no antecedent", w)
		}
		return []string{fmt.Sprintf("UPDATE %s WITH %s: true", s.lastSet, attr)}, nil
	}

	// "except for" handling: A \ B
	if idx := strings.Index(rest, "except"); idx >= 0 {
		subj, exc := rest[:idx], rest[idx:]
		tn, member, err := s.subject(subj)
		if err != nil {
			return nil, err
		}
		cond, err := s.exceptCond(tn, exc)
		if err != nil {
			return nil, err
		}
		a, b := s.fresh(), s.fresh()
		s.lastSet = a
		return []string{
			fmt.Sprintf("%s = SELECT %s FROM *", a, selSpec(tn, member)),
			fmt.Sprintf("%s = SELECT %s FROM * WHERE %s", b, selSpec(tn, member), cond),
			fmt.Sprintf("UPDATE %s \\ %s WITH %s: true", a, b, attr),
		}, nil
	}

	// optional condition: whose/that/which/with/where ...
	subj, condText := splitCondition(rest)
	tn, member, cond, err := s.subjectWithCond(subj, condText)
	if err != nil {
		return nil, err
	}
	set := s.fresh()
	sel := fmt.Sprintf("%s = SELECT %s FROM *", set, selSpec(tn, member))
	if cond != "" {
		sel += " WHERE " + cond
	}
	s.lastSet = set
	return []string{sel, fmt.Sprintf("UPDATE %s WITH %s: true", set, attr)}, nil
}

// subjectWithCond grounds the subject, trying every type candidate until
// the condition also grounds (resolving e.g. "sockets" → sock, whose boxes
// actually carry the queue-length members the condition names).
func (s *synth) subjectWithCond(subj, condText string) (tn, member, cond string, err error) {
	cands, member0, err := s.subjectCandidates(subj)
	if err != nil {
		return "", "", "", err
	}
	if condText == "" {
		return cands[0], member0, "", nil
	}
	var firstErr error
	for _, cand := range cands {
		c, err := s.condition(cand, condText)
		if err == nil {
			return cand, member0, c, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return "", "", "", firstErr
}

func selSpec(tn, member string) string {
	if member != "" {
		return tn + "." + member
	}
	return tn
}

func hasAny(s string, words ...string) bool {
	for _, w := range words {
		if strings.Contains(s, w) {
			return true
		}
	}
	return false
}

func directionReq(low string) (dir, rest string, ok bool) {
	switch {
	case strings.Contains(low, "vertical") || strings.Contains(low, "top-down") || strings.Contains(low, "top down"):
		dir = "vertical"
	case strings.Contains(low, "horizontal") || strings.Contains(low, "left-to-right"):
		dir = "horizontal"
	default:
		return "", "", false
	}
	if !hasAny(low, "display", "show", "plot", "draw") {
		return "", "", false
	}
	rest = low
	for _, w := range []string{"display", "show", "plot", "draw", "vertically", "vertical", "horizontally", "horizontal", "top-down", "top down", "the "} {
		rest = strings.ReplaceAll(rest, w, " ")
	}
	return dir, strings.TrimSpace(rest), true
}

func viewReq(low string) (view, rest string, ok bool) {
	// "display view X of T" / "display the X view of T" / "with the X view"
	words := strings.Fields(low)
	vi := indexWord(words, "view")
	if vi < 0 || !hasAny(low, "display", "show", "let", "with") {
		return "", "", false
	}
	if vi > 0 && vi+1 < len(words) && (words[vi-1] == "display" || words[vi-1] == "show") {
		// pattern A: "display view X of T"
		view = strings.Trim(words[vi+1], `"'`)
		rest = strings.Join(words[vi+2:], " ")
		rest = strings.TrimPrefix(strings.TrimSpace(rest), "of ")
		return view, rest, true
	}
	if vi > 0 {
		// pattern B: "... the X view of T"
		view = strings.Trim(words[vi-1], `"'`)
		var parts []string
		parts = append(parts, words[:vi-1]...)
		parts = append(parts, words[vi+1:]...)
		rest = " " + strings.Join(parts, " ") + " "
		for _, del := range []string{"display", "show", "let", "with"} {
			rest = strings.ReplaceAll(rest, " "+del+" ", " ")
		}
		rest = strings.TrimSpace(rest)
		return view, rest, true
	}
	return "", "", false
}

func stripActionWords(low string) string {
	out := low
	for _, w := range []string{"shrink", "collapse", "trim", "hide", "remove", "make", "invisible", "all", "the", "extremely", "large", "please", "every"} {
		out = strings.ReplaceAll(out, " "+w+" ", " ")
		out = strings.TrimPrefix(out, w+" ")
	}
	return strings.TrimSpace(out)
}

// splitCondition separates "files that have no memory mapping" into subject
// and condition text.
func splitCondition(rest string) (subj, cond string) {
	for _, marker := range []string{" whose ", " that ", " which ", " with ", " where ", " not "} {
		if i := strings.Index(rest, marker); i >= 0 {
			c := strings.TrimSpace(rest[i+len(marker):])
			if marker == " not " {
				c = "not " + c
			}
			return strings.TrimSpace(rest[:i]), c
		}
	}
	return strings.TrimSpace(rest), ""
}

// fillerWords are dropped before grounding a subject phrase.
var fillerWords = map[string]bool{
	"all": true, "the": true, "a": true, "an": true, "every": true,
	"objects": true, "object": true, "entries": true, "entry": true,
	"boxes": true, "box": true, "please": true, "me": true,
}

func dropFiller(text string) []string {
	var out []string
	for _, w := range strings.Fields(strings.ToLower(text)) {
		if !fillerWords[w] {
			out = append(out, w)
		}
	}
	return out
}

// subject grounds a noun phrase into (type, optional member); see
// subjectCandidates for the grammar.
func (s *synth) subject(text string) (typeName, member string, err error) {
	cands, m, err := s.subjectCandidates(text)
	if err != nil {
		return "", "", err
	}
	return cands[0], m, nil
}

// subjectCandidates grounds "maple_node slots" / "superblocks" / "pages
// list in address_space objects" into candidate types plus an optional
// member. "X of/in Y" prefers the member-of-type reading.
func (s *synth) subjectCandidates(text string) (types []string, member string, err error) {
	text = strings.ReplaceAll(strings.ToLower(strings.TrimSpace(text)), " in ", " of ")
	words := dropFiller(text)
	for len(words) > 0 && words[0] == "of" {
		words = words[1:]
	}
	if len(words) == 0 {
		return nil, "", fmt.Errorf("empty subject")
	}

	// "X of Y": member-of-type reading first.
	if i := indexWord(words, "of"); i > 0 && i < len(words)-1 {
		mp := strings.Join(words[:i], " ")
		tp := strings.Join(words[i+1:], " ")
		for _, tn := range s.groundTypeAll(tp) {
			if m, ok := s.groundMember(tn, mp); ok {
				return []string{tn}, m, nil
			}
		}
	}

	// "<type phrase> [member phrase]", longest type match first.
	for cut := len(words); cut >= 1; cut-- {
		tp := strings.Join(words[:cut], " ")
		cands := s.groundTypeAll(tp)
		if len(cands) == 0 {
			continue
		}
		rest := strings.Join(words[cut:], " ")
		if rest == "" {
			return cands, "", nil
		}
		for _, tn := range cands {
			if m, ok := s.groundMember(tn, rest); ok {
				return []string{tn}, m, nil
			}
		}
		return cands, "", nil
	}

	// "<member phrase> <type phrase>": member-first without "of".
	for cut := 1; cut < len(words); cut++ {
		mp := strings.Join(words[:cut], " ")
		tp := strings.Join(words[cut:], " ")
		for _, tn := range s.groundTypeAll(tp) {
			if m, ok := s.groundMember(tn, mp); ok {
				return []string{tn}, m, nil
			}
		}
	}
	return nil, "", fmt.Errorf("cannot ground subject %q", text)
}

func indexWord(words []string, w string) int {
	for i, x := range words {
		if x == w {
			return i
		}
	}
	return -1
}

// condition translates a condition phrase into a WHERE expression.
func (s *synth) condition(tn, text string) (string, error) {
	text = strings.TrimSpace(text)
	low := strings.ToLower(text)

	// conjunctions: "X and Y are both empty", "a or b"
	if strings.Contains(low, " are both empty") || strings.Contains(low, " is empty") || strings.Contains(low, "are empty") {
		phrase := low
		for _, cutw := range []string{" are both empty", " are empty", " is empty"} {
			phrase = strings.ReplaceAll(phrase, cutw, "")
		}
		var members []string
		for _, part := range strings.FieldsFunc(phrase, func(r rune) bool { return r == '/' }) {
			part = strings.TrimSpace(strings.ReplaceAll(part, " and ", "/"))
			for _, sub := range strings.Split(part, "/") {
				sub = strings.TrimSpace(sub)
				if sub == "" {
					continue
				}
				// "write/receive buffer": distribute the head noun
				if !strings.Contains(sub, "buffer") && strings.Contains(phrase, "buffer") {
					sub += " buffer"
				}
				if m, ok := s.groundMember(tn, sub); ok {
					members = append(members, m)
				}
			}
		}
		if len(members) == 0 {
			return "", fmt.Errorf("cannot ground condition %q", text)
		}
		terms := make([]string, len(members))
		for i, m := range members {
			terms[i] = m + " == 0"
		}
		return strings.Join(terms, " AND "), nil
	}

	// "address is not 0x..." / "pid == N" numeric forms
	if m, op, val, ok := numericCond(low); ok {
		member := m
		if member == "address" || member == "addr" {
			member = "this"
		} else if gm, ok2 := s.groundMember(tn, member); ok2 {
			member = gm
		}
		return fmt.Sprintf("%s %s %s", member, op, val), nil
	}

	// "has no X" / "have no X" / "X is not configured" / "is not connected to any X"
	for _, pat := range []struct {
		marker string
		op     string
	}{
		{"is not configured", "=="},
		{"not configured", "=="},
		{"is not set", "=="},
		{"is null", "=="},
		{"is not connected to any", "=="},
		{"not connected to any", "=="},
		{"is not null", "!="},
		{"non-null", "!="},
		{"is configured", "!="},
		{"is set", "!="},
	} {
		if i := strings.Index(low, pat.marker); i >= 0 {
			// The member phrase precedes the marker.
			phrase := strings.TrimSpace(low[:i])
			phrase = strings.TrimPrefix(phrase, "whose ")
			phrase = strings.TrimPrefix(phrase, "are ")
			if phrase == "" { // "... whose action is not configured" with
				// the member carried in the trailing words
				phrase = strings.TrimSpace(low[i+len(pat.marker):])
			}
			if m, ok := s.groundMember(tn, phrase); ok {
				return fmt.Sprintf("%s %s NULL", m, pat.op), nil
			}
			return "", fmt.Errorf("cannot ground member %q", phrase)
		}
	}
	for _, marker := range []string{"have no ", "has no ", "not ", "no "} {
		if strings.HasPrefix(low, marker) || strings.Contains(low, " "+marker) {
			phrase := low
			if i := strings.Index(phrase, marker); i >= 0 {
				phrase = phrase[i+len(marker):]
			}
			phrase = strings.TrimSpace(phrase)
			if m, ok := s.groundMember(tn, phrase); ok {
				return fmt.Sprintf("%s == NULL", m), nil
			}
		}
	}
	for _, marker := range []string{"have a ", "has a ", "have ", "has "} {
		if strings.HasPrefix(low, marker) {
			phrase := strings.TrimSpace(strings.TrimPrefix(low, marker))
			if m, ok := s.groundMember(tn, phrase); ok {
				return fmt.Sprintf("%s != NULL", m), nil
			}
		}
	}

	// adjectives: "is writable" / "are writable" / "writable"
	adj := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(low, "are "), "is "))
	negate := false
	if strings.HasPrefix(adj, "not ") {
		negate = true
		adj = strings.TrimPrefix(adj, "not ")
	}
	if m, ok := s.groundMember(tn, "is "+adj); ok {
		if negate {
			return m + " != true", nil
		}
		return m + " == true", nil
	}
	if m, ok := s.groundMember(tn, adj); ok {
		if negate {
			return m + " == NULL", nil
		}
		return m + " != NULL", nil
	}
	return "", fmt.Errorf("cannot parse condition %q", text)
}

// numericCond matches "<member> (is|==|!=|is not|of) <number>".
func numericCond(low string) (member, op, val string, ok bool) {
	words := strings.Fields(low)
	for i, w := range words {
		if n, err := strconv.ParseUint(strings.TrimPrefix(w, "#"), 0, 64); err == nil {
			val = fmt.Sprintf("%d", n)
			if strings.HasPrefix(w, "0x") {
				val = w
			}
			op = "=="
			j := i
			for j > 0 {
				prev := words[j-1]
				switch prev {
				case "is", "equals", "==", "of":
					j--
					continue
				case "not", "!=", "isn't":
					op = "!="
					j--
					continue
				}
				break
			}
			if j == 0 {
				return "", "", "", false
			}
			member = words[j-1]
			return member, op, val, true
		}
	}
	return "", "", "", false
}

// exceptCond builds the exception condition for "except for pids 1 and 100".
func (s *synth) exceptCond(tn, exc string) (string, error) {
	low := strings.ToLower(exc)
	for _, w := range []string{"except", "for", "a", "set", "of", "specific", "the"} {
		low = strings.ReplaceAll(low, " "+w+" ", " ")
		low = strings.TrimPrefix(low, w+" ")
	}
	words := strings.Fields(low)
	member := ""
	var nums []string
	for _, w := range words {
		w = strings.Trim(w, ",")
		if n, err := strconv.ParseUint(w, 0, 64); err == nil {
			nums = append(nums, fmt.Sprintf("%d", n))
			continue
		}
		if w == "and" || w == "or" {
			continue
		}
		if member == "" {
			if m, ok := s.groundMember(tn, w); ok {
				member = m
			}
		}
	}
	if member == "" || len(nums) == 0 {
		return "", fmt.Errorf("cannot parse exception %q", exc)
	}
	terms := make([]string, len(nums))
	for i, n := range nums {
		terms[i] = fmt.Sprintf("%s == %s", member, n)
	}
	return strings.Join(terms, " OR "), nil
}
