// Package panes implements the paper's pane-based debugger front-end model
// (§2.4): a tmux-like tree of panes, each displaying an object graph.
// Primary panes show ViewCL-extracted graphs that ViewQL can refine;
// secondary panes display a focused selection picked from another pane.
// Panes over the same extraction share box objects, so a refinement is
// visible wherever the object is displayed ("linked views").
package panes

import (
	"fmt"
	"sort"
	"strings"

	"visualinux/internal/graph"
	"visualinux/internal/viewql"
)

// Kind distinguishes primary from secondary panes.
type Kind int

// Pane kinds.
const (
	Primary Kind = iota
	Secondary
)

func (k Kind) String() string {
	if k == Secondary {
		return "secondary"
	}
	return "primary"
}

// Orientation of a split.
type Orientation int

// Split orientations.
const (
	Horizontal Orientation = iota
	Vertical
)

// Pane is one display surface.
type Pane struct {
	ID     int
	Kind   Kind
	Title  string
	Graph  *graph.Graph
	Engine *viewql.Engine
	// Selection holds the box IDs a secondary pane focuses on.
	Selection []string
	// Version counts content replacements (initially 1, bumped by
	// Tree.Update). Together with the tree epoch it keys pane ETags: an
	// unchanged version+epoch means the rendered bytes are unchanged, so
	// the server can answer 304 instead of re-serializing.
	Version int
}

// node is the split-tree structure.
type node struct {
	pane   *Pane // leaf
	orient Orientation
	kids   []*node
}

// Tree is the pane tree of one debugging session.
type Tree struct {
	root   *node
	panes  map[int]*Pane
	byNode map[int]*node
	nextID int
	// epoch counts cross-pane attribute mutations (ViewQL refinements,
	// expands, vchat). Panes share box objects, so a refinement applied to
	// one pane can change what another renders without touching its
	// Version; the epoch folds that into every pane's ETag.
	epoch int
}

// NewTree creates a tree with one primary pane displaying g.
func NewTree(title string, g *graph.Graph) (*Tree, *Pane) {
	t := &Tree{panes: make(map[int]*Pane), byNode: make(map[int]*node), nextID: 1}
	p := t.newPane(Primary, title, g)
	n := &node{pane: p}
	t.root = n
	t.byNode[p.ID] = n
	return t, p
}

func (t *Tree) newPane(kind Kind, title string, g *graph.Graph) *Pane {
	p := &Pane{ID: t.nextID, Kind: kind, Title: title, Graph: g, Engine: viewql.NewEngine(g), Version: 1}
	t.nextID++
	t.panes[p.ID] = p
	return p
}

// ReserveIDs ensures every future pane allocates an ID strictly greater
// than max. Session import replays a saved state whose pane numbering may
// have gaps; without the reservation a later split could re-issue an ID a
// client still holds from the saved session — clobbering the server's
// serialization cache and any stream subscription filtered on that pane.
func (t *Tree) ReserveIDs(max int) {
	if t.nextID <= max {
		t.nextID = max + 1
	}
}

// Epoch reports the cross-pane mutation counter.
func (t *Tree) Epoch() int { return t.epoch }

// BumpEpoch records a mutation of shared display state (box attributes)
// outside the Refine path, e.g. a direct Engine.Apply or an expand.
func (t *Tree) BumpEpoch() { t.epoch++ }

// Update replaces a pane's content with a freshly extracted graph, bumping
// its version: the incremental re-extraction path. The pane keeps its
// identity and screen position; a fresh ViewQL engine is installed since
// named sets reference the superseded graph's boxes. Secondary panes carved
// from the old graph keep displaying the boxes they captured.
func (t *Tree) Update(paneID int, g *graph.Graph) error {
	p, ok := t.panes[paneID]
	if !ok {
		return fmt.Errorf("panes: no pane %d", paneID)
	}
	p.Graph = g
	p.Engine = viewql.NewEngine(g)
	p.Version++
	return nil
}

// Pane looks up a pane by ID.
func (t *Tree) Pane(id int) (*Pane, bool) {
	p, ok := t.panes[id]
	return p, ok
}

// Panes returns all panes ordered by ID.
func (t *Tree) Panes() []*Pane {
	out := make([]*Pane, 0, len(t.panes))
	for _, p := range t.panes {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Split divides the pane's screen area, creating a new primary pane
// showing g (which may be the same graph for a second perspective).
func (t *Tree) Split(paneID int, o Orientation, title string, g *graph.Graph) (*Pane, error) {
	n, ok := t.byNode[paneID]
	if !ok {
		return nil, fmt.Errorf("panes: no pane %d", paneID)
	}
	p := t.newPane(Primary, title, g)
	leafOld := &node{pane: n.pane}
	leafNew := &node{pane: p}
	t.byNode[n.pane.ID] = leafOld
	t.byNode[p.ID] = leafNew
	n.pane = nil
	n.orient = o
	n.kids = []*node{leafOld, leafNew}
	return p, nil
}

// SelectInto creates a secondary pane displaying the given selection from
// the source pane (paper op 2: "Select a set of objects from a pane to
// create a new secondary pane"). The secondary pane shares the underlying
// boxes.
func (t *Tree) SelectInto(srcID int, refs []viewql.Ref, title string) (*Pane, error) {
	src, ok := t.panes[srcID]
	if !ok {
		return nil, fmt.Errorf("panes: no pane %d", srcID)
	}
	sub := graph.New(title)
	var sel []string
	for _, r := range refs {
		if r.Member != "" {
			continue
		}
		if b, ok := src.Graph.Get(r.BoxID); ok {
			sub.Add(b) // shared box: linked panes
			sel = append(sel, b.ID)
		}
	}
	if len(sel) > 0 {
		sub.RootID = sel[0]
		sub.Roots = sel
	}
	// Secondary panes also carry every box reachable from the selection so
	// links render; visibility rules still apply.
	for id := range src.Graph.Reachable(sel) {
		if b, ok := src.Graph.Get(id); ok {
			sub.Add(b)
		}
	}
	p := t.newPane(Secondary, title, sub)
	p.Selection = sel
	// Secondary panes attach as a vertical split of the source.
	if n, ok := t.byNode[srcID]; ok && n.pane != nil {
		leafOld := &node{pane: n.pane}
		leafNew := &node{pane: p}
		t.byNode[srcID] = leafOld
		t.byNode[p.ID] = leafNew
		n.pane = nil
		n.orient = Vertical
		n.kids = []*node{leafOld, leafNew}
	} else {
		t.byNode[p.ID] = &node{pane: p}
	}
	return p, nil
}

// Refine applies a ViewQL program to the pane's graph (paper op 3).
// Refinements mutate shared boxes, so the tree epoch advances even though
// no pane's Version does.
func (t *Tree) Refine(paneID int, viewqlSrc string) error {
	p, ok := t.panes[paneID]
	if !ok {
		return fmt.Errorf("panes: no pane %d", paneID)
	}
	t.epoch++
	return p.Engine.Apply(viewqlSrc)
}

// FocusHit reports one match of a focus search.
type FocusHit struct {
	PaneID int
	BoxID  string
}

// Focus searches every pane's displayed graph for boxes matching pred (the
// paper's cross-pane "focus" operation, Fig 2): e.g. the same task found in
// the parent tree and in the scheduling tree simultaneously.
func (t *Tree) Focus(pred func(*graph.Box) bool) []FocusHit {
	var hits []FocusHit
	for _, p := range t.Panes() {
		for _, b := range p.Graph.All() {
			if pred(b) {
				hits = append(hits, FocusHit{PaneID: p.ID, BoxID: b.ID})
			}
		}
	}
	return hits
}

// FocusAddr finds boxes by object address.
func (t *Tree) FocusAddr(addr uint64) []FocusHit {
	return t.Focus(func(b *graph.Box) bool { return b.Addr == addr && b.Addr != 0 })
}

// FocusMember finds boxes whose member renders to the given text or raw
// value (e.g. pid == 107 in every pane).
func (t *Tree) FocusMember(member, value string, raw uint64, byRaw bool) []FocusHit {
	return t.Focus(func(b *graph.Box) bool {
		it, ok := b.Member(member)
		if !ok {
			return false
		}
		if byRaw {
			return it.Raw == raw
		}
		return it.Value == value
	})
}

// Layout renders the split tree as indented text (the CLI's pane list).
func (t *Tree) Layout() string {
	var sb strings.Builder
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		ind := strings.Repeat("  ", depth)
		if n.pane != nil {
			fmt.Fprintf(&sb, "%s- pane %d (%s) %q: %s\n", ind, n.pane.ID, n.pane.Kind, n.pane.Title, n.pane.Graph.Summary())
			return
		}
		o := "hsplit"
		if n.orient == Vertical {
			o = "vsplit"
		}
		fmt.Fprintf(&sb, "%s+ %s\n", ind, o)
		for _, k := range n.kids {
			walk(k, depth+1)
		}
	}
	if t.root != nil {
		walk(t.root, 0)
	}
	return sb.String()
}
