package panes_test

import (
	"strings"
	"testing"

	"visualinux/internal/graph"
	"visualinux/internal/panes"
	"visualinux/internal/viewql"
)

func mkGraph(name string, n int) *graph.Graph {
	g := graph.New(name)
	for i := 0; i < n; i++ {
		b := graph.NewBox(graph.BoxID("T", uint64(0x1000+i*0x10)), "T", "t", uint64(0x1000+i*0x10))
		b.AddView(&graph.View{Name: "default", Items: []graph.Item{
			{Kind: graph.ItemText, Name: "idx", Value: itoa(i), Raw: uint64(i), IsNum: true},
		}})
		g.Add(b)
		if i == 0 {
			g.RootID = b.ID
			g.Roots = []string{b.ID}
		}
	}
	return g
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestSplitAndLayout(t *testing.T) {
	tree, p1 := panes.NewTree("main", mkGraph("g1", 3))
	if p1.ID != 1 || p1.Kind != panes.Primary {
		t.Fatalf("first pane: %+v", p1)
	}
	p2, err := tree.Split(p1.ID, panes.Horizontal, "second", mkGraph("g2", 2))
	if err != nil {
		t.Fatal(err)
	}
	p3, err := tree.Split(p2.ID, panes.Vertical, "third", mkGraph("g3", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Panes()) != 3 {
		t.Fatalf("panes = %d", len(tree.Panes()))
	}
	layout := tree.Layout()
	for _, want := range []string{"hsplit", "vsplit", "pane 1", "pane 2", "pane 3"} {
		if !strings.Contains(layout, want) {
			t.Errorf("layout missing %q:\n%s", want, layout)
		}
	}
	if _, err := tree.Split(99, panes.Horizontal, "x", mkGraph("g", 1)); err == nil {
		t.Error("split of missing pane succeeded")
	}
	_ = p3
}

func TestSelectIntoSharesBoxes(t *testing.T) {
	g := mkGraph("g", 5)
	tree, p1 := panes.NewTree("main", g)
	refs := []viewql.Ref{{BoxID: g.Order[1]}, {BoxID: g.Order[3]}}
	sp, err := tree.SelectInto(p1.ID, refs, "picked")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Kind != panes.Secondary {
		t.Errorf("kind = %v", sp.Kind)
	}
	if len(sp.Selection) != 2 {
		t.Errorf("selection = %d", len(sp.Selection))
	}
	// Shared boxes: attribute set through the secondary engine shows in
	// the primary graph.
	if err := sp.Engine.Apply("a = SELECT t FROM *\nUPDATE a WITH collapsed: true"); err != nil {
		t.Fatal(err)
	}
	b, _ := g.Get(g.Order[1])
	if !b.Collapsed() {
		t.Error("linked update not visible in primary")
	}
}

func TestRefine(t *testing.T) {
	tree, p1 := panes.NewTree("main", mkGraph("g", 4))
	if err := tree.Refine(p1.ID, "a = SELECT t FROM * WHERE idx >= 2\nUPDATE a WITH trimmed: true"); err != nil {
		t.Fatal(err)
	}
	trimmed := 0
	for _, b := range p1.Graph.All() {
		if b.Trimmed() {
			trimmed++
		}
	}
	if trimmed != 2 {
		t.Errorf("trimmed = %d, want 2", trimmed)
	}
	if err := tree.Refine(999, "x = SELECT t FROM *"); err == nil {
		t.Error("refine on missing pane")
	}
}

func TestFocus(t *testing.T) {
	g1, g2 := mkGraph("g1", 4), mkGraph("g2", 2)
	tree, p1 := panes.NewTree("main", g1)
	if _, err := tree.Split(p1.ID, panes.Horizontal, "other", g2); err != nil {
		t.Fatal(err)
	}
	// idx 1 exists in both graphs.
	hits := tree.FocusMember("idx", "", 1, true)
	if len(hits) != 2 {
		t.Fatalf("hits = %v", hits)
	}
	// idx 3 exists only in g1.
	hits = tree.FocusMember("idx", "", 3, true)
	if len(hits) != 1 || hits[0].PaneID != 1 {
		t.Errorf("hits = %v", hits)
	}
	// by address
	hits = tree.FocusAddr(0x1010)
	if len(hits) != 2 { // same synthetic addresses in both graphs
		t.Errorf("addr hits = %v", hits)
	}
	// text match
	hits = tree.FocusMember("idx", "0", 0, false)
	if len(hits) != 2 {
		t.Errorf("text hits = %v", hits)
	}
}
