package panes_test

import (
	"testing"

	"visualinux/internal/panes"
)

// Pane versions move on content replacement (Update), the tree epoch on
// shared display mutations (Refine/BumpEpoch) — the two halves of the
// server's ETag validator.
func TestVersionAndEpoch(t *testing.T) {
	tree, p1 := panes.NewTree("main", mkGraph("g1", 3))
	if p1.Version != 1 {
		t.Fatalf("fresh pane version = %d, want 1", p1.Version)
	}
	if tree.Epoch() != 0 {
		t.Fatalf("fresh tree epoch = %d, want 0", tree.Epoch())
	}

	p2, err := tree.Split(p1.ID, panes.Horizontal, "side", mkGraph("g2", 2))
	if err != nil {
		t.Fatal(err)
	}
	if p2.Version != 1 {
		t.Fatalf("split pane version = %d, want 1", p2.Version)
	}

	// Update replaces one pane's content: its version bumps, the sibling's
	// does not, and the epoch is untouched.
	if err := tree.Update(p1.ID, mkGraph("g1b", 4)); err != nil {
		t.Fatal(err)
	}
	if p1.Version != 2 || p2.Version != 1 {
		t.Fatalf("versions after Update = %d/%d, want 2/1", p1.Version, p2.Version)
	}
	if tree.Epoch() != 0 {
		t.Fatalf("epoch moved on Update: %d", tree.Epoch())
	}
	if p1.Graph.Name != "g1b" {
		t.Fatalf("Update did not swap the graph: %s", p1.Graph.Name)
	}
	if len(p1.Graph.Boxes) != 4 {
		t.Fatalf("updated pane has %d boxes, want 4", len(p1.Graph.Boxes))
	}
	if err := tree.Update(999, mkGraph("x", 1)); err == nil {
		t.Fatal("Update of unknown pane succeeded")
	}

	// Refine mutates shared boxes: epoch bumps, versions stay.
	if err := tree.Refine(p1.ID, "a = SELECT t FROM *\nUPDATE a WITH collapsed: true"); err != nil {
		t.Fatal(err)
	}
	if tree.Epoch() != 1 {
		t.Fatalf("epoch after Refine = %d, want 1", tree.Epoch())
	}
	if p1.Version != 2 {
		t.Fatalf("version moved on Refine: %d", p1.Version)
	}
	tree.BumpEpoch()
	if tree.Epoch() != 2 {
		t.Fatalf("epoch after BumpEpoch = %d, want 2", tree.Epoch())
	}

	// The ViewQL engine answers over the updated graph, not the original.
	if err := tree.Refine(p1.ID, "b = SELECT t FROM *\nUPDATE b WITH collapsed: false"); err != nil {
		t.Fatalf("refine over updated graph: %v", err)
	}
}
