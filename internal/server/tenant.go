package server

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"visualinux/internal/core"
	"visualinux/internal/panes"
	"visualinux/internal/render"
	"visualinux/internal/stream"
)

// tenant is one session's serving state: the session itself plus everything
// the HTTP layer keeps per session — the serialization cache, the stream
// broker, and the fan-out bookkeeping. The legacy single-session server is
// simply a server whose only tenant is the default one.
type tenant struct {
	id      string
	session *core.Session
	// ms is the manager handle when the tenant is a managed session
	// (created through /sessions); nil for the unmanaged default session a
	// legacy New(s) wraps.
	ms *core.ManagedSession

	// mu guards the session's mutable state. Mutating handlers (vplot,
	// vctrl, vchat, import, stream rounds) take the write lock; read-only
	// handlers (panes, pane, export, stream subscribe, diagnose) take the
	// read lock and run concurrently. Holding the write lock across a full
	// request used to serialize every reader behind a single slow
	// serialization — the read paths only need the tree to not change
	// under them.
	mu sync.RWMutex

	// cacheMu guards paneCache only. It is deliberately NOT held across
	// rendering: two readers racing to fill the same entry both render and
	// the last write wins, which costs one duplicate encode but keeps slow
	// renders from serializing unrelated readers.
	cacheMu sync.Mutex
	// paneCache keeps the last serialized body per pane+format, keyed by
	// the same version/epoch ETag served to clients: an unchanged pane is
	// neither re-rendered nor re-serialized, it's one buffer write. The
	// stream plane's fan-out serializes through the same cache, so a GET
	// and a pushed frame at the same epoch share one encode.
	paneCache map[string]*cachedPane

	// broker fans pane deltas out to /stream subscribers; lastPub tracks
	// the (version, epoch) each pane was last published at, and round
	// counts fan-out rounds (the SSE frame's `round` field). Both are
	// touched only under mu's write lock.
	broker  *stream.Broker
	lastPub map[int]pubState
	round   uint64

	// renderStall, when set, is invoked at the top of every cache-miss
	// serialization — a test hook that lets the concurrent-readers
	// regression test park one reader mid-render and prove others proceed.
	renderStall func(paneID int, format string)
}

// cachedPane is one serialized pane representation.
type cachedPane struct {
	etag  string
	ctype string
	body  []byte
}

func newTenant(id string, sess *core.Session, ms *core.ManagedSession) *tenant {
	t := &tenant{
		id:        id,
		session:   sess,
		ms:        ms,
		paneCache: make(map[string]*cachedPane),
		broker:    stream.NewBroker(sess.Obs, 0),
		lastPub:   make(map[int]pubState),
	}
	// The vchat diagnosis layer answers "why is my stream laggy?" from the
	// broker's health snapshot; hand the session a way to read it.
	sess.StreamHealth = t.broker.Health
	return t
}

// close tears the tenant's serving state down (on delete or eviction):
// every stream client is unsubscribed and further publishes are no-ops.
func (t *tenant) close() {
	t.broker.Close()
}

// touch resets the manager's idle clock for managed tenants.
func (t *tenant) touch() {
	if t.ms != nil {
		t.ms.Touch()
	}
}

// serializePane returns the pane's serialized representation in the given
// format, from the per-pane+format cache when the (version, epoch) ETag
// still matches, rendering and caching otherwise. The caller must hold
// t.mu (read or write). The bool reports a cache hit.
func (t *tenant) serializePane(p *panes.Pane, format string) (*cachedPane, bool, error) {
	etag := t.paneETag(p, format)
	key := fmt.Sprintf("%d.%s", p.ID, format)
	t.cacheMu.Lock()
	c := t.paneCache[key]
	t.cacheMu.Unlock()
	if c != nil && c.etag == etag {
		return c, true, nil
	}
	if t.renderStall != nil {
		t.renderStall(p.ID, format)
	}
	t0 := time.Now()
	var body []byte
	var ctype string
	switch format {
	case "text":
		ctype = "text/plain; charset=utf-8"
		body = []byte(render.Text(p.Graph))
	case "dot":
		ctype = "text/vnd.graphviz"
		body = []byte(render.DOT(p.Graph))
	default:
		ctype = "application/json"
		j, err := json.MarshalIndent(render.ToJSON(p.Graph), "", "  ")
		if err != nil {
			return nil, false, err
		}
		body = append(j, '\n')
	}
	c = &cachedPane{etag: etag, ctype: ctype, body: body}
	t.cacheMu.Lock()
	t.paneCache[key] = c
	t.cacheMu.Unlock()
	t.session.Obs.ObserveStage("render", time.Since(t0))
	return c, false, nil
}

// clearPaneCache drops every cached serialization — required after an
// import, whose restored panes restart version/epoch numbering and could
// otherwise alias a stale cache entry byte-for-byte ETag-equal to very
// different content. Caller holds t.mu's write lock.
func (t *tenant) clearPaneCache() {
	t.cacheMu.Lock()
	t.paneCache = make(map[string]*cachedPane)
	t.cacheMu.Unlock()
	t.lastPub = make(map[int]pubState)
}

// paneETag is the weak validator over pane version + tree epoch shared by
// the poll path (ETag / If-None-Match) and the stream plane (frame
// identity + change detection). Caller holds t.mu.
func (t *tenant) paneETag(p *panes.Pane, format string) string {
	return fmt.Sprintf(`W/"p%d.v%d.e%d.%s"`, p.ID, p.Version, t.session.Tree.Epoch(), format)
}
