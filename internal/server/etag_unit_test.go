package server

import "testing"

// Table-driven coverage of RFC 9110 §13.1.2 If-None-Match matching:
// wildcard (bare, padded, inside a list), weak comparison in both
// directions, and comma-separated candidate lists.
func TestETagMatches(t *testing.T) {
	const weak = `W/"p1.v2.e3.json"`
	const strong = `"p1.v2.e3.json"`
	cases := []struct {
		name   string
		header string
		etag   string
		want   bool
	}{
		{"empty header", "", weak, false},
		{"wildcard", "*", weak, true},
		{"wildcard padded", "  *  ", weak, true},
		{"wildcard in list", `"nope", *`, weak, true},
		{"wildcard matches strong tags too", "*", strong, true},

		{"exact weak match", weak, weak, true},
		{"exact strong match", strong, strong, true},
		// Weak comparison: W/ prefixes ignored on either side.
		{"strong header vs weak tag", strong, weak, true},
		{"weak header vs strong tag", weak, strong, true},

		{"different tag", `W/"p1.v9.e3.json"`, weak, false},
		{"substring is not a match", `"p1.v2.e3"`, weak, false},

		{"list hit", `"a", "b", ` + weak, weak, true},
		{"list hit with weak mismatch shapes", `"a", ` + strong, weak, true},
		{"list miss", `"a", "b", "c"`, weak, false},
		{"list with spaces", `  "a" ,   ` + weak + `  `, weak, true},
	}
	for _, tc := range cases {
		if got := etagMatches(tc.header, tc.etag); got != tc.want {
			t.Errorf("%s: etagMatches(%q, %q) = %v, want %v", tc.name, tc.header, tc.etag, got, tc.want)
		}
	}
}
