package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"visualinux/internal/core"
)

// This file is the fleet-debugging surface: GET/POST /fleet/query fans one
// ViewQL program across every managed session (live sims and loaded core
// dumps alike) and returns the provenance-tagged merge; /debug/fleet
// reports the fan-out health counters beside the member list.

// fleetGuard wraps one session's slice of a fleet query in that tenant's
// read lock, so fleet reads coexist with per-session mutations (vchat
// UPDATEs, stop-event rounds). Sessions without serving state — admitted
// through the manager API directly, e.g. by tests — run unguarded; their
// callers serialize externally.
func (s *Server) fleetGuard(id string, fn func()) {
	s.tmu.RLock()
	t := s.tenants[id]
	s.tmu.RUnlock()
	if t == nil {
		fn()
		return
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	fn()
}

// handleFleetQuery serves the cross-target query. POST takes a
// core.FleetQuery JSON body; GET takes ?figure=&q=[&sessions=a,b][&set=]
// for quick curl use. Both return the merged core.FleetResult.
func (s *Server) handleFleetQuery(w http.ResponseWriter, r *http.Request) {
	var q core.FleetQuery
	switch r.Method {
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	case http.MethodGet:
		q.Figure = r.URL.Query().Get("figure")
		q.Query = r.URL.Query().Get("q")
		q.Set = r.URL.Query().Get("set")
		if raw := r.URL.Query().Get("sessions"); raw != "" {
			for _, id := range strings.Split(raw, ",") {
				if id = strings.TrimSpace(id); id != "" {
					q.Sessions = append(q.Sessions, id)
				}
			}
		}
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET or POST only"))
		return
	}
	res, err := s.fleet.Query(q)
	if err != nil {
		code := http.StatusUnprocessableEntity
		if errors.Is(err, core.ErrNoFleetSessions) {
			// Nothing admitted yet: the fleet surface exists but has no
			// members to serve — unavailable, not a bad request.
			code = http.StatusServiceUnavailable
		}
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleFleetDebug serves GET /debug/fleet.
func (s *Server) handleFleetDebug(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.fleet.Health())
}
