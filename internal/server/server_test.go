package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
	"visualinux/internal/server"
)

func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, _ := core.NewKernelSession(kernelsim.Options{})
	ts := httptest.NewServer(server.New(s))
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func TestVPlotEndpoint(t *testing.T) {
	ts := newServer(t)
	resp, out := post(t, ts, "/api/vplot", `{"figure":"7-1"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if out["pane"].(float64) != 1 {
		t.Errorf("pane = %v", out["pane"])
	}

	// Pane listing and all three render formats.
	r, err := http.Get(ts.URL + "/api/panes")
	if err != nil {
		t.Fatal(err)
	}
	var panes []map[string]any
	_ = json.NewDecoder(r.Body).Decode(&panes)
	r.Body.Close()
	if len(panes) != 1 || panes[0]["kind"] != "primary" {
		t.Fatalf("panes = %v", panes)
	}
	for _, format := range []string{"json", "text", "dot"} {
		r, err := http.Get(ts.URL + "/api/pane?id=1&format=" + format)
		if err != nil || r.StatusCode != http.StatusOK {
			t.Fatalf("pane format %s: %v %v", format, err, r.Status)
		}
		r.Body.Close()
	}
}

func TestVCtrlAndVChatEndpoints(t *testing.T) {
	ts := newServer(t)
	post(t, ts, "/api/vplot", `{"figure":"3-4"}`)
	resp, out := post(t, ts, "/api/vctrl",
		`{"command":"viewql 1 a = SELECT task_struct FROM * WHERE pid == 1\nUPDATE a WITH collapsed: true"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("vctrl: %v", out)
	}
	resp, out = post(t, ts, "/api/vchat", `{"pane":1,"message":"shrink tasks that have no address space"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("vchat: %v", out)
	}
	if !strings.Contains(out["viewql"].(string), "UPDATE") {
		t.Errorf("vchat output: %v", out["viewql"])
	}
}

func TestCustomProgramEndpoint(t *testing.T) {
	ts := newServer(t)
	prog := `
define T as Box<task_struct> [ Text pid, comm ]
x = T(${&init_task})
plot @x
`
	resp, out := post(t, ts, "/api/vplot", mustJSON(map[string]string{"name": "custom", "program": prog}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("custom vplot: %v", out)
	}
}

func TestErrorResponses(t *testing.T) {
	ts := newServer(t)
	if resp, _ := post(t, ts, "/api/vplot", `{"figure":"nope"}`); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad figure: %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts, "/api/vctrl", `{"command":"show 1"}`); resp.StatusCode == http.StatusOK {
		t.Errorf("vctrl before vplot should fail")
	}
	r, _ := http.Get(ts.URL + "/api/pane?id=7")
	if r.StatusCode == http.StatusOK {
		t.Errorf("missing pane should 404")
	}
	r.Body.Close()
	r, _ = http.Get(ts.URL + "/")
	if r.StatusCode != http.StatusOK {
		t.Errorf("index: %d", r.StatusCode)
	}
	r.Body.Close()
}

func mustJSON(v any) string {
	b, _ := json.Marshal(v)
	return string(b)
}

func TestSessionExportImportEndpoints(t *testing.T) {
	ts := newServer(t)
	post(t, ts, "/api/vplot", `{"figure":"3-4"}`)
	post(t, ts, "/api/vctrl",
		`{"command":"viewql 1 a = SELECT task_struct FROM * WHERE pid == 1\nUPDATE a WITH collapsed: true"}`)
	r, err := http.Get(ts.URL + "/api/session/export")
	if err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("export: %v %v", err, r.Status)
	}
	data := new(strings.Builder)
	if _, err := io.Copy(data, r.Body); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if !strings.Contains(data.String(), "collapsed") {
		t.Fatalf("export misses attrs")
	}
	// Import into a fresh server over a fresh kernel.
	ts2 := newServer(t)
	resp, out := post(t, ts2, "/api/session/import", data.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("import: %v", out)
	}
	r2, _ := http.Get(ts2.URL + "/api/panes")
	var panes []map[string]any
	_ = json.NewDecoder(r2.Body).Decode(&panes)
	r2.Body.Close()
	if len(panes) != 1 {
		t.Fatalf("restored panes = %d", len(panes))
	}
}
