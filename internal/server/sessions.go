package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"

	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
)

// This file is the session fabric's REST surface: tenants are created,
// listed, inspected, and deleted under /sessions, and every single-session
// route re-roots under /sessions/{id}/... — one vlserver process, many
// independent debugging sessions sharing the immutable infrastructure (the
// ctypes registry, the parsed+compiled ViewCL stdlib, the extraction pool)
// while keeping all mutable state strictly per tenant.

// sessionCreateReq is the body of POST /sessions.
type sessionCreateReq struct {
	ID string `json:"id"`
	// Source selects the attach mode: "" or "sim" builds a live simulated
	// kernel; "core" loads the dump file named by Core post-mortem.
	Source string `json:"source,omitempty"`
	// Core is a server-side path to a VLCORE01 dump file (implies
	// source "core").
	Core string `json:"core,omitempty"`
	// Workload shape of the simulated kernel backing the session.
	Procs          int `json:"procs,omitempty"`
	ThreadsPerProc int `json:"threads_per_proc,omitempty"`
	Churn          int `json:"churn,omitempty"`
	// Fleet-heterogeneity variants (see kernelsim.Options).
	RunqueueSkew int `json:"runqueue_skew,omitempty"`
	ZombieTasks  int `json:"zombie_tasks,omitempty"`
	PipeBurst    int `json:"pipe_burst,omitempty"`
	// Figures narrows the extracted stdlib figures (empty = all).
	Figures []string `json:"figures,omitempty"`
}

// handleSessions serves the collection: POST creates, GET lists.
func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.mgr.List())
	case http.MethodPost:
		s.handleSessionCreate(w, r)
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET or POST only"))
	}
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req sessionCreateReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.ID == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing session id"))
		return
	}
	if strings.ContainsAny(req.ID, "/ ") {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("session id must not contain '/' or spaces"))
		return
	}
	opts := core.SessionOptions{
		Kernel: kernelsim.Options{
			Processes:      req.Procs,
			ThreadsPerProc: req.ThreadsPerProc,
			Churn:          req.Churn,
			RunqueueSkew:   req.RunqueueSkew,
			ZombieTasks:    req.ZombieTasks,
			PipeBurst:      req.PipeBurst,
		},
		Source:  core.SourceKind(req.Source),
		Figures: req.Figures,
	}
	if req.Core != "" {
		img, err := os.ReadFile(req.Core)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, fmt.Errorf("core dump: %w", err))
			return
		}
		opts.Source = core.SourceCore
		opts.CoreImage = img
	}
	ms, err := s.mgr.Create(req.ID, opts)
	if err != nil && ms == nil {
		code := http.StatusUnprocessableEntity
		switch {
		case errors.Is(err, core.ErrSessionExists):
			code = http.StatusConflict
		case errors.Is(err, core.ErrTooManySessions):
			code = http.StatusTooManyRequests
		case errors.Is(err, core.ErrMemBudget):
			code = http.StatusInsufficientStorage
		}
		writeErr(w, code, err)
		return
	}
	t := newTenant(ms.ID, ms.Session, ms)
	s.tmu.Lock()
	s.tenants[ms.ID] = t
	s.tmu.Unlock()
	// Between admission and tenant registration another create can push the
	// manager over budget and evict this very session — whose OnEvict fired
	// against a not-yet-registered tenant. Re-verify residency and undo.
	if cur, ok := s.mgr.Attach(ms.ID); !ok || cur != ms {
		s.dropTenant(ms.ID)
		writeErr(w, http.StatusTooManyRequests,
			fmt.Errorf("%w: session evicted during admission", core.ErrMemBudget))
		return
	}
	t.mu.RLock()
	panes := 0
	if t.session.Tree != nil {
		panes = len(t.session.Tree.Panes())
	}
	t.mu.RUnlock()
	resp := map[string]any{
		"id":        ms.ID,
		"source":    string(ms.Source),
		"panes":     panes,
		"mem_bytes": ms.MemBytes,
		"url":       "/sessions/" + ms.ID + "/",
	}
	if err != nil {
		// Resident but some figures failed to extract: report, don't fail.
		resp["warning"] = err.Error()
	}
	writeJSON(w, http.StatusCreated, resp)
}

// handleSessionPath routes /sessions/{id} (info, delete) and
// /sessions/{id}/... (the re-rooted single-session surface).
func (s *Server) handleSessionPath(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/sessions/")
	id, sub, nested := strings.Cut(rest, "/")
	if id == "" {
		writeErr(w, http.StatusNotFound, fmt.Errorf("missing session id"))
		return
	}
	if !nested || sub == "" {
		s.handleSessionByID(id, w, r)
		return
	}
	t := s.tenantByID(id)
	if t == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no session %q", id))
		return
	}
	s.dispatch(t, "/"+sub, w, r)
}

// handleSessionByID serves GET (info) and DELETE on one session.
func (s *Server) handleSessionByID(id string, w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		for _, info := range s.mgr.List() {
			if info.ID == id {
				writeJSON(w, http.StatusOK, info)
				return
			}
		}
		writeErr(w, http.StatusNotFound, fmt.Errorf("no session %q", id))
	case http.MethodDelete:
		deleted := s.mgr.Delete(id)
		s.tmu.RLock()
		_, hadTenant := s.tenants[id]
		s.tmu.RUnlock()
		if !deleted && !hadTenant {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no session %q", id))
			return
		}
		s.dropTenant(id)
		writeJSON(w, http.StatusOK, map[string]string{"status": "deleted", "id": id})
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET or DELETE only"))
	}
}

// handleRound serves POST /sessions/{id}/round: advance the session's
// canned workload one step, take a stop event, re-extract incrementally,
// and fan pane deltas out to the session's stream clients — the HTTP
// trigger for what vlserver's -run-interval loop does on a timer.
func (s *Server) handleRound(t *tenant, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	if t.ms == nil {
		writeErr(w, http.StatusUnprocessableEntity,
			fmt.Errorf("session %q has no managed workload", t.id))
		return
	}
	err := s.streamRound(t, func() error {
		_, err := t.ms.StepRound()
		return err
	})
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, core.ErrPostMortem) {
			// A core-dump session is frozen: stepping it is a client
			// error, not a server fault.
			code = http.StatusUnprocessableEntity
		}
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "stepped",
		"rounds": t.ms.Rounds(),
	})
}
