package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"visualinux/internal/core"
	"visualinux/internal/coredump"
	"visualinux/internal/kernelsim"
	"visualinux/internal/obs"
	"visualinux/internal/viewql"
)

// fleetResult mirrors core.FleetResult for decoding.
type fleetResult struct {
	Figure  string `json:"figure"`
	Set     string `json:"set"`
	Targets []struct {
		Target string       `json:"target"`
		Source string       `json:"source"`
		Count  int          `json:"count"`
		Refs   []viewql.Ref `json:"refs"`
		Err    string       `json:"error"`
	} `json:"targets"`
	Merged []viewql.Ref `json:"merged"`
}

// dumpToFile builds a kernel with opts and writes its core dump under dir.
func dumpToFile(t *testing.T, dir, name string, opts kernelsim.Options) string {
	t.Helper()
	k := kernelsim.Build(opts)
	path := filepath.Join(dir, name)
	fh, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	if err := coredump.Dump(k.Target(), fh); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFleetQuery16Targets is the tentpole acceptance test: one server hosts
// a 16-target fleet — 14 live sims across three workload variants plus two
// loaded core dumps — and a single POST /fleet/query answers over all of
// them with per-target provenance on every merged ref.
func TestFleetQuery16Targets(t *testing.T) {
	mgr := core.NewSessionManager(core.ManagerOptions{MaxSessions: 32}, obs.NewObserver())
	srv := NewManaged(mgr, nil)
	dir := t.TempDir()

	variants := []string{
		`"procs":2,"runqueue_skew":2`,
		`"procs":2,"zombie_tasks":2`,
		`"procs":2,"pipe_burst":3`,
	}
	for i := 0; i < 14; i++ {
		body := fmt.Sprintf(`{"id":"live%02d",%s,"figures":["7-1"]}`, i, variants[i%len(variants)])
		if code, out := do(srv, "POST", "/sessions", body); code != 201 {
			t.Fatalf("live%02d: %d %s", i, code, out)
		}
	}
	for i := 0; i < 2; i++ {
		path := dumpToFile(t, dir, fmt.Sprintf("crash%d.vlcore", i),
			kernelsim.Options{Processes: 2 + i, ThreadsPerProc: 1, VMAsPerProcess: 2, PagesPerFile: 2})
		body := fmt.Sprintf(`{"id":"dead%02d","core":%q,"figures":["7-1"]}`, i, path)
		if code, out := do(srv, "POST", "/sessions", body); code != 201 {
			t.Fatalf("dead%02d: %d %s", i, code, out)
		}
	}

	code, out := do(srv, "POST", "/fleet/query",
		`{"figure":"7-1","query":"busy = SELECT task_struct FROM * WHERE pid > 0"}`)
	if code != 200 {
		t.Fatalf("fleet query: %d %s", code, out)
	}
	var res fleetResult
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Targets) != 16 {
		t.Fatalf("targets: %d, want 16", len(res.Targets))
	}
	if res.Set != "busy" {
		t.Fatalf("set: %q", res.Set)
	}
	total, core_ := 0, 0
	for _, tr := range res.Targets {
		if tr.Err != "" {
			t.Fatalf("target %s: %s", tr.Target, tr.Err)
		}
		if tr.Source == "core" {
			core_++
		}
		total += tr.Count
	}
	if core_ != 2 {
		t.Fatalf("core targets: %d, want 2", core_)
	}
	if total == 0 || len(res.Merged) != total {
		t.Fatalf("merged %d vs per-target sum %d", len(res.Merged), total)
	}
	for _, r := range res.Merged {
		if r.Target == "" {
			t.Fatalf("merged ref %s has no provenance", r.BoxID)
		}
	}

	// GET form with an explicit scope.
	code, out = do(srv, "GET",
		"/fleet/query?figure=7-1&q=rqs+%3D+SELECT+rq+FROM+*&sessions=live00,dead00", "")
	if code != 200 {
		t.Fatalf("GET fleet query: %d %s", code, out)
	}
	res = fleetResult{}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Targets) != 2 || res.Targets[0].Target != "dead00" || res.Targets[1].Target != "live00" {
		t.Fatalf("scoped targets: %+v", res.Targets)
	}

	// Health surface counts the whole fleet.
	code, out = do(srv, "GET", "/debug/fleet", "")
	if code != 200 {
		t.Fatalf("debug/fleet: %d %s", code, out)
	}
	var h struct {
		Sessions int   `json:"sessions"`
		Live     int   `json:"live"`
		Core     int   `json:"core"`
		Queries  int64 `json:"queries"`
	}
	if err := json.Unmarshal([]byte(out), &h); err != nil {
		t.Fatal(err)
	}
	if h.Sessions != 16 || h.Live != 14 || h.Core != 2 || h.Queries != 2 {
		t.Fatalf("fleet health: %+v", h)
	}
}

// TestFleetQueryHTTPErrors pins the status mapping.
func TestFleetQueryHTTPErrors(t *testing.T) {
	mgr := core.NewSessionManager(core.ManagerOptions{}, obs.NewObserver())
	srv := NewManaged(mgr, nil)
	if code, _ := do(srv, "POST", "/fleet/query", `{"figure":"7-1","query":"x = SELECT rq FROM *"}`); code != 503 {
		t.Fatalf("empty fleet: %d, want 503", code)
	}
	if code, _ := do(srv, "POST", "/fleet/query", `{"figure":"7-1"}`); code != 422 {
		t.Fatalf("missing query: %d, want 422", code)
	}
	if code, _ := do(srv, "POST", "/fleet/query", `not json`); code != 400 {
		t.Fatalf("bad body: %d, want 400", code)
	}
	if code, _ := do(srv, "PUT", "/fleet/query", ""); code != 405 {
		t.Fatalf("PUT: %d, want 405", code)
	}
}

// TestCoreSessionOverHTTP covers the post-mortem admission path: a session
// created from a dump serves panes read-only — stepping it answers 422.
func TestCoreSessionOverHTTP(t *testing.T) {
	mgr := core.NewSessionManager(core.ManagerOptions{}, obs.NewObserver())
	srv := NewManaged(mgr, nil)
	path := dumpToFile(t, t.TempDir(), "k.vlcore",
		kernelsim.Options{Processes: 2, ThreadsPerProc: 1, VMAsPerProcess: 2, PagesPerFile: 2})

	code, out := do(srv, "POST", "/sessions", fmt.Sprintf(`{"id":"pm","core":%q,"figures":["7-1"]}`, path))
	if code != 201 {
		t.Fatalf("create: %d %s", code, out)
	}
	var created struct {
		Source string `json:"source"`
		Panes  int    `json:"panes"`
	}
	if err := json.Unmarshal([]byte(out), &created); err != nil {
		t.Fatal(err)
	}
	if created.Source != "core" || created.Panes == 0 {
		t.Fatalf("created: %+v", created)
	}
	if code, out = do(srv, "GET", "/sessions/pm/api/panes", ""); code != 200 {
		t.Fatalf("panes: %d %s", code, out)
	}
	if code, out = do(srv, "POST", "/sessions/pm/round", ""); code != 422 {
		t.Fatalf("round on post-mortem session: %d %s, want 422", code, out)
	}
	// A dump path the server cannot read is a client error, not a crash.
	if code, _ := do(srv, "POST", "/sessions", `{"id":"bad","core":"/nonexistent.vlcore"}`); code != 422 {
		t.Fatalf("missing dump file: %d, want 422", code)
	}
	// A corrupt dump is rejected at admission with no session residue.
	badPath := filepath.Join(t.TempDir(), "bad.vlcore")
	if err := os.WriteFile(badPath, []byte("NOTACORE"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _ := do(srv, "POST", "/sessions", fmt.Sprintf(`{"id":"bad","core":%q}`, badPath)); code != 422 {
		t.Fatalf("corrupt dump: %d, want 422", code)
	}
	if code, _ := do(srv, "GET", "/sessions/bad", ""); code != 404 {
		t.Fatalf("corrupt dump left a session behind: %d", code)
	}
}

// TestVChatFleetIntent routes a fleet question through a single session's
// vchat endpoint: classification must divert it to the fleet scope before
// the tenant lock, and the answer must rank the skewed target first.
func TestVChatFleetIntent(t *testing.T) {
	mgr := core.NewSessionManager(core.ManagerOptions{}, obs.NewObserver())
	srv := NewManaged(mgr, nil)
	if code, out := do(srv, "POST", "/sessions", `{"id":"flat","procs":2,"figures":["7-1"]}`); code != 201 {
		t.Fatalf("flat: %d %s", code, out)
	}
	if code, out := do(srv, "POST", "/sessions", `{"id":"skewed","procs":6,"runqueue_skew":4,"figures":["7-1"]}`); code != 201 {
		t.Fatalf("skewed: %d %s", code, out)
	}
	code, out := do(srv, "POST", "/sessions/flat/api/vchat",
		`{"message":"which target has the longest runqueue?"}`)
	if code != 200 {
		t.Fatalf("vchat: %d %s", code, out)
	}
	var ans struct {
		Kind    string `json:"kind"`
		Answer  string `json:"answer"`
		Ranking []struct {
			Target string  `json:"target"`
			Value  float64 `json:"value"`
		} `json:"ranking"`
	}
	if err := json.Unmarshal([]byte(out), &ans); err != nil {
		t.Fatal(err)
	}
	if ans.Kind != "fleet" {
		t.Fatalf("kind: %q (%s)", ans.Kind, out)
	}
	if len(ans.Ranking) != 2 || ans.Ranking[0].Target != "skewed" {
		t.Fatalf("ranking: %+v", ans.Ranking)
	}
}
