package server

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"visualinux/internal/vchat"
)

// registerDebug mounts the observability surfaces. They answer 404 when the
// session was built without an observer, so the plain (unobserved) server
// keeps exactly its old behavior. The pprof endpoints are the exception:
// they profile the process, not the session, and are always available — the
// server runs its own mux, so the net/http/pprof side effects on
// http.DefaultServeMux never apply and the handlers are wired explicitly.
func (s *Server) registerDebug() {
	s.mux.HandleFunc("/debug/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/metrics/history", s.handleMetricsHistory)
	s.mux.HandleFunc("/debug/trace/", s.handleTrace)
	s.mux.HandleFunc("/debug/slowlog", s.handleSlowLog)
	s.mux.HandleFunc("/debug/diagnose/", s.handleDiagnose)
	s.mux.HandleFunc("/debug/stream", s.handleStreamDebug)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// handleDiagnose answers "why is this pane slow?" over HTTP from the
// pane's retained span trees — the machine-readable twin of the vchat
// diagnosis path. GET /debug/diagnose/3 — pane 3; GET
// /debug/diagnose/slowest — whichever pane's latest round was slowest.
func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.session.Obs == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("session has no observer"))
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/debug/diagnose/")
	var d *vchat.Diagnosis
	var err error
	if rest == "slowest" || rest == "" {
		d, err = s.session.DiagnoseSlowest()
	} else {
		id, convErr := strconv.Atoi(rest)
		if convErr != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad pane id %q", rest))
			return
		}
		d, err = s.session.Diagnose(id)
	}
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"pane":      d.Pane,
		"diagnosis": d,
		"rendered":  d.Render(),
	})
}

// handleMetricsHistory returns the bounded ring of periodic registry
// snapshots as JSON, oldest first — the push counterpart of /debug/metrics,
// so a UI can draw sparklines without running its own scraper. The ring
// fills via Observer.StartMetricsHistory (vlserver's -metrics-interval).
func (s *Server) handleMetricsHistory(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	o := s.session.Obs
	s.mu.Unlock()
	if o == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("session has no observer"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"cap":    o.History.Cap(),
		"points": o.History.Points(),
	})
}

// handleMetrics writes the process-wide registry in Prometheus text
// exposition format: snapshot hit ratio, link transactions and bytes,
// per-stage and per-figure latency histograms.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	o := s.session.Obs
	s.mu.Unlock()
	if o == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("session has no observer"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	o.Registry.WritePrometheus(w)
}

// handleTrace returns the span tree of a pane's last extraction as JSON.
// GET /debug/trace/3 — pane 3; GET /debug/trace/last — most recent.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.session.Obs == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("session has no observer"))
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
	if rest == "last" || rest == "" {
		id, tr, ok := s.session.LastTrace()
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no extractions traced yet"))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"pane": id, "trace": tr})
		return
	}
	id, err := strconv.Atoi(rest)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad pane id %q", rest))
		return
	}
	tr, ok := s.session.Trace(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no trace for pane %d", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"pane": id, "trace": tr})
}

// handleSlowLog returns the N slowest extractions (label, duration, trace),
// slowest first.
func (s *Server) handleSlowLog(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	o := s.session.Obs
	s.mu.Unlock()
	if o == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("session has no observer"))
		return
	}
	writeJSON(w, http.StatusOK, o.Slow.Entries())
}
