package server

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"

	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
	"visualinux/internal/vchat"
)

// registerDebug mounts the process-wide observability surfaces. The
// session-scoped /debug routes (metrics, traces, slow log, diagnose,
// stream health) go through dispatch — un-prefixed for the default tenant,
// /sessions/{id}/debug/... per tenant — and answer 404 when the session
// was built without an observer, so the plain (unobserved) server keeps
// exactly its old behavior. The pprof endpoints and the fleet-level
// /debug/sessions are the exception: they describe the process, not one
// session, and are always mounted at the top level — the server runs its
// own mux, so the net/http/pprof side effects on http.DefaultServeMux
// never apply and the handlers are wired explicitly.
func (s *Server) registerDebug() {
	s.mux.HandleFunc("/debug/sessions", s.handleSessionsDebug)
	s.mux.HandleFunc("/debug/fleet", s.handleFleetDebug)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// sessionHealth is one tenant's row in GET /debug/sessions.
type sessionHealth struct {
	core.SessionInfo
	Panes         int    `json:"panes"`
	StreamClients int    `json:"stream_clients"`
	StreamRound   uint64 `json:"stream_round"`
	Default       bool   `json:"default,omitempty"`
}

// handleSessionsDebug serves GET /debug/sessions: every resident session's
// manager-level accounting (memory, rounds, idle time) joined with its
// serving-level state (pane count, stream clients, fan-out round).
func (s *Server) handleSessionsDebug(w http.ResponseWriter, r *http.Request) {
	infos := s.mgr.List()
	rows := make([]sessionHealth, 0, len(infos))
	for _, info := range infos {
		row := sessionHealth{SessionInfo: info}
		s.tmu.RLock()
		t := s.tenants[info.ID]
		s.tmu.RUnlock()
		if t != nil {
			t.mu.RLock()
			if t.session.Tree != nil {
				row.Panes = len(t.session.Tree.Panes())
			}
			row.StreamRound = t.round
			t.mu.RUnlock()
			row.StreamClients = t.broker.ClientCount()
			row.Default = t == s.deflt
		}
		rows = append(rows, row)
	}
	st := kernelsim.SharedStore().Stats()
	built, forks := kernelsim.TemplateStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"sessions":        rows,
		"resident":        s.mgr.Len(),
		"total_mem_bytes": s.mgr.TotalMem(),
		"store": map[string]any{
			"unique_pages":    st.UniquePages,
			"unique_bytes":    st.UniqueBytes,
			"shared_bytes":    st.SharedBytes,
			"total_refs":      st.TotalRefs,
			"dedup_hits":      st.DedupHits,
			"cow_breaks":      st.CowBreaks,
			"templates_built": built,
			"template_forks":  forks,
		},
	})
}

// handleDiagnose answers "why is this pane slow?" over HTTP from the
// pane's retained span trees — the machine-readable twin of the vchat
// diagnosis path. GET /debug/diagnose/3 — pane 3; GET
// /debug/diagnose/slowest — whichever pane's latest round was slowest.
func (s *Server) handleDiagnose(t *tenant, rest string, w http.ResponseWriter, r *http.Request) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.session.Obs == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("session has no observer"))
		return
	}
	var d *vchat.Diagnosis
	var err error
	if rest == "slowest" || rest == "" {
		d, err = t.session.DiagnoseSlowest()
	} else {
		id, convErr := strconv.Atoi(rest)
		if convErr != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad pane id %q", rest))
			return
		}
		d, err = t.session.Diagnose(id)
	}
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"pane":      d.Pane,
		"diagnosis": d,
		"rendered":  d.Render(),
	})
}

// handleMetricsHistory returns the bounded ring of periodic registry
// snapshots as JSON, oldest first — the push counterpart of /debug/metrics,
// so a UI can draw sparklines without running its own scraper. The ring
// fills via Observer.StartMetricsHistory (vlserver's -metrics-interval).
func (s *Server) handleMetricsHistory(t *tenant, w http.ResponseWriter, r *http.Request) {
	o := t.session.Obs
	if o == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("session has no observer"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"cap":    o.History.Cap(),
		"points": o.History.Points(),
	})
}

// handleMetrics writes the session's registry in Prometheus text
// exposition format: snapshot hit ratio, link transactions and bytes,
// per-stage and per-figure latency histograms.
func (s *Server) handleMetrics(t *tenant, w http.ResponseWriter, r *http.Request) {
	o := t.session.Obs
	if o == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("session has no observer"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	o.Registry.WritePrometheus(w)
}

// handleTrace returns the span tree of a pane's last extraction as JSON.
// GET /debug/trace/3 — pane 3; GET /debug/trace/last — most recent.
func (s *Server) handleTrace(t *tenant, rest string, w http.ResponseWriter, r *http.Request) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.session.Obs == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("session has no observer"))
		return
	}
	if rest == "last" || rest == "" {
		id, tr, ok := t.session.LastTrace()
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no extractions traced yet"))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"pane": id, "trace": tr})
		return
	}
	id, err := strconv.Atoi(rest)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad pane id %q", rest))
		return
	}
	tr, ok := t.session.Trace(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no trace for pane %d", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"pane": id, "trace": tr})
}

// handleSlowLog returns the N slowest extractions (label, duration, trace),
// slowest first.
func (s *Server) handleSlowLog(t *tenant, w http.ResponseWriter, r *http.Request) {
	o := t.session.Obs
	if o == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("session has no observer"))
		return
	}
	writeJSON(w, http.StatusOK, o.Slow.Entries())
}
