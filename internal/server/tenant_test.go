package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
	"visualinux/internal/obs"
	"visualinux/internal/viewcl"
)

func jsonBody(s string) io.Reader { return strings.NewReader(s) }

// do runs one request through the server's mux without TCP.
func do(srv *Server, method, path, body string) (int, string) {
	rec := httptest.NewRecorder()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	srv.ServeHTTP(rec, httptest.NewRequest(method, path, rd))
	return rec.Code, rec.Body.String()
}

// TestSessionFabric64Tenants is the tentpole acceptance test: one server
// hosts 64 concurrent sessions under /sessions/{id}/..., every tenant
// sharing the immutable infrastructure — after the first session warms the
// stdlib, 63 more admissions must cost zero additional ViewCL parses or
// compiles, and every kernel must hold the same ctypes registry pointer.
func TestSessionFabric64Tenants(t *testing.T) {
	const tenants = 64
	mgr := core.NewSessionManager(core.ManagerOptions{MaxSessions: tenants + 8}, obs.NewObserver())
	srv := NewManaged(mgr, nil)

	// Warm-up tenant: parses+compiles figure 7-1's program unless an
	// earlier test in this process already did — either way, after this
	// create the shared caches hold it.
	if code, body := do(srv, "POST", "/sessions",
		`{"id":"s0","procs":1,"figures":["7-1"]}`); code != 201 {
		t.Fatalf("warm-up create: %d %s", code, body)
	}
	_, missesBefore, _ := viewcl.ParseCacheStats()
	compilesBefore := viewcl.CompileCount()

	var wg sync.WaitGroup
	errs := make(chan string, tenants)
	for i := 1; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body := do(srv, "POST", "/sessions",
				fmt.Sprintf(`{"id":"s%d","procs":1,"figures":["7-1"]}`, i))
			if code != 201 {
				errs <- fmt.Sprintf("s%d: %d %s", i, code, body)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	// Shared-infrastructure proof: 63 admissions after the warm-up cost
	// zero additional stdlib parses and zero lowers — one parse+compile
	// total, however many tenants extract the figure.
	_, missesAfter, _ := viewcl.ParseCacheStats()
	if d := missesAfter - missesBefore; d != 0 {
		t.Errorf("63 tenant admissions re-parsed the stdlib %d times; want 0", d)
	}
	if d := viewcl.CompileCount() - compilesBefore; d != 0 {
		t.Errorf("63 tenant admissions re-compiled the stdlib %d times; want 0", d)
	}

	// Every tenant's kernel shares one ctypes registry.
	shared := kernelsim.SharedRegistry()
	srv.tmu.RLock()
	if len(srv.tenants) != tenants {
		t.Errorf("tenant registry holds %d, want %d", len(srv.tenants), tenants)
	}
	for id, tn := range srv.tenants {
		if tn.ms.Kernel.Reg != shared {
			t.Errorf("session %s built a private ctypes registry", id)
		}
	}
	srv.tmu.RUnlock()

	// The fleet listing sees all of them.
	if code, body := do(srv, "GET", "/sessions", ""); code != 200 {
		t.Fatalf("list: %d", code)
	} else {
		var infos []core.SessionInfo
		if err := json.Unmarshal([]byte(body), &infos); err != nil {
			t.Fatal(err)
		}
		if len(infos) != tenants {
			t.Fatalf("listed %d sessions, want %d", len(infos), tenants)
		}
	}

	// Every session serves its own re-rooted surface; panes are isolated.
	for _, id := range []string{"s0", "s17", "s63"} {
		code, body := do(srv, "GET", "/sessions/"+id+"/api/panes", "")
		if code != 200 {
			t.Fatalf("%s panes: %d %s", id, code, body)
		}
		var panesOut []map[string]any
		if err := json.Unmarshal([]byte(body), &panesOut); err != nil {
			t.Fatal(err)
		}
		if len(panesOut) != 1 {
			t.Fatalf("%s holds %d panes, want the 1 requested figure", id, len(panesOut))
		}
	}

	// A v-command against one tenant does not leak into another.
	if code, body := do(srv, "POST", "/sessions/s5/api/vplot", `{"figure":"3-4"}`); code != 200 {
		t.Fatalf("tenant vplot: %d %s", code, body)
	}
	if _, body := do(srv, "GET", "/sessions/s5/api/panes", ""); !strings.Contains(body, "3-4") {
		t.Fatal("vplot did not land in s5")
	}
	if _, body := do(srv, "GET", "/sessions/s6/api/panes", ""); strings.Contains(body, "3-4") {
		t.Fatal("s5's vplot leaked into s6")
	}

	// Per-session health row for every tenant.
	if code, body := do(srv, "GET", "/debug/sessions", ""); code != 200 {
		t.Fatalf("/debug/sessions: %d", code)
	} else {
		var health struct {
			Sessions []sessionHealth `json:"sessions"`
			Resident int             `json:"resident"`
			Store    struct {
				UniqueBytes   uint64 `json:"unique_bytes"`
				SharedBytes   uint64 `json:"shared_bytes"`
				TemplateForks uint64 `json:"template_forks"`
			} `json:"store"`
		}
		if err := json.Unmarshal([]byte(body), &health); err != nil {
			t.Fatal(err)
		}
		if health.Resident != tenants || len(health.Sessions) != tenants {
			t.Fatalf("health reports %d/%d sessions, want %d", health.Resident, len(health.Sessions), tenants)
		}
		for _, row := range health.Sessions {
			if row.Panes == 0 && row.ID != "s5" {
				t.Fatalf("session %s health row reports no panes", row.ID)
			}
			if row.OwnedBytes == 0 || row.SharedBytes == 0 {
				t.Fatalf("session %s residency breakdown missing: owned=%d shared=%d",
					row.ID, row.OwnedBytes, row.SharedBytes)
			}
		}
		// Fork-admitted tenants dedup against the shared store: the unique
		// resident bytes sit well below the sum of per-session views.
		if health.Store.UniqueBytes == 0 || health.Store.TemplateForks == 0 {
			t.Fatalf("store totals missing: unique=%d forks=%d",
				health.Store.UniqueBytes, health.Store.TemplateForks)
		}
		if health.Store.SharedBytes <= health.Store.UniqueBytes {
			t.Fatalf("no sharing visible: shared=%d unique=%d",
				health.Store.SharedBytes, health.Store.UniqueBytes)
		}
	}

	// Deleting one tenant frees its slot and keeps the rest serving.
	if code, _ := do(srv, "DELETE", "/sessions/s17", ""); code != 200 {
		t.Fatalf("delete s17: %d", code)
	}
	if code, _ := do(srv, "GET", "/sessions/s17/api/panes", ""); code != 404 {
		t.Fatalf("deleted session still serves: %d", code)
	}
	if code, _ := do(srv, "GET", "/sessions/s18/api/panes", ""); code != 200 {
		t.Fatalf("neighbor died with s17: %d", code)
	}
	if mgr.Len() != tenants-1 {
		t.Fatalf("manager holds %d sessions after delete, want %d", mgr.Len(), tenants-1)
	}
}

// TestSessionRESTLifecycle covers the REST surface's edges: admission
// errors map to status codes, /round drives managed stop events, and the
// legacy alias serves the default session.
func TestSessionRESTLifecycle(t *testing.T) {
	mgr := core.NewSessionManager(core.ManagerOptions{MaxSessions: 2}, obs.NewObserver())
	srv := NewManaged(mgr, nil)

	// Legacy routes without a default session answer 404, not panic.
	if code, _ := do(srv, "GET", "/api/panes", ""); code != 404 {
		t.Fatalf("legacy route without default: %d", code)
	}

	if code, body := do(srv, "POST", "/sessions", `{"id":"a","procs":1,"figures":["7-1"]}`); code != 201 {
		t.Fatalf("create: %d %s", code, body)
	}
	// Duplicate → 409.
	if code, _ := do(srv, "POST", "/sessions", `{"id":"a","procs":1,"figures":["7-1"]}`); code != 409 {
		t.Fatalf("duplicate: want 409")
	}
	// Bad IDs and bodies → 400.
	if code, _ := do(srv, "POST", "/sessions", `{"procs":1}`); code != 400 {
		t.Fatal("missing id accepted")
	}
	if code, _ := do(srv, "POST", "/sessions", `{"id":"x/y"}`); code != 400 {
		t.Fatal("slash id accepted")
	}
	if code, _ := do(srv, "POST", "/sessions", `{nope`); code != 400 {
		t.Fatal("corrupt body accepted")
	}
	// Unknown figure → 422.
	if code, _ := do(srv, "POST", "/sessions", `{"id":"b","figures":["no-such"]}`); code != 422 {
		t.Fatal("unknown figure accepted")
	}
	// Session cap → 429.
	if code, body := do(srv, "POST", "/sessions", `{"id":"b","procs":1,"figures":["7-1"]}`); code != 201 {
		t.Fatalf("second create: %d %s", code, body)
	}
	if code, _ := do(srv, "POST", "/sessions", `{"id":"c","procs":1,"figures":["7-1"]}`); code != 429 {
		t.Fatal("over-cap create accepted")
	}

	// Info row.
	if code, body := do(srv, "GET", "/sessions/a", ""); code != 200 || !strings.Contains(body, `"id": "a"`) {
		t.Fatalf("info: %d %s", code, body)
	}
	if code, _ := do(srv, "GET", "/sessions/zzz", ""); code != 404 {
		t.Fatal("ghost session info served")
	}

	// /round advances the managed workload and bumps the rounds counter.
	var before core.SessionInfo
	_, body := do(srv, "GET", "/sessions/a", "")
	if err := json.Unmarshal([]byte(body), &before); err != nil {
		t.Fatal(err)
	}
	if code, body := do(srv, "POST", "/sessions/a/round", ""); code != 200 {
		t.Fatalf("round: %d %s", code, body)
	}
	var after core.SessionInfo
	_, body = do(srv, "GET", "/sessions/a", "")
	if err := json.Unmarshal([]byte(body), &after); err != nil {
		t.Fatal(err)
	}
	if after.Rounds <= before.Rounds {
		t.Fatalf("rounds did not advance: %d -> %d", before.Rounds, after.Rounds)
	}

	// Ghost delete → 404; real delete → 200 and slot freed.
	if code, _ := do(srv, "DELETE", "/sessions/zzz", ""); code != 404 {
		t.Fatal("ghost delete accepted")
	}
	if code, _ := do(srv, "DELETE", "/sessions/b", ""); code != 200 {
		t.Fatal("delete failed")
	}
	if code, body := do(srv, "POST", "/sessions", `{"id":"c","procs":1,"figures":["7-1"]}`); code != 201 {
		t.Fatalf("create after delete: %d %s", code, body)
	}
}

// TestLegacyServerHostsTenants checks the compatibility contract: a server
// built with the historical New(s) keeps serving the un-prefixed routes,
// answers to /sessions/default/..., and can still admit managed tenants.
func TestLegacyServerHostsTenants(t *testing.T) {
	s, _ := core.NewKernelSession(kernelsim.Options{})
	if _, err := s.VPlotFigure("7-1"); err != nil {
		t.Fatal(err)
	}
	srv := New(s)

	legacyCode, legacyBody := do(srv, "GET", "/api/panes", "")
	if legacyCode != 200 {
		t.Fatalf("legacy panes: %d", legacyCode)
	}
	aliasCode, aliasBody := do(srv, "GET", "/sessions/default/api/panes", "")
	if aliasCode != 200 || aliasBody != legacyBody {
		t.Fatalf("/sessions/default alias diverges from legacy route: %d", aliasCode)
	}

	// The default session is unmanaged: it has no workload to /round.
	if code, _ := do(srv, "POST", "/sessions/default/round", ""); code != 422 {
		t.Fatal("unmanaged default accepted /round")
	}

	// A managed tenant rides alongside the legacy session.
	if code, body := do(srv, "POST", "/sessions", `{"id":"extra","procs":1,"figures":["3-4"]}`); code != 201 {
		t.Fatalf("tenant next to legacy session: %d %s", code, body)
	}
	if _, body := do(srv, "GET", "/sessions/extra/api/panes", ""); !strings.Contains(body, "3-4") {
		t.Fatal("managed tenant has no panes")
	}
	if _, body := do(srv, "GET", "/api/panes", ""); strings.Contains(body, "3-4") {
		t.Fatal("tenant pane leaked into the legacy session")
	}
}
