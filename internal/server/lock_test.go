package server

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
)

// TestConcurrentReadersNotSerialized regression-tests the read-path lock
// narrowing: the server used to hold one exclusive mutex across full
// request handling including serialization, so a single slow render
// stalled every other reader. Read handlers now share an RWMutex and the
// serialization cache has its own lock that is not held across rendering —
// a reader parked mid-render must not block an unrelated reader.
func TestConcurrentReadersNotSerialized(t *testing.T) {
	s, _ := core.NewKernelSession(kernelsim.Options{})
	if _, err := s.VPlotFigure("3-4"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.VPlotFigure("7-1"); err != nil {
		t.Fatal(err)
	}
	srv := New(s)

	release := make(chan struct{})
	stalled := make(chan struct{})
	var once sync.Once
	srv.deflt.renderStall = func(paneID int, format string) {
		if paneID == 1 {
			once.Do(func() { close(stalled) })
			<-release
		}
	}

	done1 := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/api/pane?id=1&format=text", nil))
		done1 <- rec.Code
	}()
	select {
	case <-stalled:
	case <-time.After(5 * time.Second):
		t.Fatal("first reader never reached the render stage")
	}

	// While reader 1 is parked mid-render (holding the read lock), an
	// unrelated reader must complete.
	done2 := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/api/pane?id=2&format=text", nil))
		done2 <- rec.Code
	}()
	select {
	case code := <-done2:
		if code != 200 {
			t.Fatalf("concurrent reader status = %d", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("a second reader blocked behind a stalled serialization — the read path is serialized")
	}

	// The pane listing (pure read, no serialization) must also pass.
	done3 := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/api/panes", nil))
		done3 <- rec.Code
	}()
	select {
	case code := <-done3:
		if code != 200 {
			t.Fatalf("pane listing status = %d", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pane listing blocked behind a stalled serialization")
	}

	close(release)
	if code := <-done1; code != 200 {
		t.Fatalf("stalled reader status = %d", code)
	}
}

// TestWriterExcludesReaders sanity-checks the other direction: a mutation
// takes the write lock, so a reader issued after the writer acquired it
// observes the mutation's result (no torn reads of the pane tree).
func TestWriterExcludesReaders(t *testing.T) {
	s, _ := core.NewKernelSession(kernelsim.Options{})
	if _, err := s.VPlotFigure("3-4"); err != nil {
		t.Fatal(err)
	}
	srv := New(s)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, httptest.NewRequest("GET", "/api/panes", nil))
				if rec.Code != 200 {
					t.Errorf("reader status = %d", rec.Code)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 5; j++ {
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, httptest.NewRequest("POST", "/api/vctrl",
				jsonBody(`{"command":"viewql 1 kt = SELECT task_struct FROM *"}`)))
			if rec.Code != 200 {
				t.Errorf("writer status = %d", rec.Code)
				return
			}
		}
	}()
	wg.Wait()
}
