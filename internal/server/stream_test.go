package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
	"visualinux/internal/obs"
	"visualinux/internal/server"
	"visualinux/internal/vclstdlib"
)

// sseEvent mirrors the server's streamEvent envelope.
type sseEvent struct {
	Event     string // SSE event name (hello | pane)
	Seq       uint64 `json:"seq"`
	Round     uint64 `json:"round"`
	Pane      int    `json:"pane"`
	Version   int    `json:"version"`
	Epoch     int    `json:"epoch"`
	ETag      string `json:"etag"`
	Format    string `json:"format"`
	Snapshot  bool   `json:"snapshot"`
	Coalesced bool   `json:"coalesced"`
	Body      string `json:"body"`
}

// sseClient consumes one /stream connection on its own goroutine, tracking
// the newest frame per pane. delay simulates a slow consumer.
type sseClient struct {
	cancel context.CancelFunc
	done   chan struct{}

	mu     sync.Mutex
	hello  bool
	latest map[int]sseEvent // pane -> newest frame received
	frames []sseEvent       // every pane frame, in arrival order
	err    error
}

func dialStream(t *testing.T, ts *httptest.Server, query string, delay time.Duration) *sseClient {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	c := &sseClient{cancel: cancel, done: make(chan struct{}), latest: make(map[int]sseEvent)}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/stream"+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("dial /stream: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("/stream Content-Type %q", ct)
	}
	go func() {
		defer close(c.done)
		defer resp.Body.Close()
		r := bufio.NewReader(resp.Body)
		var event, data string
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				if err != io.EOF && ctx.Err() == nil {
					c.mu.Lock()
					c.err = err
					c.mu.Unlock()
				}
				return
			}
			line = strings.TrimRight(line, "\n")
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				data = strings.TrimPrefix(line, "data: ")
			case line == "": // dispatch
				if event == "hello" {
					c.mu.Lock()
					c.hello = true
					c.mu.Unlock()
				} else if event == "pane" {
					var ev sseEvent
					if err := json.Unmarshal([]byte(data), &ev); err != nil {
						c.mu.Lock()
						c.err = fmt.Errorf("bad frame %q: %w", data, err)
						c.mu.Unlock()
						return
					}
					ev.Event = event
					c.mu.Lock()
					c.frames = append(c.frames, ev)
					c.latest[ev.Pane] = ev
					c.mu.Unlock()
					if delay > 0 {
						time.Sleep(delay)
					}
				}
				event, data = "", ""
			}
		}
	}()
	return c
}

func (c *sseClient) close() {
	c.cancel()
	<-c.done
}

func (c *sseClient) snapshot() (map[int]sseEvent, []sseEvent, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	latest := make(map[int]sseEvent, len(c.latest))
	for k, v := range c.latest {
		latest[k] = v
	}
	return latest, append([]sseEvent(nil), c.frames...), c.err
}

// streamFixture is an observed incremental-extractor session served over
// HTTP with a mutation workload — the continuous-run mode in miniature.
type streamFixture struct {
	o   *obs.Observer
	srv *server.Server
	ts  *httptest.Server
	x   *core.IncrementalExtractor
	w   *kernelsim.Workload
}

func newStreamFixture(t *testing.T, figureIDs ...string) *streamFixture {
	t.Helper()
	o := obs.NewObserver()
	k := kernelsim.Build(kernelsim.Options{})
	var figs []vclstdlib.Figure
	for _, id := range figureIDs {
		fig, ok := vclstdlib.FigureByID(id)
		if !ok {
			t.Fatalf("unknown figure %q", id)
		}
		figs = append(figs, fig)
	}
	x := core.NewIncrementalExtractor(k, k.Target(), figs, o)
	if _, err := x.Round(); err != nil {
		t.Fatalf("cold round: %v", err)
	}
	srv := server.New(x.Session)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &streamFixture{o: o, srv: srv, ts: ts, x: x, w: kernelsim.NewWorkload(k)}
}

// step runs one stop event: mutate, advance, re-extract, fan out.
func (f *streamFixture) step(t *testing.T) {
	t.Helper()
	if err := f.srv.StreamRound(func() error {
		f.w.Step()
		f.x.Advance()
		_, err := f.x.Round()
		return err
	}); err != nil {
		t.Fatalf("stream round: %v", err)
	}
}

// The acceptance soak: ≥16 concurrent SSE clients (one artificially slow)
// across a continuous run — every client converges on pane content
// byte-identical to what GET returns at the same epoch, and the fan-out
// metrics land in the Prometheus exposition.
func TestStreamSoakByteIdenticalToGET(t *testing.T) {
	f := newStreamFixture(t, "7-1", "3-6")

	const fastN = 15
	clients := make([]*sseClient, 0, fastN+2)
	for i := 0; i < fastN; i++ {
		clients = append(clients, dialStream(t, f.ts, "", 0))
	}
	slow := dialStream(t, f.ts, "", 3*time.Millisecond)
	textClient := dialStream(t, f.ts, "?format=text", 0)
	clients = append(clients, slow, textClient)
	defer func() {
		for _, c := range clients {
			c.close()
		}
	}()

	const rounds = 6
	for i := 0; i < rounds; i++ {
		f.step(t)
	}

	// Expected state: GET every pane in both formats (captures body+ETag
	// at the final epoch; the world is quiescent now).
	type want struct {
		body []byte
		etag string
	}
	wantByFormat := map[string]map[int]want{"json": {}, "text": {}}
	for format, m := range wantByFormat {
		for pane := 1; pane <= 2; pane++ {
			resp, body := get(t, f.ts, fmt.Sprintf("/api/pane?id=%d&format=%s", pane, format))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET pane %d: %d", pane, resp.StatusCode)
			}
			m[pane] = want{body: body, etag: resp.Header.Get("ETag")}
		}
	}

	// Every client (including the slow one) converges on the final frames.
	converged := func(c *sseClient, format string) bool {
		latest, _, err := c.snapshot()
		if err != nil {
			t.Fatalf("client error: %v", err)
		}
		for pane, w := range wantByFormat[format] {
			got, ok := latest[pane]
			if !ok || got.ETag != w.etag {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, c := range clients {
		format := "json"
		if c == textClient {
			format = "text"
		}
		for !converged(c, format) {
			if time.Now().After(deadline) {
				latest, _, _ := c.snapshot()
				t.Fatalf("client did not converge; latest=%v want=%v", latest, wantByFormat[format])
			}
			time.Sleep(5 * time.Millisecond)
		}
		latest, frames, _ := c.snapshot()
		for pane, w := range wantByFormat[format] {
			if got := latest[pane]; !bytes.Equal([]byte(got.Body), w.body) {
				t.Fatalf("pane %d (%s): streamed body differs from GET at etag %s", pane, format, w.etag)
			}
		}
		// Frames arrived in strictly increasing seq order.
		for i := 1; i < len(frames); i++ {
			if frames[i].Seq <= frames[i-1].Seq {
				t.Fatalf("frames out of order: seq %d then %d", frames[i-1].Seq, frames[i].Seq)
			}
		}
		// The connect-time snapshot arrived before any delta.
		if len(frames) == 0 || !frames[0].Snapshot {
			t.Fatalf("first frame was not a snapshot (%d frames)", len(frames))
		}
	}

	// Fast JSON clients saw every delta: one frame per pane per round is
	// the ceiling; at minimum each pane's version advanced each round it
	// changed, and nothing was coalesced.
	for _, c := range clients[:fastN] {
		_, frames, _ := c.snapshot()
		for _, fr := range frames {
			if fr.Coalesced {
				t.Fatalf("fast client saw a coalesced frame (seq %d)", fr.Seq)
			}
		}
	}

	// Metrics: per-client lag gauges, frame counters, and the
	// serialization-cache proof appear in the exposition.
	_, expo := get(t, f.ts, "/debug/metrics")
	for _, wantSeries := range []string{
		`vl_stream_client_lag_ms{client="s0"}`,
		`vl_stream_client_queue_depth{client="s0"}`,
		"vl_stream_frames_sent_total",
		"vl_stream_frames_dropped_total",
		"vl_stream_frames_coalesced_total",
		"vl_stream_serialize_cache_hits_total",
		"vl_stream_fanout_rounds_total",
		"vl_stream_fanout_ms_count",
		"vl_stream_push_lag_ms_count",
		"vl_stream_clients 17",
	} {
		if !strings.Contains(string(expo), wantSeries) {
			t.Fatalf("exposition missing %q", wantSeries)
		}
	}
	// N clients cost one encode: each (pane, format) serialized once per
	// round at most, every additional client served from the cache.
	if f.o.StreamCacheHits.Value() == 0 {
		t.Fatal("fan-out never hit the serialization cache")
	}
	if hits, misses := f.o.StreamCacheHits.Value(), f.o.StreamCacheMisses.Value(); hits < misses {
		t.Fatalf("cache hits %d < misses %d during fan-out; frames are being re-encoded per client", hits, misses)
	}
	if got := f.o.StreamRounds.Value(); got < rounds {
		t.Fatalf("fan-out rounds %d, want >= %d", got, rounds)
	}
}

// Every stop event snapshots the registry into the history ring — stream
// health is queryable after the fact without a -metrics-interval timer.
func TestStreamRoundSnapshotsMetricsHistory(t *testing.T) {
	f := newStreamFixture(t, "7-1")
	before := len(f.o.History.Points())
	const rounds = 3
	for i := 0; i < rounds; i++ {
		f.step(t)
	}
	pts := f.o.History.Points()
	if len(pts) != before+rounds {
		t.Fatalf("history points %d, want %d", len(pts), before+rounds)
	}
	last := pts[len(pts)-1]
	if _, ok := last.Values["vl_stream_fanout_rounds_total"]; !ok {
		t.Fatalf("history point lacks stream gauges: %v", last.Values)
	}
}

// The fan-out rounds leave their span trees in the TraceStore under the
// reserved pane, with per-client enqueue children — the raw material for
// the vchat stream diagnosis.
func TestStreamRoundRecordsFanoutTrace(t *testing.T) {
	f := newStreamFixture(t, "7-1")
	c := dialStream(t, f.ts, "", 0)
	defer c.close()
	f.step(t)

	recs := f.o.Traces.History(-1)
	if len(recs) == 0 {
		t.Fatal("no fan-out trace recorded under the reserved pane")
	}
	var clientSpans, serializeSpans int
	recs[len(recs)-1].Trace.Walk(func(s *obs.SpanExport) {
		switch s.Name {
		case "fanout.client":
			clientSpans++
		case "fanout.serialize":
			serializeSpans++
		}
	})
	if clientSpans == 0 || serializeSpans == 0 {
		t.Fatalf("fan-out trace spans: client=%d serialize=%d, want both > 0", clientSpans, serializeSpans)
	}
}

// /debug/stream reports per-client health rows.
func TestDebugStreamSurface(t *testing.T) {
	f := newStreamFixture(t, "7-1")
	c1 := dialStream(t, f.ts, "", 0)
	defer c1.close()
	c2 := dialStream(t, f.ts, "?format=text&panes=1", 0)
	defer c2.close()
	f.step(t)

	resp, body := get(t, f.ts, "/debug/stream")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Round  uint64 `json:"round"`
		Health struct {
			QueueCap int `json:"queue_cap"`
			Clients  []struct {
				ID         int    `json:"id"`
				Format     string `json:"format"`
				Subs       []int  `json:"subs"`
				FramesSent uint64 `json:"frames_sent"`
				QueueDepth int    `json:"queue_depth"`
			} `json:"clients"`
		} `json:"health"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad /debug/stream JSON: %v\n%s", err, body)
	}
	if out.Round < 1 || out.Health.QueueCap == 0 || len(out.Health.Clients) != 2 {
		t.Fatalf("unexpected /debug/stream: %s", body)
	}
	var sawFiltered bool
	for _, cl := range out.Health.Clients {
		if cl.Format == "text" {
			sawFiltered = true
			if len(cl.Subs) != 1 || cl.Subs[0] != 1 {
				t.Fatalf("filtered client subs = %v, want [1]", cl.Subs)
			}
		}
	}
	if !sawFiltered {
		t.Fatalf("text client missing from health: %s", body)
	}
}

// Disconnecting clients mid-run leaks neither goroutines nor per-client
// gauge series, and the broker's client count returns to zero.
func TestStreamDisconnectCleansUp(t *testing.T) {
	f := newStreamFixture(t, "7-1")
	before := runtime.NumGoroutine()

	clients := make([]*sseClient, 8)
	for i := range clients {
		clients[i] = dialStream(t, f.ts, "", 0)
	}
	f.step(t)
	for _, c := range clients {
		c.close() // cancel mid-stream; server handler must unwind
	}

	deadline := time.Now().Add(5 * time.Second)
	for f.srv.Broker().ClientCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d broker clients still registered", f.srv.Broker().ClientCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Goroutine check before any further HTTP traffic: keep-alive
	// connections from the helper client would otherwise sit in the idle
	// pool and read as a leak.
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutines grew: before=%d after=%d", before, n)
	}
	_, expo := get(t, f.ts, "/debug/metrics")
	if strings.Contains(string(expo), "vl_stream_client_lag_ms") {
		t.Fatal("per-client gauge series survived disconnect")
	}
	if !strings.Contains(string(expo), "vl_stream_clients 0") {
		t.Fatal("client gauge did not return to zero")
	}
	// A later stop event with zero clients is a no-op fan-out, not a crash.
	f.step(t)
}

// vchat answers "why is my stream laggy?" from the broker health the
// server wired into the session.
func TestVChatStreamLagAnswer(t *testing.T) {
	f := newStreamFixture(t, "7-1")
	c := dialStream(t, f.ts, "", 0)
	defer c.close()
	f.step(t)

	resp, out := post(t, f.ts, "/api/vchat", `{"message":"why is my stream laggy?"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("vchat status %d: %v", resp.StatusCode, out)
	}
	if out["kind"] != "diagnosis" {
		t.Fatalf("vchat kind %v", out["kind"])
	}
	answer, _ := out["answer"].(string)
	if !strings.Contains(answer, "stream:") || !strings.Contains(answer, "1 clients") {
		t.Fatalf("vchat stream answer: %q", answer)
	}
}

// Interactive mutations (vplot of a new figure) also reach stream clients,
// not only free-run stop events.
func TestInteractiveMutationStreams(t *testing.T) {
	f := newStreamFixture(t, "7-1")
	c := dialStream(t, f.ts, "", 0)
	defer c.close()

	if resp, out := post(t, f.ts, "/api/vplot", `{"figure":"3-6"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("vplot: %d %v", resp.StatusCode, out)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		latest, _, err := c.snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if ev, ok := latest[2]; ok && !ev.Snapshot {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("vplot mutation never reached the stream client")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
