package server_test

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// getWithETag GETs a path with an optional If-None-Match header.
func getWithETag(t *testing.T, ts *httptest.Server, path, inm string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	resp.Body.Close()
	return resp, resp.Header.Get("ETag")
}

// An unchanged pane revalidates as 304 against its ETag; a ViewQL refine
// (epoch bump) must invalidate it.
func TestPaneETagRevalidation(t *testing.T) {
	ts := newServer(t)
	post(t, ts, "/api/vplot", `{"figure":"7-1"}`)

	resp, etag := getWithETag(t, ts, "/api/pane?id=1&format=text", "")
	if resp.StatusCode != http.StatusOK || etag == "" {
		t.Fatalf("first GET: status %d, etag %q", resp.StatusCode, etag)
	}
	resp, etag2 := getWithETag(t, ts, "/api/pane?id=1&format=text", etag)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation status %d, want 304", resp.StatusCode)
	}
	if etag2 != etag {
		t.Fatalf("etag drifted on revalidation: %q -> %q", etag, etag2)
	}
	// Wildcard and multi-value If-None-Match both match.
	if resp, _ := getWithETag(t, ts, "/api/pane?id=1&format=text", "*"); resp.StatusCode != http.StatusNotModified {
		t.Fatal("wildcard If-None-Match did not 304")
	}
	if resp, _ := getWithETag(t, ts, "/api/pane?id=1&format=text", `"bogus", `+etag); resp.StatusCode != http.StatusNotModified {
		t.Fatal("multi-value If-None-Match did not 304")
	}

	// Formats carry distinct validators: the text ETag must not satisfy a
	// JSON request.
	resp, jsonTag := getWithETag(t, ts, "/api/pane?id=1&format=json", etag)
	if resp.StatusCode != http.StatusOK || jsonTag == etag {
		t.Fatalf("json GET with text etag: status %d, etag %q", resp.StatusCode, jsonTag)
	}

	// A refine mutates shared display state (epoch bump): the old ETag is
	// now stale and the new one differs.
	post(t, ts, "/api/vctrl",
		`{"command":"viewql 1 a = SELECT task_struct FROM * WHERE pid == 1\nUPDATE a WITH collapsed: true"}`)
	resp, etag3 := getWithETag(t, ts, "/api/pane?id=1&format=text", etag)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-refine GET: status %d, want 200", resp.StatusCode)
	}
	if etag3 == etag {
		t.Fatal("ETag unchanged across a refine")
	}
}

// The /debug/metrics/history endpoint serves the ring (observed sessions)
// and 404s on unobserved ones.
func TestMetricsHistoryEndpoint(t *testing.T) {
	ts := newObservedServer(t)
	resp, body := get(t, ts, "/debug/metrics/history")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if s := string(body); !strings.Contains(s, `"cap"`) || !strings.Contains(s, `"points"`) {
		t.Fatalf("history body missing fields: %s", s)
	}

	plain := newServer(t)
	if resp, _ := get(t, plain, "/debug/metrics/history"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unobserved history status %d, want 404", resp.StatusCode)
	}
}
