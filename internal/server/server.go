// Package server implements the visualizer front-end of the paper's §4.2 as
// an HTTP service: v-commands executed against a session arrive as POST
// requests (exactly how the paper's GDB extension talks to its TypeScript
// front-end), pane state is queryable as JSON, and a small embedded HTML
// page renders the panes for a browser. Pane/plot state can be exported and
// re-imported, covering the paper's "persisting the state of panes and
// plots for reuse across debugging sessions".
//
// The server is multi-tenant: one process hosts many sessions behind a
// core.SessionManager, each addressable under /sessions/{id}/... with the
// full single-session surface (v-commands, panes, stream, debug) re-rooted
// per session. The historical un-prefixed routes keep working as aliases
// for a default session, so a single-session deployment never notices.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"visualinux/internal/core"
	"visualinux/internal/vchat"
)

// Server exposes sessions over HTTP.
type Server struct {
	mux *http.ServeMux
	// mgr admits, evicts, and accounts the managed sessions. Always
	// non-nil: the legacy constructor builds one with default limits so
	// even a single-session server can host additional tenants.
	mgr *core.SessionManager

	// tmu guards the tenant registry. Lock order: the manager's lock may
	// be held when tmu is taken (OnEvict), never the reverse — so tenant
	// resolution must not call into the manager while holding tmu.
	tmu     sync.RWMutex
	tenants map[string]*tenant
	// deflt serves the un-prefixed legacy routes. Set at construction and
	// never reassigned; if the default session is evicted its tenant keeps
	// serving the legacy surface over the still-live session object.
	deflt *tenant

	// fleet fans ViewQL queries across the managed sessions (/fleet/query,
	// /debug/fleet, and the cross-target vchat intent). Its guard routes
	// each per-session read through the tenant's read lock.
	fleet *core.Fleet
}

// New wraps a single session as the default tenant — the historical
// single-session constructor, source-compatible with every existing caller.
// A session manager (default capacity limits) backs /sessions, so even a
// legacy-constructed server can host additional tenants.
func New(s *core.Session) *Server {
	srv := newServer(core.NewSessionManager(core.ManagerOptions{}, s.Obs))
	srv.deflt = newTenant("default", s, nil)
	return srv
}

// NewManagedDefault serves sessions from a caller-configured manager with
// an unmanaged default session on the legacy routes — vlserver's shape:
// the operator's startup session (wired to the process observer, exempt
// from eviction) plus an admission-controlled tenant fleet beside it.
func NewManagedDefault(mgr *core.SessionManager, s *core.Session) *Server {
	srv := newServer(mgr)
	srv.deflt = newTenant("default", s, nil)
	return srv
}

// NewManaged serves sessions from mgr. deflt, when non-nil, must be a
// session resident in mgr; it serves the legacy un-prefixed routes and is
// addressable under /sessions/{its-id}/ like any other tenant.
func NewManaged(mgr *core.SessionManager, deflt *core.ManagedSession) *Server {
	srv := newServer(mgr)
	if deflt != nil {
		t := newTenant(deflt.ID, deflt.Session, deflt)
		srv.deflt = t
		srv.tenants[deflt.ID] = t
	}
	return srv
}

func newServer(mgr *core.SessionManager) *Server {
	srv := &Server{
		mux:     http.NewServeMux(),
		mgr:     mgr,
		tenants: make(map[string]*tenant),
	}
	// Evictions (idle TTL, memory pressure) tear down the serving state —
	// stream clients are disconnected, caches dropped. Explicit deletes go
	// through the DELETE handler, which does its own teardown.
	mgr.OnEvict = func(id string, _ *core.ManagedSession) { srv.dropTenant(id) }
	srv.mux.HandleFunc("/", srv.handleIndex)
	// Legacy single-session routes: aliases for the default tenant.
	srv.mux.HandleFunc("/stream", srv.legacy)
	srv.mux.HandleFunc("/api/", srv.legacy)
	srv.mux.HandleFunc("/debug/", srv.legacy)
	// The session fabric.
	srv.mux.HandleFunc("/sessions", srv.handleSessions)
	srv.mux.HandleFunc("/sessions/", srv.handleSessionPath)
	// The fleet scope: one ViewQL query, every session.
	srv.fleet = &core.Fleet{Mgr: mgr, Guard: srv.fleetGuard}
	srv.mux.HandleFunc("/fleet/query", srv.handleFleetQuery)
	srv.registerDebug()
	return srv
}

// legacy serves an un-prefixed route against the default tenant.
func (s *Server) legacy(w http.ResponseWriter, r *http.Request) {
	t := s.deflt
	if t == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no default session; use /sessions/{id}%s", r.URL.Path))
		return
	}
	s.dispatch(t, r.URL.Path, w, r)
}

// tenantByID resolves a tenant, counting the request against the session's
// idle TTL. The default tenant answers to "default" even when unmanaged.
func (s *Server) tenantByID(id string) *tenant {
	s.tmu.RLock()
	t := s.tenants[id]
	s.tmu.RUnlock()
	if t == nil && id == "default" {
		t = s.deflt
	}
	if t != nil {
		t.touch()
	}
	return t
}

// dropTenant removes a tenant from the registry and closes its serving
// state. Safe to call for IDs with no tenant (manager-only sessions).
func (s *Server) dropTenant(id string) {
	s.tmu.Lock()
	t := s.tenants[id]
	delete(s.tenants, id)
	s.tmu.Unlock()
	if t != nil {
		t.close()
	}
}

// dispatch routes one request for a resolved tenant. path is the
// tenant-relative route — r.URL.Path for legacy requests, the part after
// /sessions/{id} otherwise — so every handler sees the same shape either
// way.
func (s *Server) dispatch(t *tenant, path string, w http.ResponseWriter, r *http.Request) {
	if t.ms != nil && s.mgr.Tenants != nil {
		s.mgr.Tenants.Requests(t.id).Inc()
	}
	switch {
	case path == "/stream":
		s.handleStream(t, w, r)
	case path == "/api/vplot":
		s.handleVPlot(t, w, r)
	case path == "/api/vctrl":
		s.handleVCtrl(t, w, r)
	case path == "/api/vchat":
		s.handleVChat(t, w, r)
	case path == "/api/panes":
		s.handlePanes(t, w, r)
	case path == "/api/pane":
		s.handlePane(t, w, r)
	case path == "/api/figures":
		s.handleFigures(t, w, r)
	case path == "/api/session/export":
		s.handleExport(t, w, r)
	case path == "/api/session/import":
		s.handleImport(t, w, r)
	case path == "/round":
		s.handleRound(t, w, r)
	case path == "/debug/metrics":
		s.handleMetrics(t, w, r)
	case path == "/debug/metrics/history":
		s.handleMetricsHistory(t, w, r)
	case strings.HasPrefix(path, "/debug/trace/"):
		s.handleTrace(t, strings.TrimPrefix(path, "/debug/trace/"), w, r)
	case path == "/debug/slowlog":
		s.handleSlowLog(t, w, r)
	case strings.HasPrefix(path, "/debug/diagnose"):
		s.handleDiagnose(t, strings.TrimPrefix(strings.TrimPrefix(path, "/debug/diagnose"), "/"), w, r)
	case path == "/debug/stream":
		s.handleStreamDebug(t, w, r)
	default:
		http.NotFound(w, r)
	}
}

// handleExport serializes the session's pane/plot state (paper §4.2
// persistence). Read-only: concurrent with other readers.
func (s *Server) handleExport(t *tenant, w http.ResponseWriter, r *http.Request) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	data, err := t.session.Export()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

// handleImport restores an exported session into a fresh one.
func (s *Server) handleImport(t *tenant, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.session.Import(body); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	// The restored tree restarts version/epoch numbering: cached
	// serializations and publish states from before the import could carry
	// ETags identical to the new panes' while holding the old bytes.
	t.clearPaneCache()
	t.publishAfterMutation()
	writeJSON(w, http.StatusOK, map[string]string{"status": "restored"})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// vplotReq is the body of POST /api/vplot.
type vplotReq struct {
	Name    string `json:"name"`
	Program string `json:"program"` // ViewCL source; or empty with Figure set
	Figure  string `json:"figure"`  // stdlib figure ID, e.g. "7-1"
}

func (s *Server) handleVPlot(t *tenant, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	var req vplotReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var err error
	var paneID int
	if req.Figure != "" {
		p, e := t.session.VPlotFigure(req.Figure)
		if e == nil {
			paneID = p.ID
		}
		err = e
	} else {
		p, e := t.session.VPlot(req.Name, req.Program)
		if e == nil {
			paneID = p.ID
		}
		err = e
	}
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	t.publishAfterMutation()
	writeJSON(w, http.StatusOK, map[string]any{"pane": paneID})
}

// vctrlReq is the body of POST /api/vctrl.
type vctrlReq struct {
	Command string `json:"command"`
}

func (s *Server) handleVCtrl(t *tenant, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	var req vctrlReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out, err := t.session.VCtrl(req.Command)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	t.publishAfterMutation()
	writeJSON(w, http.StatusOK, map[string]string{"output": out})
}

// vchatReq is the body of POST /api/vchat.
type vchatReq struct {
	Pane    int    `json:"pane"`
	Message string `json:"message"`
}

func (s *Server) handleVChat(t *tenant, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	var req vchatReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Pane == 0 {
		req.Pane = 1
	}
	// Fleet questions span sessions, so they must be routed before this
	// tenant's write lock is taken: the fleet guard re-acquires per-tenant
	// read locks (including this one) during the fan-out.
	if intent, _ := vchat.Classify(req.Message); intent == vchat.IntentFleet {
		ans, err := s.fleet.Chat(req.Message)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"kind":    "fleet",
			"answer":  ans.Text,
			"ranking": ans.Ranking,
		})
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	kind, out, err := t.session.VChatAnswer(req.Pane, req.Message)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	t.publishAfterMutation()
	// Visualization requests keep the historical {"viewql": ...} shape;
	// diagnostic questions answer {"kind":"diagnosis","answer":...}.
	if kind == core.AnswerViewQL {
		writeJSON(w, http.StatusOK, map[string]string{"viewql": out})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"kind": kind, "answer": out})
}

func (s *Server) handlePanes(t *tenant, w http.ResponseWriter, r *http.Request) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	type paneInfo struct {
		ID      int    `json:"id"`
		Kind    string `json:"kind"`
		Title   string `json:"title"`
		Boxes   int    `json:"boxes"`
		Summary string `json:"summary"`
		Version int    `json:"version"`
		Epoch   int    `json:"epoch"`
	}
	var out []paneInfo
	if t.session.Tree != nil {
		for _, p := range t.session.Tree.Panes() {
			out = append(out, paneInfo{
				ID: p.ID, Kind: p.Kind.String(), Title: p.Title,
				Boxes: len(p.Graph.Boxes), Summary: p.Graph.Summary(),
				Version: p.Version, Epoch: t.session.Tree.Epoch(),
			})
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePane(t *tenant, w http.ResponseWriter, r *http.Request) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var id int
	if _, err := fmt.Sscanf(r.URL.Query().Get("id"), "%d", &id); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad pane id"))
		return
	}
	if t.session.Tree == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no panes"))
		return
	}
	p, ok := t.session.Tree.Pane(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no pane %d", id))
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	// Weak validator over pane version + tree epoch: the version moves when
	// the pane's content is replaced (incremental re-extraction), the epoch
	// when shared display attributes mutate (ViewQL/expand/vchat). A client
	// revalidating an unchanged pane costs a 304, not a re-serialization.
	etag := t.paneETag(p, format)
	w.Header().Set("ETag", etag)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	c, _, err := t.serializePane(p, format)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", c.ctype)
	_, _ = w.Write(c.body)
}

// etagMatches reports whether an If-None-Match header value matches the
// given entity tag, using RFC 9110 §13.1.2 semantics: weak comparison
// (W/ prefixes are ignored on both sides), comma-separated candidate
// lists, and the "*" wildcard — which matches any current representation
// wherever it appears, including sloppy clients that send it inside a
// list or padded with whitespace.
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	want := strings.TrimPrefix(etag, "W/")
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == "*" {
			return true
		}
		if strings.TrimPrefix(part, "W/") == want {
			return true
		}
	}
	return false
}

func (s *Server) handleFigures(t *tenant, w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, core.FigureIDs())
}

const indexHTML = `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>Visualinux</title>
<style>
body { font-family: monospace; margin: 1em; background: #10141a; color: #d8dee9; }
pre { background: #161b22; padding: 1em; overflow: auto; border-radius: 6px; }
input, button, textarea { font-family: monospace; background: #1f2630; color: #d8dee9; border: 1px solid #444; }
.pane { border: 1px solid #333; margin: .6em 0; padding: .4em; }
</style></head>
<body>
<h1>Visualinux</h1>
<p>vplot a figure: <input id="fig" value="7-1" size="8"><button onclick="plot()">vplot</button>
vchat (pane 1): <input id="chat" size="48" placeholder="shrink tasks that have no address space">
<button onclick="chat()">send</button></p>
<div id="panes"></div>
<script>
async function refresh() {
  const panes = await (await fetch('/api/panes')).json() || [];
  const div = document.getElementById('panes');
  div.innerHTML = '';
  for (const p of panes) {
    const txt = await (await fetch('/api/pane?id='+p.id+'&format=text')).text();
    const el = document.createElement('div');
    el.className = 'pane';
    el.innerHTML = '<b>pane '+p.id+' ('+p.kind+') '+p.title+'</b><pre></pre>';
    el.querySelector('pre').textContent = txt;
    div.appendChild(el);
  }
}
async function plot() {
  await fetch('/api/vplot', {method:'POST', body: JSON.stringify({figure: document.getElementById('fig').value})});
  refresh();
}
async function chat() {
  const r = await fetch('/api/vchat', {method:'POST', body: JSON.stringify({pane:1, message: document.getElementById('chat').value})});
  const j = await r.json();
  if (j.error) alert(j.error); else console.log(j.viewql);
  refresh();
}
refresh();
</script>
</body></html>`

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}
