// Package server implements the visualizer front-end of the paper's §4.2 as
// an HTTP service: v-commands executed against the session arrive as POST
// requests (exactly how the paper's GDB extension talks to its TypeScript
// front-end), pane state is queryable as JSON, and a small embedded HTML
// page renders the panes for a browser. Pane/plot state can be exported and
// re-imported, covering the paper's "persisting the state of panes and
// plots for reuse across debugging sessions".
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"visualinux/internal/core"
	"visualinux/internal/stream"
)

// Server exposes a Session over HTTP.
type Server struct {
	mu      sync.Mutex
	session *core.Session
	mux     *http.ServeMux
	// paneCache keeps the last serialized body per pane+format, keyed by
	// the same version/epoch ETag served to clients: an unchanged pane is
	// neither re-rendered nor re-serialized, it's one buffer write. The
	// stream plane's fan-out serializes through the same cache, so a GET
	// and a pushed frame at the same epoch share one encode.
	paneCache map[string]*cachedPane
	// broker fans pane deltas out to /stream subscribers; lastPub tracks
	// the (version, epoch) each pane was last published at, and round
	// counts fan-out rounds (the SSE frame's `round` field).
	broker  *stream.Broker
	lastPub map[int]pubState
	round   uint64
}

// cachedPane is one serialized pane representation.
type cachedPane struct {
	etag  string
	ctype string
	body  []byte
}

// New wraps a session.
func New(s *core.Session) *Server {
	srv := &Server{
		session:   s,
		mux:       http.NewServeMux(),
		paneCache: make(map[string]*cachedPane),
		broker:    stream.NewBroker(s.Obs, 0),
		lastPub:   make(map[int]pubState),
	}
	// The vchat diagnosis layer answers "why is my stream laggy?" from the
	// broker's health snapshot; hand the session a way to read it.
	s.StreamHealth = srv.broker.Health
	srv.mux.HandleFunc("/", srv.handleIndex)
	srv.mux.HandleFunc("/stream", srv.handleStream)
	srv.mux.HandleFunc("/api/vplot", srv.handleVPlot)
	srv.mux.HandleFunc("/api/vctrl", srv.handleVCtrl)
	srv.mux.HandleFunc("/api/vchat", srv.handleVChat)
	srv.mux.HandleFunc("/api/panes", srv.handlePanes)
	srv.mux.HandleFunc("/api/pane", srv.handlePane)
	srv.mux.HandleFunc("/api/figures", srv.handleFigures)
	srv.mux.HandleFunc("/api/session/export", srv.handleExport)
	srv.mux.HandleFunc("/api/session/import", srv.handleImport)
	srv.registerDebug()
	return srv
}

// handleExport serializes the session's pane/plot state (paper §4.2
// persistence).
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := s.session.Export()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

// handleImport restores an exported session into a fresh one.
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.session.Import(body); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.publishAfterMutation()
	writeJSON(w, http.StatusOK, map[string]string{"status": "restored"})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// vplotReq is the body of POST /api/vplot.
type vplotReq struct {
	Name    string `json:"name"`
	Program string `json:"program"` // ViewCL source; or empty with Figure set
	Figure  string `json:"figure"`  // stdlib figure ID, e.g. "7-1"
}

func (s *Server) handleVPlot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	var req vplotReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	var paneID int
	if req.Figure != "" {
		p, e := s.session.VPlotFigure(req.Figure)
		if e == nil {
			paneID = p.ID
		}
		err = e
	} else {
		p, e := s.session.VPlot(req.Name, req.Program)
		if e == nil {
			paneID = p.ID
		}
		err = e
	}
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.publishAfterMutation()
	writeJSON(w, http.StatusOK, map[string]any{"pane": paneID})
}

// vctrlReq is the body of POST /api/vctrl.
type vctrlReq struct {
	Command string `json:"command"`
}

func (s *Server) handleVCtrl(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	var req vctrlReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out, err := s.session.VCtrl(req.Command)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.publishAfterMutation()
	writeJSON(w, http.StatusOK, map[string]string{"output": out})
}

// vchatReq is the body of POST /api/vchat.
type vchatReq struct {
	Pane    int    `json:"pane"`
	Message string `json:"message"`
}

func (s *Server) handleVChat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	var req vchatReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Pane == 0 {
		req.Pane = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	kind, out, err := s.session.VChatAnswer(req.Pane, req.Message)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.publishAfterMutation()
	// Visualization requests keep the historical {"viewql": ...} shape;
	// diagnostic questions answer {"kind":"diagnosis","answer":...}.
	if kind == core.AnswerViewQL {
		writeJSON(w, http.StatusOK, map[string]string{"viewql": out})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"kind": kind, "answer": out})
}

func (s *Server) handlePanes(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	type paneInfo struct {
		ID      int    `json:"id"`
		Kind    string `json:"kind"`
		Title   string `json:"title"`
		Boxes   int    `json:"boxes"`
		Summary string `json:"summary"`
		Version int    `json:"version"`
		Epoch   int    `json:"epoch"`
	}
	var out []paneInfo
	if s.session.Tree != nil {
		for _, p := range s.session.Tree.Panes() {
			out = append(out, paneInfo{
				ID: p.ID, Kind: p.Kind.String(), Title: p.Title,
				Boxes: len(p.Graph.Boxes), Summary: p.Graph.Summary(),
				Version: p.Version, Epoch: s.session.Tree.Epoch(),
			})
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePane(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var id int
	if _, err := fmt.Sscanf(r.URL.Query().Get("id"), "%d", &id); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad pane id"))
		return
	}
	if s.session.Tree == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no panes"))
		return
	}
	p, ok := s.session.Tree.Pane(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no pane %d", id))
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	// Weak validator over pane version + tree epoch: the version moves when
	// the pane's content is replaced (incremental re-extraction), the epoch
	// when shared display attributes mutate (ViewQL/expand/vchat). A client
	// revalidating an unchanged pane costs a 304, not a re-serialization.
	etag := s.paneETagLocked(p, format)
	w.Header().Set("ETag", etag)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	c, _, err := s.serializePaneLocked(p, format)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", c.ctype)
	_, _ = w.Write(c.body)
}

// etagMatches reports whether an If-None-Match header value matches the
// given entity tag, using RFC 9110 §13.1.2 semantics: weak comparison
// (W/ prefixes are ignored on both sides), comma-separated candidate
// lists, and the "*" wildcard — which matches any current representation
// wherever it appears, including sloppy clients that send it inside a
// list or padded with whitespace.
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	want := strings.TrimPrefix(etag, "W/")
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == "*" {
			return true
		}
		if strings.TrimPrefix(part, "W/") == want {
			return true
		}
	}
	return false
}

func (s *Server) handleFigures(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, core.FigureIDs())
}

const indexHTML = `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>Visualinux</title>
<style>
body { font-family: monospace; margin: 1em; background: #10141a; color: #d8dee9; }
pre { background: #161b22; padding: 1em; overflow: auto; border-radius: 6px; }
input, button, textarea { font-family: monospace; background: #1f2630; color: #d8dee9; border: 1px solid #444; }
.pane { border: 1px solid #333; margin: .6em 0; padding: .4em; }
</style></head>
<body>
<h1>Visualinux</h1>
<p>vplot a figure: <input id="fig" value="7-1" size="8"><button onclick="plot()">vplot</button>
vchat (pane 1): <input id="chat" size="48" placeholder="shrink tasks that have no address space">
<button onclick="chat()">send</button></p>
<div id="panes"></div>
<script>
async function refresh() {
  const panes = await (await fetch('/api/panes')).json() || [];
  const div = document.getElementById('panes');
  div.innerHTML = '';
  for (const p of panes) {
    const txt = await (await fetch('/api/pane?id='+p.id+'&format=text')).text();
    const el = document.createElement('div');
    el.className = 'pane';
    el.innerHTML = '<b>pane '+p.id+' ('+p.kind+') '+p.title+'</b><pre></pre>';
    el.querySelector('pre').textContent = txt;
    div.appendChild(el);
  }
}
async function plot() {
  await fetch('/api/vplot', {method:'POST', body: JSON.stringify({figure: document.getElementById('fig').value})});
  refresh();
}
async function chat() {
  const r = await fetch('/api/vchat', {method:'POST', body: JSON.stringify({pane:1, message: document.getElementById('chat').value})});
  const j = await r.json();
  if (j.error) alert(j.error); else console.log(j.viewql);
  refresh();
}
refresh();
</script>
</body></html>`

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}
