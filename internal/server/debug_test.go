package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
	"visualinux/internal/obs"
	"visualinux/internal/server"
)

func newObservedServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, _, _ := core.NewObservedKernelSession(kernelsim.Options{}, obs.NewObserver())
	ts := httptest.NewServer(server.New(s))
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp, body
}

func TestDebugMetricsEndpoint(t *testing.T) {
	ts := newObservedServer(t)
	if resp, _ := post(t, ts, "/api/vplot", `{"figure":"7-1"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("vplot status %d", resp.StatusCode)
	}

	resp, body := get(t, ts, "/debug/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	for _, want := range []string{
		"vl_extractions_total 1",
		"vl_snapshot_page_misses_total",
		"vl_target_link_transactions_total",
		`vl_extraction_duration_ms_count{figure="fig7-1"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestDebugTraceEndpoint(t *testing.T) {
	ts := newObservedServer(t)

	// Before any plot, the trace surfaces hold nothing.
	if resp, _ := get(t, ts, "/debug/trace/last"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace/last before plots: status %d", resp.StatusCode)
	}

	if resp, _ := post(t, ts, "/api/vplot", `{"figure":"7-1"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("vplot status %d", resp.StatusCode)
	}

	for _, path := range []string{"/debug/trace/last", "/debug/trace/1"} {
		resp, body := get(t, ts, path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, resp.StatusCode, body)
		}
		var out struct {
			Pane  int             `json:"pane"`
			Trace *obs.SpanExport `json:"trace"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if out.Pane != 1 || out.Trace == nil || !strings.HasPrefix(out.Trace.Name, "vplot:") {
			t.Fatalf("%s: pane=%d trace=%+v", path, out.Pane, out.Trace)
		}
	}

	if resp, _ := get(t, ts, "/debug/trace/99"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace/99: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/debug/trace/bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trace/bogus: status %d, want 400", resp.StatusCode)
	}
}

func TestDebugSlowLogEndpoint(t *testing.T) {
	ts := newObservedServer(t)
	post(t, ts, "/api/vplot", `{"figure":"7-1"}`)
	post(t, ts, "/api/vplot", `{"figure":"3-6"}`)

	resp, body := get(t, ts, "/debug/slowlog")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var entries []obs.SlowEntry
	if err := json.Unmarshal(body, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("slowlog entries = %d, want 2", len(entries))
	}
	for _, e := range entries {
		if !strings.Contains(e.Label, "pane ") || e.Trace == nil {
			t.Fatalf("entry = %+v", e)
		}
	}
}

// TestDebugEndpointsUnobserved pins the opt-in contract: a session built
// without an observer serves 404 on every debug surface.
func TestDebugEndpointsUnobserved(t *testing.T) {
	s, _ := core.NewKernelSession(kernelsim.Options{})
	ts := httptest.NewServer(server.New(s))
	t.Cleanup(ts.Close)
	for _, path := range []string{"/debug/metrics", "/debug/trace/last", "/debug/slowlog"} {
		if resp, _ := get(t, ts, path); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// The diagnosis endpoint answers from retained span trees: a plotted pane
// diagnoses by id or via "slowest", an unknown pane 404s, and the plain
// server (no observer) keeps 404ing the whole surface.
func TestDebugDiagnoseEndpoint(t *testing.T) {
	ts := newObservedServer(t)
	if resp, _ := post(t, ts, "/api/vplot", `{"figure":"7-1"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("vplot status %d", resp.StatusCode)
	}

	for _, path := range []string{"/debug/diagnose/1", "/debug/diagnose/slowest"} {
		resp, body := get(t, ts, path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d: %s", path, resp.StatusCode, body)
		}
		var out struct {
			Pane      int    `json:"pane"`
			Rendered  string `json:"rendered"`
			Diagnosis struct {
				Suspect   string  `json:"suspect"`
				TotalMS   float64 `json:"total_ms"`
				Breakdown struct {
					TotalUS int64            `json:"total_us"`
					Stages  []obs.StageShare `json:"stages"`
				} `json:"breakdown"`
			} `json:"diagnosis"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("%s: %v\n%s", path, err, body)
		}
		if out.Pane != 1 || out.Diagnosis.Suspect == "" || out.Diagnosis.Suspect == obs.StageOther {
			t.Fatalf("%s: pane=%d suspect=%q", path, out.Pane, out.Diagnosis.Suspect)
		}
		if !strings.Contains(out.Rendered, "dominant stage: "+out.Diagnosis.Suspect) {
			t.Fatalf("%s: rendered text disagrees with structure:\n%s", path, out.Rendered)
		}
		var sum int64
		for _, st := range out.Diagnosis.Breakdown.Stages {
			sum += st.DurUS
		}
		if total := out.Diagnosis.Breakdown.TotalUS; sum*10 < total*9 {
			t.Fatalf("%s: stages sum %dus of %dus", path, sum, total)
		}
	}

	if resp, body := get(t, ts, "/debug/diagnose/99"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown pane status %d: %s", resp.StatusCode, body)
	}
	if resp, body := get(t, ts, "/debug/diagnose/nope"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad pane id status %d: %s", resp.StatusCode, body)
	}

	plain := newServer(t)
	if resp, _ := get(t, plain, "/debug/diagnose/1"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unobserved server status %d", resp.StatusCode)
	}
}

// A diagnostic question through /api/vchat routes to the diagnosis path and
// answers {"kind":"diagnosis"}; a visualization request keeps the
// historical {"viewql"} shape.
func TestVChatDiagnosisRouting(t *testing.T) {
	ts := newObservedServer(t)
	if resp, _ := post(t, ts, "/api/vplot", `{"figure":"7-1"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("vplot status %d", resp.StatusCode)
	}
	resp, out := post(t, ts, "/api/vchat", `{"pane":1,"message":"why is pane 1 slow?"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if out["kind"] != "diagnosis" || !strings.Contains(out["answer"].(string), "dominant stage:") {
		t.Fatalf("diagnosis routing: %v", out)
	}
	if _, hasViewQL := out["viewql"]; hasViewQL {
		t.Fatalf("diagnostic answer leaked a viewql field: %v", out)
	}
}

// The pprof surface profiles the process itself, so it must answer even on
// a session built without an observer — unlike the other /debug/ endpoints.
func TestDebugPprofEndpoint(t *testing.T) {
	s, _ := core.NewKernelSession(kernelsim.Options{})
	ts := httptest.NewServer(server.New(s))
	t.Cleanup(ts.Close)

	resp, body := get(t, ts, "/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("index status %d: %s", resp.StatusCode, body)
	}
	for _, want := range []string{"goroutine", "heap"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("pprof index missing %q:\n%s", want, body)
		}
	}
	if resp, _ := get(t, ts, "/debug/pprof/heap?debug=1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("heap profile status %d", resp.StatusCode)
	}
}
