package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"visualinux/internal/obs"
	"visualinux/internal/stream"
)

// This file is the push half of the server: where handlePane answers a
// poll, the stream plane fans pane deltas out to every connected SSE
// client the moment a stop event lands. Change detection keys on the same
// pane Version + tree epoch the weak ETags use, and the bytes shipped are
// the same per-pane+format serialization cache entries a GET would
// return — N clients cost one encode, and a stream frame at epoch E is
// byte-identical to GET /api/pane at epoch E. Each tenant owns its broker:
// one session's fan-out never sees another session's clients.

// pubState is the last (version, epoch) a pane was fanned out at.
type pubState struct {
	version int
	epoch   int
}

// StreamRound runs one stop event for the default session — the legacy
// single-session entry point vlserver's free-run loop calls.
func (s *Server) StreamRound(step func() error) error {
	if s.deflt == nil {
		return fmt.Errorf("server: no default session")
	}
	return s.streamRound(s.deflt, step)
}

// streamRound runs one stop event end to end under the tenant's write
// lock: step advances the world (mutation workload, extractor round, ...),
// then every pane whose version/epoch moved is serialized once per in-use
// format and fanned out to the tenant's stream clients. The round's span
// tree (step, per-pane serialization, per-client enqueue) is retained in
// the TraceStore under stream.FanoutTracePane, and the metrics history
// ring takes a snapshot on every round — stream health stays queryable
// after the fact, independent of the periodic -metrics-interval timer.
func (s *Server) streamRound(t *tenant, step func() error) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	o := t.session.Obs
	tr := o.NewTrace("stream.round")
	var stepErr error
	if step != nil {
		sp := tr.StartSpan("round.step")
		stepErr = step()
		sp.End()
	}
	t0 := time.Now()
	frames := 0
	if stepErr == nil {
		frames = t.publishLocked(tr)
	}
	fanout := time.Since(t0)
	if root := tr.Root(); root != nil {
		root.TagUint("frames", uint64(frames))
		root.TagUint("clients", uint64(t.broker.ClientCount()))
	}
	if export := o.FinishTrace(tr); export != nil {
		o.Traces.Record(stream.FanoutTracePane, "stream.fanout",
			float64(fanout.Nanoseconds())/1e6, export)
	}
	if o != nil {
		o.History.Snapshot(o.Registry)
	}
	return stepErr
}

// publishLocked diffs every pane against its last published (version,
// epoch), serializes the changed ones once per format that has at least
// one subscriber, and hands the frames to the broker. Caller holds the
// tenant's write lock. Returns the number of frames published.
func (t *tenant) publishLocked(tr *obs.Tracer) int {
	if t.session.Tree == nil || t.broker.ClientCount() == 0 {
		return 0
	}
	formats := make([]string, 0, 3)
	for f := range t.broker.FormatsInUse() {
		formats = append(formats, f)
	}
	if len(formats) == 0 {
		return 0
	}
	sort.Strings(formats)
	t0 := time.Now()
	o := t.session.Obs
	epoch := t.session.Tree.Epoch()
	seen := make(map[int]struct{})
	var frames []*stream.Frame
	root := tr.Root()
	for _, p := range t.session.Tree.Panes() {
		seen[p.ID] = struct{}{}
		if st, ok := t.lastPub[p.ID]; ok && st.version == p.Version && st.epoch == epoch {
			continue
		}
		for _, format := range formats {
			sp := root.StartChild("fanout.serialize")
			c, hit, err := t.serializePane(p, format)
			sp.TagUint("pane", uint64(p.ID)).Tag("format", format).
				Tag("cache", map[bool]string{true: "hit", false: "miss"}[hit])
			sp.End()
			if err != nil {
				continue
			}
			if o != nil {
				if hit {
					o.StreamCacheHits.Inc()
				} else {
					o.StreamCacheMisses.Inc()
				}
			}
			frames = append(frames, &stream.Frame{
				Pane: p.ID, Version: p.Version, Epoch: epoch,
				ETag: c.etag, Format: format, Body: c.body,
			})
		}
		t.lastPub[p.ID] = pubState{version: p.Version, epoch: epoch}
	}
	for id := range t.lastPub {
		if _, ok := seen[id]; !ok {
			delete(t.lastPub, id)
		}
	}
	if len(frames) == 0 {
		return 0
	}
	t.round++
	t.broker.Publish(t.round, frames, root)
	if o != nil {
		o.StreamRounds.Inc()
		o.ObserveFanout(time.Since(t0))
	}
	return len(frames)
}

// publishAfterMutation fans out any pane changes an interactive handler
// (vplot / vctrl / vchat / import) produced, so stream clients see the
// same mutations a poller would — not only free-run stop events. Caller
// holds the tenant's write lock.
func (t *tenant) publishAfterMutation() {
	t.publishLocked(nil)
}

// snapshotFrames serializes the client's subscribed panes at their
// current state — the on-connect catch-up push. Caller holds t.mu (read
// suffices: the tree cannot change, and the cache has its own lock).
func (t *tenant) snapshotFrames(c *stream.Client) []*stream.Frame {
	if t.session.Tree == nil {
		return nil
	}
	o := t.session.Obs
	epoch := t.session.Tree.Epoch()
	var frames []*stream.Frame
	for _, p := range t.session.Tree.Panes() {
		if c.Subs != nil {
			if _, ok := c.Subs[p.ID]; !ok {
				continue
			}
		}
		cp, hit, err := t.serializePane(p, c.Format)
		if err != nil {
			continue
		}
		if o != nil {
			if hit {
				o.StreamCacheHits.Inc()
			} else {
				o.StreamCacheMisses.Inc()
			}
		}
		frames = append(frames, &stream.Frame{
			Pane: p.ID, Version: p.Version, Epoch: epoch,
			ETag: cp.etag, Format: c.Format, Body: cp.body,
		})
	}
	return frames
}

// Broker exposes the default session's fan-out broker (bench harnesses
// subscribe broker-level clients to measure push latency without TCP
// noise).
func (s *Server) Broker() *stream.Broker {
	if s.deflt == nil {
		return nil
	}
	return s.deflt.broker
}

// SessionBroker exposes one tenant's broker, nil if the session is
// unknown — the multi-tenant analogue of Broker for bench harnesses.
func (s *Server) SessionBroker(id string) *stream.Broker {
	t := s.tenantByID(id)
	if t == nil {
		return nil
	}
	return t.broker
}

// StepSession drives one stop-event round for a managed session by ID —
// the programmatic twin of POST /sessions/{id}/round.
func (s *Server) StepSession(id string) error {
	t := s.tenantByID(id)
	if t == nil {
		return fmt.Errorf("server: no session %q", id)
	}
	if t.ms == nil {
		return fmt.Errorf("server: session %q has no managed workload", id)
	}
	return s.streamRound(t, func() error {
		_, err := t.ms.StepRound()
		return err
	})
}

// streamEvent is the SSE data payload: the frame header plus the pane body
// as a JSON string, so the whole event is one line regardless of format.
type streamEvent struct {
	Seq       uint64 `json:"seq"`
	Round     uint64 `json:"round"`
	Pane      int    `json:"pane"`
	Version   int    `json:"version"`
	Epoch     int    `json:"epoch"`
	ETag      string `json:"etag"`
	Format    string `json:"format"`
	Snapshot  bool   `json:"snapshot,omitempty"`
	Coalesced bool   `json:"coalesced,omitempty"`
	Body      string `json:"body"`
}

// handleStream serves GET /stream: a Server-Sent Events feed of pane
// deltas. Query parameters: format (json|text|dot, default json) and
// panes (comma-separated pane IDs; absent = all panes). The client first
// receives a hello event, then snapshot frames for its panes' current
// state, then one pane event per delta. A consumer that stops reading
// degrades to latest-wins snapshots; disconnecting tears everything down.
func (s *Server) handleStream(t *tenant, w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	switch format {
	case "json", "text", "dot":
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown format %q", format))
		return
	}
	var paneIDs []int
	if raw := r.URL.Query().Get("panes"); raw != "" {
		for _, part := range strings.Split(raw, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("bad pane id %q", part))
				return
			}
			paneIDs = append(paneIDs, id)
		}
	}

	// Subscribe and push the catch-up snapshot under the tenant lock, so
	// the snapshot and the first live round cannot interleave. The read
	// lock suffices: publishers take the write lock.
	t.mu.RLock()
	c := t.broker.Subscribe(format, paneIDs)
	t.broker.SnapshotTo(c, t.snapshotFrames(c))
	t.mu.RUnlock()
	defer t.broker.Unsubscribe(c)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no")
	fmt.Fprintf(w, "event: hello\ndata: {\"client\":%d,\"format\":%q}\n\n", c.ID, format)
	fl.Flush()

	ctx := r.Context()
	for {
		f, ok := c.Next(ctx)
		if !ok {
			return
		}
		data, err := json.Marshal(streamEvent{
			Seq: f.Seq, Round: f.Round, Pane: f.Pane,
			Version: f.Version, Epoch: f.Epoch, ETag: f.ETag,
			Format: f.Format, Snapshot: f.Snapshot, Coalesced: f.Coalesced,
			Body: string(f.Body),
		})
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "event: pane\nid: %d\ndata: %s\n\n", f.Seq, data); err != nil {
			return
		}
		fl.Flush()
	}
}

// handleStreamDebug serves GET /debug/stream: the broker-wide health
// snapshot — every connected client with its lag, queue depth, and frame
// counters — plus the round counter. Unlike the observer-backed /debug
// surfaces this one always answers: the broker exists even on an
// unobserved session.
func (s *Server) handleStreamDebug(t *tenant, w http.ResponseWriter, r *http.Request) {
	t.mu.RLock()
	round := t.round
	t.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"round":  round,
		"health": t.broker.Health(),
	})
}
