package render_test

import (
	"encoding/json"
	"strings"
	"testing"

	"visualinux/internal/graph"
	"visualinux/internal/render"
)

// build constructs a small graph:
//
//	root -> a -> b
//	     -> c (container: [d, e])
func build() *graph.Graph {
	g := graph.New("test")
	mk := func(id string, items ...graph.Item) *graph.Box {
		b := graph.NewBox(id, id, "t", uint64(len(g.Boxes)+1)*0x100)
		b.AddView(&graph.View{Name: "default", Items: items})
		g.Add(b)
		return b
	}
	mk("b", graph.Item{Kind: graph.ItemText, Name: "v", Value: "2", Raw: 2, IsNum: true})
	mk("a",
		graph.Item{Kind: graph.ItemText, Name: "v", Value: "1", Raw: 1, IsNum: true},
		graph.Item{Kind: graph.ItemLink, Name: "next", TargetID: "b"})
	mk("d", graph.Item{Kind: graph.ItemText, Name: "v", Value: "4"})
	mk("e", graph.Item{Kind: graph.ItemText, Name: "v", Value: "5"})
	mk("c", graph.Item{Kind: graph.ItemContainer, Name: "elems", Elems: []string{"d", "", "e"}})
	mk("root",
		graph.Item{Kind: graph.ItemLink, Name: "a", TargetID: "a"},
		graph.Item{Kind: graph.ItemLink, Name: "c", TargetID: "c"})
	g.RootID = "root"
	g.Roots = []string{"root"}
	return g
}

func TestVisibleAll(t *testing.T) {
	g := build()
	vis := render.Visible(g)
	for _, id := range []string{"root", "a", "b", "c", "d", "e"} {
		if !vis[id] {
			t.Errorf("%s not visible", id)
		}
	}
}

func TestTrimmedHidesDescendants(t *testing.T) {
	g := build()
	ab, _ := g.Get("a")
	ab.SetAttr(graph.AttrTrimmed, "true")
	vis := render.Visible(g)
	if vis["a"] || vis["b"] {
		t.Errorf("trimmed subtree visible: a=%v b=%v", vis["a"], vis["b"])
	}
	if !vis["c"] || !vis["d"] {
		t.Errorf("sibling subtree lost")
	}
	// b is still reachable if something else links it — here it is not.
	txt := render.Text(g)
	if strings.Contains(txt, "| b ") {
		t.Errorf("trimmed box rendered")
	}
	if !strings.Contains(txt, "hidden by trim/collapse") {
		t.Errorf("hidden count not reported")
	}
}

func TestBoxCollapseHidesEdges(t *testing.T) {
	g := build()
	ab, _ := g.Get("a")
	ab.SetAttr(graph.AttrCollapsed, "true")
	vis := render.Visible(g)
	if !vis["a"] {
		t.Errorf("collapsed box itself must stay visible")
	}
	if vis["b"] {
		t.Errorf("collapsed box's edges should hide b")
	}
	txt := render.Text(g)
	if !strings.Contains(txt, "[+] a") {
		t.Errorf("collapse button missing:\n%s", txt)
	}
}

func TestItemCollapseKeepsEdges(t *testing.T) {
	g := build()
	cb, _ := g.Get("c")
	v := cb.CurrentView()
	v.Items[0].SetAttr(graph.AttrCollapsed, "true")
	vis := render.Visible(g)
	if !vis["d"] || !vis["e"] {
		t.Errorf("item collapse must keep elements visible (paper Fig 4)")
	}
	txt := render.Text(g)
	if !strings.Contains(txt, "[+2 collapsed]") {
		t.Errorf("collapsed container rendering:\n%s", txt)
	}
}

func TestViewAttributeSwitches(t *testing.T) {
	g := build()
	ab, _ := g.Get("a")
	ab.AddView(&graph.View{Name: "alt", Items: []graph.Item{
		{Kind: graph.ItemText, Name: "other", Value: "42"},
	}})
	ab.SetAttr(graph.AttrView, "alt")
	txt := render.Text(g)
	if !strings.Contains(txt, "other: 42") {
		t.Errorf("alt view not used")
	}
	if strings.Contains(txt, "next -> b") {
		t.Errorf("default view leaked")
	}
	// And b is no longer reachable since alt has no link.
	if render.Visible(g)["b"] {
		t.Errorf("b visible through hidden view")
	}
}

func TestDOTOutput(t *testing.T) {
	g := build()
	dot := render.DOT(g)
	if !strings.HasPrefix(dot, "digraph") || !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Fatalf("malformed dot:\n%s", dot)
	}
	for _, frag := range []string{`"root"`, `"a" [label=`, `-> "b"`, "style=dotted"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("dot missing %q", frag)
		}
	}
}

func TestJSONRoundtrip(t *testing.T) {
	g := build()
	j := render.ToJSON(g)
	data, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	var back render.JSONGraph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "test" || len(back.Boxes) != 6 || back.RootID != "root" {
		t.Errorf("roundtrip lost data: %+v", back)
	}
	found := false
	for _, b := range back.Boxes {
		if b.ID == "a" {
			found = true
			if len(b.Views) != 1 || len(b.Views[0].Items) != 2 {
				t.Errorf("box a items lost")
			}
			if !b.Visible {
				t.Errorf("a should be visible")
			}
		}
	}
	if !found {
		t.Errorf("box a missing")
	}
}

func TestHistogram(t *testing.T) {
	g := build()
	h := render.TypeHistogram(g)
	if h["t"] != 6 {
		t.Errorf("histogram: %v", h)
	}
	s := render.HistogramString(h)
	if s != "t:6" {
		t.Errorf("string: %q", s)
	}
}

func TestNullLinkRendering(t *testing.T) {
	g := graph.New("nulls")
	b := graph.NewBox("x", "x", "t", 0x1)
	b.AddView(&graph.View{Name: "default", Items: []graph.Item{
		{Kind: graph.ItemLink, Name: "gone", TargetID: ""},
	}})
	g.Add(b)
	g.RootID = "x"
	txt := render.Text(g)
	if !strings.Contains(txt, "gone -> NULL") {
		t.Errorf("NULL link rendering:\n%s", txt)
	}
}
