// Package render turns extracted object graphs into human-readable output:
// an ASCII plot (the terminal analogue of the paper's visualizer panes), a
// Graphviz DOT emitter, and a JSON serialization consumed by the HTTP
// front-end. All renderers honor the ViewQL display attributes: trimmed
// boxes (and everything only reachable through them) disappear, collapsed
// boxes shrink to a click-to-expand button, the view attribute selects the
// layout, and direction controls container orientation.
package render

import (
	"fmt"
	"sort"
	"strings"

	"visualinux/internal/graph"
)

// Visible computes the set of boxes to draw: reachable from the roots
// without passing through a trimmed box (trimmed boxes hide their
// descendants, per the paper's attribute semantics).
func Visible(g *graph.Graph) map[string]bool {
	vis := make(map[string]bool)
	roots := g.Roots
	if len(roots) == 0 && g.RootID != "" {
		roots = []string{g.RootID}
	}
	var walk func(id string)
	walk = func(id string) {
		if id == "" || vis[id] {
			return
		}
		b, ok := g.Get(id)
		if !ok || b.Trimmed() {
			return
		}
		vis[id] = true
		if b.Collapsed() {
			return // collapsed boxes hide their outgoing edges until expanded
		}
		// Item-level collapse hides the inline display of a member but not
		// its edges (the paper's Fig 4 keeps child links after collapsing
		// the slot arrays); box-level collapse above hides everything.
		for _, it := range b.CurrentView().Items {
			switch it.Kind {
			case graph.ItemLink, graph.ItemBox:
				walk(it.TargetID)
			case graph.ItemContainer:
				for _, e := range it.Elems {
					walk(e)
				}
			}
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return vis
}

// Text renders the graph as an ASCII plot.
func Text(g *graph.Graph) string {
	vis := Visible(g)
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", g.Summary())
	order := make([]string, 0, len(vis))
	for _, id := range g.Order {
		if vis[id] {
			order = append(order, id)
		}
	}
	hidden := len(g.Boxes) - len(order)
	if hidden > 0 {
		fmt.Fprintf(&sb, "(%d boxes hidden by trim/collapse)\n", hidden)
	}
	for _, id := range order {
		b := g.Boxes[id]
		writeBox(&sb, g, b)
	}
	return sb.String()
}

func writeBox(sb *strings.Builder, g *graph.Graph, b *graph.Box) {
	v := b.CurrentView()
	title := b.ID
	if v.Name != graph.DefaultView {
		title += " :" + v.Name
	}
	if b.Collapsed() {
		fmt.Fprintf(sb, "[+] %s (collapsed)\n", title)
		return
	}
	width := len(title)
	lines := make([]string, 0, len(v.Items))
	for _, it := range v.Items {
		line := itemLine(g, it)
		if len(line) > width {
			width = len(line)
		}
		lines = append(lines, line)
	}
	if width > 100 {
		width = 100
	}
	bar := strings.Repeat("-", width+2)
	fmt.Fprintf(sb, "+%s+\n| %-*s |\n+%s+\n", bar, width, title, bar)
	for _, l := range lines {
		if len(l) > 100 {
			l = l[:97] + "..."
		}
		fmt.Fprintf(sb, "| %-*s |\n", width, l)
	}
	fmt.Fprintf(sb, "+%s+\n", bar)
}

func itemLine(g *graph.Graph, it graph.Item) string {
	switch it.Kind {
	case graph.ItemText:
		return fmt.Sprintf("%s: %s", it.Name, it.Value)
	case graph.ItemLink:
		if it.TargetID == "" {
			return fmt.Sprintf("%s -> NULL", it.Name)
		}
		if tb, ok := g.Get(it.TargetID); ok && tb.Trimmed() {
			return fmt.Sprintf("%s -> (trimmed)", it.Name)
		}
		return fmt.Sprintf("%s -> %s", it.Name, it.TargetID)
	case graph.ItemBox:
		return fmt.Sprintf("%s: [%s]", it.Name, it.TargetID)
	case graph.ItemContainer:
		n := 0
		for _, e := range it.Elems {
			if e != "" {
				n++
			}
		}
		if it.Collapsed() {
			return fmt.Sprintf("%s: [+%d collapsed]", it.Name, n)
		}
		dir := it.Attrs[graph.AttrDirection]
		if dir == "" {
			dir = it.Direction
		}
		shown := make([]string, 0, len(it.Elems))
		for i, e := range it.Elems {
			if e == "" {
				shown = append(shown, fmt.Sprintf("[%d]=NULL", i))
				continue
			}
			if tb, ok := g.Get(e); ok && tb.Trimmed() {
				continue
			}
			shown = append(shown, e)
		}
		sep := ", "
		if dir == "vertical" {
			sep = " / "
		}
		return fmt.Sprintf("%s(%d): {%s}", it.Name, n, strings.Join(shown, sep))
	}
	return "?"
}

// DOT renders the graph as Graphviz dot source.
func DOT(g *graph.Graph) string {
	vis := Visible(g)
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n  node [shape=record, fontname=\"monospace\"];\n", g.Name)
	for _, id := range g.Order {
		if !vis[id] {
			continue
		}
		b := g.Boxes[id]
		if b.Collapsed() {
			fmt.Fprintf(&sb, "  %q [label=\"[+] %s\", style=dashed];\n", id, esc(b.Label))
			continue
		}
		v := b.CurrentView()
		var fields []string
		fields = append(fields, esc(b.ID))
		for _, it := range v.Items {
			if it.Kind == graph.ItemText {
				fields = append(fields, fmt.Sprintf("%s: %s", esc(it.Name), esc(it.Value)))
			} else if it.Kind == graph.ItemContainer {
				n := 0
				for _, e := range it.Elems {
					if e != "" {
						n++
					}
				}
				fields = append(fields, fmt.Sprintf("<%s> %s[%d]", esc(it.Name), esc(it.Name), n))
			} else {
				fields = append(fields, fmt.Sprintf("<%s> %s", esc(it.Name), esc(it.Name)))
			}
		}
		fmt.Fprintf(&sb, "  %q [label=\"{%s}\"];\n", id, strings.Join(fields, "|"))
		for _, it := range v.Items {
			switch it.Kind {
			case graph.ItemLink, graph.ItemBox:
				if it.TargetID != "" && vis[it.TargetID] {
					fmt.Fprintf(&sb, "  %q:%q -> %q;\n", id, it.Name, it.TargetID)
				}
			case graph.ItemContainer:
				for _, e := range it.Elems {
					if e != "" && vis[e] {
						fmt.Fprintf(&sb, "  %q:%q -> %q [style=dotted];\n", id, it.Name, e)
					}
				}
			}
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func esc(s string) string {
	r := strings.NewReplacer("\"", "\\\"", "{", "\\{", "}", "\\}", "|", "\\|", "<", "\\<", ">", "\\>", "\n", " ")
	return r.Replace(s)
}

// --- JSON export ---------------------------------------------------------------

// JSONGraph is the wire form of a graph for the HTTP front-end.
type JSONGraph struct {
	Name   string      `json:"name"`
	RootID string      `json:"root"`
	Roots  []string    `json:"roots,omitempty"`
	Boxes  []JSONBox   `json:"boxes"`
	Stats  graph.Stats `json:"stats"`
	Hidden int         `json:"hidden"` // boxes suppressed by attributes
}

// JSONBox is the wire form of a box.
type JSONBox struct {
	ID       string            `json:"id"`
	Label    string            `json:"label"`
	TypeName string            `json:"type,omitempty"`
	Addr     string            `json:"addr,omitempty"`
	View     string            `json:"view"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Views    []JSONView        `json:"views"`
	Visible  bool              `json:"visible"`
}

// JSONView is the wire form of a view.
type JSONView struct {
	Name  string     `json:"name"`
	Items []JSONItem `json:"items"`
}

// JSONItem is the wire form of an item.
type JSONItem struct {
	Kind   string            `json:"kind"`
	Name   string            `json:"name"`
	Value  string            `json:"value,omitempty"`
	Target string            `json:"target,omitempty"`
	Elems  []string          `json:"elems,omitempty"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// ToJSON converts a graph for serialization.
func ToJSON(g *graph.Graph) *JSONGraph {
	vis := Visible(g)
	out := &JSONGraph{Name: g.Name, RootID: g.RootID, Roots: g.Roots, Stats: g.Stats}
	for _, id := range g.Order {
		b := g.Boxes[id]
		jb := JSONBox{
			ID: b.ID, Label: b.Label, TypeName: b.TypeName,
			View: b.CurrentView().Name, Visible: vis[id],
		}
		if b.Addr != 0 {
			jb.Addr = fmt.Sprintf("0x%x", b.Addr)
		}
		if len(b.Attrs) > 0 {
			jb.Attrs = b.Attrs
		}
		for _, vn := range b.ViewSeq {
			v := b.Views[vn]
			jv := JSONView{Name: v.Name}
			for _, it := range v.Items {
				jv.Items = append(jv.Items, JSONItem{
					Kind: it.Kind.String(), Name: it.Name, Value: it.Value,
					Target: it.TargetID, Elems: it.Elems, Attrs: it.Attrs,
				})
			}
			jb.Views = append(jb.Views, jv)
		}
		out.Boxes = append(out.Boxes, jb)
		if !vis[id] {
			out.Hidden++
		}
	}
	return out
}

// TypeHistogram summarizes box counts by type, a quick way for tests and
// the CLI to sanity-check a plot.
func TypeHistogram(g *graph.Graph) map[string]int {
	h := make(map[string]int)
	for _, b := range g.All() {
		key := b.TypeName
		if key == "" {
			key = b.Label
		}
		h[key]++
	}
	return h
}

// HistogramString renders the histogram deterministically.
func HistogramString(h map[string]int) string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, h[k]))
	}
	return strings.Join(parts, " ")
}
