package viewcl_test

import (
	"strings"
	"testing"

	"visualinux/internal/expr"
	"visualinux/internal/graph"
	"visualinux/internal/kernelsim"
	"visualinux/internal/viewcl"
)

func newInterp(t *testing.T) (*kernelsim.Kernel, *viewcl.Interp) {
	t.Helper()
	k := kernelsim.Build(kernelsim.Options{})
	env := expr.NewEnv(k.Target())
	kernelsim.RegisterHelpers(env)
	in := viewcl.New(env)
	for id, set := range kernelsim.FlagSets() {
		var fl []viewcl.Flag
		for _, b := range set {
			fl = append(fl, viewcl.Flag{Mask: b.Mask, Name: b.Name})
		}
		in.Flags[id] = fl
	}
	return k, in
}

// The paper's §1 motivating program: plot the CFS run queue of CPU 0.
const schedProgram = `
// Declare a Box for a task_struct object
define Task as Box<task_struct> [
    Text pid, comm
    Text ppid: ${@this->parent->pid}
    Text<string> state: ${task_state(@this)}
    Text se.vruntime
]

// cpu_rq(0) is the run queue of the first processor
root = ${cpu_rq(0)->cfs.tasks_timeline}

sched_tree = RBTree(@root).forEach |node| {
    yield Task<task_struct.se.run_node>(@node)
}

plot @sched_tree
`

func TestSchedProgram(t *testing.T) {
	k, in := newInterp(t)
	res, err := in.RunSource("sched", schedProgram)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	g := res.Graph
	if g.RootID == "" {
		t.Fatalf("no root")
	}
	tasks := g.ByType("task_struct")
	if len(tasks) == 0 {
		t.Fatalf("no tasks extracted")
	}
	// Every extracted task must be on CPU 0's run queue, sorted by
	// vruntime (RBTree in-order).
	var prev uint64
	for i, b := range tasks {
		vr, ok := b.Member("se.vruntime")
		if !ok {
			t.Fatalf("task %s missing se.vruntime", b.ID)
		}
		if !vr.IsNum {
			t.Fatalf("vruntime not numeric")
		}
		if i > 0 && vr.Raw < prev {
			t.Errorf("vruntime order violated: %d after %d", vr.Raw, prev)
		}
		prev = vr.Raw
		if st, ok := b.Member("state"); !ok || st.Value != "RUNNING" {
			t.Errorf("task %s state = %v, want RUNNING", b.ID, st.Value)
		}
		if _, ok := b.Member("comm"); !ok {
			t.Errorf("task %s missing comm", b.ID)
		}
	}
	// The number of extracted tasks must match the run queue population.
	e := expr.NewEnv(k.Target())
	kernelsim.RegisterHelpers(e)
	nr, err := expr.MustParse("cpu_rq(0)->cfs.nr_running", e.Types()).Eval(e)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(tasks)) != nr.Uint() {
		t.Errorf("extracted %d tasks, run queue says %d", len(tasks), nr.Uint())
	}
	if res.Errors != nil {
		t.Errorf("extraction errors: %v", res.Errors)
	}
	if g.Stats.Objects == 0 || g.Stats.Bytes == 0 {
		t.Errorf("stats not collected: %+v", g.Stats)
	}
}

// Views with inheritance (paper §2.2) plus where-clause links.
const viewsProgram = `
define RunQueue as Box<rq> [
    Text cpu, nr_running
    Text<u64:d> clock
]

define Task as Box<task_struct> {
    :default [
        Text pid, comm
    ]
    :default => :sched [
        Text se.vruntime
    ]
    :sched => :sched_rq [
        Link runqueue -> @rq
    ] where {
        rq = RunQueue(${cpu_rq(task_cpu(@this))})
    }
}

t = Task(${&init_task})
plot @t
`

func TestViewInheritance(t *testing.T) {
	_, in := newInterp(t)
	res, err := in.RunSource("views", viewsProgram)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	g := res.Graph
	root, ok := g.Get(g.RootID)
	if !ok {
		t.Fatalf("missing root")
	}
	if len(root.Views) != 3 {
		t.Fatalf("views = %d, want 3", len(root.Views))
	}
	def := root.Views["default"]
	if len(def.Items) != 2 {
		t.Errorf("default items = %d, want 2", len(def.Items))
	}
	sched := root.Views["sched"]
	if len(sched.Items) != 3 {
		t.Errorf("sched items = %d, want 3 (inherited + own)", len(sched.Items))
	}
	srq := root.Views["sched_rq"]
	if len(srq.Items) != 4 {
		t.Errorf("sched_rq items = %d, want 4", len(srq.Items))
	}
	link := srq.Items[3]
	if link.Kind != graph.ItemLink || link.TargetID == "" {
		t.Fatalf("sched_rq link not materialized: %+v", link)
	}
	rqBox, ok := g.Get(link.TargetID)
	if !ok || rqBox.TypeName != "rq" {
		t.Fatalf("link target is %v", link.TargetID)
	}
}

// Process-tree recursion with containers: a box whose container constructs
// more boxes of the same type (cycle-safe via memoization).
const treeProgram = `
define Task as Box<task_struct> [
    Text pid, comm
    Link parent -> Task(${@this->parent})
    Container children: List(${@this->children}).forEach |node| {
        yield Task<task_struct.sibling>(@node)
    }
]

root = Task(${&init_task})
plot @root
`

func TestProcessTreeRecursion(t *testing.T) {
	k, in := newInterp(t)
	res, err := in.RunSource("ptree", treeProgram)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	g := res.Graph
	tasks := g.ByType("task_struct")
	// All tasks that are children of someone must appear; init_task's
	// subtree covers every task we created except thread-group members
	// not linked via children... our builder links all tasks as children
	// of either init_task or systemd.
	if len(tasks) != len(k.Tasks) {
		t.Errorf("extracted %d tasks, kernel has %d", len(tasks), len(k.Tasks))
	}
	// Memoization: plotting the same task twice must not duplicate.
	seen := map[string]bool{}
	for _, b := range tasks {
		if seen[b.ID] {
			t.Fatalf("duplicate box %s", b.ID)
		}
		seen[b.ID] = true
	}
	// Reachability from the root covers everything.
	reach := g.Reachable([]string{g.RootID})
	if len(reach) != len(g.Boxes) {
		t.Errorf("reachable %d of %d boxes", len(reach), len(g.Boxes))
	}
}

// Switch-case polymorphism and inline boxes (Fig 3 mechanics).
const switchProgram = `
define VMArea as Box<vm_area_struct> [
    Text<u64:x> vm_start, vm_end
    Text<flag:vm_flags> flags: vm_flags
]

define MapleNode as Box<maple_node> [
    Container slots: @slots
] where {
    enode = ${@enode_in}
    is_leaf = ${mte_is_leaf(@enode)}
    slots = switch ${mte_node_type(@enode)} {
        case ${maple_leaf_64}:
            Array(${@this->mr64.slot}).forEach |item| {
                yield switch ${@item != 0} {
                    case ${true}: VMArea(@item)
                    otherwise: NULL
                }
            }
        case ${maple_arange_64}:
            Array(${@this->ma64.slot}).forEach |item| {
                yield switch ${xa_is_node(@item)} {
                    case ${true}: MapleNodeOf(@item)
                    otherwise: NULL
                }
            }
        otherwise: NULL
    }
}
`

func TestSwitchParse(t *testing.T) {
	// The program references MapleNodeOf which is undefined — we only
	// check that the rich switch/forEach/inline syntax parses.
	if _, err := viewcl.Parse("switch", switchProgram); err != nil {
		t.Fatalf("parse: %v", err)
	}
}

func TestDecorators(t *testing.T) {
	_, in := newInterp(t)
	res, err := in.RunSource("deco", `
define FileBox as Box<file> [
    Text name: ${@this->f_path.dentry->d_iname}
    Text<fptr> read: ${@this->f_op->read_iter}
    Text<u64:x> mapping: f_mapping
]
define Task as Box<task_struct> [
    Text pid
    Link file3 -> FileBox(${@this->files->fdt->fd[3]})
]
t = Task(${&init_task})
t1 = Task(${container_of(init_task.children.next, task_struct, sibling)})
plot @t1
`)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	g := res.Graph
	files := g.ByType("file")
	if len(files) == 0 {
		t.Fatalf("no file box (errors: %v)", res.Errors)
	}
	fb := files[0]
	rd, _ := fb.Member("read")
	if rd.Value != "generic_file_read_iter" {
		t.Errorf("fptr decorator: %q", rd.Value)
	}
	mp, _ := fb.Member("mapping")
	if !strings.HasPrefix(mp.Value, "0x") {
		t.Errorf("hex decorator: %q", mp.Value)
	}
	name, _ := fb.Member("name")
	if name.Value != "syslog" {
		t.Errorf("file name = %q, want syslog (init's fd 3)", name.Value)
	}
}
