package viewcl

import (
	"fmt"
	"time"

	"visualinux/internal/expr"
	"visualinux/internal/graph"
	"visualinux/internal/target"
)

// The compiled-engine runtime: slot-addressed frames with lazy forcing,
// a pooled per-interpreter execution state (frames, scratch expression
// environment, reusable run maps), and the run driver. The semantics —
// lazy where-bindings forced from the reference site, cycle detection,
// last-definition-wins shadowing — are the interpreter's, re-expressed over
// slots instead of maps so the steady-state round allocates (almost) nothing.

// cslot is one frame slot: either an already-forced value or the compiled
// code to produce it. A nil-code unforced slot means "not bound yet this
// run" (top-level bindings install their code as their statement executes).
type cslot struct {
	code  cexpr
	val   vval
	state slotState
}

// cframe is a runtime frame: slots laid out per its compile-time layout,
// chained to the lexically enclosing frame.
type cframe struct {
	parent *cframe
	layout *frameLayout
	slots  []cslot
}

// forceAt forces slot idx of frame tf. The binding body runs against ref —
// the frame of the *reference* site — matching the interpreter's force(),
// which evaluates a slot's expression in whatever scope looked it up.
func (r *runState) forceAt(tf *cframe, idx int, ref *cframe) (vval, error) {
	sl := &tf.slots[idx]
	switch sl.state {
	case slotDone:
		return sl.val, nil
	case slotForcing:
		return vval{}, fmt.Errorf("viewcl: circular binding @%s", tf.layout.names[idx])
	}
	sl.state = slotForcing
	v, err := sl.code(r, ref)
	if err != nil {
		sl.state = slotUnforced
		return vval{}, err
	}
	sl.val = v
	sl.state = slotDone
	return v, nil
}

// lookupDynFrame resolves name against the runtime frame chain. Backward
// slot scans give last-definition-wins shadowing; slots whose statement has
// not executed yet (no code, no value) are invisible, exactly as a map-based
// scope would not contain them.
func lookupDynFrame(f *cframe, name string) (*cframe, int, bool) {
	for cur := f; cur != nil; cur = cur.parent {
		names := cur.layout.names
		for i := len(names) - 1; i >= 0; i-- {
			if names[i] != name {
				continue
			}
			sl := &cur.slots[i]
			if sl.state == slotUnforced && sl.code == nil {
				continue
			}
			return cur, i, true
		}
	}
	return nil, 0, false
}

// evalC evaluates a pre-parsed C expression against the pooled environment,
// pointing its ${...} resolver at the current frame for the duration.
func (r *runState) evalC(ex *expr.Expr, f *cframe) (expr.Value, error) {
	saved := r.curFrame
	r.curFrame = f
	v, err := ex.Eval(&r.exec.env)
	r.curFrame = saved
	return v, err
}

// execState is the reusable per-run machinery: the embedded runState (its
// maps survive across runs and are cleared, not reallocated), the scratch
// expression environment whose resolver is built once, the recorder the memo
// path re-points each run, and the frame free list.
type execState struct {
	run  runState
	env  expr.Env
	rec  recorder
	free []*cframe
}

func newExecState() *execState {
	e := &execState{}
	e.run.memo = make(map[memoKey]string)
	// The resolver is permanent: it chases whatever frame the run currently
	// points at, so ${...} escapes see @bindings without a per-scope env.
	e.env.Resolver = func(name string) (expr.Value, bool) {
		r := &e.run
		tf, idx, ok := lookupDynFrame(r.curFrame, name)
		if !ok {
			return expr.Value{}, false
		}
		v, err := r.forceAt(tf, idx, r.curFrame)
		if err != nil {
			return expr.Value{}, false
		}
		cv, err := r.toCValue(v)
		if err != nil {
			return expr.Value{}, false
		}
		return cv, true
	}
	return e
}

// getFrame takes a frame from the free list (or makes one) and shapes it for
// layout: slots zeroed, parent chained.
func (e *execState) getFrame(layout *frameLayout, parent *cframe) *cframe {
	var f *cframe
	if n := len(e.free); n > 0 {
		f = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		f = &cframe{}
	}
	f.parent = parent
	f.layout = layout
	n := len(layout.names)
	if cap(f.slots) < n {
		f.slots = make([]cslot, n)
	} else {
		f.slots = f.slots[:n]
		for i := range f.slots {
			f.slots[i] = cslot{}
		}
	}
	return f
}

func (e *execState) putFrame(f *cframe) {
	f.parent = nil
	e.free = append(e.free, f)
}

// acquireExec hands out the interpreter's pooled execution state; a second
// concurrent Run simply gets a fresh one.
func (in *Interp) acquireExec() *execState {
	in.execMu.Lock()
	e := in.execFree
	in.execFree = nil
	in.execMu.Unlock()
	if e == nil {
		e = newExecState()
	}
	return e
}

// releaseExec drops the per-run references (graph, trace, recorder target)
// so the pooled state never pins a finished run's output, then returns the
// state to the pool.
func (in *Interp) releaseExec(e *execState) {
	r := &e.run
	r.in = nil
	r.g = nil
	r.errs = nil
	r.tr = nil
	r.rec = nil
	r.curFrame = nil
	r.viewArena, r.itemArena = nil, nil
	clear(r.memo)
	e.rec = recorder{}
	e.env.Target = nil
	in.execMu.Lock()
	if in.execFree == nil {
		in.execFree = e
	}
	in.execMu.Unlock()
}

// runCompiled drives a lowered program: install definitions, bind top-level
// slots, evaluate plots through the closure chains. Mirrors runAST statement
// for statement; Result construction is shared via finishRun.
func (in *Interp) runCompiled(cp *compiledProgram) (*Result, error) {
	e := in.acquireExec()
	defer in.releaseExec(e)

	run := &e.run
	run.in = in
	// Pre-size the graph from the program's last run: a figure's box count
	// is stable across stop events, so steady re-extraction skips the map
	// rehashing and order-slice growth of a cold build.
	run.g = graph.NewSized(cp.prog.Source, int(cp.lastBoxes.Load()))
	run.viewArena, run.itemArena = nil, nil
	run.nviews, run.nitems = 0, 0
	if n := int(cp.lastViews.Load()); n > 0 {
		run.viewArena = make([]graph.View, 0, n)
	}
	if n := int(cp.lastItems.Load()); n > 0 {
		run.itemArena = make([]graph.Item, 0, n)
	}
	clear(run.memo)
	run.errs = nil
	run.vboxN = 0
	run.frames = run.frames[:0]
	run.reused, run.built = 0, 0
	run.exec = e
	run.curFrame = nil
	if in.Memo != nil {
		e.rec = recorder{under: in.Env.Target, run: run}
		run.rec = &e.rec
		if run.pages == nil {
			run.pages = make(map[uint64]bool)
		} else {
			clear(run.pages)
		}
	} else {
		run.rec = nil
		run.pages = nil
	}
	if in.Obs != nil {
		run.tr = in.Obs.NewTrace("vplot:" + cp.prog.Source)
		if target.AttachTracer(in.Env.Target, run.tr) {
			defer target.AttachTracer(in.Env.Target, nil)
		}
	} else {
		run.tr = nil
	}
	e.env.Target = run.tgt()
	e.env.Funcs = in.Env.Funcs
	e.env.Vars = in.Env.Vars

	reads0, bytes0 := in.Env.Target.Stats().Snapshot()
	t0 := time.Now()

	top := e.getFrame(cp.topLayout, nil)
	for i := range cp.stmts {
		st := &cp.stmts[i]
		switch st.kind {
		case stmtDef:
			in.defs[st.def.name] = st.def
		case stmtBind:
			top.slots[st.bindIdx] = cslot{code: st.bindCode}
		case stmtPlot:
			sp := run.tr.StartSpan("plot:" + st.plotName)
			v, err := st.plotCode(run, top)
			if err != nil {
				return nil, fmt.Errorf("plot: %w", err)
			}
			rootID, err := run.plotRoot(v, st.plotName)
			if err != nil {
				return nil, err
			}
			if run.g.RootID == "" {
				run.g.RootID = rootID
			}
			run.g.Roots = append(run.g.Roots, rootID)
			sp.End()
		}
	}
	e.putFrame(top)
	cp.lastBoxes.Store(int64(len(run.g.Boxes)))
	cp.lastViews.Store(int64(run.nviews))
	cp.lastItems.Store(int64(run.nitems))

	return in.finishRun(run, t0, reads0, bytes0)
}

// runCompiledViews builds a compiled box instance: @this in slot 0, lazy
// where-binding slots, views evaluated through the lowered item closures.
// Error handling matches the interpreted view loop — item failures become
// "<error>" text, a run note, and a memo taint.
func (r *runState) runCompiledViews(def *boxDef, addr uint64, b *graph.Box, fr *memoFrame) {
	comp := def.comp
	f := r.exec.getFrame(comp.layout, nil)
	f.slots[0] = cslot{val: vval{kind: vC, c: expr.MakePointer(def.ctype, addr)}, state: slotDone}
	for i, bc := range comp.binds {
		f.slots[1+i] = cslot{code: bc}
	}
	// The box's shape is static, so the whole view/item layout comes from
	// the run's chunked arenas — amortized well below one allocation per
	// box. Three-index carving keeps a late append on one view from
	// scribbling over the next view's items.
	vs := r.allocViews(len(comp.views))
	items := r.allocItems(comp.nitems)
	off := 0
	for vi := range comp.views {
		cv := &comp.views[vi]
		vsp := r.tr.StartSpan("view:" + cv.name)
		gv := &vs[vi]
		gv.Name = cv.name
		n := len(cv.items)
		if n > 0 { // keep Items nil for empty views, as append would
			gv.Items = items[off : off+n : off+n]
			off += n
		}
		for ii := range cv.items {
			gi, err := cv.items[ii].eval(r, f)
			if err != nil {
				// Non-fatal: record the issue, keep the item as error text.
				// The error may be transient, so the box is not memoizable.
				r.notef(0, "%s.%s: %v", def.name, cv.items[ii].name, err)
				gi = graph.Item{Kind: graph.ItemText, Name: cv.items[ii].name, Value: "<error>"}
				fr.taint()
			}
			gv.Items[ii] = gi
		}
		b.AddView(gv)
		vsp.End()
	}
	r.exec.putFrame(f)
}
