// Package viewcl implements the View Construction Language (paper §2.2,
// §4.1): a DSL for declaring Boxes over C types, with multiple inheritable
// Views, where-clause bindings, ${...} C-expression escapes, container
// converters, switch-case polymorphism and text decorators. Evaluating a
// ViewCL program against a debug target extracts a simplified object graph
// (package graph) by applying the paper's three operators: prune (Box/View
// declarations), flatten (dot paths), distill (converter functions).
package viewcl

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tAtIdent  // @name
	tViewName // :name
	tCExpr    // ${ ... } raw C expression text
	tNumber
	tString
	tPunct
)

type token struct {
	Kind tokKind
	Text string
	Line int
}

func (t token) String() string {
	switch t.Kind {
	case tEOF:
		return "<eof>"
	case tCExpr:
		return "${" + t.Text + "}"
	case tViewName:
		return ":" + t.Text
	case tAtIdent:
		return "@" + t.Text
	default:
		return t.Text
	}
}

// Error is a positioned ViewCL error.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("viewcl:%d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

type lexer struct {
	src  string
	pos  int
	line int
}

var vclPunct = []string{"=>", "->", "{", "}", "[", "]", "(", ")", "<", ">", ",", ":", "=", "|", "."}

func lexAll(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	var toks []token
	for {
		l.skip()
		if l.pos >= len(l.src) {
			toks = append(toks, token{Kind: tEOF, Line: l.line})
			return toks, nil
		}
		start := l.line
		c := l.src[l.pos]
		switch {
		case c == '$' && l.peekAt(1) == '{':
			body, err := l.cexpr()
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{Kind: tCExpr, Text: body, Line: start})
		case c == '@':
			l.pos++
			id := l.ident()
			if id == "" {
				return nil, errf(l.line, "bare '@'")
			}
			toks = append(toks, token{Kind: tAtIdent, Text: id, Line: start})
		case c == ':' && l.pos+1 < len(l.src) && isIdentStart(rune(l.src[l.pos+1])):
			// A view name like :default — but only when it follows a
			// context where ':' can't be the key-value separator. The
			// parser disambiguates; here we lex ':' + ident as tViewName
			// only if preceded by '{', '}', ']' or => at line start. To
			// keep the lexer simple we always emit tViewName and let the
			// parser re-interpret it as (':' ident) when needed.
			l.pos++
			id := l.ident()
			toks = append(toks, token{Kind: tViewName, Text: id, Line: start})
		case isIdentStart(rune(c)):
			toks = append(toks, token{Kind: tIdent, Text: l.ident(), Line: start})
		case c >= '0' && c <= '9':
			toks = append(toks, token{Kind: tNumber, Text: l.number(), Line: start})
		case c == '"':
			s, err := l.stringLit()
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{Kind: tString, Text: s, Line: start})
		default:
			op := l.punct()
			if op == "" {
				return nil, errf(l.line, "unexpected character %q", c)
			}
			toks = append(toks, token{Kind: tPunct, Text: op, Line: start})
		}
	}
}

func (l *lexer) peekAt(d int) byte {
	if l.pos+d < len(l.src) {
		return l.src[l.pos+d]
	}
	return 0
}

func (l *lexer) skip() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.peekAt(1) == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.peekAt(1) == '*':
			l.pos += 2
			for l.pos < len(l.src) && !(l.src[l.pos] == '*' && l.peekAt(1) == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			l.pos += 2
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentCont(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) ident() string {
	start := l.pos
	for l.pos < len(l.src) && isIdentCont(rune(l.src[l.pos])) {
		l.pos++
	}
	return l.src[start:l.pos]
}

func (l *lexer) number() string {
	start := l.pos
	if strings.HasPrefix(l.src[l.pos:], "0x") || strings.HasPrefix(l.src[l.pos:], "0X") {
		l.pos += 2
	}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F' {
			l.pos++
			continue
		}
		break
	}
	return l.src[start:l.pos]
}

func (l *lexer) stringLit() (string, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			return b.String(), nil
		}
		if c == '\n' {
			return "", errf(l.line, "newline in string literal")
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			c = l.src[l.pos]
		}
		b.WriteByte(c)
		l.pos++
	}
	return "", errf(l.line, "unterminated string")
}

// cexpr lexes a ${ ... } escape, balancing braces so C compound literals
// survive; braces inside C string and char literals are ignored.
func (l *lexer) cexpr() (string, error) {
	l.pos += 2 // consume "${"
	depth := 1
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"', '\'':
			quote := c
			l.pos++
			for l.pos < len(l.src) && l.src[l.pos] != quote {
				if l.src[l.pos] == '\\' {
					l.pos++
				}
				if l.pos < len(l.src) && l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				body := l.src[start:l.pos]
				l.pos++
				return strings.TrimSpace(body), nil
			}
		case '\n':
			l.line++
		}
		l.pos++
	}
	return "", errf(l.line, "unterminated ${...}")
}

func (l *lexer) punct() string {
	rest := l.src[l.pos:]
	for _, op := range vclPunct {
		if strings.HasPrefix(rest, op) {
			l.pos += len(op)
			return op
		}
	}
	return ""
}
