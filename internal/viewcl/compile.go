package viewcl

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"visualinux/internal/ctypes"
	"visualinux/internal/expr"
	"visualinux/internal/graph"
)

// The ViewCL compiler. Programs are lowered once into chains of closures
// (`cexpr` / `citem`) over slot-addressed frames, so the steady-state path
// never touches the AST again: variable references resolve to (depth, slot)
// pairs computed here, ${...} escapes are parsed exactly once, construct
// anchors and container element hints are resolved to offsets at lowering
// time, and `Text path` items collapse to a precomputed (offset, field) load
// whenever the path stays inside the defining struct. The tree-walking
// evaluator in interp.go remains byte-for-byte intact behind Interp.Interpret
// as the differential oracle; both engines share the same runState,
// materialize/memo machinery, item builders and container iterators, so
// their outputs — including span names and error conditions — stay
// identical.

// cexpr is one compiled ViewCL expression: evaluated against the run and the
// current frame.
type cexpr func(r *runState, f *cframe) (vval, error)

// citem is one compiled view item.
type citem struct {
	name string
	eval func(r *runState, f *cframe) (graph.Item, error)
}

// frameLayout is the compile-time shape of one lexical frame: slot names in
// definition order. Lookups scan backwards so a redefined name shadows the
// earlier slot, matching the interpreter's map-overwrite semantics.
type frameLayout struct {
	names []string
}

// compiledDef is the executable form of a box definition's views: slot 0 of
// the instance frame is @this, followed by one lazy slot per where-binding.
type compiledDef struct {
	layout *frameLayout
	binds  []cexpr // where-binding bodies, index-aligned with layout slot 1+
	views  []compiledView
	nitems int // total items across views — sizes the per-box item slab
}

type compiledView struct {
	name  string
	items []citem
}

// cForEach is a compiled |v| { bindings; yield } closure: the element frame
// holds [var, var_index, bindings...].
type cForEach struct {
	layout *frameLayout
	binds  []cexpr
	yield  cexpr
}

const (
	stmtDef = iota
	stmtBind
	stmtPlot
)

type cstmt struct {
	kind     int
	def      *boxDef // stmtDef: definition to (re)install
	bindIdx  int     // stmtBind: top-frame slot
	bindCode cexpr
	plotName string // stmtPlot
	plotCode cexpr
}

// compiledProgram is a fully lowered program, cached per interpreter.
type compiledProgram struct {
	prog      *Program
	topLayout *frameLayout
	stmts     []cstmt

	// lastBoxes/lastViews/lastItems remember the previous run's output
	// sizes so the next run pre-sizes its graph and output arenas exactly.
	// Atomic: concurrent runs may share the program.
	lastBoxes atomic.Int64
	lastViews atomic.Int64
	lastItems atomic.Int64
}

// compileProgram resolves prog's lowered form: a per-interpreter map gives
// the lock-cheap steady-state hit, and misses go through the process-wide
// shared cache (cache.go) so N sessions running the same figure lower it
// once. The per-interpreter map also pins entries the shared LRU may have
// evicted, bounding re-lowering to at most once per interpreter lifetime.
func (in *Interp) compileProgram(prog *Program) (*compiledProgram, error) {
	in.compMu.Lock()
	if cp, ok := in.compiled[prog]; ok {
		in.compMu.Unlock()
		return cp, nil
	}
	in.compMu.Unlock()
	cp, err := sharedCompiles.get(in, prog)
	if err != nil {
		return nil, err
	}
	in.compMu.Lock()
	if in.compiled == nil {
		in.compiled = make(map[*Program]*compiledProgram)
	}
	in.compiled[prog] = cp
	in.compMu.Unlock()
	return cp, nil
}

func (in *Interp) lower(prog *Program) (*compiledProgram, error) {
	c := &compiler{in: in, local: make(map[string]*boxDef)}
	cp := &compiledProgram{prog: prog, topLayout: &frameLayout{}}

	// Phase 1: resolve every definition so constructs and element hints can
	// bind statically regardless of declaration order within the program.
	byStmt := make(map[*DefineStmt]*boxDef)
	for _, s := range prog.Stmts {
		if d, ok := s.(*DefineStmt); ok {
			def, err := in.buildDef(d)
			if err != nil {
				return nil, err
			}
			byStmt[d] = def
			c.local[def.name] = def
		}
	}
	// Phase 2: lower definition bodies (views, where-bindings, items).
	for _, s := range prog.Stmts {
		if d, ok := s.(*DefineStmt); ok {
			c.compileDefBody(byStmt[d])
		}
	}
	// Phase 3: top-level statements, in program order. The top frame's
	// layout grows as bindings appear, so a plot compiled here only sees the
	// names bound before it — mirroring the interpreter's statement loop.
	c.stack = []*frameLayout{cp.topLayout}
	for _, s := range prog.Stmts {
		switch st := s.(type) {
		case *DefineStmt:
			cp.stmts = append(cp.stmts, cstmt{kind: stmtDef, def: byStmt[st]})
		case *BindStmt:
			idx := len(cp.topLayout.names)
			cp.topLayout.names = append(cp.topLayout.names, st.Name)
			cp.stmts = append(cp.stmts,
				cstmt{kind: stmtBind, bindIdx: idx, bindCode: c.lazyExpr(st.Expr)})
		case *PlotStmt:
			cp.stmts = append(cp.stmts,
				cstmt{kind: stmtPlot, plotName: plotName(st.Expr), plotCode: c.expr(st.Expr)})
		}
	}
	return cp, nil
}

// --- compiler ----------------------------------------------------------------

type compiler struct {
	in    *Interp
	local map[string]*boxDef // definitions of the program being lowered
	stack []*frameLayout     // lexical frame chain, innermost last
	// lazy > 0 while lowering a binding body. Binding bodies are forced from
	// the *referencing* scope (which may shadow names the defining scope
	// sees), so their variable references must resolve dynamically at force
	// time, exactly as the interpreter's force() does.
	lazy  int
	ulong *ctypes.Type
	// curThis is the definition whose instance frame carries @this in slot 0
	// while its views are being lowered (nil when @this is shadowed by a
	// where-binding, or outside a definition body). It anchors the static
	// member-chain fast path for ${@this->...} escapes.
	curThis *boxDef
}

func (c *compiler) ulongType() *ctypes.Type {
	if c.ulong == nil {
		c.ulong = c.in.Env.Types().MustLookup("unsigned long")
	}
	return c.ulong
}

// resolve finds name in the compile-time lexical chain as a (depth, slot)
// pair. Backward scans implement shadowing by redefinition.
func (c *compiler) resolve(name string) (depth, idx int, ok bool) {
	for d := len(c.stack) - 1; d >= 0; d-- {
		l := c.stack[d]
		for i := len(l.names) - 1; i >= 0; i-- {
			if l.names[i] == name {
				return len(c.stack) - 1 - d, i, true
			}
		}
	}
	return 0, 0, false
}

func constExpr(v vval) cexpr {
	return func(*runState, *cframe) (vval, error) { return v, nil }
}

func errExpr(err error) cexpr {
	return func(*runState, *cframe) (vval, error) { return vval{}, err }
}

func (c *compiler) lazyExpr(e VExpr) cexpr {
	c.lazy++
	code := c.expr(e)
	c.lazy--
	return code
}

func (c *compiler) expr(e VExpr) cexpr {
	switch n := e.(type) {
	case *NullNode:
		return constExpr(vval{kind: vNull})
	case *NumberNode:
		return constExpr(vval{kind: vC, c: expr.MakeInt(c.ulongType(), n.V)})
	case *StringNode:
		return constExpr(vval{kind: vC, c: expr.MakeString(n.S)})
	case *VarRef:
		return c.varRef(n)
	case *CExprNode:
		return c.cExpr(n)
	case *SwitchNode:
		return c.switchExpr(n)
	case *ConstructNode:
		return c.construct(n)
	case *ContainerNode:
		return c.container(n)
	case *SelectFromNode:
		return c.selectFrom(n)
	case *InlineBoxNode:
		return c.inlineBox(n)
	}
	return errExpr(fmt.Errorf("viewcl: unhandled expression %T", e))
}

func (c *compiler) varRef(n *VarRef) cexpr {
	if c.lazy == 0 {
		depth, idx, ok := c.resolve(n.Name)
		if !ok {
			return errExpr(errf(n.Line, "unbound variable @%s", n.Name))
		}
		return func(r *runState, f *cframe) (vval, error) {
			tf := f
			for d := 0; d < depth; d++ {
				tf = tf.parent
			}
			return r.forceAt(tf, idx, f)
		}
	}
	name, line := n.Name, n.Line
	return func(r *runState, f *cframe) (vval, error) {
		tf, idx, ok := lookupDynFrame(f, name)
		if !ok {
			return vval{}, errf(line, "unbound variable @%s", name)
		}
		return r.forceAt(tf, idx, f)
	}
}

func (c *compiler) cExpr(n *CExprNode) cexpr {
	if code, ok := c.chainCExpr(n); ok {
		return code
	}
	ex, err := expr.Parse(n.Src, c.in.Env.Types())
	if err != nil {
		// The interpreter surfaces parse errors at evaluation time; defer.
		return errExpr(errf(n.Line, "%v", err))
	}
	// Literal escapes — ${true}, ${0}, ${"s"} — evaluate identically in every
	// environment; fold them to a constant instead of walking the AST per box.
	if v, isConst := ex.ConstValue(c.in.Env.Types()); isConst {
		return constExpr(vval{kind: vC, c: v})
	}
	line := n.Line
	return func(r *runState, f *cframe) (vval, error) {
		v, err := r.evalC(ex, f)
		if err != nil {
			return vval{}, errf(line, "%v", err)
		}
		return vval{kind: vC, c: v}, nil
	}
}

// chainCExpr lowers a ${...} escape that is a plain "@this->..." member
// chain inside a definition body — the dominant shape of Link targets,
// construct arguments, and switch scrutinees — into a static hop chain.
// @this must resolve to slot 0 of the instance frame at a compile-time
// depth (the same premise the slot-addressed VarRef lowering rests on);
// lazy binding bodies resolve dynamically and are excluded, as is any
// chain the resolver cannot prove identical to the interpreter's walk.
// Error text carries the same source wrap and line tag as the generic
// route, so failures stay byte-identical.
func (c *compiler) chainCExpr(n *CExprNode) (cexpr, bool) {
	if c.curThis == nil || c.lazy != 0 {
		return nil, false
	}
	body, addrOf := strings.CutPrefix(n.Src, "&")
	rest, hasThis := strings.CutPrefix(body, "@this->")
	if !hasThis {
		return nil, false
	}
	depth, idx, ok := c.resolve("this")
	if !ok || idx != 0 || depth != len(c.stack)-1 {
		return nil, false
	}
	steps, firstSeg, ok := resolvePathChain(c.curThis.ctype, rest)
	if !ok {
		return nil, false
	}
	last := &steps[len(steps)-1]
	if addrOf && last.field.IsBitfield() {
		// '&' on a bitfield is the generic route's "'&' on non-lvalue" error.
		return nil, false
	}
	src, line := n.Src, n.Line
	return func(r *runState, f *cframe) (vval, error) {
		tf := f
		for d := 0; d < depth; d++ {
			tf = tf.parent
		}
		addr := tf.slots[0].val.c.Bits // @this pointer, pre-forced in slot 0
		if addr == 0 {
			return vval{}, errf(line, "expr: NULL dereference accessing %q (in %q)", firstSeg, src)
		}
		env := &r.exec.env
		var cv expr.Value
		for si := range steps {
			st := &steps[si]
			if addrOf && st.next == nil {
				// Final hop under '&': no load — the member lvalue's address
				// becomes a pointer rvalue, exactly as unaryNode does.
				cv = expr.MakePointer(st.field.Type, addr+st.off+st.field.Offset)
				break
			}
			var err error
			cv, err = env.LoadField(expr.MakeLValue(st.parent, addr+st.off), st.field)
			if err == nil {
				// Load fetches the scalar: the final rvalue on the last
				// step, the pointer word on a crossing.
				cv, err = env.Load(cv)
			}
			if err != nil {
				return vval{}, errf(line, "%v (in %q)", err, src)
			}
			if st.next != nil {
				if cv.Bits == 0 {
					return vval{}, errf(line, "expr: NULL dereference accessing %q (in %q)", st.name, src)
				}
				addr = cv.Bits
			}
		}
		return vval{kind: vC, c: cv}, nil
	}, true
}

func (c *compiler) switchExpr(n *SwitchNode) cexpr {
	type ccase struct {
		vals   []cexpr
		result cexpr
	}
	scrut := c.expr(n.Scrutinee)
	cases := make([]ccase, len(n.Cases))
	for i, cs := range n.Cases {
		for _, cv := range cs.Values {
			cases[i].vals = append(cases[i].vals, c.expr(cv))
		}
		cases[i].result = c.expr(cs.Result)
	}
	var other cexpr
	if n.Otherwise != nil {
		other = c.expr(n.Otherwise)
	}
	line := n.Line
	return func(r *runState, f *cframe) (vval, error) {
		scv, err := scrut(r, f)
		if err != nil {
			return vval{}, err
		}
		sv, err := r.toCValue(scv)
		if err != nil {
			return vval{}, errf(line, "switch scrutinee: %v", err)
		}
		for i := range cases {
			for _, vc := range cases[i].vals {
				v, err := vc(r, f)
				if err != nil {
					return vval{}, err
				}
				cvv, err := r.toCValue(v)
				if err != nil {
					return vval{}, err
				}
				if cMatch(sv, cvv) {
					return cases[i].result(r, f)
				}
			}
		}
		if other != nil {
			return other(r, f)
		}
		return vval{kind: vNull}, nil
	}
}

func (c *compiler) construct(n *ConstructNode) cexpr {
	arg := c.expr(n.Arg)
	// Same-program definitions bind statically (the run installs exactly
	// these defs before any plot executes); external names stay dynamic so a
	// later redefinition behaves as the interpreter would.
	staticDef := c.local[n.BoxType]
	var anchorOff uint64
	var anchorErr error
	if n.Anchor != "" {
		anchorOff, anchorErr = c.resolveAnchor(n.Anchor, n.Line)
	}
	boxType, line, hasAnchor := n.BoxType, n.Line, n.Anchor != ""
	return func(r *runState, f *cframe) (vval, error) {
		def := staticDef
		if def == nil {
			var ok bool
			def, ok = r.in.defs[boxType]
			if !ok {
				return vval{}, errf(line, "unknown Box type %q", boxType)
			}
		}
		av, err := arg(r, f)
		if err != nil {
			return vval{}, err
		}
		if av.isNull() {
			return vval{kind: vNull}, nil
		}
		if av.kind == vBox {
			return av, nil // already materialized
		}
		cv, err := r.toCValue(av)
		if err != nil {
			return vval{}, errf(line, "%s(...): %v", boxType, err)
		}
		// Pointer lvalues (container slots, array elements) designate the
		// pointer cell; the box lives at the pointed-to object.
		if cv.HasAddr && cv.Type.IsPointer() {
			cv, err = r.exec.env.Load(cv)
			if err != nil {
				return vval{}, errf(line, "%s(...): %v", boxType, err)
			}
		}
		addr, ok := addrOf(cv)
		if !ok {
			return vval{kind: vNull}, nil
		}
		if hasAnchor {
			if anchorErr != nil {
				return vval{}, anchorErr
			}
			addr -= anchorOff
		}
		id, err := r.materialize(def, addr)
		if err != nil {
			return vval{}, err
		}
		return vval{kind: vBox, boxID: id}, nil
	}
}

// resolveAnchor resolves a "type.member" container_of anchor to its offset at
// lowering time. Failures carry the interpreter's evaluation-time wording and
// are surfaced only if the construct actually executes.
func (c *compiler) resolveAnchor(anchor string, line int) (uint64, error) {
	dot := indexByte(anchor, '.')
	if dot < 0 {
		return 0, errf(line, "anchor %q must be type.member", anchor)
	}
	at, ok := c.in.Env.Types().Lookup(anchor[:dot])
	if !ok {
		return 0, errf(line, "anchor: unknown type %q", anchor[:dot])
	}
	f, err := at.ResolvePath(anchor[dot+1:])
	if err != nil {
		return 0, errf(line, "anchor: %v", err)
	}
	return f.Offset, nil
}

func (c *compiler) container(n *ContainerNode) cexpr {
	kind, line := n.Kind, n.Line
	if len(n.Args) == 0 {
		cerr := errf(line, "%s(...) wants an argument", kind)
		return func(r *runState, f *cframe) (vval, error) {
			// The interpreter opens the container span before noticing the
			// missing argument; keep the trace shape identical.
			sp := r.tr.StartSpan("container:" + kind)
			sp.End()
			return vval{}, cerr
		}
	}
	args := make([]cexpr, len(n.Args))
	for i, a := range n.Args {
		args[i] = c.expr(a)
	}
	hint := c.staticHint(n)
	var fe *cForEach
	if n.ForEach != nil {
		fe = c.forEach(n.ForEach)
	}
	ulong := c.ulongType()
	return func(r *runState, f *cframe) (vval, error) {
		sp := r.tr.StartSpan("container:" + kind)
		defer sp.End()
		argv := make([]expr.Value, len(args))
		for i, ac := range args {
			v, err := ac(r, f)
			if err != nil {
				return vval{}, err
			}
			cv, err := r.toCValue(v)
			if err != nil {
				return vval{}, errf(line, "%s arg %d: %v", kind, i, err)
			}
			argv[i] = cv
		}
		h := hint
		if !r.in.PrefetchHints {
			h = elemHint{}
		}
		elems, err := r.iterateKind(kind, argv, line, h)
		if err != nil {
			return vval{}, err
		}
		sp.TagUint("elems", uint64(len(elems)))
		r.batchPrefetch(h, elems)
		var ids []string
		if len(elems) > 0 {
			// Preallocate for the common one-box-per-element shape; vCont
			// splicing can still grow past the hint.
			ids = make([]string, 0, len(elems))
		}
		for i, el := range elems {
			isp := r.tr.StartSpan("iter")
			isp.TagUint("index", uint64(i))
			var v vval
			if fe != nil {
				fr := r.exec.getFrame(fe.layout, f)
				fr.slots[0] = cslot{val: vval{kind: vC, c: el}, state: slotDone}
				fr.slots[1] = cslot{val: vval{kind: vC, c: expr.MakeInt(ulong, uint64(i))}, state: slotDone}
				for bi, bc := range fe.binds {
					fr.slots[2+bi] = cslot{code: bc}
				}
				v, err = fe.yield(r, fr)
				r.exec.putFrame(fr)
				if err != nil {
					isp.End()
					return vval{}, err
				}
			} else {
				// Raw elements become value cells so Container items can
				// show scalar arrays without a closure.
				v, err = r.cellBox(el, i, &r.exec.env)
				if err != nil {
					isp.End()
					return vval{}, err
				}
			}
			switch v.kind {
			case vBox:
				ids = append(ids, v.boxID)
			case vNull:
				ids = append(ids, "")
			case vCont:
				ids = append(ids, v.elems...)
			case vC:
				cb, err := r.cellBox(v.c, i, &r.exec.env)
				if err != nil {
					isp.End()
					return vval{}, err
				}
				ids = append(ids, cb.boxID)
			}
			isp.End()
		}
		return vval{kind: vCont, elems: ids}, nil
	}
}

func (c *compiler) forEach(fe *ForEachClause) *cForEach {
	layout := &frameLayout{names: make([]string, 0, 2+len(fe.Body))}
	layout.names = append(layout.names, fe.Var, fe.Var+"_index")
	for i := range fe.Body {
		layout.names = append(layout.names, fe.Body[i].Name)
	}
	cf := &cForEach{layout: layout}
	c.stack = append(c.stack, layout)
	for i := range fe.Body {
		cf.binds = append(cf.binds, c.lazyExpr(fe.Body[i].Expr))
	}
	cf.yield = c.expr(fe.Yield)
	c.stack = c.stack[:len(c.stack)-1]
	return cf
}

// staticHint is containerHint computed at lowering time: the PrefetchHints
// toggle is re-checked per run, but the yield-shape analysis and offset
// resolution happen once here.
func (c *compiler) staticHint(n *ContainerNode) elemHint {
	if n.ForEach == nil {
		return elemHint{}
	}
	yield, ok := n.ForEach.Yield.(*ConstructNode)
	if !ok {
		return elemHint{}
	}
	arg, ok := yield.Arg.(*VarRef)
	if !ok || arg.Name != n.ForEach.Var {
		return elemHint{}
	}
	def := c.local[yield.BoxType]
	if def == nil {
		def = c.in.defs[yield.BoxType]
	}
	if def == nil || def.ctype == nil || def.ctype.Size() == 0 {
		return elemHint{}
	}
	h := elemHint{size: def.ctype.Size(), on: true}
	if yield.Anchor != "" {
		dot := strings.IndexByte(yield.Anchor, '.')
		if dot < 0 {
			return elemHint{}
		}
		at, ok := c.in.Env.Types().Lookup(yield.Anchor[:dot])
		if !ok {
			return elemHint{}
		}
		f, err := at.ResolvePath(yield.Anchor[dot+1:])
		if err != nil {
			return elemHint{}
		}
		h.off = f.Offset
		h.size = at.Size()
	}
	return h
}

func (c *compiler) selectFrom(n *SelectFromNode) cexpr {
	src := c.expr(n.Container)
	boxType, line := n.BoxType, n.Line
	return func(r *runState, f *cframe) (vval, error) {
		v, err := src(r, f)
		if err != nil {
			return vval{}, err
		}
		return r.selectFromVal(v, boxType, line)
	}
}

func (c *compiler) inlineBox(n *InlineBoxNode) cexpr {
	layout := &frameLayout{}
	for i := range n.Where {
		layout.names = append(layout.names, n.Where[i].Name)
	}
	c.stack = append(c.stack, layout)
	binds := make([]cexpr, len(n.Where))
	for i := range n.Where {
		binds[i] = c.lazyExpr(n.Where[i].Expr)
	}
	items := make([]citem, len(n.Items))
	for i, it := range n.Items {
		items[i] = c.item(it, nil)
	}
	c.stack = c.stack[:len(c.stack)-1]
	line := n.Line
	return func(r *runState, f *cframe) (vval, error) {
		if len(r.g.Boxes) >= r.in.MaxObjects {
			return vval{}, fmt.Errorf("viewcl: object budget exceeded")
		}
		id := "box#" + strconv.Itoa(r.nextVboxN())
		b := r.g.NewBoxIn(id, "Box", "", 0)
		r.g.Add(b)
		fr := r.exec.getFrame(layout, f)
		for i, bc := range binds {
			fr.slots[i] = cslot{code: bc}
		}
		vs := r.allocViews(1)
		gv := &vs[0]
		gv.Name = "default"
		if len(items) > 0 { // keep Items nil for empty boxes, as append would
			gv.Items = r.allocItems(len(items))
		}
		for i := range items {
			gi, err := items[i].eval(r, fr)
			if err != nil {
				r.notef(line, "inline box %s: %v", items[i].name, err)
				gi = graph.Item{Kind: graph.ItemText, Name: items[i].name, Value: "<error>"}
			}
			gv.Items[i] = gi
		}
		r.exec.putFrame(fr)
		b.AddView(gv)
		return vval{kind: vBox, boxID: id}, nil
	}
}

// compileDefBody lowers a definition's where-bindings and views. Instance
// frames are roots (the interpreter's instance scope has no parent), so the
// lexical chain here is just the instance layout.
func (c *compiler) compileDefBody(def *boxDef) {
	layout := &frameLayout{names: make([]string, 0, 1+len(def.where))}
	layout.names = append(layout.names, "this")
	fastThis := def
	for i := range def.where {
		layout.names = append(layout.names, def.where[i].Name)
		if def.where[i].Name == "this" {
			// A where-binding shadowing @this defeats the slot-0 fast path.
			fastThis = nil
		}
	}
	comp := &compiledDef{layout: layout}
	saved := c.stack
	c.stack = []*frameLayout{layout}
	for i := range def.where {
		comp.binds = append(comp.binds, c.lazyExpr(def.where[i].Expr))
	}
	c.curThis = fastThis
	for _, rv := range def.views {
		cv := compiledView{name: rv.name}
		for _, item := range rv.items {
			cv.items = append(cv.items, c.item(item, fastThis))
		}
		comp.views = append(comp.views, cv)
		comp.nitems += len(cv.items)
	}
	c.curThis = nil
	c.stack = saved
	def.comp = comp
}

// item lowers one view item. def is non-nil only when lowering a definition
// view whose frame is known to carry @this in slot 0 (enables the Text-path
// fast path); inline-box items pass nil and resolve @this dynamically.
func (c *compiler) item(it ItemDecl, def *boxDef) citem {
	switch x := it.(type) {
	case *TextItem:
		return c.textItem(x, def)
	case *LinkItem:
		code := c.expr(x.Target)
		name := x.Name
		return citem{name: name, eval: func(r *runState, f *cframe) (graph.Item, error) {
			v, err := code(r, f)
			if err != nil {
				return graph.Item{}, err
			}
			return r.linkItem(name, v)
		}}
	case *ContainerItem:
		code := c.expr(x.Expr)
		name := x.Name
		return citem{name: name, eval: func(r *runState, f *cframe) (graph.Item, error) {
			v, err := code(r, f)
			if err != nil {
				return graph.Item{}, err
			}
			return r.containerItem(name, v)
		}}
	case *BoxItem:
		code := c.expr(x.Expr)
		name := x.Name
		return citem{name: name, eval: func(r *runState, f *cframe) (graph.Item, error) {
			v, err := code(r, f)
			if err != nil {
				return graph.Item{}, err
			}
			return r.boxItem(name, v), nil
		}}
	}
	err := fmt.Errorf("unhandled item %T", it)
	return citem{name: itemName(it), eval: func(*runState, *cframe) (graph.Item, error) {
		return graph.Item{}, err
	}}
}

func (c *compiler) textItem(x *TextItem, def *boxDef) citem {
	name, fmtD := x.Name, x.Fmt
	if x.Expr != nil {
		// ${...} and colon-path Text values that are plain "@this->..."
		// member chains compile to static hop chains: the resolver, AST
		// dispatch, and per-hop member lookup all happen here, at lowering
		// time. The interpreter wraps CExprNode failures in a line-tagged
		// error, so the chain must too (lineWrap).
		if def != nil {
			if cn, isC := x.Expr.(*CExprNode); isC {
				if rest, hasThis := strings.CutPrefix(cn.Src, "@this->"); hasThis {
					if steps, firstSeg, ok := resolvePathChain(def.ctype, rest); ok {
						return c.chainItem(name, fmtD, steps, firstSeg, cn.Src, cn.Line, true)
					}
				}
			}
		}
		code := c.expr(x.Expr)
		return citem{name: name, eval: func(r *runState, f *cframe) (graph.Item, error) {
			v, err := code(r, f)
			if err != nil {
				return graph.Item{}, err
			}
			cv, err := r.toCValue(v)
			if err != nil {
				return graph.Item{}, err
			}
			return r.textItem(name, fmtD, cv, &r.exec.env), nil
		}}
	}
	src := "@this->" + x.Path
	if def != nil {
		// Bare-path failures carry only the expression-source wrap, exactly
		// as Expr.Eval reports them on the interpreted path.
		if steps, firstSeg, ok := resolvePathChain(def.ctype, x.Path); ok {
			return c.chainItem(name, fmtD, steps, firstSeg, src, 0, false)
		}
	}
	// Generic path: parse "@this->path" once here (the interpreter parses it
	// per box per run); @this resolves through the frame resolver, so
	// inline-box items see the enclosing instance exactly as before.
	ex, perr := expr.Parse(src, c.in.Env.Types())
	if perr != nil {
		return citem{name: name, eval: func(*runState, *cframe) (graph.Item, error) {
			return graph.Item{}, perr
		}}
	}
	return citem{name: name, eval: func(r *runState, f *cframe) (graph.Item, error) {
		cv, err := r.evalC(ex, f)
		if err != nil {
			return graph.Item{}, err
		}
		return r.textItem(name, fmtD, cv, &r.exec.env), nil
	}}
}

// chainItem lowers a statically-resolved Text member chain into a closure
// that walks raw (parent type, offset) hops — no resolver, no AST, no member
// lookup at runtime. Error text matches the generic path byte for byte:
// per-hop NULL checks name the segment being accessed, every failure is
// wrapped with the expression source, and lineWrap adds the CExprNode
// line-tagged layer the interpreter applies on that route.
func (c *compiler) chainItem(name string, fmtD *Format, steps []pathStep, firstSeg, src string, line int, lineWrap bool) citem {
	fail := func(err error) error {
		if lineWrap {
			return errf(line, "%v", err)
		}
		return err
	}
	return citem{name: name, eval: func(r *runState, f *cframe) (graph.Item, error) {
		addr := f.slots[0].val.c.Bits // @this pointer, slot 0
		if addr == 0 {
			return graph.Item{}, fail(fmt.Errorf("expr: NULL dereference accessing %q (in %q)", firstSeg, src))
		}
		env := &r.exec.env
		var cv expr.Value
		for si := range steps {
			st := &steps[si]
			var err error
			cv, err = env.LoadField(expr.MakeLValue(st.parent, addr+st.off), st.field)
			if err == nil {
				// Load fetches the scalar: the final rvalue on the last
				// step, the pointer word on a crossing.
				cv, err = env.Load(cv)
			}
			if err != nil {
				return graph.Item{}, fail(fmt.Errorf("%v (in %q)", err, src))
			}
			if st.next != nil {
				if cv.Bits == 0 {
					return graph.Item{}, fail(fmt.Errorf("expr: NULL dereference accessing %q (in %q)", st.name, src))
				}
				addr = cv.Bits
			}
		}
		return r.textItem(name, fmtD, cv, env), nil
	}}
}

// pathStep is one compiled hop of a Text member chain: load field (found in
// the aggregate of type parent at object base + off). A step with next != nil
// crosses a pointer — the loaded word is NULL-checked and becomes the base
// address of the next step, anchored at the pointee type next.
type pathStep struct {
	parent *ctypes.Type
	off    uint64
	field  ctypes.Field
	next   *ctypes.Type // pointee aggregate when this step crosses a pointer
	name   string       // following segment, for the NULL-dereference message
}

// splitPathSegs tokenizes a member chain like "mm->pgd" or "sem_perm.id"
// into segments. arrows[i] records whether segment i is reached via '->';
// arrows[0] stands for the implicit "@this->" hop. Anything that is not a
// plain ident chain (indexing, casts, whitespace) fails the split and falls
// back to the generic expression path.
func splitPathSegs(path string) (segs []string, arrows []bool, ok bool) {
	arrows = append(arrows, true) // the "@this->" hop
	rest := path
	for {
		end := 0
		for end < len(rest) && rest[end] != '.' && rest[end] != '-' {
			end++
		}
		seg := rest[:end]
		if !isIdentName(seg) {
			return nil, nil, false
		}
		segs = append(segs, seg)
		if end == len(rest) {
			return segs, arrows, true
		}
		switch {
		case rest[end] == '.':
			arrows = append(arrows, false)
			rest = rest[end+1:]
		case strings.HasPrefix(rest[end:], "->"):
			arrows = append(arrows, true)
			rest = rest[end+2:]
		default:
			return nil, nil, false
		}
	}
}

// resolvePathChain statically resolves a member chain against ct, mirroring
// memberNode semantics hop for hop: '.' between non-pointer aggregates folds
// into a compile-time offset, while a pointer field — whether written '->'
// or auto-dereferenced '.' — becomes a crossing step. Any hop that cannot be
// proven to behave identically at runtime (unknown member, bitfield
// intermediate, '->' through a non-pointer, pointee without members) refuses,
// and the caller falls back to the generic expression path, which reproduces
// the interpreter's behavior — including its error messages — exactly. The
// final field may be a bitfield or pointer; LoadField and Load handle both.
func resolvePathChain(ct *ctypes.Type, path string) (steps []pathStep, firstSeg string, ok bool) {
	if ct == nil {
		return nil, "", false
	}
	segs, arrows, ok := splitPathSegs(path)
	if !ok {
		return nil, "", false
	}
	cur := ct
	var off uint64
	for i, seg := range segs {
		st := cur.Strip()
		if st == nil || (st.Kind != ctypes.KindStruct && st.Kind != ctypes.KindUnion) {
			return nil, "", false
		}
		f, found := cur.FieldByName(seg)
		if !found {
			return nil, "", false
		}
		if i == len(segs)-1 {
			steps = append(steps, pathStep{parent: cur, off: off, field: f})
			return steps, segs[0], true
		}
		if f.IsBitfield() {
			return nil, "", false
		}
		ft := f.Type.Strip()
		switch {
		case ft != nil && ft.Kind == ctypes.KindPointer:
			// The next access dereferences no matter how it is written:
			// memberNode auto-dereferences pointer bases even for '.'.
			elem := ft.Elem
			es := elem.Strip()
			if es == nil || (es.Kind != ctypes.KindStruct && es.Kind != ctypes.KindUnion) {
				return nil, "", false
			}
			steps = append(steps, pathStep{parent: cur, off: off, field: f, next: elem, name: segs[i+1]})
			cur, off = elem, 0
		case !arrows[i+1] && ft != nil && (ft.Kind == ctypes.KindStruct || ft.Kind == ctypes.KindUnion):
			off += f.Offset
			cur = f.Type
		default:
			return nil, "", false
		}
	}
	return nil, "", false
}

func isIdentName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		b := s[i]
		ok := b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (i > 0 && b >= '0' && b <= '9')
		if !ok {
			return false
		}
	}
	return true
}
