package viewcl_test

import (
	"fmt"
	"testing"

	"visualinux/internal/expr"
	"visualinux/internal/kernelsim"
	"visualinux/internal/obs"
	"visualinux/internal/target"
	"visualinux/internal/viewcl"
)

// The per-hop prefetch hint pays off exactly when a list element straddles a
// page boundary: the walk's link-word read and the later whole-struct
// materialization read then live on different pages, and the hint's
// element-sized prefetch lets the snapshot pull both in one coalesced fill.
// This fixture builds such a list deterministically: every task_struct is
// placed 200 bytes before a page boundary, so bytes [0,200) — including pid —
// sit on one page and bytes [200,480) — including the tasks list_head at
// offset 360 — sit on the next.
const straddleProgram = `
define T as Box<task_struct> [
    Text pid, comm
]

root = ${&straddle_tasks}
lst = List(@root).forEach |node| {
    yield T<task_struct.tasks>(@node)
}
plot @lst
`

const straddleElems = 6

func buildStraddleKernel(t *testing.T) *kernelsim.Builder {
	t.Helper()
	b := kernelsim.NewBuilder()
	head := b.Alloc("list_head")
	b.InitList(head.Addr)
	b.Symbol("straddle_tasks", head)

	ts := b.Reg.MustLookup("task_struct")
	if ts.Size() >= 4096 {
		t.Fatalf("task_struct grew past a page (%d bytes); fixture needs re-tuning", ts.Size())
	}
	tasksF, ok := ts.FieldByName("tasks")
	if !ok {
		t.Fatal("task_struct.tasks missing")
	}
	const preBoundary = 200 // bytes of the element kept on the first page
	if tasksF.Offset < preBoundary {
		t.Fatalf("task_struct.tasks at offset %d no longer crosses the %d-byte split", tasksF.Offset, preBoundary)
	}
	for i := 0; i < straddleElems; i++ {
		// Burn up to 200 bytes before the next page boundary, so the
		// element allocated next starts there and spans two pages.
		b.AllocRaw(4096-preBoundary, 4096)
		o := b.Alloc("task_struct")
		if o.Addr%4096 != 4096-preBoundary {
			t.Fatalf("element %d at %#x does not straddle", i, o.Addr)
		}
		o.Set("pid", uint64(100+i))
		o.SetStr("comm", fmt.Sprintf("straddle-%d", i))
		b.ListAddTail(head.Addr, o.FieldAddr("tasks"))
	}
	return b
}

func runStraddle(t *testing.T, b *kernelsim.Builder, hints bool) (fills, txns, hintCount uint64) {
	t.Helper()
	o := obs.NewObserver()
	counted := target.WithStats(b.Tgt)
	snap := target.NewSnapshot(counted).Instrument(o)
	env := expr.NewEnv(snap)
	kernelsim.RegisterHelpers(env)
	in := viewcl.New(env)
	in.Obs = o
	in.PrefetchHints = hints
	res, err := in.RunSource("straddle", straddleProgram)
	if err != nil {
		t.Fatalf("run (hints=%v): %v", hints, err)
	}
	if got := len(res.Graph.ByType("task_struct")); got != straddleElems {
		t.Fatalf("extracted %d tasks, want %d", got, straddleElems)
	}
	_, _, tx := counted.Stats().Totals()
	return o.SnapFills.Value(), tx, o.PrefetchHints.Value()
}

// TestPrefetchCoalescesStraddlingElements is the prefetch satellite's
// deterministic verification: with hints on, each hop's element prefetch
// merges the walk fill and the materialization fill into one link
// transaction, halving the fill count on a page-straddling list.
func TestPrefetchCoalescesStraddlingElements(t *testing.T) {
	fillsOff, txnsOff, hOff := runStraddle(t, buildStraddleKernel(t), false)
	fillsOn, txnsOn, hOn := runStraddle(t, buildStraddleKernel(t), true)

	if hOff != 0 {
		t.Fatalf("hints issued with hints disabled: %d", hOff)
	}
	if hOn != straddleElems {
		t.Fatalf("hints = %d, want one per hop (%d)", hOn, straddleElems)
	}
	// Hintless: one fill for the head's page, then per element one fill for
	// the link-word page (walk) and one for the rest (materialization).
	if want := uint64(2*straddleElems + 1); fillsOff != want {
		t.Fatalf("hintless fills = %d, want %d", fillsOff, want)
	}
	// Hinted: head fill plus ONE coalesced two-page fill per element.
	if want := uint64(straddleElems + 1); fillsOn != want {
		t.Fatalf("hinted fills = %d, want %d", fillsOn, want)
	}
	if txnsOn >= txnsOff {
		t.Fatalf("link transactions did not drop: %d (on) vs %d (off)", txnsOn, txnsOff)
	}
	t.Logf("fills %d -> %d, link txns %d -> %d with %d hints",
		fillsOff, fillsOn, txnsOff, txnsOn, hOn)
}
