package viewcl

import (
	"fmt"
	"strconv"
	"strings"

	"visualinux/internal/ctypes"
	"visualinux/internal/expr"
)

// defaultEmojis holds the builtin emoji renderers. They are package-level
// immutable defaults shared by every interpreter: sessions used to rebuild
// these closures per Interp in New, which showed up as pure constant churn
// when the server spins up one interpreter per figure per session.
// Interp.Emojis entries override them by id.
var defaultEmojis = map[string]func(uint64) string{
	"lock": func(v uint64) string {
		if v != 0 {
			return "\U0001F512" // locked
		}
		return "\U0001F513" // open lock
	},
	"onoff": func(v uint64) string {
		if v != 0 {
			return "✅"
		}
		return "❌"
	},
}

// decorate renders a C value as display text per the optional format
// (Table 1 of the paper). It returns the text, the raw scalar (for ViewQL
// WHERE comparisons), and whether the value is numeric / string-like.
func (in *Interp) decorate(v expr.Value, f *Format, env *expr.Env) (text string, raw uint64, isNum, isStr bool) {
	raw = v.Bits
	if v.HasAddr {
		raw = v.Addr
	}
	isNum = !v.IsStr

	if f == nil {
		return in.defaultText(v, env), raw, isNum, v.IsStr
	}
	switch f.Kind {
	case "bool":
		if v.Bits != 0 {
			return "true", raw, true, false
		}
		return "false", raw, true, false
	case "char":
		return fmt.Sprintf("%q", rune(v.Bits&0xFF)), raw, true, false
	case "string":
		s := in.stringOf(v, env)
		return s, raw, false, true
	case "enum":
		et, ok := env.Types().Lookup(f.Arg)
		if ok {
			if name := et.EnumName(int64(v.Bits)); name != "" {
				return name, raw, true, false
			}
		}
		return strconv.FormatUint(v.Bits, 10), raw, true, false
	case "raw_ptr":
		return fmt.Sprintf("0x%x", v.Bits), raw, true, false
	case "fptr":
		if name, ok := env.Target.SymbolAt(v.Bits); ok {
			return name, raw, false, true
		}
		if v.Bits == 0 {
			return "NULL", raw, true, false
		}
		return fmt.Sprintf("0x%x", v.Bits), raw, true, false
	case "flag":
		set, ok := in.Flags[f.Arg]
		if !ok {
			return fmt.Sprintf("0x%x", v.Bits), raw, true, false
		}
		var names []string
		rest := v.Bits
		for _, fl := range set {
			if v.Bits&fl.Mask == fl.Mask && fl.Mask != 0 {
				names = append(names, fl.Name)
				rest &^= fl.Mask
			}
		}
		if rest != 0 {
			names = append(names, fmt.Sprintf("0x%x", rest))
		}
		if len(names) == 0 {
			return "0", raw, true, false
		}
		return strings.Join(names, "|"), raw, true, false
	case "emoji":
		if render, ok := in.Emojis[f.Arg]; ok {
			return render(v.Bits), raw, true, false
		}
		if render, ok := defaultEmojis[f.Arg]; ok {
			return render(v.Bits), raw, true, false
		}
		return fmt.Sprintf("%d", v.Bits), raw, true, false
	default:
		// Integer decorators: <type:base> e.g. u64:x, int:d, u32:b.
		base := f.Arg
		signed := strings.HasPrefix(f.Kind, "s") || f.Kind == "int" || f.Kind == "long"
		switch base {
		case "x", "hex", "":
			if base == "" {
				if signed {
					return strconv.FormatInt(v.Int(), 10), raw, true, false
				}
				return strconv.FormatUint(v.Bits, 10), raw, true, false
			}
			return "0x" + strconv.FormatUint(v.Bits, 16), raw, true, false
		case "d", "dec":
			if signed {
				return strconv.FormatInt(v.Int(), 10), raw, true, false
			}
			return strconv.FormatUint(v.Bits, 10), raw, true, false
		case "o":
			return "0" + strconv.FormatUint(v.Bits, 8), raw, true, false
		case "b":
			return "0b" + strconv.FormatUint(v.Bits, 2), raw, true, false
		default:
			return strconv.FormatUint(v.Bits, 10), raw, true, false
		}
	}
}

// defaultText renders a value with type-driven defaults: strings as
// strings, enums by name, char pointers/arrays as C strings, function
// pointers by symbol, other pointers in hex, signed ints in decimal.
func (in *Interp) defaultText(v expr.Value, env *expr.Env) string {
	if v.IsStr {
		return v.Str
	}
	t := v.Type.Strip()
	if t == nil {
		return strconv.FormatUint(v.Bits, 10)
	}
	switch t.Kind {
	case ctypes.KindBool:
		if v.Bits != 0 {
			return "true"
		}
		return "false"
	case ctypes.KindEnum:
		if name := t.EnumName(int64(v.Bits)); name != "" {
			return name
		}
		return strconv.FormatInt(v.Int(), 10)
	case ctypes.KindPointer:
		el := t.Elem.Strip()
		if el != nil && el.Kind == ctypes.KindInt && el.Size() == 1 && el.Signed {
			// char*: show the string
			if v.Bits == 0 {
				return "NULL"
			}
			return in.stringOf(v, env)
		}
		if el != nil && el.Kind == ctypes.KindFunc {
			if name, ok := env.Target.SymbolAt(v.Bits); ok {
				return name
			}
		}
		if v.Bits == 0 {
			return "NULL"
		}
		return "0x" + strconv.FormatUint(v.Bits, 16)
	case ctypes.KindInt:
		if t.Signed {
			return strconv.FormatInt(v.Int(), 10)
		}
		return strconv.FormatUint(v.Bits, 10)
	case ctypes.KindArray:
		el := t.Elem.Strip()
		if el != nil && el.Kind == ctypes.KindInt && el.Size() == 1 && v.HasAddr {
			return in.stringOf(v, env)
		}
	case ctypes.KindStruct, ctypes.KindUnion:
		return fmt.Sprintf("<%s @0x%x>", t, v.Addr)
	}
	return strconv.FormatUint(v.Bits, 10)
}

// stringOf reads the string content of a value (char*, char array, or
// synthetic string).
func (in *Interp) stringOf(v expr.Value, env *expr.Env) string {
	s, err := expr.ReadString(env, v, 128)
	if err != nil {
		return fmt.Sprintf("0x%x", v.Bits)
	}
	return s
}
