package viewcl_test

import (
	"strings"
	"testing"

	"visualinux/internal/graph"
	"visualinux/internal/viewcl"
)

func TestForEachIndexVariable(t *testing.T) {
	_, in := newInterp(t)
	res, err := in.RunSource("idx", `
define Cell as Box<irq_desc> [
    Text irq: ${@this->irq_data.irq}
]
root = Box [
    Container descs: Array(${irq_desc}).forEach |d| {
        yield switch ${@d_index < 3} {
            case ${true}: Cell(@d)
            otherwise: NULL
        }
    }
]
plot @root
`)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n := len(res.Graph.ByType("irq_desc")); n != 3 {
		t.Errorf("index-filtered cells = %d, want 3", n)
	}
}

func TestContainerOfRawScalars(t *testing.T) {
	_, in := newInterp(t)
	// Array without forEach: elements become value cells (pivot arrays).
	res, err := in.RunSource("cells", `
define Node as Box<maple_node> [
    Container pivots: Array(${@this->mr64.pivot})
]
root = Node(${mte_to_node(stackrot_mm.mm_mt.ma_root)})
plot @root
`)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	root, _ := res.Graph.Get(res.Graph.RootID)
	pv, ok := root.Member("pivots")
	if !ok || len(pv.Elems) != 15 {
		t.Fatalf("pivots = %d elems", len(pv.Elems))
	}
	cell, _ := res.Graph.Get(pv.Elems[0])
	if cell.Label != "cell" {
		t.Errorf("element label = %q", cell.Label)
	}
	if cell.CurrentView().Items[0].Name != "[0]" {
		t.Errorf("cell item = %+v", cell.CurrentView().Items[0])
	}
}

func TestEmojiDecorator(t *testing.T) {
	_, in := newInterp(t)
	res, err := in.RunSource("emoji", `
define MM as Box<mm_struct> [
    Text<emoji:lock> held: ${@this->mmap_lock.count != 0}
    Text<emoji:onoff> ok: ${1}
]
m = MM(${&stackrot_mm})
plot @m
`)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	b, _ := res.Graph.Get(res.Graph.RootID)
	held, _ := b.Member("held")
	if held.Value != "\U0001F512" {
		t.Errorf("lock emoji = %q", held.Value)
	}
	ok, _ := b.Member("ok")
	if ok.Value != "✅" {
		t.Errorf("onoff emoji = %q", ok.Value)
	}
}

func TestPipeRingContainer(t *testing.T) {
	_, in := newInterp(t)
	res, err := in.RunSource("ring", `
define Buf as Box<pipe_buffer> [
    Text len
    Text<flag:pipe_buf_flags> flags: flags
]
define Pipe as Box<pipe_inode_info> [
    Text head, tail
    Container bufs: PipeRing(@this).forEach |b| {
        yield Buf(@b)
    }
]
p = Pipe(${&dirty_pipe})
plot @p
`)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	bufs := res.Graph.ByType("pipe_buffer")
	if len(bufs) != 2 { // head=2, tail=0 -> two occupied slots
		t.Fatalf("ring bufs = %d", len(bufs))
	}
	fl, _ := bufs[1].Member("flags")
	if !strings.Contains(fl.Value, "CAN_MERGE") {
		t.Errorf("flag decoration = %q", fl.Value)
	}
}

func TestXArrayContainer(t *testing.T) {
	_, in := newInterp(t)
	res, err := in.RunSource("xa", `
define P as Box<page> [
    Text index
]
root = Box [
    Container pages: XArray(${find_task(1)->files->fdt->fd[3]->f_mapping->i_pages}).forEach |e| {
        yield P(@e)
    }
]
plot @root
`)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	pages := res.Graph.ByType("page")
	if len(pages) < 8 {
		t.Fatalf("xarray pages = %d", len(pages))
	}
	// Index order preserved.
	var prev uint64
	for i, p := range pages {
		idx, _ := p.Member("index")
		if i > 0 && idx.Raw < prev {
			t.Errorf("xarray order violated at %d", i)
		}
		prev = idx.Raw
	}
}

func TestInterpErrors(t *testing.T) {
	_, in := newInterp(t)
	cases := map[string]string{
		"unknown box": `x = NoSuchBox(${&init_task})
plot @x`,
		"unknown ctype": `define X as Box<no_such_type> [ Text a ]
x = X(${&init_task})
plot @x`,
		"unbound var": `plot @nothing`,
		"bad anchor": `define T as Box<task_struct> [ Text pid ]
x = T<no_type.member>(${&init_task})
plot @x`,
		"circular binding": `define T as Box<task_struct> [
    Text a: ${@x}
] where {
    x = ${@y}
    y = ${@x}
}
x = T(${&init_task})
plot @x`,
		"plot scalar": `v = ${1 + 1}
plot @v`,
	}
	for name, src := range cases {
		res, err := in.RunSource(name, src)
		if err == nil && (res == nil || len(res.Errors) == 0) {
			t.Errorf("%s: no error surfaced", name)
		}
	}
}

func TestSynthesizeProgram(t *testing.T) {
	k, in := newInterp(t)
	_ = k
	prog, err := viewcl.SynthesizeProgram(in.Env.Types(), "vm_area_struct", "find_task(100)->mm->mm_mt.ma_root")
	if err != nil {
		t.Fatalf("synth: %v", err)
	}
	for _, want := range []string{"define VmAreaStruct as Box<vm_area_struct>", "Text vm_start", "plot @root"} {
		if !strings.Contains(prog, want) {
			t.Errorf("missing %q in:\n%s", want, prog)
		}
	}
	// The generated program must parse.
	if _, err := viewcl.Parse("synth", prog); err != nil {
		t.Fatalf("generated program does not parse: %v\n%s", err, prog)
	}
	// Non-aggregate type rejected.
	if _, err := viewcl.SynthesizeProgram(in.Env.Types(), "u64", "0"); err == nil {
		t.Error("scalar type accepted")
	}
}

func TestGraphStatsAndLOC(t *testing.T) {
	_, in := newInterp(t)
	prog := viewcl.MustParse("p", schedProgram)
	if prog.LOC < 8 {
		t.Errorf("LOC = %d", prog.LOC)
	}
	res, err := in.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.Stats.Reads == 0 {
		t.Error("no read stats")
	}
	var _ = graph.DefaultView
}

func TestScalarDecorators(t *testing.T) {
	_, in := newInterp(t)
	res, err := in.RunSource("deco2", `
define T as Box<task_struct> [
    Text<bool> alive: ${@this->exit_state == 0}
    Text<char> initial: ${'s'}
    Text<int:d> signed_neg: ${0 - 5}
    Text<u32:b> bits: ${5}
    Text<u64:o> oct: ${8}
    Text<enum:pid_type> ptype: ${1}
]
x = T(${&init_task})
plot @x
`)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	b, _ := res.Graph.Get(res.Graph.RootID)
	want := map[string]string{
		"alive":      "true",
		"initial":    "'s'",
		"signed_neg": "-5",
		"bits":       "0b101",
		"oct":        "010",
		"ptype":      "PIDTYPE_TGID",
	}
	for name, w := range want {
		it, ok := b.Member(name)
		if !ok || it.Value != w {
			t.Errorf("%s = %q, want %q", name, it.Value, w)
		}
	}
}
