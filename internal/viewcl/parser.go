package viewcl

import (
	"strconv"
	"strings"
)

// containerKinds are the builtin converter constructors.
var containerKinds = map[string]bool{
	"List": true, "HList": true, "RBTree": true, "Array": true,
	"XArray": true, "PipeRing": true,
}

type parser struct {
	toks []token
	pos  int
	// pushback for tViewName tokens re-split into ':' + ident
	pending *token
}

// Parse compiles ViewCL source into a Program.
func Parse(name, src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{Source: name, LOC: countLOC(src)}
	for p.peek().Kind != tEOF {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, s)
	}
	return prog, nil
}

// MustParse panics on error; for embedding the stdlib programs.
func MustParse(name, src string) *Program {
	p, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

func countLOC(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		n++
	}
	return n
}

func (p *parser) peek() token {
	if p.pending != nil {
		return *p.pending
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	if p.pending != nil {
		t := *p.pending
		p.pending = nil
		return t
	}
	t := p.toks[p.pos]
	p.pos++
	return t
}

func (p *parser) acceptPunct(text string) bool {
	t := p.peek()
	if t.Kind == tPunct && t.Text == text {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectPunct(text string) error {
	t := p.peek()
	if !p.acceptPunct(text) {
		return errf(t.Line, "expected %q, found %q", text, t)
	}
	return nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.next()
	if t.Kind != tIdent {
		return t, errf(t.Line, "expected identifier, found %q", t)
	}
	return t, nil
}

// acceptColon consumes a ':' separator, splitting a fused tViewName token
// ("x" in Text<u64:x>) back into ':' + pending identifier.
func (p *parser) acceptColon() bool {
	t := p.peek()
	if t.Kind == tPunct && t.Text == ":" {
		p.next()
		return true
	}
	if t.Kind == tViewName {
		p.next()
		p.pending = &token{Kind: tIdent, Text: t.Text, Line: t.Line}
		return true
	}
	return false
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	if t.Kind != tIdent {
		return nil, errf(t.Line, "expected statement, found %q", t)
	}
	switch t.Text {
	case "define":
		return p.parseDefine()
	case "plot":
		p.next()
		e, err := p.parseVExpr()
		if err != nil {
			return nil, err
		}
		return &PlotStmt{Expr: e, Line: t.Line}, nil
	default:
		// binding: name = expr
		name := p.next()
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.parseVExpr()
		if err != nil {
			return nil, err
		}
		return &BindStmt{Name: name.Text, Expr: e, Line: t.Line}, nil
	}
}

func (p *parser) parseDefine() (*DefineStmt, error) {
	kw := p.next() // define
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	as, err := p.expectIdent()
	if err != nil || as.Text != "as" {
		return nil, errf(name.Line, "expected 'as' after define %s", name.Text)
	}
	box, err := p.expectIdent()
	if err != nil || box.Text != "Box" {
		return nil, errf(name.Line, "expected 'Box' in define %s", name.Text)
	}
	if err := p.expectPunct("<"); err != nil {
		return nil, err
	}
	ct, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(">"); err != nil {
		return nil, err
	}
	d := &DefineStmt{Name: name.Text, CType: ct.Text, Line: kw.Line}
	switch {
	case p.acceptPunct("["):
		// single default view
		items, err := p.parseItems()
		if err != nil {
			return nil, err
		}
		vd := &ViewDecl{Name: "default", Items: items, Line: kw.Line}
		if w, err := p.parseOptWhere(); err != nil {
			return nil, err
		} else {
			vd.Where = w
		}
		d.Views = []*ViewDecl{vd}
	case p.acceptPunct("{"):
		for !p.acceptPunct("}") {
			vd, err := p.parseViewDecl()
			if err != nil {
				return nil, err
			}
			d.Views = append(d.Views, vd)
		}
		if w, err := p.parseOptWhere(); err != nil {
			return nil, err
		} else {
			d.Where = w
		}
	default:
		return nil, errf(kw.Line, "expected '[' or '{' in define %s", name.Text)
	}
	return d, nil
}

func (p *parser) parseViewDecl() (*ViewDecl, error) {
	t := p.next()
	if t.Kind != tViewName {
		return nil, errf(t.Line, "expected view name (:name), found %q", t)
	}
	vd := &ViewDecl{Name: t.Text, Line: t.Line}
	if p.acceptPunct("=>") {
		child := p.next()
		if child.Kind != tViewName {
			return nil, errf(child.Line, "expected child view name after '=>'")
		}
		vd.Parent = vd.Name
		vd.Name = child.Text
	}
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	items, err := p.parseItems()
	if err != nil {
		return nil, err
	}
	vd.Items = items
	w, err := p.parseOptWhere()
	if err != nil {
		return nil, err
	}
	vd.Where = w
	return vd, nil
}

// parseOptWhere parses an optional `where { bindings }` clause.
func (p *parser) parseOptWhere() ([]Binding, error) {
	t := p.peek()
	if t.Kind != tIdent || t.Text != "where" {
		return nil, nil
	}
	p.next()
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var out []Binding
	for !p.acceptPunct("}") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.parseVExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, Binding{Name: name.Text, Expr: e, Line: name.Line})
	}
	return out, nil
}

// parseItems parses view items up to the closing ']'.
func (p *parser) parseItems() ([]ItemDecl, error) {
	var items []ItemDecl
	for !p.acceptPunct("]") {
		t := p.peek()
		if t.Kind != tIdent {
			return nil, errf(t.Line, "expected item declaration, found %q", t)
		}
		switch t.Text {
		case "Text":
			ts, err := p.parseTextItems()
			if err != nil {
				return nil, err
			}
			items = append(items, ts...)
		case "Link":
			p.next()
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			// Flattened link paths: Link a.b.c -> target
			label := name.Text
			for p.acceptPunct(".") {
				nn, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				label += "." + nn.Text
			}
			if !p.acceptPunct("->") && !p.acceptColon() {
				return nil, errf(t.Line, "expected '->' in Link %s", label)
			}
			e, err := p.parseVExpr()
			if err != nil {
				return nil, err
			}
			items = append(items, &LinkItem{Name: label, Target: e, Line: t.Line})
		case "Container":
			p.next()
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if !p.acceptColon() {
				return nil, errf(t.Line, "expected ':' in Container %s", name.Text)
			}
			e, err := p.parseVExpr()
			if err != nil {
				return nil, err
			}
			items = append(items, &ContainerItem{Name: name.Text, Expr: e, Line: t.Line})
		case "Box":
			p.next()
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if !p.acceptColon() {
				return nil, errf(t.Line, "expected ':' in Box %s", name.Text)
			}
			e, err := p.parseVExpr()
			if err != nil {
				return nil, err
			}
			items = append(items, &BoxItem{Name: name.Text, Expr: e, Line: t.Line})
		default:
			return nil, errf(t.Line, "unknown item keyword %q", t.Text)
		}
	}
	return items, nil
}

// parseTextItems parses: Text[<fmt>] spec ("," spec)*
// where spec := path [":" expr].
func (p *parser) parseTextItems() ([]ItemDecl, error) {
	kw := p.next() // Text
	var fmtp *Format
	if p.acceptPunct("<") {
		f, err := p.parseFormat()
		if err != nil {
			return nil, err
		}
		fmtp = f
		if err := p.expectPunct(">"); err != nil {
			return nil, err
		}
	}
	var items []ItemDecl
	for {
		// path: ident (. ident)* — or @binding reference shorthand
		var name string
		var ex VExpr
		t := p.peek()
		if t.Kind == tAtIdent {
			p.next()
			name = t.Text
			ex = &VarRef{Name: t.Text, Line: t.Line}
		} else {
			id, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			name = id.Text
			for p.acceptPunct(".") {
				nn, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				name += "." + nn.Text
			}
		}
		it := &TextItem{Fmt: fmtp, Name: name, Line: kw.Line}
		if ex != nil {
			it.Expr = ex
		} else {
			it.Path = name
		}
		if p.acceptColon() {
			// explicit value: either a member path or a full expression
			e, err := p.parseTextValue()
			if err != nil {
				return nil, err
			}
			it.Expr = e
			it.Path = ""
		}
		items = append(items, it)
		if !p.acceptPunct(",") {
			return items, nil
		}
	}
}

// parseTextValue parses the RHS of "Text name: ..." — a bare member path is
// shorthand for ${@this->path}.
func (p *parser) parseTextValue() (VExpr, error) {
	t := p.peek()
	if t.Kind == tIdent && !containerKinds[t.Text] && t.Text != "switch" && t.Text != "NULL" && t.Text != "Box" {
		// Lookahead: ident(.ident)* not followed by '(' or '<' is a path.
		save := p.pos
		savePending := p.pending
		id := p.next()
		path := id.Text
		for p.acceptPunct(".") {
			nn, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			path += "." + nn.Text
		}
		nt := p.peek()
		if nt.Kind == tPunct && (nt.Text == "(" || nt.Text == "<") {
			// It was a constructor after all; rewind.
			p.pos = save
			p.pending = savePending
		} else {
			return &CExprNode{Src: "@this->" + strings.ReplaceAll(path, ".", "->"), Line: id.Line}, nil
		}
	}
	return p.parseVExpr()
}

func (p *parser) parseFormat() (*Format, error) {
	id, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	f := &Format{Kind: id.Text}
	if p.acceptColon() {
		arg, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		f.Arg = arg.Text
	}
	return f, nil
}

// parseVExpr parses a ViewCL expression.
func (p *parser) parseVExpr() (VExpr, error) {
	t := p.peek()
	switch t.Kind {
	case tCExpr:
		p.next()
		return &CExprNode{Src: t.Text, Line: t.Line}, nil
	case tAtIdent:
		p.next()
		return &VarRef{Name: t.Text, Line: t.Line}, nil
	case tNumber:
		p.next()
		v, err := strconv.ParseUint(t.Text, 0, 64)
		if err != nil {
			return nil, errf(t.Line, "bad number %q", t.Text)
		}
		return &NumberNode{V: v, Line: t.Line}, nil
	case tString:
		p.next()
		return &StringNode{S: t.Text, Line: t.Line}, nil
	case tIdent:
		switch t.Text {
		case "NULL":
			p.next()
			return &NullNode{Line: t.Line}, nil
		case "switch":
			return p.parseSwitch()
		case "Box":
			return p.parseInlineBox()
		case "Array":
			// Array.selectFrom(expr, Type) | Array(expr[, count]).
			// Look past the "Array" token, which may live in pending.
			base := p.pos + 1
			if p.pending != nil {
				base = p.pos
			}
			if base+1 < len(p.toks) &&
				p.toks[base].Kind == tPunct && p.toks[base].Text == "." &&
				p.toks[base+1].Kind == tIdent && p.toks[base+1].Text == "selectFrom" {
				p.next() // Array
				p.next() // .
				p.next() // selectFrom
				if err := p.expectPunct("("); err != nil {
					return nil, err
				}
				c, err := p.parseVExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(","); err != nil {
					return nil, err
				}
				bt, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				return &SelectFromNode{Container: c, BoxType: bt.Text, Line: t.Line}, nil
			}
			return p.parseContainerOrConstruct()
		default:
			return p.parseContainerOrConstruct()
		}
	}
	return nil, errf(t.Line, "expected expression, found %q", t)
}

// parseContainerOrConstruct parses Name(...) | Name<anchor>(...) with an
// optional .forEach clause for containers.
func (p *parser) parseContainerOrConstruct() (VExpr, error) {
	name := p.next() // tIdent
	anchor := ""
	if p.acceptPunct("<") {
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		anchor = id.Text
		for p.acceptPunct(".") {
			nn, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			anchor += "." + nn.Text
		}
		if err := p.expectPunct(">"); err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []VExpr
	if !p.acceptPunct(")") {
		for {
			a, err := p.parseVExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.acceptPunct(")") {
				break
			}
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
	}
	if containerKinds[name.Text] {
		cn := &ContainerNode{Kind: name.Text, Args: args, Line: name.Line}
		fe, err := p.parseOptForEach()
		if err != nil {
			return nil, err
		}
		cn.ForEach = fe
		return cn, nil
	}
	if len(args) != 1 {
		return nil, errf(name.Line, "%s(...) wants exactly one argument", name.Text)
	}
	return &ConstructNode{BoxType: name.Text, Anchor: anchor, Arg: args[0], Line: name.Line}, nil
}

func (p *parser) parseOptForEach() (*ForEachClause, error) {
	if !(p.peek().Kind == tPunct && p.peek().Text == ".") {
		return nil, nil
	}
	p.next() // .
	kw, err := p.expectIdent()
	if err != nil || kw.Text != "forEach" {
		return nil, errf(kw.Line, "expected forEach after '.'")
	}
	if err := p.expectPunct("|"); err != nil {
		return nil, err
	}
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("|"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	fe := &ForEachClause{Var: v.Text, Line: kw.Line}
	for !p.acceptPunct("}") {
		t, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if t.Text == "yield" {
			if fe.Yield != nil {
				return nil, errf(t.Line, "multiple yields in forEach")
			}
			y, err := p.parseVExpr()
			if err != nil {
				return nil, err
			}
			fe.Yield = y
			continue
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.parseVExpr()
		if err != nil {
			return nil, err
		}
		fe.Body = append(fe.Body, Binding{Name: t.Text, Expr: e, Line: t.Line})
	}
	if fe.Yield == nil {
		return nil, errf(fe.Line, "forEach without yield")
	}
	return fe, nil
}

func (p *parser) parseSwitch() (VExpr, error) {
	kw := p.next() // switch
	scrut, err := p.parseVExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	sw := &SwitchNode{Scrutinee: scrut, Line: kw.Line}
	for !p.acceptPunct("}") {
		t, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		switch t.Text {
		case "case":
			var vals []VExpr
			for {
				v, err := p.parseVExpr()
				if err != nil {
					return nil, err
				}
				vals = append(vals, v)
				if !p.acceptPunct(",") {
					break
				}
			}
			if !p.acceptColon() {
				return nil, errf(t.Line, "expected ':' after case values")
			}
			res, err := p.parseVExpr()
			if err != nil {
				return nil, err
			}
			sw.Cases = append(sw.Cases, SwitchCase{Values: vals, Result: res})
		case "otherwise":
			if !p.acceptColon() {
				return nil, errf(t.Line, "expected ':' after otherwise")
			}
			res, err := p.parseVExpr()
			if err != nil {
				return nil, err
			}
			sw.Otherwise = res
		default:
			return nil, errf(t.Line, "expected case/otherwise, found %q", t.Text)
		}
	}
	return sw, nil
}

func (p *parser) parseInlineBox() (VExpr, error) {
	kw := p.next() // Box
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	items, err := p.parseItems()
	if err != nil {
		return nil, err
	}
	w, err := p.parseOptWhere()
	if err != nil {
		return nil, err
	}
	return &InlineBoxNode{Items: items, Where: w, Line: kw.Line}, nil
}
