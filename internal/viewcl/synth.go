package viewcl

import (
	"fmt"
	"strings"

	"visualinux/internal/ctypes"
)

// SynthesizeProgram generates "naive ViewCL code for trivial debugging
// objectives" (paper §4: vplot "can also synthesize naive ViewCL code").
// Given a C type and a root expression it emits a Box displaying every
// scalar member (ints in their natural format, char arrays as strings,
// function pointers by name, nested scalar-bearing structs flattened one
// level) plus the plot statement. Pointer members become raw_ptr texts —
// the user refines from there.
func SynthesizeProgram(reg *ctypes.Registry, typeName, rootExpr string) (string, error) {
	typ, ok := reg.Lookup(typeName)
	if !ok {
		return "", fmt.Errorf("viewcl: unknown type %q", typeName)
	}
	st := typ.Strip()
	if st.Kind != ctypes.KindStruct && st.Kind != ctypes.KindUnion {
		return "", fmt.Errorf("viewcl: %s is not an aggregate", typeName)
	}
	boxName := exportName(st.Name)
	var b strings.Builder
	fmt.Fprintf(&b, "define %s as Box<%s> [\n", boxName, st.Name)
	emitted := 0
	for _, f := range st.Fields {
		if f.Name == "" {
			// anonymous member: lift its scalars one level
			for _, inner := range f.Type.Strip().Fields {
				if inner.Name == "" {
					continue
				}
				if line, ok := synthItem(inner.Name, inner); ok {
					b.WriteString(line)
					emitted++
				}
			}
			continue
		}
		if line, ok := synthItem(f.Name, f); ok {
			b.WriteString(line)
			emitted++
		}
		if emitted >= 32 {
			b.WriteString("    // ... remaining members elided by the synthesizer\n")
			break
		}
	}
	if emitted == 0 {
		fmt.Fprintf(&b, "    Text<raw_ptr> addr: ${@this}\n")
	}
	b.WriteString("]\n\n")
	fmt.Fprintf(&b, "root = %s(${%s})\nplot @root\n", boxName, rootExpr)
	return b.String(), nil
}

// synthItem renders one member as a Text item if it is displayable.
func synthItem(name string, f ctypes.Field) (string, bool) {
	t := f.Type.Strip()
	switch t.Kind {
	case ctypes.KindInt, ctypes.KindBool:
		if f.IsBitfield() || t.Size() <= 8 {
			return fmt.Sprintf("    Text %s\n", name), true
		}
	case ctypes.KindEnum:
		return fmt.Sprintf("    Text<enum:%s> %s\n", t.Name, name), true
	case ctypes.KindPointer:
		el := t.Elem.Strip()
		if el != nil && el.Kind == ctypes.KindFunc {
			return fmt.Sprintf("    Text<fptr> %s\n", name), true
		}
		if el != nil && el.Kind == ctypes.KindInt && el.Size() == 1 && el.Signed {
			return fmt.Sprintf("    Text<string> %s\n", name), true
		}
		return fmt.Sprintf("    Text<raw_ptr> %s\n", name), true
	case ctypes.KindArray:
		el := t.Elem.Strip()
		if el != nil && el.Kind == ctypes.KindInt && el.Size() == 1 {
			return fmt.Sprintf("    Text %s\n", name), true // char[]: string default
		}
	case ctypes.KindStruct:
		// one-level flatten of tiny wrapper structs (atomic_t-style)
		if len(t.Fields) == 1 && t.Fields[0].Type.IsInteger() {
			return fmt.Sprintf("    Text %s: ${@this->%s.%s}\n", name, name, t.Fields[0].Name), true
		}
	}
	return "", false
}

func exportName(s string) string {
	parts := strings.Split(s, "_")
	var b strings.Builder
	for _, p := range parts {
		if p == "" {
			continue
		}
		b.WriteString(strings.ToUpper(p[:1]) + p[1:])
	}
	if b.Len() == 0 {
		return "Auto"
	}
	return b.String()
}
