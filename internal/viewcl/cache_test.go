package viewcl

import (
	"fmt"
	"testing"
)

// TestParseCacheBoundedUnderChurn feeds the cache far more distinct
// programs than its capacity — the dynamically-generated-source shape vchat
// produces — and checks it stays bounded, evicts, and still serves repeats.
func TestParseCacheBoundedUnderChurn(t *testing.T) {
	old := SetParseCacheCap(8)
	defer SetParseCacheCap(old)

	_, misses0, evicts0 := ParseCacheStats()
	for i := 0; i < 100; i++ {
		src := fmt.Sprintf("plot ${%d}", i)
		if _, err := ParseCached(fmt.Sprintf("churn-%d", i), src); err != nil {
			t.Fatalf("parse %d: %v", i, err)
		}
	}
	if n := ParseCacheLen(); n > 8 {
		t.Fatalf("cache grew past its cap: len=%d cap=8", n)
	}
	_, misses1, evicts1 := ParseCacheStats()
	if misses1-misses0 != 100 {
		t.Fatalf("expected 100 parses, got %d", misses1-misses0)
	}
	if evicts1-evicts0 < 92 {
		t.Fatalf("expected >=92 evictions, got %d", evicts1-evicts0)
	}

	// Recently used entries survive; re-parsing one is a hit.
	hits0, misses2, _ := ParseCacheStats()
	if _, err := ParseCached("churn-99", "plot ${99}"); err != nil {
		t.Fatal(err)
	}
	hits1, misses3, _ := ParseCacheStats()
	if hits1 != hits0+1 || misses3 != misses2 {
		t.Fatalf("repeat of a cached program should hit: hits %d->%d misses %d->%d",
			hits0, hits1, misses2, misses3)
	}
}

// TestParseCachedSharesPrograms checks two lookups of the same (name, src)
// return the identical *Program, which is what makes the shared compile
// cache's pointer key meaningful.
func TestParseCachedSharesPrograms(t *testing.T) {
	p1, err := ParseCached("share", "plot ${1}")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParseCached("share", "plot ${1}")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("ParseCached returned distinct programs for identical source")
	}
}

// TestParseCacheLRUOrder verifies least-recently-used eviction: touching an
// old entry protects it over an untouched sibling.
func TestParseCacheLRUOrder(t *testing.T) {
	old := SetParseCacheCap(2)
	defer SetParseCacheCap(old)

	a, _ := ParseCached("lru-a", "plot ${1}")
	ParseCached("lru-b", "plot ${2}")
	ParseCached("lru-a", "plot ${1}") // touch a: b is now LRU
	ParseCached("lru-c", "plot ${3}") // evicts b

	a2, _ := ParseCached("lru-a", "plot ${1}")
	if a2 != a {
		t.Fatal("touched entry was evicted instead of the LRU one")
	}
}
