package viewcl

import (
	"fmt"
	"strconv"
	"strings"

	"visualinux/internal/ctypes"
	"visualinux/internal/expr"
	"visualinux/internal/graph"
	"visualinux/internal/target"
)

// Builtin container converters (the paper's "standard library" / distill
// operators, §2.2 item 3). Each converter walks a kernel container shape
// through the target and yields a sequence of element values; an optional
// forEach closure maps every element to a box (NULL yields keep their slot,
// preserving positional layouts like maple node slot arrays).

func (r *runState) evalContainer(n *ContainerNode, sc *scope) (vval, error) {
	sp := r.tr.StartSpan("container:" + n.Kind)
	defer sp.End()
	hint := r.containerHint(n)
	elems, err := r.iterate(n, sc, hint)
	if err != nil {
		return vval{}, err
	}
	sp.TagUint("elems", uint64(len(elems)))
	r.batchPrefetch(hint, elems)
	var ids []string
	for i, el := range elems {
		isp := r.tr.StartSpan("iter")
		isp.TagUint("index", uint64(i))
		var v vval
		if n.ForEach != nil {
			inner := newScope(sc)
			inner.defineVal(n.ForEach.Var, vval{kind: vC, c: el})
			inner.defineVal(n.ForEach.Var+"_index", vval{kind: vC,
				c: expr.MakeInt(r.in.Env.Types().MustLookup("unsigned long"), uint64(i))})
			for bi := range n.ForEach.Body {
				inner.define(n.ForEach.Body[bi].Name, n.ForEach.Body[bi].Expr)
			}
			v, err = r.eval(n.ForEach.Yield, inner)
			if err != nil {
				isp.End()
				return vval{}, err
			}
		} else {
			// Raw elements become value cells so Container items can show
			// scalar arrays (pivots, fd bitmaps) without a closure.
			v, err = r.cellBox(el, i, r.cEnv(newScope(nil)))
			if err != nil {
				isp.End()
				return vval{}, err
			}
		}
		switch v.kind {
		case vBox:
			ids = append(ids, v.boxID)
		case vNull:
			ids = append(ids, "")
		case vCont:
			ids = append(ids, v.elems...)
		case vC:
			cb, err := r.cellBox(v.c, i, r.cEnv(newScope(nil)))
			if err != nil {
				isp.End()
				return vval{}, err
			}
			ids = append(ids, cb.boxID)
		}
		isp.End()
	}
	return vval{kind: vCont, elems: ids}, nil
}

// elemHint describes the embedding element of a pointer-chasing container
// walk: each node address the walk yields lives inside an element of `size`
// bytes starting `off` bytes before it. When on, the iterator prefetches the
// whole element per hop, so the snapshot coalesces the walk's link-word fill
// with the later materialization fill into one link transaction whenever the
// element straddles page boundaries.
type elemHint struct {
	off  uint64
	size uint64
	on   bool
}

// containerHint derives the element hint from the forEach yield shape:
// `yield T<ctype.member.path>(@var)` names the embedding C type (through T's
// Box definition) and the node's offset inside it (through the anchor path).
// Any other yield shape opts out — the walk cannot know the element extent.
func (r *runState) containerHint(n *ContainerNode) elemHint {
	if !r.in.PrefetchHints || n.ForEach == nil {
		return elemHint{}
	}
	yield, ok := n.ForEach.Yield.(*ConstructNode)
	if !ok {
		return elemHint{}
	}
	arg, ok := yield.Arg.(*VarRef)
	if !ok || arg.Name != n.ForEach.Var {
		return elemHint{}
	}
	def, ok := r.in.defs[yield.BoxType]
	if !ok || def.ctype == nil || def.ctype.Size() == 0 {
		return elemHint{}
	}
	h := elemHint{size: def.ctype.Size(), on: true}
	if yield.Anchor != "" {
		dot := strings.IndexByte(yield.Anchor, '.')
		if dot < 0 {
			return elemHint{}
		}
		at, ok := r.in.Env.Types().Lookup(yield.Anchor[:dot])
		if !ok {
			return elemHint{}
		}
		f, err := at.ResolvePath(yield.Anchor[dot+1:])
		if err != nil {
			return elemHint{}
		}
		h.off = f.Offset
		h.size = at.Size()
	}
	return h
}

// prefetchElem pulls the whole embedding element before the iterator touches
// its link word: the pointer read that follows then hits the same coalesced
// fill instead of issuing its own.
func (r *runState) prefetchElem(h elemHint, addr uint64) {
	if !h.on || addr == 0 || addr < h.off {
		return
	}
	target.Prefetch(r.tgt(), addr-h.off, h.size)
	if r.in.Obs != nil {
		r.in.Obs.PrefetchHints.Inc()
	}
}

// batchPrefetch coalesces the fills for every element a container walk
// yielded into merged page runs before materialization touches them one by
// one. Per-hop prefetch (prefetchElem) can only see one element at a time —
// the walk discovers addresses sequentially — but once iterate returns, the
// full element set is known, so adjacent elements' pages merge into single
// link transactions and unmapped holes are clipped out instead of failing a
// whole multi-page fill. Elements cover the lvalue kinds per-hop prefetch
// never touched (Array, PipeRing) as well as hinted pointer-chasing walks.
func (r *runState) batchPrefetch(hint elemHint, elems []expr.Value) {
	if !r.in.PrefetchHints || len(elems) < 2 {
		return
	}
	ranges := make([]target.Range, 0, len(elems))
	for _, el := range elems {
		switch {
		case el.HasAddr && el.Type != nil && el.Type.Size() > 0:
			ranges = append(ranges, target.Range{Addr: el.Addr, Size: el.Type.Size()})
		case hint.on && el.Type != nil && el.Type.IsPointer() && el.Bits != 0 && el.Bits >= hint.off:
			ranges = append(ranges, target.Range{Addr: el.Bits - hint.off, Size: hint.size})
		}
	}
	if len(ranges) == 0 {
		return
	}
	// No counter bump here: the snapshot layer counts actual batch fill
	// runs (vl_batch_prefetch_runs_total); resident ranges cost nothing.
	target.PrefetchBatch(r.tgt(), ranges)
}

// cellBox wraps a raw scalar element as a small virtual box.
func (r *runState) cellBox(v expr.Value, idx int, env *expr.Env) (vval, error) {
	id := "cell#" + strconv.Itoa(r.nextVboxN())
	text, raw, isNum, isStr := r.in.decorate(v, nil, env)
	b := r.g.NewBoxIn(id, "cell", "", 0)
	vs := r.allocViews(1)
	items := r.allocItems(1)
	items[0] = graph.Item{Kind: graph.ItemText, Name: "[" + strconv.Itoa(idx) + "]",
		Value: text, Raw: raw, IsNum: isNum, IsStr: isStr}
	vs[0] = graph.View{Name: "default", Items: items}
	b.AddView(&vs[0])
	r.g.Add(b)
	return vval{kind: vBox, boxID: id}, nil
}

// iterate dispatches on the container kind and returns the element values.
func (r *runState) iterate(n *ContainerNode, sc *scope, hint elemHint) ([]expr.Value, error) {
	if len(n.Args) == 0 {
		return nil, errf(n.Line, "%s(...) wants an argument", n.Kind)
	}
	args := make([]expr.Value, len(n.Args))
	for i, a := range n.Args {
		v, err := r.eval(a, sc)
		if err != nil {
			return nil, err
		}
		cv, err := r.toCValue(v)
		if err != nil {
			return nil, errf(n.Line, "%s arg %d: %v", n.Kind, i, err)
		}
		args[i] = cv
	}
	return r.iterateKind(n.Kind, args, n.Line, hint)
}

// iterateKind walks a container shape over already-evaluated arguments;
// shared by the interpreted and compiled engines (the compiled path computes
// the element hint once at lowering time instead of per call).
func (r *runState) iterateKind(kind string, args []expr.Value, line int, hint elemHint) ([]expr.Value, error) {
	switch kind {
	case "List":
		return r.iterList(args[0], line, hint)
	case "HList":
		return r.iterHList(args[0], line, hint)
	case "RBTree":
		return r.iterRBTree(args[0], line, hint)
	case "Array":
		return r.iterArray(args, line)
	case "XArray":
		return r.iterXArray(args[0], line)
	case "PipeRing":
		return r.iterPipeRing(args[0], line)
	}
	return nil, errf(line, "unknown container kind %q", kind)
}

// headAddr finds the address designated by a head argument: an lvalue's
// location or a pointer's target.
func headAddr(v expr.Value) (uint64, error) {
	if v.HasAddr {
		return v.Addr, nil
	}
	if v.Type != nil && v.Type.IsPointer() {
		return v.Bits, nil
	}
	return 0, fmt.Errorf("container head must be an object or pointer, got %s", v)
}

// iterList walks a circular doubly-linked list_head, yielding each node
// pointer (excluding the head itself).
func (r *runState) iterList(head expr.Value, line int, hint elemHint) ([]expr.Value, error) {
	tgt := r.tgt()
	hd, err := headAddr(head)
	if err != nil {
		return nil, errf(line, "List: %v", err)
	}
	lh := r.in.Env.Types().MustLookup("list_head")
	var out []expr.Value
	cur, err := target.ReadU64(tgt, hd)
	if err != nil {
		return nil, errf(line, "List: %v", err)
	}
	for cur != hd && cur != 0 {
		if len(out) >= r.in.MaxElems {
			r.notef(line, "List truncated at %d elements", r.in.MaxElems)
			break
		}
		// Poisoned pointers (freed nodes) end the walk.
		if cur>>32 == 0xdead0000 {
			break
		}
		r.prefetchElem(hint, cur)
		out = append(out, expr.MakePointer(lh, cur))
		cur, err = target.ReadU64(tgt, cur)
		if err != nil {
			return nil, errf(line, "List: %v", err)
		}
	}
	return out, nil
}

// iterHList walks an hlist (head.first -> node.next...).
func (r *runState) iterHList(head expr.Value, line int, hint elemHint) ([]expr.Value, error) {
	tgt := r.tgt()
	hd, err := headAddr(head)
	if err != nil {
		return nil, errf(line, "HList: %v", err)
	}
	node := r.in.Env.Types().MustLookup("hlist_node")
	var out []expr.Value
	cur, err := target.ReadU64(tgt, hd)
	if err != nil {
		return nil, errf(line, "HList: %v", err)
	}
	for cur != 0 {
		if len(out) >= r.in.MaxElems {
			r.notef(line, "HList truncated at %d elements", r.in.MaxElems)
			break
		}
		r.prefetchElem(hint, cur)
		out = append(out, expr.MakePointer(node, cur))
		cur, err = target.ReadU64(tgt, cur)
		if err != nil {
			return nil, errf(line, "HList: %v", err)
		}
	}
	return out, nil
}

// iterRBTree in-order walks an rb_root / rb_root_cached / rb_node*.
func (r *runState) iterRBTree(root expr.Value, line int, hint elemHint) ([]expr.Value, error) {
	tgt := r.tgt()
	nodeT := r.in.Env.Types().MustLookup("rb_node")

	var rootNode uint64
	st := root.Type.Strip()
	switch {
	case root.HasAddr && st != nil && (st.Name == "rb_root" || st.Name == "rb_root_cached"):
		v, err := target.ReadU64(tgt, root.Addr)
		if err != nil {
			return nil, errf(line, "RBTree: %v", err)
		}
		rootNode = v
	case st != nil && st.Kind == ctypes.KindPointer:
		rootNode = root.Bits
		if el := st.Elem.Strip(); el != nil && (el.Name == "rb_root" || el.Name == "rb_root_cached") {
			v, err := target.ReadU64(tgt, root.Bits)
			if err != nil {
				return nil, errf(line, "RBTree: %v", err)
			}
			rootNode = v
		}
	case root.HasAddr:
		// Some other lvalue: assume its first word is the root pointer.
		v, err := target.ReadU64(tgt, root.Addr)
		if err != nil {
			return nil, errf(line, "RBTree: %v", err)
		}
		rootNode = v
	default:
		return nil, errf(line, "RBTree: cannot interpret root %s", root)
	}

	var out []expr.Value
	var walk func(addr uint64) error
	walk = func(addr uint64) error {
		if addr == 0 || len(out) >= r.in.MaxElems {
			return nil
		}
		r.prefetchElem(hint, addr)
		right, err := target.ReadU64(tgt, addr+8)
		if err != nil {
			return err
		}
		left, err := target.ReadU64(tgt, addr+16)
		if err != nil {
			return err
		}
		if err := walk(left); err != nil {
			return err
		}
		out = append(out, expr.MakePointer(nodeT, addr))
		return walk(right)
	}
	if err := walk(rootNode); err != nil {
		return nil, errf(line, "RBTree: %v", err)
	}
	return out, nil
}

// iterArray yields elements of a fixed array lvalue, or ptr+count.
func (r *runState) iterArray(args []expr.Value, line int) ([]expr.Value, error) {
	a := args[0]
	st := a.Type.Strip()
	var base uint64
	var elem *ctypes.Type
	var count uint64
	switch {
	case st.Kind == ctypes.KindArray && a.HasAddr:
		base, elem, count = a.Addr, st.Elem, st.Count
		if len(args) >= 2 { // explicit count (flexible array members)
			count = args[1].Uint()
		}
	case st.Kind == ctypes.KindPointer:
		if len(args) < 2 {
			return nil, errf(line, "Array(ptr) needs a count argument")
		}
		base, elem, count = a.Bits, st.Elem, args[1].Uint()
	default:
		return nil, errf(line, "Array: unsupported argument %s", a)
	}
	if count > uint64(r.in.MaxElems) {
		r.notef(line, "Array truncated from %d to %d elements", count, r.in.MaxElems)
		count = uint64(r.in.MaxElems)
	}
	out := make([]expr.Value, 0, count)
	for i := uint64(0); i < count; i++ {
		out = append(out, expr.MakeLValue(elem, base+i*elem.Size()))
	}
	return out, nil
}

// iterXArray walks an xarray in index order, yielding non-NULL entries as
// void* values (value entries stay tagged; callers untag via xa_to_value).
func (r *runState) iterXArray(xa expr.Value, line int) ([]expr.Value, error) {
	tgt := r.tgt()
	base, err := headAddr(xa)
	if err != nil {
		return nil, errf(line, "XArray: %v", err)
	}
	xaT := r.in.Env.Types().MustLookup("xarray")
	headF, _ := xaT.FieldByName("xa_head")
	head, err := target.ReadU64(tgt, base+headF.Offset)
	if err != nil {
		return nil, errf(line, "XArray: %v", err)
	}
	voidp := ctypes.VoidPtr
	var out []expr.Value
	if head == 0 {
		return out, nil
	}
	if head&3 != 2 || head <= 4096 {
		return []expr.Value{{Type: voidp, Bits: head}}, nil
	}
	nodeT := r.in.Env.Types().MustLookup("xa_node")
	slotsF, _ := nodeT.FieldByName("slots")
	shiftF, _ := nodeT.FieldByName("shift")
	var walk func(nodeAddr uint64) error
	walk = func(nodeAddr uint64) error {
		shift, err := target.ReadU8(tgt, nodeAddr+shiftF.Offset)
		if err != nil {
			return err
		}
		nslots := slotsF.Type.Strip().Count
		for i := uint64(0); i < nslots; i++ {
			e, err := target.ReadU64(tgt, nodeAddr+slotsF.Offset+i*8)
			if err != nil {
				return err
			}
			if e == 0 {
				continue
			}
			if len(out) >= r.in.MaxElems {
				return nil
			}
			if shift > 0 && e&3 == 2 && e > 4096 {
				if err := walk(e - 2); err != nil {
					return err
				}
				continue
			}
			out = append(out, expr.Value{Type: voidp, Bits: e})
		}
		return nil
	}
	if err := walk(head - 2); err != nil {
		return nil, errf(line, "XArray: %v", err)
	}
	return out, nil
}

// iterPipeRing walks pipe_inode_info's occupied ring slots [tail, head).
func (r *runState) iterPipeRing(pipe expr.Value, line int) ([]expr.Value, error) {
	tgt := r.tgt()
	base, err := headAddr(pipe)
	if err != nil {
		return nil, errf(line, "PipeRing: %v", err)
	}
	pt := r.in.Env.Types().MustLookup("pipe_inode_info")
	get := func(field string) (uint64, error) {
		f, ok := pt.FieldByName(field)
		if !ok {
			return 0, fmt.Errorf("pipe_inode_info.%s missing", field)
		}
		return target.ReadUint(tgt, base+f.Offset, f.Type.Size())
	}
	head, err := get("head")
	if err != nil {
		return nil, errf(line, "PipeRing: %v", err)
	}
	tail, err := get("tail")
	if err != nil {
		return nil, errf(line, "PipeRing: %v", err)
	}
	ringSize, err := get("ring_size")
	if err != nil {
		return nil, errf(line, "PipeRing: %v", err)
	}
	bufs, err := get("bufs")
	if err != nil {
		return nil, errf(line, "PipeRing: %v", err)
	}
	if ringSize == 0 {
		return nil, nil
	}
	bufT := r.in.Env.Types().MustLookup("pipe_buffer")
	var out []expr.Value
	for i := tail; i != head && len(out) < r.in.MaxElems; i++ {
		slot := i & (ringSize - 1)
		out = append(out, expr.MakeLValue(bufT, bufs+slot*bufT.Size()))
	}
	return out, nil
}

// evalSelectFrom implements Array.selectFrom(container, Type): walk the
// already-materialized subgraph under the container value in traversal
// order and collect all boxes of the given ViewCL type — the paper's
// distill of an ordered set (e.g. maple tree -> sorted VMA list).
func (r *runState) evalSelectFrom(n *SelectFromNode, sc *scope) (vval, error) {
	src, err := r.eval(n.Container, sc)
	if err != nil {
		return vval{}, err
	}
	return r.selectFromVal(src, n.BoxType, n.Line)
}

// selectFromVal collects boxes of the given type from an already-evaluated
// source value; shared by both engines.
func (r *runState) selectFromVal(src vval, boxType string, line int) (vval, error) {
	var seeds []string
	switch src.kind {
	case vBox:
		seeds = []string{src.boxID}
	case vCont:
		for _, e := range src.elems {
			if e != "" {
				seeds = append(seeds, e)
			}
		}
	case vNull:
		return vval{kind: vCont}, nil
	default:
		return vval{}, errf(line, "selectFrom: source must be a box or container")
	}
	seen := map[string]bool{}
	var collected []string
	var dfs func(id string)
	dfs = func(id string) {
		if id == "" || seen[id] {
			return
		}
		seen[id] = true
		b, ok := r.g.Get(id)
		if !ok {
			return
		}
		if b.Label == boxType || b.TypeName == boxType {
			collected = append(collected, id)
		}
		// Follow every view's edges in declaration order to preserve the
		// container's logical order.
		for _, vn := range b.ViewSeq {
			for _, it := range b.Views[vn].Items {
				switch it.Kind {
				case graph.ItemLink, graph.ItemBox:
					dfs(it.TargetID)
				case graph.ItemContainer:
					for _, e := range it.Elems {
						dfs(e)
					}
				}
			}
		}
	}
	for _, s := range seeds {
		dfs(s)
	}
	return vval{kind: vCont, elems: collected}, nil
}
