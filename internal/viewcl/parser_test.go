package viewcl

import (
	"strings"
	"testing"
)

// White-box parser tests: grammar corners and error positions.

func TestParseDefineForms(t *testing.T) {
	// Single-view sugar.
	p, err := Parse("t", `
define T as Box<task_struct> [
    Text pid
] where {
    x = ${1}
}
`)
	if err != nil {
		t.Fatal(err)
	}
	d := p.Stmts[0].(*DefineStmt)
	if d.Name != "T" || d.CType != "task_struct" {
		t.Errorf("define: %+v", d)
	}
	if len(d.Views) != 1 || d.Views[0].Name != "default" {
		t.Errorf("views: %+v", d.Views)
	}
	if len(d.Views[0].Where) != 1 || d.Views[0].Where[0].Name != "x" {
		t.Errorf("where: %+v", d.Views[0].Where)
	}

	// Multi-view with inheritance and box-level where.
	p, err = Parse("t", `
define T as Box<task_struct> {
    :default [ Text pid ]
    :default => :deep [ Text tgid ]
} where {
    y = ${2}
}
`)
	if err != nil {
		t.Fatal(err)
	}
	d = p.Stmts[0].(*DefineStmt)
	if len(d.Views) != 2 || d.Views[1].Parent != "default" || d.Views[1].Name != "deep" {
		t.Errorf("inheritance: %+v", d.Views[1])
	}
	if len(d.Where) != 1 {
		t.Errorf("box where: %+v", d.Where)
	}
}

func TestParseItemVariants(t *testing.T) {
	p, err := Parse("t", `
define T as Box<task_struct> [
    Text pid, comm, se.vruntime
    Text<u64:x> addr: ${@this}
    Text<enum:maple_type> kind: ${1}
    Link next -> T(${@this->parent})
    Link a.b.c -> NULL
    Container kids: List(${@this->children})
    Box inner: T(${@this})
]
`)
	if err != nil {
		t.Fatal(err)
	}
	items := p.Stmts[0].(*DefineStmt).Views[0].Items
	if len(items) != 9 {
		t.Fatalf("items = %d", len(items))
	}
	if ti := items[2].(*TextItem); ti.Name != "se.vruntime" || ti.Path != "se.vruntime" {
		t.Errorf("dotted text: %+v", ti)
	}
	if ti := items[3].(*TextItem); ti.Fmt == nil || ti.Fmt.Kind != "u64" || ti.Fmt.Arg != "x" {
		t.Errorf("format: %+v", ti.Fmt)
	}
	if ti := items[4].(*TextItem); ti.Fmt.Kind != "enum" || ti.Fmt.Arg != "maple_type" {
		t.Errorf("enum format: %+v", ti.Fmt)
	}
	if li := items[6].(*LinkItem); li.Name != "a.b.c" {
		t.Errorf("flattened link name: %q", li.Name)
	}
	if _, ok := items[7].(*ContainerItem); !ok {
		t.Errorf("container item: %T", items[7])
	}
	if _, ok := items[8].(*BoxItem); !ok {
		t.Errorf("box item: %T", items[8])
	}
}

func TestParseSwitchAndForEach(t *testing.T) {
	p, err := Parse("t", `
x = switch ${1} {
    case ${1}, ${2}: NULL
    otherwise: List(${0}).forEach |n| {
        tmp = ${@n}
        yield NULL
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	sw := p.Stmts[0].(*BindStmt).Expr.(*SwitchNode)
	if len(sw.Cases) != 1 || len(sw.Cases[0].Values) != 2 {
		t.Errorf("cases: %+v", sw.Cases)
	}
	cn := sw.Otherwise.(*ContainerNode)
	if cn.Kind != "List" || cn.ForEach == nil || cn.ForEach.Var != "n" {
		t.Errorf("forEach: %+v", cn)
	}
	if len(cn.ForEach.Body) != 1 || cn.ForEach.Body[0].Name != "tmp" {
		t.Errorf("body: %+v", cn.ForEach.Body)
	}
}

func TestParseAnchors(t *testing.T) {
	p, err := Parse("t", `x = Task<task_struct.se.run_node>(${0})`)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Stmts[0].(*BindStmt).Expr.(*ConstructNode)
	if c.Anchor != "task_struct.se.run_node" || c.BoxType != "Task" {
		t.Errorf("anchor: %+v", c)
	}
}

func TestParseSelectFrom(t *testing.T) {
	p, err := Parse("t", `x = Array.selectFrom(@mt, VMArea)`)
	if err != nil {
		t.Fatal(err)
	}
	sf := p.Stmts[0].(*BindStmt).Expr.(*SelectFromNode)
	if sf.BoxType != "VMArea" {
		t.Errorf("selectFrom: %+v", sf)
	}
}

func TestParseErrorsPositioned(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"define T Box<x> [ ]", "expected 'as'"},
		{"define T as Blob<x> [ ]", "expected 'Box'"},
		{"define T as Box<x> [ Blob y ]", "unknown item"},
		{"define T as Box<x> [ Text ]", "expected identifier"},
		{"define T as Box<x> { :a => b [ ] }", "expected child view"},
		{"x = ", "expected expression"},
		{"plot", "expected expression"},
		{"x = List(${1}).forEach |n| { }", "forEach without yield"},
		{"x = List(${1}).forEach |n| { yield NULL yield NULL }", "multiple yields"},
		{"x = switch ${1} { what: NULL }", "expected case/otherwise"},
		{"x = ${unclosed", "unterminated"},
		{"x = \"unclosed", "unterminated"},
		{"define T as Box<x> [ Text a ] where { b }", "expected \"=\""},
	}
	for _, c := range cases {
		_, err := Parse("t", c.src)
		if err == nil {
			t.Errorf("no error for %q", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%q error %q missing %q", c.src, err, c.frag)
		}
	}
}

func TestErrorLineNumbers(t *testing.T) {
	_, err := Parse("t", "\n\n\nx = @\n")
	if err == nil {
		t.Fatal("no error")
	}
	if !strings.Contains(err.Error(), "viewcl:4:") {
		t.Errorf("line number lost: %v", err)
	}
}

func TestLOCCounting(t *testing.T) {
	p := MustParse("t", `
// comment only

define T as Box<x> [
    Text a
]
`)
	if p.LOC != 3 {
		t.Errorf("LOC = %d, want 3", p.LOC)
	}
}

func TestCommentsAndNesting(t *testing.T) {
	_, err := Parse("t", `
/* block
   comment */
define T as Box<x> [
    Text a // trailing
    /* inline */ Text b
]
x = ${ fn(a, (b + c) * 2) }  // parens inside C escapes
y = ${ s == "}" }            // brace inside a C string must not close the escape
`)
	if err != nil {
		t.Fatalf("comments: %v", err)
	}
}
