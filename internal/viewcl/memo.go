package viewcl

import (
	"sync"

	"visualinux/internal/ctypes"
	"visualinux/internal/graph"
	"visualinux/internal/target"
)

// The cross-run extraction memo: boxes survive from one stop event to the
// next, keyed by definition+address, and are reused verbatim when the bytes
// they were built from are provably unchanged. This is the viewcl half of
// the incremental pipeline — the snapshot layer proves "unchanged" cheaply
// (write journal or content hashes instead of refetching), and the memo
// turns that proof into skipped box materializations.

// GenValidator is the fast cleanliness oracle a generation-tagged snapshot
// provides (see target.Snapshot): RangesUnchangedSince revalidates lazily
// and answers from per-page change generations, so a clean object costs a
// hash exchange instead of a refetch — and nothing at all when the write
// journal already promoted its pages.
type GenValidator interface {
	Generation() uint64
	RangesUnchangedSince(ranges []target.Range, since uint64) bool
}

// childRef names one box materialized directly inside a memoized box's
// frame, in evaluation order. Reuse replays these so every ID the reused
// box's items reference exists in the output graph, and so virtual-box
// counters advance exactly as they would in a cold run.
type childRef struct {
	def  string
	addr uint64
}

// memoFrame is the per-materialization recording scope. Reads land in the
// innermost frame only: a child box's reads belong to the child's entry,
// not the parent's, so each entry verifies exactly the bytes its own items
// rendered.
type memoFrame struct {
	reads    []target.Range // own-frame reads, in evaluation order
	sum      uint64         // FNV-1a over own-frame read bytes, in order
	children []childRef     // direct materialize calls, in order
	tainted  bool           // consumed a nondeterministic '#N' identity
}

func newMemoFrame() *memoFrame { return &memoFrame{sum: target.NewHashSum()} }

// taint marks the frame unreusable. Nil-safe: runs without a Memo skip frame
// allocation entirely and pass nil frames through the build path.
func (fr *memoFrame) taint() {
	if fr != nil {
		fr.tainted = true
	}
}

// memoEntry is one cached box: a pristine clone plus everything needed to
// prove it still matches target memory and to rebuild its subgraph.
type memoEntry struct {
	box      *graph.Box
	reads    []target.Range // recorded order — the hash replay sequence
	merged   []target.Range // merged, for validator checks and read sets
	sum      uint64
	gen      uint64 // validator generation at record / last verification
	children []childRef
}

// MemoStats reports memo effectiveness for tests and the bench harness.
type MemoStats struct {
	Reuses       uint64 // verified entries served as clones
	Rejects      uint64 // entries invalidated by changed content
	HashVerifies uint64 // verifications that fell back to byte hashing
}

// Memo caches extracted boxes across interpreter runs. It verifies through
// base — the same (snapshot-backed, latency-priced) chain extraction reads
// through — so revalidation costs exactly what the paper's model says a
// hash exchange costs, and fast-paths verification through a GenValidator
// found anywhere in base's wrapper chain. One run at a time; the mutex only
// guards against concurrent inspection.
type Memo struct {
	base    target.Target
	val     GenValidator
	mu      sync.Mutex
	entries map[memoKey]*memoEntry
	stats   MemoStats
}

// NewMemo creates an empty memo verifying against base. The generation
// fast path engages automatically when a GenValidator (target.Snapshot)
// sits anywhere in base's wrapper chain.
func NewMemo(base target.Target) *Memo {
	m := &Memo{base: base, entries: make(map[memoKey]*memoEntry)}
	for t := base; t != nil; {
		if v, ok := t.(GenValidator); ok {
			m.val = v
			break
		}
		u, ok := t.(target.Underlier)
		if !ok {
			break
		}
		t = u.Under()
	}
	return m
}

// Len reports the number of cached boxes.
func (m *Memo) Len() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Stats returns a snapshot of the memo's effectiveness counters.
func (m *Memo) Stats() MemoStats {
	if m == nil {
		return MemoStats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

func (m *Memo) lookup(key memoKey) *memoEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.entries[key]
}

func (m *Memo) store(key memoKey, b *graph.Box, fr *memoFrame) {
	e := &memoEntry{
		box:      b.Clone(),
		reads:    fr.reads,
		merged:   target.MergeRanges(append([]target.Range(nil), fr.reads...)),
		sum:      fr.sum,
		children: fr.children,
	}
	if m.val != nil {
		e.gen = m.val.Generation()
	}
	m.mu.Lock()
	m.entries[key] = e
	m.mu.Unlock()
}

// verify proves e's bytes are unchanged since it was recorded. Fast path:
// the snapshot's per-page change generations (free for journal-promoted
// pages, one hash exchange for stale ones). Fallback — no validator, or a
// page-granular change that may not overlap this box — re-reads the
// recorded ranges through the cache and compares content sums. A content
// mismatch drops the entry so the rebuild re-records it.
func (m *Memo) verify(key memoKey, e *memoEntry) bool {
	if m.val != nil {
		gen := m.val.Generation()
		if e.gen == gen {
			return true
		}
		if m.val.RangesUnchangedSince(e.merged, e.gen) {
			e.gen = gen
			return true
		}
	}
	m.mu.Lock()
	m.stats.HashVerifies++
	m.mu.Unlock()
	sum := target.NewHashSum()
	var buf []byte
	for _, rg := range e.reads {
		if uint64(cap(buf)) < rg.Size {
			buf = make([]byte, rg.Size)
		}
		b := buf[:rg.Size]
		if err := m.base.ReadMemory(rg.Addr, b); err != nil {
			m.reject(key)
			return false
		}
		sum = target.HashSum(sum, b)
	}
	if sum != e.sum {
		m.reject(key)
		return false
	}
	if m.val != nil {
		e.gen = m.val.Generation()
	}
	return true
}

func (m *Memo) reject(key memoKey) {
	m.mu.Lock()
	delete(m.entries, key)
	m.stats.Rejects++
	m.mu.Unlock()
}

func (m *Memo) noteReuse() {
	m.mu.Lock()
	m.stats.Reuses++
	m.mu.Unlock()
}

// recorder wraps the extraction target during a memoizing run, mirroring
// every successful read into the innermost recording frame and the
// run-level page set. It forwards the full optional-capability surface —
// losing Prefetcher/BatchPrefetcher/RangeProber here would silently
// disable the coalesced fill paths the cold-run numbers depend on.
type recorder struct {
	under target.Target
	run   *runState
}

func (t *recorder) ReadMemory(addr uint64, buf []byte) error {
	err := t.under.ReadMemory(addr, buf)
	if err == nil && len(buf) > 0 {
		t.run.recordRead(addr, buf)
	}
	return err
}

func (t *recorder) LookupSymbol(name string) (target.Symbol, bool) { return t.under.LookupSymbol(name) }
func (t *recorder) SymbolAt(addr uint64) (string, bool)            { return t.under.SymbolAt(addr) }
func (t *recorder) Types() *ctypes.Registry                        { return t.under.Types() }
func (t *recorder) Stats() *target.Stats                           { return t.under.Stats() }

// Under exposes the wrapped chain so AttachTracer and capability probes
// (GenValidator discovery, PageHasher/DirtyTracker helpers) walk through.
func (t *recorder) Under() target.Target { return t.under }

func (t *recorder) Prefetch(addr, size uint64) {
	if p, ok := t.under.(target.Prefetcher); ok {
		p.Prefetch(addr, size)
	}
}

func (t *recorder) PrefetchRanges(ranges []target.Range) {
	if bp, ok := t.under.(target.BatchPrefetcher); ok {
		bp.PrefetchRanges(ranges)
	}
}

func (t *recorder) ClipMapped(addr, size uint64) ([]target.Range, bool) {
	return target.ClipMapped(t.under, addr, size)
}

var (
	_ target.Target          = (*recorder)(nil)
	_ target.Underlier       = (*recorder)(nil)
	_ target.Prefetcher      = (*recorder)(nil)
	_ target.BatchPrefetcher = (*recorder)(nil)
	_ target.RangeProber     = (*recorder)(nil)
)
